package pqfastscan_test

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"pqfastscan"
)

// cancelAfterChecks is a context that reports cancellation starting from
// its nth Err() call. The query engine polls Err() before every
// partition scan, so this deterministically cancels a SearchBatch
// mid-flight: the first worker's query completes, every later
// cancellation check fails. (Done() is inherited from Background and
// never fires; the engine's cancellation points poll Err.)
type cancelAfterChecks struct {
	context.Context
	checks atomic.Int64
	after  int64
}

func (c *cancelAfterChecks) Err() error {
	if c.checks.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestSearchBatchMidFlightCancellation cancels a batch after the first
// worker's query has completed and asserts the batch returns promptly
// with the context's error, leaking no goroutines.
func TestSearchBatchMidFlightCancellation(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)

	// Let the goroutines of earlier tests (HTTP keep-alives, pollers)
	// wind down before taking the baseline.
	time.Sleep(20 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	// A batch of many multi-probe queries: each query checks Err() once
	// up front and once per probed partition, so allowing a handful of
	// checks lets the first worker finish its query and then cancels
	// every subsequent one mid-batch.
	batch := pqfastscan.NewMatrix(48, queries.Dim)
	for i := 0; i < batch.Rows(); i++ {
		copy(batch.Row(i), queries.Row(i%queries.Rows()))
	}
	ctx := &cancelAfterChecks{Context: context.Background(), after: 5}

	start := time.Now()
	res, err := idx.SearchBatch(ctx, batch, 10, pqfastscan.WithNProbe(4))
	elapsed := time.Since(start)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchBatch returned (%v, %v), want context.Canceled", res, err)
	}
	if ctx.checks.Load() <= ctx.after {
		t.Fatalf("cancellation was never polled (only %d checks)", ctx.checks.Load())
	}
	// A cancelled 48-query batch must return long before a full scan
	// of 48×4 partitions would.
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled batch took %v to return", elapsed)
	}

	// All batch workers must have exited: poll the goroutine count back
	// down to the pre-batch baseline.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC() // nudge finalizer/timer goroutines to settle
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after cancelled SearchBatch: %d > baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
