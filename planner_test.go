package pqfastscan_test

import (
	"context"
	"testing"

	"pqfastscan"
	"pqfastscan/internal/scan"
)

func buildPlannerIndex(t *testing.T) (*pqfastscan.Index, pqfastscan.Matrix) {
	t.Helper()
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 99})
	learn := gen.Generate(3000)
	base := gen.Generate(16000)
	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = 8
	opt.Seed = 99
	opt.OrderGroups = true
	idx, err := pqfastscan.Build(learn, base, opt)
	if err != nil {
		t.Fatal(err)
	}
	return idx, gen.Generate(6)
}

// TestAutoColdStartDefaults: with no scan observations, WithAuto() must
// behave exactly like the documented defaults — same results as a
// no-option Search, deterministically.
func TestAutoColdStartDefaults(t *testing.T) {
	idx, queries := buildPlannerIndex(t)
	scan.ResetCostObservations()
	defer scan.ResetCostObservations()
	ctx := context.Background()

	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.Row(qi)
		want, err := idx.Search(ctx, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			// Keep the planner cold across repetitions: the searches
			// themselves feed the EWMAs.
			scan.ResetCostObservations()
			got, err := idx.Search(ctx, q, 10, pqfastscan.WithAuto())
			if err != nil {
				t.Fatal(err)
			}
			sameResultSlices(t, "cold WithAuto vs default", got.Results, want.Results)
			if len(got.Partitions) != len(want.Partitions) || got.Partitions[0] != want.Partitions[0] {
				t.Fatalf("cold WithAuto probed %v, default probed %v", got.Partitions, want.Partitions)
			}
		}
	}
}

// TestAutoConflictSemantics: explicit options always override the
// planner, dimension by dimension.
func TestAutoConflictSemantics(t *testing.T) {
	idx, queries := buildPlannerIndex(t)
	defer scan.ResetCostObservations()
	ctx := context.Background()
	q := queries.Row(0)

	// Explicit nprobe wins over the planner's choice (planner would
	// pick 1 under min-latency; recall target would pick otherwise).
	for _, opts := range [][]pqfastscan.SearchOption{
		{pqfastscan.WithAuto(), pqfastscan.WithNProbe(3)},
		{pqfastscan.WithTargetRecall(0.5), pqfastscan.WithNProbe(3)},
	} {
		got, err := idx.Search(ctx, q, 10, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Partitions) != 3 {
			t.Fatalf("explicit WithNProbe(3) overridden: probed %v", got.Partitions)
		}
		want, err := idx.Search(ctx, q, 10, pqfastscan.WithNProbe(3))
		if err != nil {
			t.Fatal(err)
		}
		sameResultSlices(t, "auto+nprobe vs nprobe", got.Results, want.Results)
	}

	// Explicit backend wins and stays bit-identical.
	got, err := idx.Search(ctx, q, 10, pqfastscan.WithAuto(), pqfastscan.WithBackend(pqfastscan.BackendSWAR))
	if err != nil {
		t.Fatal(err)
	}
	want, err := idx.Search(ctx, q, 10, pqfastscan.WithBackend(pqfastscan.BackendSWAR))
	if err != nil {
		t.Fatal(err)
	}
	sameResultSlices(t, "auto+backend vs backend", got.Results, want.Results)

	// Explicit kernel wins.
	got, err = idx.Search(ctx, q, 10, pqfastscan.WithAuto(), pqfastscan.WithKernel(pqfastscan.KernelNaive))
	if err != nil {
		t.Fatal(err)
	}
	want, err = idx.Search(ctx, q, 10, pqfastscan.WithKernel(pqfastscan.KernelNaive))
	if err != nil {
		t.Fatal(err)
	}
	sameResultSlices(t, "auto+kernel vs kernel", got.Results, want.Results)

	// Explicit cells pin routing entirely.
	got, err = idx.Search(ctx, q, 10, pqfastscan.WithTargetRecall(1.0), pqfastscan.WithCells(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Partitions) != 2 || got.Partitions[0] != 1 || got.Partitions[1] != 2 {
		t.Fatalf("explicit WithCells overridden: probed %v", got.Partitions)
	}

	// WithStats composes: the planner only plans nprobe on the model
	// engine, and the statistics still arrive.
	got, err = idx.Search(ctx, q, 10, pqfastscan.WithAuto(), pqfastscan.WithStats())
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats == nil {
		t.Fatal("WithAuto+WithStats lost the statistics")
	}

	// Invalid recall targets are rejected.
	for _, r := range []float64{0, -0.5, 1.01} {
		if _, err := idx.Search(ctx, q, 10, pqfastscan.WithTargetRecall(r)); err == nil {
			t.Errorf("WithTargetRecall(%g) accepted", r)
		}
	}
}

// TestPlannedBitIdentity: whatever the planner picks — cold or after
// warmup, min-latency or recall-targeted — the answer must be
// bit-identical to the fixed-option query probing the same prefix.
func TestPlannedBitIdentity(t *testing.T) {
	idx, queries := buildPlannerIndex(t)
	defer scan.ResetCostObservations()
	ctx := context.Background()

	// Warm the cost model with real scans so the planner leaves the
	// cold path and exercises its argmin.
	for qi := 0; qi < queries.Rows(); qi++ {
		if _, err := idx.Search(ctx, queries.Row(qi), 10, pqfastscan.WithNProbe(8)); err != nil {
			t.Fatal(err)
		}
		if _, err := idx.Search(ctx, queries.Row(qi), 10, pqfastscan.WithKernel(pqfastscan.KernelNaive)); err != nil {
			t.Fatal(err)
		}
	}

	for _, recall := range []float64{0, 0.3, 0.7, 0.95, 1.0} {
		for qi := 0; qi < queries.Rows(); qi++ {
			q := queries.Row(qi)
			var opts []pqfastscan.SearchOption
			if recall == 0 {
				opts = []pqfastscan.SearchOption{pqfastscan.WithAuto()}
			} else {
				opts = []pqfastscan.SearchOption{pqfastscan.WithTargetRecall(recall)}
			}
			got, err := idx.Search(ctx, q, 10, opts...)
			if err != nil {
				t.Fatal(err)
			}
			// The planned probe set must be a prefix of the WithNProbe
			// ranking: reproduce it with the explicit option.
			want, err := idx.Search(ctx, q, 10, pqfastscan.WithNProbe(len(got.Partitions)))
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Partitions) != len(want.Partitions) {
				t.Fatalf("recall %g q%d: planned probes %v vs fixed %v", recall, qi, got.Partitions, want.Partitions)
			}
			for i := range want.Partitions {
				if got.Partitions[i] != want.Partitions[i] {
					t.Fatalf("recall %g q%d: planned probe order %v vs fixed %v", recall, qi, got.Partitions, want.Partitions)
				}
			}
			sameResultSlices(t, "planned vs fixed", got.Results, want.Results)
		}
	}
}

// TestAutoSearchBatch: batches accept the planner options and stay
// bit-identical to the fixed-option batch.
func TestAutoSearchBatch(t *testing.T) {
	idx, queries := buildPlannerIndex(t)
	scan.ResetCostObservations()
	defer scan.ResetCostObservations()
	ctx := context.Background()

	got, err := idx.SearchBatch(ctx, queries, 10, pqfastscan.WithAuto())
	if err != nil {
		t.Fatal(err)
	}
	want, err := idx.SearchBatch(ctx, queries, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		sameResultSlices(t, "cold auto batch vs default batch", got[i].Results, want[i].Results)
	}
}
