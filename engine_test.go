package pqfastscan_test

import (
	"context"
	"strings"
	"testing"

	"pqfastscan"
)

// TestEnginesReturnIdenticalResults is the public-API face of the
// cross-engine exactness invariant: for every kernel, nprobe and query,
// the native and model engines return bit-identical neighbor lists —
// with and without single-query cross-partition parallelism.
func TestEnginesReturnIdenticalResults(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	ctx := context.Background()

	for _, kern := range allKernels() {
		for _, nprobe := range []int{1, 3} {
			for qi := 0; qi < queries.Rows(); qi++ {
				q := queries.Row(qi)
				model, err := idx.Search(ctx, q, 25,
					pqfastscan.WithKernel(kern), pqfastscan.WithNProbe(nprobe),
					pqfastscan.WithEngine(pqfastscan.EngineModel))
				if err != nil {
					t.Fatal(err)
				}
				native, err := idx.Search(ctx, q, 25,
					pqfastscan.WithKernel(kern), pqfastscan.WithNProbe(nprobe),
					pqfastscan.WithEngine(pqfastscan.EngineNative))
				if err != nil {
					t.Fatal(err)
				}
				label := kern.String() + "/" + pqfastscan.EngineNative.String()
				sameResultSlices(t, label, model.Results, native.Results)

				parallel, err := idx.Search(ctx, q, 25,
					pqfastscan.WithKernel(kern), pqfastscan.WithNProbe(nprobe),
					pqfastscan.WithParallel())
				if err != nil {
					t.Fatal(err)
				}
				sameResultSlices(t, label+"/parallel", model.Results, parallel.Results)
			}
		}
	}
}

// TestDefaultEngineIsNative: a plain Search must match an explicit
// native-engine search (and, by the invariant above, the model engine).
func TestDefaultEngineIsNative(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	ctx := context.Background()
	q := queries.Row(0)

	plain, err := idx.Search(ctx, q, 30)
	if err != nil {
		t.Fatal(err)
	}
	native, err := idx.Search(ctx, q, 30, pqfastscan.WithEngine(pqfastscan.EngineNative))
	if err != nil {
		t.Fatal(err)
	}
	sameResultSlices(t, "default-engine", plain.Results, native.Results)
}

// TestWithStatsPinsModelEngine: statistics imply the model engine —
// implicitly when no engine is named, as an error when the native engine
// is requested alongside.
func TestWithStatsPinsModelEngine(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	ctx := context.Background()
	q := queries.Row(0)

	res, err := idx.Search(ctx, q, 10, pqfastscan.WithStats())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.Ops.Instructions() <= 0 {
		t.Fatal("WithStats did not produce instruction counts (not on the model engine?)")
	}
	// Model engine named explicitly: same thing.
	res2, err := idx.Search(ctx, q, 10, pqfastscan.WithStats(), pqfastscan.WithEngine(pqfastscan.EngineModel))
	if err != nil {
		t.Fatal(err)
	}
	if *res2.Stats != *res.Stats {
		t.Fatal("explicit model engine changed the statistics")
	}
	// Conflicting explicit native engine: rejected up front.
	_, err = idx.Search(ctx, q, 10, pqfastscan.WithStats(), pqfastscan.WithEngine(pqfastscan.EngineNative))
	if err == nil || !strings.Contains(err.Error(), "model engine") {
		t.Fatalf("WithStats+EngineNative returned %v, want a model-engine error", err)
	}
}

// TestParallelMatchesSequentialBatch: the batch path composes with
// per-query parallel probing.
func TestParallelMatchesSequentialBatch(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	ctx := context.Background()

	seq, err := idx.SearchBatch(ctx, queries, 15, pqfastscan.WithNProbe(4))
	if err != nil {
		t.Fatal(err)
	}
	par, err := idx.SearchBatch(ctx, queries, 15, pqfastscan.WithNProbe(4), pqfastscan.WithParallel())
	if err != nil {
		t.Fatal(err)
	}
	for qi := range seq {
		sameResultSlices(t, "batch-parallel", seq[qi].Results, par[qi].Results)
		if len(seq[qi].Partitions) != len(par[qi].Partitions) {
			t.Fatalf("query %d: probed %v sequentially, %v in parallel",
				qi, seq[qi].Partitions, par[qi].Partitions)
		}
	}
}
