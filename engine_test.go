package pqfastscan_test

import (
	"context"
	"strings"
	"testing"

	"pqfastscan"
)

// TestEnginesReturnIdenticalResults is the public-API face of the
// cross-engine exactness invariant: for every kernel, nprobe and query,
// the native and model engines return bit-identical neighbor lists —
// with and without single-query cross-partition parallelism.
func TestEnginesReturnIdenticalResults(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	ctx := context.Background()

	for _, kern := range allKernels() {
		for _, nprobe := range []int{1, 3} {
			for qi := 0; qi < queries.Rows(); qi++ {
				q := queries.Row(qi)
				model, err := idx.Search(ctx, q, 25,
					pqfastscan.WithKernel(kern), pqfastscan.WithNProbe(nprobe),
					pqfastscan.WithEngine(pqfastscan.EngineModel))
				if err != nil {
					t.Fatal(err)
				}
				native, err := idx.Search(ctx, q, 25,
					pqfastscan.WithKernel(kern), pqfastscan.WithNProbe(nprobe),
					pqfastscan.WithEngine(pqfastscan.EngineNative))
				if err != nil {
					t.Fatal(err)
				}
				label := kern.String() + "/" + pqfastscan.EngineNative.String()
				sameResultSlices(t, label, model.Results, native.Results)

				parallel, err := idx.Search(ctx, q, 25,
					pqfastscan.WithKernel(kern), pqfastscan.WithNProbe(nprobe),
					pqfastscan.WithParallel())
				if err != nil {
					t.Fatal(err)
				}
				sameResultSlices(t, label+"/parallel", model.Results, parallel.Results)
			}
		}
	}
}

// TestDefaultEngineIsNative: a plain Search must match an explicit
// native-engine search (and, by the invariant above, the model engine).
func TestDefaultEngineIsNative(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	ctx := context.Background()
	q := queries.Row(0)

	plain, err := idx.Search(ctx, q, 30)
	if err != nil {
		t.Fatal(err)
	}
	native, err := idx.Search(ctx, q, 30, pqfastscan.WithEngine(pqfastscan.EngineNative))
	if err != nil {
		t.Fatal(err)
	}
	sameResultSlices(t, "default-engine", plain.Results, native.Results)
}

// TestWithStatsPinsModelEngine: statistics imply the model engine —
// implicitly when no engine is named, as an error when the native engine
// is requested alongside.
func TestWithStatsPinsModelEngine(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	ctx := context.Background()
	q := queries.Row(0)

	res, err := idx.Search(ctx, q, 10, pqfastscan.WithStats())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.Ops.Instructions() <= 0 {
		t.Fatal("WithStats did not produce instruction counts (not on the model engine?)")
	}
	// Model engine named explicitly: same thing.
	res2, err := idx.Search(ctx, q, 10, pqfastscan.WithStats(), pqfastscan.WithEngine(pqfastscan.EngineModel))
	if err != nil {
		t.Fatal(err)
	}
	if *res2.Stats != *res.Stats {
		t.Fatal("explicit model engine changed the statistics")
	}
	// Conflicting explicit native engine: rejected up front.
	_, err = idx.Search(ctx, q, 10, pqfastscan.WithStats(), pqfastscan.WithEngine(pqfastscan.EngineNative))
	if err == nil || !strings.Contains(err.Error(), "model engine") {
		t.Fatalf("WithStats+EngineNative returned %v, want a model-engine error", err)
	}
}

// TestParallelMatchesSequentialBatch: the batch path composes with
// per-query parallel probing.
func TestParallelMatchesSequentialBatch(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	ctx := context.Background()

	seq, err := idx.SearchBatch(ctx, queries, 15, pqfastscan.WithNProbe(4))
	if err != nil {
		t.Fatal(err)
	}
	par, err := idx.SearchBatch(ctx, queries, 15, pqfastscan.WithNProbe(4), pqfastscan.WithParallel())
	if err != nil {
		t.Fatal(err)
	}
	for qi := range seq {
		sameResultSlices(t, "batch-parallel", seq[qi].Results, par[qi].Results)
		if len(seq[qi].Partitions) != len(par[qi].Partitions) {
			t.Fatalf("query %d: probed %v sequentially, %v in parallel",
				qi, seq[qi].Partitions, par[qi].Partitions)
		}
	}
}

// TestBackendsReturnIdenticalResults is the public-API face of the
// cross-backend exactness invariant: every available backend (assembly
// or SWAR), explicitly pinned with WithBackend, returns the same
// neighbor lists as the default auto selection — single-probe,
// multi-probe and batched.
func TestBackendsReturnIdenticalResults(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	ctx := context.Background()

	for _, nprobe := range []int{1, 3} {
		for qi := 0; qi < queries.Rows(); qi++ {
			q := queries.Row(qi)
			auto, err := idx.Search(ctx, q, 25, pqfastscan.WithNProbe(nprobe))
			if err != nil {
				t.Fatal(err)
			}
			for _, be := range pqfastscan.AvailableBackends() {
				got, err := idx.Search(ctx, q, 25,
					pqfastscan.WithNProbe(nprobe), pqfastscan.WithBackend(be))
				if err != nil {
					t.Fatal(err)
				}
				sameResultSlices(t, "backend/"+be.String(), auto.Results, got.Results)
			}
		}
	}

	for _, be := range pqfastscan.AvailableBackends() {
		autoBatch, err := idx.SearchBatch(ctx, queries, 25)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := idx.SearchBatch(ctx, queries, 25, pqfastscan.WithBackend(be))
		if err != nil {
			t.Fatal(err)
		}
		for i := range batch {
			sameResultSlices(t, "batch-backend/"+be.String(), autoBatch[i].Results, batch[i].Results)
		}
	}
}

// TestBackendOptionRejections: an unavailable backend and any
// backend+model-engine combination fail fast with actionable errors.
func TestBackendOptionRejections(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	ctx := context.Background()
	q := queries.Row(0)

	var unavailable pqfastscan.Backend
	found := false
	for _, be := range []pqfastscan.Backend{pqfastscan.BackendAVX2, pqfastscan.BackendNEON} {
		avail := false
		for _, have := range pqfastscan.AvailableBackends() {
			if have == be {
				avail = true
			}
		}
		if !avail {
			unavailable, found = be, true
			break
		}
	}
	if found {
		if _, err := idx.Search(ctx, q, 5, pqfastscan.WithBackend(unavailable)); err == nil ||
			!strings.Contains(err.Error(), "not available") {
			t.Fatalf("unavailable backend: got err %v", err)
		}
	}

	if _, err := idx.Search(ctx, q, 5,
		pqfastscan.WithBackend(pqfastscan.BackendSWAR), pqfastscan.WithStats()); err == nil {
		t.Fatal("WithBackend+WithStats must be rejected (model engine has no backends)")
	}
	if _, err := idx.Search(ctx, q, 5,
		pqfastscan.WithBackend(pqfastscan.BackendSWAR),
		pqfastscan.WithEngine(pqfastscan.EngineModel)); err == nil {
		t.Fatal("WithBackend+WithEngine(EngineModel) must be rejected")
	}
}

// TestActiveBackendSurface sanity-checks the introspection surface the
// serving layer logs and exports.
func TestActiveBackendSurface(t *testing.T) {
	be := pqfastscan.ActiveBackend()
	if be == pqfastscan.BackendAuto {
		t.Fatal("ActiveBackend returned auto")
	}
	parsed, err := pqfastscan.ParseBackend(be.String())
	if err != nil || parsed != be {
		t.Fatalf("ParseBackend(%q) = %v, %v", be.String(), parsed, err)
	}
	avail := pqfastscan.AvailableBackends()
	if len(avail) == 0 {
		t.Fatal("no available backends")
	}
	hasActive := false
	for _, b := range avail {
		hasActive = hasActive || b == be
	}
	if !hasActive {
		t.Fatalf("active backend %v not in available set %v", be, avail)
	}
}
