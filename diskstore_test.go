package pqfastscan_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"pqfastscan"
)

func buildDiskTestIndex(t *testing.T, seed uint64) (*pqfastscan.Index, pqfastscan.Matrix) {
	t.Helper()
	// Under the paged-smoke CI leg every facade-built index is already
	// auto-attached to $PQ_STORE_DIR, so these explicit-attach tests
	// would (correctly) be refused their own directory.
	if os.Getenv("PQ_STORE_DIR") != "" {
		t.Skip("PQ_STORE_DIR set: indexes auto-attach at build; explicit WithDiskStore not applicable")
	}
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: seed})
	learn := gen.Generate(2000)
	base := gen.Generate(8000)
	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = 4
	opt.OrderGroups = true
	idx, err := pqfastscan.Build(learn, base, opt)
	if err != nil {
		t.Fatal(err)
	}
	return idx, gen.Generate(5)
}

// TestWithDiskStoreEndToEnd: attaching a disk store changes nothing
// observable — every kernel answers bit-identically before and after,
// mutations keep working, Save produces a loadable snapshot, and the
// store reports sensible counters.
func TestWithDiskStoreEndToEnd(t *testing.T) {
	idx, queries := buildDiskTestIndex(t, 4242)
	ctx := context.Background()

	type answer struct {
		ids  []int64
		dist []float32
	}
	ask := func(k pqfastscan.Kernel, qi int) answer {
		res, err := idx.Search(ctx, queries.Row(qi), 10, pqfastscan.WithKernel(k), pqfastscan.WithNProbe(4))
		if err != nil {
			t.Fatalf("kernel %v: %v", k, err)
		}
		var a answer
		for _, r := range res.Results {
			a.ids = append(a.ids, r.ID)
			a.dist = append(a.dist, r.Distance)
		}
		return a
	}

	before := map[pqfastscan.Kernel][]answer{}
	for _, k := range pqfastscan.Kernels() {
		for qi := 0; qi < queries.Rows(); qi++ {
			before[k] = append(before[k], ask(k, qi))
		}
	}

	if _, ok := idx.StoreStats(); ok {
		t.Fatal("StoreStats ok before any attach")
	}
	dir := t.TempDir()
	// An orphan from a "previous owner" must be swept at attach.
	orphan := filepath.Join(dir, ".pqfsext-leftover")
	if err := os.WriteFile(orphan, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := idx.WithDiskStore(dir, 8<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan temp file survived attach: %v", err)
	}
	// Idempotent re-attach; different dir refused.
	if err := idx.WithDiskStore(dir, 8<<20); err != nil {
		t.Fatalf("re-attach to same dir: %v", err)
	}
	if err := idx.WithDiskStore(t.TempDir(), 8<<20); err == nil {
		t.Fatal("attach to a second dir accepted")
	}

	for _, k := range pqfastscan.Kernels() {
		for qi := 0; qi < queries.Rows(); qi++ {
			got := ask(k, qi)
			want := before[k][qi]
			for i := range want.ids {
				if got.ids[i] != want.ids[i] || got.dist[i] != want.dist[i] {
					t.Fatalf("kernel %v q%d result %d: (%d,%g), want (%d,%g)",
						k, qi, i, got.ids[i], got.dist[i], want.ids[i], want.dist[i])
				}
			}
		}
	}

	st, ok := idx.StoreStats()
	if !ok {
		t.Fatal("StoreStats not ok after attach")
	}
	if st.ExtentBytes <= 0 || st.Dir != dir {
		t.Fatalf("store stats %+v: want positive extent bytes under %s", st, dir)
	}
	if st.Pool.ResidentBytes > st.Pool.CapacityBytes+st.Pool.PinnedBytes {
		t.Fatalf("pool invariant violated: %+v", st.Pool)
	}

	// Mutations on the paged index, then a Save/Load round trip: the
	// loaded (RAM) index must answer like the paged one.
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 4343})
	ids, err := idx.AddBatch(gen.Generate(100))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.idx")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := pqfastscan.LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < queries.Rows(); qi++ {
		a, err := idx.Search(ctx, queries.Row(qi), 10, pqfastscan.WithNProbe(4))
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Search(ctx, queries.Row(qi), 10, pqfastscan.WithNProbe(4))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Results {
			if a.Results[i] != b.Results[i] {
				t.Fatalf("q%d result %d: paged %+v, loaded %+v", qi, i, a.Results[i], b.Results[i])
			}
		}
	}
}

// TestDiskStoreBoundedResidency: with the pool capped at ~10% of the
// extent footprint the whole dataset stays queryable and the pool
// never holds more than capacity + pinned.
func TestDiskStoreBoundedResidency(t *testing.T) {
	idx, queries := buildDiskTestIndex(t, 5151)
	if err := idx.WithDiskStore(t.TempDir(), 1<<30); err != nil {
		t.Fatal(err)
	}
	st, _ := idx.StoreStats()
	cap := st.ExtentBytes / 10
	if cap < 1 {
		cap = 1
	}
	idx.Internal().SetPoolCapacity(cap)

	ctx := context.Background()
	for pass := 0; pass < 3; pass++ {
		for qi := 0; qi < queries.Rows(); qi++ {
			if _, err := idx.Search(ctx, queries.Row(qi), 10, pqfastscan.WithNProbe(idx.Partitions())); err != nil {
				t.Fatal(err)
			}
			st, _ := idx.StoreStats()
			if st.Pool.ResidentBytes > st.Pool.CapacityBytes+st.Pool.PinnedBytes {
				t.Fatalf("resident %d > capacity %d + pinned %d", st.Pool.ResidentBytes, st.Pool.CapacityBytes, st.Pool.PinnedBytes)
			}
		}
	}
	st, _ = idx.StoreStats()
	if st.Pool.Evictions == 0 {
		t.Fatalf("full sweeps at 10%% capacity never evicted: %+v", st.Pool)
	}
}

// TestDiskStoreWithWAL: durability and paging compose — a paged index
// checkpoints through pinned captures and recovers to the same state.
func TestDiskStoreWithWAL(t *testing.T) {
	idx, queries := buildDiskTestIndex(t, 6161)
	if err := idx.WithDiskStore(t.TempDir(), 8<<20); err != nil {
		t.Fatal(err)
	}
	walDir := t.TempDir()
	if err := idx.WithWAL(walDir, pqfastscan.DurabilityOptions{}); err != nil {
		t.Fatal(err)
	}
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 6262})
	ids, err := idx.AddBatch(gen.Generate(60))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Delete(ids[3]); err != nil {
		t.Fatal(err)
	}
	if err := idx.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := idx.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	rec, err := pqfastscan.Recover(walDir, pqfastscan.DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Live() != idx.Live() {
		t.Fatalf("recovered live %d, want %d", rec.Live(), idx.Live())
	}
	ctx := context.Background()
	for qi := 0; qi < queries.Rows(); qi++ {
		a, err := idx.Search(ctx, queries.Row(qi), 10, pqfastscan.WithNProbe(4))
		if err != nil {
			t.Fatal(err)
		}
		b, err := rec.Search(ctx, queries.Row(qi), 10, pqfastscan.WithNProbe(4))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Results {
			if a.Results[i] != b.Results[i] {
				t.Fatalf("q%d result %d: paged %+v, recovered %+v", qi, i, a.Results[i], b.Results[i])
			}
		}
	}
}
