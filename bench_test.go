package pqfastscan_test

// This file regenerates every table and figure of the paper's evaluation
// section as testing.B benchmarks, one per experiment. The experiment
// drivers live in internal/bench; cmd/pqbench runs the same drivers at
// larger scales. Each benchmark reports the experiment's table on first
// run (b.N iterations only re-time the scan work, not the output).
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// The benchmarks share one lazily built environment (dataset + index) so
// the suite stays fast on a single core.

import (
	"fmt"
	"io"
	"os"
	"sync"
	"testing"

	"pqfastscan/internal/bench"
	"pqfastscan/internal/index"
	"pqfastscan/internal/perf"
	"pqfastscan/internal/scan"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *bench.Env
	benchEnvErr  error
)

func sharedEnv(b *testing.B) *bench.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = bench.NewEnv(bench.SmallScale)
	})
	if benchEnvErr != nil {
		b.Fatalf("building benchmark environment: %v", benchEnvErr)
	}
	return benchEnv
}

// runExperiment executes a registered experiment driver once, emitting
// its table, and leaves kernel-level timing to the dedicated scan
// benchmarks below.
func runExperiment(b *testing.B, name string, out io.Writer) {
	b.Helper()
	exp, ok := bench.Find(name)
	if !ok {
		b.Fatalf("experiment %q not registered", name)
	}
	var env *bench.Env
	if exp.NeedsEnv {
		env = sharedEnv(b)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := out
		if i > 0 {
			w = io.Discard // print the table once, time the rest
		}
		if err := exp.Run(env, w); err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
}

func experimentBenchmark(name string) func(*testing.B) {
	return func(b *testing.B) {
		fmt.Fprintf(os.Stderr, "\n--- %s ---\n", name)
		runExperiment(b, name, os.Stderr)
	}
}

// One benchmark per paper table/figure (see DESIGN.md §4 for the mapping).
func BenchmarkTable1CacheLevels(b *testing.B)           { experimentBenchmark("table1")(b) }
func BenchmarkTable2InstructionProperties(b *testing.B) { experimentBenchmark("table2")(b) }
func BenchmarkFigure3ScanImplementations(b *testing.B)  { experimentBenchmark("fig3")(b) }
func BenchmarkTable3PartitionSizes(b *testing.B)        { experimentBenchmark("table3")(b) }
func BenchmarkFigure14ResponseTimes(b *testing.B)       { experimentBenchmark("fig14")(b) }
func BenchmarkFigure15PerfCounters(b *testing.B)        { experimentBenchmark("fig15")(b) }
func BenchmarkFigure16KeepParameter(b *testing.B)       { experimentBenchmark("fig16")(b) }
func BenchmarkFigure17QuantizationOnly(b *testing.B)    { experimentBenchmark("fig17")(b) }
func BenchmarkFigure18TopkParameter(b *testing.B)       { experimentBenchmark("fig18")(b) }
func BenchmarkFigure19PartitionSize(b *testing.B)       { experimentBenchmark("fig19")(b) }
func BenchmarkFigure20LargeScale(b *testing.B)          { experimentBenchmark("fig20")(b) }
func BenchmarkFigure11AssignmentAblation(b *testing.B)  { experimentBenchmark("fig11")(b) }
func BenchmarkGroupingComponentsAblation(b *testing.B)  { experimentBenchmark("grouping")(b) }
func BenchmarkGroupOrderingAblation(b *testing.B)       { experimentBenchmark("ordering")(b) }
func BenchmarkMemoryFootprint(b *testing.B)             { experimentBenchmark("memory")(b) }
func BenchmarkWideRegisters(b *testing.B)               { experimentBenchmark("wide")(b) }
func BenchmarkMemoryBandwidth(b *testing.B)             { experimentBenchmark("bandwidth")(b) }
func BenchmarkRecall(b *testing.B)                      { experimentBenchmark("recall")(b) }
func BenchmarkAlgorithmSteps(b *testing.B)              { experimentBenchmark("steps")(b) }

// Kernel micro-benchmarks: measured Go ns/vector for every scan kernel on
// the largest partition. These are the wall-clock counterparts of the
// modeled counters (the simd package emulates SIMD semantics in scalar
// Go, so measured ratios differ from the modeled silicon ratios; see
// DESIGN.md "Substitutions").
func benchmarkKernel(b *testing.B, kern index.Kernel, fsOpt scan.FastScanOptions) {
	env := sharedEnv(b)
	part := 0
	bestN := -1
	for i, p := range env.Index.Parts() {
		if p.N > bestN {
			part, bestN = i, p.N
		}
	}
	t := env.TablesFor(0, part)
	p := env.Index.Parts()[part]
	var fs *scan.FastScan
	if kern == index.KernelFastScan || kern == index.KernelFastScan256 {
		var err error
		fs, err = env.FastScanner(part, fsOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch kern {
		case index.KernelNaive:
			scan.Naive(p, t, 100)
		case index.KernelLibpq:
			scan.Libpq(p, t, 100)
		case index.KernelAVX:
			scan.AVX(p, t, 100)
		case index.KernelGather:
			scan.Gather(p, t, 100)
		case index.KernelQuantOnly:
			scan.QuantizationOnly(p, t, 100, fsOpt.Keep)
		case index.KernelFastScan:
			fs.Scan(t, 100)
		case index.KernelFastScan256:
			fs.Scan256(t, 100)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(p.N), "ns/vec")
}

func BenchmarkScanNaive(b *testing.B)  { benchmarkKernel(b, index.KernelNaive, bench.PaperFastOpts()) }
func BenchmarkScanLibpq(b *testing.B)  { benchmarkKernel(b, index.KernelLibpq, bench.PaperFastOpts()) }
func BenchmarkScanAVX(b *testing.B)    { benchmarkKernel(b, index.KernelAVX, bench.PaperFastOpts()) }
func BenchmarkScanGather(b *testing.B) { benchmarkKernel(b, index.KernelGather, bench.PaperFastOpts()) }
func BenchmarkScanQuantizationOnly(b *testing.B) {
	benchmarkKernel(b, index.KernelQuantOnly, bench.PaperFastOpts())
}
func BenchmarkScanFastScan256(b *testing.B) {
	env := sharedEnv(b)
	bestN := -1
	for _, p := range env.Index.Parts() {
		if p.N > bestN {
			bestN = p.N
		}
	}
	benchmarkKernel(b, index.KernelFastScan256, bench.HeadlineFastOpts(bestN, 100))
}

func BenchmarkScanFastScan(b *testing.B) {
	env := sharedEnv(b)
	bestN := -1
	for _, p := range env.Index.Parts() {
		if p.N > bestN {
			bestN = p.N
		}
	}
	benchmarkKernel(b, index.KernelFastScan, bench.HeadlineFastOpts(bestN, 100))
}

// BenchmarkDistanceTables times Step 2 of Algorithm 1 (per-query table
// computation), which the paper reports as <1% of query time.
func BenchmarkDistanceTables(b *testing.B) {
	env := sharedEnv(b)
	q := env.Queries.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Index.Tables(q, 0)
	}
}

// BenchmarkCostModel times the analytic counter pricing itself.
func BenchmarkCostModel(b *testing.B) {
	ops := perf.OpCounts{ScalarLoadF: 8e5, ScalarLoad8: 8e5, ScalarALU: 1.2e6, ScalarBranch: 2e5}
	for i := 0; i < b.N; i++ {
		perf.Estimate(ops, perf.Haswell)
	}
}
