module pqfastscan

go 1.24
