package pqfastscan

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pqfastscan/internal/fsio"
	"pqfastscan/internal/wal"
)

func buildSmall(t *testing.T) (*Index, *Dataset) {
	t.Helper()
	gen := NewSyntheticDataset(DatasetConfig{Seed: 7})
	learn := gen.Generate(1500)
	base := gen.Generate(4000)
	opt := DefaultBuildOptions()
	opt.Partitions = 4
	ix, err := Build(learn, base, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ix, gen
}

// sameSearch asserts both indexes answer a fixed query set identically.
func sameSearch(t *testing.T, a, b *Index, gen *Dataset, label string) {
	t.Helper()
	queries := gen.Generate(20)
	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.Row(qi)
		ra, err := a.Search(context.Background(), q, 10, WithNProbe(a.Partitions()))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Search(context.Background(), q, 10, WithNProbe(b.Partitions()))
		if err != nil {
			t.Fatal(err)
		}
		if len(ra.Results) != len(rb.Results) {
			t.Fatalf("%s: query %d: %d vs %d results", label, qi, len(ra.Results), len(rb.Results))
		}
		for i := range ra.Results {
			if ra.Results[i] != rb.Results[i] {
				t.Fatalf("%s: query %d result %d: %+v vs %+v", label, qi, i, ra.Results[i], rb.Results[i])
			}
		}
	}
}

func TestRecoverReplaysAcknowledgedMutations(t *testing.T) {
	dir := t.TempDir()
	ix, gen := buildSmall(t)
	if err := ix.WithWAL(dir, DurabilityOptions{}); err != nil {
		t.Fatal(err)
	}

	// The oracle applies the same mutations with no WAL and no crash.
	oracle, _ := buildSmall(t)

	extra := gen.Generate(50)
	ids, err := ix.AddBatch(extra)
	if err != nil {
		t.Fatal(err)
	}
	oids, err := oracle.AddBatch(extra)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if ids[i] != oids[i] {
			t.Fatalf("id divergence at %d: %d vs %d", i, ids[i], oids[i])
		}
	}
	for _, id := range []int64{ids[3], ids[10], 7} {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Delete(id); err != nil {
			t.Fatal(err)
		}
	}

	// "Crash": drop the handle without checkpointing and recover from
	// disk alone.
	if err := ix.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir, DurabilityOptions{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rec.CloseWAL()
	if rec.Live() != oracle.Live() {
		t.Fatalf("recovered live %d, oracle %d", rec.Live(), oracle.Live())
	}
	sameSearch(t, rec, oracle, gen, "recovered")

	// Ids keep advancing from where the crashed process left off.
	newIDs, err := rec.AddBatch(gen.Generate(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range newIDs {
		for _, old := range ids {
			if id == old {
				t.Fatalf("recovered index re-issued id %d", id)
			}
		}
	}
}

func TestRecoverTwiceIsIdempotent(t *testing.T) {
	// A crash during recovery's own checkpoint makes the next recovery
	// replay the same records again; both must converge to one state.
	dir := t.TempDir()
	ix, gen := buildSmall(t)
	if err := ix.WithWAL(dir, DurabilityOptions{}); err != nil {
		t.Fatal(err)
	}
	ids, err := ix.AddBatch(gen.Generate(30))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(ids[5]); err != nil {
		t.Fatal(err)
	}
	ix.CloseWAL()

	// First recovery, then sabotage its checkpoint back to the pre-
	// recovery shape: restore the replayed segment so it replays again.
	segsBefore, err := wal.Segments(fsio.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	raw := make(map[string][]byte)
	for _, s := range segsBefore {
		b, err := os.ReadFile(s.Path)
		if err != nil {
			t.Fatal(err)
		}
		raw[s.Path] = b
	}
	rec1, err := Recover(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec1.CloseWAL()
	for path, b := range raw {
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rec2, err := Recover(dir, DurabilityOptions{})
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer rec2.CloseWAL()
	if rec1.Live() != rec2.Live() {
		t.Fatalf("live diverged: %d vs %d", rec1.Live(), rec2.Live())
	}
	sameSearch(t, rec1, rec2, gen, "double replay")
}

func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	ix, gen := buildSmall(t)
	if err := ix.WithWAL(dir, DurabilityOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.AddBatch(gen.Generate(20)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	segs, err := wal.Segments(fsio.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Epoch != 2 {
		t.Fatalf("segments after checkpoint: %+v, want only epoch 2", segs)
	}
	st, ok := ix.WALStats()
	if !ok || st.Epoch != 2 {
		t.Fatalf("WALStats after checkpoint: %+v ok=%v", st, ok)
	}

	// Mutations after the checkpoint land in the new segment and are
	// recovered over the new snapshot.
	ids, err := ix.AddBatch(gen.Generate(5))
	if err != nil {
		t.Fatal(err)
	}
	live := ix.Live()
	ix.CloseWAL()
	rec, err := Recover(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.CloseWAL()
	if rec.Live() != live {
		t.Fatalf("recovered live %d, want %d", rec.Live(), live)
	}
	for _, id := range ids {
		if err := rec.Delete(id); err != nil {
			t.Fatalf("post-checkpoint add %d not recovered: %v", id, err)
		}
	}
}

func TestWithWALRefusesExistingState(t *testing.T) {
	dir := t.TempDir()
	ix, _ := buildSmall(t)
	if err := ix.WithWAL(dir, DurabilityOptions{}); err != nil {
		t.Fatal(err)
	}
	ix.CloseWAL()
	other, _ := buildSmall(t)
	if err := other.WithWAL(dir, DurabilityOptions{}); err == nil {
		t.Fatal("WithWAL over existing durable state succeeded")
	}
	if !HasDurable(dir) {
		t.Fatal("HasDurable false for a durable directory")
	}
	if HasDurable(t.TempDir()) {
		t.Fatal("HasDurable true for an empty directory")
	}
}

func TestRecoverRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	ix, gen := buildSmall(t)
	if err := ix.WithWAL(dir, DurabilityOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.AddBatch(gen.Generate(5)); err != nil {
		t.Fatal(err)
	}
	ix.CloseWAL()
	path := filepath.Join(dir, SnapshotFileName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a byte mid-file: the CRC must reject it at load.
	corrupt := append([]byte(nil), b...)
	corrupt[len(corrupt)/2] ^= 0xff
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir, DurabilityOptions{}); err == nil {
		t.Fatal("recovery accepted a corrupt snapshot")
	}

	// Truncate the file: the missing end magic must reject it even
	// before CRC comparison.
	if err := os.WriteFile(path, b[:len(b)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir, DurabilityOptions{}); err == nil {
		t.Fatal("recovery accepted a truncated snapshot")
	}
}

func TestDeleteNotFoundNotLogged(t *testing.T) {
	dir := t.TempDir()
	ix, _ := buildSmall(t)
	if err := ix.WithWAL(dir, DurabilityOptions{}); err != nil {
		t.Fatal(err)
	}
	defer ix.CloseWAL()
	before, _ := ix.WALStats()
	if err := ix.Delete(1 << 40); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete of absent id: %v", err)
	}
	after, _ := ix.WALStats()
	if after.Records != before.Records {
		t.Fatalf("failed delete reached the log: %d -> %d records", before.Records, after.Records)
	}
}
