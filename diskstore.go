// Beyond-RAM serving, façade surface: WithDiskStore moves an index's
// partition data into disk-resident extents behind a capacity-bounded
// buffer pool (DESIGN.md §15, internal/index/paging.go). Queries and
// mutations keep their exact semantics — results are bit-identical to
// RAM-resident serving — while resident memory is bounded by the pool
// capacity plus whatever probes currently hold pinned.
package pqfastscan

import (
	"pqfastscan/internal/index"
)

// StoreStats is the observable state of an attached disk store: the
// directory, the live extent footprint, and the buffer pool counters
// (hits, misses, evictions, resident and pinned bytes). Served under
// "bufpool" on /stats.
type StoreStats = index.StoreStats

// DefaultPoolBytes is the buffer pool capacity used when none is given
// (WithDiskStore poolBytes <= 0, or PQ_STORE_DIR set without
// PQ_POOL_BYTES).
const DefaultPoolBytes = index.DefaultPoolBytes

// WithDiskStore migrates the index this handle serves to disk-resident
// extents under dir, paged through a buffer pool bounded at poolBytes
// (DefaultPoolBytes when <= 0). The store directory is owned by this
// process: attach sweeps files left by previous owners, and extents are
// a rebuildable cache — durability remains Save/WithWAL's job. Indexes
// attached to the same directory (a serving index and its staged swap
// replacement) share one pool. Attaching twice to the same dir is
// idempotent; to a different dir, an error.
func (ix *Index) WithDiskStore(dir string, poolBytes int64) error {
	if poolBytes <= 0 {
		poolBytes = DefaultPoolBytes
	}
	return ix.load().AttachStore(dir, poolBytes)
}

// StoreStats returns the attached store's counters; ok is false on a
// RAM-resident index.
func (ix *Index) StoreStats() (StoreStats, bool) { return ix.load().StoreStats() }

// autoAttach applies the PQ_STORE_DIR / PQ_POOL_BYTES environment to a
// freshly built or loaded index: when PQ_STORE_DIR is set, every index
// comes up disk-resident — the hook the CI paged-mode leg uses to run
// the whole test suite over the paging stack. The logic lives on
// index.AttachStoreFromEnv so the bench harness (cmd/pqbench), whose
// environments build through internal/index directly, honors the same
// variables the same way.
func autoAttach(in *index.Index) error {
	_, err := in.AttachStoreFromEnv()
	return err
}
