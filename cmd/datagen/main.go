// Command datagen generates synthetic SIFT-like datasets in the TEXMEX
// corpus formats (fvecs/bvecs/ivecs) used by ANN_SIFT1B, plus exact
// ground truth — the dataset substitution described in DESIGN.md.
//
// Usage:
//
//	datagen -out /tmp/synth -base 100000 -learn 10000 -query 100 -gt 100
//
// writes synth_base.fvecs, synth_learn.fvecs, synth_query.fvecs and
// synth_groundtruth.ivecs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pqfastscan/internal/dataset"
	"pqfastscan/internal/vec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var (
		out      = flag.String("out", "synth", "output path prefix")
		baseN    = flag.Int("base", 100000, "number of base vectors")
		learnN   = flag.Int("learn", 10000, "number of learning vectors")
		queryN   = flag.Int("query", 100, "number of query vectors")
		gtK      = flag.Int("gt", 100, "ground-truth neighbors per query (0 disables)")
		seed     = flag.Uint64("seed", 1, "generator seed")
		clusters = flag.Int("clusters", 64, "mixture components")
		bvecs    = flag.Bool("bvecs", false, "write byte vectors (.bvecs) instead of .fvecs")
	)
	flag.Parse()

	gen := dataset.NewGenerator(dataset.Config{Seed: *seed, Clusters: *clusters})
	learn := gen.Generate(*learnN)
	base := gen.Generate(*baseN)
	queries := gen.Generate(*queryN)

	write := func(name string, m vec.Matrix) {
		ext := ".fvecs"
		writer := dataset.WriteFvecs
		if *bvecs {
			ext = ".bvecs"
			writer = dataset.WriteBvecs
		}
		path := *out + "_" + name + ext
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil && filepath.Dir(path) != "." {
			log.Fatal(err)
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := writer(f, m); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d vectors, dim %d)\n", path, m.Rows(), m.Dim)
	}
	write("learn", learn)
	write("base", base)
	write("query", queries)

	if *gtK > 0 {
		gt, err := dataset.GroundTruth(base, queries, *gtK)
		if err != nil {
			log.Fatal(err)
		}
		path := *out + "_groundtruth.ivecs"
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := dataset.WriteIvecs(f, gt); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d queries x top-%d)\n", path, len(gt), *gtK)
	}
}
