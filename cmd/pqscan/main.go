// Command pqscan builds an IVFADC index over a dataset file and answers
// nearest-neighbor queries with a selectable scan kernel, reporting
// response times, pruning statistics and (when ground truth is supplied)
// recall — the end-to-end search pipeline of the paper's Algorithm 1.
//
// Usage:
//
//	pqscan -base synth_base.fvecs -learn synth_learn.fvecs \
//	       -query synth_query.fvecs -gt synth_groundtruth.ivecs \
//	       -kernel fastpq -topk 100
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"pqfastscan/internal/dataset"
	"pqfastscan/internal/index"
	"pqfastscan/internal/persist"
	"pqfastscan/internal/scan"
	"pqfastscan/internal/vec"
)

func readVectors(path string, limit int) (vec.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return vec.Matrix{}, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bvecs") {
		return dataset.ReadBvecs(f, limit)
	}
	return dataset.ReadFvecs(f, limit)
}

func kernelByName(name string) (index.Kernel, error) {
	for _, k := range []index.Kernel{
		index.KernelNaive, index.KernelLibpq, index.KernelAVX,
		index.KernelGather, index.KernelFastScan, index.KernelQuantOnly,
		index.KernelFastScan256,
	} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown kernel %q (naive, libpq, avx, gather, fastpq, fastpq256, quantonly)", name)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pqscan: ")
	var (
		basePath   = flag.String("base", "", "base vectors (.fvecs or .bvecs)")
		learnPath  = flag.String("learn", "", "learning vectors (defaults to base)")
		queryPath  = flag.String("query", "", "query vectors")
		gtPath     = flag.String("gt", "", "ground truth (.ivecs), optional")
		kernelName = flag.String("kernel", "fastpq", "scan kernel")
		topk       = flag.Int("topk", 100, "neighbors per query")
		partitions = flag.Int("partitions", 8, "IVF partitions")
		keep       = flag.Float64("keep", scan.DefaultKeep, "keep fraction for qmax")
		maxBase    = flag.Int("maxbase", 0, "limit base vectors read (0 = all)")
		maxQuery   = flag.Int("maxquery", 0, "limit queries read (0 = all)")
		seed       = flag.Uint64("seed", 1, "training seed")
		ordered    = flag.Bool("ordered", true, "visit groups in lower-bound order (extension)")
		savePath   = flag.String("save", "", "write the built index to this path")
		loadPath   = flag.String("load", "", "load a previously saved index instead of building")
	)
	flag.Parse()

	if *basePath == "" || *queryPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	kernel, err := kernelByName(*kernelName)
	if err != nil {
		log.Fatal(err)
	}

	base, err := readVectors(*basePath, *maxBase)
	if err != nil {
		log.Fatalf("reading base: %v", err)
	}
	learn := base
	if *learnPath != "" {
		if learn, err = readVectors(*learnPath, 0); err != nil {
			log.Fatalf("reading learn: %v", err)
		}
	}
	queries, err := readVectors(*queryPath, *maxQuery)
	if err != nil {
		log.Fatalf("reading queries: %v", err)
	}
	fmt.Printf("base: %d vectors, dim %d; queries: %d\n", base.Rows(), base.Dim, queries.Rows())

	var ix *index.Index
	if *loadPath != "" {
		start := time.Now()
		ix, err = persist.LoadIndex(*loadPath)
		if err != nil {
			log.Fatalf("loading index: %v", err)
		}
		fmt.Printf("index loaded in %v, partitions: %v\n", time.Since(start).Round(time.Millisecond), ix.PartitionSizes())
	} else {
		opt := index.DefaultOptions()
		opt.Partitions = *partitions
		opt.Seed = *seed
		opt.FastScan = scan.FastScanOptions{Keep: *keep, GroupComponents: -1, OrderGroups: *ordered}
		start := time.Now()
		ix, err = index.Build(learn, base, opt)
		if err != nil {
			log.Fatalf("building index: %v", err)
		}
		fmt.Printf("index built in %v, partitions: %v\n", time.Since(start).Round(time.Millisecond), ix.PartitionSizes())
	}
	if *savePath != "" {
		if err := persist.SaveIndex(*savePath, ix); err != nil {
			log.Fatalf("saving index: %v", err)
		}
		fmt.Printf("index saved to %s\n", *savePath)
	}

	var (
		totalScan   time.Duration
		scanned     int
		pruned, lbs int
		results     [][]int64
	)
	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.Row(qi)
		t0 := time.Now()
		res, stats, _, err := ix.Search(q, *topk, kernel)
		if err != nil {
			log.Fatalf("query %d: %v", qi, err)
		}
		totalScan += time.Since(t0)
		scanned += stats.Scanned
		pruned += stats.Pruned
		lbs += stats.LowerBounds
		ids := make([]int64, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		results = append(results, ids)
	}
	nq := queries.Rows()
	fmt.Printf("kernel=%s topk=%d: mean response %.3f ms, %.1f Mvecs/s (measured)\n",
		kernel, *topk,
		float64(totalScan.Microseconds())/float64(nq)/1e3,
		float64(scanned)/totalScan.Seconds()/1e6)
	if lbs > 0 {
		fmt.Printf("pruned %.2f%% of %d lower-bounded vectors\n", 100*float64(pruned)/float64(lbs), lbs)
	}

	if *gtPath != "" {
		f, err := os.Open(*gtPath)
		if err != nil {
			log.Fatalf("reading ground truth: %v", err)
		}
		gt, err := dataset.ReadIvecs(f, 0)
		f.Close()
		if err != nil {
			log.Fatalf("reading ground truth: %v", err)
		}
		if len(gt) < nq {
			log.Fatalf("ground truth has %d rows for %d queries", len(gt), nq)
		}
		for _, r := range []int{1, 10, 100} {
			if r <= *topk {
				fmt.Printf("recall@%d = %.4f\n", r, dataset.Recall(results, gt, r))
			}
		}
	}
}
