// Command pqscan builds an IVFADC index over a dataset file and answers
// nearest-neighbor queries with a selectable scan kernel, reporting
// response times, pruning statistics and (when ground truth is supplied)
// recall — the end-to-end search pipeline of the paper's Algorithm 1.
//
// Usage:
//
//	pqscan -base synth_base.fvecs -learn synth_learn.fvecs \
//	       -query synth_query.fvecs -gt synth_groundtruth.ivecs \
//	       -kernel fastpq -topk 100
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"pqfastscan"
	"pqfastscan/internal/dataset"
)

func readVectors(path string, limit int) (pqfastscan.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return pqfastscan.Matrix{}, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bvecs") {
		return dataset.ReadBvecs(f, limit)
	}
	return dataset.ReadFvecs(f, limit)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pqscan: ")
	var (
		basePath   = flag.String("base", "", "base vectors (.fvecs or .bvecs)")
		learnPath  = flag.String("learn", "", "learning vectors (defaults to base)")
		queryPath  = flag.String("query", "", "query vectors")
		gtPath     = flag.String("gt", "", "ground truth (.ivecs), optional")
		kernelName = flag.String("kernel", "fastpq", "scan kernel")
		topk       = flag.Int("topk", 100, "neighbors per query")
		nprobe     = flag.Int("nprobe", 1, "partitions probed per query")
		partitions = flag.Int("partitions", 8, "IVF partitions")
		keep       = flag.Float64("keep", 0, "keep fraction for qmax (0 = paper default)")
		maxBase    = flag.Int("maxbase", 0, "limit base vectors read (0 = all)")
		maxQuery   = flag.Int("maxquery", 0, "limit queries read (0 = all)")
		seed       = flag.Uint64("seed", 1, "training seed")
		ordered    = flag.Bool("ordered", true, "visit groups in lower-bound order (extension)")
		savePath   = flag.String("save", "", "write the built index to this path")
		loadPath   = flag.String("load", "", "load a previously saved index instead of building")
	)
	flag.Parse()

	if *basePath == "" || *queryPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	kernel, err := pqfastscan.ParseKernel(*kernelName)
	if err != nil {
		log.Fatal(err)
	}

	// Interrupts cancel in-flight queries between partition scans.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	base, err := readVectors(*basePath, *maxBase)
	if err != nil {
		log.Fatalf("reading base: %v", err)
	}
	learn := base
	if *learnPath != "" {
		if learn, err = readVectors(*learnPath, 0); err != nil {
			log.Fatalf("reading learn: %v", err)
		}
	}
	queries, err := readVectors(*queryPath, *maxQuery)
	if err != nil {
		log.Fatalf("reading queries: %v", err)
	}
	fmt.Printf("base: %d vectors, dim %d; queries: %d\n", base.Rows(), base.Dim, queries.Rows())

	var ix *pqfastscan.Index
	if *loadPath != "" {
		start := time.Now()
		ix, err = pqfastscan.LoadIndex(*loadPath)
		if err != nil {
			log.Fatalf("loading index: %v", err)
		}
		fmt.Printf("index loaded in %v, partitions: %v\n", time.Since(start).Round(time.Millisecond), ix.PartitionSizes())
	} else {
		opt := pqfastscan.DefaultBuildOptions()
		opt.Partitions = *partitions
		opt.Seed = *seed
		opt.OrderGroups = *ordered
		if *keep > 0 {
			opt.Keep = *keep
		}
		start := time.Now()
		ix, err = pqfastscan.Build(learn, base, opt)
		if err != nil {
			log.Fatalf("building index: %v", err)
		}
		fmt.Printf("index built in %v, partitions: %v\n", time.Since(start).Round(time.Millisecond), ix.PartitionSizes())
	}
	if *savePath != "" {
		if err := ix.Save(*savePath); err != nil {
			log.Fatalf("saving index: %v", err)
		}
		fmt.Printf("index saved to %s\n", *savePath)
	}

	searcher := ix.With(
		pqfastscan.WithKernel(kernel),
		pqfastscan.WithNProbe(*nprobe),
		pqfastscan.WithStats(),
	)
	var (
		totalScan   time.Duration
		scanned     int
		pruned, lbs int
		results     [][]int64
	)
	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.Row(qi)
		t0 := time.Now()
		res, err := searcher.Search(ctx, q, *topk)
		if err != nil {
			log.Fatalf("query %d: %v", qi, err)
		}
		totalScan += time.Since(t0)
		scanned += res.Stats.Scanned
		pruned += res.Stats.Pruned
		lbs += res.Stats.LowerBounds
		ids := make([]int64, len(res.Results))
		for i, r := range res.Results {
			ids[i] = r.ID
		}
		results = append(results, ids)
	}
	nq := queries.Rows()
	fmt.Printf("kernel=%s topk=%d nprobe=%d: mean response %.3f ms, %.1f Mvecs/s (measured)\n",
		kernel, *topk, *nprobe,
		float64(totalScan.Microseconds())/float64(nq)/1e3,
		float64(scanned)/totalScan.Seconds()/1e6)
	if lbs > 0 {
		fmt.Printf("pruned %.2f%% of %d lower-bounded vectors\n", 100*float64(pruned)/float64(lbs), lbs)
	}

	if *gtPath != "" {
		f, err := os.Open(*gtPath)
		if err != nil {
			log.Fatalf("reading ground truth: %v", err)
		}
		gt, err := dataset.ReadIvecs(f, 0)
		f.Close()
		if err != nil {
			log.Fatalf("reading ground truth: %v", err)
		}
		if len(gt) < nq {
			log.Fatalf("ground truth has %d rows for %d queries", len(gt), nq)
		}
		for _, r := range []int{1, 10, 100} {
			if r <= *topk {
				fmt.Printf("recall@%d = %.4f\n", r, pqfastscan.Recall(results, gt, r))
			}
		}
	}
}
