// Command pqserve serves a pqfastscan index over HTTP — the concurrent
// query service of internal/server, as a deployable binary.
//
// Serve a persisted index:
//
//	pqserve -addr :8080 -index /data/sift.idx
//
// Or bring up a synthetic index for smoke tests and demos:
//
//	pqserve -addr 127.0.0.1:8080 -synthetic 100000
//
// Endpoints (JSON over HTTP, see DESIGN.md §10):
//
//	POST /search   {"query":[...],"k":10,"nprobe":1,"kernel":"fastpq"}
//	POST /add      {"vectors":[[...],...]}
//	POST /delete   {"id":123}                 404 when the id is not live
//	POST /swap     {"path":"/data/new.idx"}   hot snapshot swap
//	POST /save     {"path":"..."}             persist the serving index
//	POST /compact  {"partition":-1}           reclaim tombstones online
//	GET  /healthz
//	GET  /stats    request counts, p50/p99 latency, batch widths, sheds,
//	               per-partition live/dead/epoch counters
//
// Concurrent /search requests are micro-batched into SearchBatch calls;
// load beyond -max-inflight is shed with 429 after -queue-timeout; -save-
// interval enables periodic background persistence to -snapshot;
// -compact-interval enables the background dead-ratio compaction policy
// (partitions past -compact-threshold are rebuilt online without their
// tombstones).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pqfastscan"
	"pqfastscan/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("pqserve: ")
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		indexPath    = flag.String("index", "", "persisted index to serve (pqfastscan Save format)")
		synthetic    = flag.Int("synthetic", 0, "build a synthetic index of this many vectors instead of loading one")
		partitions   = flag.Int("partitions", 8, "IVF partitions for -synthetic builds")
		seed         = flag.Uint64("seed", 42, "seed for -synthetic builds")
		batchWindow  = flag.Duration("batch-window", time.Millisecond, "micro-batching window for /search coalescing")
		maxBatch     = flag.Int("max-batch", 64, "maximum queries per coalesced SearchBatch call")
		maxInFlight  = flag.Int("max-inflight", 0, "admission-control bound on concurrent searches (0 = 8×GOMAXPROCS)")
		queueTimeout = flag.Duration("queue-timeout", 50*time.Millisecond, "longest a search waits for admission before a 429")
		maxK         = flag.Int("max-k", 1000, "largest accepted k")
		snapshot     = flag.String("snapshot", "", "path for /save and periodic background saves (default: -index path)")
		saveEvery    = flag.Duration("save-interval", 0, "periodic background save interval (0 disables)")
		compactEvery = flag.Duration("compact-interval", time.Minute, "background compaction policy interval (0 disables); keeping it on bounds per-delete tombstone-set copy cost")
		compactAt    = flag.Float64("compact-threshold", 0.25, "dead ratio at which the policy compacts a partition")
	)
	flag.Parse()

	idx, err := openIndex(*indexPath, *synthetic, *partitions, *seed)
	if err != nil {
		log.Fatal(err)
	}
	snapPath := *snapshot
	if snapPath == "" {
		snapPath = *indexPath
	}

	srv, err := server.New(server.Config{
		Index:            idx,
		BatchWindow:      *batchWindow,
		MaxBatch:         *maxBatch,
		MaxInFlight:      *maxInFlight,
		QueueTimeout:     *queueTimeout,
		MaxK:             *maxK,
		SnapshotPath:     snapPath,
		SaveInterval:     *saveEvery,
		CompactInterval:  *compactEvery,
		CompactThreshold: *compactAt,
		Logf:             log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx) // stop accepting, drain handlers
		_ = srv.Close()      // then stop the batcher and saver
	}()

	// Name the scan backend at startup so a deployment log makes a
	// silent SWAR fallback (wrong image, masked CPU features) visible;
	// /healthz and /stats carry the same value for probes.
	log.Printf("scan backend %s (cpu features %v, available %v)",
		pqfastscan.ActiveBackend(), pqfastscan.CPUFeatures(), pqfastscan.AvailableBackends())
	if note := pqfastscan.BackendInitNote(); note != "" {
		log.Printf("backend selection: %s", note)
	}
	log.Printf("serving %d live vectors (partitions %v) on %s",
		idx.Live(), idx.PartitionSizes(), *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}

// openIndex loads the persisted index, or builds a synthetic one for
// demo and smoke-test runs.
func openIndex(path string, synthetic, partitions int, seed uint64) (*pqfastscan.Index, error) {
	switch {
	case path != "":
		start := time.Now()
		idx, err := pqfastscan.LoadIndex(path)
		if err != nil {
			return nil, err
		}
		log.Printf("loaded %s in %v", path, time.Since(start).Round(time.Millisecond))
		return idx, nil
	case synthetic > 0:
		start := time.Now()
		gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: seed})
		learnN := synthetic / 10
		if learnN < 1000 {
			learnN = 1000
		}
		opt := pqfastscan.DefaultBuildOptions()
		opt.Partitions = partitions
		opt.Seed = seed
		idx, err := pqfastscan.Build(gen.Generate(learnN), gen.Generate(synthetic), opt)
		if err != nil {
			return nil, err
		}
		log.Printf("built synthetic index (%d vectors) in %v", synthetic, time.Since(start).Round(time.Millisecond))
		return idx, nil
	default:
		return nil, errors.New("one of -index or -synthetic is required")
	}
}
