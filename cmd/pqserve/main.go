// Command pqserve serves a pqfastscan index over HTTP — the concurrent
// query service of internal/server, as a deployable binary.
//
// Serve a persisted index:
//
//	pqserve -addr :8080 -index /data/sift.idx
//
// Serve only a subset of its IVF cells — one shard of a cluster behind
// cmd/pqrouter (DESIGN.md §13):
//
//	pqserve -addr :8081 -index /data/sift.idx -cells 0-3
//
// Or bring up a synthetic index for smoke tests and demos:
//
//	pqserve -addr 127.0.0.1:8080 -synthetic 100000
//
// Serve crash-safely: every acknowledged /add and /delete is write-ahead
// logged into -wal-dir before the 200, and a restart (even after kill -9)
// recovers exactly the acknowledged state — no -index needed once the
// directory exists:
//
//	pqserve -addr :8080 -synthetic 100000 -wal-dir /data/wal
//	pqserve -addr :8080 -wal-dir /data/wal   # restart: recovers from the log
//
// Endpoints (JSON over HTTP, see DESIGN.md §10 and §13):
//
//	POST /search        {"query":[...],"k":10,"nprobe":1,"kernel":"fastpq"}
//	                    or {"query":[...],"k":10,"cells":[0,2]} (router sub-requests)
//	                    ?auto=1 plans open dimensions adaptively, ?recall=0.95
//	                    targets a recall fraction (DESIGN.md §16); with -auto
//	                    every request is planned unless it opts out (?auto=0)
//	POST /add           {"vectors":[[...],...]}
//	POST /delete        {"id":123}               404 when the id is not live
//	POST /swap          {"path":"/data/new.idx"} hot snapshot swap
//	POST /swap/prepare  {"path":"..."}           stage a snapshot (two-phase swap)
//	POST /swap/commit                            publish the staged snapshot
//	POST /swap/abort                             discard the staged snapshot
//	POST /save          {"path":"..."}           persist the serving index
//	POST /compact       {"partition":-1}         reclaim tombstones online
//	GET  /healthz       liveness: 200 while the process runs, even warming
//	GET  /readyz        readiness: 503 while loading, preparing, draining
//	GET  /meta          index geometry + coarse centroids + shard cells
//	GET  /stats         request counts, p50/p99 latency, batch widths, sheds,
//	                    per-partition live/dead/epoch counters
//
// Concurrent /search requests are micro-batched into SearchBatch calls;
// load beyond -max-inflight is shed with 429 after -queue-timeout; -save-
// interval enables periodic background persistence to -snapshot;
// -compact-interval enables the background dead-ratio compaction policy
// (partitions past -compact-threshold are rebuilt online without their
// tombstones). With -warm the index loads in the background while the
// listener is already up: /healthz answers immediately and /readyz flips
// to 200 when the load completes, so orchestrators can route around a
// shard streaming a large snapshot in. SIGTERM triggers a graceful
// shutdown: /readyz goes 503, the listener stops accepting, every
// in-flight and queued request is served, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pqfastscan"
	"pqfastscan/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("pqserve: ")
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		indexPath    = flag.String("index", "", "persisted index to serve (pqfastscan Save format)")
		synthetic    = flag.Int("synthetic", 0, "build a synthetic index of this many vectors instead of loading one")
		partitions   = flag.Int("partitions", 8, "IVF partitions for -synthetic builds")
		seed         = flag.Uint64("seed", 42, "seed for -synthetic builds")
		cellsFlag    = flag.String("cells", "", "IVF cells this shard serves, e.g. \"0-3\" or \"0,2,5-7\" (default: all)")
		auto         = flag.Bool("auto", false, "plan every /search adaptively by default: open dimensions (nprobe, kernel, backend, parallelism) are chosen from live cost observations; requests opt out with ?auto=0")
		warm         = flag.Bool("warm", false, "start serving probes immediately and load the index in the background")
		batchWindow  = flag.Duration("batch-window", time.Millisecond, "micro-batching window for /search coalescing")
		maxBatch     = flag.Int("max-batch", 64, "maximum queries per coalesced SearchBatch call")
		maxInFlight  = flag.Int("max-inflight", 0, "admission-control bound on concurrent searches (0 = 8×GOMAXPROCS)")
		queueTimeout = flag.Duration("queue-timeout", 50*time.Millisecond, "longest a search waits for admission before a 429")
		maxK         = flag.Int("max-k", 1000, "largest accepted k")
		snapshot     = flag.String("snapshot", "", "path for /save and periodic background saves (default: -index path)")
		saveEvery    = flag.Duration("save-interval", 0, "periodic background save interval (0 disables)")
		compactEvery = flag.Duration("compact-interval", time.Minute, "background compaction policy interval (0 disables); keeping it on bounds per-delete tombstone-set copy cost")
		compactAt    = flag.Float64("compact-threshold", 0.25, "dead ratio at which the policy compacts a partition")
		walDir       = flag.String("wal-dir", "", "crash-safe durability directory: mutations are write-ahead logged here before the 200, and startup recovers from it (existing durable state wins over -index/-synthetic)")
		walSyncEvery = flag.Int("wal-sync-every", 0, "fsync the log every N records instead of on every ack (0 = sync-on-ack, the durable default)")
		walSyncInt   = flag.Duration("wal-sync-interval", 0, "background log fsync interval for batched mode (bounds data loss in time; 0 disables)")
		storeDir     = flag.String("store-dir", "", "beyond-RAM serving: seal partition data into disk extents under this directory and page them through a bounded buffer pool (extents are a rebuildable cache owned by this process, not durable state)")
		poolBytes    = flag.Int64("pool-bytes", 0, "buffer pool capacity in bytes for -store-dir (0 = 256 MiB default)")
	)
	flag.Parse()

	cells, err := parseCells(*cellsFlag)
	if err != nil {
		log.Fatal(err)
	}
	snapPath := *snapshot
	if snapPath == "" {
		snapPath = *indexPath
	}

	cfg := server.Config{
		Cells:            cells,
		Auto:             *auto,
		BatchWindow:      *batchWindow,
		MaxBatch:         *maxBatch,
		MaxInFlight:      *maxInFlight,
		QueueTimeout:     *queueTimeout,
		MaxK:             *maxK,
		SnapshotPath:     snapPath,
		SaveInterval:     *saveEvery,
		CompactInterval:  *compactEvery,
		CompactThreshold: *compactAt,
		WALDir:           *walDir,
		WALSyncEvery:     *walSyncEvery,
		WALSyncInterval:  *walSyncInt,
		StoreDir:         *storeDir,
		PoolBytes:        *poolBytes,
		Logf:             log.Printf,
	}
	load := func() (*pqfastscan.Index, error) {
		return openIndex(*indexPath, *synthetic, *partitions, *seed, cells)
	}
	switch {
	case *walDir != "" && pqfastscan.HasDurable(*walDir):
		// The directory already holds acknowledged state; it wins over
		// -index/-synthetic, so don't load (or require) either.
		log.Printf("recovering durable state from %s", *walDir)
	case *warm || *walDir != "":
		// A durable first boot defers the load too: the server answers
		// probes while the index is built and the WAL initialized.
		cfg.Load = load
	default:
		idx, err := load()
		if err != nil {
			log.Fatal(err)
		}
		cfg.Index = idx
	}

	srv, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("shutting down: draining in-flight requests")
		// The graceful order: flip /readyz so routers stop sending new
		// work, stop accepting and drain the handlers (each waits for
		// its coalesced batch), then stop the batcher and background
		// loops — which serves anything still queued.
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		_ = srv.Close()
		log.Printf("shutdown complete")
	}()

	// Name the scan backend at startup so a deployment log makes a
	// silent SWAR fallback (wrong image, masked CPU features) visible;
	// /healthz and /stats carry the same value for probes.
	log.Printf("scan backend %s (cpu features %v, available %v)",
		pqfastscan.ActiveBackend(), pqfastscan.CPUFeatures(), pqfastscan.AvailableBackends())
	if note := pqfastscan.BackendInitNote(); note != "" {
		log.Printf("backend selection: %s", note)
	}
	if idx := srv.Index(); idx != nil {
		log.Printf("serving %d live vectors (partitions %v) on %s",
			idx.Live(), idx.PartitionSizes(), *addr)
	} else {
		log.Printf("listening on %s, index loading in background", *addr)
	}
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}

// parseCells parses the -cells flag: a comma-separated list of cell ids
// and inclusive ranges ("0-3,5,7-8"). Empty means all cells (nil).
func parseCells(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []int
	seen := make(map[int]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		lo, hi, ranged := strings.Cut(part, "-")
		a, err := strconv.Atoi(strings.TrimSpace(lo))
		if err != nil {
			return nil, fmt.Errorf("-cells %q: bad cell %q", s, part)
		}
		b := a
		if ranged {
			if b, err = strconv.Atoi(strings.TrimSpace(hi)); err != nil {
				return nil, fmt.Errorf("-cells %q: bad range %q", s, part)
			}
		}
		if a < 0 || b < a {
			return nil, fmt.Errorf("-cells %q: range %q is empty or negative", s, part)
		}
		for c := a; c <= b; c++ {
			if seen[c] {
				return nil, fmt.Errorf("-cells %q: cell %d listed twice", s, c)
			}
			seen[c] = true
			out = append(out, c)
		}
	}
	return out, nil
}

// openIndex loads the persisted index (restricted to the shard's cells
// when given), or builds a synthetic one for demo and smoke-test runs.
func openIndex(path string, synthetic, partitions int, seed uint64, cells []int) (*pqfastscan.Index, error) {
	switch {
	case path != "":
		start := time.Now()
		idx, err := pqfastscan.LoadIndexCells(path, cells)
		if err != nil {
			return nil, err
		}
		log.Printf("loaded %s in %v", path, time.Since(start).Round(time.Millisecond))
		return idx, nil
	case synthetic > 0:
		start := time.Now()
		gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: seed})
		learnN := synthetic / 10
		if learnN < 1000 {
			learnN = 1000
		}
		opt := pqfastscan.DefaultBuildOptions()
		opt.Partitions = partitions
		opt.Seed = seed
		idx, err := pqfastscan.Build(gen.Generate(learnN), gen.Generate(synthetic), opt)
		if err != nil {
			return nil, err
		}
		if cells != nil {
			if idx, err = idx.RestrictCells(cells...); err != nil {
				return nil, err
			}
		}
		log.Printf("built synthetic index (%d vectors) in %v", synthetic, time.Since(start).Round(time.Millisecond))
		return idx, nil
	default:
		return nil, errors.New("one of -index or -synthetic is required")
	}
}
