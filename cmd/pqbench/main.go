// Command pqbench regenerates the paper's tables and figures.
//
// Usage:
//
//	pqbench -list
//	pqbench -exp fig16
//	pqbench -exp all -scale large
//	pqbench -json > BENCH_prN.json
//
// Each experiment prints the rows or series of the corresponding table or
// figure of the paper's evaluation section (§5); EXPERIMENTS.md records a
// reference run next to the paper's numbers.
//
// -json switches to the wall-clock benchmark suite: every kernel on both
// execution engines (model and native) over several partition sizes —
// with one native Fast Scan row per available block-kernel backend
// (asm-avx2/asm-neon/swar), plus the host's backend and CPU-feature
// record — emitted as machine-readable JSON on stdout so the repository
// can record a BENCH_*.json trajectory across PRs.
//
// -serve switches to served-throughput load generation against the
// internal/server query service, reporting QPS and latency quantiles
// (p50/p90/p99) as JSON. By default it self-hosts a server over a
// synthetic index so the run is reproducible from one command; -serve-url
// points it at an external pqserve instead. Combining -json -serve emits
// one combined document with both the kernel numbers and the serving
// numbers (the BENCH_pr3.json baseline format):
//
//	pqbench -serve
//	pqbench -serve -serve-url http://localhost:8080
//	pqbench -json -serve > BENCH_prN.json
//
// -mixed runs the mixed read/write isolation benchmark: concurrent
// searchers over a quiescent index versus the same index absorbing a
// configurable write ratio (online Add/Delete plus background
// compaction), reporting read p50/p99 for both phases and their ratio —
// near 1 means mutations no longer stall readers. Combine with -json
// for the pqfastscan-bench/v3 document (the BENCH_pr4.json baseline):
//
//	pqbench -mixed
//	pqbench -mixed -mixed-write-ratio 0.2
//	pqbench -json -mixed > BENCH_prN.json
//
// -shards runs the cluster scaling benchmark (internal/cluster,
// DESIGN.md §13): one synthetic index split over 1, then 2, then 4
// in-process pqserve shards behind a scatter-gather router, the same
// load driven through the router at each shard count. Every layout is
// first verified to answer bit-identically to the single-node index;
// the report records the QPS/latency curve and the speedup over one
// shard. Combine with the other modes for the pqfastscan-bench/v5
// document (the BENCH_pr6.json baseline):
//
//	pqbench -serve -shards 1,2,4
//	pqbench -json -serve -shards 1,2,4 > BENCH_prN.json
//
// -coldstart runs the beyond-RAM serving benchmark (DESIGN.md §15): a
// synthetic index is sealed into disk extents, then for each pool
// capacity in -coldstart-pools (fractions of the on-disk footprint) a
// cold query pass — every partition faulting in from disk through the
// buffer pool — is measured against a warm pass over the same queries.
// The report records cold/warm QPS and latency quantiles, the pool's
// hit/miss/eviction counters, and whether the residency invariant
// (resident <= capacity + pinned) held throughout. Combine with -json
// for the pqfastscan-bench/v7 document (the BENCH_pr8.json baseline):
//
//	pqbench -coldstart
//	pqbench -coldstart -coldstart-pools 1.0,0.25,0.05
//	pqbench -json -coldstart > BENCH_prN.json
//
// -planner runs the adaptive-planner sweep (DESIGN.md §16): a fixed
// grid of query configurations — nprobe × kernel/backend — measured
// against WithAuto and WithTargetRecall on the same index, first
// RAM-resident and then paged through a small buffer pool
// (-planner-pool of the extent footprint). Every planned query is
// asserted bit-identical to the fixed-option query built from its
// decision before anything is timed; the report records each point's
// QPS/p50/p99, the auto-vs-best and worst-vs-auto p99 ratios, and the
// planner's decision counters. Combine with -json for the
// pqfastscan-bench/v8 document (the BENCH_pr9.json baseline):
//
//	pqbench -planner
//	pqbench -planner -planner-pool 0.25
//	pqbench -json -planner > BENCH_prN.json
//
// -chaos runs the self-healing benchmark (DESIGN.md §17): a 2-shard ×
// 2-replica fleet behind a router whose HTTP client injects faults via
// internal/faultnet — a healthy window, then a fault window (one
// primary completely dark, the other resetting a fraction of its
// connections mid-flight), then the recovery after the faults lift.
// Every complete answer in every window is verified bit-identical to a
// single-node oracle; the report records goodput, p50/p99, the
// partial-answer rate per window, the time back to sustained full
// answers, and the immune-system counters (failovers, hedges, breaker
// fast-fails, quarantines, reinstatements). Combine with -json for the
// pqfastscan-bench/v9 document (the BENCH_pr10.json baseline):
//
//	pqbench -chaos
//	pqbench -chaos -chaos-reset-p 0.6
//	pqbench -json -chaos > BENCH_prN.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"pqfastscan/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pqbench: ")
	var (
		expName  = flag.String("exp", "all", "experiment name(s), comma-separated (see -list), or \"all\"")
		scale    = flag.String("scale", "default", "environment scale: small, default or large")
		list     = flag.Bool("list", false, "list available experiments and exit")
		seed     = flag.Uint64("seed", 42, "dataset and training seed")
		baseN    = flag.Int("n", 0, "override base set size")
		jsonOut  = flag.Bool("json", false, "run the wall-clock kernel benchmarks (both engines) and emit JSON on stdout")
		jsonK    = flag.Int("k", 100, "top-k for -json and -serve benchmarks")
		jsonSize = flag.String("sizes", "10000,100000", "comma-separated partition sizes for -json benchmarks")

		serveOut  = flag.Bool("serve", false, "run served-throughput load generation (QPS/p50/p99 JSON); with -json, emit one combined report")
		serveURL  = flag.String("serve-url", "", "drive an external pqserve at this URL instead of self-hosting")
		serveN    = flag.Int("serve-n", 100000, "database size for the self-hosted serving benchmark")
		serveDur  = flag.Duration("serve-duration", 5*time.Second, "measurement window for -serve")
		serveConc = flag.Int("serve-conc", 16, "concurrent load-generator clients for -serve")
		serveNP   = flag.Int("serve-nprobe", 1, "nprobe per served query")

		mixedOut     = flag.Bool("mixed", false, "run the mixed read/write isolation benchmark (read p50/p99 with and without concurrent writers); with -json, emit one combined report")
		mixedN       = flag.Int("mixed-n", 100000, "database size for the -mixed benchmark")
		mixedReaders = flag.Int("mixed-readers", 0, "concurrent searcher goroutines for -mixed (0 = 2×GOMAXPROCS)")
		mixedRatio   = flag.Float64("mixed-write-ratio", 0.05, "target write fraction of total operations during the mutating phase")
		mixedDur     = flag.Duration("mixed-duration", 3*time.Second, "per-phase measurement window for -mixed")

		durOut     = flag.Bool("durability", false, "run the durability benchmark (acked-write latency per WAL sync discipline, read-path tax, recovery replay rate); with -json, emit one combined report")
		durN       = flag.Int("durability-n", 20000, "database size for the -durability benchmark")
		durOps     = flag.Int("durability-ops", 2000, "acked mutations per sync discipline for -durability")
		durWriters = flag.Int("durability-writers", 4, "concurrent writer goroutines for -durability")

		coldOut     = flag.Bool("coldstart", false, "run the beyond-RAM cold-start benchmark (disk extents behind the buffer pool: cold vs warm QPS/p99 over a pool-capacity sweep); with -json, emit one combined report")
		coldN       = flag.Int("coldstart-n", 20000, "database size for the -coldstart benchmark")
		coldParts   = flag.Int("coldstart-partitions", 8, "IVF cells for the -coldstart benchmark")
		coldQueries = flag.Int("coldstart-queries", 64, "queries per cold/warm pass for -coldstart")
		coldPools   = flag.String("coldstart-pools", "1.0,0.5,0.1", "comma-separated pool capacities for -coldstart, as fractions of the extent footprint")

		planOut     = flag.Bool("planner", false, "run the adaptive-planner sweep (planner vs fixed nprobe×kernel grid, RAM and paged regimes, bit-identity asserted first); with -json, emit one combined report")
		planN       = flag.Int("planner-n", 100000, "database size for the -planner benchmark")
		planQueries = flag.Int("planner-queries", 32, "distinct queries for -planner")
		planRounds  = flag.Int("planner-rounds", 10, "measurement passes over the query set per grid point for -planner")
		planPool    = flag.Float64("planner-pool", 0.1, "paged-regime pool capacity for -planner, as a fraction of the extent footprint")
		planRecall  = flag.Float64("planner-recall", 0.9, "recall target measured beside the min-latency auto point for -planner")

		chaosOut    = flag.Bool("chaos", false, "run the self-healing chaos benchmark (goodput/p99/partial rate under injected faults, recovery time after they lift); with -json, emit one combined report")
		chaosN      = flag.Int("chaos-n", 100000, "database size for the -chaos benchmark")
		chaosWindow = flag.Duration("chaos-window", 3*time.Second, "length of the healthy and fault windows for -chaos")
		chaosConc   = flag.Int("chaos-conc", 8, "concurrent load-generator clients for -chaos")
		chaosResetP = flag.Float64("chaos-reset-p", 0.4, "mid-flight connection-reset probability injected on one primary during the fault window")

		shardsFlag = flag.String("shards", "", "comma-separated shard counts for the cluster scaling benchmark, e.g. \"1,2,4\"; with -json/-serve/-mixed, emit one combined report")
		shardN     = flag.Int("shard-n", 100000, "database size for the -shards benchmark")
		shardParts = flag.Int("shard-partitions", 8, "IVF cells for the -shards benchmark")
		shardDur   = flag.Duration("shard-duration", 3*time.Second, "measurement window per shard count for -shards")
		shardConc  = flag.Int("shard-conc", 16, "concurrent load-generator clients for -shards")
		shardNP    = flag.Int("shard-nprobe", 2, "nprobe per routed query for -shards")
	)
	flag.Parse()

	shardCounts, err := parseShardCounts(*shardsFlag)
	if err != nil {
		log.Fatal(err)
	}
	poolFracs, err := parsePoolFractions(*coldPools)
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut || *serveOut || *mixedOut || *durOut || *coldOut || *planOut || *chaosOut || len(shardCounts) > 0 {
		runMachineReadable(*jsonOut, *serveOut, *mixedOut, *durOut, *coldOut, *planOut, *chaosOut, shardCounts, *seed, *jsonSize, *jsonK,
			bench.ServeConfig{
				URL:         *serveURL,
				BaseN:       *serveN,
				Seed:        *seed,
				K:           *jsonK,
				NProbe:      *serveNP,
				Concurrency: *serveConc,
				Duration:    *serveDur,
			},
			bench.MixedConfig{
				BaseN:      *mixedN,
				Seed:       *seed,
				K:          *jsonK,
				Readers:    *mixedReaders,
				WriteRatio: *mixedRatio,
				Duration:   *mixedDur,
			},
			bench.DurabilityConfig{
				BaseN:   *durN,
				Seed:    *seed,
				Ops:     *durOps,
				Writers: *durWriters,
			},
			bench.ClusterConfig{
				BaseN:       *shardN,
				Partitions:  *shardParts,
				Seed:        *seed,
				K:           *jsonK,
				NProbe:      *shardNP,
				Concurrency: *shardConc,
				Duration:    *shardDur,
				Shards:      shardCounts,
			},
			bench.ColdstartConfig{
				BaseN:      *coldN,
				Partitions: *coldParts,
				Seed:       *seed,
				K:          *jsonK,
				Queries:    *coldQueries,
				Fractions:  poolFracs,
			},
			bench.PlannerConfig{
				BaseN:        *planN,
				Seed:         *seed,
				K:            *jsonK,
				Queries:      *planQueries,
				Rounds:       *planRounds,
				PoolFraction: *planPool,
				Recall:       *planRecall,
			},
			bench.ChaosConfig{
				BaseN:       *chaosN,
				Seed:        *seed,
				K:           *jsonK,
				Concurrency: *chaosConc,
				Window:      *chaosWindow,
				ResetP:      *chaosResetP,
			})
		return
	}

	if *list {
		for _, e := range bench.Registry {
			fmt.Printf("%-10s %s\n", e.Name, e.Title)
		}
		return
	}

	var s bench.Scale
	switch *scale {
	case "small":
		s = bench.SmallScale
	case "default":
		s = bench.DefaultScale
	case "large":
		s = bench.LargeScale
	default:
		log.Fatalf("unknown scale %q (want small, default or large)", *scale)
	}
	s.Seed = *seed
	if *baseN > 0 {
		s.BaseN = *baseN
	}

	var selected []bench.Experiment
	if *expName == "all" {
		selected = bench.Registry
	} else {
		for _, name := range strings.Split(*expName, ",") {
			e, ok := bench.Find(strings.TrimSpace(name))
			if !ok {
				log.Fatalf("unknown experiment %q; run with -list", name)
			}
			selected = append(selected, e)
		}
	}

	needEnv := false
	for _, e := range selected {
		needEnv = needEnv || e.NeedsEnv
	}
	var env *bench.Env
	if needEnv {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "building %s environment (base=%d, partitions=%d)...\n",
			s.Name, s.BaseN, s.Partitions)
		var err error
		env, err = bench.NewEnv(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "environment ready in %v\n\n", time.Since(start).Round(time.Millisecond))
	}

	for _, e := range selected {
		fmt.Printf("=== %s — %s ===\n", e.Name, e.Title)
		if err := e.Run(env, os.Stdout); err != nil {
			log.Fatalf("%s: %v", e.Name, err)
		}
		fmt.Println()
	}
}

// parsePoolFractions parses the -coldstart-pools flag: a comma-separated
// list of pool capacities as fractions of the extent footprint.
func parsePoolFractions(s string) ([]float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 || v > 1 {
			return nil, fmt.Errorf("bad -coldstart-pools entry %q (want fractions in (0,1], e.g. \"1.0,0.5,0.1\")", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseShardCounts parses the -shards flag: a comma-separated list of
// shard counts to measure. Empty disables the cluster benchmark.
func parseShardCounts(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -shards entry %q (want positive shard counts, e.g. \"1,2,4\")", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// runMachineReadable dispatches the -json / -serve / -mixed /
// -durability / -shards / -coldstart / -planner / -chaos modes: a
// single report alone, or the combined pqfastscan-bench/v9 document
// when several are requested (the BENCH_pr10.json baseline format:
// kernels per backend + serving + durability + cluster scaling + the
// beyond-RAM cold-start sweep + the adaptive-planner sweep + the
// self-healing chaos run).
func runMachineReadable(kernels, serve, mixed, durability, coldstart, planner, chaos bool, shardCounts []int, seed uint64, sizeList string, k int, serveCfg bench.ServeConfig, mixedCfg bench.MixedConfig, durCfg bench.DurabilityConfig, clusterCfg bench.ClusterConfig, coldCfg bench.ColdstartConfig, planCfg bench.PlannerConfig, chaosCfg bench.ChaosConfig) {
	var sizes []int
	if kernels {
		for _, s := range strings.Split(sizeList, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v <= 0 {
				log.Fatalf("bad -sizes entry %q", s)
			}
			sizes = append(sizes, v)
		}
	}
	shards := len(shardCounts) > 0
	single := 0
	for _, on := range []bool{kernels, serve, mixed, durability, shards, coldstart, planner, chaos} {
		if on {
			single++
		}
	}
	if single == 1 {
		var err error
		switch {
		case serve:
			err = bench.RunServe(os.Stdout, serveCfg)
		case mixed:
			err = bench.RunMixed(os.Stdout, mixedCfg)
		case durability:
			err = bench.RunDurability(os.Stdout, durCfg)
		case shards:
			err = bench.RunCluster(os.Stdout, clusterCfg)
		case coldstart:
			err = bench.RunColdstart(os.Stdout, coldCfg)
		case planner:
			err = bench.RunPlanner(os.Stdout, planCfg)
		case chaos:
			err = bench.RunChaos(os.Stdout, chaosCfg)
		default:
			err = bench.RunWallClock(os.Stdout, seed, sizes, k)
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	// v9: adds the self-healing chaos section; v8 the adaptive-planner
	// section; v7 the coldstart section and the mem record in the
	// kernels header; v6 the durability section; v5 the cluster scaling
	// section; v4's kernels section carries the block-kernel backend
	// record (active/available backends, CPU features, per-backend
	// native Fast Scan rows) and the mixed section names its backend.
	combined := bench.CombinedReport{Schema: "pqfastscan-bench/v9"}
	if kernels {
		fmt.Fprintln(os.Stderr, "running wall-clock kernel benchmarks...")
		kr, err := bench.MeasureWallClock(seed, sizes, k)
		if err != nil {
			log.Fatal(err)
		}
		combined.Kernels = kr
	}
	if serve {
		fmt.Fprintln(os.Stderr, "running served-throughput benchmark...")
		sr, err := bench.MeasureServe(serveCfg)
		if err != nil {
			log.Fatal(err)
		}
		combined.Serve = sr
	}
	if mixed {
		fmt.Fprintln(os.Stderr, "running mixed read/write benchmark...")
		mr, err := bench.MeasureMixed(mixedCfg)
		if err != nil {
			log.Fatal(err)
		}
		combined.Mixed = mr
	}
	if durability {
		fmt.Fprintln(os.Stderr, "running durability benchmark...")
		dr, err := bench.MeasureDurability(durCfg)
		if err != nil {
			log.Fatal(err)
		}
		combined.Durability = dr
	}
	if shards {
		fmt.Fprintln(os.Stderr, "running cluster scaling benchmark...")
		cr, err := bench.MeasureCluster(clusterCfg)
		if err != nil {
			log.Fatal(err)
		}
		combined.Cluster = cr
	}
	if coldstart {
		fmt.Fprintln(os.Stderr, "running beyond-RAM cold-start benchmark...")
		cr, err := bench.MeasureColdstart(coldCfg)
		if err != nil {
			log.Fatal(err)
		}
		combined.Coldstart = cr
	}
	if planner {
		fmt.Fprintln(os.Stderr, "running adaptive-planner sweep...")
		pr, err := bench.MeasurePlanner(planCfg)
		if err != nil {
			log.Fatal(err)
		}
		combined.Planner = pr
	}
	if chaos {
		fmt.Fprintln(os.Stderr, "running self-healing chaos benchmark...")
		cr, err := bench.MeasureChaos(chaosCfg)
		if err != nil {
			log.Fatal(err)
		}
		combined.Chaos = cr
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(combined); err != nil {
		log.Fatal(err)
	}
}
