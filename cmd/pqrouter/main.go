// Command pqrouter fronts a fleet of pqserve shards with scatter-gather
// query serving (internal/cluster, DESIGN.md §13). Each -shard flag
// assigns an inclusive IVF cell range to one shard's endpoints — the
// primary first, read replicas after it:
//
//	pqrouter -addr :8080 \
//	    -shard 0-3=http://10.0.0.1:8081,http://10.0.0.3:8081 \
//	    -shard 4-7=http://10.0.0.2:8081
//
// At startup the router fetches every shard's /meta, verifies the fleet
// serves one snapshot (bit-identical coarse centroids) and that the
// ranges tile the cell space, then answers the same API a single
// pqserve exposes — clients cannot tell a router from a node, and
// results are bit-identical to a single node holding all cells:
//
//	POST /search   {"query":[...],"k":10,"nprobe":2,"kernel":"fastpq"}
//	               ?recall=0.95 plans nprobe from the fleet's cell sizes;
//	               ?auto=1 forwards adaptive kernel/backend planning to shards
//	POST /swap     {"path":"/data/new.idx"}  fleet-wide two-phase swap
//	GET  /healthz  liveness
//	GET  /readyz   readiness (503 while draining)
//	GET  /stats    fanout latency, per-shard failovers and hedges
//
// A shard sub-request that fails is retried on the shard's replicas
// under a bounded budget (-max-attempts, exponential backoff with full
// jitter between repeat rounds); a primary that is merely slow is
// hedged after -hedge-delay. With -allow-partial (or per-request
// ?partial=1) a query outliving every retry degrades instead of
// failing: the surviving shards' results are merged and the response
// carries a coverage field. /swap
// prepares the snapshot on every endpoint before committing it
// anywhere, so a fleet swap under traffic serves zero failed requests
// and the fleet never mixes epochs for longer than one commit round.
// SIGTERM drains gracefully: /readyz goes 503, in-flight fanouts
// finish, then the process exits 0.
//
// Self-healing (DESIGN.md §17). Every endpoint has a circuit breaker:
// -breaker-threshold consecutive failures trip it open, attempts fail
// fast for -breaker-cooldown, then a single half-open probe decides
// recovery. With -probe-interval set, a background prober walks every
// endpoint's /readyz, quarantines endpoints failing -quarantine-after
// consecutive probes out of the candidate set, and reinstates them
// after -reinstate-after healthy ones — so failover and hedging pick
// among live replicas instead of rediscovering deadness per request.
// Per-attempt timeouts adapt to each endpoint's latency EWMA once it
// has warmed up, capped by -shard-timeout. Clients may bound a query
// end-to-end with an X-Pq-Deadline-Ms header (relative milliseconds):
// the remaining budget is forwarded on every sub-request and expired
// work is rejected 504 before any scanning. Mutations (/add, /delete)
// are forwarded to shard primaries and never re-sent after an
// ambiguous failure — the reply is a 502 with "outcome": "unknown".
// Breaker states, quarantine events, retry and deadline-reject
// counters all surface on /stats.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pqfastscan/internal/cluster"
)

// shardFlags collects repeated -shard specs.
type shardFlags []cluster.ShardSpec

func (s *shardFlags) String() string { return fmt.Sprint(*s) }

func (s *shardFlags) Set(v string) error {
	spec, err := cluster.ParseShardSpec(v)
	if err != nil {
		return err
	}
	*s = append(*s, spec)
	return nil
}

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("pqrouter: ")
	var shards shardFlags
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		shardTimeout = flag.Duration("shard-timeout", 10*time.Second, "budget for one shard sub-request including failover and retries")
		hedgeDelay   = flag.Duration("hedge-delay", 50*time.Millisecond, "wait before hedging a slow primary to a replica (negative disables)")
		maxAttempts  = flag.Int("max-attempts", 0, "attempt cap per shard per query, cycling its endpoints with jittered backoff (0 = endpoints+2)")
		allowPartial = flag.Bool("allow-partial", false, "degrade instead of failing when shards are down: merge surviving shards and report coverage (per-request opt-in stays available via ?partial=1)")
		auto         = flag.Bool("auto", false, "plan every query adaptively by default: ?recall= targets map to a probe prefix over the fleet's cell sizes and shards plan kernel/backend locally via forwarded ?auto=1 (requests opt out with ?auto=0)")
		maxK         = flag.Int("max-k", 1000, "largest accepted k")

		breakerThreshold = flag.Int("breaker-threshold", 5, "consecutive failures that trip an endpoint's circuit breaker open (negative disables breakers)")
		breakerCooldown  = flag.Duration("breaker-cooldown", time.Second, "how long an open breaker fails fast before half-open admits a probe request")
		probeInterval    = flag.Duration("probe-interval", time.Second, "background /readyz probe cadence for health-driven quarantine (0 disables)")
		probeTimeout     = flag.Duration("probe-timeout", 500*time.Millisecond, "budget for one health probe")
		quarantineAfter  = flag.Int("quarantine-after", 3, "consecutive failed probes that quarantine an endpoint out of the candidate set")
		reinstateAfter   = flag.Int("reinstate-after", 2, "consecutive healthy probes that reinstate a quarantined endpoint")
	)
	flag.Var(&shards, "shard", "cell range and endpoints, \"LO-HI=URL[,URL...]\" (primary first; repeatable)")
	flag.Parse()

	if len(shards) == 0 {
		log.Fatal("at least one -shard is required")
	}
	router, err := cluster.New(cluster.Config{
		Shards:           shards,
		ShardTimeout:     *shardTimeout,
		HedgeDelay:       *hedgeDelay,
		MaxAttempts:      *maxAttempts,
		AllowPartial:     *allowPartial,
		Auto:             *auto,
		MaxK:             *maxK,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		QuarantineAfter:  *quarantineAfter,
		ReinstateAfter:   *reinstateAfter,
		Logf:             log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer router.Close()

	hs := &http.Server{Addr: *addr, Handler: router.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("shutting down: draining in-flight fanouts")
		router.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		log.Printf("shutdown complete")
	}()

	for si, spec := range shards {
		log.Printf("shard %d: cells %d-%d on %v", si, spec.Lo, spec.Hi, spec.Endpoints)
	}
	log.Printf("routing %d cells over %d shards on %s", router.Partitions(), len(shards), *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}
