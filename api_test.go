package pqfastscan_test

import (
	"context"
	"strings"
	"testing"

	"pqfastscan"
)

func allKernels() []pqfastscan.Kernel {
	return pqfastscan.Kernels()
}

func sameResultSlices(t *testing.T, label string, a, b []pqfastscan.Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d results vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: rank %d differs: %v vs %v", label, i, a[i], b[i])
		}
	}
}

// TestLegacyEquivalence pins every deprecated entry point to the
// context-aware Search path: for each kernel and query, the legacy
// wrappers and the new API must return identical neighbor lists,
// statistics and routing.
func TestLegacyEquivalence(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	ctx := context.Background()

	for _, kern := range allKernels() {
		for qi := 0; qi < queries.Rows(); qi++ {
			q := queries.Row(qi)
			legacy, err := idx.SearchKernel(q, 25, kern)
			if err != nil {
				t.Fatal(err)
			}
			modern, err := idx.Search(ctx, q, 25, pqfastscan.WithKernel(kern))
			if err != nil {
				t.Fatal(err)
			}
			sameResultSlices(t, "SearchKernel/"+kern.String(), legacy, modern.Results)
		}
	}

	// The seed's default Search.
	q := queries.Row(0)
	legacy, err := idx.SearchLegacy(q, 40)
	if err != nil {
		t.Fatal(err)
	}
	modern, err := idx.Search(ctx, q, 40)
	if err != nil {
		t.Fatal(err)
	}
	sameResultSlices(t, "SearchLegacy", legacy, modern.Results)

	// Multi-probe.
	for _, nprobe := range []int{1, 2, 4} {
		for qi := 0; qi < queries.Rows(); qi++ {
			q := queries.Row(qi)
			legacy, err := idx.SearchMulti(q, 30, nprobe)
			if err != nil {
				t.Fatal(err)
			}
			modern, err := idx.Search(ctx, q, 30, pqfastscan.WithNProbe(nprobe))
			if err != nil {
				t.Fatal(err)
			}
			sameResultSlices(t, "SearchMulti", legacy, modern.Results)
			if len(modern.Partitions) != nprobe {
				t.Fatalf("nprobe=%d probed partitions %v", nprobe, modern.Partitions)
			}
		}
	}

	// Stats + partition.
	for _, kern := range allKernels() {
		res, stats, part, err := idx.SearchWithStats(q, 50, kern)
		if err != nil {
			t.Fatal(err)
		}
		modern, err := idx.Search(ctx, q, 50, pqfastscan.WithKernel(kern), pqfastscan.WithStats())
		if err != nil {
			t.Fatal(err)
		}
		sameResultSlices(t, "SearchWithStats/"+kern.String(), res, modern.Results)
		if modern.Stats == nil || *modern.Stats != stats {
			t.Fatalf("kernel %v: stats differ between legacy and new path", kern)
		}
		if modern.Partitions[0] != part {
			t.Fatalf("kernel %v: partition %d vs %d", kern, modern.Partitions[0], part)
		}
	}

	// Batch.
	legacyBatch, err := idx.SearchBatchLegacy(queries, 15)
	if err != nil {
		t.Fatal(err)
	}
	modernBatch, err := idx.SearchBatch(ctx, queries, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacyBatch) != len(modernBatch) {
		t.Fatalf("batch sizes differ: %d vs %d", len(legacyBatch), len(modernBatch))
	}
	for i := range legacyBatch {
		sameResultSlices(t, "SearchBatch", legacyBatch[i], modernBatch[i].Results)
	}
}

// TestSearcherInterface: the index and its preconfigured views are
// interchangeable Searchers, and With pre-applies options.
func TestSearcherInterface(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	ctx := context.Background()
	q := queries.Row(0)

	var searchers = map[string]pqfastscan.Searcher{
		"index":       idx,
		"multi-probe": idx.With(pqfastscan.WithNProbe(4)),
		"naive-stats": idx.With(pqfastscan.WithKernel(pqfastscan.KernelNaive), pqfastscan.WithStats()),
	}
	for name, s := range searchers {
		res, err := s.Search(ctx, q, 10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Results) != 10 {
			t.Fatalf("%s: got %d results", name, len(res.Results))
		}
	}

	probe := idx.With(pqfastscan.WithNProbe(4))
	res, err := probe.Search(ctx, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Partitions) != 4 {
		t.Fatalf("preconfigured nprobe ignored: probed %v", res.Partitions)
	}
	// A per-call option overrides the preconfigured one.
	res, err = probe.Search(ctx, q, 10, pqfastscan.WithNProbe(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Partitions) != 1 {
		t.Fatalf("per-call override ignored: probed %v", res.Partitions)
	}

	stats, err := searchers["naive-stats"].Search(ctx, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stats == nil {
		t.Fatal("preconfigured WithStats ignored")
	}
}

func TestSearchValidation(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	ctx := context.Background()
	q := queries.Row(0)
	parts := len(idx.PartitionSizes())

	cases := []struct {
		name string
		call func() error
		want string
	}{
		{"k=0", func() error { _, err := idx.Search(ctx, q, 0); return err }, "k must be positive"},
		{"k<0", func() error { _, err := idx.Search(ctx, q, -5); return err }, "k must be positive"},
		{"dim mismatch", func() error { _, err := idx.Search(ctx, q[:10], 5); return err }, "dim"},
		{"nprobe negative", func() error {
			_, err := idx.Search(ctx, q, 5, pqfastscan.WithNProbe(-1))
			return err
		}, "nprobe"},
		{"nprobe zero option", func() error {
			_, err := idx.Search(ctx, q, 5, pqfastscan.WithNProbe(0))
			return err
		}, "nprobe"},
		{"nprobe too large", func() error {
			_, err := idx.Search(ctx, q, 5, pqfastscan.WithNProbe(parts+1))
			return err
		}, "nprobe"},
		{"unknown engine", func() error {
			_, err := idx.Search(ctx, q, 5, pqfastscan.WithEngine(pqfastscan.Engine(42)))
			return err
		}, "unknown engine"},
		{"legacy multi nprobe=0", func() error { _, err := idx.SearchMulti(q, 5, 0); return err }, "nprobe"},
		{"legacy multi nprobe>parts", func() error { _, err := idx.SearchMulti(q, 5, parts+1); return err }, "nprobe"},
		{"legacy multi k=0", func() error { _, err := idx.SearchMulti(q, 0, 2); return err }, "k must be positive"},
		{"legacy kernel k=0", func() error { _, err := idx.SearchKernel(q, 0, pqfastscan.KernelFastScan); return err }, "k must be positive"},
		{"legacy multi dim", func() error { _, err := idx.SearchMulti(q[:10], 5, 2); return err }, "dim"},
		{"batch dim mismatch", func() error {
			bad := pqfastscan.NewMatrix(2, 10)
			_, err := idx.SearchBatch(ctx, bad, 5)
			return err
		}, "dim"},
		{"legacy batch k=0", func() error { _, err := idx.SearchBatchLegacy(queries, 0); return err }, "k must be positive"},
	}
	for _, c := range cases {
		err := c.call()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestSearchHonorsContext(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := idx.Search(ctx, queries.Row(0), 10); err != context.Canceled {
		t.Fatalf("canceled single search returned %v", err)
	}
	if _, err := idx.Search(ctx, queries.Row(0), 10, pqfastscan.WithNProbe(4)); err != context.Canceled {
		t.Fatalf("canceled multi-probe search returned %v", err)
	}
	if _, err := idx.SearchBatch(ctx, queries, 10); err != context.Canceled {
		t.Fatalf("canceled batch search returned %v", err)
	}
}

// TestStatsWithParallel pins the defined semantics of combining
// WithStats and WithParallel: the combination is supported, per-partition
// counters are merged in deterministic cell-visit order after the
// parallel workers join, and the attached statistics (operation counts
// included) are identical to the sequential multi-probe scan's — never
// racy, never silently disabled.
func TestStatsWithParallel(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	ctx := context.Background()

	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.Row(qi)
		seq, err := idx.Search(ctx, q, 10, pqfastscan.WithNProbe(4), pqfastscan.WithStats())
		if err != nil {
			t.Fatal(err)
		}
		par, err := idx.Search(ctx, q, 10,
			pqfastscan.WithNProbe(4), pqfastscan.WithStats(), pqfastscan.WithParallel())
		if err != nil {
			t.Fatal(err)
		}
		sameResultSlices(t, "stats+parallel", seq.Results, par.Results)
		if par.Stats == nil {
			t.Fatal("WithParallel silently disabled stats collection")
		}
		if *par.Stats != *seq.Stats {
			t.Fatalf("parallel stats differ from sequential:\n  par %+v\n  seq %+v", *par.Stats, *seq.Stats)
		}
		if par.Stats.Scanned == 0 || par.Stats.Ops.ScalarLoadF == 0 {
			t.Fatalf("parallel stats counters empty: %+v", *par.Stats)
		}
	}

	// The full triple with an explicit kernel works too, and still
	// rejects the one genuinely contradictory combination.
	q := queries.Row(0)
	if _, err := idx.Search(ctx, q, 10, pqfastscan.WithKernel(pqfastscan.KernelNaive),
		pqfastscan.WithNProbe(4), pqfastscan.WithStats(), pqfastscan.WithParallel()); err != nil {
		t.Fatalf("kernel+nprobe+stats+parallel rejected: %v", err)
	}
	_, err := idx.Search(ctx, q, 10,
		pqfastscan.WithEngine(pqfastscan.EngineNative), pqfastscan.WithStats(), pqfastscan.WithParallel())
	if err == nil || !strings.Contains(err.Error(), "model engine") {
		t.Fatalf("native+stats+parallel: got %v, want model-engine error", err)
	}
}
