// Ivfpartitions: the large-database IVFADC scenario (paper §2.2 and
// §5.6/§5.7). The example builds a multi-cell inverted index, prints the
// partition size distribution (the shape of the paper's Table 3), then
// routes a query stream and reports per-partition scan behaviour —
// including how the automatic grouping-depth rule nmin(c) = 50·16^c
// reacts to partition size, the effect behind the paper's Figure 19.
//
// It also demonstrates multi-probe search (an extension beyond the
// paper): scanning the 2-3 closest cells trades latency for recall.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"pqfastscan"
	"pqfastscan/internal/layout"
)

func main() {
	const (
		nBase    = 150000
		nLearn   = 8000
		nQueries = 32
	)
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 23})
	learn := gen.Generate(nLearn)
	base := gen.Generate(nBase)
	queries := gen.Generate(nQueries)

	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = 16
	opt.OrderGroups = true
	idx, err := pqfastscan.Build(learn, base, opt)
	if err != nil {
		log.Fatal(err)
	}

	sizes := idx.PartitionSizes()
	order := make([]int, len(sizes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return sizes[order[a]] > sizes[order[b]] })

	fmt.Println("partition sizes (descending) and auto-selected grouping depth:")
	for _, p := range order {
		c := layout.AutoComponents(sizes[p])
		fmt.Printf("  partition %2d: %6d vectors  c=%d (nmin(c)=%d)\n",
			p, sizes[p], c, layout.MinPartitionSize(c))
	}

	// Route the query stream and aggregate per-partition statistics.
	type agg struct {
		queries int
		pruned  int
		lbs     int
	}
	ctx := context.Background()
	perPart := make([]agg, len(sizes))
	for qi := 0; qi < nQueries; qi++ {
		res, err := idx.Search(ctx, queries.Row(qi), 100, pqfastscan.WithStats())
		if err != nil {
			log.Fatal(err)
		}
		part := res.Partitions[0]
		perPart[part].queries++
		perPart[part].pruned += res.Stats.Pruned
		perPart[part].lbs += res.Stats.LowerBounds
	}
	fmt.Println("\nquery routing and pruning per partition:")
	for _, p := range order {
		a := perPart[p]
		if a.queries == 0 {
			continue
		}
		fmt.Printf("  partition %2d: %2d queries, pruned %.1f%% of lower-bounded vectors\n",
			p, a.queries, 100*float64(a.pruned)/float64(a.lbs))
	}

	// Multi-probe: recall rises with the number of probed cells.
	gt, err := pqfastscan.GroundTruth(base, queries, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmulti-probe recall@100 (extension beyond the paper):")
	for _, nprobe := range []int{1, 2, 4} {
		probe := idx.With(pqfastscan.WithNProbe(nprobe))
		var results [][]int64
		for qi := 0; qi < nQueries; qi++ {
			res, err := probe.Search(ctx, queries.Row(qi), 100)
			if err != nil {
				log.Fatal(err)
			}
			ids := make([]int64, len(res.Results))
			for i, r := range res.Results {
				ids[i] = r.ID
			}
			results = append(results, ids)
		}
		fmt.Printf("  nprobe=%d: recall@100 = %.3f\n", nprobe, pqfastscan.Recall(results, gt, 100))
	}
}
