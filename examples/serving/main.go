// Serving: run the pqfastscan query service in-process (the same
// internal/server engine the pqserve binary deploys) and talk to it the
// way a production client would — JSON over HTTP: add vectors online,
// search, and read the service metrics. In a real deployment the server
// side of this program is just `pqserve -addr :8080 -index sift.idx`.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"pqfastscan"
	"pqfastscan/internal/server"
)

func main() {
	// --- Server side: build a small index and serve it ----------------
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 7})
	learn := gen.Generate(5000)
	base := gen.Generate(50000)

	start := time.Now()
	idx, err := pqfastscan.Build(learn, base, pqfastscan.DefaultBuildOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d vectors in %v\n", base.Rows(), time.Since(start).Round(time.Millisecond))

	srv, err := server.New(server.Config{
		Index:       idx,
		BatchWindow: time.Millisecond, // coalesce concurrent searches
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	url := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", url)

	// --- Client side: plain HTTP from here on --------------------------

	// Health check.
	var health struct {
		Status string `json:"status"`
		Live   int    `json:"live"`
	}
	mustGet(url+"/healthz", &health)
	fmt.Printf("healthz: %s, %d live vectors\n", health.Status, health.Live)

	// Add two fresh vectors online; the service returns their ids.
	newVecs := gen.Generate(2)
	var added server.AddResponse
	mustPost(url+"/add", server.AddRequest{
		Vectors: [][]float32{newVecs.Row(0), newVecs.Row(1)},
	}, &added)
	fmt.Printf("added 2 vectors over HTTP, ids %v\n", added.IDs)

	// Search for one of them: it must come back as its own nearest
	// neighbor, served straight from the live index.
	var found server.SearchResponse
	mustPost(url+"/search", server.SearchRequest{
		Query: newVecs.Row(0), K: 3, NProbe: 4,
	}, &found)
	fmt.Printf("top-3 for the vector just added (expect id %d first):\n", added.IDs[0])
	for rank, r := range found.Results {
		fmt.Printf("  #%d id=%d distance=%.1f\n", rank+1, r.ID, r.Distance)
	}

	// A few ordinary queries.
	queries := gen.Generate(3)
	for qi := 0; qi < queries.Rows(); qi++ {
		var resp server.SearchResponse
		t0 := time.Now()
		mustPost(url+"/search", server.SearchRequest{Query: queries.Row(qi), K: 5}, &resp)
		fmt.Printf("query %d: top-5 over HTTP in %v (best id=%d)\n",
			qi, time.Since(t0).Round(time.Microsecond), resp.Results[0].ID)
	}

	// The service exports its own observability.
	var stats server.Stats
	mustGet(url+"/stats", &stats)
	search := stats.Endpoints["/search"]
	fmt.Printf("\n/stats: %d searches served, p50 %.2fms p99 %.2fms; %d SearchBatch calls (avg width %.1f); %d shed\n",
		search.Requests, search.P50Ms, search.P99Ms,
		stats.Batch.Calls, stats.Batch.AvgWidth, stats.Admission.Shed)
}

func mustPost(url string, body, out any) {
	raw, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	decode(url, resp, out)
}

func mustGet(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	decode(url, resp, out)
}

func decode(url string, resp *http.Response, out any) {
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: HTTP %d: %s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		log.Fatalf("%s: %v", url, err)
	}
}
