// Imagesearch: the content-based image retrieval scenario that motivates
// the paper's introduction ("Finding a multimedia object similar to a
// given query object therefore involves representing the query object as
// a high-dimensional vector and finding its nearest neighbor in the
// feature vector space").
//
// The example indexes a database of synthetic image descriptors, answers
// a batch of queries with every scan kernel, verifies all kernels return
// identical neighbor lists, and reports recall@R against exact
// brute-force ground truth along with each kernel's pruning statistics.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pqfastscan"
)

func main() {
	const (
		nBase    = 80000
		nLearn   = 5000
		nQueries = 20
		topk     = 100
	)
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 11})
	learn := gen.Generate(nLearn)
	base := gen.Generate(nBase)
	queries := gen.Generate(nQueries)

	opt := pqfastscan.DefaultBuildOptions()
	opt.OrderGroups = true
	idx, err := pqfastscan.Build(learn, base, opt)
	if err != nil {
		log.Fatal(err)
	}

	// Exact ground truth by brute force, for recall.
	gt, err := pqfastscan.GroundTruth(base, queries, 1)
	if err != nil {
		log.Fatal(err)
	}

	kernels := []pqfastscan.Kernel{
		pqfastscan.KernelNaive,
		pqfastscan.KernelLibpq,
		pqfastscan.KernelAVX,
		pqfastscan.KernelGather,
		pqfastscan.KernelFastScan,
	}
	ctx := context.Background()
	var reference [][]int64
	for _, kern := range kernels {
		// A preconfigured Searcher view: kernel fixed, statistics on.
		searcher := idx.With(pqfastscan.WithKernel(kern), pqfastscan.WithStats())
		var (
			results [][]int64
			elapsed time.Duration
			pruned  int
			lbs     int
			scanned int
		)
		for qi := 0; qi < nQueries; qi++ {
			start := time.Now()
			res, err := searcher.Search(ctx, queries.Row(qi), topk)
			if err != nil {
				log.Fatal(err)
			}
			elapsed += time.Since(start)
			pruned += res.Stats.Pruned
			lbs += res.Stats.LowerBounds
			scanned += res.Stats.Scanned
			ids := make([]int64, len(res.Results))
			for i, r := range res.Results {
				ids[i] = r.ID
			}
			results = append(results, ids)
		}
		if reference == nil {
			reference = results
		} else if !sameResults(reference, results) {
			log.Fatalf("kernel %v returned different neighbors", kern)
		}
		line := fmt.Sprintf("%-8v %6.2f ms/query  recall@1=%.3f  recall@100=%.3f",
			kern, float64(elapsed.Microseconds())/float64(nQueries)/1e3,
			pqfastscan.Recall(results, gt, 1), pqfastscan.Recall(results, gt, topk))
		if lbs > 0 {
			line += fmt.Sprintf("  pruned=%.1f%%", 100*float64(pruned)/float64(lbs))
		}
		fmt.Println(line)
	}
	fmt.Println("all kernels returned identical neighbor lists")
}

func sameResults(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
