// Persistentindex: the offline-build / online-serve deployment mode. The
// paper's system assumes the database is preprocessed once ("very large
// databases can be stored entirely in memory" as pqcodes, §1-§2) and then
// serves queries; this example builds an index, saves it to disk, reloads
// it in a fresh state, verifies query-for-query identical answers, and
// serves a concurrent query batch from the reloaded index.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"pqfastscan"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "pqfastscan-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "descriptors.pqfsidx")

	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 2029})
	learn := gen.Generate(4000)
	base := gen.Generate(60000)
	queries := gen.Generate(16)

	// Offline: build and persist.
	opt := pqfastscan.DefaultBuildOptions()
	opt.OrderGroups = true
	start := time.Now()
	idx, err := pqfastscan.Build(learn, base, opt)
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)
	if err := idx.Save(path); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built in %v, saved %d vectors to %s (%.2f MiB, %.1f bytes/vector)\n",
		buildTime.Round(time.Millisecond), base.Rows(), filepath.Base(path),
		float64(info.Size())/(1<<20), float64(info.Size())/float64(base.Rows()))

	// Online: reload and serve.
	start = time.Now()
	loaded, err := pqfastscan.LoadIndex(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded in %v (vs %v to rebuild)\n",
		time.Since(start).Round(time.Millisecond), buildTime.Round(time.Millisecond))

	// The reloaded index must answer identically.
	for qi := 0; qi < queries.Rows(); qi++ {
		a, err := idx.Search(ctx, queries.Row(qi), 10)
		if err != nil {
			log.Fatal(err)
		}
		b, err := loaded.Search(ctx, queries.Row(qi), 10)
		if err != nil {
			log.Fatal(err)
		}
		for i := range a.Results {
			if a.Results[i] != b.Results[i] {
				log.Fatalf("query %d: reloaded index answered differently", qi)
			}
		}
	}
	fmt.Println("reloaded index answers are identical to the original")

	// The reloaded index stays mutable: ingest online, delete, and save
	// again — the v2 format persists appended codes and tombstones.
	ids, err := loaded.AddBatch(gen.Generate(50))
	if err != nil {
		log.Fatal(err)
	}
	if err := loaded.Delete(ids[0]); err != nil {
		log.Fatal(err)
	}
	if err := loaded.Save(path); err != nil {
		log.Fatal(err)
	}
	again, err := pqfastscan.LoadIndex(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mutated online (+%d, -1) and re-persisted: %d live vectors after reload\n",
		len(ids), again.Live())

	// Concurrent batch serving (one goroutine per core, as the paper
	// deploys PQ Scan).
	start = time.Now()
	batch, err := loaded.SearchBatch(ctx, queries, 100)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("served %d queries in %v (%.2f ms/query)\n",
		len(batch), elapsed.Round(time.Microsecond),
		float64(elapsed.Microseconds())/float64(len(batch))/1e3)
}
