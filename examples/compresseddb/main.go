// Compresseddb: the paper's §6 generalization beyond ANN search —
// "Among practical uses of lookup tables is query execution in compressed
// databases. [...] For top-k queries, it is possible to build small
// tables enabling computation of lower or upper bounds. Like in PQ Fast
// Scan, lower bounds can then be used to limit L1-cache accesses."
//
// The example models a dictionary-compressed column store: a fact table
// column of float measurements stored as one-byte dictionary codes. A
// top-k smallest query (e.g. "the k cheapest offers") normally decodes
// every row through the 256-entry dictionary; here we build a 16-entry
// minimum table (one entry per 16-code dictionary portion), hold it in a
// modeled SIMD register, and use pshufb lookups + saturated adds to
// lower-bound 16 rows at a time, skipping the dictionary decode for rows
// that cannot enter the top-k.
package main

import (
	"fmt"
	"math"
	"sort"

	"pqfastscan/internal/rng"
	"pqfastscan/internal/simd"
)

const (
	nRows    = 1 << 20
	dictSize = 256
	topK     = 50
)

func main() {
	r := rng.New(99)

	// A sorted dictionary (typical for order-preserving dictionary
	// compression) of 256 measurement values.
	dict := make([]float32, dictSize)
	v := float32(0)
	for i := range dict {
		v += float32(r.Float64()*4 + 0.1)
		dict[i] = v
	}

	// The compressed column: skewed code distribution, as in real data.
	codes := make([]uint8, nRows)
	for i := range codes {
		u := r.Float64()
		codes[i] = uint8(math.Min(255, u*u*float64(dictSize)))
	}

	// Baseline: decode every row (one dictionary lookup per row).
	type row struct {
		id  int
		val float32
	}
	exact := topKSmallest(codes, dict)

	// Fast path: quantize the dictionary portion minima into a 16-entry
	// small table held in one 128-bit register. Each row's high nibble
	// indexes its portion; the portion minimum is a lower bound on the
	// row's decoded value.
	qmin := float64(dict[0])
	qmax := float64(dict[dictSize-1])
	delta := (qmax - qmin) / 127
	var small simd.Reg
	for h := 0; h < 16; h++ {
		m := dict[h*16]
		for _, d := range dict[h*16+1 : h*16+16] {
			if d < m {
				m = d
			}
		}
		q := int(math.Floor((float64(m) - qmin) / delta))
		if q > 127 {
			q = 127
		}
		if q < 0 {
			q = 0
		}
		small[h] = uint8(q)
	}

	heap := make([]row, 0, topK)
	threshold := float32(math.Inf(1))
	decodes, prunedBlocks, prunedRows := 0, 0, 0
	var lanes [16]uint8
	for base := 0; base+16 <= nRows; base += 16 {
		// High nibbles of 16 codes -> portion ids -> in-register lookup.
		for l := 0; l < 16; l++ {
			lanes[l] = codes[base+l] >> 4
		}
		idx := simd.Load(lanes[:])
		lb := simd.Pshufb(small, idx)

		// Quantized threshold for the compare (conservative: floor).
		t8 := 127
		if !math.IsInf(float64(threshold), 1) {
			t8 = int(math.Floor((float64(threshold) - qmin) / delta))
			if t8 > 127 {
				t8 = 127
			}
			if t8 < -128 {
				t8 = -128
			}
		}
		mask := simd.PmovmskB(simd.PcmpgtB(lb, simd.Broadcast(uint8(int8(t8)))))
		if mask == 0xffff {
			prunedBlocks++
			prunedRows += 16
			continue
		}
		for l := 0; l < 16; l++ {
			if mask&(1<<l) != 0 {
				prunedRows++
				continue
			}
			decodes++
			val := dict[codes[base+l]]
			if len(heap) < topK {
				heap = append(heap, row{id: base + l, val: val})
				if len(heap) == topK {
					sort.Slice(heap, func(a, b int) bool { return heap[a].val < heap[b].val })
					threshold = heap[topK-1].val
				}
				continue
			}
			if val >= threshold {
				continue
			}
			// Replace the current worst and re-establish the threshold.
			heap[topK-1] = row{id: base + l, val: val}
			sort.Slice(heap, func(a, b int) bool { return heap[a].val < heap[b].val })
			threshold = heap[topK-1].val
		}
	}

	fmt.Printf("rows: %d, top-%d query over a dictionary-compressed column\n", nRows, topK)
	fmt.Printf("dictionary decodes: baseline %d, with in-register lower bounds %d (%.2f%% pruned)\n",
		nRows, decodes, 100*float64(prunedRows)/float64(nRows))
	fmt.Printf("whole 16-row blocks skipped: %d of %d\n", prunedBlocks, nRows/16)

	// Verify the pruned scan found the same top-k values.
	got := make([]float32, len(heap))
	for i, h := range heap {
		got[i] = h.val
	}
	sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
	same := len(got) == len(exact)
	for i := range got {
		if same && got[i] != exact[i] {
			same = false
		}
	}
	fmt.Printf("top-%d values identical to full decode: %v\n", topK, same)
}

// topKSmallest decodes every row and returns the k smallest values.
func topKSmallest(codes []uint8, dict []float32) []float32 {
	vals := make([]float32, len(codes))
	for i, c := range codes {
		vals[i] = dict[c]
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	return vals[:topK]
}
