// Cluster: run a two-shard pqfastscan fleet behind a scatter-gather
// router, all in-process (the same internal/cluster engine the
// pqrouter binary deploys, fronting the same internal/server engine
// pqserve deploys), and drive it the way an operator would — JSON over
// HTTP: query through the router, check the answer is bit-identical to
// a single node holding every cell, then roll the whole fleet onto a
// new snapshot with the two-phase swap while it keeps serving. In a
// real deployment this program collapses to:
//
//	pqserve  -addr :8081 -index full.idx -cells 0-3
//	pqserve  -addr :8082 -index full.idx -cells 4-7
//	pqrouter -addr :8080 -shard 0-3=http://localhost:8081 \
//	                     -shard 4-7=http://localhost:8082
//
// The router self-heals around network faults (DESIGN.md §17); the
// defaults are sensible, and each knob is tunable:
//
//	pqrouter -addr :8080 \
//	    -shard 0-3=http://10.0.0.1:8081,http://10.0.0.3:8081 \
//	    -shard 4-7=http://10.0.0.2:8081,http://10.0.0.4:8081 \
//	    -breaker-threshold 5 -breaker-cooldown 1s \
//	    -probe-interval 1s -probe-timeout 500ms \
//	    -quarantine-after 3 -reinstate-after 2
//
// Consecutive failures trip an endpoint's circuit breaker (attempts
// then fail fast until a half-open probe succeeds); the background
// prober quarantines endpoints whose /readyz keeps failing and
// reinstates them when it recovers, so queries route around known-dead
// endpoints without paying a timeout each. Clients can bound a query
// end to end with an X-Pq-Deadline-Ms header (relative milliseconds) —
// expired work is rejected with 504 before any scanning — and routed
// mutations are never re-sent after an ambiguous failure (the reply is
// 502 with "outcome": "unknown"). Breaker states, quarantine events
// and deadline rejects all surface on the router's /stats.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"pqfastscan"
	"pqfastscan/internal/cluster"
	"pqfastscan/internal/server"
)

func main() {
	dir, err := os.MkdirTemp("", "pqcluster")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- Build one index, split it over two shards --------------------
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 7})
	learn := gen.Generate(5000)
	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = 8
	full, err := pqfastscan.Build(learn, gen.Generate(40000), opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built a %d-cell index, %d vectors\n", 8, full.Live())

	shardURLs := make([]string, 2)
	for i, cells := range [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}} {
		shard, err := full.RestrictCells(cells...)
		if err != nil {
			log.Fatal(err)
		}
		srv, err := server.New(server.Config{Index: shard, Cells: cells})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		shardURLs[i] = serve(srv.Handler())
		fmt.Printf("shard %d: cells %v, %d vectors on %s\n", i, cells, shard.Live(), shardURLs[i])
	}

	// --- Front them with a router -------------------------------------
	router, err := cluster.New(cluster.Config{Shards: []cluster.ShardSpec{
		{Lo: 0, Hi: 3, Endpoints: []string{shardURLs[0]}},
		{Lo: 4, Hi: 7, Endpoints: []string{shardURLs[1]}},
	}})
	if err != nil {
		log.Fatal(err)
	}
	routerURL := serve(router.Handler())
	fmt.Printf("router: %d cells over 2 shards on %s\n\n", router.Partitions(), routerURL)

	// --- Query the cluster; it must answer like the single node -------
	query := gen.Generate(1).Row(0)
	var clustered server.SearchResponse
	mustPost(routerURL+"/search", server.SearchRequest{Query: query, K: 5, NProbe: 3}, &clustered)
	single, err := full.Search(context.Background(), query, 5, pqfastscan.WithNProbe(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-5 through the router (probed cells %v):\n", clustered.Partitions)
	for rank, r := range clustered.Results {
		s := single.Results[rank]
		if r.ID != s.ID || r.Distance != s.Distance {
			log.Fatalf("rank %d: cluster (%d, %g) != single node (%d, %g)",
				rank+1, r.ID, r.Distance, s.ID, s.Distance)
		}
		fmt.Printf("  #%d id=%d distance=%.1f  (single node agrees)\n", rank+1, r.ID, r.Distance)
	}

	// --- Roll the fleet onto a new snapshot ---------------------------
	// Build tomorrow's index (same geometry, more vectors), persist it
	// where every shard can load it, and swap the whole fleet in two
	// phases: every shard prepares (loads and validates only its own
	// cells) before any shard commits.
	next, err := pqfastscan.Build(learn, gen.Generate(60000), opt)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, "next.idx")
	if err := next.Save(path); err != nil {
		log.Fatal(err)
	}
	var swap cluster.FleetSwapResult
	mustPost(routerURL+"/swap", map[string]string{"path": path}, &swap)
	fmt.Printf("\nfleet swap committed=%v on %d endpoints\n", swap.Committed, len(swap.Endpoints))

	// Every shard now serves its slice of the new snapshot.
	for i, u := range shardURLs {
		var health struct {
			Live int `json:"live"`
		}
		mustGet(u+"/healthz", &health)
		fmt.Printf("shard %d after swap: %d live vectors\n", i, health.Live)
	}
	mustPost(routerURL+"/search", server.SearchRequest{Query: query, K: 5, NProbe: 3}, &clustered)
	fmt.Printf("same query on the new snapshot: best id=%d distance=%.1f\n",
		clustered.Results[0].ID, clustered.Results[0].Distance)

	// --- The router exports its own observability ---------------------
	var stats cluster.RouterStats
	mustGet(routerURL+"/stats", &stats)
	fmt.Printf("\n/stats: %d queries routed, p50 %.2fms; %d fleet swaps; %d failovers, %d hedges\n",
		stats.Queries, stats.P50Ms, stats.FleetSwaps, stats.Failovers, stats.Hedges)
}

// serve mounts a handler on a loopback listener and returns its URL.
func serve(h http.Handler) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = (&http.Server{Handler: h}).Serve(ln) }()
	return "http://" + ln.Addr().String()
}

func mustPost(url string, body, out any) {
	raw, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	decode(url, resp, out)
}

func mustGet(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	decode(url, resp, out)
}

func decode(url string, resp *http.Response, out any) {
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: HTTP %d: %s", url, resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		log.Fatalf("%s: %v", url, err)
	}
}
