// Quickstart: build a small index over synthetic SIFT-like vectors,
// answer nearest-neighbor queries through the context-aware Search API,
// and mutate the index online with Add and Delete — no rebuild.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pqfastscan"
)

func main() {
	ctx := context.Background()

	// Deterministic synthetic data standing in for SIFT descriptors
	// (128-dimensional image feature vectors).
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 7})
	learn := gen.Generate(5000)  // training set for the quantizers
	base := gen.Generate(100000) // the database
	queries := gen.Generate(3)   // query vectors

	start := time.Now()
	idx, err := pqfastscan.Build(learn, base, pqfastscan.DefaultBuildOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d vectors in %v (partitions: %v)\n",
		base.Rows(), time.Since(start).Round(time.Millisecond), idx.PartitionSizes())

	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.Row(qi)
		start = time.Now()
		res, err := idx.Search(ctx, q, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d: top-5 in %v (partition %v)\n",
			qi, time.Since(start).Round(time.Microsecond), res.Partitions)
		for rank, r := range res.Results {
			fmt.Printf("  #%d id=%d distance=%.1f\n", rank+1, r.ID, r.Distance)
		}
	}

	// Every kernel returns identical results; Fast Scan just gets there
	// with ~4-6x fewer CPU cycles on real SIMD hardware.
	q := queries.Row(0)
	fast, _ := idx.Search(ctx, q, 5, pqfastscan.WithKernel(pqfastscan.KernelFastScan))
	slow, _ := idx.Search(ctx, q, 5, pqfastscan.WithKernel(pqfastscan.KernelNaive))
	same := len(fast.Results) == len(slow.Results)
	for i := range fast.Results {
		if fast.Results[i] != slow.Results[i] {
			same = false
		}
	}
	fmt.Printf("FastScan results identical to naive PQ Scan: %v\n", same)

	// Two engines, one algorithm: searches run on the wall-clock-fast
	// native SWAR engine by default; the instruction-counting model
	// engine (which WithStats implies) returns bit-identical results
	// while metering the paper's SIMD instruction stream.
	start = time.Now()
	native, err := idx.Search(ctx, q, 5) // EngineNative is the default
	if err != nil {
		log.Fatal(err)
	}
	nativeTime := time.Since(start)
	start = time.Now()
	model, err := idx.Search(ctx, q, 5, pqfastscan.WithEngine(pqfastscan.EngineModel))
	if err != nil {
		log.Fatal(err)
	}
	modelTime := time.Since(start)
	same = len(native.Results) == len(model.Results)
	if same {
		for i := range native.Results {
			if native.Results[i] != model.Results[i] {
				same = false
			}
		}
	}
	fmt.Printf("native engine %v vs model engine %v, results identical: %v\n",
		nativeTime.Round(time.Microsecond), modelTime.Round(time.Microsecond), same)

	// Online mutation: ingest fresh vectors and delete the current best
	// match, then search again — served straight from the live index.
	ids, err := idx.AddBatch(gen.Generate(100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("added %d vectors online (ids %d..%d)\n", len(ids), ids[0], ids[len(ids)-1])
	best := fast.Results[0].ID
	if err := idx.Delete(best); err != nil {
		log.Fatalf("delete of id %d failed: %v", best, err)
	}
	res, err := idx.Search(ctx, q, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after deleting id %d the best match is id %d (%d live vectors)\n",
		best, res.Results[0].ID, idx.Live())
}
