// Quickstart: build a small index over synthetic SIFT-like vectors and
// answer one nearest-neighbor query with PQ Fast Scan.
package main

import (
	"fmt"
	"log"
	"time"

	"pqfastscan"
)

func main() {
	// Deterministic synthetic data standing in for SIFT descriptors
	// (128-dimensional image feature vectors).
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 7})
	learn := gen.Generate(5000)  // training set for the quantizers
	base := gen.Generate(100000) // the database
	queries := gen.Generate(3)   // query vectors

	start := time.Now()
	idx, err := pqfastscan.Build(learn, base, pqfastscan.DefaultBuildOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d vectors in %v (partitions: %v)\n",
		base.Rows(), time.Since(start).Round(time.Millisecond), idx.PartitionSizes())

	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.Row(qi)
		start = time.Now()
		res, err := idx.Search(q, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d: top-5 in %v\n", qi, time.Since(start).Round(time.Microsecond))
		for rank, r := range res {
			fmt.Printf("  #%d id=%d distance=%.1f\n", rank+1, r.ID, r.Distance)
		}
	}

	// Every kernel returns identical results; Fast Scan just gets there
	// with ~4-6x fewer CPU cycles on real SIMD hardware.
	q := queries.Row(0)
	fast, _ := idx.SearchKernel(q, 5, pqfastscan.KernelFastScan)
	slow, _ := idx.SearchKernel(q, 5, pqfastscan.KernelNaive)
	same := len(fast) == len(slow)
	for i := range fast {
		if fast[i] != slow[i] {
			same = false
		}
	}
	fmt.Printf("FastScan results identical to naive PQ Scan: %v\n", same)
}
