// Durability: make an index crash-safe with a write-ahead log
// (DESIGN.md §14). Every acknowledged Add/Delete is on stable storage
// before the call returns, so a crash — simulated here by abandoning
// the index without any save or checkpoint — loses nothing: Recover
// rebuilds the exact acknowledged state from the directory alone.
//
// The deployable equivalent is `pqserve -wal-dir /data/wal`: same log,
// same recovery, behind HTTP.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"pqfastscan"
)

func main() {
	dir, err := os.MkdirTemp("", "pqfastscan-durable-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Build a small index and attach a write-ahead log. The zero
	// DurabilityOptions select sync-on-ack: no mutation is acknowledged
	// until its record is fsynced (concurrent mutations share flushes).
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 7})
	idx, err := pqfastscan.Build(gen.Generate(2000), gen.Generate(20000), pqfastscan.DefaultBuildOptions())
	if err != nil {
		log.Fatal(err)
	}
	if err := idx.WithWAL(dir, pqfastscan.DurabilityOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("durable index in %s: %d vectors live\n", dir, idx.Live())

	// Mutate. Each of these is durable the moment it returns.
	extra := gen.Generate(3)
	ids, err := idx.AddBatch(extra)
	if err != nil {
		log.Fatal(err)
	}
	if err := idx.Delete(ids[0]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("acked: added %v, deleted %d -> %d live\n", ids, ids[0], idx.Live())

	ws, _ := idx.WALStats()
	fmt.Printf("wal: epoch %d, %d records, %d bytes, %d fsyncs (p99 %.2fms)\n",
		ws.Epoch, ws.Records, ws.Bytes, ws.Fsyncs, ws.FsyncP99Ms)

	// Remember one query's answer, then "crash": drop the handle with
	// no save, no checkpoint, no clean shutdown.
	q := extra.Row(1)
	before, err := idx.Search(context.Background(), q, 5)
	if err != nil {
		log.Fatal(err)
	}
	liveBefore := idx.Live()
	idx = nil // the process could die here; the directory is the truth

	// Recover from the directory alone: load the snapshot (if any) and
	// replay the log over it, truncating any torn tail.
	recovered, err := pqfastscan.Recover(dir, pqfastscan.DurabilityOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.CloseWAL()
	fmt.Printf("recovered: %d live (was %d)\n", recovered.Live(), liveBefore)

	after, err := recovered.Search(context.Background(), q, 5)
	if err != nil {
		log.Fatal(err)
	}
	for i := range before.Results {
		if before.Results[i] != after.Results[i] {
			log.Fatalf("rank %d diverged: %+v vs %+v", i, before.Results[i], after.Results[i])
		}
	}
	fmt.Println("post-recovery search is bit-identical to pre-crash")

	// Checkpoint: snapshot the state, rotate the log, drop the old
	// segments — recovery time stays proportional to the log since the
	// last checkpoint, not to history.
	if err := recovered.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	ws, _ = recovered.WALStats()
	fmt.Printf("checkpointed: wal epoch now %d\n", ws.Epoch)
}
