package pqfastscan_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"pqfastscan"
)

var (
	apiOnce    sync.Once
	apiIndex   *pqfastscan.Index
	apiBase    pqfastscan.Matrix
	apiQueries pqfastscan.Matrix
	apiErr     error
)

func sharedAPIIndex(t *testing.T) (*pqfastscan.Index, pqfastscan.Matrix, pqfastscan.Matrix) {
	t.Helper()
	apiOnce.Do(func() {
		gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 77})
		learn := gen.Generate(4000)
		apiBase = gen.Generate(25000)
		apiQueries = gen.Generate(6)
		opt := pqfastscan.DefaultBuildOptions()
		opt.Partitions = 4
		opt.OrderGroups = true
		apiIndex, apiErr = pqfastscan.Build(learn, apiBase, opt)
	})
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	return apiIndex, apiBase, apiQueries
}

func TestBuildAndSearch(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	res, err := idx.Search(context.Background(), queries.Row(0), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 10 {
		t.Fatalf("got %d results", len(res.Results))
	}
	for i := 1; i < len(res.Results); i++ {
		if res.Results[i].Distance < res.Results[i-1].Distance {
			t.Fatal("results not sorted by distance")
		}
	}
	if len(res.Partitions) != 1 {
		t.Fatalf("single-probe search probed partitions %v", res.Partitions)
	}
	if res.Stats != nil {
		t.Fatal("stats attached without WithStats")
	}
}

func TestSearchRejectsBadK(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	if _, err := idx.SearchKernel(queries.Row(0), 0, pqfastscan.KernelFastScan); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestKernelEquivalencePublicAPI: the exactness claim through the public
// surface.
func TestKernelEquivalencePublicAPI(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	kernels := []pqfastscan.Kernel{
		pqfastscan.KernelNaive, pqfastscan.KernelLibpq, pqfastscan.KernelAVX,
		pqfastscan.KernelGather, pqfastscan.KernelFastScan,
	}
	for qi := 0; qi < queries.Rows(); qi++ {
		var ref []pqfastscan.Result
		for ki, kern := range kernels {
			got, err := idx.SearchKernel(queries.Row(qi), 30, kern)
			if err != nil {
				t.Fatal(err)
			}
			if ki == 0 {
				ref = got
				continue
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("query %d kernel %v differs from naive at rank %d", qi, kern, i)
				}
			}
		}
	}
}

func TestSearchWithStatsPruning(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	_, stats, part, err := idx.SearchWithStats(queries.Row(0), 100, pqfastscan.KernelFastScan)
	if err != nil {
		t.Fatal(err)
	}
	if part < 0 || part >= len(idx.PartitionSizes()) {
		t.Fatalf("partition %d out of range", part)
	}
	if stats.LowerBounds == 0 {
		t.Fatal("no lower bounds computed")
	}
	if stats.Pruned+stats.Candidates != stats.LowerBounds {
		t.Fatal("stats accounting mismatch")
	}
}

// TestSearchMultiImprovesDistances: probing more cells can only improve
// (or tie) the ADC distance at every rank. (Recall@R against exact ground
// truth is NOT monotone in nprobe — approximate distances from extra
// cells can displace the true neighbor — so the distance property is the
// correct invariant to test.)
func TestSearchMultiImprovesDistances(t *testing.T) {
	idx, _, queries := sharedAPIIndex(t)
	for qi := 0; qi < queries.Rows(); qi++ {
		single, err := idx.SearchMulti(queries.Row(qi), 50, 1)
		if err != nil {
			t.Fatal(err)
		}
		multi, err := idx.SearchMulti(queries.Row(qi), 50, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range single {
			if multi[i].Distance > single[i].Distance {
				t.Fatalf("query %d rank %d worsened: %v > %v",
					qi, i, multi[i].Distance, single[i].Distance)
			}
		}
	}
}

func TestPartitionSizesSum(t *testing.T) {
	idx, base, _ := sharedAPIIndex(t)
	total := 0
	for _, s := range idx.PartitionSizes() {
		total += s
	}
	if total != base.Rows() {
		t.Fatalf("partitions sum to %d, want %d", total, base.Rows())
	}
}

func TestDefaultsApplied(t *testing.T) {
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 3, Dim: 32})
	learn := gen.Generate(1500)
	base := gen.Generate(3000)
	// Zero-valued options must be filled with the paper defaults.
	idx, err := pqfastscan.Build(learn, base, pqfastscan.BuildOptions{GroupComponents: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(idx.PartitionSizes()); got != 8 {
		t.Fatalf("default partitions = %d, want 8", got)
	}
}

// Example demonstrates the minimal end-to-end flow.
func Example() {
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 1})
	learn := gen.Generate(2000)
	base := gen.Generate(5000)
	query := gen.Generate(1).Row(0)

	idx, err := pqfastscan.Build(learn, base, pqfastscan.DefaultBuildOptions())
	if err != nil {
		panic(err)
	}
	res, err := idx.Search(context.Background(), query, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Results), "neighbors found")
	// Output: 3 neighbors found
}
