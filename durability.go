// Crash-safe durability for online mutations (DESIGN.md §14). A durable
// Index pairs a snapshot file with a write-ahead log in one directory:
// every acknowledged Add/AddBatch/Delete is appended to the log before
// it is applied (and, in the default sync-on-ack mode, fsynced before
// the call returns), and Recover rebuilds the exact acknowledged state
// by replaying the log over the latest snapshot. Checkpoint bounds
// replay time by rotating the log and persisting a fresh snapshot; the
// snapshot is stamped with the epoch of the log segment opened at the
// same instant, so every record is replayed exactly once.
package pqfastscan

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"pqfastscan/internal/fsio"
	"pqfastscan/internal/index"
	"pqfastscan/internal/persist"
	"pqfastscan/internal/wal"
)

// SnapshotFileName is the name of the snapshot file inside a durable
// directory (the WAL segments live next to it).
const SnapshotFileName = "snapshot.idx"

// DurabilityOptions tunes the write-ahead log. The zero value selects
// sync-on-ack: a mutation is not acknowledged until its record is on
// stable storage, with concurrent mutations grouped into shared fsyncs.
type DurabilityOptions struct {
	// SyncEvery, when positive, switches to batched group commit: the
	// log fsyncs after every SyncEvery records instead of on every
	// acknowledgement — higher throughput, at the cost that a crash may
	// lose the mutations acknowledged since the last fsync.
	SyncEvery int
	// SyncInterval, when positive, bounds how long an acknowledged but
	// unsynced record can exist: a background syncer fsyncs every
	// interval. Composable with SyncEvery.
	SyncInterval time.Duration
}

func (o DurabilityOptions) wal() wal.Options {
	return wal.Options{SyncEvery: o.SyncEvery, SyncInterval: o.SyncInterval}
}

// WALStats describes a durable index's write-ahead log for monitoring.
type WALStats struct {
	Epoch      uint64  `json:"epoch"`
	SyncOnAck  bool    `json:"sync_on_ack"`
	Bytes      int64   `json:"bytes"`
	Records    int64   `json:"records"`
	Fsyncs     int64   `json:"fsyncs"`
	FsyncP50Ms float64 `json:"fsync_p50_ms"`
	FsyncP99Ms float64 `json:"fsync_p99_ms"`
}

// durState is the durability side of a façade handle. It survives Swap:
// the log belongs to the handle, not to any one snapshot, so a hot
// snapshot swap keeps logging into the same directory (the serving
// layer checkpoints immediately after a swap to make it durable).
type durState struct {
	dir  string
	opts DurabilityOptions

	// mu orders mutations against checkpoints: Add/Delete hold it
	// shared for the log-append + apply pair, Checkpoint holds it
	// exclusively for the capture + rotate pair. That pairing is the
	// whole correctness story — every mutation lands entirely in the
	// segment before the rotation (and in the captured snapshot) or
	// entirely after (and in the new segment), never split.
	mu sync.RWMutex
	// ckptMu serializes whole checkpoints (the save + cleanup runs
	// outside mu so mutations resume during the snapshot write).
	ckptMu sync.Mutex

	log *wal.Log
}

func (d *durState) snapshotPath() string { return filepath.Join(d.dir, SnapshotFileName) }

// HasDurable reports whether dir holds durable state (a snapshot to
// recover from). Serving layers use it to decide between Recover and a
// fresh WithWAL boot.
func HasDurable(dir string) bool {
	_, err := fsio.OS.Stat(filepath.Join(dir, SnapshotFileName))
	return err == nil
}

// WithWAL makes this index durable: it persists the current state as
// the epoch-1 snapshot in dir (created if needed) and opens the epoch-1
// log segment, so every subsequent mutation through this handle is
// logged before it is acknowledged. It refuses a directory that already
// holds durable state — recovering it is Recover's job, and silently
// overwriting it would discard acknowledged mutations.
func (ix *Index) WithWAL(dir string, opts DurabilityOptions) error {
	if ix.dur.Load() != nil {
		return fmt.Errorf("pqfastscan: WAL already enabled on this index")
	}
	if err := fsio.OS.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("pqfastscan: creating wal directory: %w", err)
	}
	if HasDurable(dir) {
		return fmt.Errorf("pqfastscan: %s already holds durable state; use Recover", dir)
	}
	const epoch = 1
	d := &durState{dir: dir, opts: opts}
	cap, err := ix.load().Capture()
	if err != nil {
		return fmt.Errorf("pqfastscan: capturing for initial snapshot: %w", err)
	}
	serr := persist.SaveCapture(fsio.OS, d.snapshotPath(), cap, epoch)
	cap.Release()
	if serr != nil {
		return serr
	}
	log, err := wal.Create(dir, epoch, opts.wal())
	if err != nil {
		return err
	}
	d.log = log
	if !ix.dur.CompareAndSwap(nil, d) {
		log.Close()
		return fmt.Errorf("pqfastscan: WAL already enabled on this index")
	}
	return nil
}

// Recover rebuilds a durable index from dir: it loads the snapshot
// (rejecting a truncated or corrupt file), replays every log segment
// whose epoch is at or past the snapshot's stamp — truncating a torn
// tail at the last intact record — and finishes with a fresh checkpoint
// so the next crash replays only what comes after this recovery. The
// returned index is durable (logging into dir) and contains exactly the
// acknowledged state of the crashed process.
//
// Recovery is idempotent: adds whose ids are already present are
// skipped and deletes of absent ids are tolerated, so replaying a log
// twice (a crash during recovery's own checkpoint) converges to the
// same index.
func Recover(dir string, opts DurabilityOptions) (*Index, error) {
	path := filepath.Join(dir, SnapshotFileName)
	in, snapEpoch, err := persist.LoadIndexEpoch(fsio.OS, path)
	if err != nil {
		return nil, fmt.Errorf("pqfastscan: recovering snapshot: %w", err)
	}
	segs, err := wal.Segments(fsio.OS, dir)
	if err != nil {
		return nil, fmt.Errorf("pqfastscan: recovering: %w", err)
	}

	// Every id the snapshot holds, tombstoned rows included: replayed
	// adds of these ids were already captured and must not re-apply.
	// The freshly loaded index is RAM-resident, so Capture cannot fail
	// and Release is a no-op, but keep the discipline uniform.
	icap, err := in.Capture()
	if err != nil {
		return nil, fmt.Errorf("pqfastscan: recovering: %w", err)
	}
	seen := make(map[int64]struct{})
	for _, p := range icap.Parts {
		for i := 0; i < p.N; i++ {
			seen[p.ID(i)] = struct{}{}
		}
	}
	icap.Release()

	maxEpoch := snapEpoch
	for _, seg := range segs {
		if seg.Epoch < snapEpoch {
			// Superseded by the snapshot — a checkpoint that crashed
			// between saving and deleting old segments leaves these.
			continue
		}
		if seg.Epoch > maxEpoch {
			maxEpoch = seg.Epoch
		}
		_, err := wal.Replay(fsio.OS, seg.Path, func(r *wal.Record) error {
			return applyRecord(in, r, seen)
		})
		if err != nil {
			return nil, fmt.Errorf("pqfastscan: replaying %s: %w", seg.Path, err)
		}
	}

	// Fresh checkpoint: open the next segment, persist the recovered
	// state stamped with it, then drop the replayed segments. Each step
	// is crash-safe — dying before the snapshot save re-replays the old
	// segments (idempotent), dying after it skips them by epoch.
	next := maxEpoch + 1
	log, err := wal.Create(dir, next, opts.wal())
	if err != nil {
		return nil, err
	}
	d := &durState{dir: dir, opts: opts, log: log}
	rcap, err := in.Capture()
	if err != nil {
		log.Close()
		return nil, err
	}
	serr := persist.SaveCapture(fsio.OS, path, rcap, next)
	rcap.Release()
	if serr != nil {
		log.Close()
		return nil, serr
	}
	if err := removeSegmentsBefore(dir, next); err != nil {
		log.Close()
		return nil, err
	}
	// Attach after the recovery checkpoint: the snapshot write above ran
	// over RAM-resident partitions, and from here on the index serves
	// (and checkpoints) through the paging stack like any other.
	if err := autoAttach(in); err != nil {
		log.Close()
		return nil, err
	}
	ix := newIndex(in)
	ix.dur.Store(d)
	return ix, nil
}

// applyRecord applies one replayed record to in. seen carries every id
// already applied (snapshot or earlier records) for idempotence.
func applyRecord(in *index.Index, r *wal.Record, seen map[int64]struct{}) error {
	switch r.Type {
	case wal.RecordAdd:
		m := r.M
		if m != in.PQ.M {
			return fmt.Errorf("log record has %d-byte codes, index uses %d (geometry changed without a checkpoint?)", m, in.PQ.M)
		}
		cells := make([]int, 0, len(r.IDs))
		ids := make([]int64, 0, len(r.IDs))
		codes := make([]uint8, 0, len(r.Codes))
		for i, id := range r.IDs {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			cells = append(cells, r.Cells[i])
			ids = append(ids, id)
			codes = append(codes, r.Codes[i*m:(i+1)*m]...)
		}
		if len(ids) == 0 {
			return nil
		}
		return in.ApplyAdd(cells, ids, codes)
	case wal.RecordDelete:
		if err := in.Delete(r.ID); err != nil && !errors.Is(err, index.ErrNotFound) {
			return err
		}
		return nil
	default:
		return fmt.Errorf("unknown record type %d", r.Type)
	}
}

func removeSegmentsBefore(dir string, epoch uint64) error {
	segs, err := wal.Segments(fsio.OS, dir)
	if err != nil {
		return err
	}
	removed := false
	for _, s := range segs {
		if s.Epoch >= epoch {
			continue
		}
		if err := fsio.OS.Remove(s.Path); err != nil {
			return fmt.Errorf("pqfastscan: removing checkpointed segment: %w", err)
		}
		removed = true
	}
	if removed {
		return fsio.OS.SyncDir(dir)
	}
	return nil
}

// Checkpoint persists the current state as a new snapshot and truncates
// the log: mutations are paused only for the capture + log rotation (an
// atomic-load plus one file creation), then resume while the snapshot
// writes in the background of the call. After a successful Checkpoint,
// recovery replay covers only mutations acknowledged since it.
func (ix *Index) Checkpoint() error {
	d := ix.dur.Load()
	if d == nil {
		return fmt.Errorf("pqfastscan: Checkpoint on an index without a WAL")
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()

	d.mu.Lock()
	cap, cerr := ix.load().Capture()
	if cerr != nil {
		d.mu.Unlock()
		return fmt.Errorf("pqfastscan: capturing for checkpoint: %w", cerr)
	}
	next := d.log.Epoch() + 1
	err := d.log.Rotate(next)
	d.mu.Unlock()
	if err != nil {
		cap.Release()
		return err
	}
	// From here every crash is safe: the old segment plus the new one
	// replay to exactly the captured state plus later mutations. On a
	// paged index the capture holds every extent pinned until the save
	// finishes — the snapshot write needs a stable view of the bytes.
	serr := persist.SaveCapture(fsio.OS, d.snapshotPath(), cap, next)
	cap.Release()
	if serr != nil {
		return serr
	}
	return removeSegmentsBefore(d.dir, next)
}

// WALStats returns log counters and fsync latency quantiles; ok is
// false when the index has no WAL.
func (ix *Index) WALStats() (stats WALStats, ok bool) {
	d := ix.dur.Load()
	if d == nil {
		return WALStats{}, false
	}
	s := d.log.Stats()
	return WALStats{
		Epoch:      s.Epoch,
		SyncOnAck:  s.SyncOnAck,
		Bytes:      s.Bytes,
		Records:    s.Records,
		Fsyncs:     s.Fsyncs,
		FsyncP50Ms: s.FsyncP50Ms,
		FsyncP99Ms: s.FsyncP99Ms,
	}, true
}

// CloseWAL fsyncs and closes the log. Mutations after CloseWAL fail;
// the index keeps serving reads. No-op without a WAL.
func (ix *Index) CloseWAL() error {
	d := ix.dur.Load()
	if d == nil {
		return nil
	}
	return d.log.Close()
}

// addDurable is the mutation path behind Add/AddBatch: encode and
// route, allocate ids, make the record durable, then apply — so an
// acknowledged batch is always recoverable, and a crash mid-call loses
// only a mutation nobody was told succeeded.
func (ix *Index) addDurable(vectors Matrix) ([]int64, error) {
	d := ix.dur.Load()
	if d == nil {
		return ix.load().Add(vectors)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	in := ix.load()
	cells, codes, err := in.EncodeRoute(vectors)
	if err != nil {
		return nil, err
	}
	n := len(cells)
	if n == 0 {
		return nil, nil
	}
	base := in.AllocIDs(n)
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = base + int64(i)
	}
	if err := d.log.AppendAdd(cells, ids, codes, in.PQ.M); err != nil {
		return nil, fmt.Errorf("pqfastscan: logging add: %w", err)
	}
	if err := in.ApplyAdd(cells, ids, codes); err != nil {
		return nil, err
	}
	return ids, nil
}

// deleteDurable validates and applies the delete first (an ErrNotFound
// must not pollute the log), then logs it. The log-append position is
// always after the add that created the id — the add logged before
// applying, so its record was already in the log when the delete could
// first see the id — which keeps replay order correct.
func (ix *Index) deleteDurable(id int64) error {
	d := ix.dur.Load()
	if d == nil {
		return ix.load().Delete(id)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := ix.load().Delete(id); err != nil {
		return err
	}
	if err := d.log.AppendDelete(id); err != nil {
		return fmt.Errorf("pqfastscan: logging delete: %w", err)
	}
	return nil
}
