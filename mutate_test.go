package pqfastscan_test

import (
	"context"
	"errors"
	"sort"
	"testing"

	"pqfastscan"
)

// mutateFixture builds an index, force-builds its Fast Scan layouts (so
// Add exercises the incremental group repack rather than lazy rebuild),
// applies a batch of Adds and Deletes, and constructs the reference
// index built from scratch over the exact resulting vector set.
type mutateFixture struct {
	mutated  *pqfastscan.Index
	rebuilt  *pqfastscan.Index
	queries  pqfastscan.Matrix
	idmap    []int64 // rebuilt id (row) -> id in the mutated index
	liveWant int
}

func newMutateFixture(t *testing.T) *mutateFixture {
	t.Helper()
	ctx := context.Background()
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 4242, Dim: 64})
	learn := gen.Generate(3000)
	base := gen.Generate(15000)
	extra := gen.Generate(2000)
	queries := gen.Generate(6)

	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = 4
	opt.OrderGroups = true
	opt.Seed = 9

	mutated, err := pqfastscan.Build(learn, base, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Build every partition's Fast Scan layout before mutating.
	if _, err := mutated.Search(ctx, queries.Row(0), 5, pqfastscan.WithNProbe(opt.Partitions)); err != nil {
		t.Fatal(err)
	}

	ids, err := mutated.AddBatch(extra)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != extra.Rows() {
		t.Fatalf("AddBatch assigned %d ids for %d vectors", len(ids), extra.Rows())
	}
	for i, id := range ids {
		if want := int64(base.Rows() + i); id != want {
			t.Fatalf("appended id %d = %d, want %d", i, id, want)
		}
	}

	// Delete a spread of build-time and appended vectors.
	deleted := map[int64]bool{}
	for id := int64(0); id < int64(base.Rows()); id += 7 {
		deleted[id] = true
	}
	for i := 0; i < len(ids); i += 5 {
		deleted[ids[i]] = true
	}
	for id := range deleted {
		if err := mutated.Delete(id); err != nil {
			t.Fatalf("delete of id %d: %v", id, err)
		}
	}
	if err := mutated.Delete(ids[0]); !errors.Is(err, pqfastscan.ErrNotFound) {
		t.Fatalf("double delete returned %v, want ErrNotFound", err)
	}
	if err := mutated.Delete(int64(base.Rows() + extra.Rows())); !errors.Is(err, pqfastscan.ErrNotFound) {
		t.Fatalf("delete of never-assigned id returned %v, want ErrNotFound", err)
	}

	// The reference: a from-scratch build over the surviving vectors, in
	// id order so that rebuilt row r corresponds to survivors[r]. The
	// order-preserving id map keeps distance-tie ordering comparable.
	total := base.Rows() + extra.Rows()
	row := func(id int64) []float32 {
		if int(id) < base.Rows() {
			return base.Row(int(id))
		}
		return extra.Row(int(id) - base.Rows())
	}
	var survivors []int64
	for id := int64(0); id < int64(total); id++ {
		if !deleted[id] {
			survivors = append(survivors, id)
		}
	}
	fresh := pqfastscan.NewMatrix(len(survivors), 64)
	for r, id := range survivors {
		copy(fresh.Row(r), row(id))
	}
	rebuilt, err := pqfastscan.Build(learn, fresh, opt)
	if err != nil {
		t.Fatal(err)
	}
	return &mutateFixture{
		mutated:  mutated,
		rebuilt:  rebuilt,
		queries:  queries,
		idmap:    survivors,
		liveWant: len(survivors),
	}
}

// TestMutatedIndexMatchesRebuild: an index that received Add and Delete
// after construction returns the same top-k as an index rebuilt from
// scratch over the resulting vector set, for every kernel. The trained
// quantizers are shared (learn set and seed are equal), so codes and
// distances match exactly and the comparison is rank-for-rank.
func TestMutatedIndexMatchesRebuild(t *testing.T) {
	fx := newMutateFixture(t)
	ctx := context.Background()

	if got := fx.mutated.Live(); got != fx.liveWant {
		t.Fatalf("Live() = %d, want %d", got, fx.liveWant)
	}

	for _, kern := range allKernels() {
		for qi := 0; qi < fx.queries.Rows(); qi++ {
			q := fx.queries.Row(qi)
			got, err := fx.mutated.Search(ctx, q, 30, pqfastscan.WithKernel(kern))
			if err != nil {
				t.Fatal(err)
			}
			want, err := fx.rebuilt.Search(ctx, q, 30, pqfastscan.WithKernel(kern))
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Results) != len(want.Results) {
				t.Fatalf("kernel %v query %d: %d results vs %d on rebuild",
					kern, qi, len(got.Results), len(want.Results))
			}
			for i := range want.Results {
				w, g := want.Results[i], got.Results[i]
				if g.Distance != w.Distance || g.ID != fx.idmap[w.ID] {
					t.Fatalf("kernel %v query %d rank %d: got (id=%d d=%v), rebuild maps to (id=%d d=%v)",
						kern, qi, i, g.ID, g.Distance, fx.idmap[w.ID], w.Distance)
				}
			}
		}
	}
}

// TestMutatedIndexMultiProbeAndBatch: the mutation-aware scan also holds
// through multi-probe merging and the concurrent batch path.
func TestMutatedIndexMultiProbeAndBatch(t *testing.T) {
	fx := newMutateFixture(t)
	ctx := context.Background()

	for qi := 0; qi < fx.queries.Rows(); qi++ {
		q := fx.queries.Row(qi)
		got, err := fx.mutated.Search(ctx, q, 20, pqfastscan.WithNProbe(4))
		if err != nil {
			t.Fatal(err)
		}
		want, err := fx.rebuilt.Search(ctx, q, 20, pqfastscan.WithNProbe(4))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Results {
			if got.Results[i].Distance != want.Results[i].Distance ||
				got.Results[i].ID != fx.idmap[want.Results[i].ID] {
				t.Fatalf("nprobe=4 query %d rank %d differs from rebuild", qi, i)
			}
		}
	}

	gotBatch, err := fx.mutated.SearchBatch(ctx, fx.queries, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantBatch, err := fx.rebuilt.SearchBatch(ctx, fx.queries, 10)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range wantBatch {
		for i := range wantBatch[qi].Results {
			if gotBatch[qi].Results[i].Distance != wantBatch[qi].Results[i].Distance {
				t.Fatalf("batch query %d rank %d differs from rebuild", qi, i)
			}
		}
	}
}

// TestMutationInterleavedEnginesAgree drives the index through rounds of
// interleaved Add/Delete/Search and, inside every round, checks the
// native and model engines answer every kernel bit-identically — the
// cross-engine exactness invariant under online mutation, where the
// incremental group repacking (and its NibbleMask maintenance) is the
// state both engines scan.
func TestMutationInterleavedEnginesAgree(t *testing.T) {
	ctx := context.Background()
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 777, Dim: 48})
	learn := gen.Generate(2500)
	base := gen.Generate(9000)
	queries := gen.Generate(4)

	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = 3
	opt.OrderGroups = true
	opt.Seed = 5
	idx, err := pqfastscan.Build(learn, base, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Force every partition's Fast Scan layout so Adds repack
	// incrementally from round one.
	if _, err := idx.Search(ctx, queries.Row(0), 5, pqfastscan.WithNProbe(opt.Partitions)); err != nil {
		t.Fatal(err)
	}

	checkEnginesAgree := func(round int) {
		t.Helper()
		for _, kern := range allKernels() {
			for qi := 0; qi < queries.Rows(); qi++ {
				q := queries.Row(qi)
				model, err := idx.Search(ctx, q, 20,
					pqfastscan.WithKernel(kern), pqfastscan.WithEngine(pqfastscan.EngineModel),
					pqfastscan.WithNProbe(opt.Partitions))
				if err != nil {
					t.Fatal(err)
				}
				native, err := idx.Search(ctx, q, 20,
					pqfastscan.WithKernel(kern), pqfastscan.WithEngine(pqfastscan.EngineNative),
					pqfastscan.WithNProbe(opt.Partitions))
				if err != nil {
					t.Fatal(err)
				}
				for i := range model.Results {
					if model.Results[i] != native.Results[i] {
						t.Fatalf("round %d kernel %v query %d rank %d: model %v native %v",
							round, kern, qi, i, model.Results[i], native.Results[i])
					}
				}
			}
		}
	}

	nextDelete := int64(0)
	total := int64(base.Rows())
	for round := 0; round < 5; round++ {
		// Add a batch, delete a stride (including some just-added ids),
		// search between every step.
		added, err := idx.AddBatch(gen.Generate(300))
		if err != nil {
			t.Fatal(err)
		}
		total += int64(len(added))
		checkEnginesAgree(round)
		for ; nextDelete < total; nextDelete += 17 {
			if err := idx.Delete(nextDelete); err != nil {
				t.Fatal(err)
			}
		}
		checkEnginesAgree(round)
		if _, err := idx.Add(gen.Generate(1).Row(0)); err != nil {
			t.Fatal(err)
		}
		total++
		checkEnginesAgree(round)
	}
}

// TestDeletedNeverReturned: no tombstoned id may appear in any kernel's
// results, and deleted best matches actually disappear.
func TestDeletedNeverReturned(t *testing.T) {
	ctx := context.Background()
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 31, Dim: 32})
	learn := gen.Generate(2000)
	base := gen.Generate(8000)
	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = 2
	idx, err := pqfastscan.Build(learn, base, opt)
	if err != nil {
		t.Fatal(err)
	}
	q := gen.Generate(1).Row(0)

	before, err := idx.Search(ctx, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	removed := map[int64]bool{}
	for _, r := range before.Results[:5] {
		if err := idx.Delete(r.ID); err != nil {
			t.Fatalf("delete of returned id %d: %v", r.ID, err)
		}
		removed[r.ID] = true
	}
	for _, kern := range allKernels() {
		res, err := idx.Search(ctx, q, 10, pqfastscan.WithKernel(kern))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Results {
			if removed[r.ID] {
				t.Fatalf("kernel %v returned deleted id %d", kern, r.ID)
			}
		}
	}
}

// TestAddAfterLoadContinuesIDs: the persisted id allocator prevents id
// reuse across a save/load cycle.
func TestAddAfterLoadContinuesIDs(t *testing.T) {
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 8, Dim: 32})
	learn := gen.Generate(1500)
	base := gen.Generate(4000)
	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = 2
	idx, err := pqfastscan.Build(learn, base, opt)
	if err != nil {
		t.Fatal(err)
	}
	first, err := idx.Add(gen.Generate(1).Row(0))
	if err != nil {
		t.Fatal(err)
	}
	if first != int64(base.Rows()) {
		t.Fatalf("first added id = %d, want %d", first, base.Rows())
	}

	path := t.TempDir() + "/mutated.pqfsidx"
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := pqfastscan.LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	next, err := loaded.Add(gen.Generate(1).Row(0))
	if err != nil {
		t.Fatal(err)
	}
	if next != first+1 {
		t.Fatalf("id after reload = %d, want %d", next, first+1)
	}
}

// TestAddBatchAssignsSortedIDs documents the allocator's monotonicity.
func TestAddBatchAssignsSortedIDs(t *testing.T) {
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 12, Dim: 32})
	idx, err := pqfastscan.Build(gen.Generate(1500), gen.Generate(3000), pqfastscan.BuildOptions{Partitions: 2, GroupComponents: -1})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := idx.AddBatch(gen.Generate(50))
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(ids, func(a, b int) bool { return ids[a] < ids[b] }) {
		t.Fatalf("AddBatch ids not monotonically increasing: %v", ids)
	}
}
