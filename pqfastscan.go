// Package pqfastscan is a Go implementation of PQ Fast Scan, the
// high-performance nearest-neighbor search algorithm of
//
//	F. André, A.-M. Kermarrec, N. Le Scouarnec.
//	"Cache locality is not enough: High-Performance Nearest Neighbor
//	Search with Product Quantization Fast Scan". PVLDB 9(4), 2015.
//
// It provides the complete system the paper describes: product
// quantization (PQ), the IVFADC inverted index, the four PQ Scan baseline
// kernels (naive, libpq, avx, gather) and PQ Fast Scan itself — small
// lookup tables sized to fit SIMD registers, computing lower bounds that
// prune more than 95 % of exact distance computations while returning
// exactly the same results as PQ Scan.
//
// # Quickstart
//
//	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 42})
//	learn := gen.Generate(20000)
//	base := gen.Generate(200000)
//
//	idx, err := pqfastscan.Build(learn, base, pqfastscan.DefaultBuildOptions())
//	...
//	res, err := idx.Search(ctx, query, 100)
//	...
//	ids, err := idx.AddBatch(newVectors) // online ingestion, no rebuild
//
// Search takes functional options (WithKernel, WithEngine, WithNProbe,
// WithParallel, WithStats) and honors context cancellation and
// deadlines; the index is mutable online through Add, AddBatch and
// Delete. Kernels run on one of two execution engines returning
// bit-identical results: the native SWAR engine (default, fast on the
// wall clock) and the instruction-counting model engine that powers
// WithStats. An *Index is also a swappable snapshot holder (Swap), the
// hook behind the hot-reloading network service in internal/server and
// cmd/pqserve. See the examples directory for complete programs and
// DESIGN.md for the API shape, the mutation semantics, the persist
// format, the two-engine design (§9) and the serving architecture
// (§10).
package pqfastscan

import (
	"fmt"
	"sync/atomic"

	"pqfastscan/internal/dataset"
	"pqfastscan/internal/index"
	"pqfastscan/internal/persist"
	"pqfastscan/internal/quantizer"
	"pqfastscan/internal/scan"
	"pqfastscan/internal/vec"
)

// Matrix is a dense row-major set of float32 vectors. Dim is the
// dimensionality of each row.
type Matrix = vec.Matrix

// NewMatrix allocates an n x dim matrix.
func NewMatrix(n, dim int) Matrix { return vec.NewMatrix(n, dim) }

// Result is one nearest-neighbor answer: the database vector id and its
// (squared Euclidean, asymmetric) distance to the query.
type Result = index.Result

// Kernel selects the scan implementation.
type Kernel = index.Kernel

// Available kernels. KernelFastScan is the paper's contribution; naive,
// libpq, avx and gather are the §3 baselines it is evaluated against;
// KernelQuantOnly is the §5.5 ablation and KernelFastScan256 the AVX2
// widening extension.
const (
	KernelNaive       = index.KernelNaive
	KernelLibpq       = index.KernelLibpq
	KernelAVX         = index.KernelAVX
	KernelGather      = index.KernelGather
	KernelFastScan    = index.KernelFastScan
	KernelQuantOnly   = index.KernelQuantOnly
	KernelFastScan256 = index.KernelFastScan256
)

// Kernels lists every kernel, in the order the paper introduces them.
func Kernels() []Kernel {
	return []Kernel{
		KernelNaive, KernelLibpq, KernelAVX, KernelGather,
		KernelFastScan, KernelQuantOnly, KernelFastScan256,
	}
}

// Engine selects the execution engine kernels run on. Both engines
// implement the same algorithm and return bit-identical result sets
// (DESIGN.md §9); EngineNative is fast on the wall clock, EngineModel is
// the instruction-counting reference that powers WithStats.
type Engine = index.Engine

const (
	EngineModel  = index.EngineModel
	EngineNative = index.EngineNative
)

// Backend selects the native engine's block-kernel implementation: the
// hand-written assembly scan kernels (BackendAVX2 on amd64, BackendNEON
// on arm64) or the portable BackendSWAR fallback. BackendAuto — the
// default — defers to startup CPU feature detection, overridable with
// the PQ_FORCE_BACKEND environment variable. All backends return
// bit-identical results and statistics (DESIGN.md §12); they differ
// only in wall-clock speed.
type Backend = index.Backend

const (
	BackendAuto = index.BackendAuto
	BackendSWAR = index.BackendSWAR
	BackendAVX2 = index.BackendAVX2
	BackendNEON = index.BackendNEON
)

// ActiveBackend returns the backend the native engine selected at
// startup (never BackendAuto): the fastest assembly backend the CPU
// supports, or BackendSWAR, or whatever PQ_FORCE_BACKEND pinned.
func ActiveBackend() Backend { return index.ActiveBackend() }

// AvailableBackends lists the backends this machine can run, preferred
// first (always at least BackendSWAR).
func AvailableBackends() []Backend { return index.AvailableBackends() }

// ParseBackend resolves a backend by its String name (auto, swar,
// asm-avx2, asm-neon).
func ParseBackend(name string) (Backend, error) { return index.ParseBackend(name) }

// CPUFeatures lists the SIMD features backend selection detected on
// this machine (e.g. avx, avx2, avx512f, neon), for logs and benchmark
// records.
func CPUFeatures() []string { return index.CPUFeatures() }

// BackendInitNote reports what happened to a PQ_FORCE_BACKEND override
// that could not be honored ("" when selection was clean). Deployments
// should log it at startup so a silent fallback to the SWAR path cannot
// go unnoticed.
func BackendInitNote() string { return index.BackendInitNote() }

// ParseKernel resolves a kernel by its String name (the labels of the
// paper's figures: naive, libpq, avx, gather, fastpq, quantonly,
// fastpq256).
func ParseKernel(name string) (Kernel, error) {
	for _, k := range Kernels() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("pqfastscan: unknown kernel %q (naive, libpq, avx, gather, fastpq, quantonly, fastpq256)", name)
}

// PQConfig selects the product quantizer shape (PQ m×b).
type PQConfig = quantizer.Config

// Standard 64-bit configurations (paper Table 1). PQ8x8 is the default.
var (
	PQ8x8  = quantizer.PQ8x8
	PQ16x4 = quantizer.PQ16x4
	PQ4x16 = quantizer.PQ4x16
)

// BuildOptions configures index construction. See index.Options for the
// field semantics; zero values select the paper's defaults via
// DefaultBuildOptions.
type BuildOptions struct {
	// Partitions is the number of IVF cells (default 8, as in the
	// paper's 100M-vector experiments; its 1B-vector index uses 128).
	Partitions int
	// PQ is the product quantizer configuration (default PQ 8×8).
	PQ PQConfig
	// Keep is the fraction of each partition scanned with plain PQ Scan
	// to bound the distance quantization. Zero selects the paper's 0.5 %
	// default; the zero-keep ablation is reachable only through the
	// internal options, as in the seed.
	Keep float64
	// GroupComponents fixes the grouping depth c; negative (default)
	// applies the paper's nmin(c) = 50·16^c auto-selection rule.
	GroupComponents int
	// Seed makes construction deterministic.
	Seed uint64
	// DisableOptimizedAssignment turns off the §4.3 centroid index
	// reassignment (only useful for ablation studies).
	DisableOptimizedAssignment bool
	// OrderGroups visits groups in ascending order of a per-group lower
	// bound during Fast Scan (an extension beyond the paper that speeds
	// up pruning-threshold convergence on small partitions; results are
	// unchanged).
	OrderGroups bool
}

// DefaultBuildOptions returns the paper's default configuration.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{
		Partitions:      8,
		PQ:              PQ8x8,
		Keep:            scan.DefaultKeep,
		GroupComponents: -1,
		Seed:            1,
	}
}

// Index is a built IVFADC index answering approximate nearest neighbor
// queries with any of the scan kernels.
//
// An Index is also a snapshot holder: Swap atomically replaces the index
// it serves under live traffic, so a long-lived *Index handle (the query
// service keeps one) can be re-pointed at a freshly loaded snapshot
// without pausing queries.
type Index struct {
	inner atomic.Pointer[index.Index]
	// dur, when set, is the durability state (durability.go): mutations
	// through this handle are write-ahead logged before acknowledgement.
	// It belongs to the handle, so it survives Swap.
	dur atomic.Pointer[durState]
}

// newIndex wraps an internal index in a façade handle.
func newIndex(in *index.Index) *Index {
	ix := &Index{}
	ix.inner.Store(in)
	return ix
}

// load returns the snapshot currently served by this handle. Callers use
// the returned *index.Index for the whole operation, so a concurrent
// Swap never splits one query across two snapshots.
func (ix *Index) load() *index.Index { return ix.inner.Load() }

// Build trains the index on learn and indexes every row of base.
func Build(learn, base Matrix, opt BuildOptions) (*Index, error) {
	if opt.Partitions == 0 {
		opt.Partitions = 8
	}
	if opt.PQ.M == 0 {
		opt.PQ = PQ8x8
	}
	if opt.Keep == 0 {
		opt.Keep = scan.DefaultKeep
	}
	inner, err := index.Build(learn, base, index.Options{
		Partitions:         opt.Partitions,
		PQ:                 opt.PQ,
		Seed:               opt.Seed,
		KMeansIter:         20,
		OptimizeAssignment: !opt.DisableOptimizedAssignment,
		FastScan: scan.FastScanOptions{
			Keep:            opt.Keep,
			GroupComponents: opt.GroupComponents,
			OrderGroups:     opt.OrderGroups,
		},
	})
	if err != nil {
		return nil, err
	}
	if err := autoAttach(inner); err != nil {
		return nil, err
	}
	return newIndex(inner), nil
}

// Stats describes a scan's dynamic behaviour (pruning power, op counts).
type Stats = scan.Stats

// PartitionSizes returns the size of each IVF cell.
func (ix *Index) PartitionSizes() []int { return ix.load().PartitionSizes() }

// Dim returns the dimensionality of the indexed vectors.
func (ix *Index) Dim() int { return ix.load().Dim }

// Partitions returns the number of IVF cells — the upper bound for
// WithNProbe — without materializing the per-cell sizes.
func (ix *Index) Partitions() int { return ix.load().Partitions() }

// PQM returns the number of product quantizer segments (PQ m), part of
// the geometry a cluster router cross-checks across shards via /meta.
func (ix *Index) PQM() int { return ix.load().PQ.M }

// Save writes the trained index to path atomically, so the expensive
// construction pipeline runs once. Load it back with LoadIndex. Saving
// serializes the immutable epoch snapshot current at the call, so it is
// consistent under concurrent queries and mutations without blocking
// either.
func (ix *Index) Save(path string) error {
	return persist.SaveIndex(path, ix.load())
}

// Swap atomically replaces the index this handle serves with the one
// behind next and returns a handle over the replaced snapshot. Queries
// in flight at the instant of the swap keep the snapshot they started
// on and drain there; every later call sees the new one. The
// replacement must be query-compatible (same dimensionality and PQ
// configuration) or Swap returns an error and serves the old snapshot
// unchanged. This is the hot-reload hook the serving layer
// (internal/server) builds on.
func (ix *Index) Swap(next *Index) (*Index, error) {
	if next == nil {
		return nil, fmt.Errorf("pqfastscan: Swap with nil index")
	}
	in := next.load()
	if err := ix.load().CompatibleWith(in); err != nil {
		return nil, err
	}
	return newIndex(ix.inner.Swap(in)), nil
}

// CompatibleWith reports whether next could replace this index via Swap:
// same dimensionality, partition count and PQ configuration. The serving
// layer uses it to validate a staged snapshot at /swap/prepare time, so
// an incompatible file is rejected before a fleet-wide commit.
func (ix *Index) CompatibleWith(next *Index) error {
	if next == nil {
		return fmt.Errorf("pqfastscan: CompatibleWith nil index")
	}
	return ix.load().CompatibleWith(next.load())
}

// CoarseCentroids returns a copy of the coarse quantizer's centroids,
// row per IVF cell. A cluster router fetches them from a shard's /meta
// endpoint and reproduces the engine's cell ranking bit-for-bit
// (index.RankCells), which is what makes scatter-gather results
// identical to a single node's (DESIGN.md §13).
func (ix *Index) CoarseCentroids() [][]float32 {
	coarse := ix.load().Coarse
	out := make([][]float32, coarse.Rows())
	for i := range out {
		out[i] = append([]float32(nil), coarse.Row(i)...)
	}
	return out
}

// LoadIndex reads an index previously written with Save. The loaded
// index answers queries identically to the original.
func LoadIndex(path string) (*Index, error) {
	inner, err := persist.LoadIndex(path)
	if err != nil {
		return nil, err
	}
	if err := autoAttach(inner); err != nil {
		return nil, err
	}
	return newIndex(inner), nil
}

// LoadIndexCells reads an index previously written with Save, keeping
// only the listed IVF cells; every other cell is left empty. Cell
// numbering, centroids, quantizers and the id allocator match a full
// load, so the subset answers queries over its cells bit-identically
// to the full index — the shard load path of cluster serving
// (cmd/pqserve -cells, DESIGN.md §13). A nil cells loads everything.
func LoadIndexCells(path string, cells []int) (*Index, error) {
	inner, err := persist.LoadIndexCells(path, cells)
	if err != nil {
		return nil, err
	}
	if err := autoAttach(inner); err != nil {
		return nil, err
	}
	return newIndex(inner), nil
}

// RestrictCells returns a new Index serving only the listed IVF cells
// of the receiver's current snapshot (sharing their sealed data);
// every other cell is empty. The in-process counterpart of
// LoadIndexCells, used to stand up shard processes over synthetic
// builds without a save/load round trip.
func (ix *Index) RestrictCells(cells ...int) (*Index, error) {
	inner, err := ix.load().RestrictCells(cells)
	if err != nil {
		return nil, err
	}
	return newIndex(inner), nil
}

// Internal exposes the underlying index to the benchmark harness.
// It is not part of the stable API.
func (ix *Index) Internal() *index.Index { return ix.load() }

// DatasetConfig configures the synthetic SIFT-like dataset generator
// standing in for ANN_SIFT1B (see DESIGN.md).
type DatasetConfig = dataset.Config

// Dataset generates deterministic SIFT-like vectors.
type Dataset = dataset.Generator

// NewSyntheticDataset returns a deterministic generator of 128-dimensional
// SIFT-like descriptor vectors.
func NewSyntheticDataset(cfg DatasetConfig) *Dataset {
	return dataset.NewGenerator(cfg)
}

// GroundTruth computes exact nearest neighbors by brute force, for recall
// evaluation.
func GroundTruth(base, queries Matrix, k int) ([][]int64, error) {
	return dataset.GroundTruth(base, queries, k)
}

// Recall computes recall@R of result id lists against ground truth.
func Recall(results [][]int64, groundTruth [][]int64, r int) float64 {
	return dataset.Recall(results, groundTruth, r)
}
