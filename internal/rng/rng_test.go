package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded source produced repeats: %d unique of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not replay the parent stream.
	p := New(7)
	p.Split()
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatal("split child replays parent stream")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnRoughlyUniform(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d has %d draws, want about %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %v", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance %v, want about 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestIntnDeterministicAcrossSources(t *testing.T) {
	a, b := New(21), New(21)
	for i := 0; i < 1000; i++ {
		n := i%97 + 1
		if a.Intn(n) != b.Intn(n) {
			t.Fatalf("Intn diverged at step %d", i)
		}
	}
}
