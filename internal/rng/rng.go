// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by every stochastic component of the repository (dataset
// synthesis, k-means seeding, query sampling).
//
// Experiments in the paper must be reproducible run-to-run; relying on the
// global math/rand state would couple unrelated components. Each component
// instead derives an independent stream with Split, so adding randomness to
// one module never perturbs another module's stream.
//
// The generator is xoshiro256**, a public-domain generator by Blackman and
// Vigna with 256 bits of state, full 64-bit output and a period of 2^256-1.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic xoshiro256** pseudo-random number generator.
// The zero value is not valid; use New.
type Source struct {
	s         [4]uint64
	spare     float64
	haveSpare bool
}

// New returns a Source seeded from seed using SplitMix64, which guarantees
// a well-mixed nonzero state for any seed value (including zero).
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17

	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new Source whose stream is statistically independent of
// the receiver's. The receiver advances by one step.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0, matching the contract of math/rand.Intn.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := r.Uint64()
	hi, lo := bits.Mul64(v, uint64(n))
	if lo < uint64(n) {
		threshold := -uint64(n) % uint64(n)
		for lo < threshold {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Float32 returns a uniformly distributed float32 in [0, 1).
func (r *Source) Float32() float32 {
	return float32(r.Uint64()>>40) * 0x1p-24
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, generated with the polar Box-Muller method.
func (r *Source) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// Perm returns a uniformly random permutation of [0, n) using the
// Fisher-Yates shuffle.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes n elements using the provided swap function.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
