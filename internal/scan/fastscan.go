package scan

import (
	"fmt"
	"math"
	"math/bits"
	"slices"

	"pqfastscan/internal/layout"
	"pqfastscan/internal/perf"
	"pqfastscan/internal/quantizer"
	"pqfastscan/internal/simd"
	"pqfastscan/internal/topk"
)

// FastScanOptions configures PQ Fast Scan.
type FastScanOptions struct {
	// Keep is the fraction of vectors at the beginning of the partition
	// scanned with plain PQ Scan to find a temporary nearest neighbor
	// whose distance becomes the quantization bound qmax (§4.4). The
	// paper finds "Any keep value between 0.1% and 1% is suitable" and
	// uses 0.5% by default.
	Keep float64
	// GroupComponents is the number c of leading components used for
	// vector grouping (§4.2). Negative selects automatically with the
	// paper's rule nmin(c) = 50·16^c.
	GroupComponents int
	// OrderGroups is an extension beyond the paper: groups are visited
	// in ascending order of a per-group lower-bound estimate instead of
	// key order, so vectors close to the query are scanned first and the
	// pruning threshold converges almost immediately. The paper scans
	// groups in database order, which at its 25 M-vector scale converges
	// fast anyway; at smaller scales ordering recovers most of the lost
	// pruning power (see the GroupOrdering ablation bench). Results are
	// unchanged — only the amount of pruning varies.
	OrderGroups bool
}

// DefaultKeep is the paper's default keep fraction (0.5 %).
const DefaultKeep = 0.005

// FastScan is the PQ Fast Scan kernel of §4 bound to one partition: the
// grouped/packed layout is built once and reused across queries, like the
// database reorganization the paper performs at index-construction time.
type FastScan struct {
	part        *Partition
	keepN       int
	c           int
	grouped     *layout.Grouped
	orderGroups bool
}

// NewFastScan prepares PQ Fast Scan over p. The first Keep fraction of
// the partition stays in row-major order for the temporary-NN phase; the
// remainder is grouped on c components and packed into 16-vector blocks.
func NewFastScan(p *Partition, opt FastScanOptions) (*FastScan, error) {
	if p.W != M {
		return nil, fmt.Errorf("scan: fast scan requires %d-byte codes, partition has %d", M, p.W)
	}
	if opt.Keep < 0 || opt.Keep >= 1 {
		return nil, fmt.Errorf("scan: keep fraction %v out of [0,1)", opt.Keep)
	}
	keepN := int(opt.Keep * float64(p.N))
	rest := p.N - keepN
	c := opt.GroupComponents
	if c < 0 {
		c = layout.AutoComponents(rest)
	}
	if c > layout.MaxGroupComponents {
		return nil, fmt.Errorf("scan: grouping components %d out of range", c)
	}
	ids := make([]int64, rest)
	for i := range ids {
		ids[i] = p.ID(keepN + i)
	}
	g, err := layout.NewGrouped(p.Codes[keepN*M:], ids, c)
	if err != nil {
		return nil, err
	}
	return &FastScan{part: p, keepN: keepN, c: c, grouped: g, orderGroups: opt.OrderGroups}, nil
}

// GroupComponents returns the grouping depth c in use.
func (fs *FastScan) GroupComponents() int { return fs.c }

// KeepN returns the number of vectors in the plain-scanned keep region.
func (fs *FastScan) KeepN() int { return fs.keepN }

// Grouped exposes the packed layout (memory-footprint experiments).
func (fs *FastScan) Grouped() *layout.Grouped { return fs.grouped }

// Append extends the layout with vectors just appended to the underlying
// partition (positions at and beyond the old partition end). Each vector
// joins its group in the packed layout; the keep region is left
// untouched, so appended vectors are always scanned through the
// lower-bound path. Deletions need no layout maintenance at all — they
// are tombstones on the partition, checked during the scan.
//
// Small batches splice lanes in place (per-vector cost: one memmove of
// the arrays past the insertion point); batches large relative to the
// layout regroup from scratch in one O(N+B) pass instead. Both paths
// produce byte-identical state: the grouped-order arrays are already
// stably key-sorted, so re-sorting them with the appended tail preserves
// every group's within-group age order.
func (fs *FastScan) Append(codes []uint8, ids []int64) {
	n := len(ids)
	g := fs.grouped
	if n > 64 && n > g.N/8 {
		allCodes := append(append([]uint8(nil), g.Codes...), codes...)
		allIDs := append(append([]int64(nil), g.IDs...), ids...)
		if ng, err := layout.NewGrouped(allCodes, allIDs, fs.c); err == nil {
			fs.grouped = ng
			return
		}
	}
	for i := 0; i < n; i++ {
		g.Append(codes[i*M:(i+1)*M], ids[i])
	}
}

// Rebind returns a FastScan over np that shares this layout. np must
// hold exactly the same codes in the same positions — the tombstone-only
// copy-on-write case, where the grouped layout is unaffected and only
// the partition binding (whose dead set kernels consult during the scan)
// changes.
func (fs *FastScan) Rebind(np *Partition) *FastScan {
	return &FastScan{part: np, keepN: fs.keepN, c: fs.c, grouped: fs.grouped, orderGroups: fs.orderGroups}
}

// Detach returns a stub FastScan bound to the given partition stub: the
// scan parameters (keep split, grouping depth, ordering mode) and the
// grouped directory stay resident while the packed blocks, grouped
// codes and grouped ids move to a disk extent (layout.Grouped.Detach).
func (fs *FastScan) Detach(stub *Partition) *FastScan {
	return &FastScan{part: stub, keepN: fs.keepN, c: fs.c, grouped: fs.grouped.Detach(), orderGroups: fs.orderGroups}
}

// Hydrate returns a scannable FastScan over a hydrated partition and
// grouped layout — per-pin shallow views over a pinned extent payload,
// valid only while the pin is held. p must be the hydration of the stub
// this FastScan was detached with (same rows), and g the hydration of
// its grouped directory.
func (fs *FastScan) Hydrate(p *Partition, g *layout.Grouped) *FastScan {
	return &FastScan{part: p, keepN: fs.keepN, c: fs.c, grouped: g, orderGroups: fs.orderGroups}
}

// CloneAppend returns a FastScan over np — p's rows plus the appended
// ones — without touching this layout: the copy-on-write counterpart of
// Append for layouts published in snapshots. It produces state
// byte-identical to calling Append in place (same splice-vs-regroup
// heuristic, same stable grouping), so results and pruning behaviour
// match the mutable path exactly.
func (fs *FastScan) CloneAppend(np *Partition, codes []uint8, ids []int64) *FastScan {
	n := len(ids)
	g := fs.grouped
	nfs := &FastScan{part: np, keepN: fs.keepN, c: fs.c, orderGroups: fs.orderGroups}
	if n > 64 && n > g.N/8 {
		allCodes := append(append(make([]uint8, 0, len(g.Codes)+len(codes)), g.Codes...), codes...)
		allIDs := append(append(make([]int64, 0, len(g.IDs)+n), g.IDs...), ids...)
		if ng, err := layout.NewGrouped(allCodes, allIDs, fs.c); err == nil {
			nfs.grouped = ng
			return nfs
		}
	}
	ng := g.Clone()
	for i := 0; i < n; i++ {
		ng.Append(codes[i*M:(i+1)*M], ids[i])
	}
	nfs.grouped = ng
	return nfs
}

// groupVisitOrder returns the order groups are scanned in: database
// (key) order by default, or — with the OrderGroups extension — ascending
// by a conservative per-group distance estimate: the sum of each grouped
// component's portion minimum over the nibbles actually present in the
// group (the NibbleMask support precomputed by layout.NewGrouped and
// maintained by Append) plus each ungrouped component's global table
// minimum. The estimate lower-bounds every member's ADC distance, so
// visiting small-estimate groups first front-loads the true nearest
// neighbors and tightens the pruning threshold early.
//
// Cost per query: one pass over the first c distance-table rows builds
// the 16 full-portion minima per component, after which every group with
// a saturated mask is estimated in O(c); sparse groups read only their
// popcount(mask) present entries. Before the masks existed every group
// rescanned its full 16-entry portions.
//
// sc, when non-nil, provides reusable order/estimate buffers (the native
// engine's allocation-free path). Both engines call this same function,
// so the visit order — and therefore pruning behaviour — is identical
// across engines.
func (fs *FastScan) groupVisitOrder(t quantizer.Tables, sc *Scratch) []int {
	g := fs.grouped
	var order []int
	var est []float64
	if sc != nil {
		sc.order = growSlice(sc.order, len(g.Groups))
		sc.est = growSlice(sc.est, len(g.Groups))
		order, est = sc.order, sc.est
	} else {
		order = make([]int, len(g.Groups))
		est = make([]float64, len(g.Groups))
	}
	for i := range order {
		order[i] = i
	}
	if !fs.orderGroups {
		return order
	}
	base := 0.0
	for j := fs.c; j < M; j++ {
		row := t.Row(j)
		m := float64(row[0])
		for _, v := range row[1:] {
			if float64(v) < m {
				m = float64(v)
			}
		}
		base += m
	}
	// Full-portion minima per grouped component, shared by every group
	// whose nibble support is saturated.
	var pmins [layout.MaxGroupComponents][16]float64
	for j := 0; j < fs.c; j++ {
		row := t.Row(j)
		for h := 0; h < 16; h++ {
			m := float64(row[h*16])
			for _, v := range row[h*16+1 : h*16+16] {
				if float64(v) < m {
					m = float64(v)
				}
			}
			pmins[j][h] = m
		}
	}
	for gi := range g.Groups {
		grp := &g.Groups[gi]
		e := base
		for j := 0; j < fs.c; j++ {
			if mask := grp.NibbleMask[j]; mask == 0xffff {
				e += pmins[j][grp.Key[j]]
			} else {
				row := t.Row(j)[int(grp.Key[j])*16 : int(grp.Key[j])*16+16]
				m := math.Inf(1)
				for ; mask != 0; mask &= mask - 1 {
					if v := float64(row[bits.TrailingZeros16(mask)]); v < m {
						m = v
					}
				}
				e += m
			}
		}
		est[gi] = e
	}
	// Equal estimates tie-break on group index: a canonical total order,
	// so the visit order is identical however the sort is implemented.
	slices.SortFunc(order, func(a, b int) int {
		if est[a] != est[b] {
			if est[a] < est[b] {
				return -1
			}
			return 1
		}
		return a - b
	})
	return order
}

// distQuantizer maps float32 distances to the signed 8-bit bins of §4.4.
//
// Safety contract (the exactness invariant): for every quantized entry q
// of value v, v >= qmin + q·delta holds in real arithmetic; therefore for
// any code the true ADC distance is bounded below by
// 8·qmin + delta·qsat, where qsat is the saturated sum of the 8 quantized
// small-table entries. pruneThreshold then chooses the comparison bound
// so that a pruned vector is strictly worse than the current topk-th
// neighbor, with one bin of slack absorbing accumulated float64 rounding.
type distQuantizer struct {
	qmin  float64
	delta float64
}

func newDistQuantizer(qmin, qmax float32) distQuantizer {
	d := (float64(qmax) - float64(qmin)) / 127
	if d <= 0 {
		// Degenerate table (all distances equal): every entry quantizes
		// to bin 0 and pruning is disabled by the threshold clamp.
		d = math.Inf(1)
	}
	return distQuantizer{qmin: float64(qmin), delta: d}
}

// quantize returns the bin of v, guaranteeing v >= qmin + bin·delta.
//
// The bin is the closed-form floor of (v-qmin)/delta with a single
// one-step correction: float64 rounding in the subtraction and division
// can push the computed ratio past an integer boundary, but the combined
// relative error is far below one bin at any representable ratio <= 127,
// so the floor overshoots the contract-satisfying bin by at most one.
func (q distQuantizer) quantize(v float32) uint8 {
	if math.IsInf(q.delta, 1) {
		return 0
	}
	n := int(math.Floor((float64(v) - q.qmin) / q.delta))
	if n > 127 {
		return 127
	}
	if n > 0 && q.qmin+float64(n)*q.delta > float64(v) {
		n--
	}
	if n < 0 {
		n = 0
	}
	return uint8(n)
}

// pruneThreshold returns the largest int8 t such that pruning every
// vector with qsat > t is safe against the current topk threshold min:
// qsat > t implies trueDistance > min, so the vector cannot displace any
// retained neighbor. When no pruning is safe (heap not full or degenerate
// delta) it returns 127, for which qsat > t is unsatisfiable.
//
// Saturated lanes (qsat = 127) deserve care: a saturating sum reaching
// 127 proves the un-saturated sum is at least 127, hence
// trueDistance >= 8·qmin + 127·delta = qmax + 7·qmin. Whenever that
// exceeds min — in particular always once the running threshold has
// dropped to qmax or below, which holds from the start when qmax is
// taken from the keep-phase heap — lanes above the representable range
// are prunable even though min itself lies beyond it ("All distances
// above qmax are quantized to 127", §4.4). Without this rule a scaled
// threshold beyond qmax would disable pruning entirely.
func (q distQuantizer) pruneThreshold(min float32, haveMin bool) int8 {
	if !haveMin || math.IsInf(q.delta, 1) {
		return 127
	}
	t := int(math.Floor((float64(min)-8*q.qmin)/q.delta)) + 1
	if t > 126 {
		if 8*q.qmin+127*q.delta > float64(min) {
			// Saturated lanes are provably worse than min: let them fail
			// the qsat > t test.
			return 126
		}
		return 127
	}
	if t < -128 {
		t = -128
	}
	return int8(t)
}

// smallTables holds the eight 16-entry in-register tables of §4.1/§4.5:
// groupTables (S_0..S_{C-1}) are rebuilt per group from quantized
// distance-table portions; minTables (S_C..S_7) are built once per query
// from minimum tables.
type smallTables struct {
	minTables [M]simd.Reg // entries C..7 used
}

// buildMinTables computes, for each ungrouped component, the 16-entry
// minimum table: entry h is the minimum of portion h of the distance
// table (Figure 10), quantized.
func buildMinTables(t quantizer.Tables, c int, dq distQuantizer) smallTables {
	var st smallTables
	for j := c; j < M; j++ {
		row := t.Row(j)
		var reg simd.Reg
		for h := 0; h < 16; h++ {
			m := row[h*16]
			for _, v := range row[h*16+1 : h*16+16] {
				if v < m {
					m = v
				}
			}
			reg[h] = dq.quantize(m)
		}
		st.minTables[j] = reg
	}
	return st
}

// buildGroupTable quantizes portion key of distance table j (the solid
// arrows of Figure 13).
func buildGroupTable(t quantizer.Tables, j int, key uint8, dq distQuantizer) simd.Reg {
	row := t.Row(j)[int(key)*16 : int(key)*16+16]
	var reg simd.Reg
	for i, v := range row {
		reg[i] = dq.quantize(v)
	}
	return reg
}

// Scan runs PQ Fast Scan for the query described by its distance tables,
// returning the k nearest neighbors — bit-identical to the PQ Scan
// kernels — and the dynamic statistics of the run.
func (fs *FastScan) Scan(t quantizer.Tables, k int) ([]topk.Result, Stats) {
	check8x8(t)
	heap := topk.New(k)
	stats := Stats{Scanned: fs.part.N, KeepScanned: fs.keepN}

	// Phase 1 (§4.4): plain PQ Scan over the keep region to obtain the
	// temporary nearest neighbor bounding qmax — §4.4 generalized to
	// topk search (§5.4): the distance to the temporary topk-th nearest
	// neighbor bounds the representable range (the running pruning
	// threshold starts exactly at qmax and only decreases, so every
	// distance quantized to 127 is already prunable; see
	// pruneThreshold), falling back to the worst temporary distance
	// while the keep region holds fewer than k vectors. keepBounds is
	// shared with every native backend and the ablations, so all paths
	// quantize over the same range.
	qmin, qmax := keepBounds(fs.part, fs.keepN, t, heap)
	stats.Ops.Add(libpqPerVector.Scale(float64(fs.keepN)))
	dq := newDistQuantizer(qmin, qmax)

	// Phase 2: build the query-lifetime minimum tables S_C..S_7
	// (Figure 10). Quantizing the 8x256 table entries and reducing the
	// portions costs one pass over the distance tables.
	st := buildMinTables(t, fs.c, dq)
	stats.Ops.Add(perf.OpCounts{ScalarLoadF: 256 * M, ScalarALU: 512 * M})

	thrVal, haveThr := heap.Threshold()
	t8 := dq.pruneThreshold(thrVal, haveThr)
	thrReg := simd.Broadcast(uint8(t8))

	g := fs.grouped
	var groupTables [layout.MaxGroupComponents]simd.Reg
	var nibbles [layout.BlockVectors]uint8
	// Per-block operation mix of the inner loop: c packed-nibble loads
	// plus (8-c) full-byte loads, nibble unpacking (2 ops per grouped
	// component) and high-nibble extraction (psrlw+pand per ungrouped
	// component), 8 pshufb lookups, 7 saturated additions, one compare,
	// one movemask, and scalar mask/loop handling.
	perBlock := perf.OpCounts{
		SIMDLoad:     8,
		SIMDALU:      float64(2*fs.c+2*(M-fs.c)) + 7,
		SIMDShuffle:  8,
		SIMDCompare:  1,
		SIMDMovmsk:   1,
		ScalarALU:    2,
		ScalarBranch: 2,
	}

	groupOrder := fs.groupVisitOrder(t, nil)
	hasDead := fs.part.HasDead()

	for _, gi := range groupOrder {
		grp := g.Groups[gi]
		stats.Groups++
		// Load the group's small tables S_0..S_{C-1} (solid arrows of
		// Figure 13).
		for j := 0; j < fs.c; j++ {
			groupTables[j] = buildGroupTable(t, j, grp.Key[j], dq)
		}

		for b := 0; b < grp.BlockCount; b++ {
			stats.Blocks++
			blockIdx := grp.BlockStart + b
			valid := grp.Count - b*layout.BlockVectors
			if valid > layout.BlockVectors {
				valid = layout.BlockVectors
			}

			// Lower-bound accumulation (§4.5): grouped components use the
			// 4 least significant bits against S_0..S_{C-1}; ungrouped
			// components use the 4 most significant bits against the
			// minimum tables.
			var acc simd.Reg
			first := true
			for j := 0; j < fs.c; j++ {
				g.LowNibbles(blockIdx, j, &nibbles)
				idx := simd.Load(nibbles[:])
				lookup := simd.Pshufb(groupTables[j], idx)
				if first {
					acc = lookup
					first = false
				} else {
					acc = simd.PaddsB(acc, lookup)
				}
			}
			for j := fs.c; j < M; j++ {
				comps := simd.Load(g.FullComponents(blockIdx, j))
				hi := simd.Pand(simd.Psrlw4(comps), simd.LowNibbleMask())
				lookup := simd.Pshufb(st.minTables[j], hi)
				if first {
					acc = lookup
					first = false
				} else {
					acc = simd.PaddsB(acc, lookup)
				}
			}

			// Compare against the quantized pruning threshold; lanes with
			// acc > t8 are pruned (Figure 6).
			prunedMask := simd.PmovmskB(simd.PcmpgtB(acc, thrReg))

			base := grp.Start + b*layout.BlockVectors
			stats.LowerBounds += valid
			if prunedMask == 0xffff {
				stats.Pruned += valid
				continue
			}
			for lane := 0; lane < valid; lane++ {
				pos := base + lane
				// Tombstoned vectors are excluded without an exact
				// distance computation, exactly like a pruned lane.
				if prunedMask&(1<<lane) != 0 || (hasDead && fs.part.IsDead(g.IDs[pos])) {
					stats.Pruned++
					continue
				}
				// Candidate: exact pqdistance re-check (right-hand path
				// of Figure 6), then threshold refresh if the heap
				// changed.
				stats.Candidates++
				d := adc8(g.Code(pos), t)
				if heap.Push(g.IDs[pos], d) {
					if thr, ok := heap.Threshold(); ok {
						nt := dq.pruneThreshold(thr, true)
						if nt != t8 {
							t8 = nt
							thrReg = simd.Broadcast(uint8(t8))
						}
					}
				}
			}
		}
	}
	// Aggregate operation accounting (hoisted out of the hot loop): the
	// per-block inner-loop mix, the per-group small-table loads, and one
	// exact re-check per surviving candidate.
	stats.Ops.Add(perBlock.Scale(float64(stats.Blocks)))
	stats.Ops.Add(perf.OpCounts{
		SIMDLoad:    float64(fs.c),
		ScalarALU:   4,
		ScalarLoadF: float64(16 * fs.c),
	}.Scale(float64(stats.Groups)))
	stats.Ops.Add(libpqPerVector.Scale(float64(stats.Candidates)))
	return heap.Results(), stats
}

// QuantizationOnly is the §5.5 ablation: lower bounds use full 256-entry
// quantized tables (8-bit entries, exact 8-bit indexes) with no grouping
// and no minimum tables. Such tables do not fit SIMD registers, so this
// variant offers no speedup; it isolates the pruning power of the
// distance-quantization technique alone. Results remain bit-identical to
// PQ Scan.
func QuantizationOnly(p *Partition, t quantizer.Tables, k int, keep float64) ([]topk.Result, Stats) {
	return QuantizationOnlyScratch(p, t, k, keep, nil)
}

// QuantizationOnlyScratch is QuantizationOnly with a reusable Scratch:
// the quantized full tables are cached per (tables, bounds) key, so
// sweeping the same query over an unchanged partition — the ablation's
// usage pattern — quantizes the 8×256 entries once instead of per call.
// The bounds themselves come from the shared keepBounds helper (the
// same source the model path and every native backend use), which is
// what keeps the ablation's pruning counters comparable across engines.
// Stats.Ops still meters the full modeled instruction stream, cache hit
// or miss — Ops describe the modeled algorithm, not the host's memoized
// execution of it.
func QuantizationOnlyScratch(p *Partition, t quantizer.Tables, k int, keep float64, sc *Scratch) ([]topk.Result, Stats) {
	check8x8(t)
	if sc == nil {
		sc = NewScratch()
	}
	heap := topk.New(k)
	keepN := int(keep * float64(p.N))
	stats := Stats{Scanned: p.N, KeepScanned: keepN}
	qmin, qmax := keepBounds(p, keepN, t, heap)
	stats.Ops.Add(libpqPerVector.Scale(float64(keepN)))
	dq := newDistQuantizer(qmin, qmax)
	qt := sc.quantizedFullTables(t, dq, qmin, qmax)
	stats.Ops.Add(perf.OpCounts{ScalarLoadF: 256 * M, ScalarALU: 512 * M})

	thrVal, haveThr := heap.Threshold()
	t8 := dq.pruneThreshold(thrVal, haveThr)
	hasDead := p.HasDead()

	for i := keepN; i < p.N; i++ {
		code := p.Code(i)
		if hasDead && p.IsDead(p.ID(i)) {
			stats.LowerBounds++
			stats.Pruned++
			continue
		}
		// Saturated 8-bit accumulation, scalar (no SIMD possible with
		// 256-entry tables).
		s := int16(qt[int(code[0])])
		s += int16(qt[256+int(code[1])])
		s += int16(qt[2*256+int(code[2])])
		s += int16(qt[3*256+int(code[3])])
		s += int16(qt[4*256+int(code[4])])
		s += int16(qt[5*256+int(code[5])])
		s += int16(qt[6*256+int(code[6])])
		s += int16(qt[7*256+int(code[7])])
		if s > 127 {
			s = 127
		}
		stats.LowerBounds++
		if int8(s) > t8 {
			stats.Pruned++
			continue
		}
		stats.Candidates++
		d := adc8(code, t)
		if heap.Push(p.ID(i), d) {
			if thr, ok := heap.Threshold(); ok {
				t8 = dq.pruneThreshold(thr, true)
			}
		}
	}
	// Aggregate accounting: one scalar 8-bit lower bound per vector plus
	// one exact re-check per candidate.
	stats.Ops.Add(perf.OpCounts{
		ScalarLoad64: 1, ScalarLoad8: 8, ScalarALU: 18, ScalarBranch: 2,
	}.Scale(float64(stats.LowerBounds)))
	stats.Ops.Add(libpqPerVector.Scale(float64(stats.Candidates)))
	return heap.Results(), stats
}

// StaticPrune measures the pruning power of the Fast Scan lower bounds
// against a fixed externally supplied threshold, removing the
// threshold-convergence dynamics from the measurement. It is a diagnostic
// used by tests and ablation studies, not a search path.
//
// The bounds and small tables are the Scratch-cached per-(query, epoch)
// state shared with the native backends (queryTablesFor), built from the
// same keep-phase rule as before: sweeping thresholds over a fixed
// (partition, tables) pair through one Scratch quantizes once, where the
// previous implementation recomputed the distance-quantizer bounds, the
// minimum tables and every per-group table on every call — and, because
// the recomputation was private to this function, could drift from what
// the engines actually scan with. sc may be nil for a transient scratch.
func (fs *FastScan) StaticPrune(t quantizer.Tables, threshold float32, sc *Scratch) (pruned, lowerBounds int) {
	check8x8(t)
	if sc == nil {
		sc = NewScratch()
	}
	// The keep-phase bound is a pure function of (layout epoch, tables):
	// hoist it behind its own cache key.
	key := staticPruneKey{data: &t.Data[0], g: fs.grouped}
	if sc.spKey != key {
		keepRes, _ := Libpq(NewPartition(fs.part.Codes[:fs.keepN*M], nil), t, 100)
		qmax := t.MaxSum()
		if len(keepRes) > 0 {
			qmax = keepRes[len(keepRes)-1].Distance
		}
		sc.spKey = key
		sc.spQmax = qmax
	}
	qt := sc.queryTablesFor(fs, t, t.Min(), sc.spQmax)
	t8 := qt.dq.pruneThreshold(threshold, true)
	g := fs.grouped
	for gi := range g.Groups {
		grp := &g.Groups[gi]
		for pos := grp.Start; pos < grp.Start+grp.Count; pos++ {
			code := g.Code(pos)
			sum := 0
			for j := 0; j < fs.c; j++ {
				// A group member's code[j] is Key[j]<<4 | nibble, so the
				// cached quantized row indexes directly — the same entry
				// the per-group window would yield.
				sum += int(qt.qrows[j][code[j]])
			}
			for j := fs.c; j < M; j++ {
				sum += int(qt.st.minTables[j][code[j]>>4])
			}
			if sum > 127 {
				sum = 127
			}
			lowerBounds++
			if int8(sum) > t8 {
				pruned++
			}
		}
	}
	return pruned, lowerBounds
}

// StaticPrune is the package-level compatibility wrapper: it builds the
// Fast Scan layout and a transient Scratch per call. Callers sweeping
// thresholds should build the layout once and use the FastScan method
// with a reused Scratch.
func StaticPrune(p *Partition, t quantizer.Tables, threshold float32, keep float64, c int) (pruned, lowerBounds int) {
	fs, err := NewFastScan(p, FastScanOptions{Keep: keep, GroupComponents: c})
	if err != nil {
		return 0, 0
	}
	return fs.StaticPrune(t, threshold, nil)
}
