// Package scan implements the five scan kernels the paper studies over a
// database partition of PQ 8×8 codes:
//
//   - Naive: Algorithm 1 verbatim — 8 mem1 loads (centroid indexes) and 8
//     mem2 loads (distance-table entries) per vector (§3.1);
//   - Libpq: the optimized PQ Scan of the libpq library — one 64-bit mem1
//     load per vector, individual indexes extracted with shifts (§3.1);
//   - AVX: vertical SIMD additions over 8 vectors at a time, with
//     register ways set one by one, the structure of Figure 4 (§3.2);
//   - Gather: SIMD gather-based table lookups over the transposed layout
//     of Figure 5 (§3.2);
//   - FastScan: the paper's contribution (§4), in fastscan.go.
//
// All kernels return bit-identical top-k results on identical input (the
// exactness invariant of DESIGN.md §6): every kernel accumulates the same
// float32 distance-table entries in the same j = 0..7 order, so even
// floating-point rounding agrees.
//
// Each kernel also returns a Stats record with its exact dynamic operation
// counts; internal/perf prices those counts to reproduce the paper's
// performance-counter figures.
package scan

import (
	"encoding/binary"
	"sort"

	"pqfastscan/internal/layout"
	"pqfastscan/internal/perf"
	"pqfastscan/internal/quantizer"
	"pqfastscan/internal/topk"
)

// M is the code length of the PQ 8×8 configuration every kernel targets.
const M = layout.M

// Partition is one scannable unit of the database: the vectors of one
// inverted-index cell, stored as row-major pqcodes (Figure 1). A
// partition is mutable: Append adds freshly encoded vectors at the end,
// Tombstone marks vectors as deleted without rewriting the code blocks
// (kernels skip tombstoned ids during the scan).
type Partition struct {
	N     int
	W     int     // code width in bytes (components per vector)
	Codes []uint8 // row-major, N x W
	IDs   []int64 // optional original ids; nil means position == id

	dead map[int64]struct{} // tombstoned ids; nil when none

	// detached marks a stub whose Codes/IDs live in a disk extent
	// (Detach); ID traps position-as-id answers on such stubs, which
	// would otherwise silently misreport partitions with explicit ids.
	detached bool
}

// NewPartition wraps row-major PQ 8×8 codes (and optional ids) as a
// Partition.
func NewPartition(codes []uint8, ids []int64) *Partition {
	return NewPartitionW(codes, ids, M)
}

// NewPartitionW wraps row-major codes of w components each. Only w == M
// partitions are scannable by the kernels of this package; other widths
// exist for building and persisting alternative PQ configurations.
func NewPartitionW(codes []uint8, ids []int64, w int) *Partition {
	if w <= 0 || len(codes)%w != 0 {
		panic("scan: code array not a multiple of the code width")
	}
	n := len(codes) / w
	if ids != nil && len(ids) != n {
		panic("scan: id count mismatch")
	}
	return &Partition{N: n, W: w, Codes: codes, IDs: ids}
}

// ID maps a vector position to its external id.
func (p *Partition) ID(i int) int64 {
	if p.IDs == nil {
		if p.detached {
			panic("scan: ID on a detached partition stub")
		}
		return int64(i)
	}
	return p.IDs[i]
}

// Code returns the pqcode of vector i.
func (p *Partition) Code(i int) []uint8 {
	return p.Codes[i*p.W : (i+1)*p.W]
}

// Append adds vectors (row-major codes and their ids) at the end of the
// partition. The ids of appended vectors are always explicit.
func (p *Partition) Append(codes []uint8, ids []int64) {
	if len(codes) != len(ids)*p.W {
		panic("scan: append code/id count mismatch")
	}
	if p.IDs == nil {
		// Materialize the implicit position ids before mixing in
		// explicit ones.
		p.IDs = make([]int64, p.N, p.N+len(ids))
		for i := range p.IDs {
			p.IDs[i] = int64(i)
		}
	}
	p.Codes = append(p.Codes, codes...)
	p.IDs = append(p.IDs, ids...)
	p.N += len(ids)
}

// CloneAppend returns a new partition holding p's rows followed by the
// appended ones, leaving p untouched — the copy-on-write counterpart of
// Append for sealed partitions published in snapshots. The tombstone set
// is shared with p: appends never tombstone, and sealed partitions only
// grow their dead sets through CloneTombstone, which copies before
// writing.
func (p *Partition) CloneAppend(codes []uint8, ids []int64) *Partition {
	if len(codes) != len(ids)*p.W {
		panic("scan: append code/id count mismatch")
	}
	nc := make([]uint8, 0, len(p.Codes)+len(codes))
	nc = append(append(nc, p.Codes...), codes...)
	ni := make([]int64, 0, p.N+len(ids))
	if p.IDs == nil {
		for i := 0; i < p.N; i++ {
			ni = append(ni, int64(i))
		}
	} else {
		ni = append(ni, p.IDs...)
	}
	ni = append(ni, ids...)
	return &Partition{N: p.N + len(ids), W: p.W, Codes: nc, IDs: ni, dead: p.dead}
}

// CloneTombstone returns a new partition equal to p with id tombstoned,
// sharing the (immutable) code and id arrays and copying only the dead
// set — the copy-on-write counterpart of Tombstone. It reports false
// (and returns p unchanged) when id is already dead. Like Tombstone, the
// caller is responsible for only passing ids that live in this
// partition.
func (p *Partition) CloneTombstone(id int64) (*Partition, bool) {
	if _, ok := p.dead[id]; ok {
		return p, false
	}
	nd := make(map[int64]struct{}, len(p.dead)+1)
	for k := range p.dead {
		nd[k] = struct{}{}
	}
	nd[id] = struct{}{}
	return &Partition{N: p.N, W: p.W, Codes: p.Codes, IDs: p.IDs, dead: nd, detached: p.detached}, true
}

// Detach returns a shallow copy of the partition with the bulk arrays
// (Codes, IDs) dropped: a stub whose row and tombstone bookkeeping (N,
// W, dead set) stays resident while the bytes live in a disk extent.
// Stubs answer Live/IsDead/DeadCount and may be tombstoned copy-on-
// write (the dead set is RAM metadata); any code or id access must go
// through Hydrate first — ID panics on a stub rather than fabricate
// position ids.
func (p *Partition) Detach() *Partition {
	q := *p
	q.Codes, q.IDs = nil, nil
	q.detached = true
	return &q
}

// Hydrate returns a shallow copy of the stub with codes and ids
// attached — aliases into a pinned buffer-pool frame, valid only while
// the pin is held. The dead set is shared with the stub (immutable once
// published). ids may be nil only when the sealed partition had
// implicit position ids (hasIDs false at detach time; the caller tracks
// this in the extent metadata).
func (p *Partition) Hydrate(codes []uint8, ids []int64) *Partition {
	if len(codes) != p.N*p.W {
		panic("scan: Hydrate code length mismatch")
	}
	if ids != nil && len(ids) != p.N {
		panic("scan: Hydrate id count mismatch")
	}
	q := *p
	q.Codes, q.IDs = codes, ids
	q.detached = false
	return &q
}

// Compact returns a new partition holding only p's live rows, in their
// original relative order, with an empty tombstone set. A partition
// without tombstones compacts to a fresh header over the same (shared)
// arrays.
func (p *Partition) Compact() *Partition {
	if len(p.dead) == 0 {
		return &Partition{N: p.N, W: p.W, Codes: p.Codes, IDs: p.IDs}
	}
	codes := make([]uint8, 0, p.Live()*p.W)
	ids := make([]int64, 0, p.Live())
	for i := 0; i < p.N; i++ {
		id := p.ID(i)
		if p.IsDead(id) {
			continue
		}
		codes = append(codes, p.Code(i)...)
		ids = append(ids, id)
	}
	return &Partition{N: len(ids), W: p.W, Codes: codes, IDs: ids}
}

// Tombstone marks id as deleted. It reports whether the id was newly
// tombstoned (false when it already was). The caller is responsible for
// only passing ids that live in this partition.
func (p *Partition) Tombstone(id int64) bool {
	if _, ok := p.dead[id]; ok {
		return false
	}
	if p.dead == nil {
		p.dead = make(map[int64]struct{})
	}
	p.dead[id] = struct{}{}
	return true
}

// IsDead reports whether id has been tombstoned.
func (p *Partition) IsDead(id int64) bool {
	_, ok := p.dead[id]
	return ok
}

// HasDead reports whether any vector of the partition is tombstoned;
// kernels use it to keep the no-deletions scan free of per-vector map
// lookups.
func (p *Partition) HasDead() bool { return len(p.dead) > 0 }

// DeadCount returns the number of tombstoned vectors.
func (p *Partition) DeadCount() int { return len(p.dead) }

// Live returns the number of vectors that are not tombstoned.
func (p *Partition) Live() int { return p.N - len(p.dead) }

// DeadIDs returns the tombstoned ids in ascending order (persist writes
// them deterministically).
func (p *Partition) DeadIDs() []int64 {
	out := make([]int64, 0, len(p.dead))
	for id := range p.dead {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// RestoreDead reinstalls a tombstone set (persist's read path).
func (p *Partition) RestoreDead(ids []int64) {
	for _, id := range ids {
		p.Tombstone(id)
	}
}

// Stats describes one scan's dynamic behaviour. Counts of vectors are
// exact; Ops is the operation mix handed to internal/perf.
type Stats struct {
	Scanned     int // vectors examined in total
	KeepScanned int // vectors scanned with plain PQ Scan in the keep phase
	LowerBounds int // SIMD lower-bound evaluations (FastScan)
	Pruned      int // vectors whose exact distance computation was pruned
	Candidates  int // exact pqdistance computations after a lower bound
	Groups      int // groups visited (FastScan)
	Blocks      int // 16-vector blocks processed (FastScan)

	Ops perf.OpCounts
}

// Merge accumulates another scan's counts into s (multi-probe and batch
// aggregation).
func (s *Stats) Merge(o Stats) {
	s.Scanned += o.Scanned
	s.KeepScanned += o.KeepScanned
	s.LowerBounds += o.LowerBounds
	s.Pruned += o.Pruned
	s.Candidates += o.Candidates
	s.Groups += o.Groups
	s.Blocks += o.Blocks
	s.Ops.Add(o.Ops)
}

// PrunedFraction returns the fraction of lower-bounded vectors whose
// exact distance computation was avoided — the paper's "Pruned [%]" axis.
func (s Stats) PrunedFraction() float64 {
	if s.LowerBounds == 0 {
		return 0
	}
	return float64(s.Pruned) / float64(s.LowerBounds)
}

// Counters prices the scan on arch.
func (s Stats) Counters(arch perf.Arch) perf.Counters {
	return perf.Estimate(s.Ops, arch)
}

// Per-vector / per-block operation mixes of each kernel. These constants
// are the analytical counterparts of the kernels' inner loops and are the
// numbers priced by internal/perf; see the package comment of
// internal/perf for why this reproduces the paper's counter studies.
var (
	// naivePerVector: Algorithm 1. 8 single-byte index loads, 8 float
	// table loads, 8 float additions plus index arithmetic, loop control.
	naivePerVector = perf.OpCounts{
		ScalarLoad8: 8, ScalarLoadF: 8, ScalarALU: 12, ScalarBranch: 2,
	}
	// libpqPerVector: one 64-bit load, 8 shift+mask extractions, 8 float
	// loads and additions. More instructions than naive but fewer loads,
	// matching §3.1 ("the increase in the number of instructions offsets
	// the increase in IPC and the decrease in L1 loads").
	libpqPerVector = perf.OpCounts{
		ScalarLoad64: 1, ScalarLoadF: 8, ScalarALU: 24, ScalarBranch: 2,
	}
	// avxPer8Vectors: Figure 4. Per component j: one 64-bit load of the 8
	// indexes (transposed layout), 8 scalar table loads, 8 register-way
	// inserts, one vertical SIMD addition. Then 8 extract+compare steps.
	avxPer8Vectors = perf.OpCounts{
		ScalarLoad64: 8, ScalarLoadF: 64, SIMDInsert: 64, SIMDALU: 8,
		ScalarALU: 16, ScalarBranch: 8,
	}
	// gatherPer8Vectors: Figure 5. Per component j: one SIMD load of 8
	// indexes, widening, one 8-way gather, one SIMD addition; then 8
	// extract+compare steps. The gather's 34 µops and 10-cycle reciprocal
	// throughput (paper Table 2) are priced by internal/perf.
	gatherPer8Vectors = perf.OpCounts{
		SIMDLoad: 8, SIMDALU: 24, Gather256: 8,
		ScalarALU: 16, ScalarBranch: 8,
	}
)

// adc8 computes the ADC distance of Equation 3 for one 8-component code,
// accumulating in the fixed j = 0..7 order shared by all kernels.
func adc8(code []uint8, t quantizer.Tables) float32 {
	d := t.Data[int(code[0])]
	d += t.Data[256+int(code[1])]
	d += t.Data[2*256+int(code[2])]
	d += t.Data[3*256+int(code[3])]
	d += t.Data[4*256+int(code[4])]
	d += t.Data[5*256+int(code[5])]
	d += t.Data[6*256+int(code[6])]
	d += t.Data[7*256+int(code[7])]
	return d
}

func check8x8(t quantizer.Tables) {
	if t.M != M || t.KStar != 256 {
		panic("scan: kernels require PQ 8x8 distance tables")
	}
}

// Naive scans the partition with Algorithm 1 and returns the k nearest
// neighbors.
func Naive(p *Partition, t quantizer.Tables, k int) ([]topk.Result, Stats) {
	check8x8(t)
	heap := topk.New(k)
	hasDead := p.HasDead()
	for i := 0; i < p.N; i++ {
		id := p.ID(i)
		if hasDead && p.IsDead(id) {
			continue
		}
		heap.Push(id, adc8(p.Code(i), t))
	}
	stats := Stats{Scanned: p.N}
	stats.Ops = naivePerVector.Scale(float64(p.N))
	return heap.Results(), stats
}

// Libpq scans the partition with the libpq optimization: the 8 centroid
// indexes of a vector are fetched with a single 64-bit load and extracted
// with shifts. The distance accumulation order is identical to Naive.
func Libpq(p *Partition, t quantizer.Tables, k int) ([]topk.Result, Stats) {
	check8x8(t)
	heap := topk.New(k)
	libpqRange(p, 0, p.N, t, heap)
	stats := Stats{Scanned: p.N}
	stats.Ops = libpqPerVector.Scale(float64(p.N))
	return heap.Results(), stats
}

// libpqRange scans positions [lo, hi) of the partition into heap, the
// shared exact-scan path also used by FastScan's keep phase. Tombstoned
// vectors are skipped. A local copy of the heap threshold gates the Push
// call: a distance strictly above the full heap's root cannot be
// retained, so skipping the call changes nothing (ties still go through
// Push for the deterministic id-order rule).
func libpqRange(p *Partition, lo, hi int, t quantizer.Tables, heap *topk.Heap) {
	codes, ids := p.Codes, p.IDs
	hasDead := p.HasDead()
	thr, full := heap.Threshold()
	for i := lo; i < hi; i++ {
		id := int64(i)
		if ids != nil {
			id = ids[i]
		}
		if hasDead && p.IsDead(id) {
			continue
		}
		word := binary.LittleEndian.Uint64(codes[i*M : i*M+M])
		d := t.Data[int(word&0xff)]
		d += t.Data[256+int(word>>8&0xff)]
		d += t.Data[2*256+int(word>>16&0xff)]
		d += t.Data[3*256+int(word>>24&0xff)]
		d += t.Data[4*256+int(word>>32&0xff)]
		d += t.Data[5*256+int(word>>40&0xff)]
		d += t.Data[6*256+int(word>>48&0xff)]
		d += t.Data[7*256+int(word>>56&0xff)]
		if full && d > thr {
			continue
		}
		if heap.Push(id, d) {
			if v, ok := heap.Threshold(); ok {
				thr, full = v, true
			}
		}
	}
}

// AVX scans the partition with the vertical-addition structure of
// Figure 4: distances to 8 vectors are accumulated simultaneously in an
// 8-way register image, with each way set individually after a scalar
// table lookup. Results are identical to Naive because each way performs
// the same additions in the same order.
func AVX(p *Partition, t quantizer.Tables, k int) ([]topk.Result, Stats) {
	check8x8(t)
	heap := topk.New(k)
	hasDead := p.HasDead()
	tr := layout.NewTransposed(p.Codes)
	var acc [8]float32
	full := tr.FullBlocks()
	for b := 0; b < full; b++ {
		for v := range acc {
			acc[v] = 0
		}
		for j := 0; j < M; j++ {
			comps := tr.Component(b, j)
			row := t.Data[j*256:]
			// The 8 scalar lookups and per-way inserts of Figure 4.
			for v := 0; v < 8; v++ {
				acc[v] += row[int(comps[v])]
			}
		}
		for v := 0; v < 8; v++ {
			id := p.ID(b*8 + v)
			if hasDead && p.IsDead(id) {
				continue
			}
			heap.Push(id, acc[v])
		}
	}
	// Row-major tail, scanned naively.
	tail := p.N - full*8
	for i := full * 8; i < p.N; i++ {
		id := p.ID(i)
		if hasDead && p.IsDead(id) {
			continue
		}
		heap.Push(id, adc8(p.Code(i), t))
	}
	stats := Stats{Scanned: p.N}
	stats.Ops = avxPer8Vectors.Scale(float64(full))
	stats.Ops.Add(naivePerVector.Scale(float64(tail)))
	return heap.Results(), stats
}

// Gather scans the partition with SIMD gather semantics (Figure 5): for
// each component, the 8 indexes of a transposed block select 8 table
// entries in one (expensive) gather, then one vertical addition
// accumulates them. Results are identical to Naive.
func Gather(p *Partition, t quantizer.Tables, k int) ([]topk.Result, Stats) {
	check8x8(t)
	heap := topk.New(k)
	hasDead := p.HasDead()
	tr := layout.NewTransposed(p.Codes)
	var acc [8]float32
	full := tr.FullBlocks()
	for b := 0; b < full; b++ {
		for v := range acc {
			acc[v] = 0
		}
		for j := 0; j < M; j++ {
			comps := tr.Component(b, j)
			row := t.Data[j*256:]
			// One vpgatherdd: 8 table elements fetched by index.
			for v := 0; v < 8; v++ {
				acc[v] += row[int(comps[v])]
			}
		}
		for v := 0; v < 8; v++ {
			id := p.ID(b*8 + v)
			if hasDead && p.IsDead(id) {
				continue
			}
			heap.Push(id, acc[v])
		}
	}
	tail := p.N - full*8
	for i := full * 8; i < p.N; i++ {
		id := p.ID(i)
		if hasDead && p.IsDead(id) {
			continue
		}
		heap.Push(id, adc8(p.Code(i), t))
	}
	stats := Stats{Scanned: p.N}
	stats.Ops = gatherPer8Vectors.Scale(float64(full))
	stats.Ops.Add(naivePerVector.Scale(float64(tail)))
	return heap.Results(), stats
}
