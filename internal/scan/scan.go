// Package scan implements the five scan kernels the paper studies over a
// database partition of PQ 8×8 codes:
//
//   - Naive: Algorithm 1 verbatim — 8 mem1 loads (centroid indexes) and 8
//     mem2 loads (distance-table entries) per vector (§3.1);
//   - Libpq: the optimized PQ Scan of the libpq library — one 64-bit mem1
//     load per vector, individual indexes extracted with shifts (§3.1);
//   - AVX: vertical SIMD additions over 8 vectors at a time, with
//     register ways set one by one, the structure of Figure 4 (§3.2);
//   - Gather: SIMD gather-based table lookups over the transposed layout
//     of Figure 5 (§3.2);
//   - FastScan: the paper's contribution (§4), in fastscan.go.
//
// All kernels return bit-identical top-k results on identical input (the
// exactness invariant of DESIGN.md §6): every kernel accumulates the same
// float32 distance-table entries in the same j = 0..7 order, so even
// floating-point rounding agrees.
//
// Each kernel also returns a Stats record with its exact dynamic operation
// counts; internal/perf prices those counts to reproduce the paper's
// performance-counter figures.
package scan

import (
	"encoding/binary"

	"pqfastscan/internal/layout"
	"pqfastscan/internal/perf"
	"pqfastscan/internal/quantizer"
	"pqfastscan/internal/topk"
)

// M is the code length of the PQ 8×8 configuration every kernel targets.
const M = layout.M

// Partition is one scannable unit of the database: the vectors of one
// inverted-index cell, stored as row-major pqcodes (Figure 1).
type Partition struct {
	N     int
	Codes []uint8 // row-major, N x M
	IDs   []int64 // optional original ids; nil means position == id
}

// NewPartition wraps row-major codes (and optional ids) as a Partition.
func NewPartition(codes []uint8, ids []int64) *Partition {
	if len(codes)%M != 0 {
		panic("scan: code array not a multiple of M")
	}
	n := len(codes) / M
	if ids != nil && len(ids) != n {
		panic("scan: id count mismatch")
	}
	return &Partition{N: n, Codes: codes, IDs: ids}
}

// ID maps a vector position to its external id.
func (p *Partition) ID(i int) int64 {
	if p.IDs == nil {
		return int64(i)
	}
	return p.IDs[i]
}

// Code returns the pqcode of vector i.
func (p *Partition) Code(i int) []uint8 {
	return p.Codes[i*M : (i+1)*M]
}

// Stats describes one scan's dynamic behaviour. Counts of vectors are
// exact; Ops is the operation mix handed to internal/perf.
type Stats struct {
	Scanned     int // vectors examined in total
	KeepScanned int // vectors scanned with plain PQ Scan in the keep phase
	LowerBounds int // SIMD lower-bound evaluations (FastScan)
	Pruned      int // vectors whose exact distance computation was pruned
	Candidates  int // exact pqdistance computations after a lower bound
	Groups      int // groups visited (FastScan)
	Blocks      int // 16-vector blocks processed (FastScan)

	Ops perf.OpCounts
}

// PrunedFraction returns the fraction of lower-bounded vectors whose
// exact distance computation was avoided — the paper's "Pruned [%]" axis.
func (s Stats) PrunedFraction() float64 {
	if s.LowerBounds == 0 {
		return 0
	}
	return float64(s.Pruned) / float64(s.LowerBounds)
}

// Counters prices the scan on arch.
func (s Stats) Counters(arch perf.Arch) perf.Counters {
	return perf.Estimate(s.Ops, arch)
}

// Per-vector / per-block operation mixes of each kernel. These constants
// are the analytical counterparts of the kernels' inner loops and are the
// numbers priced by internal/perf; see the package comment of
// internal/perf for why this reproduces the paper's counter studies.
var (
	// naivePerVector: Algorithm 1. 8 single-byte index loads, 8 float
	// table loads, 8 float additions plus index arithmetic, loop control.
	naivePerVector = perf.OpCounts{
		ScalarLoad8: 8, ScalarLoadF: 8, ScalarALU: 12, ScalarBranch: 2,
	}
	// libpqPerVector: one 64-bit load, 8 shift+mask extractions, 8 float
	// loads and additions. More instructions than naive but fewer loads,
	// matching §3.1 ("the increase in the number of instructions offsets
	// the increase in IPC and the decrease in L1 loads").
	libpqPerVector = perf.OpCounts{
		ScalarLoad64: 1, ScalarLoadF: 8, ScalarALU: 24, ScalarBranch: 2,
	}
	// avxPer8Vectors: Figure 4. Per component j: one 64-bit load of the 8
	// indexes (transposed layout), 8 scalar table loads, 8 register-way
	// inserts, one vertical SIMD addition. Then 8 extract+compare steps.
	avxPer8Vectors = perf.OpCounts{
		ScalarLoad64: 8, ScalarLoadF: 64, SIMDInsert: 64, SIMDALU: 8,
		ScalarALU: 16, ScalarBranch: 8,
	}
	// gatherPer8Vectors: Figure 5. Per component j: one SIMD load of 8
	// indexes, widening, one 8-way gather, one SIMD addition; then 8
	// extract+compare steps. The gather's 34 µops and 10-cycle reciprocal
	// throughput (paper Table 2) are priced by internal/perf.
	gatherPer8Vectors = perf.OpCounts{
		SIMDLoad: 8, SIMDALU: 24, Gather256: 8,
		ScalarALU: 16, ScalarBranch: 8,
	}
)

// adc8 computes the ADC distance of Equation 3 for one 8-component code,
// accumulating in the fixed j = 0..7 order shared by all kernels.
func adc8(code []uint8, t quantizer.Tables) float32 {
	d := t.Data[int(code[0])]
	d += t.Data[256+int(code[1])]
	d += t.Data[2*256+int(code[2])]
	d += t.Data[3*256+int(code[3])]
	d += t.Data[4*256+int(code[4])]
	d += t.Data[5*256+int(code[5])]
	d += t.Data[6*256+int(code[6])]
	d += t.Data[7*256+int(code[7])]
	return d
}

func check8x8(t quantizer.Tables) {
	if t.M != M || t.KStar != 256 {
		panic("scan: kernels require PQ 8x8 distance tables")
	}
}

// Naive scans the partition with Algorithm 1 and returns the k nearest
// neighbors.
func Naive(p *Partition, t quantizer.Tables, k int) ([]topk.Result, Stats) {
	check8x8(t)
	heap := topk.New(k)
	for i := 0; i < p.N; i++ {
		heap.Push(p.ID(i), adc8(p.Code(i), t))
	}
	stats := Stats{Scanned: p.N}
	stats.Ops = naivePerVector.Scale(float64(p.N))
	return heap.Results(), stats
}

// Libpq scans the partition with the libpq optimization: the 8 centroid
// indexes of a vector are fetched with a single 64-bit load and extracted
// with shifts. The distance accumulation order is identical to Naive.
func Libpq(p *Partition, t quantizer.Tables, k int) ([]topk.Result, Stats) {
	check8x8(t)
	heap := topk.New(k)
	libpqRange(p.Codes, p.IDs, 0, p.N, t, heap)
	stats := Stats{Scanned: p.N}
	stats.Ops = libpqPerVector.Scale(float64(p.N))
	return heap.Results(), stats
}

// libpqRange scans positions [lo, hi) of row-major codes into heap, the
// shared exact-scan path also used by FastScan's keep phase.
func libpqRange(codes []uint8, ids []int64, lo, hi int, t quantizer.Tables, heap *topk.Heap) {
	for i := lo; i < hi; i++ {
		word := binary.LittleEndian.Uint64(codes[i*M : i*M+M])
		d := t.Data[int(word&0xff)]
		d += t.Data[256+int(word>>8&0xff)]
		d += t.Data[2*256+int(word>>16&0xff)]
		d += t.Data[3*256+int(word>>24&0xff)]
		d += t.Data[4*256+int(word>>32&0xff)]
		d += t.Data[5*256+int(word>>40&0xff)]
		d += t.Data[6*256+int(word>>48&0xff)]
		d += t.Data[7*256+int(word>>56&0xff)]
		id := int64(i)
		if ids != nil {
			id = ids[i]
		}
		heap.Push(id, d)
	}
}

// AVX scans the partition with the vertical-addition structure of
// Figure 4: distances to 8 vectors are accumulated simultaneously in an
// 8-way register image, with each way set individually after a scalar
// table lookup. Results are identical to Naive because each way performs
// the same additions in the same order.
func AVX(p *Partition, t quantizer.Tables, k int) ([]topk.Result, Stats) {
	check8x8(t)
	heap := topk.New(k)
	tr := layout.NewTransposed(p.Codes)
	var acc [8]float32
	full := tr.FullBlocks()
	for b := 0; b < full; b++ {
		for v := range acc {
			acc[v] = 0
		}
		for j := 0; j < M; j++ {
			comps := tr.Component(b, j)
			row := t.Data[j*256:]
			// The 8 scalar lookups and per-way inserts of Figure 4.
			for v := 0; v < 8; v++ {
				acc[v] += row[int(comps[v])]
			}
		}
		for v := 0; v < 8; v++ {
			heap.Push(p.ID(b*8+v), acc[v])
		}
	}
	// Row-major tail, scanned naively.
	tail := p.N - full*8
	for i := full * 8; i < p.N; i++ {
		heap.Push(p.ID(i), adc8(p.Code(i), t))
	}
	stats := Stats{Scanned: p.N}
	stats.Ops = avxPer8Vectors.Scale(float64(full))
	stats.Ops.Add(naivePerVector.Scale(float64(tail)))
	return heap.Results(), stats
}

// Gather scans the partition with SIMD gather semantics (Figure 5): for
// each component, the 8 indexes of a transposed block select 8 table
// entries in one (expensive) gather, then one vertical addition
// accumulates them. Results are identical to Naive.
func Gather(p *Partition, t quantizer.Tables, k int) ([]topk.Result, Stats) {
	check8x8(t)
	heap := topk.New(k)
	tr := layout.NewTransposed(p.Codes)
	var acc [8]float32
	full := tr.FullBlocks()
	for b := 0; b < full; b++ {
		for v := range acc {
			acc[v] = 0
		}
		for j := 0; j < M; j++ {
			comps := tr.Component(b, j)
			row := t.Data[j*256:]
			// One vpgatherdd: 8 table elements fetched by index.
			for v := 0; v < 8; v++ {
				acc[v] += row[int(comps[v])]
			}
		}
		for v := 0; v < 8; v++ {
			heap.Push(p.ID(b*8+v), acc[v])
		}
	}
	tail := p.N - full*8
	for i := full * 8; i < p.N; i++ {
		heap.Push(p.ID(i), adc8(p.Code(i), t))
	}
	stats := Stats{Scanned: p.N}
	stats.Ops = gatherPer8Vectors.Scale(float64(full))
	stats.Ops.Add(naivePerVector.Scale(float64(tail)))
	return heap.Results(), stats
}
