package scan

import (
	"sync"
	"testing"
	"time"

	"pqfastscan/internal/simd/dispatch"
)

func TestCostPriorsRankClasses(t *testing.T) {
	// The perf-seeded priors must reproduce the paper's ordering: asm
	// Fast Scan beats SWAR Fast Scan beats the exact loop beats the
	// model engine. The planner's cold-start defaults depend on it.
	if !(PriorNsPerCode(CostFastAVX2) < PriorNsPerCode(CostFastSWAR)) {
		t.Errorf("prior: fast-avx2 %.3f !< fast-swar %.3f",
			PriorNsPerCode(CostFastAVX2), PriorNsPerCode(CostFastSWAR))
	}
	if !(PriorNsPerCode(CostFastSWAR) < PriorNsPerCode(CostExact)) {
		t.Errorf("prior: fast-swar %.3f !< exact %.3f",
			PriorNsPerCode(CostFastSWAR), PriorNsPerCode(CostExact))
	}
	if !(PriorNsPerCode(CostExact) < PriorNsPerCode(CostModel)) {
		t.Errorf("prior: exact %.3f !< model %.3f",
			PriorNsPerCode(CostExact), PriorNsPerCode(CostModel))
	}
}

func TestObserveScanEWMA(t *testing.T) {
	ResetCostObservations()
	defer ResetCostObservations()

	if ns, n := ObservedNsPerCode(CostExact, false); n != 0 || ns != 0 {
		t.Fatalf("cold class not zero: ns=%v n=%d", ns, n)
	}
	// Cold estimate falls back to the prior.
	if got, want := EstimatedNsPerCode(CostExact, false), PriorNsPerCode(CostExact); got != want {
		t.Fatalf("cold estimate %v, want prior %v", got, want)
	}

	// First observation seeds the average exactly.
	ObserveScan(CostExact, false, 1000, 2*time.Microsecond) // 2 ns/code
	if ns, n := ObservedNsPerCode(CostExact, false); n != 1 || ns != 2 {
		t.Fatalf("after first observation: ns=%v n=%d, want 2, 1", ns, n)
	}
	// Subsequent observations move it by alpha.
	ObserveScan(CostExact, false, 1000, 10*time.Microsecond) // 10 ns/code
	ns, _ := ObservedNsPerCode(CostExact, false)
	want := 2 + ewmaAlpha*(10-2)
	if ns != want {
		t.Fatalf("after second observation: ns=%v, want %v", ns, want)
	}
	if got := EstimatedNsPerCode(CostExact, false); got != ns {
		t.Fatalf("warm estimate %v, want observed %v", got, ns)
	}

	// Paged and resident observations stay separate.
	ObserveScan(CostExact, true, 100, 5*time.Microsecond) // 50 ns/code
	if pns, n := ObservedNsPerCode(CostExact, true); n != 1 || pns != 50 {
		t.Fatalf("paged cell: ns=%v n=%d, want 50, 1", pns, n)
	}
	if rns, _ := ObservedNsPerCode(CostExact, false); rns != ns {
		t.Fatalf("resident cell moved with paged observation: %v != %v", rns, ns)
	}

	// Degenerate inputs are dropped.
	ObserveScan(CostExact, false, 0, time.Second)
	ObserveScan(CostExact, false, 100, 0)
	ObserveScan(numCostClasses, false, 100, time.Second)
	if got, _ := ObservedNsPerCode(CostExact, false); got != ns {
		t.Fatalf("degenerate observation moved the average: %v != %v", got, ns)
	}

	snap := CostSnapshot()
	seen := map[string]bool{}
	for _, o := range snap {
		seen[o.Class] = true
		if o.Samples == 0 {
			t.Errorf("snapshot lists cold class %q", o.Class)
		}
	}
	if !seen["exact"] {
		t.Errorf("snapshot missing observed class exact: %+v", snap)
	}
}

func TestObserveScanConcurrent(t *testing.T) {
	ResetCostObservations()
	defer ResetCostObservations()

	// Hammer one cell from many goroutines with a constant-rate sample;
	// the EWMA of a constant is that constant, whatever the interleaving.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				ObserveScan(CostFastSWAR, false, 100, 300*time.Nanosecond) // 3 ns/code
			}
		}()
	}
	wg.Wait()
	ns, n := ObservedNsPerCode(CostFastSWAR, false)
	if ns != 3 {
		t.Errorf("constant-rate EWMA drifted: %v", ns)
	}
	if n == 0 {
		t.Errorf("no samples recorded")
	}
}

func TestFastClassFor(t *testing.T) {
	if got := FastClassFor(dispatch.SWAR); got != CostFastSWAR {
		t.Errorf("FastClassFor(SWAR) = %v", got)
	}
	if got := FastClassFor(dispatch.AVX2); got != CostFastAVX2 {
		t.Errorf("FastClassFor(AVX2) = %v", got)
	}
	if got := FastClassFor(dispatch.NEON); got != CostFastNEON {
		t.Errorf("FastClassFor(NEON) = %v", got)
	}
	// Auto resolves to the active backend's class, never a zero value.
	auto := FastClassFor(dispatch.Auto)
	if auto != FastClassFor(dispatch.Active()) {
		t.Errorf("FastClassFor(Auto) = %v, active = %v", auto, FastClassFor(dispatch.Active()))
	}
}
