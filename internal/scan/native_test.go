package scan

import (
	"testing"

	"pqfastscan/internal/rng"
	"pqfastscan/internal/simd"
)

// randomSatReg returns a register with lanes in [0, 127], the invariant
// range of the quantized-distance pipeline.
func randomSatReg(r *rng.Source) simd.Reg {
	var reg simd.Reg
	for i := range reg {
		reg[i] = uint8(r.Intn(128))
	}
	return reg
}

// TestSWARAddSat127MatchesPaddsB: on lanes in [0, 127] the SWAR add must
// agree lane-for-lane with the modeled signed saturating addition — the
// bridge equivalence the native accumulator rests on.
func TestSWARAddSat127MatchesPaddsB(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 10000; trial++ {
		a, b := randomSatReg(r), randomSatReg(r)
		want := simd.PaddsB(a, b)
		alo, ahi := a.Words()
		blo, bhi := b.Words()
		got := simd.FromWords(swarAddSat127(alo, blo), swarAddSat127(ahi, bhi))
		if got != want {
			t.Fatalf("trial %d: swar %v != paddsb %v (a=%v b=%v)", trial, got, want, a, b)
		}
	}
}

// TestSWARCompareMatchesPcmpgtB: the addend trick must reproduce the
// modeled signed compare + movemask for every accumulator value and
// every threshold the pruning loop can produce.
func TestSWARCompareMatchesPcmpgtB(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 10000; trial++ {
		acc := randomSatReg(r)
		t8 := int8(r.Intn(256) - 128)
		want := uint32(simd.PmovmskB(simd.PcmpgtB(acc, simd.Broadcast(uint8(t8)))))
		var got uint32
		if t8 < 0 {
			got = 0xffff
		} else {
			lo, hi := acc.Words()
			add := swarGtAddend(t8)
			got = swarMovemask(lo+add) | swarMovemask(hi+add)<<8
		}
		if got != want {
			t.Fatalf("trial %d: t8=%d acc=%v: swar mask %04x != model %04x",
				trial, t8, acc, got, want)
		}
	}
}

// TestSWARMovemaskMatchesPmovmskB on arbitrary byte patterns (the
// movemask itself has no lane-range precondition).
func TestSWARMovemaskMatchesPmovmskB(t *testing.T) {
	r := rng.New(12)
	for trial := 0; trial < 10000; trial++ {
		var reg simd.Reg
		for i := range reg {
			reg[i] = uint8(r.Intn(256))
		}
		lo, hi := reg.Words()
		got := swarMovemask(lo) | swarMovemask(hi)<<8
		if want := uint32(simd.PmovmskB(reg)); got != want {
			t.Fatalf("trial %d: %04x != %04x for %v", trial, got, want, reg)
		}
	}
}

// sameCounters asserts the engines walked the same path: identical
// vector/block accounting (Ops excluded — only the model engine fills
// it).
func sameCounters(t *testing.T, model, native Stats, label string) {
	t.Helper()
	if model.Scanned != native.Scanned || model.KeepScanned != native.KeepScanned ||
		model.LowerBounds != native.LowerBounds || model.Pruned != native.Pruned ||
		model.Candidates != native.Candidates || model.Groups != native.Groups ||
		model.Blocks != native.Blocks {
		t.Fatalf("%s: counters diverge: model %+v native %+v", label, model, native)
	}
	if native.Ops != (Stats{}).Ops {
		t.Fatalf("%s: native engine filled Ops: %+v", label, native.Ops)
	}
}

// TestScanNativeMatchesModel is the cross-engine equivalence invariant:
// over random shapes, keeps, grouping depths, orderings and k, the
// native SWAR kernel and the modeled kernel return bit-identical top-k
// and identical pruning counters.
func TestScanNativeMatchesModel(t *testing.T) {
	r := rng.New(31337)
	sc := NewScratch()
	for trial := 0; trial < 40; trial++ {
		n := r.Intn(5000) + 1
		k := []int{1, 7, 50, 200}[r.Intn(4)]
		p, tables := randomPartition(t, n, r.Uint64())
		fs, err := NewFastScan(p, FastScanOptions{
			Keep:            []float64{0, 0.002, 0.05}[r.Intn(3)],
			GroupComponents: r.Intn(5) - 1,
			OrderGroups:     r.Intn(2) == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		want, wantStats := fs.Scan(tables, k)
		got, gotStats := fs.ScanNative(tables, k, sc)
		sameResults(t, want, got, "model", "native")
		sameCounters(t, wantStats, gotStats, "fastscan")

		// The 256-bit widening returns the same set again; on the native
		// engine both widths share the SWAR kernel.
		want256, _ := fs.Scan256(tables, k)
		sameResults(t, want256, got, "model256", "native")
	}
}

// TestScanNativeBothPipelines runs the cross-engine sweep with the
// pair-LUT gate forced fully open and fully closed, so both native block
// pipelines (byte-lane saturating SWAR and 16-bit-lane pair-LUT) are
// exercised at every shape regardless of the default threshold.
func TestScanNativeBothPipelines(t *testing.T) {
	defer func(old int) { nativeLUTMinVectors = old }(nativeLUTMinVectors)
	for _, gate := range []int{0, 1 << 30} {
		nativeLUTMinVectors = gate
		r := rng.New(uint64(gate) + 17)
		sc := NewScratch()
		for trial := 0; trial < 20; trial++ {
			n := r.Intn(4000) + 1
			k := []int{1, 13, 120}[r.Intn(3)]
			p, tables := randomPartition(t, n, r.Uint64())
			fs, err := NewFastScan(p, FastScanOptions{
				Keep:            []float64{0, 0.01}[r.Intn(2)],
				GroupComponents: r.Intn(5) - 1,
				OrderGroups:     r.Intn(2) == 0,
			})
			if err != nil {
				t.Fatal(err)
			}
			want, wantStats := fs.Scan(tables, k)
			got, gotStats := fs.ScanNative(tables, k, sc)
			sameResults(t, want, got, "model", "native")
			sameCounters(t, wantStats, gotStats, "pipeline gate")
		}
	}
}

// TestScanNativeWithTombstones: dead ids are skipped identically on both
// engines, including when the current best matches die.
func TestScanNativeWithTombstones(t *testing.T) {
	p, tables := randomPartition(t, 4000, 88)
	fs, err := NewFastScan(p, FastScanOptions{Keep: 0.01, GroupComponents: -1, OrderGroups: true})
	if err != nil {
		t.Fatal(err)
	}
	best, _ := fs.Scan(tables, 20)
	for _, res := range best[:10] {
		p.Tombstone(res.ID)
	}
	for i := int64(0); i < 4000; i += 13 {
		p.Tombstone(i)
	}
	want, wantStats := fs.Scan(tables, 20)
	got, gotStats := fs.ScanNative(tables, 20, nil)
	sameResults(t, want, got, "model+dead", "native+dead")
	sameCounters(t, wantStats, gotStats, "tombstones")
	for _, res := range got {
		if p.IsDead(res.ID) {
			t.Fatalf("native returned tombstoned id %d", res.ID)
		}
	}
}

// TestExactNativeMatchesKernels: the tuned exact scan serving the four
// baseline kernel selections returns bit-identical results to each of
// them, with and without explicit ids and tombstones.
func TestExactNativeMatchesKernels(t *testing.T) {
	r := rng.New(55)
	sc := NewScratch()
	for trial := 0; trial < 25; trial++ {
		n := r.Intn(3000) + 1
		k := []int{1, 10, 100}[r.Intn(3)]
		p, tables := randomPartition(t, n, r.Uint64())
		if trial%2 == 1 {
			ids := make([]int64, n)
			for i := range ids {
				ids[i] = int64(i)*3 + 7
			}
			p.IDs = ids
			for i := 0; i < n; i += 11 {
				p.Tombstone(ids[i])
			}
		}
		want, _ := Naive(p, tables, k)
		got, gotStats := ExactNative(p, tables, k, sc)
		sameResults(t, want, got, "naive", "exact-native")
		if gotStats.Scanned != n {
			t.Fatalf("trial %d: Scanned = %d, want %d", trial, gotStats.Scanned, n)
		}
		lp, _ := Libpq(p, tables, k)
		sameResults(t, lp, got, "libpq", "exact-native")
		av, _ := AVX(p, tables, k)
		sameResults(t, av, got, "avx", "exact-native")
		ga, _ := Gather(p, tables, k)
		sameResults(t, ga, got, "gather", "exact-native")
	}
}

// TestScanNativeAfterAppend: the incremental layout maintenance
// (including the NibbleMask updates feeding group ordering) keeps the
// engines in lockstep through online appends.
func TestScanNativeAfterAppend(t *testing.T) {
	r := rng.New(2025)
	p, tables := randomPartition(t, 2000, 61)
	fs, err := NewFastScan(p, FastScanOptions{Keep: 0.01, GroupComponents: 2, OrderGroups: true})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		batch := r.Intn(200) + 1
		codes := make([]uint8, batch*M)
		ids := make([]int64, batch)
		for i := range codes {
			codes[i] = uint8(r.Intn(256))
		}
		for i := range ids {
			ids[i] = int64(p.N + i)
		}
		p.Append(codes, ids)
		fs.Append(codes, ids)

		want, wantStats := fs.Scan(tables, 30)
		got, gotStats := fs.ScanNative(tables, 30, nil)
		sameResults(t, want, got, "model", "native")
		sameCounters(t, wantStats, gotStats, "append round")
	}
}

// TestScratchReuseIsStateless: a Scratch carried across queries of
// different shapes and k never changes any answer.
func TestScratchReuseIsStateless(t *testing.T) {
	r := rng.New(404)
	sc := NewScratch()
	for trial := 0; trial < 15; trial++ {
		n := r.Intn(2000) + 1
		k := []int{1, 40, 300}[r.Intn(3)]
		p, tables := randomPartition(t, n, r.Uint64())
		fs, err := NewFastScan(p, FastScanOptions{Keep: 0.01, GroupComponents: -1, OrderGroups: trial%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		fresh, _ := fs.ScanNative(tables, k, nil)
		reused, _ := fs.ScanNative(tables, k, sc)
		sameResults(t, fresh, reused, "fresh-scratch", "reused-scratch")
	}
}
