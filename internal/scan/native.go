// Native execution engine.
//
// The kernels of fastscan.go and scan.go execute §4's algorithm through
// internal/simd, a bit-exact software model of the SSSE3 register file:
// ideal for the instruction-counting argument priced by internal/perf,
// but every modeled pshufb or paddsb is a 16-iteration Go loop behind a
// function call — orders of magnitude slower than the hardware it
// stands in for. This file is the second engine: the same algorithm
// (small-table lookups, saturating 8-bit accumulation, qsat-vs-threshold
// pruning, keep phase, group ordering) implemented for wall-clock speed,
// on one of the backends selected by internal/simd/dispatch:
//
//   - swar (always available): uint64 SWAR words carrying 8 byte-lanes
//     through the add/compare/movemask pipeline, flat table arrays,
//     hoisted bounds checks, no per-operation function calls — two block
//     pipelines, byte-lane saturating adds below a size gate and
//     per-query pair-LUTs with 16-bit lanes above it;
//   - asm-avx2 / asm-neon: hand-written assembly block kernels running
//     the real pshufb/tbl pipeline over whole groups at a time, with the
//     per-block prune masks and threshold refresh staying in Go so the
//     decision sequence is identical (DESIGN.md §12).
//
// All backends share every decision input (quantizer, thresholds, group
// visit order, exact re-check arithmetic) and their lower-bound bytes
// agree lane-for-lane, so result sets AND statistics are bit-identical
// across backends and engines — the DESIGN.md §6 exactness invariant
// extended across engines (§9) and down to the instruction level (§12).
// The model path remains the metrology reference: only it counts
// Stats.Ops.
package scan

import (
	"encoding/binary"
	"math"
	"math/bits"

	"pqfastscan/internal/layout"
	"pqfastscan/internal/quantizer"
	"pqfastscan/internal/simd/dispatch"
	"pqfastscan/internal/topk"
)

// SWAR constants: eight byte-lanes per uint64 word, lane 0 in the least
// significant byte (x86 memory order, matching simd.Reg.Words).
const (
	swarHighBits = 0x8080808080808080 // bit 7 of every lane
	swarOnes     = 0x0101010101010101 // 1 in every lane
	// swarMovemaskMul gathers the lane-0..7 low bits (after >>7) into
	// the top byte: with one bit per lane the per-byte partial sums of
	// the multiplication stay below 256, so no carry crosses a lane and
	// the top byte is exactly Σ bit_i·2^i (pmovmskb).
	swarMovemaskMul = 0x0102040810204080
)

// swarAddSat127 adds two SWAR words lane-wise, saturating every lane at
// 127. Both operands must hold lanes in [0, 127] — the invariant of the
// quantized-distance pipeline (quantize emits bins 0..127 and saturated
// sums stay in range) — so the plain uint64 addition cannot carry across
// lanes (max 254) and signed saturating addition (paddsb) degenerates to
// min(a+b, 127), which is what the bit-trick computes: lanes whose bit 7
// is set after the add are forced to 0x7f.
func swarAddSat127(a, b uint64) uint64 {
	s := a + b
	over := s & swarHighBits
	return (s | ((over >> 7) * 0x7f)) &^ over
}

// swarGtAddend returns the word to add lane-wise so that bit 7 of a lane
// becomes the acc > t8 test: with acc in [0, 127] and t8 in [0, 127],
// acc + (127 - t8) >= 128 iff acc > t8, and the sum (<= 254) never
// carries across lanes. Negative t8 is handled by the caller (every lane
// is then above threshold).
func swarGtAddend(t8 int8) uint64 {
	return uint64(127-uint8(t8)) * swarOnes
}

// swarMovemask extracts bit 7 of each of the eight lanes into a compact
// 8-bit mask, bit i for lane i (pmovmskb over one word).
func swarMovemask(x uint64) uint32 {
	return uint32((((x & swarHighBits) >> 7) * swarMovemaskMul) >> 56)
}

// 16-bit-lane SWAR constants for the pair-LUT block pipeline: four
// 16-bit lanes per uint64 word.
const (
	swar16HighBits = 0x8000800080008000 // bit 15 of every 16-bit lane
	swar16Ones     = 0x0001000100010001 // 1 in every 16-bit lane
	// swar16MovemaskMul gathers the four lane bits (after >>15, at word
	// positions 0, 16, 32, 48) into bits 48..51: the 16 partial-product
	// positions 16i + (48 - 15j) are pairwise distinct, so no carries,
	// and the i == j terms land exactly at 48 + i.
	swar16MovemaskMul = 0x0001000200040008
)

// swarMovemask16 extracts bit 15 of each of the four 16-bit lanes into a
// 4-bit mask, bit i for lane i.
func swarMovemask16(x uint64) uint32 {
	return uint32((((x&swar16HighBits)>>15)*swar16MovemaskMul)>>48) & 0xf
}

// ulutSize is the span of the ungrouped pair-LUT index (wa>>shift &
// 0x0f0f): two high nibbles, 8 bits apart. Only the 256 indexes of that
// form are ever written or read; the gaps are dead space traded for a
// mask-only index computation.
const ulutSize = 0x0f0f + 1

// nativeLUTMinVectors gates the SWAR backend's pair-LUT block pipeline:
// building the per-query pair tables costs ~10k stores, which only
// amortizes over enough blocks. Below the gate the byte-lane saturating
// SWAR pipeline runs instead; both pipelines produce identical lower
// bounds and masks. The assembly backends need no gate — their lookup
// is one instruction either way, so they run the table kernel at every
// size. A variable so tests can force either path.
var nativeLUTMinVectors = 4096

// queryTables is the cached per-(query, partition-epoch) table state of
// a native Fast Scan: the §4.4 distance quantizer, the quantized first-c
// distance-table rows (every group's small tables S_0..S_{C-1} are
// 16-entry windows into them), the query-lifetime minimum tables
// S_C..S_7, and the backend-specific derived tables — the SWAR pair
// LUTs and the assembly backends' contiguous 8×16-byte table block.
//
// It is built once per key — the (distance-table contents, quantization
// bounds) pair, see qtKey — and reused for every probed group of every
// scan with that key. Because identity is by table *contents*, the
// cache survives the serving path's per-request table recomputation:
// repeated identical queries through one pooled Scratch, bench loops
// and threshold sweeps all skip the quantization pass. The model path
// deliberately rebuilds per group instead; that is the instruction
// stream it meters.
type queryTables struct {
	c     int
	dq    distQuantizer
	qrows [layout.MaxGroupComponents][256]uint8
	st    smallTables

	// SWAR pair-LUT pipeline state (built on demand above the gate).
	lutBuilt bool
	glut     []uint32 // grouped-component pair LUTs, c x 16 keys x 256
	ulut     []uint32 // ungrouped-component pair LUTs, (M-c) x ulutSize

	// Assembly-backend state: the 8×16-byte table block handed to
	// dispatch.Accumulate. Minimum tables are written once per key;
	// grouped windows are refreshed per group (16c bytes).
	asmBuilt bool
	tabBlock []uint8 // 128 bytes, layout.Alignment-aligned
}

// qtKey identifies one (distance tables, bounds) combination. Nothing
// in the cached state reads the partition layout — the quantized rows,
// minimum tables and derived LUTs are pure functions of the tables, the
// grouping depth and the quantizer bounds — so the key carries no epoch
// identity and a retired partition epoch is never pinned by a pooled
// Scratch.
//
// Identity is two-tier. The pointer is the free fast path: callers that
// reuse one Tables value (bench loops, threshold sweeps, multi-scan
// tools) hit without hashing, and holding it pins the (8 KB) array so
// its address cannot be recycled under the cache. The content
// fingerprint is what makes the cache effective on the serving path,
// where Index.Tables recomputes an identical array per request: equal
// bytes hash equal wherever they live. A 64-bit FNV-1a collision
// between two genuinely different tables that also share bounds is the
// theoretical failure mode (~2^-64 per pair, non-adversarial input);
// Tables are immutable once computed, which both tiers rely on.
type qtKey struct {
	data       *float32
	hash       uint64
	qmin, qmax float32
}

// testQueryTablesRebuilt, when non-nil, is called on every queryTables
// cache miss — a test observation point for the reuse contract (set
// only by single-threaded tests).
var testQueryTablesRebuilt func()

// fingerprint returns the FNV-1a content hash of the distance tables.
func fingerprint(t quantizer.Tables) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, v := range t.Data {
		h ^= uint64(math.Float32bits(v))
		h *= 0x100000001b3
	}
	return h
}

// Scratch holds the reusable per-searcher buffers of the native engine:
// the top-k heap, the sorted-results buffer, the group-ordering
// order/estimate arrays, the cached query tables, and the assembly
// backends' lower-bound buffer. Reusing one Scratch across queries
// keeps the steady-state scan loop at zero allocations; a Scratch must
// not be shared between concurrent scans. Passing nil to the native
// entry points allocates a transient one.
//
// Result slices returned by native scans alias sc.results and are
// overwritten by the next scan through the same Scratch; callers that
// retain results across queries must copy them out.
type Scratch struct {
	heap    *topk.Heap
	results []topk.Result
	order   []int
	est     []float64

	qtKey qtKey
	qt    queryTables
	acc   []uint8 // asm backends' lower-bound bytes, 64-byte aligned

	// QuantizationOnly's cached full quantized tables (M x 256).
	qoKey  qtKey
	qoTabs []uint8

	// StaticPrune's cached keep-phase bound. Unlike qtKey this one does
	// identify the layout epoch (the bound is computed from the keep
	// region's codes); StaticPrune is a diagnostic, never fed from the
	// serving path's pooled scratches, so the pinned epoch is one a
	// sweep is actively using.
	spKey  staticPruneKey
	spQmax float32
}

// staticPruneKey identifies the (tables, layout epoch) pair whose
// keep-phase bound Scratch.spQmax caches.
type staticPruneKey struct {
	data *float32
	g    *layout.Grouped
}

// NewScratch returns an empty Scratch; buffers grow on first use and are
// reused afterwards.
func NewScratch() *Scratch { return &Scratch{heap: topk.New(1)} }

// growSlice returns s resized to n elements, reusing its backing array
// when possible. Contents are unspecified.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// growAligned returns s resized to n bytes on a layout.Alignment-aligned
// base, reusing the backing array when possible. Contents are
// unspecified.
func growAligned(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return layout.AlignedBytes(n, 0)
	}
	return s[:n]
}

// queryTablesFor returns the cached query-table state for scanning fs
// with tables t under bounds (qmin, qmax), rebuilding only on a key
// change (same-pointer fast path first, then the content fingerprint).
func (sc *Scratch) queryTablesFor(fs *FastScan, t quantizer.Tables, qmin, qmax float32) *queryTables {
	qt := &sc.qt
	sameBounds := sc.qtKey.qmin == qmin && sc.qtKey.qmax == qmax && qt.c == fs.c
	if sameBounds && sc.qtKey.data == &t.Data[0] {
		return qt
	}
	h := fingerprint(t)
	if sameBounds && sc.qtKey.hash == h {
		// Recomputed-but-identical tables (the serving path): adopt the
		// new array as the fast-path identity and keep everything built.
		sc.qtKey.data = &t.Data[0]
		return qt
	}
	if testQueryTablesRebuilt != nil {
		testQueryTablesRebuilt()
	}
	sc.qtKey = qtKey{data: &t.Data[0], hash: h, qmin: qmin, qmax: qmax}
	qt.c = fs.c
	qt.dq = newDistQuantizer(qmin, qmax)
	// Quantize the first c distance-table rows once per key; every
	// group's small tables S_0..S_{C-1} are 16-entry windows into these
	// rows (entry values identical to the model's per-group
	// buildGroupTable calls, which quantize the same floats with the
	// same quantizer).
	for j := 0; j < fs.c; j++ {
		row := t.Row(j)
		for i, v := range row {
			qt.qrows[j][i] = qt.dq.quantize(v)
		}
	}
	qt.st = buildMinTables(t, fs.c, qt.dq)
	qt.lutBuilt = false
	qt.asmBuilt = false
	return qt
}

// buildLUTs materializes the SWAR pair LUTs: one load then resolves TWO
// lanes of a block at once. Grouped components index by (group key,
// packed byte) — a packed byte is exactly two lanes' low nibbles;
// ungrouped components index by the two-high-nibbles pattern
// (w >> s) & 0x0f0f of adjacent code bytes. Each entry packs the two
// looked-up quantized values at bits 0 and 16, feeding the 16-bit-lane
// accumulators of the pair-LUT pipeline.
func (qt *queryTables) buildLUTs() {
	if qt.lutBuilt {
		return
	}
	c := qt.c
	qt.glut = growSlice(qt.glut, c*16*256)
	for j := 0; j < c; j++ {
		q := &qt.qrows[j]
		dst := qt.glut[j*16*256 : (j+1)*16*256 : (j+1)*16*256]
		for key := 0; key < 16; key++ {
			tab := q[key*16 : key*16+16 : key*16+16]
			base := key << 8
			for hiN := 0; hiN < 16; hiN++ {
				vhi := uint32(tab[hiN]) << 16
				for loN := 0; loN < 16; loN++ {
					dst[base|hiN<<4|loN] = uint32(tab[loN]) | vhi
				}
			}
		}
	}
	qt.ulut = growSlice(qt.ulut, (M-c)*ulutSize)
	for j := c; j < M; j++ {
		mt := &qt.st.minTables[j]
		dst := qt.ulut[(j-c)*ulutSize : (j-c+1)*ulutSize : (j-c+1)*ulutSize]
		for hiN := 0; hiN < 16; hiN++ {
			vhi := uint32(mt[hiN]) << 16
			for loN := 0; loN < 16; loN++ {
				dst[hiN<<8|loN] = uint32(mt[loN]) | vhi
			}
		}
	}
	qt.lutBuilt = true
}

// asmTables returns the 8×16-byte contiguous table block for the
// assembly kernels, with the query-lifetime minimum tables S_C..S_7
// written once per key. The grouped windows S_0..S_{C-1} are refreshed
// per group by the caller.
func (qt *queryTables) asmTables() *[128]uint8 {
	if qt.tabBlock == nil {
		qt.tabBlock = layout.AlignedBytes(128, 0)
	}
	if !qt.asmBuilt {
		for j := qt.c; j < M; j++ {
			copy(qt.tabBlock[j*16:j*16+16], qt.st.minTables[j][:])
		}
		qt.asmBuilt = true
	}
	return (*[128]uint8)(qt.tabBlock)
}

// quantizedFullTables returns the 8×256 quantized distance tables of
// the §5.5 quantization-only ablation, cached per (tables, bounds) key.
// Identity is pointer-only (the hash tier stays zero): the ablation's
// callers reuse one Tables value across calls, and it never runs on the
// serving path where tables are recomputed.
func (sc *Scratch) quantizedFullTables(t quantizer.Tables, dq distQuantizer, qmin, qmax float32) []uint8 {
	key := qtKey{data: &t.Data[0], qmin: qmin, qmax: qmax}
	if sc.qoKey == key && len(sc.qoTabs) == M*256 {
		return sc.qoTabs
	}
	sc.qoTabs = growSlice(sc.qoTabs, M*256)
	for j := 0; j < M; j++ {
		row := t.Row(j)
		for i, v := range row {
			sc.qoTabs[j*256+i] = dq.quantize(v)
		}
	}
	sc.qoKey = key
	return sc.qoTabs
}

// keepBounds runs the §4.4 keep phase (plain PQ Scan over the keep
// region, into heap) and returns the quantization bounds it implies:
// qmin is the least possible distance, qmax the temporary topk-th
// neighbor's distance (or the worst retained one while the heap is not
// full, or the table maximum when the keep region is empty). The single
// source of the bounds for the model path, every native backend, and
// the quantization-only ablation — which is what keeps their pruning
// counters comparable.
func keepBounds(p *Partition, keepN int, t quantizer.Tables, heap *topk.Heap) (qmin, qmax float32) {
	libpqRange(p, 0, keepN, t, heap)
	qmin = t.Min()
	qmax = t.MaxSum()
	if thr, ok := heap.Threshold(); ok {
		qmax = thr
	} else if worst, ok := heap.Worst(); ok {
		qmax = worst
	}
	return qmin, qmax
}

// ScanNative runs PQ Fast Scan for the query on the native engine's
// startup-selected backend (dispatch.Active), returning the k nearest
// neighbors — bit-identical to Scan, Scan256 and the PQ Scan kernels —
// and the dynamic vector/block statistics of the run (Stats.Ops stays
// zero; only the model engine counts instructions).
func (fs *FastScan) ScanNative(t quantizer.Tables, k int, sc *Scratch) ([]topk.Result, Stats) {
	return fs.ScanNativeBackend(t, k, sc, dispatch.Auto)
}

// ScanNativeBackend is ScanNative with an explicit block-kernel backend
// (dispatch.Auto defers to the startup selection). All backends return
// bit-identical results and statistics; they differ only in wall-clock
// speed. The caller is responsible for only requesting available
// backends (dispatch.Backend.Available); the index layer validates
// requests before they reach this point.
func (fs *FastScan) ScanNativeBackend(t quantizer.Tables, k int, sc *Scratch, be dispatch.Backend) ([]topk.Result, Stats) {
	check8x8(t)
	if sc == nil {
		sc = NewScratch()
	}
	be = dispatch.Resolve(be)
	heap := sc.heap
	heap.Reset(k)
	stats := Stats{Scanned: fs.part.N, KeepScanned: fs.keepN}

	// Phase 1 (§4.4): keep region, same arithmetic as the model path.
	qmin, qmax := keepBounds(fs.part, fs.keepN, t, heap)

	// Phase 2: cached per-(query, epoch) quantized tables.
	qt := sc.queryTablesFor(fs, t, qmin, qmax)

	thrVal, haveThr := heap.Threshold()
	t8 := qt.dq.pruneThreshold(thrVal, haveThr)

	groupOrder := fs.groupVisitOrder(t, sc)

	if be.Asm() {
		fs.scanBlocksAsm(sc, qt, be, groupOrder, &t8, heap, t, &stats)
	} else {
		fs.scanBlocksSWAR(sc, qt, groupOrder, &t8, heap, t, &stats)
	}
	sc.results = heap.AppendResults(sc.results[:0])
	return sc.results, stats
}

// processLive walks the surviving lanes of one block in ascending lane
// order (the model's lane loop visits them the same way, so the heap
// evolves identically): tombstone check, exact re-check (right-hand
// path of Figure 6), then threshold refresh — shared by every backend
// so the decision sequence cannot drift.
func (fs *FastScan) processLive(live uint32, base int, qt *queryTables, t quantizer.Tables, t8 *int8, heap *topk.Heap, hasDead bool, stats *Stats) {
	g := fs.grouped
	for ; live != 0; live &= live - 1 {
		pos := base + bits.TrailingZeros32(live)
		if hasDead && fs.part.IsDead(g.IDs[pos]) {
			stats.Pruned++
			continue
		}
		stats.Candidates++
		d := adc8(g.Codes[pos*M:pos*M+M], t)
		if heap.Push(g.IDs[pos], d) {
			if thr, ok := heap.Threshold(); ok {
				*t8 = qt.dq.pruneThreshold(thr, true)
			}
		}
	}
}

// scanBlocksAsm drives the dispatched assembly kernel: per group it
// refreshes the group's small-table windows in the 8×16-byte table
// block, hands the group's packed blocks to dispatch.Accumulate in ONE
// call (the kernel streams the whole group through vector registers),
// then derives each block's prune mask from the returned lower-bound
// bytes with the threshold current AT THAT BLOCK — the candidate
// processing and threshold refresh stay in Go between blocks, so the
// decision sequence (and hence results, pruning counters and heap
// evolution) is identical to the SWAR pipelines. The lower bound of a
// lane never depends on the threshold, which is what makes the
// group-at-a-time kernel call safe.
func (fs *FastScan) scanBlocksAsm(sc *Scratch, qt *queryTables, be dispatch.Backend, groupOrder []int, t8 *int8, heap *topk.Heap, t quantizer.Tables, stats *Stats) {
	g := fs.grouped
	c := fs.c
	bb := g.BlockSize()
	blocks := g.Blocks
	hasDead := fs.part.HasDead()
	tb := qt.asmTables()

	for _, gi := range groupOrder {
		grp := &g.Groups[gi]
		stats.Groups++
		for j := 0; j < c; j++ {
			copy(tb[j*16:j*16+16], qt.qrows[j][int(grp.Key[j])*16:int(grp.Key[j])*16+16])
		}
		nb := grp.BlockCount
		sc.acc = growAligned(sc.acc, nb*16)
		base := grp.BlockStart * bb
		dispatch.Accumulate(be, blocks[base:base+nb*bb], bb, c, nb, tb, sc.acc)

		for b := 0; b < nb; b++ {
			stats.Blocks++
			var prunedMask uint32
			if *t8 < 0 {
				prunedMask = 0xffff
			} else {
				// acc lanes and the addend are both <= 127: no carry, and
				// bit 7 of a lane is set iff acc > t8 (for t8 == 127 the
				// addend is 0 and no lane can reach bit 7 — no pruning).
				add := swarGtAddend(*t8)
				lo := leUint64(sc.acc[b*16 : b*16+8])
				hi := leUint64(sc.acc[b*16+8 : b*16+16])
				prunedMask = swarMovemask(lo+add) | swarMovemask(hi+add)<<8
			}

			vbase := grp.Start + b*layout.BlockVectors
			valid := grp.Count - b*layout.BlockVectors
			if valid > layout.BlockVectors {
				valid = layout.BlockVectors
			}
			stats.LowerBounds += valid
			live := ^prunedMask & (1<<valid - 1)
			if live == 0 {
				stats.Pruned += valid
				continue
			}
			stats.Pruned += valid - bits.OnesCount32(live)
			fs.processLive(live, vbase, qt, t, t8, heap, hasDead, stats)
		}
	}
}

// scanBlocksSWAR is the portable backend: the uint64 SWAR block
// pipelines. The inner loop lower-bounds one 16-vector block per
// iteration in two SWAR words — per component, 16 small-table lookups
// assembled directly into the words, then a saturating lane-wise add;
// one compare-against-threshold add and two movemasks close the block.
// On a 64-bit machine this is the closest pure-Go analogue of the
// paper's pshufb/paddsb/pcmpgtb/pmovmskb pipeline. Above the size gate
// the pair-LUT pipeline replaces per-lane lookups with per-lane-PAIR
// LUT loads in 16-bit lanes.
func (fs *FastScan) scanBlocksSWAR(sc *Scratch, qt *queryTables, groupOrder []int, t8p *int8, heap *topk.Heap, t quantizer.Tables, stats *Stats) {
	g := fs.grouped
	c := fs.c
	bb := g.BlockSize()
	blocks := g.Blocks
	hasDead := fs.part.HasDead()

	useLUT := g.N >= nativeLUTMinVectors
	if useLUT {
		qt.buildLUTs()
	}
	var ungroupLUTs [M]*[ulutSize]uint32
	if useLUT {
		for j := c; j < M; j++ {
			ungroupLUTs[j] = (*[ulutSize]uint32)(qt.ulut[(j-c)*ulutSize : (j-c+1)*ulutSize])
		}
	}

	// simd.Reg is a flat [16]uint8, so the model's min-table builder
	// feeds the native lookup loop without conversion.
	var groupTables [layout.MaxGroupComponents]*[16]uint8
	var groupLUTs [layout.MaxGroupComponents]*[256]uint32
	minTables := &qt.st.minTables

	for _, gi := range groupOrder {
		grp := &g.Groups[gi]
		stats.Groups++
		if useLUT {
			for j := 0; j < c; j++ {
				off := j*16*256 + int(grp.Key[j])<<8
				groupLUTs[j] = (*[256]uint32)(qt.glut[off : off+256])
			}
		} else {
			for j := 0; j < c; j++ {
				groupTables[j] = (*[16]uint8)(qt.qrows[j][int(grp.Key[j])*16 : int(grp.Key[j])*16+16])
			}
		}

		blockBase := grp.BlockStart * bb
		for b := 0; b < grp.BlockCount; b++ {
			stats.Blocks++
			blk := blocks[blockBase+b*bb : blockBase+(b+1)*bb : blockBase+(b+1)*bb]
			t8 := *t8p

			var prunedMask uint32
			if useLUT {
				// Pair-LUT pipeline: four 16-bit lanes per word (a0:
				// lanes 0-3 ... a3: lanes 12-15), one LUT load per lane
				// PAIR. Accumulation is plain addition — all addends are
				// in [0, 127], so lane sums stay below 1016 and never
				// carry; min(sum, 127) > t8 is then equivalent to
				// sum > t8 for every reachable threshold (t8 <= 126),
				// the t8 == 127 no-pruning case being handled explicitly
				// — decisions identical to the saturating model.
				var a0, a1, a2, a3 uint64
				first := true
				for j := 0; j < c; j++ {
					lk := groupLUTs[j]
					wp := leUint64(blk[j*8 : j*8+8])
					w0 := uint64(lk[wp&0xff]) | uint64(lk[wp>>8&0xff])<<32
					w1 := uint64(lk[wp>>16&0xff]) | uint64(lk[wp>>24&0xff])<<32
					w2 := uint64(lk[wp>>32&0xff]) | uint64(lk[wp>>40&0xff])<<32
					w3 := uint64(lk[wp>>48&0xff]) | uint64(lk[wp>>56])<<32
					if first {
						a0, a1, a2, a3 = w0, w1, w2, w3
						first = false
					} else {
						a0 += w0
						a1 += w1
						a2 += w2
						a3 += w3
					}
				}
				off := c * 8
				for j := c; j < M; j++ {
					ul := ungroupLUTs[j]
					wa := leUint64(blk[off : off+8])
					wb := leUint64(blk[off+8 : off+16])
					off += 16
					w0 := uint64(ul[wa>>4&0x0f0f]) | uint64(ul[wa>>20&0x0f0f])<<32
					w1 := uint64(ul[wa>>36&0x0f0f]) | uint64(ul[wa>>52&0x0f0f])<<32
					w2 := uint64(ul[wb>>4&0x0f0f]) | uint64(ul[wb>>20&0x0f0f])<<32
					w3 := uint64(ul[wb>>36&0x0f0f]) | uint64(ul[wb>>52&0x0f0f])<<32
					if first {
						a0, a1, a2, a3 = w0, w1, w2, w3
						first = false
					} else {
						a0 += w0
						a1 += w1
						a2 += w2
						a3 += w3
					}
				}
				switch {
				case t8 < 0:
					prunedMask = 0xffff
				case t8 == 127:
					prunedMask = 0
				default:
					// Lane sums <= 1016, addend <= 0x7fff: no carry, and
					// bit 15 of a lane is set iff sum > t8.
					add := (0x7fff - uint64(uint8(t8))) * swar16Ones
					prunedMask = swarMovemask16(a0+add) | swarMovemask16(a1+add)<<4 |
						swarMovemask16(a2+add)<<8 | swarMovemask16(a3+add)<<12
				}
			} else {
				// Byte-lane saturating SWAR pipeline (§4.5): lanes 0-7
				// in lo, 8-15 in hi, one lookup per lane, saturating
				// lane-wise adds — the direct Go analogue of the
				// pshufb/paddsb/pcmpgtb/pmovmskb sequence.
				var lo, hi uint64
				first := true
				for j := 0; j < c; j++ {
					tab := groupTables[j]
					// Packed nibbles: bits 4i..4i+3 of the word are
					// lane i's low nibble.
					wp := leUint64(blk[j*8 : j*8+8])
					w0 := uint64(tab[wp&15]) | uint64(tab[wp>>4&15])<<8 |
						uint64(tab[wp>>8&15])<<16 | uint64(tab[wp>>12&15])<<24 |
						uint64(tab[wp>>16&15])<<32 | uint64(tab[wp>>20&15])<<40 |
						uint64(tab[wp>>24&15])<<48 | uint64(tab[wp>>28&15])<<56
					w1 := uint64(tab[wp>>32&15]) | uint64(tab[wp>>36&15])<<8 |
						uint64(tab[wp>>40&15])<<16 | uint64(tab[wp>>44&15])<<24 |
						uint64(tab[wp>>48&15])<<32 | uint64(tab[wp>>52&15])<<40 |
						uint64(tab[wp>>56&15])<<48 | uint64(tab[wp>>60&15])<<56
					if first {
						lo, hi = w0, w1
						first = false
					} else {
						lo = swarAddSat127(lo, w0)
						hi = swarAddSat127(hi, w1)
					}
				}
				off := c * 8
				for j := c; j < M; j++ {
					mt := &minTables[j]
					// Full bytes: lanes 0-7 and 8-15 in two words; the
					// minimum tables index on each byte's high nibble.
					wa := leUint64(blk[off : off+8])
					wb := leUint64(blk[off+8 : off+16])
					off += 16
					w0 := uint64(mt[wa>>4&15]) | uint64(mt[wa>>12&15])<<8 |
						uint64(mt[wa>>20&15])<<16 | uint64(mt[wa>>28&15])<<24 |
						uint64(mt[wa>>36&15])<<32 | uint64(mt[wa>>44&15])<<40 |
						uint64(mt[wa>>52&15])<<48 | uint64(mt[wa>>60&15])<<56
					w1 := uint64(mt[wb>>4&15]) | uint64(mt[wb>>12&15])<<8 |
						uint64(mt[wb>>20&15])<<16 | uint64(mt[wb>>28&15])<<24 |
						uint64(mt[wb>>36&15])<<32 | uint64(mt[wb>>44&15])<<40 |
						uint64(mt[wb>>52&15])<<48 | uint64(mt[wb>>60&15])<<56
					if first {
						lo, hi = w0, w1
						first = false
					} else {
						lo = swarAddSat127(lo, w0)
						hi = swarAddSat127(hi, w1)
					}
				}

				// Lanes with acc > t8 are pruned (Figure 6).
				if t8 < 0 {
					prunedMask = 0xffff
				} else {
					add := swarGtAddend(t8)
					prunedMask = swarMovemask(lo+add) | swarMovemask(hi+add)<<8
				}
			}

			base := grp.Start + b*layout.BlockVectors
			valid := grp.Count - b*layout.BlockVectors
			if valid > layout.BlockVectors {
				valid = layout.BlockVectors
			}
			stats.LowerBounds += valid
			live := ^prunedMask & (1<<valid - 1)
			if live == 0 {
				stats.Pruned += valid
				continue
			}
			stats.Pruned += valid - bits.OnesCount32(live)
			fs.processLive(live, base, qt, t, t8p, heap, hasDead, stats)
		}
	}
}

// leUint64 loads 8 little-endian bytes as one word; the gc compiler
// recognizes the stdlib call and emits a single MOVQ.
func leUint64(b []byte) uint64 {
	return binary.LittleEndian.Uint64(b)
}

// ExactNative is the native engine's exact PQ Scan: one tuned
// implementation serving the naive, libpq, avx and gather kernel
// selections, which differ only in modeled cost, not results. The loop
// accumulates the same float32 table entries in the same j = 0..7 order
// as every other kernel (bit-identical results) with hoisted table rows,
// bounds-check-free row indexing (a uint8 index into a 256-entry row)
// and a local threshold that skips the heap call for vectors that cannot
// be retained.
func ExactNative(p *Partition, t quantizer.Tables, k int, sc *Scratch) ([]topk.Result, Stats) {
	check8x8(t)
	if sc == nil {
		sc = NewScratch()
	}
	heap := sc.heap
	heap.Reset(k)
	stats := Stats{Scanned: p.N}

	td := t.Data
	t0 := td[0*256 : 1*256 : 1*256]
	t1 := td[1*256 : 2*256 : 2*256]
	t2 := td[2*256 : 3*256 : 3*256]
	t3 := td[3*256 : 4*256 : 4*256]
	t4 := td[4*256 : 5*256 : 5*256]
	t5 := td[5*256 : 6*256 : 6*256]
	t6 := td[6*256 : 7*256 : 7*256]
	t7 := td[7*256 : 8*256 : 8*256]

	codes, ids := p.Codes, p.IDs
	hasDead := p.HasDead()
	var thr float32
	full := false
	for i := 0; i < p.N; i++ {
		id := int64(i)
		if ids != nil {
			id = ids[i]
		}
		if hasDead && p.IsDead(id) {
			continue
		}
		cd := codes[i*M : i*M+M : i*M+M]
		d := t0[cd[0]] + t1[cd[1]] + t2[cd[2]] + t3[cd[3]] +
			t4[cd[4]] + t5[cd[5]] + t6[cd[6]] + t7[cd[7]]
		// d > thr cannot displace a retained neighbor (ties go through
		// Push for the deterministic id-order rule).
		if full && d > thr {
			continue
		}
		if heap.Push(id, d) {
			if v, ok := heap.Threshold(); ok {
				thr, full = v, true
			}
		}
	}
	sc.results = heap.AppendResults(sc.results[:0])
	return sc.results, stats
}
