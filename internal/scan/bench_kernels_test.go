package scan

import (
	"fmt"
	"sync"
	"testing"

	"pqfastscan/internal/quantizer"
	"pqfastscan/internal/rng"
	"pqfastscan/internal/topk"
)

// benchEnv is one benchmark fixture: a partition of n random codes and
// the portion-homogeneous distance tables of the paper's operating
// regime (the §4.3 optimized assignment makes nearby centroids share a
// portion, so one portion per component is close to the query and Fast
// Scan prunes heavily — the regime all §5 figures measure). It mirrors
// wallClockFixture in internal/bench/wallclock.go — keep the two
// recipes in sync so pqbench -json measures the same regime.
type benchEnv struct {
	p      *Partition
	tables quantizer.Tables
	fast   *FastScan
}

var (
	benchEnvs   = map[int]*benchEnv{}
	benchEnvsMu sync.Mutex
)

func getBenchEnv(b *testing.B, n int) *benchEnv {
	b.Helper()
	benchEnvsMu.Lock()
	defer benchEnvsMu.Unlock()
	if e, ok := benchEnvs[n]; ok {
		return e
	}
	r := rng.New(uint64(n) + 1)
	codes := make([]uint8, n*M)
	for i := range codes {
		codes[i] = uint8(r.Intn(256))
	}
	tables := quantizer.Tables{M: M, KStar: 256, Data: make([]float32, M*256)}
	for j := 0; j < M; j++ {
		row := tables.Data[j*256 : (j+1)*256]
		near := r.Intn(16)
		for h := 0; h < 16; h++ {
			level := 1000 + r.Float32()*5000
			if h == near {
				level = r.Float32() * 20
			}
			for i := 0; i < 16; i++ {
				row[h*16+i] = level + r.Float32()*50
			}
		}
	}
	e := &benchEnv{p: NewPartition(codes, nil), tables: tables}
	fs, err := NewFastScan(e.p, FastScanOptions{Keep: DefaultKeep, GroupComponents: -1, OrderGroups: true})
	if err != nil {
		b.Fatal(err)
	}
	e.fast = fs
	benchEnvs[n] = e
	return e
}

const benchK = 100

// benchSizes spans the partition sizes the kernels are compared at; the
// largest is the 100k partition of the BENCH_*.json trajectory.
var benchSizes = []int{1000, 10000, 100000}

// BenchmarkKernels covers every kernel on both engines at several
// partition sizes: the model engine runs the instruction-counted
// reference implementations, the native engine the SWAR/tuned paths.
func BenchmarkKernels(b *testing.B) {
	type variant struct {
		kernel string
		engine string
		run    func(e *benchEnv, sc *Scratch) []topk.Result
	}
	variants := []variant{
		{"naive", "model", func(e *benchEnv, _ *Scratch) []topk.Result {
			r, _ := Naive(e.p, e.tables, benchK)
			return r
		}},
		{"libpq", "model", func(e *benchEnv, _ *Scratch) []topk.Result {
			r, _ := Libpq(e.p, e.tables, benchK)
			return r
		}},
		{"avx", "model", func(e *benchEnv, _ *Scratch) []topk.Result {
			r, _ := AVX(e.p, e.tables, benchK)
			return r
		}},
		{"gather", "model", func(e *benchEnv, _ *Scratch) []topk.Result {
			r, _ := Gather(e.p, e.tables, benchK)
			return r
		}},
		{"fastpq", "model", func(e *benchEnv, _ *Scratch) []topk.Result {
			r, _ := e.fast.Scan(e.tables, benchK)
			return r
		}},
		{"fastpq256", "model", func(e *benchEnv, _ *Scratch) []topk.Result {
			r, _ := e.fast.Scan256(e.tables, benchK)
			return r
		}},
		{"quantonly", "model", func(e *benchEnv, _ *Scratch) []topk.Result {
			r, _ := QuantizationOnly(e.p, e.tables, benchK, DefaultKeep)
			return r
		}},
		// The native engine serves the four exact-scan selections with
		// one tuned loop and both Fast Scan widths with the SWAR kernel.
		{"naive", "native", func(e *benchEnv, sc *Scratch) []topk.Result {
			r, _ := ExactNative(e.p, e.tables, benchK, sc)
			return r
		}},
		{"fastpq", "native", func(e *benchEnv, sc *Scratch) []topk.Result {
			r, _ := e.fast.ScanNative(e.tables, benchK, sc)
			return r
		}},
	}
	for _, n := range benchSizes {
		e := getBenchEnv(b, n)
		for _, v := range variants {
			b.Run(fmt.Sprintf("n=%d/kernel=%s/engine=%s", n, v.kernel, v.engine), func(b *testing.B) {
				sc := NewScratch()
				b.ReportAllocs()
				b.SetBytes(int64(n * M))
				for i := 0; i < b.N; i++ {
					v.run(e, sc)
				}
			})
		}
	}
}

// BenchmarkFastScan is the headline engine comparison of the acceptance
// trajectory: PQ Fast Scan model vs native on 10k and 100k partitions.
// The native run must be allocation-free in the steady state (the
// Scratch is reused) and an order of magnitude faster on the wall clock.
func BenchmarkFastScan(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		e := getBenchEnv(b, n)
		b.Run(fmt.Sprintf("n=%d/engine=model", n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(n * M))
			for i := 0; i < b.N; i++ {
				e.fast.Scan(e.tables, benchK)
			}
		})
		b.Run(fmt.Sprintf("n=%d/engine=native", n), func(b *testing.B) {
			sc := NewScratch()
			e.fast.ScanNative(e.tables, benchK, sc) // warm the scratch buffers
			b.ReportAllocs()
			b.SetBytes(int64(n * M))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.fast.ScanNative(e.tables, benchK, sc)
			}
		})
	}
}

// BenchmarkGroupVisitOrder isolates the OrderGroups estimator fed by the
// precomputed per-group nibble masks.
func BenchmarkGroupVisitOrder(b *testing.B) {
	e := getBenchEnv(b, 100000)
	fs := e.fast
	sc := NewScratch()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fs.groupVisitOrder(e.tables, sc)
	}
}
