package scan

import (
	"pqfastscan/internal/layout"
	"pqfastscan/internal/perf"
	"pqfastscan/internal/quantizer"
	"pqfastscan/internal/simd"
	"pqfastscan/internal/topk"
)

// Scan256 is the AVX2 widening of PQ Fast Scan anticipated by the
// paper's §6: each small table is duplicated into both 128-bit lanes of a
// 256-bit register (simd.Dup128), so every vpshufb performs 32 lookups
// and a pair of 16-vector blocks is lower-bounded per inner-loop
// iteration. Results are bit-identical to Scan and to the PQ Scan
// kernels; only the operation mix (and therefore the modeled cost)
// changes — roughly half the front-end work per vector.
func (fs *FastScan) Scan256(t quantizer.Tables, k int) ([]topk.Result, Stats) {
	check8x8(t)
	heap := topk.New(k)
	stats := Stats{Scanned: fs.part.N, KeepScanned: fs.keepN}

	libpqRange(fs.part, 0, fs.keepN, t, heap)
	stats.Ops.Add(libpqPerVector.Scale(float64(fs.keepN)))

	qmin := t.Min()
	qmax := t.MaxSum()
	if thr, ok := heap.Threshold(); ok {
		qmax = thr
	} else if worst, ok := heap.Worst(); ok {
		qmax = worst
	}
	dq := newDistQuantizer(qmin, qmax)

	st := buildMinTables(t, fs.c, dq)
	stats.Ops.Add(perf.OpCounts{ScalarLoadF: 256 * M, ScalarALU: 512 * M})

	// Widen the query-lifetime minimum tables once.
	var minTables256 [M]simd.Reg256
	for j := fs.c; j < M; j++ {
		minTables256[j] = simd.Dup128(st.minTables[j])
	}

	thrVal, haveThr := heap.Threshold()
	t8 := dq.pruneThreshold(thrVal, haveThr)
	thrReg := simd.Broadcast256(uint8(t8))

	g := fs.grouped
	groupOrder := fs.groupVisitOrder(t, nil)
	hasDead := fs.part.HasDead()
	var groupTables256 [layout.MaxGroupComponents]simd.Reg256
	var nibblesLo, nibblesHi [layout.BlockVectors]uint8

	// Per pair-of-blocks operation mix: same instruction count as one
	// 128-bit block iteration (each 256-bit instruction covers both
	// blocks), plus one extra scalar op for the wider mask handling.
	perPair := perf.OpCounts{
		SIMDLoad:     8,
		SIMDALU:      float64(2*fs.c+2*(M-fs.c)) + 7,
		SIMDShuffle:  8,
		SIMDCompare:  1,
		SIMDMovmsk:   1,
		ScalarALU:    3,
		ScalarBranch: 2,
	}
	pairs := 0

	for _, gi := range groupOrder {
		grp := g.Groups[gi]
		stats.Groups++
		for j := 0; j < fs.c; j++ {
			groupTables256[j] = simd.Dup128(buildGroupTable(t, j, grp.Key[j], dq))
		}

		for b := 0; b < grp.BlockCount; b += 2 {
			pairs++
			stats.Blocks++
			loBlock := grp.BlockStart + b
			hiBlock := loBlock // degenerate pair for an odd trailing block
			if b+1 < grp.BlockCount {
				hiBlock = loBlock + 1
				stats.Blocks++
			}

			var acc simd.Reg256
			first := true
			for j := 0; j < fs.c; j++ {
				g.LowNibbles(loBlock, j, &nibblesLo)
				g.LowNibbles(hiBlock, j, &nibblesHi)
				idx := simd.Concat128(simd.Load(nibblesLo[:]), simd.Load(nibblesHi[:]))
				lookup := simd.VPshufb(groupTables256[j], idx)
				if first {
					acc = lookup
					first = false
				} else {
					acc = simd.VPaddsB(acc, lookup)
				}
			}
			for j := fs.c; j < M; j++ {
				comps := simd.Concat128(
					simd.Load(g.FullComponents(loBlock, j)),
					simd.Load(g.FullComponents(hiBlock, j)),
				)
				hi := simd.VPand(simd.VPsrlw4(comps), simd.LowNibbleMask256())
				lookup := simd.VPshufb(minTables256[j], hi)
				if first {
					acc = lookup
					first = false
				} else {
					acc = simd.VPaddsB(acc, lookup)
				}
			}

			mask := simd.VPmovmskB(simd.VPcmpgtB(acc, thrReg))

			// Lane half -> block mapping: lanes 0-15 are loBlock,
			// 16-31 are hiBlock (skipped when the pair is degenerate).
			halves := 1
			if hiBlock != loBlock {
				halves = 2
			}
			for half := 0; half < halves; half++ {
				base := grp.Start + (b+half)*layout.BlockVectors
				valid := grp.Count - (b+half)*layout.BlockVectors
				if valid > layout.BlockVectors {
					valid = layout.BlockVectors
				}
				stats.LowerBounds += valid
				halfMask := uint16(mask >> (16 * half))
				if halfMask == 0xffff {
					stats.Pruned += valid
					continue
				}
				for lane := 0; lane < valid; lane++ {
					pos := base + lane
					if halfMask&(1<<lane) != 0 || (hasDead && fs.part.IsDead(g.IDs[pos])) {
						stats.Pruned++
						continue
					}
					stats.Candidates++
					d := adc8(g.Code(pos), t)
					if heap.Push(g.IDs[pos], d) {
						if thr, ok := heap.Threshold(); ok {
							nt := dq.pruneThreshold(thr, true)
							if nt != t8 {
								t8 = nt
								thrReg = simd.Broadcast256(uint8(t8))
							}
						}
					}
				}
			}
		}
	}
	stats.Ops.Add(perPair.Scale(float64(pairs)))
	stats.Ops.Add(perf.OpCounts{
		SIMDLoad:    float64(fs.c),
		ScalarALU:   4,
		ScalarLoadF: float64(16 * fs.c),
	}.Scale(float64(stats.Groups)))
	stats.Ops.Add(libpqPerVector.Scale(float64(stats.Candidates)))
	return heap.Results(), stats
}
