package scan

import (
	"testing"

	"pqfastscan/internal/quantizer"
	"pqfastscan/internal/rng"
	"pqfastscan/internal/simd/dispatch"
	"pqfastscan/internal/topk"
)

// sameStats asserts two native backends walked the exact same path:
// every counter equal and Ops empty on both.
func sameStats(t *testing.T, a, b Stats, la, lb string) {
	t.Helper()
	if a != b {
		t.Fatalf("stats diverge: %s %+v != %s %+v", la, a, lb, b)
	}
	if a.Ops != (Stats{}).Ops {
		t.Fatalf("%s: native backend filled Ops: %+v", la, a.Ops)
	}
}

// TestBackendEquivalenceFuzz is the cross-backend exactness property
// test: random codes, random table shapes (uniform, portion-structured,
// negative-shifted, near-degenerate), random tombstone sets, every
// grouping depth, both group orderings and both SWAR pipelines — every
// available backend must return identical ids, distances and Stats,
// and all of them must match the instruction-counting model engine.
func TestBackendEquivalenceFuzz(t *testing.T) {
	backends := dispatch.AvailableBackends()
	if len(backends) < 2 {
		t.Logf("only %v available; cross-backend leg degenerates to swar-vs-model", backends)
	}
	defer func(old int) { nativeLUTMinVectors = old }(nativeLUTMinVectors)

	r := rng.New(20260727)
	scratches := make(map[dispatch.Backend]*Scratch, len(backends))
	for _, be := range backends {
		scratches[be] = NewScratch()
	}

	for iter := 0; iter < 60; iter++ {
		// Both SWAR pipelines across the sweep.
		nativeLUTMinVectors = []int{0, 1 << 30, 4096}[iter%3]

		n := r.Intn(6000) + 1
		k := []int{1, 10, 100, 500}[r.Intn(4)]
		codes := make([]uint8, n*M)
		for i := range codes {
			codes[i] = uint8(r.Intn(256))
		}
		p := NewPartition(codes, nil)

		// Table shapes stress different quantizer ranges: the paper's
		// pruning-friendly portion structure, uniform noise (wide range,
		// little pruning), negative entries (distances are arbitrary
		// float32 sums here), and a near-degenerate band (tiny delta,
		// heavy saturation).
		tables := randomTablesShape(r, iter%4)

		// Random tombstones, sometimes including keep-region vectors.
		if iter%2 == 1 {
			for i := 0; i < n; i += 3 + r.Intn(17) {
				p.Tombstone(int64(i))
			}
		}

		fs, err := NewFastScan(p, FastScanOptions{
			Keep:            []float64{0, 0.005, 0.06}[r.Intn(3)],
			GroupComponents: r.Intn(5) - 1,
			OrderGroups:     r.Intn(2) == 0,
		})
		if err != nil {
			t.Fatal(err)
		}

		model, modelStats := fs.Scan(tables, k)
		first := backends[0]
		ref, refStats := fs.ScanNativeBackend(tables, k, scratches[first], first)
		sameResults(t, model, ref, "model", "backend:"+first.String())
		sameCounters(t, modelStats, refStats, "backend:"+first.String())

		for _, be := range backends[1:] {
			got, gotStats := fs.ScanNativeBackend(tables, k, scratches[be], be)
			sameResults(t, ref, got, "backend:"+first.String(), "backend:"+be.String())
			sameStats(t, refStats, gotStats, first.String(), be.String())
		}

		// Cache hit must change nothing: same tables object, same epoch.
		again, againStats := fs.ScanNativeBackend(tables, k, scratches[first], first)
		sameResults(t, ref, again, "cold-tables", "cached-tables")
		sameStats(t, refStats, againStats, "cold", "cached")

		// Mutate online and re-verify: appends regroup the layout while
		// the Scratch cache must notice what changed (and keep what did
		// not).
		if iter%4 == 3 {
			batch := r.Intn(150) + 1
			bcodes := make([]uint8, batch*M)
			bids := make([]int64, batch)
			for i := range bcodes {
				bcodes[i] = uint8(r.Intn(256))
			}
			for i := range bids {
				bids[i] = int64(p.N + i)
			}
			p.Append(bcodes, bids)
			fs.Append(bcodes, bids)
			model2, model2Stats := fs.Scan(tables, k)
			for _, be := range backends {
				got, gotStats := fs.ScanNativeBackend(tables, k, scratches[be], be)
				sameResults(t, model2, got, "model+append", "backend:"+be.String())
				sameCounters(t, model2Stats, gotStats, "append backend:"+be.String())
			}
		}
	}
}

// randomTablesShape builds distance tables of one of four stress
// shapes; see TestBackendEquivalenceFuzz.
func randomTablesShape(r *rng.Source, shape int) quantizer.Tables {
	tables := quantizer.Tables{M: M, KStar: 256, Data: make([]float32, M*256)}
	for j := 0; j < M; j++ {
		row := tables.Row(j)
		switch shape {
		case 0: // portion-structured (one near portion per component)
			near := r.Intn(16)
			for h := 0; h < 16; h++ {
				level := 1000 + r.Float32()*5000
				if h == near {
					level = r.Float32() * 20
				}
				for i := 0; i < 16; i++ {
					row[h*16+i] = level + r.Float32()*50
				}
			}
		case 1: // uniform noise
			for i := range row {
				row[i] = r.Float32() * 1000
			}
		case 2: // negative-shifted
			for i := range row {
				row[i] = r.Float32()*100 - 50
			}
		default: // near-degenerate band
			base := r.Float32() * 10
			for i := range row {
				row[i] = base + r.Float32()*0.001
			}
		}
	}
	return tables
}

// TestStaticPruneCachedMatchesLegacy pins the Scratch-cached StaticPrune
// method to the package-level wrapper across a threshold sweep — the
// hoisted bounds must not change a single decision.
func TestStaticPruneCachedMatchesLegacy(t *testing.T) {
	r := rng.New(424242)
	p, tables := randomPartition(t, 5000, 4242)
	fs, err := NewFastScan(p, FastScanOptions{Keep: 0.01, GroupComponents: 2})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch()
	for trial := 0; trial < 12; trial++ {
		thr := r.Float32() * 8000
		wantP, wantLB := StaticPrune(p, tables, thr, 0.01, 2)
		gotP, gotLB := fs.StaticPrune(tables, thr, sc)
		if wantP != gotP || wantLB != gotLB {
			t.Fatalf("thr=%v: cached StaticPrune (%d,%d) != legacy (%d,%d)",
				thr, gotP, gotLB, wantP, wantLB)
		}
	}
}

// TestQuantizationOnlyScratchMatches pins the cached ablation to the
// allocating one, including repeated calls through one Scratch (cache
// hits) and a second query (cache miss).
func TestQuantizationOnlyScratchMatches(t *testing.T) {
	sc := NewScratch()
	for seed := uint64(1); seed <= 3; seed++ {
		p, tables := randomPartition(t, 4000, seed)
		want, wantStats := QuantizationOnly(p, tables, 50, 0.01)
		for call := 0; call < 3; call++ {
			got, gotStats := QuantizationOnlyScratch(p, tables, 50, 0.01, sc)
			sameResults(t, want, got, "quantonly", "quantonly-scratch")
			// Both run on the model path: every counter — modeled Ops
			// included — must be independent of the cache state.
			if wantStats != gotStats {
				t.Fatalf("call %d: stats depend on the cache: %+v != %+v", call, wantStats, gotStats)
			}
		}
	}
}

// TestQueryTablesContentKeyedReuse pins the serving-path reuse
// contract: a scan with a RECOMPUTED but byte-identical distance-table
// array (what Index.Tables hands every request) must hit the Scratch
// cache — no rebuild — and return identical results; genuinely
// different tables must rebuild.
func TestQueryTablesContentKeyedReuse(t *testing.T) {
	rebuilds := 0
	testQueryTablesRebuilt = func() { rebuilds++ }
	defer func() { testQueryTablesRebuilt = nil }()

	p, tables := randomPartition(t, 3000, 5)
	fs, err := NewFastScan(p, FastScanOptions{Keep: 0.01, GroupComponents: -1, OrderGroups: true})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch()

	first, _ := fs.ScanNative(tables, 20, sc)
	want := append([]topk.Result(nil), first...)
	if rebuilds != 1 {
		t.Fatalf("first scan: %d rebuilds, want 1", rebuilds)
	}

	// Same object: pointer fast path.
	fs.ScanNative(tables, 20, sc)
	if rebuilds != 1 {
		t.Fatalf("same-object rescan rebuilt (%d)", rebuilds)
	}

	// Fresh array, identical contents: the content-fingerprint tier.
	recomputed := tables
	recomputed.Data = append([]float32(nil), tables.Data...)
	got, _ := fs.ScanNative(recomputed, 20, sc)
	if rebuilds != 1 {
		t.Fatalf("recomputed-identical tables rebuilt (%d rebuilds) — the serving path would never hit", rebuilds)
	}
	sameResults(t, want, got, "original-tables", "recomputed-tables")

	// Different contents must invalidate.
	changed := tables
	changed.Data = append([]float32(nil), tables.Data...)
	changed.Data[777] += 1000
	fs.ScanNative(changed, 20, sc)
	if rebuilds != 2 {
		t.Fatalf("changed tables did not rebuild (%d)", rebuilds)
	}
}
