package scan

import (
	"testing"

	"pqfastscan/internal/quantizer"
	"pqfastscan/internal/rng"
	"pqfastscan/internal/topk"
)

// randomPartition builds n random PQ 8x8 codes and random distance tables
// with values in [lo, hi).
func randomPartition(t *testing.T, n int, seed uint64) (*Partition, quantizer.Tables) {
	t.Helper()
	r := rng.New(seed)
	codes := make([]uint8, n*M)
	for i := range codes {
		codes[i] = uint8(r.Intn(256))
	}
	tables := quantizer.Tables{M: M, KStar: 256, Data: make([]float32, M*256)}
	for i := range tables.Data {
		tables.Data[i] = r.Float32() * 100
	}
	return NewPartition(codes, nil), tables
}

func sameResults(t *testing.T, a, b []topk.Result, nameA, nameB string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s returned %d results, %s returned %d", nameA, len(a), nameB, len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Distance != b[i].Distance {
			t.Fatalf("result %d differs: %s=%+v %s=%+v", i, nameA, a[i], nameB, b[i])
		}
	}
}

// TestKernelsAgree is the exactness invariant of DESIGN.md §6: every
// kernel returns bit-identical top-k results.
func TestKernelsAgree(t *testing.T) {
	for _, n := range []int{1, 7, 16, 100, 1000, 5000} {
		for _, k := range []int{1, 10, 100} {
			p, tables := randomPartition(t, n, uint64(n*1000+k))
			want, _ := Naive(p, tables, k)

			got, _ := Libpq(p, tables, k)
			sameResults(t, want, got, "naive", "libpq")

			got, _ = AVX(p, tables, k)
			sameResults(t, want, got, "naive", "avx")

			got, _ = Gather(p, tables, k)
			sameResults(t, want, got, "naive", "gather")

			for _, keep := range []float64{0, 0.005, 0.05} {
				for _, c := range []int{0, 1, 2, -1} {
					fs, err := NewFastScan(p, FastScanOptions{Keep: keep, GroupComponents: c})
					if err != nil {
						t.Fatalf("NewFastScan(keep=%v,c=%d): %v", keep, c, err)
					}
					got, _ = fs.Scan(tables, k)
					sameResults(t, want, got, "naive", "fastscan")
				}
			}

			got, _ = QuantizationOnly(p, tables, k, 0.005)
			sameResults(t, want, got, "naive", "quantonly")
		}
	}
}

// TestFastScanPrunes verifies pruning actually happens on clustered data
// where lower bounds are informative.
func TestFastScanPrunes(t *testing.T) {
	p, tables := randomPartition(t, 20000, 7)
	fs, err := NewFastScan(p, FastScanOptions{Keep: 0.01, GroupComponents: -1})
	if err != nil {
		t.Fatal(err)
	}
	_, stats := fs.Scan(tables, 10)
	// Uniform random tables are a pruning worst case (lower bounds carry
	// little signal); clustered data reaches far higher rates — see the
	// integration tests. Here we only require pruning to engage at all
	// and the accounting to balance.
	if stats.PrunedFraction() < 0.05 {
		t.Errorf("pruned fraction %.3f unexpectedly low", stats.PrunedFraction())
	}
	if stats.Candidates+stats.Pruned != stats.LowerBounds {
		t.Errorf("candidates %d + pruned %d != lower bounds %d",
			stats.Candidates, stats.Pruned, stats.LowerBounds)
	}
}
