package scan

import (
	"math"
	"testing"
	"testing/quick"

	"pqfastscan/internal/quantizer"
	"pqfastscan/internal/rng"
)

// TestDistQuantizerPerEntryBound is the core safety property of §4.4
// quantization: every quantized value q of v satisfies
// v >= qmin + q·delta, so sums of quantized entries lower-bound sums of
// true entries.
func TestDistQuantizerPerEntryBound(t *testing.T) {
	if err := quick.Check(func(qminRaw, qmaxRaw, vRaw float32) bool {
		// Squared L2 distances of byte-valued 128-dim vectors fit well
		// inside [0, 1e10]; fold arbitrary floats into that range.
		fold := func(x float32) float32 {
			return float32(math.Mod(math.Abs(float64(x)), 1e10))
		}
		qmin := fold(qminRaw)
		qmax := qmin + fold(qmaxRaw) + 1
		v := qmin + fold(vRaw)
		dq := newDistQuantizer(qmin, qmax)
		q := dq.quantize(v)
		if q > 127 {
			return false
		}
		return float64(v) >= dq.qmin+float64(q)*dq.delta
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDistQuantizerEndpoints(t *testing.T) {
	dq := newDistQuantizer(10, 137) // delta = 1
	if got := dq.quantize(10); got != 0 {
		t.Errorf("quantize(qmin) = %d, want 0", got)
	}
	if got := dq.quantize(137); got != 127 {
		t.Errorf("quantize(qmax) = %d, want 127", got)
	}
	if got := dq.quantize(1e9); got != 127 {
		t.Errorf("quantize(huge) = %d, want 127", got)
	}
	if got := dq.quantize(5); got != 0 {
		t.Errorf("quantize(below qmin) = %d, want clamp to 0", got)
	}
}

func TestDistQuantizerDegenerate(t *testing.T) {
	dq := newDistQuantizer(5, 5) // qmax == qmin
	if got := dq.quantize(123); got != 0 {
		t.Errorf("degenerate quantizer returned %d", got)
	}
	if got := dq.pruneThreshold(5, true); got != 127 {
		t.Errorf("degenerate threshold = %d, want 127 (no pruning)", got)
	}
}

// TestPruneThresholdSafety: whenever qsat > t for the returned t, the
// guaranteed lower bound 8·qmin + delta·qsat must strictly exceed min.
func TestPruneThresholdSafety(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 20000; trial++ {
		qmin := r.Float32() * 100
		qmax := qmin + r.Float32()*1000 + 0.001
		min := qmin*8 + r.Float32()*2000 - 500
		dq := newDistQuantizer(qmin, qmax)
		t8 := dq.pruneThreshold(min, true)
		for _, qsat := range []int8{t8 + 1, 127} {
			if qsat <= t8 {
				continue // saturating beyond 127 impossible
			}
			lb := 8*dq.qmin + dq.delta*float64(qsat)
			if !(lb > float64(min)) {
				t.Fatalf("trial %d: t=%d qsat=%d lb=%v not > min=%v (qmin=%v qmax=%v)",
					trial, t8, qsat, lb, min, qmin, qmax)
			}
		}
	}
}

func TestPruneThresholdNoMin(t *testing.T) {
	dq := newDistQuantizer(0, 100)
	if got := dq.pruneThreshold(50, false); got != 127 {
		t.Errorf("threshold without a full heap = %d, want 127", got)
	}
}

// TestPruneThresholdSaturationRule: once min <= qmax + 7·qmin, saturated
// lanes must be prunable (t <= 126).
func TestPruneThresholdSaturationRule(t *testing.T) {
	dq := newDistQuantizer(10, 1000)
	if got := dq.pruneThreshold(1000, true); got > 126 {
		t.Errorf("min = qmax: t = %d, want <= 126 so saturated lanes prune", got)
	}
	// min far beyond the provable bound: no pruning of saturated lanes.
	if got := dq.pruneThreshold(1e9, true); got != 127 {
		t.Errorf("min >> qmax+7qmin: t = %d, want 127", got)
	}
}

// TestBuildMinTablesAreMinima verifies Figure 10: entry h is the true
// minimum of portion h, quantized.
func TestBuildMinTablesAreMinima(t *testing.T) {
	r := rng.New(5)
	tables := quantizer.Tables{M: M, KStar: 256, Data: make([]float32, M*256)}
	for i := range tables.Data {
		tables.Data[i] = r.Float32() * 500
	}
	dq := newDistQuantizer(tables.Min(), tables.MaxSum())
	st := buildMinTables(tables, 2, dq)
	for j := 2; j < M; j++ {
		row := tables.Row(j)
		for h := 0; h < 16; h++ {
			m := row[h*16]
			for _, v := range row[h*16+1 : h*16+16] {
				if v < m {
					m = v
				}
			}
			if st.minTables[j][h] != dq.quantize(m) {
				t.Fatalf("min table %d portion %d: %d, want quantize(%v)=%d",
					j, h, st.minTables[j][h], m, dq.quantize(m))
			}
		}
	}
}

// TestLowerBoundNeverExceedsTrueDistance runs the block kernel's exact
// arithmetic over random data and checks the fundamental invariant on
// every vector: dequantized lower bound <= true ADC distance.
func TestLowerBoundNeverExceedsTrueDistance(t *testing.T) {
	p, tables := randomPartition(t, 4096, 123)
	fs, err := NewFastScan(p, FastScanOptions{Keep: 0.01, GroupComponents: 2})
	if err != nil {
		t.Fatal(err)
	}
	dq := newDistQuantizer(tables.Min(), tables.MaxSum())
	st := buildMinTables(tables, fs.c, dq)
	g := fs.grouped
	for _, grp := range g.Groups {
		var groupTables [4][16]uint8
		for j := 0; j < fs.c; j++ {
			groupTables[j] = buildGroupTable(tables, j, grp.Key[j], dq)
		}
		for pos := grp.Start; pos < grp.Start+grp.Count; pos++ {
			code := g.Code(pos)
			sum := 0
			for j := 0; j < fs.c; j++ {
				sum += int(groupTables[j][code[j]&0x0f])
			}
			for j := fs.c; j < M; j++ {
				sum += int(st.minTables[j][code[j]>>4])
			}
			if sum > 127 {
				sum = 127
			}
			lb := 8*dq.qmin + dq.delta*float64(sum)
			trueD := float64(adc8(code, tables))
			if lb > trueD+1e-3 {
				t.Fatalf("lower bound %v exceeds true distance %v", lb, trueD)
			}
		}
	}
}

// TestFastScanStatsAccounting: scanned = keep + lower bounds (+ padding
// never counted), and pruned + candidates = lower bounds.
func TestFastScanStatsAccounting(t *testing.T) {
	p, tables := randomPartition(t, 5000, 9)
	for _, keep := range []float64{0, 0.01, 0.1} {
		fs, err := NewFastScan(p, FastScanOptions{Keep: keep, GroupComponents: 1})
		if err != nil {
			t.Fatal(err)
		}
		_, stats := fs.Scan(tables, 10)
		if stats.KeepScanned != fs.KeepN() {
			t.Errorf("keep=%v: KeepScanned=%d, want %d", keep, stats.KeepScanned, fs.KeepN())
		}
		if stats.KeepScanned+stats.LowerBounds != p.N {
			t.Errorf("keep=%v: keep %d + lower bounds %d != N %d",
				keep, stats.KeepScanned, stats.LowerBounds, p.N)
		}
		if stats.Pruned+stats.Candidates != stats.LowerBounds {
			t.Errorf("keep=%v: pruned %d + candidates %d != lower bounds %d",
				keep, stats.Pruned, stats.Candidates, stats.LowerBounds)
		}
		if stats.Ops.Instructions() <= 0 || stats.Ops.L1Loads() <= 0 {
			t.Errorf("keep=%v: empty op accounting", keep)
		}
	}
}

// TestFastScanPropertyAgainstNaive: randomized end-to-end equivalence
// over many shapes, keep values, grouping depths and orderings.
func TestFastScanPropertyAgainstNaive(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 30; trial++ {
		n := r.Intn(3000) + 20
		k := []int{1, 5, 37, 128}[r.Intn(4)]
		p, tables := randomPartition(t, n, r.Uint64())
		want, _ := Naive(p, tables, k)
		fs, err := NewFastScan(p, FastScanOptions{
			Keep:            []float64{0, 0.002, 0.05}[r.Intn(3)],
			GroupComponents: r.Intn(5) - 1,
			OrderGroups:     r.Intn(2) == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, _ := fs.Scan(tables, k)
		sameResults(t, want, got, "naive", "fastscan")
	}
}

// TestFastScanSkewedTables exercises the pruning-heavy regime: distance
// tables with one clearly close centroid per sub-quantizer.
func TestFastScanSkewedTables(t *testing.T) {
	r := rng.New(6)
	n := 20000
	codes := make([]uint8, n*M)
	for i := range codes {
		codes[i] = uint8(r.Intn(256))
	}
	p := NewPartition(codes, nil)
	// Portion-homogeneous tables: all 16 entries of a portion share a
	// level, which is what the §4.3 optimized assignment produces (nearby
	// centroids share a portion, so a query is roughly equidistant from
	// all of them). One portion per table is close to the query.
	tables := quantizer.Tables{M: M, KStar: 256, Data: make([]float32, M*256)}
	for j := 0; j < M; j++ {
		row := tables.Row(j)
		for h := 0; h < 16; h++ {
			level := 1000 + r.Float32()*5000
			if h == r.Intn(16) {
				level = r.Float32() * 20
			}
			for i := 0; i < 16; i++ {
				row[h*16+i] = level + r.Float32()*50
			}
		}
	}
	want, _ := Libpq(p, tables, 10)
	fs, err := NewFastScan(p, FastScanOptions{Keep: 0.01, GroupComponents: -1, OrderGroups: true})
	if err != nil {
		t.Fatal(err)
	}
	got, stats := fs.Scan(tables, 10)
	sameResults(t, want, got, "libpq", "fastscan")
	if stats.PrunedFraction() < 0.9 {
		t.Errorf("skewed tables pruned only %.1f%%", 100*stats.PrunedFraction())
	}
}

func TestNewFastScanErrors(t *testing.T) {
	p, _ := randomPartition(t, 100, 1)
	if _, err := NewFastScan(p, FastScanOptions{Keep: -0.1}); err == nil {
		t.Error("negative keep accepted")
	}
	if _, err := NewFastScan(p, FastScanOptions{Keep: 1.5}); err == nil {
		t.Error("keep >= 1 accepted")
	}
	if _, err := NewFastScan(p, FastScanOptions{GroupComponents: 9}); err == nil {
		t.Error("c=9 accepted")
	}
}

func TestQuantizationOnlyStats(t *testing.T) {
	p, tables := randomPartition(t, 3000, 4)
	res, stats := QuantizationOnly(p, tables, 20, 0.02)
	want, _ := Naive(p, tables, 20)
	sameResults(t, want, res, "naive", "quantonly")
	if stats.KeepScanned != 60 {
		t.Errorf("KeepScanned = %d, want 60", stats.KeepScanned)
	}
	if stats.Pruned+stats.Candidates != stats.LowerBounds {
		t.Error("quantonly accounting mismatch")
	}
}

// TestScan256AgreesWithScan: the AVX2 widening must return bit-identical
// results to the 128-bit kernel and to the exact baselines, across
// shapes, odd block counts and orderings.
func TestScan256AgreesWithScan(t *testing.T) {
	r := rng.New(4242)
	for trial := 0; trial < 25; trial++ {
		n := r.Intn(4000) + 10
		k := []int{1, 9, 64}[r.Intn(3)]
		p, tables := randomPartition(t, n, r.Uint64())
		want, _ := Naive(p, tables, k)
		fs, err := NewFastScan(p, FastScanOptions{
			Keep:            []float64{0, 0.01}[r.Intn(2)],
			GroupComponents: r.Intn(5) - 1,
			OrderGroups:     r.Intn(2) == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, stats := fs.Scan256(tables, k)
		sameResults(t, want, got, "naive", "fastscan256")
		if stats.Pruned+stats.Candidates != stats.LowerBounds {
			t.Fatalf("trial %d: scan256 accounting mismatch", trial)
		}
		if stats.KeepScanned+stats.LowerBounds != p.N {
			t.Fatalf("trial %d: scan256 coverage mismatch", trial)
		}
	}
}

// TestScan256CheaperFrontend: per scanned vector, the wide kernel's
// modeled instruction count must be below the 128-bit kernel's.
func TestScan256CheaperFrontend(t *testing.T) {
	p, tables := randomPartition(t, 30000, 77)
	opt := FastScanOptions{Keep: 0.01, GroupComponents: 2}
	fs, err := NewFastScan(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, s128 := fs.Scan(tables, 10)
	_, s256 := fs.Scan256(tables, 10)
	if s256.Ops.Instructions() >= s128.Ops.Instructions() {
		t.Errorf("scan256 instructions %.0f not below scan %.0f",
			s256.Ops.Instructions(), s128.Ops.Instructions())
	}
}
