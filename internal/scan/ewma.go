package scan

import (
	"math"
	"sync/atomic"
	"time"

	"pqfastscan/internal/perf"
	"pqfastscan/internal/simd/dispatch"
)

// Online scan-cost observations for the adaptive query planner
// (internal/plan). Every native partition scan reports its wall-clock
// duration here, bucketed by cost class — which execution path ran
// (exact loop, Fast Scan per block-kernel backend, model) — and by
// whether the partition was disk-resident (the paging tax of pinning
// and hydrating shows up in the observed time, which is exactly what a
// planner choosing between resident and paged probes needs to see).
//
// The store is a fixed array of EWMAs updated with a CAS loop on the
// float64 bit pattern: observers never block each other or the scan
// (an interleaved pair of updates loses one sample, never corrupts the
// average), and readers pay one atomic load. Before the first
// observation arrives, each class answers with a prior priced by the
// internal/perf instruction-count model on the reference Haswell
// profile — so a cold planner ranks the classes the way the paper's
// counting argument does, and warm observations then correct the
// magnitudes to the actual host.

// CostClass identifies one scan execution path for cost accounting.
type CostClass uint8

const (
	// CostExact is the native exact-scan loop shared by the naive,
	// libpq, avx and gather kernel selections.
	CostExact CostClass = iota
	// CostFastSWAR, CostFastAVX2 and CostFastNEON are the native Fast
	// Scan block kernels per backend.
	CostFastSWAR
	CostFastAVX2
	CostFastNEON
	// CostModel is every instruction-counting (model engine) path. The
	// planner never chooses it; it is observed so /stats shows what
	// instrumented queries cost.
	CostModel
	numCostClasses
)

// String names the class for reports ("exact", "fastpq-swar", ...).
func (c CostClass) String() string {
	switch c {
	case CostExact:
		return "exact"
	case CostFastSWAR:
		return "fastpq-swar"
	case CostFastAVX2:
		return "fastpq-asm-avx2"
	case CostFastNEON:
		return "fastpq-asm-neon"
	case CostModel:
		return "model"
	default:
		return "unknown"
	}
}

// FastClassFor maps a block-kernel backend to its Fast Scan cost class.
// Auto resolves through the startup feature detection, so the class
// always names the backend that actually executed.
func FastClassFor(be dispatch.Backend) CostClass {
	if be == dispatch.Auto {
		be = dispatch.Active()
	}
	switch be {
	case dispatch.AVX2:
		return CostFastAVX2
	case dispatch.NEON:
		return CostFastNEON
	default:
		return CostFastSWAR
	}
}

// ewmaAlpha is the smoothing factor of the per-class ns/code average.
// 1/8 remembers roughly the last few dozen scans — fast enough to track
// a pool warming up, slow enough that one descheduled scan does not
// flip a planner decision.
const ewmaAlpha = 1.0 / 8

type costCell struct {
	bits    atomic.Uint64 // float64 bits of the ns/code EWMA
	samples atomic.Uint64
}

// costCells is indexed [class][paged]: resident and disk-backed scans
// of the same path keep separate averages, because the pin/hydrate/
// fault tax is the planner's whole reason to treat them differently.
var costCells [numCostClasses][2]costCell

func pagedIdx(paged bool) int {
	if paged {
		return 1
	}
	return 0
}

// ObserveScan folds one scan of codes codes taking d into the class's
// EWMA. Lock-free; safe from any goroutine; a no-op for empty scans.
//
// One observation moves the average by at most a factor of two in
// either direction. Scan durations have a heavy tail the cost itself
// does not — a GC pause or a descheduling lands in whichever class
// happened to be running — and an unclamped EWMA lets one such outlier
// multiply the average past a competing class's. That poisoned value
// then sticks: the planner stops choosing the class, so no further
// observation corrects it, and decisions oscillate against stale
// noise. Clamped, an isolated outlier moves the estimate at most 2x
// (not enough to invert a real ranking), while a genuine shift — a
// pool going cold, a frequency change — still converges in a handful
// of scans.
func ObserveScan(class CostClass, paged bool, codes int, d time.Duration) {
	if class >= numCostClasses || codes <= 0 || d <= 0 {
		return
	}
	x := float64(d.Nanoseconds()) / float64(codes)
	cell := &costCells[class][pagedIdx(paged)]
	for {
		old := cell.bits.Load()
		var next float64
		if cell.samples.Load() == 0 {
			next = x
		} else {
			prev := math.Float64frombits(old)
			next = prev + ewmaAlpha*(x-prev)
			if next > 2*prev {
				next = 2 * prev
			} else if next < prev/2 {
				next = prev / 2
			}
		}
		if cell.bits.CompareAndSwap(old, math.Float64bits(next)) {
			cell.samples.Add(1)
			return
		}
	}
}

// ObservedNsPerCode returns the class's current ns/code average and how
// many scans produced it. Zero samples means cold: the caller should
// fall back to PriorNsPerCode.
func ObservedNsPerCode(class CostClass, paged bool) (nsPerCode float64, samples uint64) {
	if class >= numCostClasses {
		return 0, 0
	}
	cell := &costCells[class][pagedIdx(paged)]
	return math.Float64frombits(cell.bits.Load()), cell.samples.Load()
}

// ResetCostObservations clears every EWMA back to the cold state.
// Benchmarks and tests use it to measure from a known prior.
func ResetCostObservations() {
	for c := range costCells {
		for p := range costCells[c] {
			costCells[c][p].bits.Store(0)
			costCells[c][p].samples.Store(0)
		}
	}
}

// CostObservation is one class's state for reports (/stats planner
// section, pqbench -planner).
type CostObservation struct {
	Class     string  `json:"class"`
	Paged     bool    `json:"paged"`
	NsPerCode float64 `json:"ns_per_code"`
	Samples   uint64  `json:"samples"`
	PriorNs   float64 `json:"prior_ns_per_code"`
}

// CostSnapshot lists every class that has at least one observation,
// resident entries first.
func CostSnapshot() []CostObservation {
	var out []CostObservation
	for p := 0; p < 2; p++ {
		for c := CostClass(0); c < numCostClasses; c++ {
			ns, n := ObservedNsPerCode(c, p == 1)
			if n == 0 {
				continue
			}
			out = append(out, CostObservation{
				Class: c.String(), Paged: p == 1,
				NsPerCode: ns, Samples: n, PriorNs: PriorNsPerCode(c),
			})
		}
	}
	return out
}

// Priors: the per-code operation mix of each class priced by
// perf.Estimate on the reference Haswell profile (the paper's machine
// A), converted to nanoseconds at its clock. The exact loop pays the
// libpq-style mix (one packed load, shift extraction, eight table
// adds); a Fast Scan block resolves 16 codes with eight pshufb+padd
// pairs, a compare and a movemask, so its per-code share is that block
// mix divided by 16. SWAR emulates each 128-bit SIMD operation with
// roughly four 64-bit scalar ALU operations. The absolute numbers only
// anchor the cold start — what matters is that they rank the classes
// the way the paper's Table 2 counting argument does (asm Fast Scan ≪
// SWAR Fast Scan ≪ exact) until real observations take over.
var priorNs [numCostClasses]float64

func init() {
	arch := perf.Haswell
	perCode := func(c perf.OpCounts, codes float64) float64 {
		return perf.Estimate(c, arch).Seconds(arch) * 1e9 / codes
	}
	// Native exact loop ≈ the libpq mix (its model-engine counterpart).
	priorNs[CostExact] = perCode(libpqPerVector, 1)
	// One Fast Scan block: 8 shuffles + 8 saturated adds + compare +
	// movemask + load of the packed block, over 16 codes.
	fastBlock := perf.OpCounts{
		SIMDLoad: 1, SIMDShuffle: 8, SIMDALU: 9, SIMDCompare: 1, SIMDMovmsk: 1,
	}
	priorNs[CostFastAVX2] = perCode(fastBlock, 16)
	priorNs[CostFastNEON] = perCode(fastBlock, 16)
	// SWAR: every SIMD op becomes ~4 scalar 64-bit ALU ops.
	swarBlock := perf.OpCounts{
		ScalarLoad64: 2, ScalarALU: 4 * (8 + 9 + 1 + 1), ScalarBranch: 2,
	}
	priorNs[CostFastSWAR] = perCode(swarBlock, 16)
	// Model engine: the libpq mix plus the interpretation overhead of
	// counting it — call it an order of magnitude over exact, matching
	// the measured native ≈ 12.6x model gap of BENCH_pr2.
	priorNs[CostModel] = priorNs[CostExact] * 12
}

// PriorNsPerCode is the internal/perf-seeded cold-start estimate of a
// class's ns/code (paging tax excluded: the prior has no opinion on the
// pool, only on the compute).
func PriorNsPerCode(class CostClass) float64 {
	if class >= numCostClasses {
		return 0
	}
	return priorNs[class]
}

// EstimatedNsPerCode is the planner's working estimate: the observed
// EWMA when the class has samples, the perf prior otherwise.
func EstimatedNsPerCode(class CostClass, paged bool) float64 {
	if ns, n := ObservedNsPerCode(class, paged); n > 0 {
		return ns
	}
	return PriorNsPerCode(class)
}
