package index

import (
	"context"
	"sync"
	"testing"

	"pqfastscan/internal/dataset"
	"pqfastscan/internal/vec"
)

// Shared small index across tests: building is the expensive part.
var (
	testOnce    sync.Once
	testIndex   *Index
	testBase    vec.Matrix
	testQueries vec.Matrix
	testErr     error
)

func sharedIndex(t *testing.T) (*Index, vec.Matrix, vec.Matrix) {
	t.Helper()
	testOnce.Do(func() {
		gen := dataset.NewGenerator(dataset.Config{Seed: 31})
		learn := gen.Generate(4000)
		testBase = gen.Generate(30000)
		testQueries = gen.Generate(8)
		opt := DefaultOptions()
		opt.Partitions = 4
		opt.Seed = 31
		testIndex, testErr = Build(learn, testBase, opt)
	})
	if testErr != nil {
		t.Fatal(testErr)
	}
	return testIndex, testBase, testQueries
}

func TestBuildErrors(t *testing.T) {
	gen := dataset.NewGenerator(dataset.Config{Seed: 1, Dim: 32})
	learn := gen.Generate(300)
	base := gen.Generate(100)
	if _, err := Build(learn, base, Options{Partitions: 0}); err == nil {
		t.Error("zero partitions accepted")
	}
	other := dataset.NewGenerator(dataset.Config{Seed: 1, Dim: 64}).Generate(100)
	if _, err := Build(learn, other, Options{Partitions: 2}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestPartitionsCoverBase(t *testing.T) {
	ix, base, _ := sharedIndex(t)
	seen := make([]bool, base.Rows())
	total := 0
	for _, p := range ix.Parts() {
		total += p.N
		for i := 0; i < p.N; i++ {
			id := p.ID(i)
			if id < 0 || int(id) >= base.Rows() || seen[id] {
				t.Fatalf("partition id %d invalid or duplicated", id)
			}
			seen[id] = true
		}
	}
	if total != base.Rows() {
		t.Fatalf("partitions hold %d of %d vectors", total, base.Rows())
	}
}

func TestRoutingIsNearestCentroid(t *testing.T) {
	ix, _, queries := sharedIndex(t)
	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.Row(qi)
		got := ix.RoutePartition(q)
		want, _ := vec.ArgminL2(q, ix.Coarse.Data, ix.Dim)
		if got != want {
			t.Fatalf("query %d routed to %d, nearest centroid is %d", qi, got, want)
		}
	}
}

func TestPartitionMembersNearestToTheirCentroid(t *testing.T) {
	ix, base, _ := sharedIndex(t)
	for pi, p := range ix.Parts() {
		for i := 0; i < p.N; i += 97 {
			row := base.Row(int(p.ID(i)))
			want, _ := vec.ArgminL2(row, ix.Coarse.Data, ix.Dim)
			if want != pi {
				t.Fatalf("vector %d stored in partition %d but nearest cell is %d", p.ID(i), pi, want)
			}
		}
	}
}

// TestAllKernelsAgree is the end-to-end exactness invariant: every scan
// kernel returns identical results through the full IVFADC pipeline.
func TestAllKernelsAgree(t *testing.T) {
	ix, _, queries := sharedIndex(t)
	kernels := []Kernel{KernelNaive, KernelLibpq, KernelAVX, KernelGather, KernelFastScan, KernelQuantOnly}
	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.Row(qi)
		ref, _, refPart, err := ix.Search(q, 50, KernelNaive)
		if err != nil {
			t.Fatal(err)
		}
		for _, kern := range kernels[1:] {
			got, _, part, err := ix.Search(q, 50, kern)
			if err != nil {
				t.Fatalf("kernel %v: %v", kern, err)
			}
			if part != refPart {
				t.Fatalf("kernel %v routed differently", kern)
			}
			if len(got) != len(ref) {
				t.Fatalf("kernel %v returned %d results, want %d", kern, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("query %d kernel %v result %d: %+v != %+v", qi, kern, i, got[i], ref[i])
				}
			}
		}
	}
}

func TestSearchReturnsSortedDistances(t *testing.T) {
	ix, _, queries := sharedIndex(t)
	res, _, _, err := ix.Search(queries.Row(0), 20, KernelFastScan)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Distance < res[i-1].Distance {
			t.Fatalf("results not sorted at %d", i)
		}
	}
}

// TestADCDistancesMatchDecodedVectors: the reported distance must equal
// the exact distance between the query residual and the decoded residual
// code (the ADC definition).
func TestADCDistancesMatchDecodedVectors(t *testing.T) {
	ix, _, queries := sharedIndex(t)
	q := queries.Row(0)
	res, _, part, err := ix.Search(q, 5, KernelNaive)
	if err != nil {
		t.Fatal(err)
	}
	tables := ix.Tables(q, part)
	p := ix.Parts()[part]
	// Locate each result position to recompute its ADC.
	for _, r := range res {
		found := false
		for i := 0; i < p.N; i++ {
			if p.ID(i) == r.ID {
				code := p.Code(i)
				var d float32
				for j := 0; j < ix.PQ.M; j++ {
					d += tables.Row(j)[code[j]]
				}
				if d != r.Distance {
					t.Fatalf("result id %d distance %v, recomputed %v", r.ID, r.Distance, d)
				}
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("result id %d not in routed partition", r.ID)
		}
	}
}

func TestSearchMulti(t *testing.T) {
	ix, _, queries := sharedIndex(t)
	q := queries.Row(1)
	single, _, _, err := ix.Search(q, 30, KernelFastScan)
	if err != nil {
		t.Fatal(err)
	}
	multi, _, err := ix.SearchMulti(q, 30, ix.Partitions(), KernelFastScan)
	if err != nil {
		t.Fatal(err)
	}
	// Probing every cell can only improve (or tie) each rank's distance.
	for i := range single {
		if multi[i].Distance > single[i].Distance {
			t.Fatalf("rank %d worsened with full probing: %v > %v", i, multi[i].Distance, single[i].Distance)
		}
	}
	if _, _, err := ix.SearchMulti(q, 10, 0, KernelFastScan); err == nil {
		t.Error("nprobe=0 accepted")
	}
	if _, _, err := ix.SearchMulti(q, 10, 99, KernelFastScan); err == nil {
		t.Error("nprobe beyond partitions accepted")
	}
}

func TestSearchPartitionErrors(t *testing.T) {
	ix, _, queries := sharedIndex(t)
	if _, _, err := ix.SearchPartition(queries.Row(0), 5, KernelNaive, -1); err == nil {
		t.Error("negative partition accepted")
	}
	if _, _, err := ix.SearchPartition(queries.Row(0), 5, Kernel(42), 0); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestKernelString(t *testing.T) {
	names := map[Kernel]string{
		KernelNaive: "naive", KernelLibpq: "libpq", KernelAVX: "avx",
		KernelGather: "gather", KernelFastScan: "fastpq", KernelQuantOnly: "quantonly",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestGroupedMemoryBytes(t *testing.T) {
	ix, base, _ := sharedIndex(t)
	packed, rowMajor, err := ix.GroupedMemoryBytes()
	if err != nil {
		t.Fatal(err)
	}
	if rowMajor != base.Rows()*8 {
		t.Fatalf("row-major bytes %d, want %d", rowMajor, base.Rows()*8)
	}
	if packed >= rowMajor {
		t.Fatalf("packed layout (%d) not smaller than row-major (%d)", packed, rowMajor)
	}
}

func TestFastScannerCached(t *testing.T) {
	ix, _, _ := sharedIndex(t)
	a, err := ix.FastScanner(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ix.FastScanner(0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("FastScanner not cached per partition")
	}
}

func TestRecallAgainstGroundTruth(t *testing.T) {
	ix, base, queries := sharedIndex(t)
	gt, err := dataset.GroundTruth(base, queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	var results [][]int64
	for qi := 0; qi < queries.Rows(); qi++ {
		res, _, _, err := ix.Search(queries.Row(qi), 100, KernelFastScan)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]int64, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		results = append(results, ids)
	}
	// PQ 8x8 with a single-probe IVF on clustered synthetic data should
	// place the true NN in the top-100 most of the time.
	if r := dataset.Recall(results, gt, 100); r < 0.5 {
		t.Errorf("recall@100 = %v, unexpectedly low", r)
	}
}

func TestSearchBatchMatchesSequential(t *testing.T) {
	ix, _, queries := sharedIndex(t)
	batch, err := ix.SearchBatch(testQueries, 15, KernelFastScan)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != queries.Rows() {
		t.Fatalf("batch returned %d result sets", len(batch))
	}
	for qi := 0; qi < queries.Rows(); qi++ {
		want, _, _, err := ix.Search(queries.Row(qi), 15, KernelFastScan)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if batch[qi][i] != want[i] {
				t.Fatalf("query %d batch result %d differs", qi, i)
			}
		}
	}
}

func TestSearchBatchDimMismatch(t *testing.T) {
	ix, _, _ := sharedIndex(t)
	bad := vec.NewMatrix(2, ix.Dim+1)
	if _, err := ix.SearchBatch(bad, 5, KernelFastScan); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestFastScan256KernelThroughIndex(t *testing.T) {
	ix, _, queries := sharedIndex(t)
	for qi := 0; qi < 3; qi++ {
		want, _, _, err := ix.Search(queries.Row(qi), 20, KernelLibpq)
		if err != nil {
			t.Fatal(err)
		}
		got, _, _, err := ix.Search(queries.Row(qi), 20, KernelFastScan256)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("fastpq256 differs at rank %d", i)
			}
		}
	}
}

// TestBuildDeterministic: identical seeds must produce identical indexes
// (codes, centroids and therefore query answers).
func TestBuildDeterministic(t *testing.T) {
	gen1 := dataset.NewGenerator(dataset.Config{Seed: 99, Dim: 32})
	learn1 := gen1.Generate(1500)
	base1 := gen1.Generate(4000)
	gen2 := dataset.NewGenerator(dataset.Config{Seed: 99, Dim: 32})
	learn2 := gen2.Generate(1500)
	base2 := gen2.Generate(4000)
	opt := DefaultOptions()
	opt.Partitions = 3
	opt.Seed = 5
	a, err := Build(learn1, base1, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(learn2, base2, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Coarse.Data {
		if a.Coarse.Data[i] != b.Coarse.Data[i] {
			t.Fatal("coarse centroids differ between same-seed builds")
		}
	}
	aParts, bParts := a.Parts(), b.Parts()
	for pi := range aParts {
		if aParts[pi].N != bParts[pi].N {
			t.Fatalf("partition %d sizes differ", pi)
		}
		for ci := range aParts[pi].Codes {
			if aParts[pi].Codes[ci] != bParts[pi].Codes[ci] {
				t.Fatalf("partition %d codes differ", pi)
			}
		}
	}
}

// TestSearchKLargerThanPartition: k beyond the partition size returns
// every vector, still sorted and identical across kernels.
func TestSearchKLargerThanPartition(t *testing.T) {
	ix, _, queries := sharedIndex(t)
	q := queries.Row(0)
	part := ix.RoutePartition(q)
	k := ix.Parts()[part].N + 50
	ref, _, _, err := ix.Search(q, k, KernelNaive)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != ix.Parts()[part].N {
		t.Fatalf("got %d results for k beyond partition size %d", len(ref), ix.Parts()[part].N)
	}
	got, _, _, err := ix.Search(q, k, KernelFastScan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("oversized-k results differ at rank %d", i)
		}
	}
}

// TestConcurrentMutationAndQueries hammers the index with concurrent
// Add, Delete and Query traffic; the RW lock must keep every query
// consistent (run under -race in CI-style invocations).
func TestConcurrentMutationAndQueries(t *testing.T) {
	gen := dataset.NewGenerator(dataset.Config{Seed: 77, Dim: 32})
	learn := gen.Generate(2000)
	base := gen.Generate(8000)
	opt := DefaultOptions()
	opt.Partitions = 2
	opt.Seed = 77
	ix, err := Build(learn, base, opt)
	if err != nil {
		t.Fatal(err)
	}
	queries := gen.Generate(4)
	extra := gen.Generate(200)
	ctx := context.Background()

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				req := Request{Query: queries.Row((w + i) % queries.Rows()), K: 10, Kernel: KernelFastScan, NProbe: 1 + i%2}
				if _, err := ix.Query(ctx, req); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < extra.Rows(); i++ {
			ids, err := ix.Add(vec.Matrix{Data: extra.Row(i), Dim: 32})
			if err != nil {
				errc <- err
				return
			}
			if i%3 == 0 {
				ix.Delete(ids[0])
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	added := extra.Rows()
	deleted := (added + 2) / 3
	if got, want := ix.Live(), base.Rows()+added-deleted; got != want {
		t.Fatalf("Live() = %d after concurrent traffic, want %d", got, want)
	}
}

// TestQueryBatchHonorsContext: a canceled context fails the batch.
func TestQueryBatchHonorsContext(t *testing.T) {
	ix, _, queries := sharedIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.QueryBatch(ctx, queries, Request{K: 5, Kernel: KernelFastScan}); err != context.Canceled {
		t.Fatalf("canceled batch returned %v", err)
	}
}
