// Online compaction: tombstoned codes accumulate in partition epochs
// (Delete never rewrites code blocks) and cost scan time forever unless
// reclaimed. The compactor rebuilds a partition without its dead rows —
// entirely off the serving path, under the partition's builder lock —
// and publishes the compacted epoch with the same single snapshot swap
// every mutation uses. Queries in flight keep the old epoch; queries
// after the swap scan fewer codes for bit-identical results (the scan
// kernels are exact over the live set, so removing rows that every
// kernel already skipped changes nothing but cost).
package index

import (
	"fmt"

	"pqfastscan/internal/scan"
)

// PartitionStat describes one partition's occupancy in a snapshot, for
// compaction policy and the /stats endpoint.
type PartitionStat struct {
	Partition int     `json:"partition"`
	Live      int     `json:"live"`
	Dead      int     `json:"dead"`
	Epoch     uint64  `json:"epoch"`
	DeadRatio float64 `json:"dead_ratio"`
}

// PartitionStats returns per-partition live/dead/epoch counters from the
// current snapshot — one atomic load, no locks.
func (ix *Index) PartitionStats() []PartitionStat {
	s := ix.snap.Load()
	out := make([]PartitionStat, len(s.Parts))
	for i, pe := range s.Parts {
		st := PartitionStat{
			Partition: i,
			Live:      pe.Part.Live(),
			Dead:      pe.Part.DeadCount(),
			Epoch:     pe.Epoch,
		}
		if pe.Part.N > 0 {
			st.DeadRatio = float64(st.Dead) / float64(pe.Part.N)
		}
		out[i] = st
	}
	return out
}

// CompactionResult reports one partition compaction.
type CompactionResult struct {
	Partition int    `json:"partition"`
	Reclaimed int    `json:"reclaimed"` // tombstoned rows removed
	Live      int    `json:"live"`      // rows in the compacted epoch
	Epoch     uint64 `json:"epoch"`     // epoch published (0 if none was)
}

// CompactPartition rebuilds partition c without its tombstoned rows and
// publishes the compacted epoch. The rebuild runs under the partition's
// builder lock — contending only with mutations of the same partition —
// while queries keep scanning the previous epoch until the publish. A
// partition with no tombstones is left untouched (Reclaimed 0, Epoch 0).
//
// If the predecessor epoch had a Fast Scan layout, the compacted epoch
// gets a fresh one built eagerly here, off the serving path, so the
// first post-compaction query pays no construction cost. Search results
// are bit-identical before and after (modulo the deleted ids, which no
// kernel returned anyway): the kernels are exact over live rows, and
// regrouping only changes how much the scan prunes, never what it
// returns.
func (ix *Index) CompactPartition(c int) (CompactionResult, error) {
	if c < 0 || c >= ix.Partitions() {
		return CompactionResult{}, fmt.Errorf("index: partition %d out of range", c)
	}
	ix.partMu[c].Lock()
	defer ix.partMu[c].Unlock()
	cur := ix.snap.Load().Parts[c]
	dead := cur.Part.DeadCount()
	if dead == 0 {
		return CompactionResult{Partition: c, Live: cur.Part.Live()}, nil
	}
	if ix.pg != nil {
		pe, err := ix.compactPaged(c, cur)
		if err != nil {
			return CompactionResult{}, fmt.Errorf("index: compacting partition %d: %w", c, err)
		}
		return CompactionResult{Partition: c, Reclaimed: dead, Live: pe.Part.Live(), Epoch: pe.Epoch}, nil
	}
	next := cur.Part.Compact()
	var fast *scan.FastScan
	if cur.fast.Load() != nil {
		fs, err := scan.NewFastScan(next, ix.opt.FastScan)
		if err != nil {
			return CompactionResult{}, fmt.Errorf("index: compacting partition %d: %w", c, err)
		}
		fast = fs
	}
	pe := ix.publish(c, next, fast)
	return CompactionResult{Partition: c, Reclaimed: dead, Live: next.N, Epoch: pe.Epoch}, nil
}

// Compact compacts every partition whose dead ratio (tombstoned rows /
// total rows) is at least minDeadRatio, one partition at a time so the
// builder locks are held briefly and mutations interleave freely. It
// returns the partitions actually compacted. A minDeadRatio of 0
// compacts every partition holding any tombstone.
func (ix *Index) Compact(minDeadRatio float64) ([]CompactionResult, error) {
	var out []CompactionResult
	for _, st := range ix.PartitionStats() {
		if st.Dead == 0 || st.DeadRatio < minDeadRatio {
			continue
		}
		r, err := ix.CompactPartition(st.Partition)
		if err != nil {
			return out, err
		}
		if r.Reclaimed > 0 {
			out = append(out, r)
		}
	}
	return out, nil
}
