package index

import (
	"testing"
)

func TestRankCellsIntoMatchesRankCells(t *testing.T) {
	ix, _, queries := sharedIndex(t)
	n := ix.Partitions()
	ids := make([]int, n)
	dists := make([]float32, n)
	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.Row(qi)
		want := RankCells(q, ix.Coarse)
		got := ix.RankCellsInto(q, ids, dists)
		if len(got) != len(want) {
			t.Fatalf("q%d: length %d, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("q%d: order diverges at %d: got %v want %v", qi, i, got, want)
			}
		}
	}
}

func TestRankCellsIntoGrowsSmallBuffers(t *testing.T) {
	ix, _, queries := sharedIndex(t)
	got := ix.RankCellsInto(queries.Row(0), nil, nil)
	want := RankCells(queries.Row(0), ix.Coarse)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grown-buffer order diverges: got %v want %v", got, want)
		}
	}
}

func TestPlanStatsIntoMatchesPartitionStats(t *testing.T) {
	ix, _, _ := sharedIndex(t)
	buf := make([]PlanStat, 0, ix.Partitions())
	stats := ix.PlanStatsInto(buf)
	ref := ix.PartitionStats()
	if len(stats) != len(ref) {
		t.Fatalf("length %d, want %d", len(stats), len(ref))
	}
	for i, st := range stats {
		if st.N != ref[i].Live+ref[i].Dead || st.Dead != ref[i].Dead {
			t.Errorf("partition %d: PlanStat %+v vs PartitionStat %+v", i, st, ref[i])
		}
		if st.Paged != ix.Paged() {
			t.Errorf("partition %d: paged %v, index paged %v", i, st.Paged, ix.Paged())
		}
	}
}

func TestPlanAccessorsDoNotAllocate(t *testing.T) {
	ix, _, queries := sharedIndex(t)
	q := queries.Row(0)
	n := ix.Partitions()
	ids := make([]int, n)
	dists := make([]float32, n)
	stats := make([]PlanStat, n)
	allocs := testing.AllocsPerRun(100, func() {
		ix.RankCellsInto(q, ids, dists)
		ix.PlanStatsInto(stats)
	})
	if allocs != 0 {
		t.Errorf("plan accessors allocate %.1f per query, want 0", allocs)
	}
}
