package index

import (
	"pqfastscan/internal/quantizer"
	"pqfastscan/internal/scan"
	"pqfastscan/internal/vec"
)

// Capture is a consistent, immutable view of everything an index
// persists: the trained quantizers, the sealed per-cell partitions of
// one snapshot, and the id-allocator position. Partitions are shared
// (sealed, never mutated in place), so taking a Capture costs one
// atomic load plus a slice of pointers — cheap enough to run inside the
// durability layer's checkpoint critical section.
type Capture struct {
	Dim    int
	Coarse vec.Matrix
	PQ     *quantizer.ProductQuantizer
	Opt    Options
	Parts  []*scan.Partition
	NextID int64
}

// Capture takes a point-in-time capture of the index. The allocator is
// read after the snapshot load, so NextID is at or past every id that
// appears in Parts — a reloaded index can never re-issue one of them.
// When the caller excludes concurrent mutations (as the checkpoint path
// does), the capture is exact: it holds precisely the acknowledged
// state at the point of the call.
func (ix *Index) Capture() Capture {
	s := ix.snap.Load()
	parts := make([]*scan.Partition, len(s.Parts))
	for i, pe := range s.Parts {
		parts[i] = pe.Part
	}
	return Capture{
		Dim:    ix.Dim,
		Coarse: ix.Coarse,
		PQ:     ix.PQ,
		Opt:    ix.opt,
		Parts:  parts,
		NextID: ix.nextID.Load(),
	}
}

// RestoreCapture reassembles an Index from a Capture — the recovery-path
// counterpart of Capture, used by persist when loading a snapshot.
func RestoreCapture(cap Capture) *Index {
	return Restore(cap.Dim, cap.Coarse, cap.PQ, cap.Parts, cap.Opt, cap.NextID)
}
