package index

import (
	"pqfastscan/internal/quantizer"
	"pqfastscan/internal/scan"
	"pqfastscan/internal/vec"
)

// Capture is a consistent, immutable view of everything an index
// persists: the trained quantizers, the sealed per-cell partitions of
// one snapshot, and the id-allocator position. Partitions are shared
// (sealed, never mutated in place), so taking a Capture costs one
// atomic load plus a slice of pointers — cheap enough to run inside the
// durability layer's checkpoint critical section.
//
// On a paged index the capture pins every partition's extent and Parts
// holds hydrated views over the pinned payloads: the caller must call
// Release when done writing (persist does), after which the views are
// invalid. Pinned frames may exceed the pool capacity for the duration
// — the pool's invariant is resident ≤ capacity + pinned, and a
// checkpoint legitimately needs the whole index in flight. On a RAM
// index Release is a no-op and the capture lives forever.
type Capture struct {
	Dim    int
	Coarse vec.Matrix
	PQ     *quantizer.ProductQuantizer
	Opt    Options
	Parts  []*scan.Partition
	NextID int64

	release func()
}

// Release drops the extent pins backing a paged capture's partition
// views. Safe to call on any capture (no-op for RAM) and idempotent.
func (c *Capture) Release() {
	if c.release != nil {
		c.release()
		c.release = nil
	}
}

// Capture takes a point-in-time capture of the index. The allocator is
// read after the snapshot load, so NextID is at or past every id that
// appears in Parts — a reloaded index can never re-issue one of them.
// When the caller excludes concurrent mutations (as the checkpoint path
// does), the capture is exact: it holds precisely the acknowledged
// state at the point of the call. The error is always nil on a RAM
// index; on a paged index it surfaces a failed extent read.
func (ix *Index) Capture() (Capture, error) {
	s := ix.snap.Load()
	parts := make([]*scan.Partition, len(s.Parts))
	var releases []func()
	releaseAll := func() {
		for _, r := range releases {
			r()
		}
	}
	for i, pe := range s.Parts {
		if pe.paged != nil {
			p, _, rel, err := pe.paged.view(pe, false)
			if err != nil {
				releaseAll()
				return Capture{}, err
			}
			releases = append(releases, rel)
			parts[i] = p
			continue
		}
		parts[i] = pe.Part
	}
	cap := Capture{
		Dim:    ix.Dim,
		Coarse: ix.Coarse,
		PQ:     ix.PQ,
		Opt:    ix.opt,
		Parts:  parts,
		NextID: ix.nextID.Load(),
	}
	if len(releases) > 0 {
		cap.release = releaseAll
	}
	return cap, nil
}

// RestoreCapture reassembles an Index from a Capture — the recovery-path
// counterpart of Capture, used by persist when loading a snapshot.
func RestoreCapture(cap Capture) *Index {
	return Restore(cap.Dim, cap.Coarse, cap.PQ, cap.Parts, cap.Opt, cap.NextID)
}
