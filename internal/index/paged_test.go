package index

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"pqfastscan/internal/bufpool"
	"pqfastscan/internal/dataset"
	"pqfastscan/internal/vec"
)

// buildTwin builds two independent but identical indexes from the same
// deterministic generator configuration: one stays RAM-resident (the
// oracle), the other is attached to a disk store by the caller.
func buildTwin(t *testing.T, seed uint64, nBase int) (ram, paged *Index, queries vec.Matrix) {
	t.Helper()
	mk := func() (*Index, vec.Matrix) {
		gen := dataset.NewGenerator(dataset.Config{Seed: seed, Dim: 32})
		learn := gen.Generate(2000)
		base := gen.Generate(nBase)
		opt := DefaultOptions()
		opt.Partitions = 4
		opt.Seed = seed
		opt.FastScan.OrderGroups = true
		ix, err := Build(learn, base, opt)
		if err != nil {
			t.Fatal(err)
		}
		return ix, gen.Generate(8)
	}
	ram, queries = mk()
	paged, _ = mk()
	return ram, paged, queries
}

// allKernels spans every kernel × engine pair the paged path must
// answer bit-identically.
var pagedKernelCases = []struct {
	kernel Kernel
	engine Engine
}{
	{KernelNaive, EngineModel},
	{KernelLibpq, EngineModel},
	{KernelAVX, EngineModel},
	{KernelGather, EngineModel},
	{KernelFastScan, EngineModel},
	{KernelFastScan256, EngineModel},
	{KernelQuantOnly, EngineModel},
	{KernelNaive, EngineNative},
	{KernelFastScan, EngineNative},
	{KernelFastScan256, EngineNative},
}

// assertIdentical queries both indexes with every kernel/engine pair
// and requires byte-for-byte equal ids, distances and scan stats.
func assertIdentical(t *testing.T, ram, paged *Index, queries vec.Matrix, tag string) {
	t.Helper()
	ctx := context.Background()
	for _, tc := range pagedKernelCases {
		for qi := 0; qi < queries.Rows(); qi++ {
			req := Request{Query: queries.Row(qi), K: 10, Kernel: tc.kernel, Engine: tc.engine, NProbe: ram.Partitions()}
			want, err := ram.Query(ctx, req)
			if err != nil {
				t.Fatalf("%s: ram query (%v/%v): %v", tag, tc.kernel, tc.engine, err)
			}
			got, err := paged.Query(ctx, req)
			if err != nil {
				t.Fatalf("%s: paged query (%v/%v): %v", tag, tc.kernel, tc.engine, err)
			}
			if len(got.Results) != len(want.Results) {
				t.Fatalf("%s: %v/%v q%d: %d results, want %d", tag, tc.kernel, tc.engine, qi, len(got.Results), len(want.Results))
			}
			for i := range want.Results {
				if got.Results[i] != want.Results[i] {
					t.Fatalf("%s: %v/%v q%d result %d: %+v, want %+v", tag, tc.kernel, tc.engine, qi, i, got.Results[i], want.Results[i])
				}
			}
			if got.Stats != want.Stats {
				t.Fatalf("%s: %v/%v q%d stats %+v, want %+v", tag, tc.kernel, tc.engine, qi, got.Stats, want.Stats)
			}
		}
	}
}

// TestPagedBitIdenticalToRAM is the tentpole acceptance test: a paged
// index answers every kernel, engine and mutation state bit-identically
// to its RAM-resident twin — through tombstones, appends, compaction
// and a second attach-free index sharing the store dir.
func TestPagedBitIdenticalToRAM(t *testing.T) {
	ram, paged, queries := buildTwin(t, 808, 8000)
	if err := paged.AttachStore(t.TempDir(), 1<<30); err != nil {
		t.Fatal(err)
	}
	if !paged.Paged() || ram.Paged() {
		t.Fatal("Paged() flags wrong way around")
	}
	assertIdentical(t, ram, paged, queries, "fresh")

	// Identical mutations on both: same vectors produce the same ids
	// (same allocator position), so tombstones and appends line up.
	gen := dataset.NewGenerator(dataset.Config{Seed: 909, Dim: 32})
	batch := gen.Generate(300)
	idsRAM, err := ram.Add(batch)
	if err != nil {
		t.Fatal(err)
	}
	idsPaged, err := paged.Add(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(idsRAM) != len(idsPaged) || idsRAM[0] != idsPaged[0] {
		t.Fatalf("twin id allocation diverged: %v vs %v", idsRAM[:1], idsPaged[:1])
	}
	assertIdentical(t, ram, paged, queries, "after add")

	for i := 0; i < len(idsRAM); i += 3 {
		if err := ram.Delete(idsRAM[i]); err != nil {
			t.Fatal(err)
		}
		if err := paged.Delete(idsPaged[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Also tombstone build-time rows, exercising the paged locate build.
	for id := int64(0); id < 40; id += 7 {
		if err := ram.Delete(id); err != nil {
			t.Fatal(err)
		}
		if err := paged.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	assertIdentical(t, ram, paged, queries, "after delete")

	if _, err := ram.Compact(0); err != nil {
		t.Fatal(err)
	}
	if _, err := paged.Compact(0); err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, ram, paged, queries, "after compact")

	// Offline bridges: Parts materializes, GroupedMemoryBytes pins.
	rp, pp := ram.Parts(), paged.Parts()
	for c := range rp {
		if rp[c].N != pp[c].N || rp[c].Live() != pp[c].Live() {
			t.Fatalf("partition %d diverged: N %d/%d live %d/%d", c, rp[c].N, pp[c].N, rp[c].Live(), pp[c].Live())
		}
	}
	rpk, rrm, err := ram.GroupedMemoryBytes()
	if err != nil {
		t.Fatal(err)
	}
	ppk, prm, err := paged.GroupedMemoryBytes()
	if err != nil {
		t.Fatal(err)
	}
	if rpk != ppk || rrm != prm {
		t.Fatalf("grouped footprint diverged: packed %d/%d rowMajor %d/%d", rpk, ppk, rrm, prm)
	}
}

// TestPagedRestrictCellsSharesExtents: a restricted index over a paged
// snapshot shares extents with its parent (no copies, no second
// attach) and answers its cells bit-identically to a restricted RAM
// twin.
func TestPagedRestrictCellsSharesExtents(t *testing.T) {
	ram, paged, queries := buildTwin(t, 777, 6000)
	if err := paged.AttachStore(t.TempDir(), 1<<30); err != nil {
		t.Fatal(err)
	}
	cells := []int{0, 2}
	ramR, err := ram.RestrictCells(cells)
	if err != nil {
		t.Fatal(err)
	}
	pagedR, err := paged.RestrictCells(cells)
	if err != nil {
		t.Fatal(err)
	}
	if !pagedR.Paged() {
		t.Fatal("restricted index lost its store attachment")
	}
	assertIdentical(t, ramR, pagedR, queries, "restricted")
}

// TestPagedEvictionCorrectness is the eviction-correctness storm: the
// pool is capped at ~10% of the extent footprint, every evicted frame
// is poisoned (overwritten), and a concurrent uniform query storm must
// still answer bit-identically to the RAM oracle — proving no scan
// path ever touches an evicted or unpinned frame. Run under -race in
// CI. It also asserts the pool invariant resident <= capacity + pinned
// at every sample.
func TestPagedEvictionCorrectness(t *testing.T) {
	ram, paged, queries := buildTwin(t, 606, 12000)

	var poisonMu sync.Mutex
	poisoned := 0
	poison := func(id string, buf []byte) {
		for i := range buf {
			buf[i] = 0xDB
		}
		poisonMu.Lock()
		poisoned++
		poisonMu.Unlock()
	}
	dir := t.TempDir()
	if err := paged.attachStore(dir, 1<<30, bufpool.WithEvictHook(poison)); err != nil {
		t.Fatal(err)
	}
	st, ok := paged.StoreStats()
	if !ok {
		t.Fatal("no store stats on a paged index")
	}
	cap := st.ExtentBytes / 10
	if cap < 1 {
		cap = 1
	}
	paged.pg.SetPoolCapacity(cap)

	// Precompute oracle answers once (the RAM index is immutable here).
	ctx := context.Background()
	type key struct {
		qi     int
		kernel Kernel
	}
	kernels := []Kernel{KernelNaive, KernelFastScan, KernelFastScan256}
	oracle := make(map[key]*Response)
	for qi := 0; qi < queries.Rows(); qi++ {
		for _, k := range kernels {
			req := Request{Query: queries.Row(qi), K: 10, Kernel: k, Engine: EngineNative, NProbe: ram.Partitions()}
			resp, err := ram.Query(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			oracle[key{qi, k}] = resp
		}
	}

	const workers = 8
	const itersPerWorker = 60
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < itersPerWorker; it++ {
				qi := (w + it) % queries.Rows()
				k := kernels[(w*itersPerWorker+it)%len(kernels)]
				req := Request{Query: queries.Row(qi), K: 10, Kernel: k, Engine: EngineNative, NProbe: ram.Partitions()}
				got, err := paged.Query(ctx, req)
				if err != nil {
					errc <- err
					return
				}
				want := oracle[key{qi, k}]
				for i := range want.Results {
					if got.Results[i] != want.Results[i] {
						errc <- fmt.Errorf("worker %d iter %d kernel %v q%d: result %d = %+v, want %+v (scan read an evicted frame?)",
							w, it, k, qi, i, got.Results[i], want.Results[i])
						return
					}
				}
				ps := paged.pg.PoolStats()
				if ps.ResidentBytes > ps.CapacityBytes+ps.PinnedBytes {
					errc <- fmt.Errorf("pool invariant violated: resident %d > capacity %d + pinned %d",
						ps.ResidentBytes, ps.CapacityBytes, ps.PinnedBytes)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	ps := paged.pg.PoolStats()
	if ps.Evictions == 0 {
		t.Fatalf("storm at 10%% capacity never evicted (capacity %d, resident %d): test is vacuous", ps.CapacityBytes, ps.ResidentBytes)
	}
	poisonMu.Lock()
	defer poisonMu.Unlock()
	if poisoned == 0 {
		t.Fatal("eviction hook never ran")
	}
	t.Logf("storm: %d evictions, %d poisoned frames, hits %d misses %d", ps.Evictions, poisoned, ps.Hits, ps.Misses)
}

// TestPagedMutationStorm: concurrent searchers over a paged index while
// a mutator applies the same Add/Delete/Compact sequence to the paged
// index and a RAM twin in lockstep. Searches during the storm must
// never error (every epoch transition stays consistent); after
// quiescing, the twins must agree bit-for-bit.
func TestPagedMutationStorm(t *testing.T) {
	ram, paged, queries := buildTwin(t, 505, 6000)
	if err := paged.AttachStore(t.TempDir(), 1<<22); err != nil { // 4 MiB: evictions during the storm
		t.Fatal(err)
	}

	ctx := context.Background()
	stop := make(chan struct{})
	errc := make(chan error, 5)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kernels := []Kernel{KernelFastScan, KernelNaive, KernelFastScan256}
			for it := 0; ; it++ {
				select {
				case <-stop:
					return
				default:
				}
				req := Request{
					Query:  queries.Row((w + it) % queries.Rows()),
					K:      5,
					Kernel: kernels[it%len(kernels)],
					Engine: EngineNative,
					NProbe: paged.Partitions(),
				}
				if _, err := paged.Query(ctx, req); err != nil {
					errc <- fmt.Errorf("search during mutation storm: %w", err)
					return
				}
			}
		}(w)
	}

	// Lockstep mutator: both twins see the identical op sequence, so
	// their final states must match exactly.
	gen := dataset.NewGenerator(dataset.Config{Seed: 515, Dim: 32})
	for round := 0; round < 6; round++ {
		batch := gen.Generate(120)
		ids, err := ram.Add(batch)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := paged.Add(batch); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(ids); i += 2 {
			if err := ram.Delete(ids[i]); err != nil {
				t.Fatal(err)
			}
			if err := paged.Delete(ids[i]); err != nil {
				t.Fatal(err)
			}
		}
		if round%2 == 1 {
			if _, err := ram.Compact(0); err != nil {
				t.Fatal(err)
			}
			if _, err := paged.Compact(0); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	assertIdentical(t, ram, paged, queries, "post-storm")
}
