package index

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pqfastscan/internal/dataset"
	"pqfastscan/internal/topk"
	"pqfastscan/internal/vec"
)

// TestMutateUnderQuerySoak is the epoch-consistency soak of the
// lock-free read path: concurrent Add / Delete / Search / compaction
// traffic (run under -race in CI's soak job), with two classes of
// assertion.
//
// During the storm, every search must observe *some* consistent epoch:
// no error, results sorted by distance, no duplicate ids, and no id
// outside the set of ids that were ever allocated — a torn partition
// (half-published codes, a scanner over swapped-out state) would break
// at least one of these.
//
// After the storm quiesces, the index must agree exactly — ids and
// distances — with a serial oracle: the expected live set is replayed
// single-threaded (route + encode every surviving vector through the
// trained quantizers, exactly what Add does) and its full-probe exact
// top-k is computed from the distance tables alone. Recall is therefore
// not merely "unchanged": the concurrent index's answers are
// bit-identical to the serial ground truth.
func TestMutateUnderQuerySoak(t *testing.T) {
	gen := dataset.NewGenerator(dataset.Config{Seed: 404, Dim: 32})
	learn := gen.Generate(2000)
	base := gen.Generate(6000)
	opt := DefaultOptions()
	opt.Partitions = 4
	opt.Seed = 404
	opt.FastScan.OrderGroups = true
	ix, err := Build(learn, base, opt)
	if err != nil {
		t.Fatal(err)
	}
	queries := gen.Generate(6)
	ctx := context.Background()

	// Warm the Fast Scan layouts so mutations exercise the
	// clone-and-repack path from the first round.
	if _, err := ix.Query(ctx, Request{Query: queries.Row(0), K: 5, Kernel: KernelFastScan, NProbe: opt.Partitions}); err != nil {
		t.Fatal(err)
	}

	const (
		adders       = 2
		addsPerAdder = 40
		addBatch     = 25
		searchers    = 4
	)
	// Each adder generates from its own deterministic stream and records
	// id -> vector for the oracle replay.
	type addRecord struct {
		ids  []int64
		vecs vec.Matrix
	}
	records := make([]addRecord, adders)
	addedIDs := make(chan int64, adders*addsPerAdder*addBatch)

	var (
		wg         sync.WaitGroup
		firstErr   atomic.Value
		deletedMu  sync.Mutex
		deletedIDs = make(map[int64]bool)
		stop       = make(chan struct{})
	)
	fail := func(err error) { firstErr.CompareAndSwap(nil, err) }

	for a := 0; a < adders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			sub := dataset.NewGenerator(dataset.Config{Seed: 9000 + uint64(a), Dim: 32})
			all := vec.NewMatrix(addsPerAdder*addBatch, 32)
			var ids []int64
			for i := 0; i < addsPerAdder; i++ {
				batch := sub.Generate(addBatch)
				copy(all.Data[i*addBatch*32:], batch.Data)
				got, err := ix.Add(batch)
				if err != nil {
					fail(err)
					return
				}
				ids = append(ids, got...)
				for _, id := range got {
					addedIDs <- id
				}
			}
			records[a] = addRecord{ids: ids, vecs: all}
		}(a)
	}

	// Deleter: tombstone a stride of build-time ids plus a sample of the
	// freshly added ones, and intersperse deletes that must fail.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := int64(0); id < int64(base.Rows()); id += 9 {
			if err := ix.Delete(id); err != nil {
				fail(err)
				return
			}
			deletedMu.Lock()
			deletedIDs[id] = true
			deletedMu.Unlock()
			if id%81 == 0 {
				// Never-assigned ids must keep reporting ErrNotFound even
				// mid-storm.
				if err := ix.Delete(1 << 40); err == nil {
					fail(errNotFoundExpected)
					return
				}
			}
		}
		// Receive with a timeout rather than ranging: if an adder fails
		// and sends fewer ids than expected, the deleter must exit and
		// let the test report the adder's error instead of deadlocking
		// the storm (addedIDs is only closed after every worker joins).
		timeout := time.After(30 * time.Second)
		for taken := 0; taken < adders*addsPerAdder*addBatch/2; taken++ {
			var id int64
			select {
			case id = <-addedIDs:
			case <-timeout:
				return
			}
			if taken%4 == 0 {
				if err := ix.Delete(id); err != nil {
					fail(err)
					return
				}
				deletedMu.Lock()
				deletedIDs[id] = true
				deletedMu.Unlock()
			}
		}
	}()

	// Compactor: reclaim continuously while the storm runs. It joins its
	// own WaitGroup — stop is closed once the adders, deleter and
	// searchers drain, so it cannot be inside the group it waits on.
	var compactorWG sync.WaitGroup
	compactorWG.Add(1)
	go func() {
		defer compactorWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := ix.Compact(0.01); err != nil {
				fail(err)
				return
			}
		}
	}()

	// Searchers: every result set must be internally consistent.
	maxEverID := int64(base.Rows() + adders*addsPerAdder*addBatch)
	for w := 0; w < searchers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kernels := []Kernel{KernelFastScan, KernelNaive, KernelLibpq, KernelFastScan256}
			engines := []Engine{EngineNative, EngineModel}
			for i := 0; i < 60; i++ {
				req := Request{
					Query:  queries.Row((w + i) % queries.Rows()),
					K:      20,
					Kernel: kernels[(w+i)%len(kernels)],
					Engine: engines[i%len(engines)],
					NProbe: 1 + (w+i)%opt.Partitions,
				}
				resp, err := ix.Query(ctx, req)
				if err != nil {
					fail(err)
					return
				}
				seen := make(map[int64]bool, len(resp.Results))
				for r, res := range resp.Results {
					if r > 0 && res.Distance < resp.Results[r-1].Distance {
						fail(errUnsorted)
						return
					}
					if seen[res.ID] {
						fail(errDuplicate)
						return
					}
					seen[res.ID] = true
					if res.ID < 0 || res.ID >= maxEverID {
						fail(errUnknownID)
						return
					}
				}
			}
		}(w)
	}

	wg.Wait()
	close(stop)
	compactorWG.Wait()
	close(addedIDs)
	if err := firstErr.Load(); err != nil {
		t.Fatal(err)
	}

	// One final sweep so the quiesced index also holds zero tombstones.
	if _, err := ix.Compact(0); err != nil {
		t.Fatal(err)
	}
	for _, st := range ix.PartitionStats() {
		if st.Dead != 0 {
			t.Fatalf("partition %d holds %d tombstones after final compaction", st.Partition, st.Dead)
		}
		if st.Live != ix.Parts()[st.Partition].N {
			t.Fatalf("partition %d stat live %d != partition rows %d", st.Partition, st.Live, ix.Parts()[st.Partition].N)
		}
	}

	// --- Serial oracle -------------------------------------------------
	// Replay the surviving vector set single-threaded: every live id with
	// its vector, routed and encoded through the trained quantizers.
	type liveVec struct {
		id  int64
		row []float32
	}
	var live []liveVec
	for id := int64(0); id < int64(base.Rows()); id++ {
		if !deletedIDs[id] {
			live = append(live, liveVec{id: id, row: base.Row(int(id))})
		}
	}
	for _, rec := range records {
		for i, id := range rec.ids {
			if !deletedIDs[id] {
				live = append(live, liveVec{id: id, row: rec.vecs.Row(i)})
			}
		}
	}
	if got := ix.Live(); got != len(live) {
		t.Fatalf("Live() = %d after storm, oracle has %d survivors", got, len(live))
	}

	cells := make([]int, len(live))
	codes := make([][]uint8, len(live))
	residual := make([]float32, 32)
	for i, lv := range live {
		c, _ := vec.ArgminL2(lv.row, ix.Coarse.Data, 32)
		cells[i] = c
		cRow := ix.Coarse.Row(c)
		for d, v := range lv.row {
			residual[d] = v - cRow[d]
		}
		code := make([]uint8, ix.PQ.M)
		ix.PQ.Encode(residual, code)
		codes[i] = code
	}

	const k = 30
	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.Row(qi)
		// Oracle: exact full-probe ADC top-k from the distance tables.
		heap := topk.New(k)
		tables := make(map[int][]float32)
		for i := range live {
			c := cells[i]
			tab, ok := tables[c]
			if !ok {
				tt := ix.Tables(q, c)
				tab = tt.Data
				tables[c] = tab
			}
			var d float32
			for j := 0; j < ix.PQ.M; j++ {
				d += tab[j*256+int(codes[i][j])]
			}
			heap.Push(live[i].id, d)
		}
		want := heap.Results()

		for _, eng := range []Engine{EngineNative, EngineModel} {
			for _, kern := range []Kernel{KernelNaive, KernelFastScan} {
				resp, err := ix.Query(ctx, Request{Query: q, K: k, Kernel: kern, Engine: eng, NProbe: opt.Partitions})
				if err != nil {
					t.Fatal(err)
				}
				if len(resp.Results) != len(want) {
					t.Fatalf("query %d %v/%v: %d results, oracle %d", qi, kern, eng, len(resp.Results), len(want))
				}
				for r := range want {
					if resp.Results[r] != want[r] {
						t.Fatalf("query %d %v/%v rank %d: index %+v, serial oracle %+v",
							qi, kern, eng, r, resp.Results[r], want[r])
					}
				}
			}
		}
	}
}

// Sentinel errors for the soak's lock-free assertions (allocating
// formatted errors inside the hot loops would perturb timing).
var (
	errNotFoundExpected = errSoak("delete of never-assigned id succeeded mid-storm")
	errUnsorted         = errSoak("search results not sorted by distance")
	errDuplicate        = errSoak("duplicate id in one result set")
	errUnknownID        = errSoak("result id outside every allocated range")
)

type errSoak string

func (e errSoak) Error() string { return string(e) }
