// Package index implements the IVFADC search system of the paper's §2.2:
// a coarse quantizer partitions the database into inverted lists (its
// Voronoi cells); a query is routed to its cell, per-query distance
// tables are computed from the query residual, and the partition is
// scanned with one of the kernels of internal/scan (Algorithm 1).
//
// Residual encoding follows Jégou et al. [14]: each database vector is
// encoded as the pqcode of x - c(x), where c(x) is its coarse centroid,
// and the product quantizer is trained on residuals.
package index

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pqfastscan/internal/kmeans"
	"pqfastscan/internal/layout"
	"pqfastscan/internal/par"
	"pqfastscan/internal/quantizer"
	"pqfastscan/internal/scan"
	"pqfastscan/internal/simd/dispatch"
	"pqfastscan/internal/topk"
	"pqfastscan/internal/vec"
)

// Backend selects the native engine's block-kernel implementation: the
// hand-written assembly kernels (asm-avx2 on amd64, asm-neon on arm64)
// or the portable SWAR fallback. The zero value BackendAuto defers to
// the startup feature detection (dispatch.Active), overridable with the
// PQ_FORCE_BACKEND environment variable. All backends return
// bit-identical results and statistics (DESIGN.md §12); the model
// engine has no backends — it models instructions instead of running
// them.
type Backend = dispatch.Backend

const (
	BackendAuto = dispatch.Auto
	BackendSWAR = dispatch.SWAR
	BackendAVX2 = dispatch.AVX2
	BackendNEON = dispatch.NEON
)

// ActiveBackend returns the backend the native engine selected at
// startup (never BackendAuto).
func ActiveBackend() Backend { return dispatch.Active() }

// AvailableBackends lists the concrete backends this machine can run,
// preferred first.
func AvailableBackends() []Backend { return dispatch.AvailableBackends() }

// ParseBackend resolves a backend by its String name (auto, swar,
// asm-avx2, asm-neon).
func ParseBackend(name string) (Backend, error) { return dispatch.Parse(name) }

// CPUFeatures lists the SIMD features backend selection detected.
func CPUFeatures() []string { return dispatch.Features() }

// BackendInitNote reports what happened to a PQ_FORCE_BACKEND override
// that could not be honored ("" when selection was clean) — deployments
// log it so a silent fallback to SWAR cannot go unnoticed.
func BackendInitNote() string { return dispatch.InitNote() }

// Engine selects the execution engine a kernel runs on. The two engines
// execute the same §4 algorithm and return bit-identical result sets
// (DESIGN.md §9, "Two engines, one algorithm"); they differ in what they
// optimize for.
type Engine int

const (
	// EngineModel executes kernels through internal/simd, the bit-exact
	// software model of the paper's SIMD instruction subset, and counts
	// every dynamic operation (Stats.Ops) for internal/perf pricing. It
	// is the reference and metrology path — and the zero value, so
	// pre-engine callers of the internal query API keep their exact
	// behaviour, instruction counts included.
	EngineModel Engine = iota
	// EngineNative executes kernels with real Go performance techniques
	// (uint64 SWAR lanes, flat tables, reusable scratch buffers) for
	// wall-clock speed. It fills the vector/block counters of Stats but
	// not Stats.Ops. The public facade defaults to this engine.
	EngineNative
)

// String names the engine for logs and benchmark labels.
func (e Engine) String() string {
	switch e {
	case EngineModel:
		return "model"
	case EngineNative:
		return "native"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// Kernel selects the scan implementation used for a search.
type Kernel int

const (
	// KernelNaive is Algorithm 1 verbatim.
	KernelNaive Kernel = iota
	// KernelLibpq is the libpq-optimized PQ Scan.
	KernelLibpq
	// KernelAVX is the vertical-SIMD-additions PQ Scan variant.
	KernelAVX
	// KernelGather is the SIMD-gather PQ Scan variant.
	KernelGather
	// KernelFastScan is PQ Fast Scan (§4).
	KernelFastScan
	// KernelQuantOnly is the quantization-only ablation (§5.5).
	KernelQuantOnly
	// KernelFastScan256 is the AVX2 widening of PQ Fast Scan (§6
	// extension): 32 lookups per shuffle instruction.
	KernelFastScan256
)

// String names the kernel with the labels used in the paper's figures.
func (k Kernel) String() string {
	switch k {
	case KernelNaive:
		return "naive"
	case KernelLibpq:
		return "libpq"
	case KernelAVX:
		return "avx"
	case KernelGather:
		return "gather"
	case KernelFastScan:
		return "fastpq"
	case KernelQuantOnly:
		return "quantonly"
	case KernelFastScan256:
		return "fastpq256"
	default:
		return fmt.Sprintf("kernel(%d)", int(k))
	}
}

// Options configures index construction.
type Options struct {
	// Partitions is the number of coarse-quantizer cells (8 for the
	// paper's ANN_SIFT100M1 index, 128 for ANN_SIFT1B).
	Partitions int
	// PQ is the product quantizer configuration (PQ 8×8 by default).
	PQ quantizer.Config
	// Seed drives every stochastic step deterministically.
	Seed uint64
	// KMeansIter bounds coarse and sub-quantizer training iterations.
	KMeansIter int
	// OptimizeAssignment applies the §4.3 optimized centroid index
	// assignment after PQ training. Disable only for the Figure 11
	// ablation; PQ Scan results are unaffected either way.
	OptimizeAssignment bool
	// FastScan configures the PQ Fast Scan layout built per partition.
	FastScan scan.FastScanOptions
}

// DefaultOptions returns the paper's default setup.
func DefaultOptions() Options {
	return Options{
		Partitions:         8,
		PQ:                 quantizer.PQ8x8,
		KMeansIter:         20,
		OptimizeAssignment: true,
		FastScan: scan.FastScanOptions{
			Keep:            scan.DefaultKeep,
			GroupComponents: -1,
		},
	}
}

// Index is a built IVFADC index. It is safe for concurrent use without
// any reader lock: queries atomically load an immutable Snapshot of
// per-partition epochs and scan it lock-free, while Add, Delete and
// compaction build replacement partitions copy-on-write and publish them
// with a single pointer swap. A mutation contends only with other
// mutations of the same partition, never with queries (snapshot.go).
type Index struct {
	Dim    int
	Coarse vec.Matrix // Partitions x Dim coarse centroids
	PQ     *quantizer.ProductQuantizer

	opt Options

	// snap is the serving state: the current immutable snapshot.
	snap atomic.Pointer[Snapshot]
	// epoch numbers every publish, monotonically.
	epoch atomic.Uint64
	// partMu[c] serializes builders of partition c's next epoch.
	partMu []sync.Mutex
	// nextID is the id allocator; Add reserves contiguous blocks.
	nextID atomic.Int64
	// locate maps live id -> partition for Delete routing. Built lazily
	// on first Delete, maintained by Add; guarded by locateMu (a
	// mutation-path lock — queries never touch it).
	locateMu sync.Mutex
	locate   map[int64]int

	// pg, when non-nil, is the attached disk store (paging.go): epochs
	// are stubs over extents and probes pin payloads through pg's pool.
	// Written once under all partition builder locks (AttachStore);
	// pgInst distinguishes this index's extent names within a shared
	// store directory.
	pg     *Paging
	pgInst uint64
}

// Build trains the coarse quantizer and product quantizer on learn and
// indexes every row of base. learn and base must share base.Dim.
func Build(learn, base vec.Matrix, opt Options) (*Index, error) {
	if opt.Partitions <= 0 {
		return nil, fmt.Errorf("index: partition count %d must be positive", opt.Partitions)
	}
	if learn.Dim != base.Dim {
		return nil, fmt.Errorf("index: learn dim %d != base dim %d", learn.Dim, base.Dim)
	}
	if opt.PQ.M == 0 {
		opt.PQ = quantizer.PQ8x8
	}

	// Step 1: coarse quantizer (the inverted index of §2.2).
	coarse, err := kmeans.Train(learn, kmeans.Config{
		K: opt.Partitions, MaxIter: opt.KMeansIter, Seed: opt.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("index: coarse quantizer: %w", err)
	}

	// Step 2: product quantizer on learn-set residuals.
	residuals := vec.NewMatrix(learn.Rows(), learn.Dim)
	for i := 0; i < learn.Rows(); i++ {
		c, _ := vec.ArgminL2(learn.Row(i), coarse.Centroids.Data, learn.Dim)
		dst := residuals.Row(i)
		cRow := coarse.Centroids.Row(c)
		for d, v := range learn.Row(i) {
			dst[d] = v - cRow[d]
		}
	}
	pq, err := quantizer.Train(residuals, opt.PQ, quantizer.TrainOptions{
		MaxIter: opt.KMeansIter, Seed: opt.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("index: product quantizer: %w", err)
	}
	if opt.OptimizeAssignment {
		if _, err := pq.OptimizeAssignment(opt.Seed + 2); err != nil {
			return nil, fmt.Errorf("index: optimized assignment: %w", err)
		}
	}

	ix := &Index{
		Dim:    base.Dim,
		Coarse: coarse.Centroids,
		PQ:     pq,
		opt:    opt,
	}

	// Step 3: route and encode the base set. Encoding is embarrassingly
	// parallel and dominates construction time, so it is chunked over
	// cores (offline preprocessing; queries remain single-threaded).
	n := base.Rows()
	cells := make([]int, n)
	allCodes := make([]uint8, n*pq.M)
	par.ForChunk(n, func(lo, hi int) {
		residual := make([]float32, base.Dim)
		for i := lo; i < hi; i++ {
			row := base.Row(i)
			c, _ := vec.ArgminL2(row, coarse.Centroids.Data, base.Dim)
			cells[i] = c
			cRow := coarse.Centroids.Row(c)
			for d, v := range row {
				residual[d] = v - cRow[d]
			}
			pq.Encode(residual, allCodes[i*pq.M:(i+1)*pq.M])
		}
	})
	type bucket struct {
		codes []uint8
		ids   []int64
	}
	buckets := make([]bucket, opt.Partitions)
	for i := 0; i < n; i++ {
		c := cells[i]
		buckets[c].codes = append(buckets[c].codes, allCodes[i*pq.M:(i+1)*pq.M]...)
		buckets[c].ids = append(buckets[c].ids, int64(i))
	}
	parts := make([]*scan.Partition, opt.Partitions)
	for c := range buckets {
		parts[c] = scan.NewPartitionW(buckets[c].codes, buckets[c].ids, pq.M)
	}
	ix.install(parts)
	ix.nextID.Store(int64(n))
	return ix, nil
}

// Options returns the options the index was built (or loaded) with.
func (ix *Index) Options() Options { return ix.opt }

// CompatibleWith reports whether next can transparently replace ix under
// live query traffic — the guard behind the façade's hot snapshot Swap.
// Compatible means queries valid against ix stay valid against next:
// same vector dimensionality, same PQ shape, and same partition count
// (an nprobe that was in range must stay in range). Trained centroid
// values are deliberately not compared; swapping in a retrained index
// over fresh data is the point of the operation.
func (ix *Index) CompatibleWith(next *Index) error {
	if next == nil {
		return fmt.Errorf("index: nil replacement index")
	}
	if ix.Dim != next.Dim {
		return fmt.Errorf("index: replacement dim %d != serving dim %d", next.Dim, ix.Dim)
	}
	if ix.PQ.Config != next.PQ.Config {
		return fmt.Errorf("index: replacement PQ %v != serving PQ %v", next.PQ.Config, ix.PQ.Config)
	}
	if ix.Partitions() != next.Partitions() {
		return fmt.Errorf("index: replacement has %d partitions, serving index %d (in-range nprobe requests would start failing)", next.Partitions(), ix.Partitions())
	}
	return nil
}

// Restore reassembles an Index from its persisted parts; used by the
// persist package. The caller guarantees consistency of the components.
// nextID seeds the id allocator for future Add calls; pass a negative
// value (format v1 files carry none) to recompute it as max(id)+1 over
// all partitions.
func Restore(dim int, coarse vec.Matrix, pq *quantizer.ProductQuantizer, parts []*scan.Partition, opt Options, nextID int64) *Index {
	if nextID < 0 {
		for _, p := range parts {
			for i := 0; i < p.N; i++ {
				if id := p.ID(i); id >= nextID {
					nextID = id + 1
				}
			}
		}
		if nextID < 0 {
			nextID = 0
		}
	}
	ix := &Index{
		Dim:    dim,
		Coarse: coarse,
		PQ:     pq,
		opt:    opt,
	}
	ix.install(parts)
	ix.nextID.Store(nextID)
	return ix
}

// RestrictCells returns a new index over the same trained quantizers
// serving only the listed coarse cells: kept partitions share their
// sealed data with the receiver's current snapshot, every other cell
// becomes empty. The cell count, centroids and id allocator are
// unchanged, so cell numbering — and therefore routing, Tables and
// distances — stays global: a shard holding cells {2,5} of an 8-cell
// index answers exactly what a full index answers for those cells.
// This is the in-process counterpart of persist.LoadIndexCells, used
// by pqserve -cells over -synthetic builds and by cluster benchmarks.
func (ix *Index) RestrictCells(cells []int) (*Index, error) {
	s := ix.snap.Load()
	keep := make([]bool, len(s.Parts))
	for _, c := range cells {
		if c < 0 || c >= len(s.Parts) {
			return nil, fmt.Errorf("index: cell %d out of range [0,%d)", c, len(s.Parts))
		}
		keep[c] = true
	}
	out := &Index{
		Dim:    ix.Dim,
		Coarse: ix.Coarse,
		PQ:     ix.PQ,
		opt:    ix.opt,
		pg:     ix.pg,
		pgInst: ix.pgInst,
	}
	// Kept cells share the receiver's sealed epochs wholesale — data,
	// cached Fast Scan state and (for a paged index) the extent handle,
	// so a restricted shard of a disk-resident index pages through the
	// same pool without rewriting a byte.
	pes := make([]*PartEpoch, len(s.Parts))
	for i, pe := range s.Parts {
		if keep[i] {
			npe := &PartEpoch{Part: pe.Part, Epoch: out.epoch.Add(1), paged: pe.paged}
			if fs := pe.fast.Load(); fs != nil {
				npe.fast.Store(fs)
			}
			pes[i] = npe
		} else {
			pes[i] = &PartEpoch{Part: scan.NewPartitionW(nil, nil, ix.PQ.M), Epoch: out.epoch.Add(1)}
		}
	}
	out.partMu = make([]sync.Mutex, len(pes))
	out.snap.Store(&Snapshot{Parts: pes})
	out.nextID.Store(ix.nextID.Load())
	return out, nil
}

// PartitionSizes returns the vector count of every partition (Table 3).
func (ix *Index) PartitionSizes() []int {
	s := ix.snap.Load()
	sizes := make([]int, len(s.Parts))
	for i, pe := range s.Parts {
		sizes[i] = pe.Part.N
	}
	return sizes
}

// RoutePartition returns the coarse cell the query falls in (Step 1 of
// Algorithm 1).
func (ix *Index) RoutePartition(query []float32) int {
	c, _ := vec.ArgminL2(query, ix.Coarse.Data, ix.Dim)
	return c
}

// Tables computes the per-query distance tables for scanning partition
// part (Step 2 of Algorithm 1), using the query residual against that
// partition's coarse centroid.
func (ix *Index) Tables(query []float32, part int) quantizer.Tables {
	residual := make([]float32, ix.Dim)
	cRow := ix.Coarse.Row(part)
	for d, v := range query {
		residual[d] = v - cRow[d]
	}
	return ix.PQ.DistanceTables(residual)
}

// FastScanner returns (building on first use) the PQ Fast Scan state of
// partition part in the current snapshot. The cache lives on the
// partition's epoch, so a scanner can never describe codes other than
// the ones the snapshot serves; once the epoch is replaced, its scanner
// becomes unreachable together with it.
func (ix *Index) FastScanner(part int) (*scan.FastScan, error) {
	s := ix.snap.Load()
	if part < 0 || part >= len(s.Parts) {
		return nil, fmt.Errorf("index: partition %d out of range", part)
	}
	pe := s.Parts[part]
	if pe.paged != nil {
		// Offline/tooling path on a paged index: materialize a RAM copy
		// and build a scanner over it, so the returned layout has no pin
		// lifetime. The serving scan path never comes through here — it
		// uses transient hydrated views inside searchPartition.
		p, err := ix.materializePart(pe)
		if err != nil {
			return nil, err
		}
		return scan.NewFastScan(p, ix.opt.FastScan)
	}
	return pe.FastScanner(ix.opt.FastScan)
}

// Result is re-exported for callers that only import index.
type Result = topk.Result

// Search answers a k-NN query with the requested kernel, scanning the
// single most relevant partition (Step 3 of Algorithm 1). It returns the
// neighbors, the scan statistics and the partition scanned.
//
// Deprecated wrapper kept for in-package tests and low-level callers;
// new code should use Query, which adds context cancellation.
func (ix *Index) Search(query []float32, k int, kernel Kernel) ([]Result, scan.Stats, int, error) {
	resp, err := ix.Query(context.Background(), Request{Query: query, K: k, Kernel: kernel})
	if err != nil {
		return nil, scan.Stats{}, 0, err
	}
	return resp.Results, resp.Stats, resp.Partitions[0], nil
}

// SearchPartition scans one specific partition for the query on the
// model engine. It is the lock-free scan core; Query wraps it with
// routing, validation and engine selection.
func (ix *Index) SearchPartition(query []float32, k int, kernel Kernel, part int) ([]Result, scan.Stats, error) {
	return ix.SearchPartitionEngine(query, k, kernel, EngineModel, part)
}

// scratchPool recycles the native engine's per-scan buffers across
// queries and goroutines, keeping the steady-state scan loop free of
// allocations without tying a Scratch to any one Searcher.
var scratchPool = sync.Pool{New: func() any { return scan.NewScratch() }}

// SearchPartitionEngine scans one specific partition for the query with
// an explicit kernel and engine choice, against the current snapshot.
// Both engines return bit-identical result sets; only the model engine
// fills Stats.Ops.
func (ix *Index) SearchPartitionEngine(query []float32, k int, kernel Kernel, engine Engine, part int) ([]Result, scan.Stats, error) {
	return ix.searchPartition(ix.snap.Load(), Request{Query: query, K: k, Kernel: kernel, Engine: engine}, part)
}

// searchPartition scans one partition of an explicitly held snapshot —
// the lock-free scan core every query path funnels through. Threading
// the snapshot (instead of reloading it) keeps one logical query on one
// consistent view across multi-probe cells and batch workers.
//
// On the native engine the four exact-scan kernel selections (naive,
// libpq, avx, gather) share one tuned implementation and the two Fast
// Scan widths share one block kernel — the backend selected by
// internal/simd/dispatch (req.Backend, defaulting to the startup
// feature detection): assembly on capable hardware, SWAR otherwise. The
// kernels differ in which hardware technique they model, which is
// meaningful only under the instruction-counting engine. The
// quantization-only ablation is a diagnostic of the model path and runs
// there on either engine.
func (ix *Index) searchPartition(s *Snapshot, req Request, part int) ([]Result, scan.Stats, error) {
	query, k, kernel, engine := req.Query, req.K, req.Kernel, req.Engine
	if part < 0 || part >= len(s.Parts) {
		return nil, scan.Stats{}, fmt.Errorf("index: partition %d out of range", part)
	}
	t := ix.Tables(query, part)
	pe := s.Parts[part]

	// Feed the scan's wall-clock cost back into the planner's EWMA
	// (internal/scan), classed by execution path and residency. The
	// clock starts before the paged view below so a disk-backed probe's
	// observation includes the pin/fault/hydrate tax — that tax is the
	// planner's whole reason to track paged scans separately.
	paged := pe.paged != nil
	var costClass scan.CostClass
	switch {
	case engine == EngineNative && (kernel == KernelFastScan || kernel == KernelFastScan256):
		costClass = scan.FastClassFor(req.Backend)
	case engine == EngineNative && kernel != KernelQuantOnly:
		costClass = scan.CostExact
	default:
		costClass = scan.CostModel
	}
	start := time.Now()
	defer func() { scan.ObserveScan(costClass, paged, pe.Part.N, time.Since(start)) }()

	// Acquire the epoch's scannable view. RAM epochs hand out their
	// sealed slices directly; disk-resident epochs pin their extent in
	// the buffer pool and hydrate transient views over the pinned
	// payload, released when the scan returns — a probe pins only the
	// partitions it actually visits, for exactly as long as it scans
	// them. Result slices are copied out before release on every path,
	// so nothing aliases the pool frame after the pin drops.
	needFast := kernel == KernelFastScan || kernel == KernelFastScan256
	p := pe.Part
	var pagedFast *scan.FastScan
	if pe.paged != nil {
		hp, hfs, release, err := pe.paged.view(pe, needFast)
		if err != nil {
			return nil, scan.Stats{}, err
		}
		defer release()
		p, pagedFast = hp, hfs
	}
	fastScanner := func() (*scan.FastScan, error) {
		if pe.paged != nil {
			return pagedFast, nil
		}
		return pe.FastScanner(ix.opt.FastScan)
	}

	if engine == EngineNative {
		switch kernel {
		case KernelNaive, KernelLibpq, KernelAVX, KernelGather:
			sc := scratchPool.Get().(*scan.Scratch)
			r, st := scan.ExactNative(p, t, k, sc)
			out := append([]Result(nil), r...) // r aliases the pooled scratch
			scratchPool.Put(sc)
			return out, st, nil
		case KernelFastScan, KernelFastScan256:
			fs, err := fastScanner()
			if err != nil {
				return nil, scan.Stats{}, err
			}
			sc := scratchPool.Get().(*scan.Scratch)
			r, st := fs.ScanNativeBackend(t, k, sc, req.Backend)
			out := append([]Result(nil), r...)
			scratchPool.Put(sc)
			return out, st, nil
		}
		// KernelQuantOnly (and unknown kernels) fall through to the
		// model dispatch below.
	}
	switch kernel {
	case KernelNaive:
		r, st := scan.Naive(p, t, k)
		return r, st, nil
	case KernelLibpq:
		r, st := scan.Libpq(p, t, k)
		return r, st, nil
	case KernelAVX:
		r, st := scan.AVX(p, t, k)
		return r, st, nil
	case KernelGather:
		r, st := scan.Gather(p, t, k)
		return r, st, nil
	case KernelFastScan:
		fs, err := fastScanner()
		if err != nil {
			return nil, scan.Stats{}, err
		}
		r, st := fs.Scan(t, k)
		return r, st, nil
	case KernelQuantOnly:
		r, st := scan.QuantizationOnly(p, t, k, ix.opt.FastScan.Keep)
		return r, st, nil
	case KernelFastScan256:
		fs, err := fastScanner()
		if err != nil {
			return nil, scan.Stats{}, err
		}
		r, st := fs.Scan256(t, k)
		return r, st, nil
	default:
		return nil, scan.Stats{}, fmt.Errorf("index: unknown kernel %v", kernel)
	}
}

// SearchMulti scans the nprobe closest partitions and merges their
// results — a standard IVFADC extension beyond the paper's single-cell
// routing, useful when recall matters more than latency.
//
// Deprecated wrapper over Query; new code should pass NProbe in a
// Request and gain context cancellation.
func (ix *Index) SearchMulti(query []float32, k, nprobe int, kernel Kernel) ([]Result, scan.Stats, error) {
	// An explicit nprobe of 0 is a caller error here; only Request uses 0
	// to mean "default single probe".
	if nprobe <= 0 {
		return nil, scan.Stats{}, fmt.Errorf("index: nprobe %d out of range [1,%d]", nprobe, ix.Partitions())
	}
	resp, err := ix.Query(context.Background(), Request{Query: query, K: k, Kernel: kernel, NProbe: nprobe})
	if err != nil {
		return nil, scan.Stats{}, err
	}
	return resp.Results, resp.Stats, nil
}

// SearchBatch answers many queries concurrently, one goroutine per core.
//
// Deprecated wrapper over QueryBatch; new code should use QueryBatch,
// which adds context cancellation and per-query statistics.
func (ix *Index) SearchBatch(queries vec.Matrix, k int, kernel Kernel) ([][]Result, error) {
	resps, err := ix.QueryBatch(context.Background(), queries, Request{K: k, Kernel: kernel})
	if err != nil {
		return nil, err
	}
	out := make([][]Result, len(resps))
	for i, r := range resps {
		out[i] = r.Results
	}
	return out, nil
}

// GroupedMemoryBytes returns the packed grouped-layout footprint across
// all partitions (Figure 20's memory-use comparison) along with the
// row-major baseline.
func (ix *Index) GroupedMemoryBytes() (packed, rowMajor int, err error) {
	s := ix.snap.Load()
	for _, pe := range s.Parts {
		if pe.paged != nil {
			p, r, err := ix.groupedFootprint(pe)
			if err != nil {
				return 0, 0, err
			}
			packed += p
			rowMajor += r
			continue
		}
		fs, err := pe.FastScanner(ix.opt.FastScan)
		if err != nil {
			return 0, 0, err
		}
		g := fs.Grouped()
		packed += g.PackedBytes() + fs.KeepN()*layout.M
		rowMajor += g.RowMajorBytes() + fs.KeepN()*layout.M
	}
	return packed, rowMajor, nil
}
