// Beyond-RAM serving: disk-resident partition extents behind an
// epoch-aware buffer pool (DESIGN.md §15).
//
// AttachStore seals every partition epoch's bulk data — row-major
// codes, materialized ids, and the Fast Scan grouped layout's packed
// blocks, grouped codes and grouped ids — into one immutable extent
// file per partition epoch, and replaces the snapshot's epochs with
// stubs: RAM-resident metadata (row counts, tombstone sets, the group
// directory) whose data slices are nil. A probe that visits a
// partition pins its extent in the buffer pool, hydrates transient
// shallow views over the pinned payload, scans them exactly as it
// would RAM-resident slices — the payload buffer is 64-byte aligned
// and sections are 64-byte aligned within it, so the asm kernels scan
// paged-in blocks zero-copy — and unpins on the way out.
//
// Epochs make eviction safe: extents are write-once and named by
// (attach instance, partition, epoch), so a mutation never rewrites an
// extent — it writes a new one and publishes a new stub epoch. A query
// holding a pin on epoch e keeps scanning e's (immutable) bytes while
// e+1 is published; once the last reference to e's stub drops, a
// finalizer forgets the pool frame and removes the file. Extents are a
// node-local cache, not durable state: the v3 snapshot + WAL remain
// the durability story, and attach rebuilds extents from the loaded
// index, sweeping whatever a previous owner left in the directory.
package index

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"pqfastscan/internal/bufpool"
	"pqfastscan/internal/extent"
	"pqfastscan/internal/fsio"
	"pqfastscan/internal/layout"
	"pqfastscan/internal/scan"
)

// StoreStats is the observable state of an attached disk store: the
// directory, the live extent footprint, and the buffer pool counters.
type StoreStats struct {
	Dir         string        `json:"dir"`
	ExtentBytes int64         `json:"extent_bytes"` // payload bytes across live extents
	Pool        bufpool.Stats `json:"pool"`
}

// Paging is the shared per-directory paging state: the extent store
// and its buffer pool. One Paging exists per store directory per
// process (see openPaging), so an index and its staged swap
// replacement share one capacity-bounded pool.
type Paging struct {
	store       *extent.Store
	pool        *bufpool.Pool
	extentBytes atomic.Int64
}

var (
	pagingMu sync.Mutex
	pagings  = map[string]*Paging{}
	// pagingInst numbers AttachStore calls process-wide; extent names
	// carry it so two indexes sharing a directory (a serving index and
	// its staged swap replacement) never collide on (partition, epoch).
	pagingInst atomic.Uint64
)

// openPaging returns the process-wide Paging for dir, creating it — and
// sweeping every file a previous owner left behind (orphaned temp files
// and stale extents are both rebuildable garbage) — on first use.
// poolBytes bounds the buffer pool; it is fixed at creation, later
// opens of the same dir join the existing pool. opts are applied only
// at creation (test hooks).
func openPaging(dir string, poolBytes int64, opts ...bufpool.Option) (*Paging, error) {
	pagingMu.Lock()
	defer pagingMu.Unlock()
	if pg, ok := pagings[dir]; ok {
		return pg, nil
	}
	if poolBytes <= 0 {
		return nil, fmt.Errorf("index: non-positive pool capacity %d", poolBytes)
	}
	st, err := extent.Open(fsio.OS, dir)
	if err != nil {
		return nil, err
	}
	if _, err := st.SweepOrphans(nil); err != nil {
		return nil, fmt.Errorf("index: sweeping store dir %s: %w", dir, err)
	}
	pg := &Paging{store: st}
	pg.pool = bufpool.New(poolBytes, func(id string) ([]byte, error) {
		p, err := st.Read(id)
		if err != nil {
			return nil, err
		}
		return p.Bytes(), nil
	}, opts...)
	pagings[dir] = pg
	return pg, nil
}

// PoolStats returns the shared pool's counters.
func (pg *Paging) PoolStats() bufpool.Stats { return pg.pool.Stats() }

// SetPoolCapacity rebounds the shared pool (cold-start benchmarking).
func (pg *Paging) SetPoolCapacity(capBytes int64) { pg.pool.SetCapacity(capBytes) }

// pspan is a section's location within an extent payload.
type pspan struct{ off, n int64 }

// pagedExtent is the stable identity of one partition epoch's sealed
// payload on disk, plus the section geometry needed to hydrate stubs
// from a pinned payload without re-reading the header. It is shared
// between tombstone-only successor epochs (a Delete changes no codes),
// and across indexes that share epochs (RestrictCells). When the last
// sharing epoch becomes unreachable, the finalizer drops the pool
// frame and the file.
type pagedExtent struct {
	pg    *Paging
	name  string
	bytes int64

	codes, ids           pspan
	blocks, gcodes, gids pspan
	hasIDs, hasFast      bool
}

// view pins the extent and returns hydrated shallow views over the
// pinned payload: the partition always, the Fast Scan state when
// needFast (an error if this epoch has none). The views alias the pool
// frame and are valid only until release is called.
func (x *pagedExtent) view(pe *PartEpoch, needFast bool) (*scan.Partition, *scan.FastScan, func(), error) {
	if needFast && !x.hasFast {
		return nil, nil, nil, fmt.Errorf("index: partition extent %s has no fast-scan layout", x.name)
	}
	buf, err := x.pg.pool.Pin(x.name)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("index: pinning extent %s: %w", x.name, err)
	}
	sec := func(sp pspan) []byte { return buf[sp.off : sp.off+sp.n : sp.off+sp.n] }
	var ids []int64
	if x.hasIDs {
		ids = extent.BytesInt64(sec(x.ids))
	}
	p := pe.Part.Hydrate(sec(x.codes), ids)
	var fs *scan.FastScan
	if needFast {
		stub := pe.fast.Load()
		g := stub.Grouped().Hydrate(sec(x.blocks), sec(x.gcodes), extent.BytesInt64(sec(x.gids)))
		fs = stub.Hydrate(p, g)
	}
	release := func() { x.pg.pool.Unpin(x.name) }
	return p, fs, release, nil
}

// writeExtent seals part (and its Fast Scan state, when non-nil) into
// a new extent and returns the paged handle plus the detached stubs to
// publish in its place. The finalizer on the handle garbage-collects
// the file once no epoch references it.
func (pg *Paging) writeExtent(name string, part *scan.Partition, fast *scan.FastScan) (*pagedExtent, *scan.Partition, *scan.FastScan, error) {
	x := &pagedExtent{pg: pg, name: name}
	var b extent.Builder
	add := func(secName string, data []byte) pspan {
		sp := pspan{off: b.PayloadBytes(), n: int64(len(data))}
		b.Add(secName, data)
		return sp
	}
	x.codes = add("codes", part.Codes)
	if part.IDs != nil {
		x.hasIDs = true
		x.ids = add("ids", extent.Int64Bytes(part.IDs))
	}
	if fast != nil {
		x.hasFast = true
		g := fast.Grouped()
		x.blocks = add("blocks", g.Blocks)
		x.gcodes = add("gcodes", g.Codes)
		x.gids = add("gids", extent.Int64Bytes(g.IDs))
	}
	n, err := pg.store.Write(name, &b)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("index: writing extent %s: %w", name, err)
	}
	x.bytes = n
	pg.extentBytes.Add(n)
	runtime.SetFinalizer(x, (*pagedExtent).gc)

	stubPart := part.Detach()
	var stubFast *scan.FastScan
	if fast != nil {
		stubFast = fast.Detach(stubPart)
	}
	return x, stubPart, stubFast, nil
}

// gc reclaims an unreferenced extent: no epoch points here anymore, so
// no future pin can occur — drop the (necessarily unpinned) pool frame
// and the file. Runs on the finalizer goroutine; failures are ignored
// because the attach-time sweep removes stragglers on the next boot.
func (x *pagedExtent) gc() {
	x.pg.pool.Forget(x.name)
	x.pg.extentBytes.Add(-x.bytes)
	_ = x.pg.store.Remove(x.name)
}

// extentName names partition c's epoch-e extent for this index's attach
// instance.
func (ix *Index) extentName(c int, epoch uint64) string {
	return fmt.Sprintf("i%d-p%d-e%d", ix.pgInst, c, epoch)
}

// AttachStore migrates the index to disk-resident serving: every
// partition epoch's bulk data moves into an extent under dir and the
// snapshot holds stubs that page data in through a buffer pool bounded
// at poolBytes. Search results are bit-identical to RAM-resident
// serving; mutations keep working (they write new extents). One store
// directory must be owned by one process at a time — attach sweeps
// files left by previous owners. Attaching twice is idempotent for the
// same dir and an error for a different one.
func (ix *Index) AttachStore(dir string, poolBytes int64) error {
	return ix.attachStore(dir, poolBytes)
}

func (ix *Index) attachStore(dir string, poolBytes int64, opts ...bufpool.Option) error {
	pg, err := openPaging(dir, poolBytes, opts...)
	if err != nil {
		return err
	}
	// Freeze every partition builder: no mutation can publish while the
	// snapshot is migrated. Queries are unaffected — they keep scanning
	// the old (RAM-resident) snapshot until the swap below.
	for c := range ix.partMu {
		ix.partMu[c].Lock()
	}
	defer func() {
		for c := range ix.partMu {
			ix.partMu[c].Unlock()
		}
	}()
	if ix.pg != nil {
		if ix.pg == pg {
			return nil
		}
		return fmt.Errorf("index: already attached to store %s", ix.pg.store.Dir())
	}
	inst := pagingInst.Add(1)

	s := ix.snap.Load()
	parts := make([]*PartEpoch, len(s.Parts))
	for c, pe := range s.Parts {
		if pe.paged != nil {
			// Shared from an already-paged index (RestrictCells).
			parts[c] = pe
			continue
		}
		// Build the Fast Scan layout eagerly so the extent carries it;
		// non-PQ8x8 widths have none (their kernels are rejected at
		// validation anyway).
		fast, ferr := pe.FastScanner(ix.opt.FastScan)
		if ferr != nil {
			fast = nil
		}
		name := fmt.Sprintf("i%d-p%d-e%d", inst, c, pe.Epoch)
		x, stubP, stubF, werr := pg.writeExtent(name, pe.Part, fast)
		if werr != nil {
			return werr
		}
		npe := &PartEpoch{Part: stubP, Epoch: pe.Epoch, paged: x}
		if stubF != nil {
			npe.fast.Store(stubF)
		}
		parts[c] = npe
	}
	ix.pg = pg
	ix.pgInst = inst
	// Plain store: every builder lock is held, so no publisher races the
	// swap; queries atomically move from the RAM epochs to the stubs.
	ix.snap.Store(&Snapshot{Parts: parts})
	return nil
}

// DefaultPoolBytes is the buffer pool capacity applied when none is
// chosen explicitly: PQ_STORE_DIR set without PQ_POOL_BYTES, or the
// facade's WithDiskStore called with poolBytes <= 0.
const DefaultPoolBytes int64 = 256 << 20

// AttachStoreFromEnv applies the PQ_STORE_DIR / PQ_POOL_BYTES
// environment: when PQ_STORE_DIR is set the index moves to
// disk-resident serving under its own proc-<pid> subdirectory (so
// parallel processes sharing the variable never sweep each other's
// extents), with the pool bounded at PQ_POOL_BYTES (DefaultPoolBytes
// when unset). It reports whether a store was attached. Every builder
// of an index that should serve the way pqserve does — the facade's
// Build/Load paths, the bench harness — funnels through here, so the
// environment means the same thing everywhere.
func (ix *Index) AttachStoreFromEnv() (bool, error) {
	dir := os.Getenv("PQ_STORE_DIR")
	if dir == "" {
		return false, nil
	}
	poolBytes := DefaultPoolBytes
	if s := os.Getenv("PQ_POOL_BYTES"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil || v <= 0 {
			return false, fmt.Errorf("index: invalid PQ_POOL_BYTES %q", s)
		}
		poolBytes = v
	}
	return true, ix.AttachStore(filepath.Join(dir, fmt.Sprintf("proc-%d", os.Getpid())), poolBytes)
}

// Paged reports whether the index serves from a disk store.
func (ix *Index) Paged() bool { return ix.pg != nil }

// SetPoolCapacity rebounds the attached store's shared buffer pool,
// evicting down to the new cap (no-op on a RAM index). The cold-start
// benchmark uses it to sweep working-set fractions without re-writing
// extents.
func (ix *Index) SetPoolCapacity(capBytes int64) {
	if ix.pg != nil {
		ix.pg.SetPoolCapacity(capBytes)
	}
}

// StoreStats returns the attached store's observable state, or false
// when the index is RAM-resident.
func (ix *Index) StoreStats() (StoreStats, bool) {
	if ix.pg == nil {
		return StoreStats{}, false
	}
	return StoreStats{
		Dir:         ix.pg.store.Dir(),
		ExtentBytes: ix.pg.extentBytes.Load(),
		Pool:        ix.pg.pool.Stats(),
	}, true
}

// applyAddPaged is ApplyAdd's per-partition body on a disk-backed
// index: hydrate the current epoch (pinned only for the clone), build
// the appended partition and layout in RAM — CloneAppend copies into
// fresh arrays, so nothing retains the pinned payload — then seal them
// into a fresh extent and publish the stubs. The extent is named after
// its epoch, so the number is allocated before the write; per-partition
// ordering still holds because the caller's ix.partMu[c] serializes
// publishes into this slot.
func (ix *Index) applyAddPaged(c int, codes []uint8, ids []int64) error {
	cur := ix.snap.Load().Parts[c]
	p := cur.Part
	var curFast *scan.FastScan
	release := func() {}
	if cur.paged != nil {
		hp, hfs, rel, err := cur.paged.view(cur, cur.paged.hasFast)
		if err != nil {
			return err
		}
		p, curFast, release = hp, hfs, rel
	} else {
		// A RAM epoch inside a paged index: an empty cell installed by
		// RestrictCells. Its successor is written to disk like any other.
		curFast = cur.fast.Load()
	}
	next := p.CloneAppend(codes, ids)
	var fast *scan.FastScan
	if curFast != nil {
		fast = curFast.CloneAppend(next, codes, ids)
	} else if next.W == layout.M {
		// Paged epochs build their layout eagerly — the extent must carry
		// the grouped sections or later Fast Scan queries would have
		// nothing to pin. Widths without a layout stay without one.
		if fs, err := scan.NewFastScan(next, ix.opt.FastScan); err == nil {
			fast = fs
		}
	}
	release()
	e := ix.epoch.Add(1)
	x, stubP, stubF, err := ix.pg.writeExtent(ix.extentName(c, e), next, fast)
	if err != nil {
		return err
	}
	npe := &PartEpoch{Part: stubP, Epoch: e, paged: x}
	if stubF != nil {
		npe.fast.Store(stubF)
	}
	ix.publishAt(c, npe)
	return nil
}

// compactPaged rebuilds partition c without its tombstoned rows on a
// disk-backed index and publishes the compacted epoch's stub. The
// caller holds ix.partMu[c] and has verified DeadCount > 0, which
// guarantees Compact returns fresh arrays (nothing aliases the pin).
func (ix *Index) compactPaged(c int, cur *PartEpoch) (*PartEpoch, error) {
	p := cur.Part
	release := func() {}
	if cur.paged != nil {
		hp, _, rel, err := cur.paged.view(cur, false)
		if err != nil {
			return nil, err
		}
		p, release = hp, rel
	}
	next := p.Compact()
	release()
	var fast *scan.FastScan
	if next.W == layout.M {
		if fs, err := scan.NewFastScan(next, ix.opt.FastScan); err == nil {
			fast = fs
		}
	}
	e := ix.epoch.Add(1)
	x, stubP, stubF, err := ix.pg.writeExtent(ix.extentName(c, e), next, fast)
	if err != nil {
		return nil, err
	}
	npe := &PartEpoch{Part: stubP, Epoch: e, paged: x}
	if stubF != nil {
		npe.fast.Store(stubF)
	}
	return ix.publishAt(c, npe), nil
}

// materializePart returns a RAM-resident copy of a paged epoch's
// partition (fresh code and id arrays, shared tombstone set) — the
// bridge for offline tooling (Parts, FastScanner) that expects
// partition data without pin lifetimes.
func (ix *Index) materializePart(pe *PartEpoch) (*scan.Partition, error) {
	p, _, release, err := pe.paged.view(pe, false)
	if err != nil {
		return nil, err
	}
	defer release()
	codes := append([]uint8(nil), p.Codes...)
	var ids []int64
	if p.IDs != nil {
		ids = append([]int64(nil), p.IDs...)
	}
	return p.Hydrate(codes, ids), nil
}

// groupedFootprint computes one paged epoch's packed/row-major byte
// counts under a transient pin.
func (ix *Index) groupedFootprint(pe *PartEpoch) (packed, rowMajor int, err error) {
	_, fs, release, err := pe.paged.view(pe, true)
	if err != nil {
		return 0, 0, err
	}
	defer release()
	g := fs.Grouped()
	return g.PackedBytes() + fs.KeepN()*layout.M, g.RowMajorBytes() + fs.KeepN()*layout.M, nil
}
