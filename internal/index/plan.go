package index

import (
	"pqfastscan/internal/vec"
)

// Allocation-free snapshot accessors for the adaptive query planner
// (internal/plan). The planner runs on every WithAuto search, so its
// inputs must cost one atomic snapshot load and some arithmetic — no
// slices born per query. Callers pass in reusable buffers (the planner
// pools them); both functions grow a too-small buffer, which in steady
// state happens never (partition counts change only on swap).

// PlanStat is one partition's planning signals: its sealed row count
// (codes a scan touches, dead included — tombstones are skipped inside
// the kernel but their codes are still scanned), the tombstoned share,
// and whether the epoch is disk-resident (a probe pays the buffer
// pool's pin/fault path).
type PlanStat struct {
	N     int
	Dead  int
	Paged bool
}

// PlanStatsInto fills buf with every partition's PlanStat from one
// snapshot load and returns the filled prefix. It never allocates when
// cap(buf) >= Partitions().
func (ix *Index) PlanStatsInto(buf []PlanStat) []PlanStat {
	s := ix.snap.Load()
	if cap(buf) < len(s.Parts) {
		buf = make([]PlanStat, len(s.Parts))
	}
	buf = buf[:len(s.Parts)]
	for i, pe := range s.Parts {
		buf[i] = PlanStat{N: pe.Part.N, Dead: pe.Part.DeadCount(), Paged: pe.paged != nil}
	}
	return buf
}

// RankCellsInto is RankCells writing into caller-provided storage: ids
// receives every cell id ordered by ascending coarse distance (ties by
// cell id), dists is scratch for the distances. The order is identical
// to RankCells' — a planner-chosen nprobe therefore probes exactly the
// prefix a WithNProbe query would, which is what makes planned and
// fixed-option results bit-identical. Neither slice escapes; no
// allocation when both have capacity Partitions().
func (ix *Index) RankCellsInto(query []float32, ids []int, dists []float32) []int {
	n := ix.Coarse.Rows()
	if cap(ids) < n {
		ids = make([]int, n)
	}
	if cap(dists) < n {
		dists = make([]float32, n)
	}
	ids, dists = ids[:n], dists[:n]
	for i := 0; i < n; i++ {
		ids[i] = i
		dists[i] = vec.L2Squared(query, ix.Coarse.Row(i))
	}
	heapsortCells(ids, dists)
	return ids
}

// heapsortCells sorts the parallel (id, dist) arrays by (dist, id)
// ascending in place — heapsort rather than sort.Slice because the
// latter's interface conversion allocates, and this runs per planned
// query. Deterministic total order: distances never compare equal
// without the id tiebreak deciding.
func heapsortCells(ids []int, dists []float32) {
	n := len(ids)
	less := func(a, b int) bool {
		if dists[a] != dists[b] {
			return dists[a] < dists[b]
		}
		return ids[a] < ids[b]
	}
	swap := func(a, b int) {
		ids[a], ids[b] = ids[b], ids[a]
		dists[a], dists[b] = dists[b], dists[a]
	}
	siftDown := func(root, end int) {
		for {
			child := 2*root + 1
			if child >= end {
				return
			}
			if child+1 < end && less(child, child+1) {
				child++
			}
			if !less(root, child) {
				return
			}
			swap(root, child)
			root = child
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(i, n)
	}
	for end := n - 1; end > 0; end-- {
		swap(0, end)
		siftDown(0, end)
	}
}
