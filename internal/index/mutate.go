// Online mutation, copy-on-write: the index accepts new vectors and
// deletions after construction, without retraining and without ever
// blocking queries. New vectors are encoded against the trained coarse
// and product quantizers — exactly the codes a from-scratch rebuild over
// the same vectors would produce — and each affected partition gets a
// replacement epoch: a sealed copy of its code block with the batch
// appended, plus a clone of any built Fast Scan layout extended through
// the incremental group repack. Deletions publish an epoch whose
// tombstone set grew by one (codes and layout are shared with the
// predecessor). Epochs are published with a single snapshot swap
// (snapshot.go); tombstoned codes stay in place until the online
// compactor (compact.go) rebuilds the partition without them.
package index

import (
	"errors"
	"fmt"

	"pqfastscan/internal/scan"
	"pqfastscan/internal/vec"
)

// ErrNotFound reports a Delete of an id that is not live in the index:
// never assigned, already deleted, or dropped with a snapshot swap. It
// travels end-to-end — façade Delete wraps it and the HTTP service maps
// it to a 404.
var ErrNotFound = errors.New("index: id not found")

// Add encodes and indexes the rows of vecs, returning the id assigned to
// each (a monotonically increasing sequence continuing the build-time
// ids). Encoding and routing run lock-free; each affected partition is
// then rebuilt copy-on-write under its own builder lock and published
// atomically, so an Add contends only with other mutations touching the
// same partitions — in-flight queries keep scanning the previous epochs
// and later queries see the whole batch.
//
// Add is the composition of EncodeRoute, AllocIDs and ApplyAdd — split
// so the durability layer can log the encoded mutation (cells, ids,
// codes) between allocation and application: exactly what the WAL
// replays after a crash, byte-for-byte what the original Add indexed.
func (ix *Index) Add(vecs vec.Matrix) ([]int64, error) {
	cells, codes, err := ix.EncodeRoute(vecs)
	if err != nil {
		return nil, err
	}
	n := len(cells)
	base := ix.AllocIDs(n)
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = base + int64(i)
	}
	if err := ix.ApplyAdd(cells, ids, codes); err != nil {
		return nil, err
	}
	return ids, nil
}

// EncodeRoute routes each row of vecs to its coarse cell and encodes its
// residual, returning the parallel cell slice and the flat n×M code
// block. It is read-only with respect to index state: pure computation
// against the trained quantizers, safe to run outside any mutation lock.
func (ix *Index) EncodeRoute(vecs vec.Matrix) (cells []int, codes []uint8, err error) {
	if vecs.Dim != ix.Dim {
		return nil, nil, fmt.Errorf("index: vector dim %d != index dim %d", vecs.Dim, ix.Dim)
	}
	if ix.PQ.Bits > 8 {
		return nil, nil, fmt.Errorf("index: online Add requires at most 8 bits per component, index uses %v", ix.PQ.Config)
	}
	n := vecs.Rows()
	m := ix.PQ.M
	cells = make([]int, n)
	codes = make([]uint8, n*m)
	residual := make([]float32, ix.Dim)
	for i := 0; i < n; i++ {
		row := vecs.Row(i)
		c, _ := vec.ArgminL2(row, ix.Coarse.Data, ix.Dim)
		cRow := ix.Coarse.Row(c)
		for d, v := range row {
			residual[d] = v - cRow[d]
		}
		ix.PQ.Encode(residual, codes[i*m:(i+1)*m])
		cells[i] = c
	}
	return cells, codes, nil
}

// AllocIDs reserves a contiguous block of n ids and returns the first.
func (ix *Index) AllocIDs(n int) int64 {
	return ix.nextID.Add(int64(n)) - int64(n)
}

// ApplyAdd indexes pre-encoded rows: cells[i] receives the vector with
// ids[i] and codes [i*M, (i+1)*M). Normal Adds arrive here with ids from
// AllocIDs; WAL replay arrives with the ids recorded at the original
// acknowledgement, so ApplyAdd also advances the allocator past any
// applied id — a reloaded index never re-issues an id the log already
// assigned.
func (ix *Index) ApplyAdd(cells []int, ids []int64, codes []uint8) error {
	n := len(cells)
	m := ix.PQ.M
	if len(ids) != n || len(codes) != n*m {
		return fmt.Errorf("index: apply shape mismatch: %d cells, %d ids, %d codes for M=%d",
			n, len(ids), len(codes), m)
	}
	var maxID int64 = -1
	for i, c := range cells {
		if c < 0 || c >= ix.Partitions() {
			return fmt.Errorf("index: cell %d out of range [0,%d)", c, ix.Partitions())
		}
		if ids[i] > maxID {
			maxID = ids[i]
		}
	}
	for next := ix.nextID.Load(); next <= maxID; next = ix.nextID.Load() {
		if ix.nextID.CompareAndSwap(next, maxID+1) {
			break
		}
	}

	// Bucket per partition so each partition (and its Fast Scan layout)
	// sees one copy-on-write rebuild per batch: large batches amortize to
	// a single regroup pass.
	type chunk struct {
		codes []uint8
		ids   []int64
	}
	chunks := make([]chunk, ix.Partitions())
	for i, c := range cells {
		chunks[c].codes = append(chunks[c].codes, codes[i*m:(i+1)*m]...)
		chunks[c].ids = append(chunks[c].ids, ids[i])
	}

	for c := range chunks {
		if len(chunks[c].ids) == 0 {
			continue
		}
		ix.partMu[c].Lock()
		if ix.pg != nil {
			// Disk-backed index: the rebuilt partition is written out as a
			// fresh extent and published as a stub epoch (paging.go).
			err := ix.applyAddPaged(c, chunks[c].codes, chunks[c].ids)
			ix.partMu[c].Unlock()
			if err != nil {
				return err
			}
			continue
		}
		cur := ix.snap.Load().Parts[c]
		next := cur.Part.CloneAppend(chunks[c].codes, chunks[c].ids)
		var fast *scan.FastScan
		if fs := cur.fast.Load(); fs != nil {
			// Carry the warmth forward: clone the grouped layout and fold
			// the batch in incrementally instead of making the next query
			// rebuild it from scratch.
			fast = fs.CloneAppend(next, chunks[c].codes, chunks[c].ids)
		}
		ix.publish(c, next, fast)
		ix.partMu[c].Unlock()
	}

	// Register the new ids for Delete routing after their partitions are
	// published: if a concurrent Delete built the locate map between our
	// publish and this point, the build already saw the ids in the
	// snapshot. A Delete may even have tombstoned one of them already
	// (it discovered the id through a search) — those stay unregistered,
	// so the map never claims a dead id is live.
	//
	// Contract: an id is guaranteed Delete-routable once Add returns it.
	// A Delete racing the very Add that creates its id — possible only
	// by learning the id from a search in the window between the
	// partition publish and this registration — may observe ErrNotFound;
	// retrying after Add returns always succeeds.
	ix.locateMu.Lock()
	if ix.locate != nil {
		s := ix.snap.Load()
		for i, id := range ids {
			if !s.Parts[cells[i]].Part.IsDead(id) {
				ix.locate[id] = cells[i]
			}
		}
	}
	ix.locateMu.Unlock()
	return nil
}

// Delete tombstones the vector with the given id by publishing a new
// epoch of its partition whose tombstone set grew by one; codes and any
// built Fast Scan layout are shared with the predecessor epoch. It
// returns ErrNotFound when the id was never assigned or is no longer
// live.
//
// Each delete copies the partition's tombstone set (copy-on-write), so
// the cost of the D-th uncompacted delete into one partition is O(D).
// The online compactor resets D to zero; with the serving layer's
// dead-ratio policy enabled, D stays bounded by threshold × partition
// size.
func (ix *Index) Delete(id int64) error {
	ix.locateMu.Lock()
	if ix.locate == nil {
		// First Delete: build the id -> partition routing table from the
		// current snapshot. Ids published after this load are registered
		// by their Add (see the ordering note there).
		ix.locate = make(map[int64]int)
		for c, pe := range ix.snap.Load().Parts {
			p := pe.Part
			release := func() {}
			if pe.paged != nil {
				// Stubs carry no id array — pin the extent for the duration
				// of this partition's walk.
				hp, _, rel, err := pe.paged.view(pe, false)
				if err != nil {
					ix.locate = nil // retry the build on the next Delete
					ix.locateMu.Unlock()
					return fmt.Errorf("index: building delete routing table: %w", err)
				}
				p, release = hp, rel
			}
			for i := 0; i < p.N; i++ {
				if pid := p.ID(i); !p.IsDead(pid) {
					ix.locate[pid] = c
				}
			}
			release()
		}
	}
	c, ok := ix.locate[id]
	if !ok {
		ix.locateMu.Unlock()
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	delete(ix.locate, id)
	ix.locateMu.Unlock()

	ix.partMu[c].Lock()
	defer ix.partMu[c].Unlock()
	cur := ix.snap.Load().Parts[c]
	next, ok := cur.Part.CloneTombstone(id)
	if !ok {
		// locate said live but the partition disagrees — possible only if
		// the id was dropped by an out-of-band partition replacement.
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	var fast *scan.FastScan
	if fs := cur.fast.Load(); fs != nil {
		// A tombstone changes no codes: the layout is shared, only the
		// partition binding (whose tombstone set kernels consult) moves.
		fast = fs.Rebind(next)
	}
	// A tombstone-only epoch shares its predecessor's extent (nil on a
	// RAM index): the dead set is resident metadata on the stub, the
	// bytes on disk are unchanged, so no extent write happens on Delete.
	npe := &PartEpoch{Part: next, Epoch: ix.epoch.Add(1), paged: cur.paged}
	if fast != nil {
		npe.fast.Store(fast)
	}
	ix.publishAt(c, npe)
	return nil
}

// Live returns the number of indexed vectors that are not tombstoned.
func (ix *Index) Live() int { return ix.snap.Load().Live() }

// NextID returns the id the next Add will assign (persisted so that
// reloaded indexes never reuse ids).
func (ix *Index) NextID() int64 { return ix.nextID.Load() }
