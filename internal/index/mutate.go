// Online mutation: the index accepts new vectors and deletions after
// construction, without retraining or rebuilding. New vectors are encoded
// against the trained coarse and product quantizers — exactly the codes a
// from-scratch rebuild over the same vectors would produce — appended to
// their partition's code block, and folded incrementally into any already
// built Fast Scan grouped layout. Deletions are tombstones checked during
// scans; codes stay in place until an (offline) rebuild compacts them.
package index

import (
	"fmt"

	"pqfastscan/internal/vec"
)

// Add encodes and indexes the rows of vecs, returning the id assigned to
// each (a monotonically increasing sequence continuing the build-time
// ids). It serializes with in-flight queries via the index write lock.
func (ix *Index) Add(vecs vec.Matrix) ([]int64, error) {
	if vecs.Dim != ix.Dim {
		return nil, fmt.Errorf("index: vector dim %d != index dim %d", vecs.Dim, ix.Dim)
	}
	if ix.PQ.Bits > 8 {
		return nil, fmt.Errorf("index: online Add requires at most 8 bits per component, index uses %v", ix.PQ.Config)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()

	// Encode and route first, bucketing per partition, so each partition
	// (and its Fast Scan layout) sees one append per batch: large batches
	// amortize to a single regroup pass instead of per-vector splices.
	n := vecs.Rows()
	ids := make([]int64, n)
	type chunk struct {
		codes []uint8
		ids   []int64
	}
	chunks := make([]chunk, len(ix.Parts))
	residual := make([]float32, ix.Dim)
	code := make([]uint8, ix.PQ.M)
	for i := 0; i < n; i++ {
		row := vecs.Row(i)
		c, _ := vec.ArgminL2(row, ix.Coarse.Data, ix.Dim)
		cRow := ix.Coarse.Row(c)
		for d, v := range row {
			residual[d] = v - cRow[d]
		}
		ix.PQ.Encode(residual, code)

		id := ix.nextID
		ix.nextID++
		ids[i] = id
		chunks[c].codes = append(chunks[c].codes, code...)
		chunks[c].ids = append(chunks[c].ids, id)
		if ix.locate != nil {
			ix.locate[id] = c
		}
	}
	for c := range chunks {
		if len(chunks[c].ids) == 0 {
			continue
		}
		ix.Parts[c].Append(chunks[c].codes, chunks[c].ids)
		if fs := ix.fast[c]; fs != nil {
			// Regroup the affected Fast Scan groups incrementally instead
			// of invalidating the whole layout.
			fs.Append(chunks[c].codes, chunks[c].ids)
		}
	}
	return ids, nil
}

// Delete tombstones the vector with the given id. It reports whether the
// id was present (and alive). The vector's code remains in its partition
// until a rebuild; every kernel skips tombstoned ids during the scan.
func (ix *Index) Delete(id int64) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.locate == nil {
		ix.locate = make(map[int64]int)
		for c, p := range ix.Parts {
			for i := 0; i < p.N; i++ {
				if pid := p.ID(i); !p.IsDead(pid) {
					ix.locate[pid] = c
				}
			}
		}
	}
	c, ok := ix.locate[id]
	if !ok {
		return false
	}
	delete(ix.locate, id)
	return ix.Parts[c].Tombstone(id)
}

// Live returns the number of indexed vectors that are not tombstoned.
func (ix *Index) Live() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	total := 0
	for _, p := range ix.Parts {
		total += p.Live()
	}
	return total
}

// NextID returns the id the next Add will assign (persisted so that
// reloaded indexes never reuse ids).
func (ix *Index) NextID() int64 { return ix.nextID }

// Snapshot acquires the index read lock for a multi-step consistent read
// (persist uses it to serialize a coherent image while mutations are in
// flight) and returns the release function.
func (ix *Index) Snapshot() (release func()) {
	ix.mu.RLock()
	return ix.mu.RUnlock
}
