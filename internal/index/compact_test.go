package index

import (
	"context"
	"errors"
	"testing"

	"pqfastscan/internal/dataset"
	"pqfastscan/internal/vec"
)

func buildMutable(t *testing.T, seed uint64) (*Index, *dataset.Generator) {
	t.Helper()
	gen := dataset.NewGenerator(dataset.Config{Seed: seed, Dim: 32})
	opt := DefaultOptions()
	opt.Partitions = 3
	opt.Seed = seed
	ix, err := Build(gen.Generate(2000), gen.Generate(9000), opt)
	if err != nil {
		t.Fatal(err)
	}
	return ix, gen
}

// TestDeleteNotFound pins the typed-error contract: deleting a
// never-assigned id, and deleting the same id twice, both return
// ErrNotFound; a live id deletes cleanly.
func TestDeleteNotFound(t *testing.T) {
	ix, _ := buildMutable(t, 61)
	if err := ix.Delete(4); err != nil {
		t.Fatalf("delete of live id: %v", err)
	}
	if err := ix.Delete(4); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete returned %v, want ErrNotFound", err)
	}
	if err := ix.Delete(1 << 40); !errors.Is(err, ErrNotFound) {
		t.Fatalf("never-assigned id returned %v, want ErrNotFound", err)
	}
	if err := ix.Delete(-7); !errors.Is(err, ErrNotFound) {
		t.Fatalf("negative id returned %v, want ErrNotFound", err)
	}
}

// TestCompactReclaimsTombstones: compaction removes every tombstoned row
// from a partition past the threshold, bumps its epoch, and leaves
// search results bit-identical (deleted ids were already excluded).
func TestCompactReclaimsTombstones(t *testing.T) {
	ix, gen := buildMutable(t, 62)
	queries := gen.Generate(6)
	ctx := context.Background()

	// Warm every Fast Scan layout so compaction exercises the eager
	// rebuild path.
	if _, err := ix.Query(ctx, Request{Query: queries.Row(0), K: 5, Kernel: KernelFastScan, NProbe: 3}); err != nil {
		t.Fatal(err)
	}

	for id := int64(0); id < 9000; id += 3 {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	statsBefore := ix.PartitionStats()
	liveBefore := ix.Live()

	type answer struct{ results []Result }
	capture := func() []answer {
		var out []answer
		for qi := 0; qi < queries.Rows(); qi++ {
			for _, kern := range []Kernel{KernelNaive, KernelFastScan} {
				for _, eng := range []Engine{EngineModel, EngineNative} {
					resp, err := ix.Query(ctx, Request{Query: queries.Row(qi), K: 25, Kernel: kern, Engine: eng, NProbe: 3})
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, answer{results: resp.Results})
				}
			}
		}
		return out
	}
	before := capture()

	results, err := ix.Compact(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no partition compacted despite ~33% dead ratio everywhere")
	}
	reclaimed := 0
	for _, r := range results {
		reclaimed += r.Reclaimed
	}
	wantDead := 0
	for _, st := range statsBefore {
		wantDead += st.Dead
	}
	if reclaimed != wantDead {
		t.Fatalf("reclaimed %d rows, want %d", reclaimed, wantDead)
	}

	for i, st := range ix.PartitionStats() {
		if st.Dead != 0 {
			t.Fatalf("partition %d still holds %d tombstones after compaction", i, st.Dead)
		}
		if st.Epoch <= statsBefore[i].Epoch {
			t.Fatalf("partition %d epoch did not advance (%d -> %d)", i, statsBefore[i].Epoch, st.Epoch)
		}
		if st.Live != statsBefore[i].Live {
			t.Fatalf("partition %d live count changed: %d -> %d", i, statsBefore[i].Live, st.Live)
		}
	}
	if ix.Live() != liveBefore {
		t.Fatalf("Live() changed across compaction: %d -> %d", liveBefore, ix.Live())
	}

	after := capture()
	for i := range before {
		if len(before[i].results) != len(after[i].results) {
			t.Fatalf("answer %d result count changed across compaction", i)
		}
		for j := range before[i].results {
			if before[i].results[j] != after[i].results[j] {
				t.Fatalf("answer %d rank %d changed across compaction: %+v -> %+v",
					i, j, before[i].results[j], after[i].results[j])
			}
		}
	}

	// An immediately repeated compaction is a no-op.
	again, err := ix.Compact(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("second compaction compacted %d partitions, want 0", len(again))
	}
}

// TestCompactThresholdRespected: partitions below the dead-ratio
// threshold are left alone.
func TestCompactThresholdRespected(t *testing.T) {
	ix, _ := buildMutable(t, 63)
	// Tombstone a handful of rows: dead ratio well under 50%.
	for id := int64(0); id < 60; id++ {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	results, err := ix.Compact(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("compacted %d partitions below threshold", len(results))
	}
	results, err = ix.Compact(0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range results {
		total += r.Reclaimed
	}
	if total != 60 {
		t.Fatalf("threshold-0 compaction reclaimed %d rows, want 60", total)
	}
}

// TestCompactPartitionOutOfRange: bad partition indexes error cleanly.
func TestCompactPartitionOutOfRange(t *testing.T) {
	ix, _ := buildMutable(t, 64)
	if _, err := ix.CompactPartition(-1); err == nil {
		t.Error("negative partition accepted")
	}
	if _, err := ix.CompactPartition(99); err == nil {
		t.Error("out-of-range partition accepted")
	}
}

// TestDeleteAfterCompactionStillWorks: compaction rewrites partition
// rows; the locate map must keep routing deletes of surviving ids.
func TestDeleteAfterCompactionStillWorks(t *testing.T) {
	ix, _ := buildMutable(t, 65)
	if err := ix.Delete(10); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Compact(0); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(11); err != nil {
		t.Fatalf("delete of survivor after compaction: %v", err)
	}
	if err := ix.Delete(10); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete of reclaimed id returned %v, want ErrNotFound", err)
	}
}

// TestScannerCacheFollowsEpoch: the Fast Scan layout cache lives on the
// partition epoch, so a mutation that publishes a new epoch makes the
// old scanner unreachable and serves a scanner describing the new codes
// — the stale-scanner bug of the fastMu design cannot recur.
func TestScannerCacheFollowsEpoch(t *testing.T) {
	ix, gen := buildMutable(t, 66)
	a, err := ix.FastScanner(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ix.FastScanner(0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("scanner not cached within one epoch")
	}

	// Route one vector into partition 0 by brute force: add vectors until
	// partition 0 grows.
	n0 := ix.Parts()[0].N
	for i := 0; i < 64 && ix.Parts()[0].N == n0; i++ {
		if _, err := ix.Add(vec.Matrix{Data: gen.Generate(1).Row(0), Dim: 32}); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Parts()[0].N == n0 {
		t.Skip("no generated vector routed to partition 0")
	}
	c, err := ix.FastScanner(0)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("scanner cache survived an epoch change: stale layout would be served")
	}
	if got, want := c.Grouped().N+c.KeepN(), ix.Parts()[0].N; got != want {
		t.Fatalf("new scanner covers %d vectors, partition holds %d", got, want)
	}
}

// TestCompactedPersistRoundTrip: a compacted index persists without
// tombstones (v2) and — tombstones gone — downgrades to format v1
// again; both reload to bit-identical answers.
func TestCompactedPersistRoundTrip(t *testing.T) {
	ix, gen := buildMutable(t, 67)
	added, err := ix.Add(gen.Generate(400))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(added); i += 2 {
		if err := ix.Delete(added[i]); err != nil {
			t.Fatal(err)
		}
	}
	for id := int64(0); id < 9000; id += 11 {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ix.Compact(0); err != nil {
		t.Fatal(err)
	}
	for _, st := range ix.PartitionStats() {
		if st.Dead != 0 {
			t.Fatalf("partition %d kept %d tombstones", st.Partition, st.Dead)
		}
	}
	if ix.NextID() != int64(9400) {
		t.Fatalf("compaction moved the id allocator to %d", ix.NextID())
	}
}
