package index

import (
	"context"
	"fmt"
	"sort"

	"pqfastscan/internal/layout"
	"pqfastscan/internal/par"
	"pqfastscan/internal/scan"
	"pqfastscan/internal/topk"
	"pqfastscan/internal/vec"
)

// Request describes one k-NN query: what to search for, how many
// neighbors, which kernel, and how many inverted-index cells to probe.
// The zero value of Kernel is KernelNaive; facades normally set
// KernelFastScan. NProbe 0 and 1 both mean the paper's single-cell
// routing.
type Request struct {
	Query  []float32
	K      int
	Kernel Kernel
	NProbe int
}

// Response carries a query's answer: the neighbors, the merged scan
// statistics, and the partitions probed in visit order.
type Response struct {
	Results    []Result
	Stats      scan.Stats
	Partitions []int
}

// validate rejects malformed requests with caller-actionable errors
// before any scanning starts.
func (ix *Index) validate(req Request) error {
	if req.K <= 0 {
		return fmt.Errorf("index: k must be positive, got %d", req.K)
	}
	if len(req.Query) != ix.Dim {
		return fmt.Errorf("index: query dim %d != index dim %d", len(req.Query), ix.Dim)
	}
	if req.NProbe < 0 || req.NProbe > len(ix.Parts) {
		return fmt.Errorf("index: nprobe %d out of range [1,%d]", req.NProbe, len(ix.Parts))
	}
	if ix.PQ.M != layout.M || ix.PQ.KStar() != 256 {
		return fmt.Errorf("index: scan kernels require PQ 8x8, index uses %v", ix.PQ.Config)
	}
	return nil
}

// Query answers one request, honoring ctx cancellation and deadlines:
// the context is checked before every partition scan, so a multi-probe
// query under a tight deadline stops between cells rather than running
// to completion.
func (ix *Index) Query(ctx context.Context, req Request) (*Response, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.queryLocked(ctx, req)
}

// queryLocked is Query without the read lock; QueryBatch holds the lock
// once across all worker goroutines (RWMutex read locks must not nest
// when a writer may be waiting).
func (ix *Index) queryLocked(ctx context.Context, req Request) (*Response, error) {
	if err := ix.validate(req); err != nil {
		return nil, err
	}
	nprobe := req.NProbe
	if nprobe == 0 {
		nprobe = 1
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if nprobe == 1 {
		part := ix.RoutePartition(req.Query)
		res, stats, err := ix.SearchPartition(req.Query, req.K, req.Kernel, part)
		if err != nil {
			return nil, err
		}
		return &Response{Results: res, Stats: stats, Partitions: []int{part}}, nil
	}

	// Multi-probe: visit the nprobe cells closest to the query and merge
	// their neighbors.
	type cell struct {
		id int
		d  float32
	}
	cells := make([]cell, len(ix.Parts))
	for i := range ix.Parts {
		cells[i] = cell{id: i, d: vec.L2Squared(req.Query, ix.Coarse.Row(i))}
	}
	sort.Slice(cells, func(a, b int) bool { return cells[a].d < cells[b].d })

	heap := topk.New(req.K)
	resp := &Response{Partitions: make([]int, 0, nprobe)}
	for _, c := range cells[:nprobe] {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, s, err := ix.SearchPartition(req.Query, req.K, req.Kernel, c.id)
		if err != nil {
			return nil, err
		}
		for _, r := range res {
			heap.Push(r.ID, r.Distance)
		}
		resp.Stats.Merge(s)
		resp.Partitions = append(resp.Partitions, c.id)
	}
	resp.Results = heap.Results()
	return resp, nil
}

// QueryBatch answers req for every row of queries concurrently, one
// goroutine per core — the deployment model the paper assumes ("PQ Scan
// parallelizes naturally over multiple queries by running each query on
// a different core", §3.1). Responses are returned in query order. Fast
// Scan layouts for every partition are built up front so worker
// goroutines never race on lazy construction. Cancelling ctx makes
// in-flight workers stop between partition scans and the batch return
// the context's error.
func (ix *Index) QueryBatch(ctx context.Context, queries vec.Matrix, req Request) ([]*Response, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if queries.Dim != ix.Dim {
		return nil, fmt.Errorf("index: query dim %d != index dim %d", queries.Dim, ix.Dim)
	}
	if req.Kernel == KernelFastScan || req.Kernel == KernelFastScan256 {
		for part := range ix.Parts {
			if _, err := ix.FastScanner(part); err != nil {
				return nil, err
			}
		}
	}
	n := queries.Rows()
	out := make([]*Response, n)
	errs := make([]error, n)
	par.For(n, func(i int) {
		r := req
		r.Query = queries.Row(i)
		out[i], errs[i] = ix.queryLocked(ctx, r)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
