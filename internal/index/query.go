package index

import (
	"context"
	"fmt"
	"sort"

	"pqfastscan/internal/layout"
	"pqfastscan/internal/par"
	"pqfastscan/internal/scan"
	"pqfastscan/internal/topk"
	"pqfastscan/internal/vec"
)

// Request describes one k-NN query: what to search for, how many
// neighbors, which kernel on which engine, and how many inverted-index
// cells to probe. The zero value of Kernel is KernelNaive and of Engine
// is EngineModel (preserving the pre-engine behaviour of internal
// callers); the facade normally sets KernelFastScan on EngineNative.
// NProbe 0 and 1 both mean the paper's single-cell routing. Parallel
// scans the probed cells concurrently (one goroutine per cell, capped at
// GOMAXPROCS) instead of sequentially; results are identical — it is an
// opt-in because the paper measures single-core scans.
// Backend selects the native engine's block-kernel implementation; the
// zero value BackendAuto defers to startup feature detection. It is
// rejected when combined with the model engine, which has no backends.
// Cells, when non-empty, bypasses coarse routing entirely and scans
// exactly the listed cells in order — the shard-side half of
// scatter-gather serving (internal/cluster): the router runs step 1 of
// Algorithm 1 once, fleet-wide, and tells each shard which of its cells
// to scan. Cells is mutually exclusive with NProbe.
type Request struct {
	Query    []float32
	K        int
	Kernel   Kernel
	Engine   Engine
	Backend  Backend
	NProbe   int
	Cells    []int
	Parallel bool
}

// Response carries a query's answer: the neighbors, the merged scan
// statistics, and the partitions probed in visit order.
type Response struct {
	Results    []Result
	Stats      scan.Stats
	Partitions []int
}

// validate rejects malformed requests with caller-actionable errors
// before any scanning starts.
func (ix *Index) validate(s *Snapshot, req Request) error {
	if req.K <= 0 {
		return fmt.Errorf("index: k must be positive, got %d", req.K)
	}
	if len(req.Query) != ix.Dim {
		return fmt.Errorf("index: query dim %d != index dim %d", len(req.Query), ix.Dim)
	}
	if req.NProbe < 0 || req.NProbe > len(s.Parts) {
		return fmt.Errorf("index: nprobe %d out of range [1,%d]", req.NProbe, len(s.Parts))
	}
	if len(req.Cells) > 0 {
		if req.NProbe > 1 {
			return fmt.Errorf("index: explicit cells and nprobe %d are mutually exclusive", req.NProbe)
		}
		seen := make(map[int]bool, len(req.Cells))
		for _, c := range req.Cells {
			if c < 0 || c >= len(s.Parts) {
				return fmt.Errorf("index: cell %d out of range [0,%d)", c, len(s.Parts))
			}
			if seen[c] {
				return fmt.Errorf("index: cell %d listed twice", c)
			}
			seen[c] = true
		}
	}
	if req.Engine != EngineModel && req.Engine != EngineNative {
		return fmt.Errorf("index: unknown engine %v", req.Engine)
	}
	if !req.Backend.Available() {
		return fmt.Errorf("index: backend %v not available on this machine (have %v)", req.Backend, AvailableBackends())
	}
	if req.Backend != BackendAuto && req.Engine == EngineModel {
		return fmt.Errorf("index: backend %v selects native block kernels; the model engine has none", req.Backend)
	}
	if ix.PQ.M != layout.M || ix.PQ.KStar() != 256 {
		return fmt.Errorf("index: scan kernels require PQ 8x8, index uses %v", ix.PQ.Config)
	}
	return nil
}

// Query answers one request, honoring ctx cancellation and deadlines:
// the context is checked before every partition scan, so a multi-probe
// query under a tight deadline stops between cells rather than running
// to completion.
//
// The whole query runs against one atomically loaded snapshot and takes
// no locks: concurrent mutations publish new snapshots and never touch
// the one in hand, so even a multi-probe query sees every partition at
// one consistent point in time.
func (ix *Index) Query(ctx context.Context, req Request) (*Response, error) {
	return ix.querySnap(ctx, ix.snap.Load(), req)
}

// querySnap is Query pinned to an explicit snapshot; QueryBatch loads
// the snapshot once and shares it across all worker goroutines so one
// batch answers from one consistent view.
func (ix *Index) querySnap(ctx context.Context, s *Snapshot, req Request) (*Response, error) {
	if err := ix.validate(s, req); err != nil {
		return nil, err
	}
	nprobe := req.NProbe
	if nprobe == 0 {
		nprobe = 1
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Explicit cell lists skip routing entirely: the caller (a cluster
	// router, or a test pinning a scan) already decided which cells
	// matter. Scanned in the given order; results are identical to a
	// multi-probe scan visiting the same set because the bounded heap's
	// retained set is order-independent.
	if len(req.Cells) > 0 {
		if req.Parallel {
			return ix.queryParallel(ctx, s, req, req.Cells)
		}
		return ix.queryCells(ctx, s, req, req.Cells)
	}

	if nprobe == 1 {
		part := ix.RoutePartition(req.Query)
		res, stats, err := ix.searchPartition(s, req, part)
		if err != nil {
			return nil, err
		}
		return &Response{Results: res, Stats: stats, Partitions: []int{part}}, nil
	}

	// Multi-probe: visit the nprobe cells closest to the query and merge
	// their neighbors. RankCells breaks coarse-distance ties by cell id,
	// so the probed set is reproducible — and matches what a cluster
	// router ranking the same centroids independently would select.
	ids := RankCells(req.Query, ix.Coarse)[:nprobe]
	if req.Parallel {
		return ix.queryParallel(ctx, s, req, ids)
	}
	return ix.queryCells(ctx, s, req, ids)
}

// queryCells scans the given cells sequentially and merges their
// neighbors — the shared tail of the multi-probe and explicit-cells
// paths.
func (ix *Index) queryCells(ctx context.Context, s *Snapshot, req Request, cellIDs []int) (*Response, error) {
	heap := topk.New(req.K)
	resp := &Response{Partitions: make([]int, 0, len(cellIDs))}
	for _, c := range cellIDs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, st, err := ix.searchPartition(s, req, c)
		if err != nil {
			return nil, err
		}
		for _, r := range res {
			heap.Push(r.ID, r.Distance)
		}
		resp.Stats.Merge(st)
		resp.Partitions = append(resp.Partitions, c)
	}
	resp.Results = heap.Results()
	return resp, nil
}

// RankCells orders every cell id by ascending coarse distance between
// the query and coarse's rows (ties by cell id) — step 1 of Algorithm 1
// as a standalone function. It is the one routing order in the system:
// Query's multi-probe path and the scatter-gather cluster router
// (internal/cluster) both rank with it, which is what lets a router
// that only holds the coarse centroids pick the exact probe set a
// single-node multi-probe query would, ties included.
func RankCells(query []float32, coarse vec.Matrix) []int {
	n := coarse.Rows()
	type cell struct {
		id int
		d  float32
	}
	cells := make([]cell, n)
	for i := 0; i < n; i++ {
		cells[i] = cell{id: i, d: vec.L2Squared(query, coarse.Row(i))}
	}
	sort.Slice(cells, func(a, b int) bool {
		if cells[a].d != cells[b].d {
			return cells[a].d < cells[b].d
		}
		return cells[a].id < cells[b].id
	})
	out := make([]int, n)
	for i, c := range cells {
		out[i] = c.id
	}
	return out
}

// queryParallel scans the probed cells of one query concurrently — the
// cross-partition parallelism extension of internal/par beyond its
// construction-time use. Each cell runs on its own goroutine (par.For
// caps concurrency at GOMAXPROCS) against the same snapshot; per-cell
// results are merged sequentially in cell-visit order afterwards, so
// Results and Stats are byte-identical to the sequential multi-probe
// path: the retained set of a bounded heap is the k smallest
// (distance, id) pairs regardless of push order, and stats (float64 op
// sums included) accumulate in the deterministic cell order.
func (ix *Index) queryParallel(ctx context.Context, s *Snapshot, req Request, cellIDs []int) (*Response, error) {
	type partial struct {
		res []Result
		s   scan.Stats
		err error
	}
	parts := make([]partial, len(cellIDs))
	par.For(len(cellIDs), func(i int) {
		if err := ctx.Err(); err != nil {
			parts[i].err = err
			return
		}
		parts[i].res, parts[i].s, parts[i].err =
			ix.searchPartition(s, req, cellIDs[i])
	})
	heap := topk.New(req.K)
	resp := &Response{Partitions: make([]int, 0, len(cellIDs))}
	for i, p := range parts {
		if p.err != nil {
			return nil, p.err
		}
		for _, r := range p.res {
			heap.Push(r.ID, r.Distance)
		}
		resp.Stats.Merge(p.s)
		resp.Partitions = append(resp.Partitions, cellIDs[i])
	}
	resp.Results = heap.Results()
	return resp, nil
}

// QueryBatch answers req for every row of queries concurrently, one
// goroutine per core — the deployment model the paper assumes ("PQ Scan
// parallelizes naturally over multiple queries by running each query on
// a different core", §3.1). Responses are returned in query order. The
// snapshot is loaded once and shared by every worker, so the whole batch
// answers from one consistent view regardless of concurrent mutations;
// Fast Scan layouts for every partition are built up front so workers
// hit only the lock-free cached path. Cancelling ctx makes in-flight
// workers stop between partition scans and the batch return the
// context's error.
func (ix *Index) QueryBatch(ctx context.Context, queries vec.Matrix, req Request) ([]*Response, error) {
	s := ix.snap.Load()
	if queries.Dim != ix.Dim {
		return nil, fmt.Errorf("index: query dim %d != index dim %d", queries.Dim, ix.Dim)
	}
	if req.Kernel == KernelFastScan || req.Kernel == KernelFastScan256 {
		for _, pe := range s.Parts {
			if pe.paged != nil {
				// Paged epochs carry their layout in the extent; there is
				// nothing to pre-build, and probes hydrate per pin.
				continue
			}
			if _, err := pe.FastScanner(ix.opt.FastScan); err != nil {
				return nil, err
			}
		}
	}
	// The batch already runs one worker per core; per-query partition
	// parallelism on top would only oversubscribe the scheduler, so it
	// is dropped here (results are identical either way).
	req.Parallel = false
	n := queries.Rows()
	out := make([]*Response, n)
	errs := make([]error, n)
	par.For(n, func(i int) {
		r := req
		r.Query = queries.Row(i)
		out[i], errs[i] = ix.querySnap(ctx, s, r)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
