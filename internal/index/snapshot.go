// Copy-on-write partition epochs: the concurrency core of the index.
//
// The serving state is an immutable Snapshot — an array of per-partition
// epochs — behind one atomic pointer. Queries load the pointer once and
// scan with no locks: everything reachable from a Snapshot is sealed
// (never mutated after publish), so a query's entire view is consistent
// no matter what mutations land concurrently. Mutations build a
// replacement partition off the serving path (copy-on-write, reusing the
// incremental Fast Scan group repack) and publish it with a single
// compare-and-swap of the snapshot pointer; a mutation therefore only
// contends with other mutations of the same partition (the per-partition
// builder locks), never with queries.
//
// See DESIGN.md §11 "Epochs, copy-on-write, and compaction" for the
// lifecycle and publish-ordering rules.
package index

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pqfastscan/internal/scan"
)

// PartEpoch is one published, immutable version of a partition. Part is
// sealed: no code path mutates a partition reachable from a snapshot.
// The Fast Scan layout rides along with the epoch — it is built from
// Part's codes, so it can never describe any other version — which is
// what makes stale scanners unreachable: replacing the epoch replaces
// the scanner with it.
type PartEpoch struct {
	// Part holds the sealed codes, ids and tombstones of this epoch.
	Part *scan.Partition
	// Epoch is the global publish sequence number at creation; it only
	// grows, so operators can watch /stats to see partitions advance.
	Epoch uint64

	// fast is the epoch's PQ Fast Scan layout. Mutations that change
	// codes clone-and-extend the previous epoch's layout so warmth
	// carries forward; a fresh build (or restore) leaves it nil and the
	// first Fast Scan query constructs it under fastMu — a builder lock
	// on the cold path only, never the steady-state read path, which is
	// one atomic load.
	fast   atomic.Pointer[scan.FastScan]
	fastMu sync.Mutex

	// paged, when non-nil, marks a disk-resident epoch: Part (and any
	// fast layout) are stubs whose bulk data lives in this extent and is
	// pinned per probe (paging.go). Tombstone-only successor epochs
	// share their predecessor's extent — a Delete changes no codes.
	paged *pagedExtent
}

// FastScanner returns the epoch's Fast Scan layout, building it on first
// use. The fast path is a single atomic load; construction of a cold
// epoch is serialized by the epoch's own builder lock so concurrent
// queries share one build. Because the layout is cached on the epoch —
// not on the index — a scanner can never outlive or predate the codes it
// describes.
func (pe *PartEpoch) FastScanner(opt scan.FastScanOptions) (*scan.FastScan, error) {
	if pe.paged != nil {
		// Paged epochs hold a stub layout that must be hydrated against a
		// pinned extent payload; handing it out here would let a caller
		// scan nil data. The scan path acquires hydrated views through
		// pagedExtent.view instead (paging.go).
		return nil, fmt.Errorf("index: partition epoch is disk-resident; FastScanner requires a RAM epoch")
	}
	if fs := pe.fast.Load(); fs != nil {
		return fs, nil
	}
	pe.fastMu.Lock()
	defer pe.fastMu.Unlock()
	if fs := pe.fast.Load(); fs != nil {
		return fs, nil
	}
	fs, err := scan.NewFastScan(pe.Part, opt)
	if err != nil {
		return nil, err
	}
	pe.fast.Store(fs)
	return fs, nil
}

// Snapshot is one immutable point-in-time view of every partition. A
// query (or a persist pass) loads it once and works entirely on it;
// concurrent publishes create new Snapshots and never touch old ones.
type Snapshot struct {
	Parts []*PartEpoch
}

// Live returns the number of vectors in the snapshot that are not
// tombstoned.
func (s *Snapshot) Live() int {
	total := 0
	for _, pe := range s.Parts {
		total += pe.Part.Live()
	}
	return total
}

// Snapshot returns the current serving snapshot. The returned value is
// immutable and remains valid (and internally consistent) indefinitely;
// it just stops being current once a mutation publishes a successor.
func (ix *Index) Snapshot() *Snapshot { return ix.snap.Load() }

// Partitions returns the number of coarse cells. It is fixed at
// construction; epochs replace partition contents, never the cell count.
func (ix *Index) Partitions() int { return len(ix.snap.Load().Parts) }

// Parts returns the sealed partitions of the current snapshot, in cell
// order — a convenience for tests, benchmarks and offline tooling that
// want the partition data without tracking epochs. The slice is freshly
// allocated; the partitions it points at are immutable. On a paged
// index each partition is materialized into RAM (fresh copies, no pin
// lifetimes); a failing extent read panics — offline tooling has no
// error channel and a torn cache file is unrecoverable here.
func (ix *Index) Parts() []*scan.Partition {
	s := ix.snap.Load()
	out := make([]*scan.Partition, len(s.Parts))
	for i, pe := range s.Parts {
		if pe.paged != nil {
			p, err := ix.materializePart(pe)
			if err != nil {
				panic(fmt.Sprintf("index: materializing paged partition %d: %v", i, err))
			}
			out[i] = p
			continue
		}
		out[i] = pe.Part
	}
	return out
}

// install seeds the snapshot with freshly built partitions (Build and
// Restore). Not safe under concurrent use; callers own the index
// exclusively at that point.
func (ix *Index) install(parts []*scan.Partition) {
	pes := make([]*PartEpoch, len(parts))
	for i, p := range parts {
		pes[i] = &PartEpoch{Part: p, Epoch: ix.epoch.Add(1)}
	}
	ix.partMu = make([]sync.Mutex, len(parts))
	ix.snap.Store(&Snapshot{Parts: pes})
}

// publish replaces partition c's epoch with a new sealed partition (and,
// optionally, its carried-forward Fast Scan layout) by swapping in a new
// snapshot whose other slots are shared with the old one. The caller
// must hold ix.partMu[c], which makes slot c stable across the CAS loop;
// retries happen only when another partition publishes concurrently, so
// the loop is short and lock-free.
func (ix *Index) publish(c int, part *scan.Partition, fast *scan.FastScan) *PartEpoch {
	pe := &PartEpoch{Part: part, Epoch: ix.epoch.Add(1)}
	if fast != nil {
		pe.fast.Store(fast)
	}
	return ix.publishAt(c, pe)
}

// publishAt installs a fully built epoch into slot c — the publish core
// shared with the paged mutation paths, which must allocate the epoch
// number (and write the extent named after it) before the epoch exists.
// The caller must hold ix.partMu[c].
func (ix *Index) publishAt(c int, pe *PartEpoch) *PartEpoch {
	for {
		old := ix.snap.Load()
		parts := make([]*PartEpoch, len(old.Parts))
		copy(parts, old.Parts)
		parts[c] = pe
		if ix.snap.CompareAndSwap(old, &Snapshot{Parts: parts}) {
			return pe
		}
	}
}
