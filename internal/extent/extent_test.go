package extent

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pqfastscan/internal/fsio"
	"pqfastscan/internal/layout"
)

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(fsio.OS, filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRoundTrip writes a multi-section extent and reads it back,
// checking section contents, payload page alignment on disk, and
// 64-byte alignment of every section in memory.
func TestRoundTrip(t *testing.T) {
	s := openStore(t)
	var b Builder
	codes := bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7}, 100) // 700 bytes, unaligned length
	ids := []int64{10, -20, 1 << 40}
	b.Add("codes", codes)
	b.Add("ids", Int64Bytes(ids))
	b.Add("empty", nil)

	n, err := s.Write("i1-p0-e1", &b)
	if err != nil {
		t.Fatal(err)
	}
	if want := b.PayloadBytes(); n != want {
		t.Fatalf("Write returned %d payload bytes, PayloadBytes says %d", n, want)
	}

	// On-disk: header page then payload then end magic.
	raw, err := os.ReadFile(filepath.Join(s.Dir(), "i1-p0-e1"+Suffix))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != PageSize+n+8 {
		t.Fatalf("file size %d, want %d", len(raw), PageSize+n+8)
	}
	if !bytes.Equal(raw[PageSize:PageSize+len(codes)], codes) {
		t.Fatal("payload does not start at the page boundary")
	}

	p, err := s.Read("i1-p0-e1")
	if err != nil {
		t.Fatal(err)
	}
	got, ok := p.Section("codes")
	if !ok || !bytes.Equal(got, codes) {
		t.Fatalf("codes section mismatch (ok=%v)", ok)
	}
	if !layout.Aligned(got) {
		t.Fatal("codes section not 64-byte aligned")
	}
	idsGot, ok := p.Section("ids")
	if !ok {
		t.Fatal("ids section missing")
	}
	if !layout.Aligned(idsGot) {
		t.Fatal("ids section not 64-byte aligned")
	}
	back := BytesInt64(idsGot)
	for i, v := range ids {
		if back[i] != v {
			t.Fatalf("ids[%d] = %d, want %d", i, back[i], v)
		}
	}
	if e, ok := p.Section("empty"); !ok || len(e) != 0 {
		t.Fatalf("empty section: %v %v", e, ok)
	}
	if _, ok := p.Section("nope"); ok {
		t.Fatal("phantom section")
	}
}

// TestCorruptionDetected flips payload bytes and truncates the file;
// both must fail the read with CRC / end-magic errors rather than
// return garbage to the scan path.
func TestCorruptionDetected(t *testing.T) {
	s := openStore(t)
	var b Builder
	b.Add("data", bytes.Repeat([]byte{0xab}, 1000))
	if _, err := s.Write("x", &b); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), "x"+Suffix)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte.
	bad := append([]byte(nil), raw...)
	bad[PageSize+17] ^= 0x01
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read("x"); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupted payload read: err=%v, want CRC mismatch", err)
	}

	// Truncate mid-payload.
	if err := os.WriteFile(path, raw[:PageSize+100], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read("x"); err == nil {
		t.Fatal("truncated extent read succeeded")
	}

	// Bad magic.
	bad = append([]byte(nil), raw...)
	bad[0] = 'X'
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read("x"); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad-magic read: err=%v", err)
	}
}

// TestSweepOrphans checks that attach-time sweeping removes in-flight
// temp files and dead extents while keeping live ones.
func TestSweepOrphans(t *testing.T) {
	s := openStore(t)
	var b Builder
	b.Add("d", []byte{1})
	for _, name := range []string{"live", "dead"} {
		if _, err := s.Write(name, &b); err != nil {
			t.Fatal(err)
		}
	}
	tmp := filepath.Join(s.Dir(), TempPrefix+"orphan")
	if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	removed, err := s.SweepOrphans(func(name string) bool { return name == "live" })
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed %v, want temp orphan + dead extent", removed)
	}
	if _, err := s.Read("live"); err != nil {
		t.Fatalf("live extent swept: %v", err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("temp orphan survived")
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), "dead"+Suffix)); !os.IsNotExist(err) {
		t.Fatal("dead extent survived")
	}

	// Remove is idempotent: removing an already-swept extent is fine.
	if err := s.Remove("dead"); err != nil {
		t.Fatalf("Remove of missing extent: %v", err)
	}
}
