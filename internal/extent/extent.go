// Package extent gives sealed partition payloads a stable identity and
// a page-aligned on-disk representation — the shared immutable-extent
// abstraction under the beyond-RAM serving path (DESIGN.md §15).
//
// An extent is a write-once file holding one partition epoch's bulk
// data as named sections (row-major codes, materialized ids, packed
// grouped blocks, ...). The format extends the discipline of the v3
// snapshot format in internal/persist — magic, CRC-32C (Castagnoli)
// over the payload, end magic for truncation detection, atomic
// temp-write + fsync + rename publication — and adds the property the
// scan path needs: the payload starts at a page boundary (PageSize) and
// every section starts at a 64-byte boundary within it, so a payload
// read into a layout.Alignment-aligned buffer hands the asm kernels
// their blocks at the required alignment with zero copies.
//
// Extents are a node-local cache, not durable state: they are derived
// from the snapshot + WAL at attach time and rebuilt on restart, so the
// byte order is the writing machine's native order and files are never
// shipped between hosts. The store performs all I/O through an fsio.FS
// so the crash harness can interpose failures.
package extent

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"path/filepath"
	"strings"
	"unsafe"

	"pqfastscan/internal/fsio"
	"pqfastscan/internal/layout"
)

const (
	// PageSize is the payload's file offset: one page, so the header
	// never shares a page with scanned data and direct-I/O-style access
	// patterns stay aligned.
	PageSize = 4096
	// SectionAlign is the alignment of every section within the payload
	// (one cache line, matching layout.Alignment).
	SectionAlign = layout.Alignment
	// TempPrefix marks in-flight extent writes; a crash between write
	// and rename leaves such a file behind for the startup sweep.
	TempPrefix = ".pqfsext-"
	// Suffix is the extent file suffix within a store directory.
	Suffix = ".extent"
)

var (
	magic      = [8]byte{'P', 'Q', 'F', 'S', 'E', 'X', 'T', '1'}
	endMagic   = [8]byte{'P', 'Q', 'F', 'S', 'E', 'X', 'T', 'E'}
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// Builder accumulates named sections for one extent write. Section
// order is preserved; each section is padded to SectionAlign within the
// payload.
type Builder struct {
	names []string
	blobs [][]byte
}

// Add appends a named section. The name must be non-empty, unique and
// at most 255 bytes; data may be empty (the section exists with length
// zero). The data slice is retained until Write, not copied.
func (b *Builder) Add(name string, data []byte) {
	if name == "" || len(name) > 255 {
		panic("extent: section name empty or too long")
	}
	for _, n := range b.names {
		if n == name {
			panic("extent: duplicate section " + name)
		}
	}
	b.names = append(b.names, name)
	b.blobs = append(b.blobs, data)
}

// PayloadBytes returns the payload size the builder's sections occupy
// on disk (section data plus inter-section alignment padding).
func (b *Builder) PayloadBytes() int64 {
	var off int64
	for _, blob := range b.blobs {
		off = alignUp(off+int64(len(blob)), SectionAlign)
	}
	return off
}

func alignUp(n int64, a int64) int64 { return (n + a - 1) &^ (a - 1) }

// Payload is a read extent: one Alignment-aligned buffer holding the
// whole payload, plus the section directory to slice it by name.
type Payload struct {
	buf      []byte
	sections map[string]span
}

type span struct{ off, len int64 }

// Bytes returns the full payload buffer (aligned base).
func (p *Payload) Bytes() []byte { return p.buf }

// Section returns the named section, aliasing the payload buffer, and
// whether it exists. The base of every section is 64-byte aligned.
func (p *Payload) Section(name string) ([]byte, bool) {
	s, ok := p.sections[name]
	if !ok {
		return nil, false
	}
	return p.buf[s.off : s.off+s.len : s.off+s.len], true
}

// Int64Bytes views a []int64 as bytes in native order, for writing an
// id section without a copy. Extents are node-local (see package doc),
// so native order round-trips.
func Int64Bytes(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

// BytesInt64 views a byte section as []int64 in native order. The
// section base must be 8-byte aligned — guaranteed for extent sections
// (SectionAlign) — and the length a multiple of 8.
func BytesInt64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	if len(b)%8 != 0 {
		panic("extent: int64 section length not a multiple of 8")
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		panic("extent: int64 section base not 8-byte aligned")
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// Store reads and writes extents in one directory through an fsio.FS.
// A store directory is owned by exactly one serving process at a time;
// concurrent owners would sweep each other's cache files.
type Store struct {
	fsys fsio.FS
	dir  string
}

// Open returns a store rooted at dir, creating the directory if absent.
func Open(fsys fsio.FS, dir string) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{fsys: fsys, dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(name string) string { return filepath.Join(s.dir, name+Suffix) }

// Write publishes the builder's sections as the named extent, using the
// atomic temp + fsync + rename + dir-fsync protocol of the persist
// layer, and returns the payload size in bytes.
func (s *Store) Write(name string, b *Builder) (int64, error) {
	f, err := s.fsys.CreateTemp(s.dir, TempPrefix+"*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	defer func() {
		if f != nil {
			f.Close()
			s.fsys.Remove(tmp)
		}
	}()

	// Header page: magic, section directory, payload length, CRC.
	header := make([]byte, 0, PageSize)
	header = append(header, magic[:]...)
	header = binary.LittleEndian.AppendUint32(header, uint32(len(b.names)))
	crc := crc32.New(castagnoli)
	var off int64
	for i, n := range b.names {
		header = append(header, byte(len(n)))
		header = append(header, n...)
		header = binary.LittleEndian.AppendUint64(header, uint64(off))
		header = binary.LittleEndian.AppendUint64(header, uint64(len(b.blobs[i])))
		off = alignUp(off+int64(len(b.blobs[i])), SectionAlign)
	}
	payloadLen := off
	header = binary.LittleEndian.AppendUint64(header, uint64(payloadLen))
	var pad [SectionAlign]byte
	for _, blob := range b.blobs {
		crc.Write(blob)
		if p := alignUp(int64(len(blob)), SectionAlign) - int64(len(blob)); p > 0 {
			crc.Write(pad[:p])
		}
	}
	header = binary.LittleEndian.AppendUint32(header, crc.Sum32())
	if len(header) > PageSize {
		return 0, fmt.Errorf("extent %s: section directory exceeds one page (%d bytes)", name, len(header))
	}
	header = append(header, make([]byte, PageSize-len(header))...)

	if _, err := f.Write(header); err != nil {
		return 0, err
	}
	for _, blob := range b.blobs {
		if _, err := f.Write(blob); err != nil {
			return 0, err
		}
		if p := alignUp(int64(len(blob)), SectionAlign) - int64(len(blob)); p > 0 {
			if _, err := f.Write(pad[:p]); err != nil {
				return 0, err
			}
		}
	}
	if _, err := f.Write(endMagic[:]); err != nil {
		return 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	if err := f.Close(); err != nil {
		f = nil
		s.fsys.Remove(tmp)
		return 0, err
	}
	f = nil
	if err := s.fsys.Rename(tmp, s.path(name)); err != nil {
		s.fsys.Remove(tmp)
		return 0, err
	}
	if err := s.fsys.SyncDir(s.dir); err != nil {
		return 0, err
	}
	return payloadLen, nil
}

// Read loads the named extent: it validates magic, end magic and the
// payload CRC, and returns the payload in a layout.Alignment-aligned
// buffer so sections (and in particular packed blocks) can be scanned
// in place.
func (s *Store) Read(name string) (*Payload, error) {
	f, err := s.fsys.Open(s.path(name))
	if err != nil {
		return nil, err
	}
	defer f.Close()

	header := make([]byte, PageSize)
	if _, err := io.ReadFull(f, header); err != nil {
		return nil, fmt.Errorf("extent %s: header: %w", name, err)
	}
	if [8]byte(header[:8]) != magic {
		return nil, fmt.Errorf("extent %s: bad magic", name)
	}
	pos := 8
	nsec := int(binary.LittleEndian.Uint32(header[pos:]))
	pos += 4
	sections := make(map[string]span, nsec)
	order := make([]span, 0, nsec)
	for i := 0; i < nsec; i++ {
		if pos+1 > len(header) {
			return nil, fmt.Errorf("extent %s: truncated section directory", name)
		}
		nl := int(header[pos])
		pos++
		if pos+nl+16 > len(header) {
			return nil, fmt.Errorf("extent %s: truncated section directory", name)
		}
		secName := string(header[pos : pos+nl])
		pos += nl
		off := int64(binary.LittleEndian.Uint64(header[pos:]))
		length := int64(binary.LittleEndian.Uint64(header[pos+8:]))
		pos += 16
		if off < 0 || length < 0 || off%SectionAlign != 0 {
			return nil, fmt.Errorf("extent %s: bad section %s geometry", name, secName)
		}
		sections[secName] = span{off, length}
		order = append(order, span{off, length})
	}
	if pos+12 > len(header) {
		return nil, fmt.Errorf("extent %s: truncated header", name)
	}
	payloadLen := int64(binary.LittleEndian.Uint64(header[pos:]))
	wantCRC := binary.LittleEndian.Uint32(header[pos+8:])
	for _, sp := range order {
		if sp.off+sp.len > payloadLen {
			return nil, fmt.Errorf("extent %s: section beyond payload", name)
		}
	}

	buf := layout.AlignedBytes(int(payloadLen), 0)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("extent %s: payload: %w", name, err)
	}
	var tail [8]byte
	if _, err := io.ReadFull(f, tail[:]); err != nil {
		return nil, fmt.Errorf("extent %s: truncated (no end magic): %w", name, err)
	}
	if tail != endMagic {
		return nil, fmt.Errorf("extent %s: bad end magic", name)
	}
	if got := crc32.Checksum(buf, castagnoli); got != wantCRC {
		return nil, fmt.Errorf("extent %s: payload CRC mismatch (got %08x want %08x)", name, got, wantCRC)
	}
	return &Payload{buf: buf, sections: sections}, nil
}

// Remove deletes the named extent. A missing file is not an error (the
// finalizer-driven GC may race a startup sweep).
func (s *Store) Remove(name string) error {
	err := s.fsys.Remove(s.path(name))
	if err != nil && errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// SweepOrphans removes in-flight temp files and every extent for which
// keep returns false, returning the removed paths. Run at attach time,
// before any writer is active: extents are a rebuildable cache, so
// anything a previous owner left behind is garbage.
func (s *Store) SweepOrphans(keep func(name string) bool) ([]string, error) {
	removed, err := fsio.SweepTemp(s.fsys, s.dir, TempPrefix)
	if err != nil {
		return removed, err
	}
	entries, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return removed, err
	}
	swept := false
	for _, e := range entries {
		base := e.Name()
		if e.IsDir() || !strings.HasSuffix(base, Suffix) {
			continue
		}
		name := strings.TrimSuffix(base, Suffix)
		if keep != nil && keep(name) {
			continue
		}
		path := filepath.Join(s.dir, base)
		if err := s.fsys.Remove(path); err != nil {
			return removed, err
		}
		removed = append(removed, path)
		swept = true
	}
	if swept {
		if err := s.fsys.SyncDir(s.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}
