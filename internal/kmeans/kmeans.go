// Package kmeans implements the Lloyd k-means quantizer training used by
// product quantization ("We consider Lloyd-optimal quantizers which map
// vectors to their closest centroids and can be built using k-means",
// paper §2.1), with k-means++ seeding and empty-cluster repair.
//
// It also implements the same-size k-means variation (Schubert, reference
// [24] of the paper) that PQ Fast Scan uses to compute its optimized
// assignment of sub-quantizer centroid indexes: centroids are grouped into
// 16 clusters of exactly 16 elements each, and members of one cluster
// receive consecutive indexes so that each 16-element portion of a
// distance table holds distances to nearby centroids (§4.3, Figure 11).
package kmeans

import (
	"fmt"
	"math"
	"sort"

	"pqfastscan/internal/rng"
	"pqfastscan/internal/vec"
)

// Config controls a k-means run.
type Config struct {
	K       int // number of centroids
	MaxIter int // maximum Lloyd iterations (default 25)
	Seed    uint64
	Verbose bool
}

// Result holds the trained codebook.
type Result struct {
	Centroids vec.Matrix // K x Dim
	Assign    []int      // per training vector, index of closest centroid
	Inertia   float64    // sum of squared distances to assigned centroids
	Iters     int        // iterations actually run
}

// Train runs k-means++ seeding followed by Lloyd iterations on the rows of
// data. It returns an error when the training set is smaller than K.
func Train(data vec.Matrix, cfg Config) (*Result, error) {
	n, dim := data.Rows(), data.Dim
	if cfg.K <= 0 {
		return nil, fmt.Errorf("kmeans: K must be positive, got %d", cfg.K)
	}
	if n < cfg.K {
		return nil, fmt.Errorf("kmeans: %d training vectors for K=%d centroids", n, cfg.K)
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 25
	}
	r := rng.New(cfg.Seed)

	centroids := seedPlusPlus(data, cfg.K, r)
	assign := make([]int, n)
	counts := make([]int, cfg.K)
	res := &Result{Centroids: centroids, Assign: assign}

	prevInertia := math.Inf(1)
	for iter := 0; iter < maxIter; iter++ {
		// Assignment step.
		inertia := 0.0
		for i := 0; i < n; i++ {
			c, d := vec.ArgminL2(data.Row(i), centroids.Data, dim)
			assign[i] = c
			inertia += float64(d)
		}
		// Update step.
		vec.Zero(centroids.Data)
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			vec.Add(centroids.Row(assign[i]), data.Row(i))
			counts[assign[i]]++
		}
		for c := 0; c < cfg.K; c++ {
			if counts[c] == 0 {
				// Empty-cluster repair: restart the centroid on a random
				// training vector so every code stays usable.
				copy(centroids.Row(c), data.Row(r.Intn(n)))
				continue
			}
			vec.Scale(centroids.Row(c), 1/float32(counts[c]))
		}
		res.Iters = iter + 1
		res.Inertia = inertia
		if math.Abs(prevInertia-inertia) <= 1e-4*math.Abs(prevInertia) {
			break
		}
		prevInertia = inertia
	}
	// Final assignment against the last centroid update.
	inertia := 0.0
	for i := 0; i < n; i++ {
		c, d := vec.ArgminL2(data.Row(i), centroids.Data, dim)
		assign[i] = c
		inertia += float64(d)
	}
	res.Inertia = inertia
	return res, nil
}

// seedPlusPlus picks K initial centroids with the k-means++ D² weighting.
func seedPlusPlus(data vec.Matrix, k int, r *rng.Source) vec.Matrix {
	n, dim := data.Rows(), data.Dim
	centroids := vec.NewMatrix(k, dim)
	first := r.Intn(n)
	copy(centroids.Row(0), data.Row(first))

	d2 := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		d2[i] = float64(vec.L2Squared(data.Row(i), centroids.Row(0)))
		total += d2[i]
	}
	for c := 1; c < k; c++ {
		idx := sampleWeighted(d2, total, r)
		copy(centroids.Row(c), data.Row(idx))
		// Refresh the shortest-distance table.
		total = 0
		for i := 0; i < n; i++ {
			d := float64(vec.L2Squared(data.Row(i), centroids.Row(c)))
			if d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
	}
	return centroids
}

func sampleWeighted(w []float64, total float64, r *rng.Source) int {
	if total <= 0 {
		return r.Intn(len(w))
	}
	target := r.Float64() * total
	acc := 0.0
	for i, v := range w {
		acc += v
		if acc >= target {
			return i
		}
	}
	return len(w) - 1
}

// SameSize clusters the rows of data into nClusters clusters of exactly
// len(data)/nClusters members each, following the same-size k-means
// variation of reference [24]: a regular k-means produces seeds, then
// points are ordered by the benefit of their best assignment and greedily
// placed, followed by improvement swaps. It returns the per-row cluster id.
//
// PQ Fast Scan uses this with 256 sub-quantizer centroids as the rows and
// nClusters=16, so each cluster of 16 centroids becomes one 16-index
// portion of a distance table (§4.3).
func SameSize(data vec.Matrix, nClusters int, seed uint64) ([]int, error) {
	n := data.Rows()
	if nClusters <= 0 || n%nClusters != 0 {
		return nil, fmt.Errorf("kmeans: %d rows not divisible into %d same-size clusters", n, nClusters)
	}
	size := n / nClusters
	km, err := Train(data, Config{K: nClusters, MaxIter: 25, Seed: seed})
	if err != nil {
		return nil, err
	}
	centroids := km.Centroids

	// Distance matrix point x cluster.
	dist := make([][]float32, n)
	for i := 0; i < n; i++ {
		dist[i] = make([]float32, nClusters)
		for c := 0; c < nClusters; c++ {
			dist[i][c] = vec.L2Squared(data.Row(i), centroids.Row(c))
		}
	}

	// Initial greedy assignment ordered by (best - worst) benefit: points
	// that lose the most from a bad placement choose first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return benefit(dist[order[a]]) > benefit(dist[order[b]])
	})
	assign := make([]int, n)
	counts := make([]int, nClusters)
	for _, i := range order {
		best, bestD := -1, float32(math.Inf(1))
		for c := 0; c < nClusters; c++ {
			if counts[c] >= size {
				continue
			}
			if dist[i][c] < bestD {
				bestD = dist[i][c]
				best = c
			}
		}
		assign[i] = best
		counts[best]++
	}

	// Improvement phase: swap pairs whose exchange reduces total distance.
	for pass := 0; pass < 8; pass++ {
		improved := false
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				ci, cj := assign[i], assign[j]
				if ci == cj {
					continue
				}
				cur := dist[i][ci] + dist[j][cj]
				swapped := dist[i][cj] + dist[j][ci]
				if swapped < cur {
					assign[i], assign[j] = cj, ci
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return assign, nil
}

func benefit(d []float32) float32 {
	minV, maxV := float32(math.Inf(1)), float32(math.Inf(-1))
	for _, v := range d {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	return maxV - minV
}
