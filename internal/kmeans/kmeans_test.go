package kmeans

import (
	"math"
	"testing"

	"pqfastscan/internal/rng"
	"pqfastscan/internal/vec"
)

// blobs generates k well-separated Gaussian clusters of m points each.
func blobs(k, m, dim int, seed uint64) (data vec.Matrix, labels []int) {
	r := rng.New(seed)
	data = vec.NewMatrix(k*m, dim)
	labels = make([]int, k*m)
	centers := vec.NewMatrix(k, dim)
	for c := 0; c < k; c++ {
		for d := 0; d < dim; d++ {
			centers.Row(c)[d] = float32(r.NormFloat64() * 50)
		}
	}
	for i := 0; i < k*m; i++ {
		c := i % k
		labels[i] = c
		for d := 0; d < dim; d++ {
			data.Row(i)[d] = centers.Row(c)[d] + float32(r.NormFloat64())
		}
	}
	return data, labels
}

func TestTrainRecoversBlobs(t *testing.T) {
	data, labels := blobs(5, 100, 8, 1)
	res, err := Train(data, Config{K: 5, MaxIter: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// All members of a true cluster must map to the same learned centroid.
	clusterOf := map[int]int{}
	for i, lab := range labels {
		if prev, ok := clusterOf[lab]; ok {
			if res.Assign[i] != prev {
				t.Fatalf("true cluster %d split across learned centroids", lab)
			}
		} else {
			clusterOf[lab] = res.Assign[i]
		}
	}
	if len(clusterOf) != 5 {
		t.Fatalf("learned %d distinct centroids for 5 blobs", len(clusterOf))
	}
}

func TestTrainAssignmentsAreNearest(t *testing.T) {
	data, _ := blobs(4, 50, 6, 3)
	res, err := Train(data, Config{K: 7, MaxIter: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < data.Rows(); i++ {
		want, _ := vec.ArgminL2(data.Row(i), res.Centroids.Data, data.Dim)
		if res.Assign[i] != want {
			t.Fatalf("vector %d assigned to %d, nearest is %d", i, res.Assign[i], want)
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	data, _ := blobs(3, 60, 4, 5)
	a, err := Train(data, Config{K: 6, MaxIter: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(data, Config{K: 6, MaxIter: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Centroids.Data {
		if a.Centroids.Data[i] != b.Centroids.Data[i] {
			t.Fatal("same-seed training produced different centroids")
		}
	}
	if a.Inertia != b.Inertia {
		t.Fatal("same-seed training produced different inertia")
	}
}

func TestTrainInertiaBeatsRandomAssignment(t *testing.T) {
	data, _ := blobs(8, 40, 8, 7)
	res, err := Train(data, Config{K: 8, MaxIter: 30, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Inertia of a single global centroid is the upper reference.
	global := vec.NewMatrix(1, data.Dim)
	for i := 0; i < data.Rows(); i++ {
		vec.Add(global.Row(0), data.Row(i))
	}
	vec.Scale(global.Row(0), 1/float32(data.Rows()))
	worst := 0.0
	for i := 0; i < data.Rows(); i++ {
		worst += float64(vec.L2Squared(data.Row(i), global.Row(0)))
	}
	if res.Inertia >= worst/10 {
		t.Fatalf("inertia %.1f not far below single-centroid %.1f", res.Inertia, worst)
	}
}

func TestTrainErrors(t *testing.T) {
	data := vec.NewMatrix(3, 2)
	if _, err := Train(data, Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Train(data, Config{K: 10}); err == nil {
		t.Error("K larger than training set accepted")
	}
}

func TestTrainKEqualsN(t *testing.T) {
	data, _ := blobs(4, 1, 3, 11)
	res, err := Train(data, Config{K: 4, MaxIter: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-6 {
		t.Fatalf("K = N should reach ~zero inertia, got %v", res.Inertia)
	}
}

func TestSameSizeExactSizes(t *testing.T) {
	data, _ := blobs(4, 64, 8, 13)
	for _, nClusters := range []int{2, 4, 8, 16} {
		assign, err := SameSize(data, nClusters, 3)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, nClusters)
		for _, c := range assign {
			if c < 0 || c >= nClusters {
				t.Fatalf("cluster id %d out of range", c)
			}
			counts[c]++
		}
		want := data.Rows() / nClusters
		for c, n := range counts {
			if n != want {
				t.Fatalf("cluster %d has %d members, want exactly %d", c, n, want)
			}
		}
	}
}

func TestSameSizeRejectsIndivisible(t *testing.T) {
	data := vec.NewMatrix(10, 2)
	if _, err := SameSize(data, 3, 1); err == nil {
		t.Error("indivisible clustering accepted")
	}
}

// TestSameSizeBeatsRandomGrouping: the same-size clustering objective
// (sum of point-to-cluster-centroid distances) must be meaningfully lower
// than a random equal-size grouping — the property §4.3 relies on for
// tight minimum tables.
func TestSameSizeBeatsRandomGrouping(t *testing.T) {
	data, _ := blobs(16, 16, 8, 17)
	assign, err := SameSize(data, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	objective := func(assign []int) float64 {
		centroids := vec.NewMatrix(16, data.Dim)
		counts := make([]int, 16)
		for i, c := range assign {
			vec.Add(centroids.Row(c), data.Row(i))
			counts[c]++
		}
		for c := 0; c < 16; c++ {
			vec.Scale(centroids.Row(c), 1/float32(counts[c]))
		}
		total := 0.0
		for i, c := range assign {
			total += float64(vec.L2Squared(data.Row(i), centroids.Row(c)))
		}
		return total
	}
	got := objective(assign)
	r := rng.New(23)
	randAssign := make([]int, data.Rows())
	for i, p := range r.Perm(data.Rows()) {
		randAssign[p] = i % 16
	}
	random := objective(randAssign)
	if got > random/2 {
		t.Fatalf("same-size objective %.1f not well below random %.1f", got, random)
	}
}

func TestSameSizeDeterministic(t *testing.T) {
	data, _ := blobs(8, 32, 4, 19)
	a, err := SameSize(data, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SameSize(data, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed SameSize differs")
		}
	}
}

func TestBenefitFinite(t *testing.T) {
	if b := benefit([]float32{1, 2, 3}); math.IsInf(float64(b), 0) || b != 2 {
		t.Fatalf("benefit = %v, want 2", b)
	}
}
