package faultnet

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// echoServer answers every request with a fixed body and counts hits.
func echoServer(t *testing.T, body string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func clientWith(tr *Transport) *http.Client {
	return &http.Client{Transport: tr}
}

func TestDropNeverReachesServer(t *testing.T) {
	srv, hits := echoServer(t, "ok")
	tr := New(nil, 1, Rule{Kind: KindDrop})
	_, err := clientWith(tr).Get(srv.URL)
	if err == nil {
		t.Fatal("want error from dropped request")
	}
	var op *net.OpError
	if !errors.As(err, &op) || op.Op != "dial" {
		t.Fatalf("drop must classify as a dial error (never sent), got %v", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("server saw %d requests; drop must fail before send", hits.Load())
	}
	if s := tr.Stats(); s.Drops != 1 {
		t.Fatalf("stats = %+v, want Drops=1", s)
	}
}

func TestResetReachesServerButSeversReply(t *testing.T) {
	srv, hits := echoServer(t, "ok")
	tr := New(nil, 1, Rule{Kind: KindReset})
	_, err := clientWith(tr).Get(srv.URL)
	if err == nil {
		t.Fatal("want error from reset request")
	}
	var op *net.OpError
	if !errors.As(err, &op) || op.Op != "read" {
		t.Fatalf("reset must classify as a read error (maybe sent), got %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests; reset must forward first", hits.Load())
	}
}

func TestResetMidBody(t *testing.T) {
	srv, hits := echoServer(t, strings.Repeat("x", 1000))
	tr := New(nil, 1, Rule{Kind: KindReset, BodyBytes: 10})
	resp, err := clientWith(tr).Get(srv.URL)
	if err != nil {
		t.Fatalf("mid-body reset must deliver the status line: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("want mid-body read error, got %d clean bytes", len(data))
	}
	if len(data) != 10 {
		t.Fatalf("got %d bytes before reset, want 10", len(data))
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests", hits.Load())
	}
}

func TestErrorBurstSynthesizesWithoutForwarding(t *testing.T) {
	srv, hits := echoServer(t, "ok")
	tr := New(nil, 1, Rule{Kind: KindError, Status: 503})
	resp, err := clientWith(tr).Get(srv.URL)
	if err != nil {
		t.Fatalf("error burst is an HTTP response, not a transport error: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if hits.Load() != 0 {
		t.Fatalf("server saw %d requests; burst must not forward", hits.Load())
	}
}

func TestLatencyDelaysButSucceeds(t *testing.T) {
	srv, _ := echoServer(t, "ok")
	tr := New(nil, 1, Rule{Kind: KindLatency, Latency: 30 * time.Millisecond})
	start := time.Now()
	resp, err := clientWith(tr).Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("request returned in %v, want >= 30ms", d)
	}
}

func TestLatencyRespectsContext(t *testing.T) {
	srv, _ := echoServer(t, "ok")
	tr := New(nil, 1, Rule{Kind: KindLatency, Latency: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := clientWith(tr).Do(req)
	if err == nil {
		t.Fatal("want context deadline error")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancellation took %v; latency sleep must respect ctx", d)
	}
}

func TestBlackholeHangsUntilDeadline(t *testing.T) {
	srv, hits := echoServer(t, "ok")
	tr := New(nil, 1, Rule{Kind: KindBlackhole, OneWay: true})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	_, err := clientWith(tr).Do(req)
	if err == nil {
		t.Fatal("want error from blackholed request")
	}
	if hits.Load() != 1 {
		t.Fatalf("one-way blackhole must forward the request; server saw %d", hits.Load())
	}
}

func TestTrickleDeliversSlowly(t *testing.T) {
	body := strings.Repeat("y", 256)
	srv, _ := echoServer(t, body)
	tr := New(nil, 1, Rule{Kind: KindTrickle, ChunkSize: 64, ChunkDelay: 5 * time.Millisecond})
	start := time.Now()
	resp, err := clientWith(tr).Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != body {
		t.Fatalf("trickle corrupted the body: %d bytes", len(data))
	}
	// 256 bytes at 64/chunk = 4 chunks, 3 inter-chunk delays minimum.
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("read completed in %v, want trickled delivery", d)
	}
}

func TestTargetScoping(t *testing.T) {
	a, hitsA := echoServer(t, "a")
	b, hitsB := echoServer(t, "b")
	tr := New(nil, 1, Rule{Kind: KindDrop, Target: strings.TrimPrefix(a.URL, "http://")})
	c := clientWith(tr)
	if _, err := c.Get(a.URL); err == nil {
		t.Fatal("request to a must be dropped")
	}
	resp, err := c.Get(b.URL)
	if err != nil {
		t.Fatalf("request to b must pass: %v", err)
	}
	resp.Body.Close()
	if hitsA.Load() != 0 || hitsB.Load() != 1 {
		t.Fatalf("hits a=%d b=%d, want 0/1", hitsA.Load(), hitsB.Load())
	}
}

func TestScheduledWindow(t *testing.T) {
	srv, _ := echoServer(t, "ok")
	now := time.Unix(1000, 0)
	tr := New(nil, 1, Rule{Kind: KindDrop, Start: 50 * time.Millisecond, Duration: 100 * time.Millisecond})
	tr.SetClock(func() time.Time { return now })
	c := clientWith(tr)

	get := func() error {
		resp, err := c.Get(srv.URL)
		if err == nil {
			resp.Body.Close()
		}
		return err
	}
	if err := get(); err != nil {
		t.Fatalf("before window: %v", err)
	}
	now = now.Add(60 * time.Millisecond)
	if err := get(); err == nil {
		t.Fatal("inside window: want drop")
	}
	now = now.Add(200 * time.Millisecond)
	if err := get(); err != nil {
		t.Fatalf("after window: %v", err)
	}
}

func TestProbabilityDeterministicAcrossSeeds(t *testing.T) {
	srv, _ := echoServer(t, "ok")
	run := func(seed uint64) []bool {
		tr := New(nil, seed, Rule{Kind: KindDrop, P: 0.5})
		c := clientWith(tr)
		out := make([]bool, 20)
		for i := range out {
			resp, err := c.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
			out[i] = err != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
	dropped := 0
	for _, d := range a {
		if d {
			dropped++
		}
	}
	if dropped == 0 || dropped == len(a) {
		t.Fatalf("P=0.5 dropped %d/%d; want a mix", dropped, len(a))
	}
}

func TestSetRulesSwitchesPhases(t *testing.T) {
	srv, _ := echoServer(t, "ok")
	tr := New(nil, 1, Rule{Kind: KindDrop})
	c := clientWith(tr)
	if _, err := c.Get(srv.URL); err == nil {
		t.Fatal("phase 1: want drop")
	}
	tr.SetRules() // clear faults
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatalf("phase 2 (clear): %v", err)
	}
	resp.Body.Close()
}

func TestListenerSever(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := Wrap(inner)
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})}
	go srv.Serve(fl)
	t.Cleanup(func() { srv.Close() })

	url := "http://" + inner.Addr().String()
	// No keep-alives: each request must traverse the listener.
	c := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 2 * time.Second}

	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("healthy listener: %v", err)
	}
	resp.Body.Close()

	fl.Sever(true)
	if _, err := c.Get(url); err == nil {
		t.Fatal("severed listener must refuse")
	}
	if fl.Refusals() == 0 {
		t.Fatal("refusal counter did not move")
	}

	fl.Sever(false)
	resp, err = c.Get(url)
	if err != nil {
		t.Fatalf("healed listener: %v", err)
	}
	resp.Body.Close()
}
