// Listener-side fault injection: sever a live server from the network
// without stopping its process.
package faultnet

import (
	"net"
	"sync/atomic"
)

// Listener wraps a net.Listener so tests can partition a server away
// from clients while it keeps running: while severed, every newly
// accepted connection is closed immediately (clients see a reset).
// Note that already-established keep-alive connections bypass the
// listener entirely — clients that should observe the partition must
// either disable keep-alives or also carry a Transport rule.
type Listener struct {
	net.Listener
	severed  atomic.Bool
	refusals atomic.Int64
}

// Wrap returns l with a severable accept path.
func Wrap(l net.Listener) *Listener { return &Listener{Listener: l} }

// Sever toggles the partition: true refuses all new connections.
func (l *Listener) Sever(on bool) { l.severed.Store(on) }

// Refusals counts connections closed while severed.
func (l *Listener) Refusals() int64 { return l.refusals.Load() }

// Accept implements net.Listener: while severed, accepted connections
// are closed immediately and the loop continues waiting.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil || !l.severed.Load() {
			return c, err
		}
		l.refusals.Add(1)
		c.Close()
	}
}
