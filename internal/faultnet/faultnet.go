// Package faultnet injects deterministic network faults into HTTP
// traffic — the network sibling of internal/crashtest's fault
// filesystem. A Transport wraps any http.RoundTripper and applies a
// scripted set of Rules (added latency, drops, resets, error bursts,
// one-way partitions, slow-trickle bodies), each optionally scoped to a
// scheduled time window and a target endpoint, with every random draw
// taken from a seeded internal/rng stream so a failing chaos run
// replays exactly.
//
// Fault semantics mirror what the real network does to a client, which
// is what the router's retry-safety classification keys on:
//
//   - Drop fails before the request is sent: the server never saw it,
//     so the error is a *net.OpError with Op "dial" — unambiguous, safe
//     to retry even for mutations.
//   - Reset forwards the request (the server does the work) and then
//     severs the reply: either no response bytes at all, or BodyBytes
//     of the body followed by a mid-stream reset. The error is a
//     *net.OpError with Op "read" — ambiguous, a mutation may or may
//     not have been applied.
//   - Blackhole hangs until the request's context expires, like a
//     partition that silently eats packets (no RST). With OneWay set
//     the request is forwarded first — the one-way partition where the
//     server hears you but you never hear it.
//   - Error synthesizes an HTTP error status without forwarding.
//   - Latency sleeps (base + seeded jitter) before forwarding,
//     respecting the request context.
//   - Trickle forwards but meters the response body out in ChunkSize
//     pieces with ChunkDelay between them.
//
// Rules are matched in order; the first active match wins. SetRules
// swaps the whole program atomically, which is how chaos tests script
// phases; Start/Duration windows do the same declaratively against the
// transport's clock (injectable for tests).
package faultnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pqfastscan/internal/rng"
)

// Kind selects a fault behavior.
type Kind int

const (
	// KindLatency delays the request by Latency plus a uniform draw
	// from [0, Jitter), then forwards it.
	KindLatency Kind = iota
	// KindDrop refuses the request before sending it (dial-class
	// error; the server never sees it).
	KindDrop
	// KindReset forwards the request and severs the response
	// (read-class error; the server did the work). BodyBytes > 0
	// delivers that many body bytes before the mid-stream reset.
	KindReset
	// KindError synthesizes an HTTP Status response (default 500)
	// without forwarding.
	KindError
	// KindTrickle forwards the request and meters the response body.
	KindTrickle
	// KindBlackhole hangs until the request context is done. OneWay
	// forwards the request first.
	KindBlackhole
)

func (k Kind) String() string {
	switch k {
	case KindLatency:
		return "latency"
	case KindDrop:
		return "drop"
	case KindReset:
		return "reset"
	case KindError:
		return "error"
	case KindTrickle:
		return "trickle"
	case KindBlackhole:
		return "blackhole"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Rule is one scripted fault. The zero value of every scoping field
// widens the rule: empty Target matches every endpoint, zero Duration
// never expires, zero P fires always.
type Rule struct {
	// Target scopes the rule to requests whose URL contains this
	// substring (host:port is the usual key). Empty matches all.
	Target string
	// Start and Duration schedule the rule's active window relative to
	// the transport's creation (or last ResetClock). Zero Duration
	// keeps the rule active from Start forever.
	Start, Duration time.Duration
	// P is the per-request firing probability in (0,1]; zero means 1.
	P float64

	Kind Kind

	// Latency/Jitter parameterize KindLatency.
	Latency, Jitter time.Duration
	// Status parameterizes KindError (default 500).
	Status int
	// BodyBytes parameterizes KindReset: response body bytes delivered
	// before the reset (0 severs before the first byte).
	BodyBytes int
	// ChunkSize/ChunkDelay parameterize KindTrickle (defaults 64 bytes
	// per 1ms).
	ChunkSize  int
	ChunkDelay time.Duration
	// OneWay makes KindBlackhole forward the request before hanging.
	OneWay bool
}

// Stats counts faults the transport actually injected, by kind.
type Stats struct {
	Delays, Drops, Resets, Errors, Trickles, Blackholes int64
	Forwarded                                           int64 // requests passed through un-faulted
}

// Transport is a fault-injecting http.RoundTripper. Safe for
// concurrent use; random draws are serialized under a mutex so a
// seeded run is deterministic up to goroutine interleaving of which
// request draws first.
type Transport struct {
	base http.RoundTripper
	now  func() time.Time

	mu    sync.Mutex
	src   *rng.Source
	rules []Rule
	start time.Time

	delays, drops, resets, errBursts, trickles, blackholes, forwarded atomic.Int64
}

// New wraps base (nil means http.DefaultTransport) with the given
// fault program, seeding every random draw from seed.
func New(base http.RoundTripper, seed uint64, rules ...Rule) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	t := &Transport{base: base, now: time.Now, src: rng.New(seed)}
	t.start = t.now()
	t.rules = append(t.rules, rules...)
	return t
}

// SetClock injects a clock for window scheduling (tests). Resets the
// schedule origin to the injected clock's current reading.
func (t *Transport) SetClock(now func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
	t.start = now()
}

// SetRules atomically replaces the fault program and restarts the
// schedule clock — phase changes in a chaos script.
func (t *Transport) SetRules(rules ...Rule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = append(t.rules[:0:0], rules...)
	t.start = t.now()
}

// Stats returns the injected-fault counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Delays:     t.delays.Load(),
		Drops:      t.drops.Load(),
		Resets:     t.resets.Load(),
		Errors:     t.errBursts.Load(),
		Trickles:   t.trickles.Load(),
		Blackholes: t.blackholes.Load(),
		Forwarded:  t.forwarded.Load(),
	}
}

var (
	errDropped = errors.New("faultnet: dropped before send")
	errReset   = errors.New("faultnet: connection reset")
)

// dropError mimics a connect-refused failure: the request was never
// written, so retrying cannot double-apply anything.
func dropError() error {
	return &net.OpError{Op: "dial", Net: "tcp", Err: errDropped}
}

// resetError mimics a connection reset after the request was written:
// the server may have done the work.
func resetError() error {
	return &net.OpError{Op: "read", Net: "tcp", Err: errReset}
}

// match returns the first rule active for this request, drawing the
// probability and jitter under the lock for determinism.
func (t *Transport) match(req *http.Request) (Rule, time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	elapsed := t.now().Sub(t.start)
	for _, r := range t.rules {
		if r.Target != "" && !strings.Contains(req.URL.String(), r.Target) {
			continue
		}
		if elapsed < r.Start {
			continue
		}
		if r.Duration > 0 && elapsed >= r.Start+r.Duration {
			continue
		}
		if r.P > 0 && r.P < 1 && t.src.Float64() >= r.P {
			continue
		}
		var jitter time.Duration
		if r.Jitter > 0 {
			jitter = time.Duration(t.src.Uint64() % uint64(r.Jitter))
		}
		return r, jitter, true
	}
	return Rule{}, 0, false
}

// RoundTrip applies the first matching active rule, or forwards.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	r, jitter, ok := t.match(req)
	if !ok {
		t.forwarded.Add(1)
		return t.base.RoundTrip(req)
	}
	switch r.Kind {
	case KindLatency:
		t.delays.Add(1)
		if !sleepCtx(req, r.Latency+jitter) {
			return nil, req.Context().Err()
		}
		return t.base.RoundTrip(req)

	case KindDrop:
		t.drops.Add(1)
		return nil, dropError()

	case KindReset:
		t.resets.Add(1)
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		if r.BodyBytes <= 0 {
			// Severed before the status line arrived.
			resp.Body.Close()
			return nil, resetError()
		}
		// Severed mid-body: the caller sees a valid response whose body
		// errors after BodyBytes bytes.
		resp.Body = &cutBody{rc: resp.Body, remain: r.BodyBytes}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil

	case KindError:
		t.errBursts.Add(1)
		status := r.Status
		if status == 0 {
			status = http.StatusInternalServerError
		}
		return &http.Response{
			StatusCode: status,
			Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"text/plain"}},
			Body:    io.NopCloser(strings.NewReader("faultnet: injected error burst")),
			Request: req,
		}, nil

	case KindTrickle:
		t.trickles.Add(1)
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		size, delay := r.ChunkSize, r.ChunkDelay
		if size <= 0 {
			size = 64
		}
		if delay <= 0 {
			delay = time.Millisecond
		}
		resp.Body = &trickleBody{rc: resp.Body, ctx: req.Context(), size: size, delay: delay}
		return resp, nil

	case KindBlackhole:
		t.blackholes.Add(1)
		if r.OneWay {
			// One-way partition: the server hears the request and does
			// the work; the reply vanishes.
			if resp, err := t.base.RoundTrip(req); err == nil {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
				resp.Body.Close()
			}
		}
		<-req.Context().Done()
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: req.Context().Err()}
	}
	t.forwarded.Add(1)
	return t.base.RoundTrip(req)
}

// sleepCtx waits d or until the request context is done, reporting
// whether the full wait elapsed.
func sleepCtx(req *http.Request, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-req.Context().Done():
		return false
	}
}

// cutBody yields remain bytes of the wrapped body, then a reset error.
type cutBody struct {
	rc     io.ReadCloser
	remain int
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.remain <= 0 {
		return 0, resetError()
	}
	if len(p) > c.remain {
		p = p[:c.remain]
	}
	n, err := c.rc.Read(p)
	c.remain -= n
	if err != nil {
		return n, err
	}
	if c.remain <= 0 {
		return n, resetError()
	}
	return n, nil
}

func (c *cutBody) Close() error { return c.rc.Close() }

// trickleBody meters reads out in size-byte chunks with delay between
// them, respecting the request context.
type trickleBody struct {
	rc    io.ReadCloser
	ctx   interface{ Done() <-chan struct{} }
	size  int
	delay time.Duration
	first bool
}

func (t *trickleBody) Read(p []byte) (int, error) {
	if t.first {
		timer := time.NewTimer(t.delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-t.ctx.Done():
			return 0, resetError()
		}
	}
	t.first = true
	if len(p) > t.size {
		p = p[:t.size]
	}
	return t.rc.Read(p)
}

func (t *trickleBody) Close() error { return t.rc.Close() }
