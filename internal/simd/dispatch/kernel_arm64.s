// arm64 NEON backend: the PQ Fast Scan lower-bound pipeline of §4.5 on
// AArch64 vector registers, one 16-lane block per iteration. TBL is the
// NEON counterpart of pshufb (16-entry in-register table lookup);
// accumulation uses widening adds into two 8×16-bit accumulators (sums
// of eight 7-bit entries stay exact, at most 1016), then UMIN against
// 127 and an even-byte UZP1 narrow. The stored lower-bound bytes equal
// min(sum, 127) per lane — bit-identical to the SWAR engine's per-step
// saturation at 127 and to the AVX2 backend's paddusb/pminub pipeline
// (DESIGN.md §12).

#include "textflag.h"

DATA const127h<>+0(SB)/8, $0x007f007f007f007f
DATA const127h<>+8(SB)/8, $0x007f007f007f007f
GLOBL const127h<>(SB), RODATA|NOPTR, $16

// func accumulateNEON(blocks *byte, blockBytes, c, nblocks int, tables *byte, dst *byte)
TEXT ·accumulateNEON(SB), NOSPLIT, $0-48
	MOVD blocks+0(FP), R0
	MOVD blockBytes+8(FP), R1
	MOVD c+16(FP), R2
	MOVD nblocks+24(FP), R3
	MOVD tables+32(FP), R4
	MOVD dst+40(FP), R5

	VMOVI $15, V29.B16           // low-nibble mask
	MOVD  $const127h<>(SB), R6
	VLD1  (R6), [V30.B16]        // 127 in every 16-bit lane

	MOVD $8, R7
	SUB  R2, R7, R7              // R7 = 8 - c (ungrouped components)

blockloop:
	CBZ  R3, done
	MOVD R4, R8                  // table cursor
	MOVD R0, R9                  // block cursor
	VEOR V20.B16, V20.B16, V20.B16 // accumulator, lanes 0-7 (8×16 bit)
	VEOR V21.B16, V21.B16, V21.B16 // accumulator, lanes 8-15
	MOVD R2, R10
	CBZ  R10, ungrouped

grouped:
	// Grouped component: 8 packed nibble bytes; lane 2k is byte k's
	// low nibble, lane 2k+1 its high nibble (layout.packLane), so the
	// index vector is ZIP1 of the nibble vectors.
	VLD1.P  16(R8), [V1.B16]     // small table j
	VLD1    (R9), [V2.B8]
	ADD     $8, R9
	VAND    V29.B16, V2.B16, V3.B16 // low nibbles
	VUSHR   $4, V2.B16, V4.B16      // high nibbles
	VZIP1   V4.B16, V3.B16, V5.B16  // lane indexes 0..15
	VTBL    V5.B16, [V1.B16], V6.B16 // 16 lookups in one instruction
	VUADDW  V6.B8, V20.H8, V20.H8
	VUADDW2 V6.B16, V21.H8, V21.H8
	SUB     $1, R10, R10
	CBNZ    R10, grouped

ungrouped:
	MOVD R7, R10
	CBZ  R10, finish

ungrouped_loop:
	// Ungrouped component: 16 full code bytes, indexed by their 4 most
	// significant bits against the minimum table.
	VLD1.P  16(R8), [V1.B16]
	VLD1.P  16(R9), [V2.B16]
	VUSHR   $4, V2.B16, V5.B16
	VTBL    V5.B16, [V1.B16], V6.B16
	VUADDW  V6.B8, V20.H8, V20.H8
	VUADDW2 V6.B16, V21.H8, V21.H8
	SUB     $1, R10, R10
	CBNZ    R10, ungrouped_loop

finish:
	VUMIN  V30.H8, V20.H8, V20.H8 // saturate the quantized range at 127
	VUMIN  V30.H8, V21.H8, V21.H8
	VUZP1  V21.B16, V20.B16, V22.B16 // even bytes: exact narrow after the clamp
	VST1.P [V22.B16], 16(R5)
	ADD    R1, R0, R0
	SUB    $1, R3, R3
	B      blockloop

done:
	RET
