// amd64 AVX2 backend: the PQ Fast Scan lower-bound pipeline of §4.5 on
// real vector registers. One iteration processes TWO 16-lane blocks of
// the same group: the group's 16-entry small table is broadcast into
// both 128-bit lanes of a ymm register (VBROADCASTI128), so a single
// VPSHUFB performs 32 table lookups — vpshufb shuffles each 128-bit
// lane independently, which is exactly the two-blocks-per-register
// layout FAISS IndexPQFastScan and ScaNN adopted from this paper.
//
// Accumulation is VPADDUSB (unsigned saturating at 255) followed by one
// final VPMINUB against 127: for non-negative addends this equals the
// SWAR engine's per-step saturation at 127 (min(sum,127) both ways, see
// DESIGN.md §12), so the stored lower-bound bytes are bit-identical to
// every other backend.

#include "textflag.h"

DATA mask0f<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA mask0f<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA mask0f<>+16(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA mask0f<>+24(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL mask0f<>(SB), RODATA|NOPTR, $32

DATA mask7f<>+0(SB)/8, $0x7f7f7f7f7f7f7f7f
DATA mask7f<>+8(SB)/8, $0x7f7f7f7f7f7f7f7f
DATA mask7f<>+16(SB)/8, $0x7f7f7f7f7f7f7f7f
DATA mask7f<>+24(SB)/8, $0x7f7f7f7f7f7f7f7f
GLOBL mask7f<>(SB), RODATA|NOPTR, $32

// func accumulateAVX2(blocks *byte, blockBytes, c, nblocks int, tables *byte, dst *byte)
TEXT ·accumulateAVX2(SB), NOSPLIT, $0-48
	MOVQ blocks+0(FP), SI
	MOVQ blockBytes+8(FP), BX
	MOVQ c+16(FP), CX
	MOVQ nblocks+24(FP), R8
	MOVQ tables+32(FP), DX
	MOVQ dst+40(FP), DI

	VMOVDQU mask0f<>(SB), Y10
	VMOVDQU mask7f<>(SB), Y11

	MOVQ $8, R14
	SUBQ CX, R14               // R14 = 8 - c (ungrouped components)

pairloop:
	CMPQ R8, $2
	JL   tail

	// Two blocks per iteration: A at SI, B at SI+blockBytes.
	MOVQ  DX, R9               // table cursor
	MOVQ  SI, R10              // block A cursor
	LEAQ  (SI)(BX*1), R13      // block B cursor
	VPXOR Y0, Y0, Y0           // 32-lane accumulator
	MOVQ  CX, R11
	TESTQ R11, R11
	JZ    pair_ungrouped

pair_grouped:
	// Grouped component: 8 packed nibble bytes per block. Unpack the
	// 16 packed bytes (A|B) into per-block lane indexes: lane 2k is
	// byte k's low nibble, lane 2k+1 its high nibble (layout.packLane),
	// which is exactly an interleave of the nibble vectors.
	VBROADCASTI128 (R9), Y1    // small table in both lanes
	VMOVQ      (R10), X2
	VPINSRQ    $1, (R13), X2, X2
	VPAND      X10, X2, X3     // low nibbles
	VPSRLW     $4, X2, X4
	VPAND      X10, X4, X4     // high nibbles
	VPUNPCKLBW X4, X3, X5      // block A lane indexes 0..15
	VPUNPCKHBW X4, X3, X6      // block B lane indexes 0..15
	VINSERTI128 $1, X6, Y5, Y7
	VPSHUFB    Y7, Y1, Y8      // 32 lookups in one shuffle
	VPADDUSB   Y8, Y0, Y0
	ADDQ       $16, R9
	ADDQ       $8, R10
	ADDQ       $8, R13
	DECQ       R11
	JNZ        pair_grouped

pair_ungrouped:
	MOVQ  R14, R11
	TESTQ R11, R11
	JZ    pair_done

pair_ungrouped_loop:
	// Ungrouped component: 16 full code bytes per block, indexed by
	// their 4 most significant bits against the minimum table.
	VBROADCASTI128 (R9), Y1
	VMOVDQU     (R10), X2
	VINSERTI128 $1, (R13), Y2, Y2
	VPSRLW      $4, Y2, Y3
	VPAND       Y10, Y3, Y3    // high nibbles
	VPSHUFB     Y3, Y1, Y8
	VPADDUSB    Y8, Y0, Y0
	ADDQ        $16, R9
	ADDQ        $16, R10
	ADDQ        $16, R13
	DECQ        R11
	JNZ         pair_ungrouped_loop

pair_done:
	VPMINUB Y11, Y0, Y0        // saturate the quantized range at 127
	VMOVDQU Y0, (DI)
	ADDQ    $32, DI
	LEAQ    (SI)(BX*2), SI
	SUBQ    $2, R8
	JMP     pairloop

tail:
	TESTQ R8, R8
	JZ    done

	// Odd final block: same pipeline at xmm width.
	MOVQ  DX, R9
	MOVQ  SI, R10
	VPXOR X0, X0, X0
	MOVQ  CX, R11
	TESTQ R11, R11
	JZ    tail_ungrouped

tail_grouped:
	VMOVDQU    (R9), X1
	VMOVQ      (R10), X2
	VPAND      X10, X2, X3
	VPSRLW     $4, X2, X4
	VPAND      X10, X4, X4
	VPUNPCKLBW X4, X3, X5
	VPSHUFB    X5, X1, X8
	VPADDUSB   X8, X0, X0
	ADDQ       $16, R9
	ADDQ       $8, R10
	DECQ       R11
	JNZ        tail_grouped

tail_ungrouped:
	MOVQ  R14, R11
	TESTQ R11, R11
	JZ    tail_done

tail_ungrouped_loop:
	VMOVDQU  (R9), X1
	VMOVDQU  (R10), X2
	VPSRLW   $4, X2, X3
	VPAND    X10, X3, X3
	VPSHUFB  X3, X1, X8
	VPADDUSB X8, X0, X0
	ADDQ     $16, R9
	ADDQ     $16, R10
	DECQ     R11
	JNZ      tail_ungrouped_loop

tail_done:
	VPMINUB X11, X0, X0
	VMOVDQU X0, (DI)

done:
	VZEROUPPER
	RET

// func cpuidex(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
