package dispatch

// AccumulateGeneric is the portable reference implementation of
// Accumulate: one scalar table lookup per (lane, component), exact
// 16-bit sums clamped to 127 at the end. It is deliberately written for
// obviousness, not speed — the SWAR backend never routes through it
// (internal/scan's fused pipelines are the SWAR implementation of
// record); its job is to pin the semantics every assembly kernel is
// tested against, on every architecture.
func AccumulateGeneric(blocks []byte, blockBytes, c, nblocks int, tables *[128]byte, dst []byte) {
	for b := 0; b < nblocks; b++ {
		blk := blocks[b*blockBytes : (b+1)*blockBytes]
		var sums [16]uint16
		for j := 0; j < c; j++ {
			tab := tables[j*16 : j*16+16]
			packed := blk[j*8 : j*8+8]
			for k, pb := range packed {
				sums[2*k] += uint16(tab[pb&0x0f])
				sums[2*k+1] += uint16(tab[pb>>4])
			}
		}
		for j := c; j < 8; j++ {
			tab := tables[j*16 : j*16+16]
			full := blk[c*8+(j-c)*16 : c*8+(j-c)*16+16]
			for lane, fb := range full {
				sums[lane] += uint16(tab[fb>>4])
			}
		}
		out := dst[b*16 : b*16+16]
		for lane, s := range sums {
			if s > 127 {
				s = 127
			}
			out[lane] = uint8(s)
		}
	}
}
