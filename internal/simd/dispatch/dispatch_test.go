package dispatch

import (
	"bytes"
	"math/rand"
	"os"
	"testing"
)

// oracle recomputes one lane's lower bound directly from the packed
// block bytes, independently of both the generic kernel's loop
// structure and the assembly.
func oracle(blk []byte, c, lane int, tables *[128]byte) uint8 {
	sum := 0
	for j := 0; j < c; j++ {
		pb := blk[j*8+lane/2]
		nib := pb & 0x0f
		if lane%2 == 1 {
			nib = pb >> 4
		}
		sum += int(tables[j*16+int(nib)])
	}
	for j := c; j < 8; j++ {
		fb := blk[c*8+(j-c)*16+lane]
		sum += int(tables[j*16+int(fb>>4)])
	}
	if sum > 127 {
		sum = 127
	}
	return uint8(sum)
}

// randomCase builds a random group: packed blocks, tables with entries
// in [0,127] (the distance quantizer's range), and every c.
func randomCase(r *rand.Rand, c, nblocks int) (blocks []byte, tables [128]byte) {
	blockBytes := 128 - 8*c
	blocks = make([]byte, nblocks*blockBytes)
	r.Read(blocks)
	for i := range tables {
		tables[i] = uint8(r.Intn(128))
	}
	return blocks, tables
}

func TestAccumulateGenericMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for c := 0; c <= 4; c++ {
		blockBytes := 128 - 8*c
		for _, nblocks := range []int{1, 2, 3, 7, 16} {
			blocks, tables := randomCase(r, c, nblocks)
			dst := make([]byte, nblocks*16)
			AccumulateGeneric(blocks, blockBytes, c, nblocks, &tables, dst)
			for b := 0; b < nblocks; b++ {
				blk := blocks[b*blockBytes : (b+1)*blockBytes]
				for lane := 0; lane < 16; lane++ {
					want := oracle(blk, c, lane, &tables)
					if got := dst[b*16+lane]; got != want {
						t.Fatalf("c=%d block=%d lane=%d: generic %d, oracle %d", c, b, lane, got, want)
					}
				}
			}
		}
	}
}

// TestAsmKernelsMatchGeneric drives every available assembly backend
// over random groups and requires byte-identical output to the generic
// reference — the kernel-level leg of the cross-backend exactness
// contract (the scan-level leg lives in internal/scan).
func TestAsmKernelsMatchGeneric(t *testing.T) {
	asm := 0
	for _, be := range AvailableBackends() {
		if !be.Asm() {
			continue
		}
		asm++
		t.Run(be.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(2))
			for iter := 0; iter < 200; iter++ {
				c := r.Intn(5)
				blockBytes := 128 - 8*c
				nblocks := 1 + r.Intn(9)
				blocks, tables := randomCase(r, c, nblocks)
				// Saturation pressure: sometimes inflate entries so sums
				// cross 127 and (on AVX2) the 255 intermediate clamp.
				if iter%3 == 0 {
					for i := range tables {
						tables[i] |= 0x60
					}
				}
				want := make([]byte, nblocks*16)
				got := make([]byte, nblocks*16)
				AccumulateGeneric(blocks, blockBytes, c, nblocks, &tables, want)
				Accumulate(be, blocks, blockBytes, c, nblocks, &tables, got)
				if !bytes.Equal(got, want) {
					t.Fatalf("iter=%d c=%d nblocks=%d: %s disagrees with generic\n got %x\nwant %x",
						iter, c, nblocks, be, got, want)
				}
			}
		})
	}
	if asm == 0 {
		t.Skip("no assembly backend on this architecture")
	}
}

func TestParseAndStrings(t *testing.T) {
	for _, be := range []Backend{Auto, SWAR, AVX2, NEON} {
		got, err := Parse(be.String())
		if err != nil || got != be {
			t.Fatalf("Parse(%q) = %v, %v", be.String(), got, err)
		}
	}
	if _, err := Parse("avx512"); err == nil {
		t.Fatal("Parse accepted unknown backend")
	}
}

func TestForceAndResolve(t *testing.T) {
	orig := Active()
	defer Force(orig)
	if err := Force(SWAR); err != nil {
		t.Fatalf("Force(SWAR): %v", err)
	}
	if Active() != SWAR || Resolve(Auto) != SWAR {
		t.Fatalf("Active=%v Resolve(Auto)=%v after Force(SWAR)", Active(), Resolve(Auto))
	}
	if !NEON.Available() {
		if err := Force(NEON); err == nil {
			t.Fatal("Force accepted an unavailable backend")
		}
	}
	if err := Force(Auto); err != nil {
		t.Fatalf("Force(Auto): %v", err)
	}
	if Active() == Auto {
		t.Fatal("Active resolved to Auto")
	}
}

func TestActiveIsAvailable(t *testing.T) {
	if be := Active(); !be.Available() || be == Auto {
		t.Fatalf("startup backend %v not concrete/available", be)
	}
}

// TestForcedBackendHonored makes the CI backend-matrix legs meaningful:
// when PQ_FORCE_BACKEND names a concrete backend, the startup selection
// must have honored it — otherwise the leg would silently exercise the
// fallback and a broken assembly kernel could land green.
func TestForcedBackendHonored(t *testing.T) {
	name := os.Getenv(EnvVar)
	if name == "" {
		t.Skipf("%s not set", EnvVar)
	}
	forced, err := Parse(name)
	if err != nil {
		t.Fatalf("%s=%q does not name a backend: %v", EnvVar, name, err)
	}
	if forced == Auto {
		t.Skip("auto defers to feature detection")
	}
	if got := Active(); got != forced {
		t.Fatalf("%s=%s was not honored: active backend %s (init note %q) — this run is testing the fallback, not the forced backend",
			EnvVar, forced, got, InitNote())
	}
}
