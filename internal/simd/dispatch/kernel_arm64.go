//go:build arm64

package dispatch

// Advanced SIMD (NEON) is architectural baseline on arm64: every
// AArch64 core implements it, so no runtime probing is needed.
var hasNEON = true

// hasAVX2 is an amd64 feature; never on arm64.
var hasAVX2 = false

func cpuFeatures() []string { return []string{"neon"} }

// accumulateNEON is the hand-written kernel in kernel_arm64.s.
//
//go:noescape
func accumulateNEON(blocks *byte, blockBytes, c, nblocks int, tables *byte, dst *byte)

func accumulateNEONBlocks(blocks []byte, blockBytes, c, nblocks int, tables *[128]byte, dst []byte) {
	accumulateNEON(&blocks[0], blockBytes, c, nblocks, &tables[0], &dst[0])
}

func accumulateAVX2Blocks(blocks []byte, blockBytes, c, nblocks int, tables *[128]byte, dst []byte) {
	panic("dispatch: asm-avx2 backend is amd64-only")
}
