// Package dispatch selects, at startup, the block-kernel backend the
// native execution engine runs on. Three backends exist:
//
//   - asm-avx2: hand-written amd64 assembly over 32-byte ymm registers
//     (VPSHUFB/VPADDUSB/VPMINUB), processing two 16-lane groups per
//     iteration — the paper's §4 pipeline on the silicon it was designed
//     for, one instruction where the SWAR engine spends dozens;
//   - asm-neon: hand-written arm64 assembly over 16-byte vector
//     registers (TBL + widening adds + UMIN), one 16-lane group per
//     iteration;
//   - swar: the portable uint64 SWAR implementation of internal/scan,
//     eight byte-lanes per machine word — always available, and the
//     reference every assembly backend must match bit-for-bit.
//
// Selection is by CPU feature detection (CPUID on amd64; NEON is
// architectural baseline on arm64), overridable with the
// PQ_FORCE_BACKEND environment variable or per query with the facade's
// WithBackend option. All backends produce bit-identical results — the
// DESIGN.md §9 contract between the model and native engines, extended
// down to the instruction level (DESIGN.md §12).
package dispatch

import (
	"fmt"
	"os"
	"sync/atomic"
)

// Backend names one block-kernel implementation. The zero value Auto
// defers to the startup selection (Active), so a zero index.Request
// keeps its pre-dispatch behaviour.
type Backend uint8

const (
	// Auto resolves to the best available backend (Active).
	Auto Backend = iota
	// SWAR is the portable uint64 engine inside internal/scan.
	SWAR
	// AVX2 is the amd64 assembly backend (requires AVX2 CPU support).
	AVX2
	// NEON is the arm64 assembly backend (baseline on arm64).
	NEON
)

// String returns the stable name used by PQ_FORCE_BACKEND, the facade's
// ParseBackend, bench JSON documents and the server's /stats.
func (b Backend) String() string {
	switch b {
	case Auto:
		return "auto"
	case SWAR:
		return "swar"
	case AVX2:
		return "asm-avx2"
	case NEON:
		return "asm-neon"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// Parse resolves a backend by its String name.
func Parse(name string) (Backend, error) {
	for _, b := range []Backend{Auto, SWAR, AVX2, NEON} {
		if b.String() == name {
			return b, nil
		}
	}
	return Auto, fmt.Errorf("dispatch: unknown backend %q (auto, swar, asm-avx2, asm-neon)", name)
}

// Available reports whether b can execute on this machine. SWAR always
// can; Auto is available by definition (it resolves to something that
// is).
func (b Backend) Available() bool {
	switch b {
	case Auto, SWAR:
		return true
	case AVX2:
		return hasAVX2
	case NEON:
		return hasNEON
	default:
		return false
	}
}

// Asm reports whether b is a hand-written assembly backend (as opposed
// to portable Go).
func (b Backend) Asm() bool { return b == AVX2 || b == NEON }

// Backends lists every concrete backend, preferred first.
func Backends() []Backend { return []Backend{AVX2, NEON, SWAR} }

// AvailableBackends lists the concrete backends this machine can run,
// preferred first.
func AvailableBackends() []Backend {
	var out []Backend
	for _, b := range Backends() {
		if b.Available() {
			out = append(out, b)
		}
	}
	return out
}

// active is the startup selection, swappable by Force (tests).
var active atomic.Uint32

// initNote records what happened to a PQ_FORCE_BACKEND override, for
// startup logs.
var initNote string

// EnvVar is the environment variable overriding the startup backend
// selection.
const EnvVar = "PQ_FORCE_BACKEND"

func init() {
	best := SWAR
	for _, b := range Backends() {
		if b.Available() {
			best = b
			break
		}
	}
	if name := os.Getenv(EnvVar); name != "" {
		forced, err := Parse(name)
		switch {
		case err != nil:
			initNote = fmt.Sprintf("%s=%q unknown; using %s", EnvVar, name, best)
		case forced == Auto:
			// Explicit auto: the detected default.
		case !forced.Available():
			initNote = fmt.Sprintf("%s=%s unavailable on this CPU; using %s", EnvVar, forced, best)
		default:
			best = forced
		}
	}
	active.Store(uint32(best))
}

// Active returns the backend the native engine uses when no per-query
// override is given. It is never Auto.
func Active() Backend { return Backend(active.Load()) }

// Force pins the startup selection to b (the programmatic counterpart
// of PQ_FORCE_BACKEND, used by tests and benchmarks). It fails if b is
// not available on this machine; Force(Auto) restores feature-detected
// selection.
func Force(b Backend) error {
	if !b.Available() {
		return fmt.Errorf("dispatch: backend %s not available on this CPU (have %v)", b, AvailableBackends())
	}
	if b == Auto {
		b = AvailableBackends()[0]
	}
	active.Store(uint32(b))
	return nil
}

// Resolve maps Auto to the active backend and leaves concrete backends
// unchanged.
func Resolve(b Backend) Backend {
	if b == Auto {
		return Active()
	}
	return b
}

// InitNote returns a human-readable note about the startup selection
// (e.g. a PQ_FORCE_BACKEND value that could not be honored), or "".
func InitNote() string { return initNote }

// Features lists the CPU SIMD features relevant to backend selection
// that this machine reports, for bench records and /stats.
func Features() []string { return cpuFeatures() }

// Accumulate computes the PQ Fast Scan lower-bound bytes of §4.5 for
// nblocks consecutive packed blocks of one group, on backend be (Auto
// resolves to Active). For every block b and lane i it evaluates
//
//	dst[b*16+i] = min(Σ_j table_j[idx_j(b, i)], 127)
//
// where, for grouped components j < c, idx_j is the lane's packed low
// nibble, and for ungrouped components j >= c it is the high nibble of
// the lane's full code byte — the pshufb/paddusb/pminub pipeline with
// the per-step saturating accumulation folded into min(sum, 127)
// (the two are equal for non-negative addends; DESIGN.md §12).
//
// blocks must hold nblocks packed blocks of blockBytes bytes (the group
// slice of layout.Grouped.Blocks); tables is the 8×16-byte small-table
// block (grouped windows first, then minimum tables); dst receives
// nblocks*16 lower-bound bytes. Backends produce bit-identical dst.
func Accumulate(be Backend, blocks []byte, blockBytes, c, nblocks int, tables *[128]byte, dst []byte) {
	if nblocks == 0 {
		return
	}
	_ = blocks[nblocks*blockBytes-1] // bounds contract
	_ = dst[nblocks*16-1]
	switch Resolve(be) {
	case AVX2:
		accumulateAVX2Blocks(blocks, blockBytes, c, nblocks, tables, dst)
	case NEON:
		accumulateNEONBlocks(blocks, blockBytes, c, nblocks, tables, dst)
	default:
		AccumulateGeneric(blocks, blockBytes, c, nblocks, tables, dst)
	}
}
