//go:build !amd64 && !arm64

package dispatch

// No assembly backend on this architecture: the SWAR engine (and the
// generic reference kernel) carry the build.
var (
	hasAVX2 = false
	hasNEON = false
)

func cpuFeatures() []string { return nil }

func accumulateAVX2Blocks(blocks []byte, blockBytes, c, nblocks int, tables *[128]byte, dst []byte) {
	panic("dispatch: asm-avx2 backend is amd64-only")
}

func accumulateNEONBlocks(blocks []byte, blockBytes, c, nblocks int, tables *[128]byte, dst []byte) {
	panic("dispatch: asm-neon backend is arm64-only")
}
