//go:build amd64

package dispatch

// hasAVX2 gates the asm-avx2 backend: the CPU must implement AVX2 and
// the OS must have enabled YMM state saving (OSXSAVE + XCR0). Package
// variable initialization runs before every init() function, so the
// selection logic in dispatch.go always sees the detected value.
var hasAVX2 = detectAVX2()

// hasNEON is an arm64 feature; never on amd64.
var hasNEON = false

// detectAVX2 is the standard AVX2 usability check: CPUID.1:ECX reports
// AVX and OSXSAVE, XGETBV(0) confirms the OS saves XMM+YMM state, and
// CPUID.7.0:EBX bit 5 reports AVX2 itself.
func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const (
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&6 != 6 { // XMM and YMM state enabled
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&(1<<5) != 0
}

// cpuFeatures reports the SIMD feature set relevant to backend
// selection. avx512f is detected purely for the record (DESIGN.md §12
// names AVX-512 as the next backend); no kernel uses it yet.
func cpuFeatures() []string {
	feats := []string{"sse2"} // amd64 baseline
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return feats
	}
	if _, _, ecx1, _ := cpuidex(1, 0); ecx1&(1<<28) != 0 {
		feats = append(feats, "avx")
	}
	if hasAVX2 {
		feats = append(feats, "avx2")
	}
	if _, ebx7, _, _ := cpuidex(7, 0); ebx7&(1<<16) != 0 {
		feats = append(feats, "avx512f")
	}
	return feats
}

// cpuidex executes CPUID with the given leaf and subleaf.
//
//go:noescape
func cpuidex(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (the OS-enabled state mask).
//
//go:noescape
func xgetbv0() (eax, edx uint32)

// accumulateAVX2 is the hand-written kernel in kernel_amd64.s.
//
//go:noescape
func accumulateAVX2(blocks *byte, blockBytes, c, nblocks int, tables *byte, dst *byte)

func accumulateAVX2Blocks(blocks []byte, blockBytes, c, nblocks int, tables *[128]byte, dst []byte) {
	accumulateAVX2(&blocks[0], blockBytes, c, nblocks, &tables[0], &dst[0])
}

func accumulateNEONBlocks(blocks []byte, blockBytes, c, nblocks int, tables *[128]byte, dst []byte) {
	panic("dispatch: asm-neon backend is arm64-only")
}
