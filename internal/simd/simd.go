// Package simd is a bit-exact software model of the 128-bit x86 SIMD
// register file and of the exact instruction subset PQ Fast Scan relies on
// (SSE2/SSE3/SSSE3: pshufb, paddsb, paddusb, pcmpgtb, pminub, pmovmskb,
// pand, por, psrlw, broadcasts, loads and stores).
//
// The paper's implementation is C++ with intrinsics; Go has no intrinsics
// and no inline assembly in the standard toolchain, so this package is the
// substitution documented in DESIGN.md: every operation reproduces the
// architectural semantics of its hardware counterpart — including pshufb's
// high-bit zeroing rule and signed/unsigned saturation — and is verified
// against an independent scalar reference in the test suite. Performance
// shape is recovered separately by internal/perf, which prices the dynamic
// instruction counts with the latency/throughput/µop table the paper
// publishes (its Table 2).
package simd

// Width is the register width in bytes (128 bits), matching SSE registers.
// The paper's small tables are exactly this size: "16 elements of 8 bits
// each (16×8 bits, 128 bits)" (§4.1).
const Width = 16

// Reg models one 128-bit SIMD register as 16 byte lanes. Lane 0 is the
// least significant byte, matching the x86 memory order used by movdqu.
type Reg [Width]uint8

// Load returns a register holding the 16 bytes of src (movdqu).
// It panics if src holds fewer than 16 bytes.
func Load(src []uint8) Reg {
	var r Reg
	copy(r[:], src[:Width])
	return r
}

// Store writes the 16 lanes of r into dst (movdqu store).
func Store(dst []uint8, r Reg) {
	copy(dst[:Width], r[:])
}

// Broadcast returns a register with every lane set to v (pshufb-zero or
// _mm_set1_epi8).
func Broadcast(v uint8) Reg {
	var r Reg
	for i := range r {
		r[i] = v
	}
	return r
}

// Zero returns the all-zero register (pxor r, r).
func Zero() Reg { return Reg{} }

// Pshufb performs the SSSE3 byte shuffle: for each lane i, if the high bit
// of idx[i] is set the result lane is zero, otherwise it is
// table[idx[i] & 0x0f]. This is the in-register 16-entry table lookup at
// the heart of PQ Fast Scan (§4.1, Table 2).
func Pshufb(table, idx Reg) Reg {
	var r Reg
	for i := 0; i < Width; i++ {
		j := idx[i]
		if j&0x80 != 0 {
			r[i] = 0
		} else {
			r[i] = table[j&0x0f]
		}
	}
	return r
}

// PaddsB performs lane-wise signed 8-bit addition with saturation to
// [-128, 127] (paddsb). PQ Fast Scan uses saturated additions "to avoid
// integer overflow issues" when summing quantized distances (§4.4).
func PaddsB(a, b Reg) Reg {
	var r Reg
	for i := 0; i < Width; i++ {
		s := int16(int8(a[i])) + int16(int8(b[i]))
		if s > 127 {
			s = 127
		} else if s < -128 {
			s = -128
		}
		r[i] = uint8(int8(s))
	}
	return r
}

// PaddusB performs lane-wise unsigned 8-bit addition with saturation to
// [0, 255] (paddusb).
func PaddusB(a, b Reg) Reg {
	var r Reg
	for i := 0; i < Width; i++ {
		s := uint16(a[i]) + uint16(b[i])
		if s > 255 {
			s = 255
		}
		r[i] = uint8(s)
	}
	return r
}

// PcmpgtB compares lanes as signed 8-bit integers and returns 0xff in each
// lane where a > b, else 0x00 (pcmpgtb). The paper quantizes distances to
// *signed* 8-bit integers precisely because "there is no SIMD instruction
// to compare unsigned 8-bit integers" in SSE (§4.4).
func PcmpgtB(a, b Reg) Reg {
	var r Reg
	for i := 0; i < Width; i++ {
		if int8(a[i]) > int8(b[i]) {
			r[i] = 0xff
		}
	}
	return r
}

// PminUB returns the lane-wise unsigned minimum (pminub).
func PminUB(a, b Reg) Reg {
	var r Reg
	for i := 0; i < Width; i++ {
		if a[i] < b[i] {
			r[i] = a[i]
		} else {
			r[i] = b[i]
		}
	}
	return r
}

// PminSB returns the lane-wise signed minimum (pminsb, SSE4.1).
func PminSB(a, b Reg) Reg {
	var r Reg
	for i := 0; i < Width; i++ {
		if int8(a[i]) < int8(b[i]) {
			r[i] = a[i]
		} else {
			r[i] = b[i]
		}
	}
	return r
}

// PmovmskB builds a 16-bit mask from the high bit of every lane
// (pmovmskb). Bit i of the result is the sign bit of lane i.
func PmovmskB(a Reg) uint16 {
	var m uint16
	for i := 0; i < Width; i++ {
		m |= uint16(a[i]>>7) << i
	}
	return m
}

// Pand returns the bitwise AND of both registers (pand).
func Pand(a, b Reg) Reg {
	var r Reg
	for i := 0; i < Width; i++ {
		r[i] = a[i] & b[i]
	}
	return r
}

// Por returns the bitwise OR of both registers (por).
func Por(a, b Reg) Reg {
	var r Reg
	for i := 0; i < Width; i++ {
		r[i] = a[i] | b[i]
	}
	return r
}

// Psrlw4 shifts each 16-bit word right by 4 bits (psrlw xmm, 4). Combined
// with Pand(lowNibbleMask) it extracts the 4 most significant bits of each
// byte, which index the minimum tables S4..S7 (§4.5).
func Psrlw4(a Reg) Reg {
	var r Reg
	for i := 0; i < Width; i += 2 {
		w := uint16(a[i]) | uint16(a[i+1])<<8
		w >>= 4
		r[i] = uint8(w)
		r[i+1] = uint8(w >> 8)
	}
	return r
}

// LowNibbleMask is the constant register with 0x0f in every lane, used to
// extract the 4 least significant bits of each component before a pshufb
// lookup (§4.5).
func LowNibbleMask() Reg { return Broadcast(0x0f) }

// Words exports the register as two uint64 SWAR words in x86 memory
// order: lo holds lanes 0-7 (lane 0 in the least significant byte), hi
// lanes 8-15. The native execution engine (internal/scan) processes
// 8 byte-lanes per machine word; these helpers are the bridge between
// the modeled register file and that flat representation, and let tests
// compare the two engines' intermediate state bit-for-bit.
func (r Reg) Words() (lo, hi uint64) {
	for i := 7; i >= 0; i-- {
		lo = lo<<8 | uint64(r[i])
		hi = hi<<8 | uint64(r[i+8])
	}
	return lo, hi
}

// FromWords rebuilds a register from two SWAR words (inverse of Words).
func FromWords(lo, hi uint64) Reg {
	var r Reg
	for i := 0; i < 8; i++ {
		r[i] = uint8(lo >> (8 * i))
		r[i+8] = uint8(hi >> (8 * i))
	}
	return r
}
