package simd

import (
	"testing"
	"testing/quick"
)

func TestLoad256StoreRoundtrip(t *testing.T) {
	if err := quick.Check(func(b [32]byte) bool {
		var out [32]uint8
		Store256(out[:], Load256(b[:]))
		return out == b
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDup128AndLanes(t *testing.T) {
	if err := quick.Check(func(a [16]byte) bool {
		r := Dup128(Reg(a))
		lo, hi := Lanes128(r)
		return lo == Reg(a) && hi == Reg(a)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcat128(t *testing.T) {
	var lo, hi Reg
	for i := range lo {
		lo[i] = uint8(i)
		hi[i] = uint8(100 + i)
	}
	r := Concat128(lo, hi)
	gotLo, gotHi := Lanes128(r)
	if gotLo != lo || gotHi != hi {
		t.Fatal("Concat128/Lanes128 roundtrip failed")
	}
}

// TestVPshufbEqualsTwoPshufb: the defining AVX2 property — vpshufb is two
// independent 128-bit pshufb operations.
func TestVPshufbEqualsTwoPshufb(t *testing.T) {
	if err := quick.Check(func(tblLo, tblHi, idxLo, idxHi [16]byte) bool {
		table := Concat128(Reg(tblLo), Reg(tblHi))
		idx := Concat128(Reg(idxLo), Reg(idxHi))
		got := VPshufb(table, idx)
		wantLo := Pshufb(Reg(tblLo), Reg(idxLo))
		wantHi := Pshufb(Reg(tblHi), Reg(idxHi))
		gotLo, gotHi := Lanes128(got)
		return gotLo == wantLo && gotHi == wantHi
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestVPshufbNoCrossLane: indexes never reach across the 128-bit lane
// boundary, even for idx values 16-127.
func TestVPshufbNoCrossLane(t *testing.T) {
	var table Reg256
	for i := range table {
		table[i] = uint8(i) // low lane 0..15, high lane 16..31
	}
	idx := Broadcast256(0x1f) // low nibble 15
	got := VPshufb(table, idx)
	if got[0] != 15 {
		t.Errorf("low lane fetched %d, want 15", got[0])
	}
	if got[16] != 31 {
		t.Errorf("high lane fetched %d, want 31 (its own lane's entry 15)", got[16])
	}
}

func TestWide256OpsMatch128Lanes(t *testing.T) {
	if err := quick.Check(func(aLo, aHi, bLo, bHi [16]byte) bool {
		a := Concat128(Reg(aLo), Reg(aHi))
		b := Concat128(Reg(bLo), Reg(bHi))

		adds := VPaddsB(a, b)
		addLo, addHi := Lanes128(adds)
		if addLo != PaddsB(Reg(aLo), Reg(bLo)) || addHi != PaddsB(Reg(aHi), Reg(bHi)) {
			return false
		}
		cmp := VPcmpgtB(a, b)
		cmpLo, cmpHi := Lanes128(cmp)
		if cmpLo != PcmpgtB(Reg(aLo), Reg(bLo)) || cmpHi != PcmpgtB(Reg(aHi), Reg(bHi)) {
			return false
		}
		and := VPand(a, b)
		andLo, andHi := Lanes128(and)
		if andLo != Pand(Reg(aLo), Reg(bLo)) || andHi != Pand(Reg(aHi), Reg(bHi)) {
			return false
		}
		srl := VPsrlw4(a)
		srlLo, srlHi := Lanes128(srl)
		if srlLo != Psrlw4(Reg(aLo)) || srlHi != Psrlw4(Reg(aHi)) {
			return false
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVPmovmskB(t *testing.T) {
	if err := quick.Check(func(a [32]byte) bool {
		got := VPmovmskB(Reg256(a))
		var want uint32
		for i := 0; i < 32; i++ {
			if a[i]&0x80 != 0 {
				want |= 1 << i
			}
		}
		return got == want
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVPmovmskBLaneSplit(t *testing.T) {
	var lo, hi Reg
	lo[3] = 0x80
	hi[5] = 0xff
	m := VPmovmskB(Concat128(lo, hi))
	if uint16(m) != PmovmskB(lo) {
		t.Errorf("low half mask %#x != pmovmskb %#x", uint16(m), PmovmskB(lo))
	}
	if uint16(m>>16) != PmovmskB(hi) {
		t.Errorf("high half mask %#x != pmovmskb %#x", uint16(m>>16), PmovmskB(hi))
	}
}

func TestBroadcast256Zero256(t *testing.T) {
	if Zero256() != (Reg256{}) {
		t.Fatal("Zero256 not zero")
	}
	r := Broadcast256(7)
	for _, v := range r {
		if v != 7 {
			t.Fatal("Broadcast256 lane mismatch")
		}
	}
	if LowNibbleMask256() != Broadcast256(0x0f) {
		t.Fatal("LowNibbleMask256 wrong")
	}
}
