package simd

// This file models the 256-bit AVX2 register file, the widening the paper
// anticipates in §6 ("the AVX-512 SIMD instruction set ... will allow
// storing larger tables in SIMD registers. This will allow for even
// better performance"). AVX2 (Haswell) already widens the §4 kernel: one
// vpshufb performs two independent 16-entry lookups — its shuffle
// semantics are per-128-bit-lane — so duplicating a small table into both
// lanes processes 32 database vectors per instruction. That is exactly
// the layout adopted by the production descendants of this paper (FAISS
// IndexPQFastScan, ScaNN), which makes the model here a faithful stand-in
// for the instruction behaviour of those kernels.

// Width256 is the AVX2 register width in bytes.
const Width256 = 32

// Reg256 models one 256-bit SIMD register as 32 byte lanes; lanes 0-15
// form the low 128-bit lane and 16-31 the high lane.
type Reg256 [Width256]uint8

// Load256 returns a register holding the 32 bytes of src (vmovdqu).
func Load256(src []uint8) Reg256 {
	var r Reg256
	copy(r[:], src[:Width256])
	return r
}

// Store256 writes the 32 lanes of r into dst.
func Store256(dst []uint8, r Reg256) {
	copy(dst[:Width256], r[:])
}

// Broadcast256 sets every lane to v (vpbroadcastb).
func Broadcast256(v uint8) Reg256 {
	var r Reg256
	for i := range r {
		r[i] = v
	}
	return r
}

// Zero256 returns the all-zero register.
func Zero256() Reg256 { return Reg256{} }

// Dup128 duplicates a 128-bit register into both lanes of a 256-bit
// register (vinserti128/vbroadcasti128) — how a 16-entry small table is
// made visible to both halves of a vpshufb.
func Dup128(a Reg) Reg256 {
	var r Reg256
	copy(r[:16], a[:])
	copy(r[16:], a[:])
	return r
}

// Concat128 places lo in lanes 0-15 and hi in lanes 16-31.
func Concat128(lo, hi Reg) Reg256 {
	var r Reg256
	copy(r[:16], lo[:])
	copy(r[16:], hi[:])
	return r
}

// Lanes128 splits a 256-bit register into its two 128-bit lanes.
func Lanes128(a Reg256) (lo, hi Reg) {
	copy(lo[:], a[:16])
	copy(hi[:], a[16:])
	return lo, hi
}

// VPshufb performs the AVX2 byte shuffle: each 128-bit lane is shuffled
// independently with pshufb semantics (high bit zeroes the lane,
// otherwise the low 4 bits index within the same 128-bit lane of the
// table). The cross-lane independence is an architectural property of
// vpshufb, not a simplification.
func VPshufb(table, idx Reg256) Reg256 {
	var r Reg256
	for lane := 0; lane < 2; lane++ {
		base := lane * 16
		for i := 0; i < 16; i++ {
			j := idx[base+i]
			if j&0x80 != 0 {
				r[base+i] = 0
			} else {
				r[base+i] = table[base+int(j&0x0f)]
			}
		}
	}
	return r
}

// VPaddsB performs 32-lane signed saturating addition (vpaddsb).
func VPaddsB(a, b Reg256) Reg256 {
	var r Reg256
	for i := 0; i < Width256; i++ {
		s := int16(int8(a[i])) + int16(int8(b[i]))
		if s > 127 {
			s = 127
		} else if s < -128 {
			s = -128
		}
		r[i] = uint8(int8(s))
	}
	return r
}

// VPcmpgtB performs 32-lane signed greater-than (vpcmpgtb).
func VPcmpgtB(a, b Reg256) Reg256 {
	var r Reg256
	for i := 0; i < Width256; i++ {
		if int8(a[i]) > int8(b[i]) {
			r[i] = 0xff
		}
	}
	return r
}

// VPmovmskB builds a 32-bit mask from the sign bit of every lane
// (vpmovmskb on ymm).
func VPmovmskB(a Reg256) uint32 {
	var m uint32
	for i := 0; i < Width256; i++ {
		m |= uint32(a[i]>>7) << i
	}
	return m
}

// VPand returns the bitwise AND (vpand).
func VPand(a, b Reg256) Reg256 {
	var r Reg256
	for i := 0; i < Width256; i++ {
		r[i] = a[i] & b[i]
	}
	return r
}

// VPsrlw4 shifts each 16-bit word right by 4 bits (vpsrlw ymm, 4).
func VPsrlw4(a Reg256) Reg256 {
	var r Reg256
	for i := 0; i < Width256; i += 2 {
		w := uint16(a[i]) | uint16(a[i+1])<<8
		w >>= 4
		r[i] = uint8(w)
		r[i+1] = uint8(w >> 8)
	}
	return r
}

// LowNibbleMask256 is the 0x0f broadcast for high-nibble extraction.
func LowNibbleMask256() Reg256 { return Broadcast256(0x0f) }
