package simd

import (
	"testing"
	"testing/quick"
)

// regGen adapts quick.Check to Reg values via byte arrays.
func asReg(b [16]byte) Reg { return Reg(b) }

func TestLoadStoreRoundtrip(t *testing.T) {
	if err := quick.Check(func(b [16]byte) bool {
		var out [16]uint8
		Store(out[:], Load(b[:]))
		return out == b
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadPanicsOnShortSlice(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Load of a short slice did not panic")
		}
	}()
	Load(make([]uint8, 15))
}

func TestBroadcast(t *testing.T) {
	r := Broadcast(0xab)
	for i, v := range r {
		if v != 0xab {
			t.Fatalf("lane %d = %#x", i, v)
		}
	}
}

// TestPshufbSemantics verifies the architectural pshufb rules: high bit
// set zeroes the lane, otherwise the low 4 bits index the table. This is
// the exact semantics of the SSSE3 instruction on 128-bit operands.
func TestPshufbSemantics(t *testing.T) {
	if err := quick.Check(func(tbl, idx [16]byte) bool {
		got := Pshufb(asReg(tbl), asReg(idx))
		for i := 0; i < 16; i++ {
			want := uint8(0)
			if idx[i]&0x80 == 0 {
				want = tbl[idx[i]&0x0f]
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPshufbIdentity(t *testing.T) {
	var tbl, idx Reg
	for i := range tbl {
		tbl[i] = uint8(i * 3)
		idx[i] = uint8(i)
	}
	if Pshufb(tbl, idx) != tbl {
		t.Fatal("identity shuffle changed the table")
	}
}

func clampI8(v int) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}

func TestPaddsBSaturation(t *testing.T) {
	if err := quick.Check(func(a, b [16]byte) bool {
		got := PaddsB(asReg(a), asReg(b))
		for i := 0; i < 16; i++ {
			want := clampI8(int(int8(a[i])) + int(int8(b[i])))
			if int8(got[i]) != want {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaddsBKnownValues(t *testing.T) {
	a := Broadcast(100) // +100
	b := Broadcast(100)
	if got := PaddsB(a, b); int8(got[0]) != 127 {
		t.Fatalf("100 +s 100 = %d, want saturation at 127", int8(got[0]))
	}
	c := Broadcast(0x80) // -128
	if got := PaddsB(c, c); int8(got[0]) != -128 {
		t.Fatalf("-128 +s -128 = %d, want saturation at -128", int8(got[0]))
	}
}

func TestPaddusBSaturation(t *testing.T) {
	if err := quick.Check(func(a, b [16]byte) bool {
		got := PaddusB(asReg(a), asReg(b))
		for i := 0; i < 16; i++ {
			want := int(a[i]) + int(b[i])
			if want > 255 {
				want = 255
			}
			if int(got[i]) != want {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPcmpgtBSigned(t *testing.T) {
	if err := quick.Check(func(a, b [16]byte) bool {
		got := PcmpgtB(asReg(a), asReg(b))
		for i := 0; i < 16; i++ {
			want := uint8(0)
			if int8(a[i]) > int8(b[i]) {
				want = 0xff
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPminUBAndPminSB(t *testing.T) {
	if err := quick.Check(func(a, b [16]byte) bool {
		gu := PminUB(asReg(a), asReg(b))
		gs := PminSB(asReg(a), asReg(b))
		for i := 0; i < 16; i++ {
			wu := a[i]
			if b[i] < wu {
				wu = b[i]
			}
			ws := int8(a[i])
			if int8(b[i]) < ws {
				ws = int8(b[i])
			}
			if gu[i] != wu || int8(gs[i]) != ws {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPmovmskB(t *testing.T) {
	if err := quick.Check(func(a [16]byte) bool {
		got := PmovmskB(asReg(a))
		var want uint16
		for i := 0; i < 16; i++ {
			if a[i]&0x80 != 0 {
				want |= 1 << i
			}
		}
		return got == want
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPandPor(t *testing.T) {
	if err := quick.Check(func(a, b [16]byte) bool {
		and := Pand(asReg(a), asReg(b))
		or := Por(asReg(a), asReg(b))
		for i := 0; i < 16; i++ {
			if and[i] != a[i]&b[i] || or[i] != a[i]|b[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestHighNibbleExtraction verifies the idiom the Fast Scan kernel uses:
// psrlw by 4 then mask with 0x0f yields each byte's high nibble,
// regardless of the neighboring byte's content.
func TestHighNibbleExtraction(t *testing.T) {
	if err := quick.Check(func(a [16]byte) bool {
		got := Pand(Psrlw4(asReg(a)), LowNibbleMask())
		for i := 0; i < 16; i++ {
			if got[i] != a[i]>>4 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPsrlw4WordSemantics pins the 16-bit word shift semantics (bits flow
// from the high byte into the low byte of each word), matching psrlw.
func TestPsrlw4WordSemantics(t *testing.T) {
	var a Reg
	a[0], a[1] = 0x00, 0xff // word 0xff00
	got := Psrlw4(a)
	if got[0] != 0xf0 || got[1] != 0x0f {
		t.Fatalf("psrlw4(0xff00) = %#x %#x, want 0xf0 0x0f", got[0], got[1])
	}
}

func TestZero(t *testing.T) {
	if Zero() != (Reg{}) {
		t.Fatal("Zero() is not the zero register")
	}
}

// TestSaturatedSumLowerBoundProperty is the algebraic property the Fast
// Scan pruning proof relies on: a saturated sum of non-negative int8
// values never exceeds the true sum.
func TestSaturatedSumLowerBoundProperty(t *testing.T) {
	if err := quick.Check(func(vals [8][16]byte) bool {
		acc := Zero()
		trueSum := [16]int{}
		for _, v := range vals {
			var r Reg
			for i := range r {
				r[i] = v[i] & 0x7f // non-negative int8
				trueSum[i] += int(r[i])
			}
			acc = PaddsB(acc, r)
		}
		for i := 0; i < 16; i++ {
			if int(int8(acc[i])) > trueSum[i] {
				return false
			}
			// And saturation only ever loses precision at the top.
			if trueSum[i] <= 127 && int(int8(acc[i])) != trueSum[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
