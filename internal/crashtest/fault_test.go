package crashtest

import (
	"errors"
	"path/filepath"
	"testing"

	"pqfastscan/internal/dataset"
	"pqfastscan/internal/fsio"
	"pqfastscan/internal/index"
	"pqfastscan/internal/persist"
	"pqfastscan/internal/wal"
)

func buildSmall(t *testing.T) *index.Index {
	t.Helper()
	gen := dataset.NewGenerator(dataset.Config{Seed: 91, Dim: 32})
	opt := index.DefaultOptions()
	opt.Partitions = 3
	opt.Seed = 91
	ix, err := index.Build(gen.Generate(1500), gen.Generate(4000), opt)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// capture takes a Capture of a RAM-resident test index, failing the
// test on the (impossible there) paged read error.
func capture(t *testing.T, ix *index.Index) index.Capture {
	t.Helper()
	c, err := ix.Capture()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSnapshotWriteFailureLeavesOldSnapshotIntact: a failed SaveCapture
// must surface the injected error and leave the previous snapshot
// byte-for-byte loadable — the write-temp-then-rename discipline.
func TestSnapshotWriteFailureLeavesOldSnapshotIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.idx")
	ix := buildSmall(t)
	ffs := NewFaultFS(fsio.OS)

	if err := persist.SaveCapture(ffs, path, capture(t, ix), 7); err != nil {
		t.Fatal(err)
	}
	liveBefore := ix.Live()

	ffs.FailWriteAt(1)
	if err := persist.SaveCapture(ffs, path, capture(t, ix), 8); !errors.Is(err, ErrInjected) {
		t.Fatalf("failed save surfaced %v, want the injected write fault", err)
	}
	ffs.Reset()

	loaded, epoch, err := persist.LoadIndexEpoch(fsio.OS, path)
	if err != nil {
		t.Fatalf("old snapshot unloadable after failed overwrite: %v", err)
	}
	if epoch != 7 || loaded.Live() != liveBefore {
		t.Fatalf("old snapshot changed: epoch %d live %d, want 7/%d", epoch, loaded.Live(), liveBefore)
	}
}

// TestSnapshotFsyncFailureSurfaced: an fsync error during SaveCapture
// fails the save before the rename — the caller learns the snapshot is
// not durable, and the old one survives.
func TestSnapshotFsyncFailureSurfaced(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.idx")
	ix := buildSmall(t)
	ffs := NewFaultFS(fsio.OS)

	if err := persist.SaveCapture(ffs, path, capture(t, ix), 3); err != nil {
		t.Fatal(err)
	}
	syncsPerSave := ffs.Syncs()
	if syncsPerSave < 2 {
		t.Fatalf("save ran %d fsyncs, want at least temp-file + directory", syncsPerSave)
	}
	ffs.Reset()

	ffs.FailSyncAt(1)
	if err := persist.SaveCapture(ffs, path, capture(t, ix), 4); !errors.Is(err, ErrInjected) {
		t.Fatalf("failed fsync surfaced %v, want the injected fault", err)
	}
	ffs.Reset()
	if _, epoch, err := persist.LoadIndexEpoch(fsio.OS, path); err != nil || epoch != 3 {
		t.Fatalf("snapshot after failed fsync: epoch %d err %v, want the epoch-3 original", epoch, err)
	}
}

// TestWALFsyncErrorFailsTheAppend: in sync-on-ack mode an fsync error
// must fail the append that requested it — never acknowledge data the
// disk did not confirm — and poison the log for later appends.
func TestWALFsyncErrorFailsTheAppend(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(fsio.OS)
	log, err := wal.Create(dir, 1, wal.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()

	if err := log.AppendDelete(1); err != nil {
		t.Fatal(err)
	}
	ffs.FailSyncAt(ffs.Syncs() + 1)
	if err := log.AppendDelete(2); !errors.Is(err, ErrInjected) {
		t.Fatalf("append with failing fsync returned %v, want the injected fault", err)
	}
	ffs.Reset()
	if err := log.AppendDelete(3); err == nil {
		t.Fatal("log accepted an append after an fsync failure (poisoning lost)")
	}
}

// TestWALShortWriteLeavesTornTailThatReplayTruncates: a write torn
// mid-frame (as a crash mid-write leaves it) fails the append, and
// replay later truncates the torn tail back to the last good frame.
func TestWALShortWriteLeavesTornTailThatReplayTruncates(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(fsio.OS)
	log, err := wal.Create(dir, 1, wal.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}

	for id := int64(1); id <= 3; id++ {
		if err := log.AppendDelete(id); err != nil {
			t.Fatal(err)
		}
	}
	ffs.ShortWriteAt(ffs.Writes() + 1)
	if err := log.AppendDelete(4); !errors.Is(err, ErrInjected) {
		t.Fatalf("short write returned %v, want the injected fault", err)
	}
	log.Close()
	ffs.Reset()

	var ids []int64
	res, err := wal.Replay(fsio.OS, wal.SegmentPath(dir, 1), func(r *wal.Record) error {
		ids = append(ids, r.ID)
		return nil
	})
	if err != nil {
		t.Fatalf("replay over torn tail: %v", err)
	}
	if !res.Truncated || res.TornBytes == 0 {
		t.Fatalf("replay did not truncate the torn tail: %+v", res)
	}
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Fatalf("replayed records %v, want the 3 complete deletes", ids)
	}

	// After truncation the segment replays clean.
	res2, err := wal.Replay(fsio.OS, wal.SegmentPath(dir, 1), func(*wal.Record) error { return nil })
	if err != nil || res2.Truncated {
		t.Fatalf("second replay: %+v err %v, want clean", res2, err)
	}
}

// TestWALWriteErrorNeverAcks: a failed frame write fails the append.
func TestWALWriteErrorNeverAcks(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(fsio.OS)
	log, err := wal.Create(dir, 1, wal.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	ffs.FailWriteAt(ffs.Writes() + 1)
	if err := log.AppendDelete(1); !errors.Is(err, ErrInjected) {
		t.Fatalf("append with failing write returned %v, want the injected fault", err)
	}
}
