// Package crashtest is the durability harness: a fault-injecting
// filesystem for exercising the error paths of internal/persist and
// internal/wal in-process, and a kill-9 soak (soak_test.go) that
// crashes a real pqserve mid-mutation-storm and proves every
// acknowledged write survives recovery.
package crashtest

import (
	"errors"
	"io/fs"
	"sync"

	"pqfastscan/internal/fsio"
)

// ErrInjected marks every failure this package injects, so tests can
// assert the surfaced error is the injected one and not something the
// durability layer invented (or worse, swallowed).
var ErrInjected = errors.New("crashtest: injected fault")

// FaultFS wraps an fsio.FS and fails operations on command. Faults are
// counted across every file the FS has opened, in operation order, so a
// test can aim at "the 3rd write overall" or "the 2nd fsync" without
// knowing which file the layer under test touches when.
type FaultFS struct {
	inner fsio.FS

	mu     sync.Mutex
	writes int64 // writes observed so far
	syncs  int64 // fsyncs observed so far

	// failWriteAt, when > 0, fails the Nth write (1-based) and every
	// write after it.
	failWriteAt int64
	// shortWriteAt, when > 0, truncates the Nth write to half its bytes
	// (reporting the short count with an error, as the os would).
	shortWriteAt int64
	// failSyncAt, when > 0, fails the Nth fsync (1-based) and every
	// fsync after it.
	failSyncAt int64
}

// NewFaultFS wraps inner (usually fsio.OS) with no faults armed.
func NewFaultFS(inner fsio.FS) *FaultFS { return &FaultFS{inner: inner} }

// FailWriteAt arms: the nth write (1-based, counted FS-wide) and all
// later ones fail with ErrInjected.
func (f *FaultFS) FailWriteAt(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWriteAt = n
}

// ShortWriteAt arms: the nth write persists only half its bytes and
// returns ErrInjected with the short count.
func (f *FaultFS) ShortWriteAt(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortWriteAt = n
}

// FailSyncAt arms: the nth fsync (1-based, counted FS-wide) and all
// later ones fail with ErrInjected.
func (f *FaultFS) FailSyncAt(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSyncAt = n
}

// Reset disarms every fault and zeroes the counters.
func (f *FaultFS) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes, f.syncs = 0, 0
	f.failWriteAt, f.shortWriteAt, f.failSyncAt = 0, 0, 0
}

// Writes returns the number of writes observed.
func (f *FaultFS) Writes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// Syncs returns the number of fsyncs observed.
func (f *FaultFS) Syncs() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

// checkWrite advances the write counter and reports how many of n bytes
// to pass through (-1 = all) plus the error to return.
func (f *FaultFS) checkWrite(n int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	if f.failWriteAt > 0 && f.writes >= f.failWriteAt {
		return 0, ErrInjected
	}
	if f.shortWriteAt > 0 && f.writes == f.shortWriteAt {
		return n / 2, ErrInjected
	}
	return -1, nil
}

func (f *FaultFS) checkSync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	if f.failSyncAt > 0 && f.syncs >= f.failSyncAt {
		return ErrInjected
	}
	return nil
}

func (f *FaultFS) wrap(file fsio.File) fsio.File { return &faultFile{fs: f, inner: file} }

func (f *FaultFS) CreateTemp(dir, pattern string) (fsio.File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f.wrap(file), nil
}

func (f *FaultFS) Create(name string) (fsio.File, error) {
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return f.wrap(file), nil
}

func (f *FaultFS) OpenAppend(name string) (fsio.File, error) {
	file, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return f.wrap(file), nil
}

func (f *FaultFS) Open(name string) (fs.File, error)         { return f.inner.Open(name) }
func (f *FaultFS) Rename(oldpath, newpath string) error      { return f.inner.Rename(oldpath, newpath) }
func (f *FaultFS) Remove(name string) error                  { return f.inner.Remove(name) }
func (f *FaultFS) SyncDir(dir string) error                  { return f.checkSyncDir(dir) }
func (f *FaultFS) ReadDir(dir string) ([]fs.DirEntry, error) { return f.inner.ReadDir(dir) }
func (f *FaultFS) Stat(name string) (fs.FileInfo, error)     { return f.inner.Stat(name) }
func (f *FaultFS) MkdirAll(dir string, perm fs.FileMode) error {
	return f.inner.MkdirAll(dir, perm)
}
func (f *FaultFS) Truncate(name string, size int64) error { return f.inner.Truncate(name, size) }

// checkSyncDir counts a directory fsync against the same budget as file
// fsyncs: both are points where metadata durability can fail.
func (f *FaultFS) checkSyncDir(dir string) error {
	if err := f.checkSync(); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile interposes the write/sync fault points on one open file.
type faultFile struct {
	fs    *FaultFS
	inner fsio.File
}

func (f *faultFile) Write(p []byte) (int, error) {
	keep, err := f.fs.checkWrite(len(p))
	if err != nil {
		if keep > 0 {
			n, werr := f.inner.Write(p[:keep])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.fs.checkSync(); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error              { return f.inner.Close() }
func (f *faultFile) Truncate(size int64) error { return f.inner.Truncate(size) }
func (f *faultFile) Name() string              { return f.inner.Name() }
