package crashtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"pqfastscan"
)

// TestKillNineSoak is the end-to-end durability acceptance test: a real
// pqserve process with a WAL is SIGKILLed mid-mutation-storm, restarted,
// and compared against an in-process oracle that applied exactly the
// acknowledged mutations and never crashed. Per cycle it asserts:
//
//   - every acknowledged mutation survives recovery (oracle equality),
//   - no unacknowledged mutation is partially applied (live counts can
//     only be "op fully applied" or "op absent"),
//   - post-recovery searches are bit-identical to the oracle's.
//
// Mutations are serialized so at most one operation is in flight at the
// kill; that op is indeterminate by definition (the client saw no ack)
// and is resolved against the recovered state, exactly as a client
// retrying idempotently would.
//
// Cycles default to 3 for local runs; CI sets CRASH_SOAK_CYCLES=25.
// CRASH_SOAK_RACE=1 builds the server with the race detector.
func TestKillNineSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-9 soak skipped in -short mode")
	}
	cycles := 3
	if v := os.Getenv("CRASH_SOAK_CYCLES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad CRASH_SOAK_CYCLES %q", v)
		}
		cycles = n
	}

	const (
		synthetic  = 4000
		partitions = 4
		seed       = 42
	)
	bin := buildServer(t)
	walDir := t.TempDir()
	addr := freeAddr(t)
	client := &http.Client{Timeout: 15 * time.Second}

	// The oracle: the exact index pqserve -synthetic builds, held
	// in-process with no WAL and no crashes, fed only acked mutations.
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: seed})
	learnN := synthetic / 10
	if learnN < 1000 {
		learnN = 1000
	}
	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = partitions
	opt.Seed = seed
	oracle, err := pqfastscan.Build(gen.Generate(learnN), gen.Generate(synthetic), opt)
	if err != nil {
		t.Fatal(err)
	}

	mutGen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 1000})
	queryGen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 2000})
	queries := queryGen.Generate(16)
	rng := rand.New(rand.NewSource(7))
	var liveIDs []int64 // acked adds not yet acked-deleted, kill targets for deletes

	proc := startServer(t, bin, addr, walDir, synthetic, partitions, seed)
	defer func() {
		if proc != nil && proc.Process != nil {
			_ = proc.Process.Kill()
			_, _ = proc.Process.Wait()
		}
	}()
	waitSoakReady(t, client, addr, 120*time.Second)

	acked, indeterminate := 0, 0
	for cycle := 0; cycle < cycles; cycle++ {
		// Storm: serialized mutations until the killer lands. The op that
		// errors is the (at most one) indeterminate operation.
		killAfter := time.Duration(100+rng.Intn(400)) * time.Millisecond
		killed := make(chan struct{})
		go func() {
			time.Sleep(killAfter)
			_ = proc.Process.Signal(syscall.SIGKILL)
			close(killed)
		}()

		var pendingAdd pqfastscan.Matrix // the indeterminate op, if an add
		havePendingAdd := false
		var pendingDel int64 = -1 // the indeterminate op, if a delete
		for {
			if rng.Intn(3) > 0 || len(liveIDs) == 0 { // 2:1 adds to deletes
				n := 1 + rng.Intn(3)
				vecs := mutGen.Generate(n)
				ids, err := httpAdd(client, addr, vecs)
				if err != nil {
					pendingAdd, havePendingAdd = vecs, true
					break
				}
				oids, oerr := oracle.AddBatch(vecs)
				if oerr != nil {
					t.Fatal(oerr)
				}
				for i := range ids {
					if ids[i] != oids[i] {
						t.Fatalf("cycle %d: id divergence: server %v, oracle %v", cycle, ids, oids)
					}
				}
				liveIDs = append(liveIDs, ids...)
				acked++
			} else {
				pick := rng.Intn(len(liveIDs))
				id := liveIDs[pick]
				if err := httpDelete(client, addr, id); err != nil {
					pendingDel = id
					break
				}
				if err := oracle.Delete(id); err != nil {
					t.Fatal(err)
				}
				liveIDs = append(liveIDs[:pick], liveIDs[pick+1:]...)
				acked++
			}
		}
		<-killed
		_, _ = proc.Process.Wait()

		// Recover and resolve the indeterminate op against the recovered
		// state: fully applied or fully absent, nothing in between.
		proc = startServer(t, bin, addr, walDir, synthetic, partitions, seed)
		waitSoakReady(t, client, addr, 120*time.Second)
		live := queryLiveCount(t, client, addr)
		switch {
		case havePendingAdd:
			switch live {
			case oracle.Live():
				// The add never became durable; its ids were never burned.
			case oracle.Live() + pendingAdd.Rows():
				// Acked by the disk but not by the socket: it is durable,
				// so the oracle applies it too.
				ids, err := oracle.AddBatch(pendingAdd)
				if err != nil {
					t.Fatal(err)
				}
				liveIDs = append(liveIDs, ids...)
			default:
				t.Fatalf("cycle %d: partial add: recovered live %d, want %d or %d",
					cycle, live, oracle.Live(), oracle.Live()+pendingAdd.Rows())
			}
			indeterminate++
		case pendingDel >= 0:
			switch live {
			case oracle.Live():
				// Not durable: the id is still live.
			case oracle.Live() - 1:
				if err := oracle.Delete(pendingDel); err != nil {
					t.Fatal(err)
				}
				for i, id := range liveIDs {
					if id == pendingDel {
						liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
						break
					}
				}
			default:
				t.Fatalf("cycle %d: impossible live count %d after indeterminate delete", cycle, live)
			}
			indeterminate++
		}
		if live := queryLiveCount(t, client, addr); live != oracle.Live() {
			t.Fatalf("cycle %d: recovered live %d, oracle %d — an acked mutation was lost or invented",
				cycle, live, oracle.Live())
		}

		// Bit-identical search vs the never-crashed oracle.
		for qi := 0; qi < queries.Rows(); qi++ {
			q := queries.Row(qi)
			got, err := httpSearch(client, addr, q, 10, partitions)
			if err != nil {
				t.Fatalf("cycle %d: post-recovery search: %v", cycle, err)
			}
			want, err := oracle.Search(context.Background(), q, 10, pqfastscan.WithNProbe(partitions))
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Results) != len(want.Results) {
				t.Fatalf("cycle %d query %d: %d results, oracle %d", cycle, qi, len(got.Results), len(want.Results))
			}
			for i, w := range want.Results {
				if got.Results[i].ID != w.ID || got.Results[i].Distance != w.Distance {
					t.Fatalf("cycle %d query %d rank %d: recovered %+v, oracle %+v",
						cycle, qi, i, got.Results[i], w)
				}
			}
		}
	}
	t.Logf("soak: %d cycles, %d acked mutations all recovered, %d indeterminate ops resolved",
		cycles, acked, indeterminate)
}

// buildServer compiles cmd/pqserve into a temp dir (with -race when
// CRASH_SOAK_RACE=1) and returns the binary path.
func buildServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pqserve")
	args := []string{"build"}
	if os.Getenv("CRASH_SOAK_RACE") == "1" {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, "pqfastscan/cmd/pqserve")
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building pqserve: %v\n%s", err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/crashtest -> repo root
}

// freeAddr grabs an ephemeral port and releases it for the server.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func startServer(t *testing.T, bin, addr, walDir string, synthetic, partitions, seed int) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-synthetic", strconv.Itoa(synthetic),
		"-partitions", strconv.Itoa(partitions),
		"-seed", strconv.Itoa(seed),
		"-wal-dir", walDir,
		"-compact-interval", "0s",
	)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting pqserve: %v", err)
	}
	return cmd
}

func waitSoakReady(t *testing.T, client *http.Client, addr string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get("http://" + addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("pqserve never became ready")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func httpAdd(client *http.Client, addr string, vecs pqfastscan.Matrix) ([]int64, error) {
	req := struct {
		Vectors [][]float32 `json:"vectors"`
	}{Vectors: make([][]float32, vecs.Rows())}
	for i := range req.Vectors {
		req.Vectors[i] = vecs.Row(i)
	}
	var resp struct {
		IDs []int64 `json:"ids"`
	}
	if err := postSoakJSON(client, addr, "/add", req, &resp); err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

func httpDelete(client *http.Client, addr string, id int64) error {
	return postSoakJSON(client, addr, "/delete", map[string]int64{"id": id}, nil)
}

type soakSearchResponse struct {
	Results []struct {
		ID       int64   `json:"id"`
		Distance float32 `json:"distance"`
	} `json:"results"`
}

func httpSearch(client *http.Client, addr string, q []float32, k, nprobe int) (*soakSearchResponse, error) {
	req := map[string]any{"query": q, "k": k, "nprobe": nprobe}
	var resp soakSearchResponse
	if err := postSoakJSON(client, addr, "/search", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func postSoakJSON(client *http.Client, addr, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post("http://"+addr+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

func queryLiveCount(t *testing.T, client *http.Client, addr string) int {
	t.Helper()
	resp, err := client.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Live int `json:"live"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h.Live
}
