package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pqfastscan"
)

// MixedConfig parameterizes the mixed read/write benchmark: concurrent
// searchers against an index absorbing online Add/Delete traffic and
// background compaction — the workload the copy-on-write epoch core is
// built for. The benchmark runs two equal phases over the same index:
// a quiescent phase (readers only) and a mutating phase (readers plus a
// paced writer plus the compaction policy), and reports read latency
// quantiles for both so regressions in read isolation show up as a
// p99 ratio, not an absolute number that drifts with hardware.
type MixedConfig struct {
	BaseN      int           // database size (default 100000)
	LearnN     int           // training set size (default BaseN/10)
	Partitions int           // IVF cells (default 8)
	Seed       uint64        // dataset and build seed (default 42)
	K          int           // top-k per search (default 100)
	NProbe     int           // cells probed per search (default 1)
	Readers    int           // concurrent searcher goroutines (default 2×GOMAXPROCS: enough to keep every core busy without drowning the p99 in run-queue wait)
	Duration   time.Duration // per-phase wall clock (default 3s)
	// WriteRatio is the target fraction of operations that are writes
	// during the mutating phase (default 0.05). The writer paces itself
	// against the live read counter to hold the ratio.
	WriteRatio float64
	// WriteBatch is the vectors per Add call (default 16); one in four
	// write operations is a Delete of a previously added id.
	WriteBatch int
	// CompactThreshold is the dead-ratio policy applied during the
	// mutating phase (default 0.1).
	CompactThreshold float64
}

func (c MixedConfig) withDefaults() MixedConfig {
	if c.BaseN <= 0 {
		c.BaseN = 100000
	}
	if c.LearnN <= 0 {
		c.LearnN = c.BaseN / 10
		if c.LearnN < 1000 {
			c.LearnN = 1000
		}
	}
	if c.Partitions <= 0 {
		c.Partitions = 8
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.K <= 0 {
		c.K = 100
	}
	if c.NProbe <= 0 {
		c.NProbe = 1
	}
	if c.Readers <= 0 {
		c.Readers = 2 * runtime.GOMAXPROCS(0)
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.WriteRatio <= 0 {
		c.WriteRatio = 0.05
	}
	if c.WriteRatio > 0.9 {
		c.WriteRatio = 0.9
	}
	if c.WriteBatch <= 0 {
		c.WriteBatch = 16
	}
	if c.CompactThreshold <= 0 {
		c.CompactThreshold = 0.1
	}
	return c
}

// MixedPhase reports one phase of the mixed benchmark.
type MixedPhase struct {
	Reads       int64   `json:"reads"`
	Writes      int64   `json:"writes"`  // Add/Delete operations
	Added       int64   `json:"added"`   // vectors ingested
	Deleted     int64   `json:"deleted"` // ids tombstoned
	Compactions int64   `json:"compactions"`
	Reclaimed   int64   `json:"reclaimed"` // tombstoned rows removed
	ReadQPS     float64 `json:"read_qps"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
}

// MixedReport is the JSON document of one mixed read/write run.
type MixedReport struct {
	Schema string `json:"schema"`
	// Backend is the block-kernel backend the readers ran on (the
	// startup selection; force with PQ_FORCE_BACKEND to record the
	// mixed workload on another backend).
	Backend    string  `json:"backend"`
	BaseN      int     `json:"base_n"`
	Partitions int     `json:"partitions"`
	Readers    int     `json:"readers"`
	K          int     `json:"k"`
	NProbe     int     `json:"nprobe"`
	WriteRatio float64 `json:"write_ratio"`
	DurationS  float64 `json:"phase_duration_s"`

	Quiescent MixedPhase `json:"quiescent"`
	Mutating  MixedPhase `json:"mutating"`

	// P99Ratio is mutating-phase read p99 over quiescent-phase read p99
	// — the headline number: with the lock-free epoch read path it stays
	// near 1 instead of spiking while writers hold a global lock.
	P99Ratio float64 `json:"p99_ratio"`
}

// quantileMs returns the q-quantile of sorted latency samples in ms.
func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i].Nanoseconds()) / 1e6
}

// MeasureMixed runs the two-phase mixed benchmark and returns its
// report.
func MeasureMixed(cfg MixedConfig) (*MixedReport, error) {
	cfg = cfg.withDefaults()
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: cfg.Seed})
	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = cfg.Partitions
	opt.Seed = cfg.Seed
	idx, err := pqfastscan.Build(gen.Generate(cfg.LearnN), gen.Generate(cfg.BaseN), opt)
	if err != nil {
		return nil, fmt.Errorf("bench: build mixed-workload index: %w", err)
	}
	queries := gen.Generate(256)
	ctx := context.Background()
	// Warm every Fast Scan layout so neither phase pays construction.
	if _, err := idx.Search(ctx, queries.Row(0), cfg.K, pqfastscan.WithNProbe(cfg.Partitions)); err != nil {
		return nil, err
	}

	report := &MixedReport{
		Schema:     "pqfastscan-mixed/v2",
		Backend:    pqfastscan.ActiveBackend().String(),
		BaseN:      cfg.BaseN,
		Partitions: cfg.Partitions,
		Readers:    cfg.Readers,
		K:          cfg.K,
		NProbe:     cfg.NProbe,
		WriteRatio: cfg.WriteRatio,
		DurationS:  cfg.Duration.Seconds(),
	}

	runPhase := func(mutate bool) (MixedPhase, error) {
		var (
			reads    atomic.Int64
			writes   atomic.Int64
			phaseErr atomic.Value
			stop     = make(chan struct{})
			wg       sync.WaitGroup
		)
		fail := func(err error) { phaseErr.CompareAndSwap(nil, err) }
		lat := make([][]time.Duration, cfg.Readers)

		for r := 0; r < cfg.Readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				i := r
				for {
					select {
					case <-stop:
						return
					default:
					}
					q := queries.Row(i % queries.Rows())
					i++
					t0 := time.Now()
					_, err := idx.Search(ctx, q, cfg.K, pqfastscan.WithNProbe(cfg.NProbe))
					if err != nil {
						fail(err)
						return
					}
					lat[r] = append(lat[r], time.Since(t0))
					reads.Add(1)
				}
			}(r)
		}

		var ph MixedPhase
		if mutate {
			// Writer: paced against the read counter to hold WriteRatio.
			wg.Add(1)
			go func() {
				defer wg.Done()
				wgen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: cfg.Seed + 1})
				var recent []int64
				op := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					total := reads.Load() + writes.Load()
					if float64(writes.Load()) >= cfg.WriteRatio*float64(total+1) {
						time.Sleep(50 * time.Microsecond)
						continue
					}
					if op%4 == 3 && len(recent) > 0 {
						id := recent[0]
						recent = recent[1:]
						if err := idx.Delete(id); err != nil {
							fail(err)
							return
						}
						ph.Deleted++
					} else {
						ids, err := idx.AddBatch(wgen.Generate(cfg.WriteBatch))
						if err != nil {
							fail(err)
							return
						}
						recent = append(recent, ids...)
						ph.Added += int64(len(ids))
					}
					op++
					writes.Add(1)
				}
			}()
			// Compactor: the background dead-ratio policy.
			wg.Add(1)
			go func() {
				defer wg.Done()
				t := time.NewTicker(cfg.Duration / 10)
				defer t.Stop()
				for {
					select {
					case <-stop:
						return
					case <-t.C:
						results, err := idx.Compact(cfg.CompactThreshold)
						if err != nil {
							fail(err)
							return
						}
						for _, c := range results {
							ph.Compactions++
							ph.Reclaimed += int64(c.Reclaimed)
						}
					}
				}
			}()
		}

		time.Sleep(cfg.Duration)
		close(stop)
		wg.Wait()
		if err := phaseErr.Load(); err != nil {
			return ph, err.(error)
		}

		var all []time.Duration
		for _, l := range lat {
			all = append(all, l...)
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		ph.Reads = reads.Load()
		ph.Writes = writes.Load()
		ph.ReadQPS = float64(ph.Reads) / cfg.Duration.Seconds()
		ph.P50Ms = quantileMs(all, 0.50)
		ph.P90Ms = quantileMs(all, 0.90)
		ph.P99Ms = quantileMs(all, 0.99)
		if len(all) > 0 {
			ph.MaxMs = float64(all[len(all)-1].Nanoseconds()) / 1e6
		}
		return ph, nil
	}

	if report.Quiescent, err = runPhase(false); err != nil {
		return nil, err
	}
	if report.Mutating, err = runPhase(true); err != nil {
		return nil, err
	}
	if report.Quiescent.P99Ms > 0 {
		report.P99Ratio = report.Mutating.P99Ms / report.Quiescent.P99Ms
	}
	return report, nil
}

// RunMixed runs the mixed benchmark and writes its JSON report to w.
func RunMixed(w io.Writer, cfg MixedConfig) error {
	report, err := MeasureMixed(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
