package bench

import (
	"fmt"
	"io"
	"sync"

	"pqfastscan/internal/index"
	"pqfastscan/internal/layout"
	"pqfastscan/internal/perf"
	"pqfastscan/internal/scan"
)

// arbitraryIndex lazily builds a second index identical to env.Index
// except that the §4.3 optimized centroid index assignment is disabled,
// for the Figure 11 ablation.
var (
	arbMu    sync.Mutex
	arbCache = map[*Env]*index.Index{}
)

func (e *Env) arbitraryIndex() (*index.Index, error) {
	arbMu.Lock()
	defer arbMu.Unlock()
	if ix, ok := arbCache[e]; ok {
		return ix, nil
	}
	opt := index.DefaultOptions()
	opt.Partitions = e.Scale.Partitions
	opt.Seed = e.Scale.Seed
	opt.OptimizeAssignment = false
	ix, err := index.Build(e.Learn, e.Base, opt)
	if err != nil {
		return nil, err
	}
	arbCache[e] = ix
	return ix, nil
}

// Figure11Ablation quantifies the benefit of the optimized centroid index
// assignment (same-size k-means, §4.3) on minimum-table tightness: the
// mean gap between the exact distance-table entry and the minimum of its
// portion, plus the resulting pruning power.
func Figure11Ablation(env *Env, w io.Writer) error {
	arb, err := env.arbitraryIndex()
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintf(tw, "assignment\tmean min-table gap\tpruned %% (fastpq, c auto)\n")
	for _, row := range []struct {
		name string
		ix   *index.Index
	}{
		{"optimized (same-size k-means)", env.Index},
		{"arbitrary (training order)", arb},
	} {
		gap := minTableGap(row.ix, env)
		var pruned, lbs int
		nq := env.Pool.Rows()
		if nq > 16 {
			nq = 16
		}
		for qi := 0; qi < nq; qi++ {
			q := env.Pool.Row(qi)
			part := row.ix.RoutePartition(q)
			t := row.ix.Tables(q, part)
			p := row.ix.Parts()[part]
			fs, err := scan.NewFastScan(p, HeadlineFastOpts(p.N, 100))
			if err != nil {
				return err
			}
			_, stats := fs.Scan(t, 100)
			pruned += stats.Pruned
			lbs += stats.LowerBounds
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.2f\n", row.name, gap, 100*float64(pruned)/float64(lbs))
	}
	return tw.Flush()
}

// minTableGap averages, over sampled database vectors and benchmark
// queries, the looseness introduced by replacing an exact distance-table
// entry with its portion minimum.
func minTableGap(ix *index.Index, env *Env) float64 {
	totGap, cnt := 0.0, 0
	nq := env.Scale.QueryN
	if nq > 4 {
		nq = 4
	}
	for qi := 0; qi < nq; qi++ {
		q := env.Queries.Row(qi)
		part := ix.RoutePartition(q)
		t := ix.Tables(q, part)
		p := ix.Parts()[part]
		for j := 0; j < scan.M; j++ {
			row := t.Row(j)
			var mins [16]float32
			for h := 0; h < 16; h++ {
				m := row[h*16]
				for _, v := range row[h*16+1 : h*16+16] {
					if v < m {
						m = v
					}
				}
				mins[h] = m
			}
			step := p.N/2000 + 1
			for i := 0; i < p.N; i += step {
				e := row[p.Code(i)[j]]
				totGap += float64(e - mins[p.Code(i)[j]>>4])
				cnt++
			}
		}
	}
	if cnt == 0 {
		return 0
	}
	return totGap / float64(cnt)
}

// GroupingAblation sweeps the grouping depth c on the largest partition:
// deeper grouping replaces minimum tables with exact small tables
// (raising pruning power) but shrinks groups, so the per-group
// table-reload overhead grows — the trade-off behind the paper's
// nmin(c) = 50·16^c rule.
func GroupingAblation(env *Env, w io.Writer) error {
	part := env.largestPartition()
	n := env.Index.Parts()[part].N
	arch := perf.Haswell
	pool := env.partitionPoolQueries(part, 8)
	if len(pool) == 0 {
		pool = []int{0}
	}
	nq := len(pool)
	tw := newTab(w)
	fmt.Fprintf(tw, "c\tnmin(c)\tgroups\tavg group size\tpruned %%\tspeed [Mvecs/s]\n")
	for c := 0; c <= layout.MaxGroupComponents; c++ {
		opt := HeadlineFastOpts(n, 100)
		opt.GroupComponents = c
		var pruned, lbs int
		var speed float64
		var groups int
		for _, qi := range pool {
			out, _, err := env.runPool(index.KernelFastScan, qi, 100, opt)
			if err != nil {
				return err
			}
			pruned += out.Stats.Pruned
			lbs += out.Stats.LowerBounds
			groups = out.Stats.Groups
			speed += speedMvecs(out.Stats.Counters(arch), n, arch)
		}
		avgSize := float64(n)
		if groups > 0 {
			avgSize = float64(n) / float64(groups)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.1f\t%.2f\t%.0f\n",
			c, layout.MinPartitionSize(c), groups, avgSize,
			100*float64(pruned)/float64(lbs), speed/float64(nq))
	}
	fmt.Fprintf(tw, "\npartition %d (%d vectors); auto rule selects c=%d\n",
		part, n, layout.AutoComponents(n))
	return tw.Flush()
}

// OrderingAblation isolates the group-ordering extension: identical
// results, but visiting promising groups first tightens the pruning
// threshold earlier, which matters at sub-paper partition sizes.
func OrderingAblation(env *Env, w io.Writer) error {
	part := env.largestPartition()
	n := env.Index.Parts()[part].N
	arch := perf.Haswell
	tw := newTab(w)
	fmt.Fprintf(tw, "group order\tpruned %%\tspeed [Mvecs/s]\n")
	for _, row := range []struct {
		name    string
		ordered bool
	}{
		{"database order (paper)", false},
		{"lower-bound order (extension)", true},
	} {
		opt := HeadlineFastOpts(n, 100)
		opt.OrderGroups = row.ordered
		pool := env.partitionPoolQueries(part, 12)
		if len(pool) == 0 {
			pool = []int{0}
		}
		var pruned, lbs int
		var speed float64
		for _, qi := range pool {
			out, _, err := env.runPool(index.KernelFastScan, qi, 100, opt)
			if err != nil {
				return err
			}
			pruned += out.Stats.Pruned
			lbs += out.Stats.LowerBounds
			speed += speedMvecs(out.Stats.Counters(arch), n, arch)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.0f\n",
			row.name, 100*float64(pruned)/float64(lbs), speed/float64(len(pool)))
	}
	return tw.Flush()
}

// MemoryFootprint reports the §4.2 packed-layout saving per partition.
func MemoryFootprint(env *Env, w io.Writer) error {
	tw := newTab(w)
	fmt.Fprintf(tw, "partition\t# vectors\tc\trow-major bytes\tpacked bytes\tsaving %%\n")
	var totPacked, totRow int
	for part := range env.Index.Parts() {
		fs, err := env.Index.FastScanner(part)
		if err != nil {
			return err
		}
		g := fs.Grouped()
		totPacked += g.PackedBytes()
		totRow += g.RowMajorBytes()
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%.1f\n",
			part, g.N, g.C, g.RowMajorBytes(), g.PackedBytes(), 100*g.MemorySaving())
	}
	fmt.Fprintf(tw, "total\t\t\t%d\t%d\t%.1f\n",
		totRow, totPacked, 100*(1-float64(totPacked)/float64(totRow)))
	return tw.Flush()
}
