// Package bench is the experiment harness: one driver per table and
// figure of the paper's evaluation section (§5), each printing the same
// rows or series the paper reports. Drivers are shared by cmd/pqbench and
// the root-level testing.B benchmarks.
//
// Scale note (see DESIGN.md and EXPERIMENTS.md): the paper scans 3.2-25 M
// vector partitions of ANN_SIFT1B; the default harness scale builds a
// synthetic index two orders of magnitude smaller so every experiment
// runs in seconds on one core. Reported quantities are per-vector rates,
// fractions and ratios, which preserve the paper's shape; raw wall-clock
// milliseconds are reported both as modeled values (internal/perf, the
// hardware-counter substitution) and as measured Go process times.
package bench

import (
	"fmt"
	"sync"
	"time"

	"pqfastscan/internal/dataset"
	"pqfastscan/internal/index"
	"pqfastscan/internal/quantizer"
	"pqfastscan/internal/scan"
	"pqfastscan/internal/topk"
	"pqfastscan/internal/vec"
)

// Scale sizes an experiment environment.
type Scale struct {
	Name       string
	LearnN     int
	BaseN      int
	QueryN     int
	Partitions int
	Seed       uint64
}

// SmallScale keeps full-suite runs (go test -bench=.) within seconds.
var SmallScale = Scale{
	Name: "small", LearnN: 8000, BaseN: 120000, QueryN: 16, Partitions: 8, Seed: 42,
}

// DefaultScale is used by cmd/pqbench.
var DefaultScale = Scale{
	Name: "default", LearnN: 10000, BaseN: 200000, QueryN: 24, Partitions: 8, Seed: 42,
}

// LargeScale approaches the paper's per-partition regime more closely
// (minutes of setup on one core).
var LargeScale = Scale{
	Name: "large", LearnN: 20000, BaseN: 1000000, QueryN: 32, Partitions: 8, Seed: 42,
}

// Env holds the shared dataset and index of an experiment run. Build it
// once per scale; experiments only read it.
type Env struct {
	Scale   Scale
	Learn   vec.Matrix
	Base    vec.Matrix
	Queries vec.Matrix
	Index   *index.Index

	// route[i] is the partition query i falls in; tables[i] its distance
	// tables for that partition (Steps 1-2 of Algorithm 1, computed once).
	route  []int
	tables []quantizer.Tables

	// Pool is a larger query set used by fixed-partition experiments:
	// the paper evaluates each partition with the queries the index
	// routes to it ("each query is directed to the most relevant
	// partition which is then scanned", §5.1), so experiments pinned to
	// one partition must draw queries that actually belong there.
	Pool      vec.Matrix
	poolRoute []int

	mu       sync.Mutex
	fastOpts map[fastKey]*scan.FastScan
}

type fastKey struct {
	part    int
	keepPct int // keep*1e4 to stay hashable
	c       int
	ordered bool
}

// NewEnv generates data, builds the index and precomputes query routing.
func NewEnv(s Scale) (*Env, error) {
	gen := dataset.NewGenerator(dataset.Config{Seed: s.Seed})
	env := &Env{
		Scale:    s,
		Learn:    gen.Generate(s.LearnN),
		Base:     gen.Generate(s.BaseN),
		Queries:  gen.Generate(s.QueryN),
		fastOpts: make(map[fastKey]*scan.FastScan),
	}
	opt := index.DefaultOptions()
	opt.Partitions = s.Partitions
	opt.Seed = s.Seed
	ix, err := index.Build(env.Learn, env.Base, opt)
	if err != nil {
		return nil, fmt.Errorf("bench: building index: %w", err)
	}
	// Honor PQ_STORE_DIR / PQ_POOL_BYTES exactly as the facade's build
	// paths (and therefore pqserve) do: with the variables set the
	// environment's index serves from disk extents behind the bounded
	// buffer pool, so paged-regime benchmarks need no bespoke wiring.
	// Kernel-level experiments keep working — Parts() materializes paged
	// partitions — they just measure over the paging stack.
	if _, err := ix.AttachStoreFromEnv(); err != nil {
		return nil, fmt.Errorf("bench: attaching disk store: %w", err)
	}
	env.Index = ix
	env.route = make([]int, s.QueryN)
	env.tables = make([]quantizer.Tables, s.QueryN)
	for i := 0; i < s.QueryN; i++ {
		q := env.Queries.Row(i)
		env.route[i] = ix.RoutePartition(q)
		env.tables[i] = ix.Tables(q, env.route[i])
	}
	env.Pool = gen.Generate(16 * s.Partitions)
	env.poolRoute = make([]int, env.Pool.Rows())
	for i := range env.poolRoute {
		env.poolRoute[i] = ix.RoutePartition(env.Pool.Row(i))
	}
	return env, nil
}

// PoolQueriesFor returns up to max pool-query indexes that the index
// routes to partition part.
func (e *Env) PoolQueriesFor(part, max int) []int {
	var out []int
	for i, p := range e.poolRoute {
		if p == part {
			out = append(out, i)
			if len(out) == max {
				break
			}
		}
	}
	return out
}

// PoolTables computes the distance tables of pool query qi against its
// routed partition.
func (e *Env) PoolTables(qi int) (part int, t quantizer.Tables) {
	part = e.poolRoute[qi]
	return part, e.Index.Tables(e.Pool.Row(qi), part)
}

// QueryTables returns the routed partition and precomputed tables of
// query i.
func (e *Env) QueryTables(i int) (part int, t quantizer.Tables) {
	return e.route[i], e.tables[i]
}

// FastScanner returns (and caches) a FastScan kernel for the partition
// with explicit options.
func (e *Env) FastScanner(part int, opt scan.FastScanOptions) (*scan.FastScan, error) {
	key := fastKey{part: part, keepPct: int(opt.Keep * 1e4), c: opt.GroupComponents, ordered: opt.OrderGroups}
	e.mu.Lock()
	defer e.mu.Unlock()
	if fs, ok := e.fastOpts[key]; ok {
		return fs, nil
	}
	fs, err := scan.NewFastScan(e.Index.Parts()[part], opt)
	if err != nil {
		return nil, err
	}
	e.fastOpts[key] = fs
	return fs, nil
}

// ScanOutcome is one kernel execution's record.
type ScanOutcome struct {
	Results  []topk.Result
	Stats    scan.Stats
	Measured time.Duration // Go wall-clock of the kernel call
}

// RunKernel executes one named baseline kernel over partition part for
// the tables of query qi.
func (e *Env) RunKernel(kernel index.Kernel, qi, k int, fsOpt scan.FastScanOptions) (ScanOutcome, error) {
	part, t := e.QueryTables(qi)
	p := e.Index.Parts()[part]
	start := time.Now()
	var (
		res   []topk.Result
		stats scan.Stats
	)
	switch kernel {
	case index.KernelNaive:
		res, stats = scan.Naive(p, t, k)
	case index.KernelLibpq:
		res, stats = scan.Libpq(p, t, k)
	case index.KernelAVX:
		res, stats = scan.AVX(p, t, k)
	case index.KernelGather:
		res, stats = scan.Gather(p, t, k)
	case index.KernelQuantOnly:
		res, stats = scan.QuantizationOnly(p, t, k, fsOpt.Keep)
	case index.KernelFastScan:
		fs, err := e.FastScanner(part, fsOpt)
		if err != nil {
			return ScanOutcome{}, err
		}
		start = time.Now() // exclude layout construction
		res, stats = fs.Scan(t, k)
	default:
		return ScanOutcome{}, fmt.Errorf("bench: unknown kernel %v", kernel)
	}
	return ScanOutcome{Results: res, Stats: stats, Measured: time.Since(start)}, nil
}

// DefaultFastOpts is the configuration headline experiments use: the
// paper's keep default with automatic grouping depth and the
// group-ordering extension enabled (its effect is isolated by the
// ordering ablation experiment).
func DefaultFastOpts() scan.FastScanOptions {
	return scan.FastScanOptions{
		Keep:            scan.DefaultKeep,
		GroupComponents: -1,
		OrderGroups:     true,
	}
}

// PaperFastOpts is the strict paper configuration (no group ordering).
func PaperFastOpts() scan.FastScanOptions {
	return scan.FastScanOptions{
		Keep:            scan.DefaultKeep,
		GroupComponents: -1,
		OrderGroups:     false,
	}
}

// HeadlineFastOpts scales the keep fraction to the partition size: the
// paper's keep=0.5% of a 25 M-vector partition yields a 125 000-vector
// temporary scan, ~1000x its topk=100 — so the temporary topk-th neighbor
// (the quantization bound qmax, §4.4) sits at a very selective quantile.
// Reproducing that ratio at a partition two orders of magnitude smaller
// requires a larger keep fraction; we target keepN >= 20·topk while never
// going below the paper's default. The keep-phase overhead stays
// proportional to keep and is reported by the figures that sweep it.
func HeadlineFastOpts(partitionN, topk int) scan.FastScanOptions {
	keep := scan.DefaultKeep
	if partitionN > 0 {
		if scaled := 20 * float64(topk) / float64(partitionN); scaled > keep {
			keep = scaled
		}
	}
	if keep > 0.2 {
		keep = 0.2
	}
	return scan.FastScanOptions{Keep: keep, GroupComponents: -1, OrderGroups: true}
}
