package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"pqfastscan"
	"pqfastscan/internal/plan"
)

// Planner benchmarking (cmd/pqbench -planner, DESIGN.md §16): sweep a
// grid of fixed query configurations — nprobe × kernel/backend — and
// measure the adaptive planner (WithAuto, WithTargetRecall) against it,
// first on the RAM-resident index and then on the same index paged
// through a small buffer pool (a fraction of its extent footprint).
// Before anything is timed, every planned query is asserted
// bit-identical to the fixed-option query built from its decision: the
// planner's entire contract is that it only picks among configurations
// that return the same answer.

// PlannerConfig parameterizes a planner sweep.
type PlannerConfig struct {
	BaseN        int     // database size (default 100000)
	LearnN       int     // training size (default BaseN/10, min 1000)
	Partitions   int     // IVF cells (default 8)
	Seed         uint64  // dataset seed (default 42)
	K            int     // neighbors per query (default 100)
	Queries      int     // distinct queries (default 32)
	Rounds       int     // measurement passes over the query set per grid point (default 10)
	PoolFraction float64 // paged-regime pool capacity as a fraction of the extent footprint (default 0.1)
	Recall       float64 // recall target measured beside the min-latency auto point (default 0.9)
}

func (c PlannerConfig) withDefaults() PlannerConfig {
	if c.BaseN <= 0 {
		// Large enough that the kernel classes separate clearly in
		// observed ns/code (the paper's regime); small partitions push
		// the classes within noise of each other.
		c.BaseN = 100000
	}
	if c.LearnN <= 0 {
		c.LearnN = c.BaseN / 10
		if c.LearnN < 1000 {
			c.LearnN = 1000
		}
	}
	if c.Partitions <= 0 {
		c.Partitions = 8
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.K <= 0 {
		c.K = 100
	}
	if c.Queries <= 0 {
		c.Queries = 32
	}
	if c.Rounds <= 0 {
		c.Rounds = 10
	}
	if c.PoolFraction <= 0 || c.PoolFraction > 1 {
		c.PoolFraction = 0.1
	}
	if c.Recall <= 0 || c.Recall > 1 {
		c.Recall = 0.9
	}
	return c
}

// PlannerPoint is one measured configuration: a fixed grid point, or
// one of the planned points (auto / recall-target).
type PlannerPoint struct {
	Name    string  `json:"name"`
	NProbe  int     `json:"nprobe,omitempty"` // 0 for planned points (chosen per query)
	Kernel  string  `json:"kernel,omitempty"`
	Backend string  `json:"backend,omitempty"`
	QPS     float64 `json:"qps"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
}

// PlannerRegime is one serving regime's sweep: the fixed grid, the two
// planned points, the p99 comparisons the acceptance bars read, and the
// planner's decision counters over the planned passes.
type PlannerRegime struct {
	Regime      string `json:"regime"`                 // "ram" or "paged"
	PoolBytes   int64  `json:"pool_bytes,omitempty"`   // paged only
	ExtentBytes int64  `json:"extent_bytes,omitempty"` // paged only

	// BitIdentityChecked counts the planned queries (auto and
	// recall-target, every query) whose results were verified identical
	// to the fixed-option query built from the planner's own probe set —
	// all before any timing.
	BitIdentityChecked int `json:"bit_identity_checked"`

	Fixed  []PlannerPoint `json:"fixed"`
	Auto   PlannerPoint   `json:"auto"`
	Recall PlannerPoint   `json:"recall"`

	RecallTarget float64 `json:"recall_target"`

	BestFixedP99Ms  float64 `json:"best_fixed_p99_ms"`
	WorstFixedP99Ms float64 `json:"worst_fixed_p99_ms"`
	// AutoOverBestP99 is auto p99 / best fixed p99 (≤ 1.15 is the bar:
	// planning costs at most 15% over the oracle grid point).
	AutoOverBestP99 float64 `json:"auto_over_best_p99"`
	// WorstOverAutoP99 is worst fixed p99 / auto p99 (≥ 2 on at least
	// one regime is the bar: the planner dodges the bad grid points).
	WorstOverAutoP99 float64 `json:"worst_over_auto_p99"`

	Planner plan.Stats `json:"planner"`
}

// PlannerReport is the JSON document of one planner sweep
// (pqfastscan-planner/v1).
type PlannerReport struct {
	Schema     string   `json:"schema"`
	Backend    string   `json:"backend"`
	BaseN      int      `json:"base_n"`
	Partitions int      `json:"partitions"`
	K          int      `json:"k"`
	Queries    int      `json:"queries"`
	Rounds     int      `json:"rounds"`
	Mem        MemStats `json:"mem"`

	Regimes []PlannerRegime `json:"regimes"`
}

// plannerGridKernels are the kernel/backend variants of the fixed grid.
// Each is bit-identical to the others; they differ only in cost — which
// is the whole space the planner chooses in.
var plannerGridKernels = []struct {
	name string
	opts func() []pqfastscan.SearchOption
}{
	{"fastpq", func() []pqfastscan.SearchOption {
		return []pqfastscan.SearchOption{pqfastscan.WithKernel(pqfastscan.KernelFastScan)}
	}},
	{"fastpq-swar", func() []pqfastscan.SearchOption {
		return []pqfastscan.SearchOption{
			pqfastscan.WithKernel(pqfastscan.KernelFastScan),
			pqfastscan.WithBackend(pqfastscan.BackendSWAR),
		}
	}},
	{"exact", func() []pqfastscan.SearchOption {
		return []pqfastscan.SearchOption{pqfastscan.WithKernel(pqfastscan.KernelNaive)}
	}},
}

// MeasurePlanner builds a synthetic index and runs the planner-vs-fixed
// sweep on it twice: RAM-resident, then paged through a pool bounded at
// PoolFraction of the extent footprint.
func MeasurePlanner(cfg PlannerConfig) (*PlannerReport, error) {
	cfg = cfg.withDefaults()
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: cfg.Seed})
	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = cfg.Partitions
	opt.Seed = cfg.Seed
	opt.OrderGroups = true
	idx, err := pqfastscan.Build(gen.Generate(cfg.LearnN), gen.Generate(cfg.BaseN), opt)
	if err != nil {
		return nil, fmt.Errorf("bench: build planner index: %w", err)
	}
	queries := gen.Generate(cfg.Queries)

	report := &PlannerReport{
		Schema:     "pqfastscan-planner/v1",
		Backend:    pqfastscan.ActiveBackend().String(),
		BaseN:      cfg.BaseN,
		Partitions: cfg.Partitions,
		K:          cfg.K,
		Queries:    cfg.Queries,
		Rounds:     cfg.Rounds,
	}

	ram, err := measurePlannerRegime(idx, queries, cfg, "ram")
	if err != nil {
		return nil, err
	}
	report.Regimes = append(report.Regimes, *ram)

	// Same index, paged: attach (ample pool), then bound the pool at the
	// configured fraction of the sealed footprint so multi-probe passes
	// fault continuously while single-probe working sets stay resident —
	// the regime where probe-set choice dominates the latency.
	if os.Getenv("PQ_STORE_DIR") == "" { // already paged when the env asked for it
		dir, err := os.MkdirTemp("", "pqfs-planner-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		if err := idx.WithDiskStore(dir, 1<<30); err != nil {
			return nil, fmt.Errorf("bench: attach disk store: %w", err)
		}
	}
	st, ok := idx.StoreStats()
	if !ok || st.ExtentBytes <= 0 {
		return nil, fmt.Errorf("bench: disk store attached but empty (stats %+v)", st)
	}
	capBytes := int64(cfg.PoolFraction * float64(st.ExtentBytes))
	if capBytes < 1 {
		capBytes = 1
	}
	idx.Internal().SetPoolCapacity(1) // drain: the paged regime starts cold
	idx.Internal().SetPoolCapacity(capBytes)

	paged, err := measurePlannerRegime(idx, queries, cfg, "paged")
	if err != nil {
		return nil, err
	}
	paged.PoolBytes = capBytes
	paged.ExtentBytes = st.ExtentBytes
	report.Regimes = append(report.Regimes, *paged)

	report.Mem = readMemStats()
	return report, nil
}

// measurePlannerRegime runs one regime's sweep: warm the cost EWMAs,
// assert bit-identity of every planned query, then time the fixed grid
// and the planned points.
func measurePlannerRegime(idx *pqfastscan.Index, queries pqfastscan.Matrix, cfg PlannerConfig, regime string) (*PlannerRegime, error) {
	ctx := context.Background()
	reg := &PlannerRegime{Regime: regime, RecallTarget: cfg.Recall}

	nprobes := plannerNProbes(cfg.Partitions)

	// Warm-up: one pass of every kernel class at full probe width feeds
	// the per-class ns/code EWMAs (resident and paged cells separately —
	// this regime's scans land in this regime's cells), so the planner
	// measured below decides from observations, not the cold prior.
	for _, kv := range plannerGridKernels {
		opts := append(kv.opts(), pqfastscan.WithNProbe(cfg.Partitions))
		for qi := 0; qi < queries.Rows(); qi++ {
			if _, err := idx.Search(ctx, queries.Row(qi), cfg.K, opts...); err != nil {
				return nil, fmt.Errorf("bench: planner warmup (%s): %w", kv.name, err)
			}
		}
	}

	// Bit-identity, before any timing: a planned query must return
	// exactly what the fixed-option query over its own probe set does.
	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.Row(qi)
		for _, planned := range [][]pqfastscan.SearchOption{
			{pqfastscan.WithAuto()},
			{pqfastscan.WithTargetRecall(cfg.Recall)},
		} {
			got, err := idx.Search(ctx, q, cfg.K, planned...)
			if err != nil {
				return nil, err
			}
			want, err := idx.Search(ctx, q, cfg.K, pqfastscan.WithNProbe(len(got.Partitions)))
			if err != nil {
				return nil, err
			}
			if err := samePlannerAnswer(got, want); err != nil {
				return nil, fmt.Errorf("bench: %s regime, query %d: planned result diverged from fixed: %w", regime, qi, err)
			}
			reg.BitIdentityChecked++
		}
	}

	// The decision counters below describe only this regime's timed
	// planned passes.
	plan.Reset()

	measure := func(name string, opts ...pqfastscan.SearchOption) (PlannerPoint, error) {
		lats := make([]time.Duration, 0, cfg.Rounds*queries.Rows())
		start := time.Now()
		for r := 0; r < cfg.Rounds; r++ {
			for qi := 0; qi < queries.Rows(); qi++ {
				t0 := time.Now()
				if _, err := idx.Search(ctx, queries.Row(qi), cfg.K, opts...); err != nil {
					return PlannerPoint{}, fmt.Errorf("bench: planner point %s: %w", name, err)
				}
				lats = append(lats, time.Since(t0))
			}
		}
		total := time.Since(start)
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		return PlannerPoint{
			Name:  name,
			QPS:   float64(len(lats)) / total.Seconds(),
			P50Ms: quantileMs(lats, 0.50),
			P99Ms: quantileMs(lats, 0.99),
		}, nil
	}

	for _, np := range nprobes {
		for _, kv := range plannerGridKernels {
			name := fmt.Sprintf("nprobe=%d/%s", np, kv.name)
			pt, err := measure(name, append(kv.opts(), pqfastscan.WithNProbe(np))...)
			if err != nil {
				return nil, err
			}
			pt.NProbe = np
			pt.Kernel = kv.name
			reg.Fixed = append(reg.Fixed, pt)
		}
	}

	auto, err := measure("auto", pqfastscan.WithAuto())
	if err != nil {
		return nil, err
	}
	reg.Auto = auto
	recall, err := measure(fmt.Sprintf("recall=%g", cfg.Recall), pqfastscan.WithTargetRecall(cfg.Recall))
	if err != nil {
		return nil, err
	}
	reg.Recall = recall
	reg.Planner = plan.Snapshot()

	reg.BestFixedP99Ms = reg.Fixed[0].P99Ms
	reg.WorstFixedP99Ms = reg.Fixed[0].P99Ms
	for _, pt := range reg.Fixed[1:] {
		if pt.P99Ms < reg.BestFixedP99Ms {
			reg.BestFixedP99Ms = pt.P99Ms
		}
		if pt.P99Ms > reg.WorstFixedP99Ms {
			reg.WorstFixedP99Ms = pt.P99Ms
		}
	}
	if reg.BestFixedP99Ms > 0 {
		reg.AutoOverBestP99 = reg.Auto.P99Ms / reg.BestFixedP99Ms
	}
	if reg.Auto.P99Ms > 0 {
		reg.WorstOverAutoP99 = reg.WorstFixedP99Ms / reg.Auto.P99Ms
	}
	return reg, nil
}

// plannerNProbes is the probe-width axis of the fixed grid: powers of
// two up to every partition.
func plannerNProbes(partitions int) []int {
	var out []int
	for np := 1; np < partitions; np *= 2 {
		out = append(out, np)
	}
	return append(out, partitions)
}

// samePlannerAnswer compares two search results for exact equality of
// probe set and neighbor list.
func samePlannerAnswer(got, want *pqfastscan.SearchResult) error {
	if len(got.Partitions) != len(want.Partitions) {
		return fmt.Errorf("probed %v vs %v", got.Partitions, want.Partitions)
	}
	for i := range got.Partitions {
		if got.Partitions[i] != want.Partitions[i] {
			return fmt.Errorf("probed %v vs %v", got.Partitions, want.Partitions)
		}
	}
	if len(got.Results) != len(want.Results) {
		return fmt.Errorf("%d results vs %d", len(got.Results), len(want.Results))
	}
	for i := range got.Results {
		if got.Results[i] != want.Results[i] {
			return fmt.Errorf("result %d: %+v vs %+v", i, got.Results[i], want.Results[i])
		}
	}
	return nil
}

// RunPlanner measures the planner sweep and writes the report as JSON.
func RunPlanner(w io.Writer, cfg PlannerConfig) error {
	report, err := MeasurePlanner(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
