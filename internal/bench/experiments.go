package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"

	"pqfastscan/internal/index"
	"pqfastscan/internal/perf"
	"pqfastscan/internal/quantizer"
	"pqfastscan/internal/scan"
	"pqfastscan/internal/topk"
)

// Experiment is one registered table/figure driver.
type Experiment struct {
	Name     string
	Title    string
	NeedsEnv bool
	Run      func(env *Env, w io.Writer) error
}

// Registry lists every experiment in the paper's order.
var Registry = []Experiment{
	{"table1", "Table 1: cache levels and PQ distance table residency", false, func(_ *Env, w io.Writer) error { return Table1(w) }},
	{"table2", "Table 2: gather vs pshufb instruction properties", false, func(_ *Env, w io.Writer) error { return Table2(w) }},
	{"fig3", "Figure 3: PQ Scan implementations (naive/libpq/avx/gather)", true, Figure3},
	{"table3", "Table 3: partition sizes and query routing", true, Table3},
	{"fig14", "Figure 14 / Table 4: response time distribution", true, Figure14},
	{"fig15", "Figure 15: performance counters libpq vs fastpq", true, Figure15},
	{"fig16", "Figure 16: impact of keep parameter", true, Figure16},
	{"fig17", "Figure 17: pruning power of quantization alone", true, Figure17},
	{"fig18", "Figure 18: impact of topk parameter", true, Figure18},
	{"fig19", "Figure 19: impact of partition size", true, Figure19},
	{"fig20", "Figure 20: large-scale run and CPU architectures", true, Figure20},
	{"fig11", "Figure 11 ablation: centroid index assignment", true, Figure11Ablation},
	{"grouping", "§4.2 ablation: grouping depth c", true, GroupingAblation},
	{"ordering", "Extension ablation: group visit order", true, OrderingAblation},
	{"memory", "§4.2: packed layout memory footprint", true, MemoryFootprint},
}

// Find returns the experiment registered under name.
func Find(name string) (Experiment, bool) {
	for _, e := range Registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// Table1 reproduces the cache-level analysis: the distance tables of each
// 64-bit PQ configuration land in the cache level that fits them,
// determining mem2 access latency.
func Table1(w io.Writer) error {
	arch := perf.Haswell
	tw := newTab(w)
	fmt.Fprintf(tw, "config\ttables bytes\tcache level\tlatency (cycles)\tmem1+mem2 loads/vector\tmodeled cycles/vec\tscan speed [Mvecs/s]\n")
	for _, cfg := range []quantizer.Config{quantizer.PQ16x4, quantizer.PQ8x8, quantizer.PQ4x16} {
		level, lat := perf.CacheLevel(arch, cfg.TableBytes())
		cycles := perf.ConfigScanCycles(cfg.M, cfg.KStar(), arch)
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.0f\t%d\t%.1f\t%.0f\n",
			cfg, cfg.TableBytes(), level, lat, 2*cfg.M, cycles,
			arch.FreqGHz*1e3/cycles)
	}
	fmt.Fprintf(tw, "\nL1=%d KiB (lat %.0f), L2=%d KiB (lat %.0f), L3=%d KiB (lat %.0f) [%s]\n",
		arch.L1KiB, arch.L1Latency, arch.L2KiB, arch.L2Latency, arch.L3KiB, arch.L3Latency, arch.Name)
	return tw.Flush()
}

// Table2 prints the modeled instruction properties the paper measures on
// Haswell.
func Table2(w io.Writer) error {
	tw := newTab(w)
	fmt.Fprintf(tw, "inst\tlat\tthrough\tuops\t# elem\telem size\n")
	g, p := perf.GatherCost(), perf.PshufbCost()
	fmt.Fprintf(tw, "gather\t%.0f\t%.0f\t%.0f\t%d\t%d bits\n", g.Latency, g.RecipTP, g.Uops, 8, 32)
	fmt.Fprintf(tw, "pshufb\t%.0f\t%.1f\t%.0f\t%d\t%d bits\n", p.Latency, p.RecipTP, p.Uops, 16, 8)
	return tw.Flush()
}

// largestPartition returns the index of the biggest IVF cell (the paper's
// "partition 0" is its largest, 25 M vectors).
func (e *Env) largestPartition() int {
	best, bestN := 0, -1
	for i, p := range e.Index.Parts() {
		if p.N > bestN {
			best, bestN = i, p.N
		}
	}
	return best
}

// TablesFor computes distance tables of query qi against an arbitrary
// partition (not necessarily the routed one).
func (e *Env) TablesFor(qi, part int) quantizer.Tables {
	if e.route[qi] == part {
		return e.tables[qi]
	}
	return e.Index.Tables(e.Queries.Row(qi), part)
}

// runOn executes kernel over an explicit partition with query qi's tables.
func (e *Env) runOn(kernel index.Kernel, part, qi, k int, fsOpt scan.FastScanOptions) (ScanOutcome, error) {
	t := e.TablesFor(qi, part)
	p := e.Index.Parts()[part]
	switch kernel {
	case index.KernelNaive:
		r, s := scan.Naive(p, t, k)
		return ScanOutcome{Results: r, Stats: s}, nil
	case index.KernelLibpq:
		r, s := scan.Libpq(p, t, k)
		return ScanOutcome{Results: r, Stats: s}, nil
	case index.KernelAVX:
		r, s := scan.AVX(p, t, k)
		return ScanOutcome{Results: r, Stats: s}, nil
	case index.KernelGather:
		r, s := scan.Gather(p, t, k)
		return ScanOutcome{Results: r, Stats: s}, nil
	case index.KernelQuantOnly:
		r, s := scan.QuantizationOnly(p, t, k, fsOpt.Keep)
		return ScanOutcome{Results: r, Stats: s}, nil
	case index.KernelFastScan:
		fs, err := e.FastScanner(part, fsOpt)
		if err != nil {
			return ScanOutcome{}, err
		}
		r, s := fs.Scan(t, k)
		return ScanOutcome{Results: r, Stats: s}, nil
	case index.KernelFastScan256:
		fs, err := e.FastScanner(part, fsOpt)
		if err != nil {
			return ScanOutcome{}, err
		}
		r, s := fs.Scan256(t, k)
		return ScanOutcome{Results: r, Stats: s}, nil
	}
	return ScanOutcome{}, fmt.Errorf("bench: unknown kernel %v", kernel)
}

// runPool executes kernel for pool query poolQi over its routed
// partition.
func (e *Env) runPool(kernel index.Kernel, poolQi, k int, fsOpt scan.FastScanOptions) (ScanOutcome, int, error) {
	part, t := e.PoolTables(poolQi)
	p := e.Index.Parts()[part]
	var (
		r   []topk.Result
		st  scan.Stats
		err error
	)
	switch kernel {
	case index.KernelNaive:
		r, st = scan.Naive(p, t, k)
	case index.KernelLibpq:
		r, st = scan.Libpq(p, t, k)
	case index.KernelAVX:
		r, st = scan.AVX(p, t, k)
	case index.KernelGather:
		r, st = scan.Gather(p, t, k)
	case index.KernelQuantOnly:
		r, st = scan.QuantizationOnly(p, t, k, fsOpt.Keep)
	case index.KernelFastScan, index.KernelFastScan256:
		var fs *scan.FastScan
		fs, err = e.FastScanner(part, fsOpt)
		if err == nil {
			if kernel == index.KernelFastScan {
				r, st = fs.Scan(t, k)
			} else {
				r, st = fs.Scan256(t, k)
			}
		}
	default:
		err = fmt.Errorf("bench: unknown kernel %v", kernel)
	}
	return ScanOutcome{Results: r, Stats: st}, part, err
}

// partitionPoolQueries returns the pool queries routed to part, falling
// back to the shared query set (scanned cross-partition) when the pool
// holds none — partitions tiny enough to attract no queries.
func (e *Env) partitionPoolQueries(part, max int) []int {
	qs := e.PoolQueriesFor(part, max)
	return qs
}

// perVector normalizes counters by the scanned vector count.
func perVector(c perf.Counters, n int) perf.Counters {
	f := 1 / float64(n)
	return perf.Counters{
		Cycles:       c.Cycles * f,
		Instructions: c.Instructions * f,
		Uops:         c.Uops * f,
		L1Loads:      c.L1Loads * f,
		Bottleneck:   c.Bottleneck,
	}
}

// Figure3 compares the four PQ Scan implementations on the largest
// partition: modeled scan time on the Haswell profile plus per-vector
// performance counters, the paper's Figure 3 panels.
func Figure3(env *Env, w io.Writer) error {
	part := env.largestPartition()
	n := env.Index.Parts()[part].N
	arch := perf.Haswell
	pool := env.partitionPoolQueries(part, 8)
	if len(pool) == 0 {
		pool = []int{0}
	}
	nq := len(pool)
	tw := newTab(w)
	fmt.Fprintf(tw, "impl\tscan time [ms, modeled %s]\tcycles/vec\tinstr/vec\tuops/vec\tL1 loads/vec\tIPC\tbottleneck\n", arch.Name)
	for _, kern := range []index.Kernel{index.KernelNaive, index.KernelLibpq, index.KernelAVX, index.KernelGather} {
		var sum perf.Counters
		for _, qi := range pool {
			out, _, err := env.runPool(kern, qi, 100, PaperFastOpts())
			if err != nil {
				return err
			}
			c := out.Stats.Counters(arch)
			sum.Cycles += c.Cycles
			sum.Instructions += c.Instructions
			sum.Uops += c.Uops
			sum.L1Loads += c.L1Loads
			sum.Bottleneck = c.Bottleneck
		}
		avg := perVector(sum, nq*n)
		ms := avg.Cycles * float64(n) / (arch.FreqGHz * 1e9) * 1e3
		fmt.Fprintf(tw, "%s\t%.2f\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\t%s\n",
			kern, ms, avg.Cycles, avg.Instructions, avg.Uops, avg.L1Loads, avg.IPC(), avg.Bottleneck)
	}
	fmt.Fprintf(tw, "\npartition %d, %d vectors, %d queries\n", part, n, nq)
	return tw.Flush()
}

// Table3 prints the per-partition sizes and how many benchmark queries
// route to each.
func Table3(env *Env, w io.Writer) error {
	sizes := env.Index.PartitionSizes()
	counts := make([]int, len(sizes))
	for _, p := range env.route {
		counts[p]++
	}
	tw := newTab(w)
	fmt.Fprintf(tw, "partition\t")
	for i := range sizes {
		fmt.Fprintf(tw, "%d\t", i)
	}
	fmt.Fprintf(tw, "\n# vectors\t")
	for _, s := range sizes {
		fmt.Fprintf(tw, "%d\t", s)
	}
	fmt.Fprintf(tw, "\n# queries\t")
	for _, c := range counts {
		fmt.Fprintf(tw, "%d\t", c)
	}
	fmt.Fprintln(tw)
	return tw.Flush()
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Figure14 reproduces the response-time distribution study (Figure 14 and
// Table 4): libpq response time is nearly constant across queries while
// fastpq response time varies with the achievable pruning, with a 4-6x
// median speedup at paper scale.
func Figure14(env *Env, w io.Writer) error {
	part := env.largestPartition()
	n := env.Index.Parts()[part].N
	arch := perf.Haswell
	pool := env.partitionPoolQueries(part, 16)
	if len(pool) == 0 {
		pool = []int{0}
	}
	collect := func(kern index.Kernel, fsOpt scan.FastScanOptions) ([]float64, error) {
		var times []float64
		for _, qi := range pool {
			out, _, err := env.runPool(kern, qi, 100, fsOpt)
			if err != nil {
				return nil, err
			}
			times = append(times, out.Stats.Counters(arch).Seconds(arch)*1e3)
		}
		sort.Float64s(times)
		return times, nil
	}
	libpq, err := collect(index.KernelLibpq, PaperFastOpts())
	if err != nil {
		return err
	}
	fastOpt := HeadlineFastOpts(n, 100)
	fast, err := collect(index.KernelFastScan, fastOpt)
	if err != nil {
		return err
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	tw := newTab(w)
	fmt.Fprintf(tw, "\tMean\t25%%\tMedian\t75%%\t95%%\n")
	fmt.Fprintf(tw, "PQ Scan (libpq) [ms]\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
		mean(libpq), quantile(libpq, 0.25), quantile(libpq, 0.5), quantile(libpq, 0.75), quantile(libpq, 0.95))
	fmt.Fprintf(tw, "PQ Fast Scan [ms]\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
		mean(fast), quantile(fast, 0.25), quantile(fast, 0.5), quantile(fast, 0.75), quantile(fast, 0.95))
	fmt.Fprintf(tw, "Speedup\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
		mean(libpq)/mean(fast),
		quantile(libpq, 0.25)/quantile(fast, 0.25),
		quantile(libpq, 0.5)/quantile(fast, 0.5),
		quantile(libpq, 0.75)/quantile(fast, 0.75),
		quantile(libpq, 0.95)/quantile(fast, 0.95))
	fmt.Fprintf(tw, "\npartition %d (%d vectors), keep=%.1f%% (scaled, see HeadlineFastOpts), topk=100, modeled on %s\n",
		part, n, 100*fastOpt.Keep, arch.Name)
	return tw.Flush()
}

// Figure15 compares the per-vector performance counters of libpq and
// fastpq (the paper's 9 -> 1.3 L1 loads and 34 -> 3.7 instructions).
func Figure15(env *Env, w io.Writer) error {
	part := env.largestPartition()
	n := env.Index.Parts()[part].N
	arch := perf.Haswell
	tw := newTab(w)
	fmt.Fprintf(tw, "impl\tcycles/vec\tinstr/vec\tL1 loads/vec\tIPC\tpruned %%\n")
	for _, row := range []struct {
		name string
		kern index.Kernel
		opt  scan.FastScanOptions
	}{
		{"libpq", index.KernelLibpq, PaperFastOpts()},
		{"fastpq", index.KernelFastScan, HeadlineFastOpts(n, 100)},
	} {
		var sum perf.Counters
		pruned, lbs := 0, 0
		pool := env.partitionPoolQueries(part, 16)
		if len(pool) == 0 {
			pool = []int{0}
		}
		for _, qi := range pool {
			out, _, err := env.runPool(row.kern, qi, 100, row.opt)
			if err != nil {
				return err
			}
			c := out.Stats.Counters(arch)
			sum.Cycles += c.Cycles
			sum.Instructions += c.Instructions
			sum.Uops += c.Uops
			sum.L1Loads += c.L1Loads
			pruned += out.Stats.Pruned
			lbs += out.Stats.LowerBounds
		}
		avg := perVector(sum, len(env.partitionPoolQueries(part, 16))*n)
		prunedPct := 0.0
		if lbs > 0 {
			prunedPct = 100 * float64(pruned) / float64(lbs)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.1f\t%.2f\t%.2f\t%.1f\n",
			row.name, avg.Cycles, avg.Instructions, avg.L1Loads, avg.IPC(), prunedPct)
	}
	return tw.Flush()
}

// speedMvecs converts per-scan counters into the paper's scan-speed axis
// (millions of vectors per second) on arch.
func speedMvecs(c perf.Counters, n int, arch perf.Arch) float64 {
	sec := c.Seconds(arch)
	if sec == 0 {
		return 0
	}
	return float64(n) / sec / 1e6
}

// Figure16 sweeps the keep parameter for topk in {100, 1000}: pruning
// power rises with keep while scan speed collapses once the slow
// keep-phase dominates.
func Figure16(env *Env, w io.Writer) error {
	keeps := []float64{0.001, 0.0025, 0.005, 0.01, 0.02, 0.05, 0.1}
	tw := newTab(w)
	fmt.Fprintf(tw, "topk\tkeep %%\tpruned %% (fastpq)\tscan speed [Mvecs/s fastpq]\tscan speed [Mvecs/s libpq]\n")
	arch := perf.Haswell
	for _, topk := range []int{100, 1000} {
		for _, keep := range keeps {
			opt := DefaultFastOpts()
			opt.Keep = keep
			var pruned, lbs int
			var fastSpeed, libpqSpeed float64
			for qi := 0; qi < env.Scale.QueryN; qi++ {
				part, _ := env.QueryTables(qi)
				n := env.Index.Parts()[part].N
				out, err := env.runOn(index.KernelFastScan, part, qi, topk, opt)
				if err != nil {
					return err
				}
				pruned += out.Stats.Pruned
				lbs += out.Stats.LowerBounds
				fastSpeed += speedMvecs(out.Stats.Counters(arch), n, arch)
				lp, err := env.runOn(index.KernelLibpq, part, qi, topk, opt)
				if err != nil {
					return err
				}
				libpqSpeed += speedMvecs(lp.Stats.Counters(arch), n, arch)
			}
			nq := float64(env.Scale.QueryN)
			fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.0f\t%.0f\n",
				topk, keep*100, 100*float64(pruned)/float64(lbs), fastSpeed/nq, libpqSpeed/nq)
		}
	}
	return tw.Flush()
}

// Figure17 isolates the pruning power of distance quantization alone
// (256-entry 8-bit tables, no grouping, no minimum tables).
func Figure17(env *Env, w io.Writer) error {
	keeps := []float64{0.001, 0.0025, 0.005, 0.01, 0.02, 0.05, 0.1}
	tw := newTab(w)
	fmt.Fprintf(tw, "topk\tkeep %%\tpruned %% (quantization only)\n")
	for _, topk := range []int{100, 1000} {
		for _, keep := range keeps {
			opt := PaperFastOpts()
			opt.Keep = keep
			var pruned, lbs int
			for qi := 0; qi < env.Scale.QueryN; qi++ {
				part, _ := env.QueryTables(qi)
				out, err := env.runOn(index.KernelQuantOnly, part, qi, topk, opt)
				if err != nil {
					return err
				}
				pruned += out.Stats.Pruned
				lbs += out.Stats.LowerBounds
			}
			fmt.Fprintf(tw, "%d\t%.2f\t%.3f\n", topk, keep*100, 100*float64(pruned)/float64(lbs))
		}
	}
	return tw.Flush()
}

// Figure18 sweeps topk: higher topk raises the pruning threshold's
// distance, lowering pruning power and scan speed.
func Figure18(env *Env, w io.Writer) error {
	arch := perf.Haswell
	tw := newTab(w)
	fmt.Fprintf(tw, "topk\tpruned %% (fastpq)\tspeed [Mvecs/s fastpq]\tspeed [Mvecs/s libpq]\n")
	for _, topk := range []int{10, 20, 50, 100, 200, 500, 1000} {
		var pruned, lbs int
		var fastSpeed, libpqSpeed float64
		for qi := 0; qi < env.Scale.QueryN; qi++ {
			part, _ := env.QueryTables(qi)
			n := env.Index.Parts()[part].N
			out, err := env.runOn(index.KernelFastScan, part, qi, topk, HeadlineFastOpts(n, topk))
			if err != nil {
				return err
			}
			pruned += out.Stats.Pruned
			lbs += out.Stats.LowerBounds
			fastSpeed += speedMvecs(out.Stats.Counters(arch), n, arch)
			lp, err := env.runOn(index.KernelLibpq, part, qi, topk, PaperFastOpts())
			if err != nil {
				return err
			}
			libpqSpeed += speedMvecs(lp.Stats.Counters(arch), n, arch)
		}
		nq := float64(env.Scale.QueryN)
		fmt.Fprintf(tw, "%d\t%.2f\t%.0f\t%.0f\n",
			topk, 100*float64(pruned)/float64(lbs), fastSpeed/nq, libpqSpeed/nq)
	}
	return tw.Flush()
}

// Figure19 orders partitions by size and reports fastpq pruning power and
// scan speed on each: pruning is size-insensitive while speed drops for
// partitions too small for deep grouping (the nmin(c) rule).
func Figure19(env *Env, w io.Writer) error {
	arch := perf.Haswell
	parts := env.Index.Parts()
	order := make([]int, len(parts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return parts[order[a]].N > parts[order[b]].N
	})
	tw := newTab(w)
	fmt.Fprintf(tw, "partition\t# vectors\tc\t# queries\tpruned %%\tspeed [Mvecs/s fastpq]\tspeed [Mvecs/s libpq]\n")
	for _, part := range order {
		n := parts[part].N
		opt := HeadlineFastOpts(n, 100)
		pool := env.partitionPoolQueries(part, 8)
		if len(pool) == 0 {
			fmt.Fprintf(tw, "%d\t%d\t-\t0\t-\t-\t-\n", part, n)
			continue
		}
		var pruned, lbs int
		var fastSpeed, libpqSpeed float64
		var c int
		for _, qi := range pool {
			out, _, err := env.runPool(index.KernelFastScan, qi, 100, opt)
			if err != nil {
				return err
			}
			fs, err := env.FastScanner(part, opt)
			if err != nil {
				return err
			}
			c = fs.GroupComponents()
			pruned += out.Stats.Pruned
			lbs += out.Stats.LowerBounds
			fastSpeed += speedMvecs(out.Stats.Counters(arch), n, arch)
			lp, _, err := env.runPool(index.KernelLibpq, qi, 100, opt)
			if err != nil {
				return err
			}
			libpqSpeed += speedMvecs(lp.Stats.Counters(arch), n, arch)
		}
		nq := float64(len(pool))
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.2f\t%.0f\t%.0f\n",
			part, n, c, len(pool), 100*float64(pruned)/float64(lbs), fastSpeed/nq, libpqSpeed/nq)
	}
	return tw.Flush()
}

// Figure20 reports the large-scale comparison: mean response time of
// libpq vs fastpq over routed queries, the grouped layout's memory use,
// and scan speed across the four modeled CPU architectures.
func Figure20(env *Env, w io.Writer) error {
	tw := newTab(w)
	archB := perf.IvyBridge

	var libpqMs, fastMs float64
	var fastStats, libpqStats []scan.Stats
	var totalN int
	for qi := 0; qi < env.Scale.QueryN; qi++ {
		part, _ := env.QueryTables(qi)
		n := env.Index.Parts()[part].N
		totalN += n
		out, err := env.runOn(index.KernelFastScan, part, qi, 100, HeadlineFastOpts(n, 100))
		if err != nil {
			return err
		}
		fastMs += out.Stats.Counters(archB).Seconds(archB) * 1e3
		fastStats = append(fastStats, out.Stats)
		lp, err := env.runOn(index.KernelLibpq, part, qi, 100, PaperFastOpts())
		if err != nil {
			return err
		}
		libpqMs += lp.Stats.Counters(archB).Seconds(archB) * 1e3
		libpqStats = append(libpqStats, lp.Stats)
	}
	nq := float64(env.Scale.QueryN)
	fmt.Fprintf(tw, "mean response time [ms, %s]\tlibpq\t%.2f\n", archB.Name, libpqMs/nq)
	fmt.Fprintf(tw, "\tfastpq\t%.2f\n", fastMs/nq)

	packed, rowMajor, err := env.Index.GroupedMemoryBytes()
	if err != nil {
		return err
	}
	fmt.Fprintf(tw, "memory use [MiB]\tlibpq (row-major)\t%.2f\n", float64(rowMajor)/(1<<20))
	fmt.Fprintf(tw, "\tfastpq (grouped, packed)\t%.2f\n", float64(packed)/(1<<20))

	fmt.Fprintf(tw, "\nscan speed [Mvecs/s]\tlibpq\tfastpq\tspeedup\n")
	for _, arch := range perf.Architectures {
		var libpqCycles, fastCycles float64
		for i := range fastStats {
			fastCycles += fastStats[i].Counters(arch).Cycles
			libpqCycles += libpqStats[i].Counters(arch).Cycles
		}
		libpqSpeed := float64(totalN) / (libpqCycles / (arch.FreqGHz * 1e9)) / 1e6
		fastSpeed := float64(totalN) / (fastCycles / (arch.FreqGHz * 1e9)) / 1e6
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.1f\n", arch.Name, libpqSpeed, fastSpeed, fastSpeed/libpqSpeed)
	}
	return tw.Flush()
}
