package bench

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"pqfastscan"
	"pqfastscan/internal/server"
)

// The closed-loop load driver shared by the serve and cluster benches:
// a worker pool posts pre-marshaled /search bodies at a target for a
// fixed window and reports counts, QPS, and latency quantiles. Keeping
// one driver means a single-node run and a router run measure the exact
// same client behavior, so their numbers compare.

// loadStats is what one driveLoad window observed.
type loadStats struct {
	DurationS                  float64
	Requests, OK, Shed, Errors int64
	QPS                        float64 // successful responses per second
	P50Ms, P90Ms, P99Ms, MaxMs float64
}

// searchBodies pre-marshals a disjoint pool of /search request bodies
// (seed+1 keeps the load queries off the indexed vectors), cycled by
// the workers so marshaling cost stays off the measurement path.
func searchBodies(seed uint64, k, nprobe int) ([][]byte, error) {
	queries := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: seed + 1}).Generate(256)
	bodies := make([][]byte, queries.Rows())
	for i := range bodies {
		raw, err := json.Marshal(server.SearchRequest{
			Query: queries.Row(i), K: k, NProbe: nprobe,
		})
		if err != nil {
			return nil, err
		}
		bodies[i] = raw
	}
	return bodies, nil
}

// driveLoad runs the worker pool against url's /search for the window
// and aggregates what the clients saw. 429s count as shed, everything
// else non-200 as an error; only 200s contribute latencies and QPS.
func driveLoad(url string, bodies [][]byte, concurrency int, duration time.Duration) loadStats {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: concurrency,
	}}
	type workerResult struct {
		lats             []time.Duration
		ok, shed, errors int64
	}
	results := make([]workerResult, concurrency)
	deadline := time.Now().Add(duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &results[w]
			for i := w; time.Now().Before(deadline); i++ {
				body := bodies[i%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(url+"/search", "application/json", bytes.NewReader(body))
				if err != nil {
					r.errors++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat := time.Since(t0)
				switch resp.StatusCode {
				case http.StatusOK:
					r.ok++
					r.lats = append(r.lats, lat)
				case http.StatusTooManyRequests:
					r.shed++
				default:
					r.errors++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var stats loadStats
	stats.DurationS = elapsed.Seconds()
	var lats []time.Duration
	for i := range results {
		r := &results[i]
		stats.OK += r.ok
		stats.Shed += r.shed
		stats.Errors += r.errors
		lats = append(lats, r.lats...)
	}
	stats.Requests = stats.OK + stats.Shed + stats.Errors
	if stats.OK > 0 {
		stats.QPS = float64(stats.OK) / elapsed.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		q := func(p float64) float64 {
			i := int(p * float64(len(lats)-1))
			return float64(lats[i].Nanoseconds()) / 1e6
		}
		stats.P50Ms = q(0.50)
		stats.P90Ms = q(0.90)
		stats.P99Ms = q(0.99)
		stats.MaxMs = float64(lats[len(lats)-1].Nanoseconds()) / 1e6
	}
	return stats
}
