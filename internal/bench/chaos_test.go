package bench

import (
	"testing"
	"time"
)

// TestMeasureChaosMicro runs the full fault schedule at micro scale —
// including the per-answer oracle check and the recovery gate, the
// parts that must never regress.
func TestMeasureChaosMicro(t *testing.T) {
	report, err := MeasureChaos(ChaosConfig{
		BaseN:       12000,
		LearnN:      3000,
		Partitions:  4,
		Seed:        42,
		K:           10,
		NProbe:      2,
		Concurrency: 4,
		Window:      400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OracleOK {
		t.Fatal("oracle verification did not run clean")
	}
	if report.Healthy.Wrong != 0 || report.Faulted.Wrong != 0 {
		t.Fatalf("silently wrong answers: healthy=%d faulted=%d", report.Healthy.Wrong, report.Faulted.Wrong)
	}
	if report.Healthy.FullOK == 0 {
		t.Fatal("healthy window saw no full answers")
	}
	if report.Faulted.FullOK+report.Faulted.Partial == 0 {
		t.Fatal("fault window had zero goodput — the immune system is not routing around the faults")
	}
	if report.RecoveryMs < 0 {
		t.Fatal("fleet never recovered after the faults lifted")
	}
	if report.InjectedDrops == 0 && report.InjectedResets == 0 {
		t.Fatal("fault window injected nothing; schedule is broken")
	}
}
