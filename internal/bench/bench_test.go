package bench

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"pqfastscan/internal/index"
)

// microScale keeps the full-registry smoke test fast.
var microScale = Scale{
	Name: "micro", LearnN: 3000, BaseN: 24000, QueryN: 6, Partitions: 4, Seed: 42,
}

var (
	microOnce sync.Once
	microEnv  *Env
	microErr  error
)

func microEnvironment(t *testing.T) *Env {
	t.Helper()
	microOnce.Do(func() {
		microEnv, microErr = NewEnv(microScale)
	})
	if microErr != nil {
		t.Fatal(microErr)
	}
	return microEnv
}

// TestAllExperimentsRun executes every registered experiment at micro
// scale and checks each produces non-empty tabular output.
func TestAllExperimentsRun(t *testing.T) {
	env := microEnvironment(t)
	for _, exp := range Registry {
		exp := exp
		t.Run(exp.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := exp.Run(env, &buf); err != nil {
				t.Fatalf("%s: %v", exp.Name, err)
			}
			out := buf.String()
			if len(strings.TrimSpace(out)) == 0 {
				t.Fatalf("%s produced no output", exp.Name)
			}
			if strings.Count(out, "\n") < 2 {
				t.Fatalf("%s produced fewer than 2 lines:\n%s", exp.Name, out)
			}
		})
	}
}

func TestFindRegistry(t *testing.T) {
	if _, ok := Find("fig16"); !ok {
		t.Error("fig16 not found")
	}
	if _, ok := Find("nonexistent"); ok {
		t.Error("bogus experiment found")
	}
	if len(Registry) < 15 {
		t.Errorf("registry has %d experiments, expected all 15 tables/figures/ablations", len(Registry))
	}
}

func TestEnvRouting(t *testing.T) {
	env := microEnvironment(t)
	for qi := 0; qi < env.Scale.QueryN; qi++ {
		part, tbl := env.QueryTables(qi)
		if part != env.Index.RoutePartition(env.Queries.Row(qi)) {
			t.Fatalf("query %d: cached route differs", qi)
		}
		if tbl.M != 8 || tbl.KStar != 256 {
			t.Fatalf("query %d: tables %dx%d", qi, tbl.M, tbl.KStar)
		}
	}
}

func TestFastScannerCache(t *testing.T) {
	env := microEnvironment(t)
	opt := DefaultFastOpts()
	a, err := env.FastScanner(0, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.FastScanner(0, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same options not cached")
	}
	opt2 := opt
	opt2.Keep = 0.09
	c, err := env.FastScanner(0, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different keep shares cache entry")
	}
}

func TestHeadlineFastOptsScaling(t *testing.T) {
	// Paper regime: at 25M vectors the default keep already satisfies
	// the keepN >= 20*topk target.
	if got := HeadlineFastOpts(25_000_000, 100).Keep; got != 0.005 {
		t.Errorf("25M-vector keep = %v, want the paper default 0.005", got)
	}
	// Scaled-down regime: keep grows to preserve the keepN/topk ratio.
	small := HeadlineFastOpts(50_000, 100).Keep
	if small <= 0.005 {
		t.Errorf("50K-vector keep = %v, want > default", small)
	}
	if HeadlineFastOpts(100, 100).Keep > 0.2 {
		t.Error("keep cap exceeded")
	}
}

// TestRunKernelAgreement: the harness paths return identical results for
// all kernels, mirroring the library-level invariant.
func TestRunKernelAgreement(t *testing.T) {
	env := microEnvironment(t)
	ref, err := env.RunKernel(0 /* naive */, 0, 25, PaperFastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for kern := 1; kern <= 5; kern++ {
		out, err := env.RunKernel(kernelFromInt(kern), 0, 25, PaperFastOpts())
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Results) != len(ref.Results) {
			t.Fatalf("kernel %d result count %d != %d", kern, len(out.Results), len(ref.Results))
		}
		for i := range ref.Results {
			if out.Results[i] != ref.Results[i] {
				t.Fatalf("kernel %d result %d differs", kern, i)
			}
		}
	}
}

func kernelFromInt(i int) index.Kernel { return index.Kernel(i) }
