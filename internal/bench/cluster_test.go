package bench

import (
	"testing"
	"time"
)

func TestSplitRanges(t *testing.T) {
	cases := []struct {
		partitions, n int
		want          [][2]int
	}{
		{8, 1, [][2]int{{0, 7}}},
		{8, 2, [][2]int{{0, 3}, {4, 7}}},
		{8, 4, [][2]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}},
		{8, 3, [][2]int{{0, 2}, {3, 5}, {6, 7}}},
		{5, 5, [][2]int{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}}},
	}
	for _, c := range cases {
		specs := splitRanges(c.partitions, c.n)
		if len(specs) != len(c.want) {
			t.Fatalf("splitRanges(%d, %d): %d specs, want %d", c.partitions, c.n, len(specs), len(c.want))
		}
		for i, w := range c.want {
			if specs[i].Lo != w[0] || specs[i].Hi != w[1] {
				t.Errorf("splitRanges(%d, %d)[%d] = %d-%d, want %d-%d",
					c.partitions, c.n, i, specs[i].Lo, specs[i].Hi, w[0], w[1])
			}
		}
	}
}

// TestMeasureClusterMicro runs the full scaling sweep at micro scale —
// including the per-layout bit-identity oracle gate, which is the part
// that must never regress.
func TestMeasureClusterMicro(t *testing.T) {
	report, err := MeasureCluster(ClusterConfig{
		BaseN:       12000,
		LearnN:      3000,
		Partitions:  4,
		Seed:        42,
		K:           10,
		NProbe:      2,
		Concurrency: 4,
		Duration:    200 * time.Millisecond,
		Shards:      []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OracleOK {
		t.Fatal("oracle gate did not run")
	}
	if len(report.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(report.Points))
	}
	for _, p := range report.Points {
		if p.OK == 0 {
			t.Errorf("%d shards: no successful requests (errors=%d, shed=%d)", p.Shards, p.Errors, p.Shed)
		}
		if p.Errors > 0 {
			t.Errorf("%d shards: %d errored requests", p.Shards, p.Errors)
		}
		if p.Failovers != 0 || p.Hedges != 0 {
			t.Errorf("%d shards: unexpected failovers=%d hedges=%d on healthy in-process fleet",
				p.Shards, p.Failovers, p.Hedges)
		}
	}
	if report.Points[1].SpeedupVs1 <= 0 {
		t.Errorf("2-shard point has no speedup ratio recorded: %+v", report.Points[1])
	}

	if _, err := MeasureCluster(ClusterConfig{Partitions: 4, Shards: []int{8}}); err == nil {
		t.Error("shard count beyond partitions was accepted")
	}
}
