package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"pqfastscan"
	"pqfastscan/internal/cluster"
	"pqfastscan/internal/server"
)

// Cluster scaling benchmarking: build one synthetic index, stand up
// N in-process shards (each restricted to a contiguous IVF cell range)
// behind an internal/cluster router, and drive the shared load driver
// through the router for each shard count — the 1→2→4 scaling curve of
// scatter-gather serving (cmd/pqbench -shards, DESIGN.md §13). Before
// measuring each layout the bench replays a query sample through both
// the router and the single-node index and requires bit-identical
// answers, so a scaling number can never come from a wrong cluster.

// ClusterConfig parameterizes a cluster scaling run.
type ClusterConfig struct {
	BaseN      int    // database size (default 100000)
	LearnN     int    // training size (default BaseN/10, min 1000)
	Partitions int    // IVF cells (default 8)
	Seed       uint64 // build and query seed (default 42)

	// Load shape, applied to every shard count.
	K           int           // neighbors per query (default 100)
	NProbe      int           // cells probed per query (default 2)
	Concurrency int           // concurrent client connections (default 16)
	Duration    time.Duration // measurement window per shard count (default 3s)

	// Shard counts to measure, each ≤ Partitions (default 1, 2, 4).
	Shards []int

	// Per-shard server tuning (as in ServeConfig).
	BatchWindow time.Duration // micro-batching window (default 1ms)
	MaxBatch    int           // widest coalesced batch (default 64)
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.BaseN <= 0 {
		c.BaseN = 100000
	}
	if c.LearnN <= 0 {
		c.LearnN = c.BaseN / 10
		if c.LearnN < 1000 {
			c.LearnN = 1000
		}
	}
	if c.Partitions <= 0 {
		c.Partitions = 8
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.K <= 0 {
		c.K = 100
	}
	if c.NProbe <= 0 {
		c.NProbe = 2
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 16
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 2, 4}
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	return c
}

// ClusterPoint is one shard count's measurement.
type ClusterPoint struct {
	Shards    int     `json:"shards"`
	DurationS float64 `json:"duration_s"`

	Requests int64   `json:"requests"`
	OK       int64   `json:"ok"`
	Shed     int64   `json:"shed"`
	Errors   int64   `json:"errors"`
	QPS      float64 `json:"qps"`

	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`

	// Router-side counters over the window (expected zero with healthy
	// in-process shards; nonzero flags a sick layout).
	Failovers int64 `json:"failovers"`
	Hedges    int64 `json:"hedges"`

	// QPS relative to this run's 1-shard point (0 when 1 isn't measured).
	SpeedupVs1 float64 `json:"speedup_vs_1shard,omitempty"`
}

// ClusterReport is the JSON document of one cluster scaling run.
type ClusterReport struct {
	Schema      string `json:"schema"`
	BaseN       int    `json:"base_n"`
	Partitions  int    `json:"partitions"`
	K           int    `json:"k"`
	NProbe      int    `json:"nprobe"`
	Concurrency int    `json:"concurrency"`

	// OracleQueries router answers were verified bit-identical to the
	// single-node index, per layout, before its window was measured.
	OracleQueries int  `json:"oracle_queries"`
	OracleOK      bool `json:"oracle_ok"`

	Points []ClusterPoint `json:"points"`
}

// splitRanges tiles partitions cells into n contiguous shard ranges as
// evenly as possible (the first partitions%n shards get one extra).
func splitRanges(partitions, n int) []cluster.ShardSpec {
	specs := make([]cluster.ShardSpec, 0, n)
	base, rem := partitions/n, partitions%n
	lo := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		specs = append(specs, cluster.ShardSpec{Lo: lo, Hi: lo + size - 1})
		lo += size
	}
	return specs
}

// startHTTP serves h on a loopback listener and returns its URL and a
// shutdown func.
func startHTTP(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: h}
	go func() { _ = hs.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = hs.Close() }, nil
}

// MeasureCluster runs the scaling sweep and returns its report.
func MeasureCluster(cfg ClusterConfig) (*ClusterReport, error) {
	cfg = cfg.withDefaults()
	for _, n := range cfg.Shards {
		if n < 1 || n > cfg.Partitions {
			return nil, fmt.Errorf("bench: shard count %d out of range [1,%d partitions]", n, cfg.Partitions)
		}
	}
	report := &ClusterReport{
		Schema:      "pqfastscan-cluster/v1",
		BaseN:       cfg.BaseN,
		Partitions:  cfg.Partitions,
		K:           cfg.K,
		NProbe:      cfg.NProbe,
		Concurrency: cfg.Concurrency,
	}

	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: cfg.Seed})
	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = cfg.Partitions
	opt.Seed = cfg.Seed
	full, err := pqfastscan.Build(gen.Generate(cfg.LearnN), gen.Generate(cfg.BaseN), opt)
	if err != nil {
		return nil, fmt.Errorf("bench: build cluster index: %w", err)
	}

	// The oracle sample and the load bodies come from the same query
	// stream the serve bench uses (seed+1: disjoint from the base set).
	oracle := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: cfg.Seed + 1}).Generate(16)
	report.OracleQueries = oracle.Rows()
	bodies, err := searchBodies(cfg.Seed, cfg.K, cfg.NProbe)
	if err != nil {
		return nil, err
	}

	for _, n := range cfg.Shards {
		point, err := measureLayout(cfg, full, oracle, bodies, n)
		if err != nil {
			return nil, fmt.Errorf("bench: %d-shard layout: %w", n, err)
		}
		report.Points = append(report.Points, *point)
	}
	report.OracleOK = true // measureLayout fails hard on any mismatch

	for i := range report.Points {
		p := &report.Points[i]
		if base := report.Points[0]; base.Shards == 1 && base.QPS > 0 {
			p.SpeedupVs1 = p.QPS / base.QPS
		}
	}
	return report, nil
}

// measureLayout stands one n-shard cluster up, proves it answers like
// the single node, and measures one load window through its router.
func measureLayout(cfg ClusterConfig, full *pqfastscan.Index, oracle pqfastscan.Matrix, bodies [][]byte, n int) (*ClusterPoint, error) {
	specs := splitRanges(cfg.Partitions, n)
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	for i := range specs {
		cells := specs[i].Cells()
		restricted, err := full.RestrictCells(cells...)
		if err != nil {
			return nil, err
		}
		srv, err := server.New(server.Config{
			Index:       restricted,
			Cells:       cells,
			BatchWindow: cfg.BatchWindow,
			MaxBatch:    cfg.MaxBatch,
			MaxInFlight: 4 * cfg.Concurrency,
		})
		if err != nil {
			return nil, err
		}
		stops = append(stops, func() { _ = srv.Close() })
		url, stop, err := startHTTP(srv.Handler())
		if err != nil {
			return nil, err
		}
		stops = append(stops, stop)
		specs[i].Endpoints = []string{url}
	}

	router, err := cluster.New(cluster.Config{Shards: specs})
	if err != nil {
		return nil, err
	}
	routerURL, stopRouter, err := startHTTP(router.Handler())
	if err != nil {
		return nil, err
	}
	stops = append(stops, stopRouter)

	// Oracle gate: the router must answer exactly like the single node
	// before its throughput means anything.
	ctx := context.Background()
	for qi := 0; qi < oracle.Rows(); qi++ {
		q := oracle.Row(qi)
		want, err := full.Search(ctx, q, cfg.K, pqfastscan.WithNProbe(cfg.NProbe))
		if err != nil {
			return nil, err
		}
		got, err := router.Search(ctx, q, cluster.SearchOptions{K: cfg.K, NProbe: cfg.NProbe})
		if err != nil {
			return nil, err
		}
		if len(got.Results) != len(want.Results) {
			return nil, fmt.Errorf("oracle query %d: router returned %d results, single node %d",
				qi, len(got.Results), len(want.Results))
		}
		for i, w := range want.Results {
			g := got.Results[i]
			if g.ID != w.ID || g.Distance != w.Distance {
				return nil, fmt.Errorf("oracle query %d rank %d: router (%d, %g) != single node (%d, %g)",
					qi, i, g.ID, g.Distance, w.ID, w.Distance)
			}
		}
	}

	load := driveLoad(routerURL, bodies, cfg.Concurrency, cfg.Duration)
	stats := router.Stats()
	return &ClusterPoint{
		Shards:    n,
		DurationS: load.DurationS,
		Requests:  load.Requests,
		OK:        load.OK,
		Shed:      load.Shed,
		Errors:    load.Errors,
		QPS:       load.QPS,
		P50Ms:     load.P50Ms,
		P90Ms:     load.P90Ms,
		P99Ms:     load.P99Ms,
		MaxMs:     load.MaxMs,
		Failovers: stats.Failovers,
		Hedges:    stats.Hedges,
	}, nil
}

// RunCluster measures the scaling sweep and writes the report as JSON.
func RunCluster(w io.Writer, cfg ClusterConfig) error {
	report, err := MeasureCluster(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
