package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"pqfastscan"
)

// Cold-start benchmarking for beyond-RAM serving (cmd/pqbench
// -coldstart): seal a synthetic index into disk extents, then for each
// pool capacity in a sweep (fractions of the extent footprint) measure
// a cold pass — every partition faults in from disk — against a warm
// pass over the same queries. The gap is the paging tax; the pool
// counters recorded next to it show where it went (misses, evictions)
// and prove the residency invariant held while it was paid.

// ColdstartConfig parameterizes a cold-start run.
type ColdstartConfig struct {
	BaseN      int       // database size (default 20000)
	LearnN     int       // training size (default BaseN/10, min 1000)
	Partitions int       // IVF cells (default 8)
	Seed       uint64    // dataset seed (default 42)
	K          int       // neighbors per query (default 100)
	NProbe     int       // cells probed per query (default: all partitions)
	Queries    int       // distinct queries per pass (default 64)
	Fractions  []float64 // pool capacities as fractions of the extent footprint (default 1.0, 0.5, 0.1)
}

func (c ColdstartConfig) withDefaults() ColdstartConfig {
	if c.BaseN <= 0 {
		c.BaseN = 20000
	}
	if c.LearnN <= 0 {
		c.LearnN = c.BaseN / 10
		if c.LearnN < 1000 {
			c.LearnN = 1000
		}
	}
	if c.Partitions <= 0 {
		c.Partitions = 8
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.K <= 0 {
		c.K = 100
	}
	if c.NProbe <= 0 {
		c.NProbe = c.Partitions
	}
	if c.Queries <= 0 {
		c.Queries = 64
	}
	if len(c.Fractions) == 0 {
		c.Fractions = []float64{1.0, 0.5, 0.1}
	}
	return c
}

// ColdstartSweep is one pool capacity point: a cold pass (pool emptied
// first) and a warm pass over the same query set, with the pool-counter
// deltas that explain the gap.
type ColdstartSweep struct {
	PoolFraction float64 `json:"pool_fraction"`
	PoolBytes    int64   `json:"pool_bytes"`

	ColdQPS   float64 `json:"cold_qps"`
	ColdP50Ms float64 `json:"cold_p50_ms"`
	ColdP99Ms float64 `json:"cold_p99_ms"`
	WarmQPS   float64 `json:"warm_qps"`
	WarmP50Ms float64 `json:"warm_p50_ms"`
	WarmP99Ms float64 `json:"warm_p99_ms"`

	Hits          int64 `json:"hits"`      // delta over both passes
	Misses        int64 `json:"misses"`    // delta over both passes
	Evictions     int64 `json:"evictions"` // delta over both passes
	ResidentBytes int64 `json:"resident_bytes"`
	PinnedBytes   int64 `json:"pinned_bytes"`

	// InvariantOK records resident <= capacity + pinned, checked after
	// every query of both passes.
	InvariantOK bool `json:"invariant_ok"`
}

// ColdstartReport is the JSON document of one cold-start run
// (pqfastscan-coldstart/v1).
type ColdstartReport struct {
	Schema      string   `json:"schema"`
	Backend     string   `json:"backend"`
	BaseN       int      `json:"base_n"`
	Partitions  int      `json:"partitions"`
	K           int      `json:"k"`
	NProbe      int      `json:"nprobe"`
	Queries     int      `json:"queries"`
	ExtentBytes int64    `json:"extent_bytes"` // sealed footprint on disk
	Mem         MemStats `json:"mem"`

	Sweeps []ColdstartSweep `json:"sweeps"`
}

// MeasureColdstart builds a synthetic index, seals it into a disk
// store, and measures the pool-capacity sweep.
func MeasureColdstart(cfg ColdstartConfig) (*ColdstartReport, error) {
	cfg = cfg.withDefaults()
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: cfg.Seed})
	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = cfg.Partitions
	opt.Seed = cfg.Seed
	opt.OrderGroups = true
	idx, err := pqfastscan.Build(gen.Generate(cfg.LearnN), gen.Generate(cfg.BaseN), opt)
	if err != nil {
		return nil, fmt.Errorf("bench: build coldstart index: %w", err)
	}
	queries := gen.Generate(cfg.Queries)

	dir, err := os.MkdirTemp("", "pqfs-coldstart-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	// Attach with an ample pool; each sweep point rebounds it.
	if err := idx.WithDiskStore(dir, 1<<30); err != nil {
		return nil, fmt.Errorf("bench: attach disk store: %w", err)
	}
	st, ok := idx.StoreStats()
	if !ok || st.ExtentBytes <= 0 {
		return nil, fmt.Errorf("bench: disk store attached but empty (stats %+v)", st)
	}

	report := &ColdstartReport{
		Schema:      "pqfastscan-coldstart/v1",
		Backend:     pqfastscan.ActiveBackend().String(),
		BaseN:       cfg.BaseN,
		Partitions:  cfg.Partitions,
		K:           cfg.K,
		NProbe:      cfg.NProbe,
		Queries:     cfg.Queries,
		ExtentBytes: st.ExtentBytes,
	}

	ctx := context.Background()
	invariantOK := true
	pass := func() (qps, p50, p99 float64, err error) {
		lats := make([]time.Duration, 0, cfg.Queries)
		start := time.Now()
		for qi := 0; qi < cfg.Queries; qi++ {
			t0 := time.Now()
			if _, err := idx.Search(ctx, queries.Row(qi), cfg.K, pqfastscan.WithNProbe(cfg.NProbe)); err != nil {
				return 0, 0, 0, err
			}
			lats = append(lats, time.Since(t0))
			if s, _ := idx.StoreStats(); s.Pool.ResidentBytes > s.Pool.CapacityBytes+s.Pool.PinnedBytes {
				invariantOK = false
			}
		}
		total := time.Since(start)
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		return float64(cfg.Queries) / total.Seconds(), quantileMs(lats, 0.50), quantileMs(lats, 0.99), nil
	}

	for _, frac := range cfg.Fractions {
		capBytes := int64(frac * float64(st.ExtentBytes))
		if capBytes < 1 {
			capBytes = 1
		}
		// Drain the pool, then rebound it: the next pass starts cold.
		idx.Internal().SetPoolCapacity(1)
		idx.Internal().SetPoolCapacity(capBytes)
		before, _ := idx.StoreStats()

		invariantOK = true
		sw := ColdstartSweep{PoolFraction: frac, PoolBytes: capBytes}
		if sw.ColdQPS, sw.ColdP50Ms, sw.ColdP99Ms, err = pass(); err != nil {
			return nil, err
		}
		if sw.WarmQPS, sw.WarmP50Ms, sw.WarmP99Ms, err = pass(); err != nil {
			return nil, err
		}
		after, _ := idx.StoreStats()
		sw.Hits = after.Pool.Hits - before.Pool.Hits
		sw.Misses = after.Pool.Misses - before.Pool.Misses
		sw.Evictions = after.Pool.Evictions - before.Pool.Evictions
		sw.ResidentBytes = after.Pool.ResidentBytes
		sw.PinnedBytes = after.Pool.PinnedBytes
		sw.InvariantOK = invariantOK
		report.Sweeps = append(report.Sweeps, sw)
	}
	report.Mem = readMemStats()
	return report, nil
}

// RunColdstart measures the cold-start sweep and writes the report as
// JSON.
func RunColdstart(w io.Writer, cfg ColdstartConfig) error {
	report, err := MeasureColdstart(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
