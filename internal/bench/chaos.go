package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"pqfastscan"
	"pqfastscan/internal/cluster"
	"pqfastscan/internal/faultnet"
	"pqfastscan/internal/server"
)

// Chaos benchmarking: quantify what the cluster immune system
// (DESIGN.md §17) buys under injected network faults. One synthetic
// index is split over a 2-shard × 2-replica fleet behind a router whose
// HTTP client runs through an internal/faultnet transport. The run
// measures three windows: a healthy baseline, a fault window (one
// primary completely dark, the other resetting a fraction of its
// connections mid-flight), and the recovery after the faults lift —
// reporting goodput, tail latency, the partial-answer rate, and how
// long the fleet takes to return to sustained bit-identical answers.
// Every full (non-partial) answer in every window is checked against
// the single-node oracle; a silently wrong answer fails the run.

// ChaosConfig parameterizes a chaos run.
type ChaosConfig struct {
	BaseN      int    // database size (default 100000)
	LearnN     int    // training size (default BaseN/10, min 1000)
	Partitions int    // IVF cells (default 8)
	Seed       uint64 // build, query, and fault-schedule seed (default 42)

	K           int           // neighbors per query (default 100)
	NProbe      int           // cells probed per query (default 2)
	Concurrency int           // concurrent clients (default 8)
	Window      time.Duration // length of the healthy and fault windows (default 3s)

	// ResetP is the mid-flight connection-reset probability injected on
	// the second shard's primary during the fault window (default 0.4).
	ResetP float64
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.BaseN <= 0 {
		c.BaseN = 100000
	}
	if c.LearnN <= 0 {
		c.LearnN = c.BaseN / 10
		if c.LearnN < 1000 {
			c.LearnN = 1000
		}
	}
	if c.Partitions <= 0 {
		c.Partitions = 8
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.K <= 0 {
		c.K = 100
	}
	if c.NProbe <= 0 {
		c.NProbe = 2
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Window <= 0 {
		c.Window = 3 * time.Second
	}
	if c.ResetP <= 0 {
		c.ResetP = 0.4
	}
	return c
}

// ChaosWindow is one measurement window's outcome.
type ChaosWindow struct {
	DurationS float64 `json:"duration_s"`

	Requests int64 `json:"requests"`
	FullOK   int64 `json:"full_ok"` // complete, oracle-verified answers
	Partial  int64 `json:"partial"` // honestly degraded (Coverage set)
	Failed   int64 `json:"failed"`  // non-200
	Wrong    int64 `json:"wrong"`   // silently wrong (must be 0)

	GoodputQPS  float64 `json:"goodput_qps"` // full + partial per second
	PartialRate float64 `json:"partial_rate"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

// ChaosReport is the JSON document of one chaos run.
type ChaosReport struct {
	Schema      string  `json:"schema"`
	BaseN       int     `json:"base_n"`
	Partitions  int     `json:"partitions"`
	K           int     `json:"k"`
	NProbe      int     `json:"nprobe"`
	Concurrency int     `json:"concurrency"`
	ResetP      float64 `json:"reset_p"`

	Healthy ChaosWindow `json:"healthy"`
	Faulted ChaosWindow `json:"faulted"`

	// RecoveryMs: faults lifted → 10 consecutive strict (partial
	// disallowed) oracle-identical answers. Negative means the fleet
	// never recovered within the recovery budget.
	RecoveryMs float64 `json:"recovery_ms"`

	// Immune-system counters over the whole run, from the router.
	Failovers        int64 `json:"failovers"`
	Hedges           int64 `json:"hedges"`
	Retries          int64 `json:"retries"`
	BreakerFastFails int64 `json:"breaker_fast_fails"`
	Quarantines      int64 `json:"quarantines"`
	Reinstatements   int64 `json:"reinstatements"`

	// Fault-injection counters, from the faultnet transport.
	InjectedDrops  int64 `json:"injected_drops"`
	InjectedResets int64 `json:"injected_resets"`

	OracleOK bool `json:"oracle_ok"` // no window saw a silently wrong answer
}

// chaosFleet is the standing 2×2 fleet of one chaos run.
type chaosFleet struct {
	router    *cluster.Router
	routerURL string
	transport *faultnet.Transport
	p0URL     string // shard 0 primary — goes dark in the fault window
	p1URL     string // shard 1 primary — resets connections in the fault window
	stops     []func()
}

func (f *chaosFleet) close() {
	if f.router != nil {
		f.router.Close()
	}
	for i := len(f.stops) - 1; i >= 0; i-- {
		f.stops[i]()
	}
}

// startChaosFleet builds the index, stands up 2 shards × 2 replicas,
// and fronts them with a router whose client injects faults.
func startChaosFleet(cfg ChaosConfig) (*chaosFleet, *pqfastscan.Index, error) {
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: cfg.Seed})
	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = cfg.Partitions
	opt.Seed = cfg.Seed
	full, err := pqfastscan.Build(gen.Generate(cfg.LearnN), gen.Generate(cfg.BaseN), opt)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: build chaos index: %w", err)
	}

	f := &chaosFleet{}
	specs := splitRanges(cfg.Partitions, 2)
	for i := range specs {
		cells := specs[i].Cells()
		for replica := 0; replica < 2; replica++ {
			restricted, err := full.RestrictCells(cells...)
			if err != nil {
				f.close()
				return nil, nil, err
			}
			srv, err := server.New(server.Config{
				Index:       restricted,
				Cells:       cells,
				MaxInFlight: 4 * cfg.Concurrency,
			})
			if err != nil {
				f.close()
				return nil, nil, err
			}
			f.stops = append(f.stops, func() { _ = srv.Close() })
			url, stop, err := startHTTP(srv.Handler())
			if err != nil {
				f.close()
				return nil, nil, err
			}
			f.stops = append(f.stops, stop)
			specs[i].Endpoints = append(specs[i].Endpoints, url)
		}
	}
	f.p0URL = specs[0].Endpoints[0]
	f.p1URL = specs[1].Endpoints[0]

	f.transport = faultnet.New(nil, cfg.Seed)
	f.router, err = cluster.New(cluster.Config{
		Shards:           specs,
		Client:           &http.Client{Transport: f.transport},
		ShardTimeout:     2 * time.Second,
		HedgeDelay:       25 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
		ProbeInterval:    25 * time.Millisecond,
		ProbeTimeout:     300 * time.Millisecond,
		QuarantineAfter:  2,
		ReinstateAfter:   2,
	})
	if err != nil {
		f.close()
		return nil, nil, err
	}
	url, stop, err := startHTTP(f.router.Handler())
	if err != nil {
		f.close()
		return nil, nil, err
	}
	f.routerURL = url
	f.stops = append(f.stops, stop)
	return f, full, nil
}

// chaosOracle precomputes the single-node answers the fleet's full
// responses must match bit-identically.
func chaosOracle(cfg ChaosConfig, full *pqfastscan.Index) ([][]byte, []server.SearchResponse, error) {
	queries := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: cfg.Seed + 1}).Generate(16)
	bodies := make([][]byte, queries.Rows())
	want := make([]server.SearchResponse, queries.Rows())
	for i := range bodies {
		raw, err := json.Marshal(server.SearchRequest{Query: queries.Row(i), K: cfg.K, NProbe: cfg.NProbe})
		if err != nil {
			return nil, nil, err
		}
		bodies[i] = raw
		res, err := full.Search(context.Background(), queries.Row(i), cfg.K, pqfastscan.WithNProbe(cfg.NProbe))
		if err != nil {
			return nil, nil, err
		}
		want[i].Results = make([]server.SearchNeighbor, len(res.Results))
		for j, r := range res.Results {
			want[i].Results[j] = server.SearchNeighbor{ID: r.ID, Distance: r.Distance}
		}
	}
	return bodies, want, nil
}

// classify matches one 200 response against its oracle: "full" when
// bit-identical without a coverage marker, "partial" when honestly
// degraded, "wrong" otherwise.
func classify(body []byte, want *server.SearchResponse) string {
	var resp server.SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return "wrong"
	}
	if resp.Coverage != nil {
		if resp.Coverage.CellsAnswered >= resp.Coverage.CellsTotal {
			return "wrong" // claims partial but is not — dishonest coverage
		}
		return "partial"
	}
	if len(resp.Results) != len(want.Results) {
		return "wrong"
	}
	for i, w := range want.Results {
		if resp.Results[i].ID != w.ID || resp.Results[i].Distance != w.Distance {
			return "wrong"
		}
	}
	return "full"
}

// chaosWindow drives the worker pool for one window, verifying every
// full answer against the oracle.
func chaosWindow(f *chaosFleet, bodies [][]byte, want []server.SearchResponse, cfg ChaosConfig, d time.Duration) ChaosWindow {
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: cfg.Concurrency}}
	type workerOut struct {
		lats                         []time.Duration
		full, partial, failed, wrong int64
	}
	outs := make([]workerOut, cfg.Concurrency)
	start := time.Now()
	deadline := start.Add(d)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o := &outs[w]
			for qi := w; time.Now().Before(deadline); qi++ {
				i := qi % len(bodies)
				t0 := time.Now()
				resp, err := client.Post(f.routerURL+"/search?partial=1", "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					o.failed++
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					o.failed++
					continue
				}
				o.lats = append(o.lats, time.Since(t0))
				switch classify(raw, &want[i]) {
				case "full":
					o.full++
				case "partial":
					o.partial++
				default:
					o.wrong++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var win ChaosWindow
	var lats []time.Duration
	for _, o := range outs {
		win.FullOK += o.full
		win.Partial += o.partial
		win.Failed += o.failed
		win.Wrong += o.wrong
		lats = append(lats, o.lats...)
	}
	win.Requests = win.FullOK + win.Partial + win.Failed + win.Wrong
	win.DurationS = elapsed.Seconds()
	win.GoodputQPS = float64(win.FullOK+win.Partial) / elapsed.Seconds()
	if answered := win.FullOK + win.Partial; answered > 0 {
		win.PartialRate = float64(win.Partial) / float64(answered)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return float64(lats[i]) / 1e6
	}
	win.P50Ms = q(0.50)
	win.P99Ms = q(0.99)
	return win
}

// MeasureChaos runs the fault schedule and returns its report.
func MeasureChaos(cfg ChaosConfig) (*ChaosReport, error) {
	cfg = cfg.withDefaults()
	f, full, err := startChaosFleet(cfg)
	if err != nil {
		return nil, err
	}
	defer f.close()
	bodies, want, err := chaosOracle(cfg, full)
	if err != nil {
		return nil, err
	}

	report := &ChaosReport{
		Schema:      "pqfastscan-chaos/v1",
		BaseN:       cfg.BaseN,
		Partitions:  cfg.Partitions,
		K:           cfg.K,
		NProbe:      cfg.NProbe,
		Concurrency: cfg.Concurrency,
		ResetP:      cfg.ResetP,
	}

	report.Healthy = chaosWindow(f, bodies, want, cfg, cfg.Window)

	f.transport.SetRules(
		faultnet.Rule{Target: f.p0URL, Kind: faultnet.KindDrop},
		faultnet.Rule{Target: f.p1URL + "/search", Kind: faultnet.KindReset, P: cfg.ResetP},
	)
	report.Faulted = chaosWindow(f, bodies, want, cfg, cfg.Window)

	// Lift the faults and time the road back: 10 consecutive strict
	// (partial disallowed) oracle-identical answers.
	f.transport.SetRules()
	healed := time.Now()
	report.RecoveryMs = -1
	client := &http.Client{}
	recoveryBudget := healed.Add(cfg.Window + 5*time.Second)
	streak := 0
	for qi := 0; streak < 10 && time.Now().Before(recoveryBudget); qi++ {
		i := qi % len(bodies)
		resp, err := client.Post(f.routerURL+"/search", "application/json", bytes.NewReader(bodies[i]))
		if err != nil {
			streak = 0
			continue
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && classify(raw, &want[i]) == "full" {
			streak++
		} else {
			streak = 0
		}
	}
	if streak >= 10 {
		report.RecoveryMs = float64(time.Since(healed)) / 1e6
	}

	// The query path recovers before the prober's reinstate streak
	// completes; give the prober a bounded moment so the report shows
	// the whole quarantine → reinstate cycle.
	reinstateDeadline := time.Now().Add(2 * time.Second)
	for f.router.Stats().Reinstatements < f.router.Stats().Quarantines && time.Now().Before(reinstateDeadline) {
		time.Sleep(10 * time.Millisecond)
	}

	st := f.router.Stats()
	report.Failovers = st.Failovers
	report.Hedges = st.Hedges
	report.Retries = st.Retries
	report.BreakerFastFails = st.BreakerFastFails
	report.Quarantines = st.Quarantines
	report.Reinstatements = st.Reinstatements
	fs := f.transport.Stats()
	report.InjectedDrops = fs.Drops
	report.InjectedResets = fs.Resets
	report.OracleOK = report.Healthy.Wrong == 0 && report.Faulted.Wrong == 0
	if !report.OracleOK {
		return report, fmt.Errorf("bench: chaos run produced %d silently wrong answers",
			report.Healthy.Wrong+report.Faulted.Wrong)
	}
	if report.RecoveryMs < 0 {
		return report, fmt.Errorf("bench: fleet did not recover to sustained full answers after faults lifted")
	}
	return report, nil
}

// RunChaos measures the fault schedule and writes the report as JSON.
func RunChaos(w io.Writer, cfg ChaosConfig) error {
	report, err := MeasureChaos(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
