package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"pqfastscan"
	"pqfastscan/internal/server"
)

// Served-throughput benchmarking: where wallclock.go measures the raw
// kernels, this driver measures the whole serving stack — HTTP framing,
// micro-batching, admission control, the engine's batch loop — as a
// client population would see it, reporting QPS and latency quantiles as
// JSON (cmd/pqbench -serve). It can drive an external pqserve (URL mode)
// or self-host an in-process server over a synthetic index so a
// BENCH_*.json baseline is reproducible from a single command.

// ServeConfig parameterizes a load-generation run.
type ServeConfig struct {
	// URL points at a running pqserve. Empty self-hosts an in-process
	// server over a synthetic index.
	URL string

	// Self-host parameters (URL == "").
	BaseN       int           // database size (default 100000)
	LearnN      int           // training size (default BaseN/10, min 1000)
	Partitions  int           // IVF cells (default 8)
	BatchWindow time.Duration // micro-batching window (default 1ms)
	MaxBatch    int           // widest coalesced batch (default 64)

	// Load shape.
	Seed        uint64        // query generation seed (default 42)
	K           int           // neighbors per query (default 100)
	NProbe      int           // cells probed per query (default 1)
	Concurrency int           // concurrent client connections (default 16)
	Duration    time.Duration // measurement window (default 5s)
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.BaseN <= 0 {
		c.BaseN = 100000
	}
	if c.LearnN <= 0 {
		c.LearnN = c.BaseN / 10
		if c.LearnN < 1000 {
			c.LearnN = 1000
		}
	}
	if c.Partitions <= 0 {
		c.Partitions = 8
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.K <= 0 {
		c.K = 100
	}
	if c.NProbe <= 0 {
		c.NProbe = 1
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 16
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	return c
}

// ServeReport is the JSON document of one load-generation run.
type ServeReport struct {
	Schema      string  `json:"schema"`
	URL         string  `json:"url,omitempty"`
	SelfHosted  bool    `json:"self_hosted"`
	BaseN       int     `json:"base_n,omitempty"` // self-hosted only
	Concurrency int     `json:"concurrency"`
	K           int     `json:"k"`
	NProbe      int     `json:"nprobe"`
	DurationS   float64 `json:"duration_s"`

	Requests int64   `json:"requests"`
	OK       int64   `json:"ok"`
	Shed     int64   `json:"shed"` // 429 rejections
	Errors   int64   `json:"errors"`
	QPS      float64 `json:"qps"` // successful responses per second

	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`

	// Micro-batching effectiveness, read from the server's /stats.
	BatchCalls    int64   `json:"batch_calls,omitempty"`
	BatchQueries  int64   `json:"batch_queries,omitempty"`
	AvgBatchWidth float64 `json:"avg_batch_width,omitempty"`
	MaxBatchWidth int64   `json:"max_batch_width,omitempty"`
}

// MeasureServe runs one load-generation pass and returns its report.
func MeasureServe(cfg ServeConfig) (*ServeReport, error) {
	cfg = cfg.withDefaults()
	url := cfg.URL
	report := &ServeReport{
		Schema:      "pqfastscan-serve/v1",
		URL:         cfg.URL,
		SelfHosted:  cfg.URL == "",
		Concurrency: cfg.Concurrency,
		K:           cfg.K,
		NProbe:      cfg.NProbe,
	}

	var statsBefore server.Stats
	var srv *server.Server
	if url == "" {
		report.BaseN = cfg.BaseN
		gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: cfg.Seed})
		opt := pqfastscan.DefaultBuildOptions()
		opt.Partitions = cfg.Partitions
		opt.Seed = cfg.Seed
		idx, err := pqfastscan.Build(gen.Generate(cfg.LearnN), gen.Generate(cfg.BaseN), opt)
		if err != nil {
			return nil, fmt.Errorf("bench: build serving index: %w", err)
		}
		srv, err = server.New(server.Config{
			Index:       idx,
			BatchWindow: cfg.BatchWindow,
			MaxBatch:    cfg.MaxBatch,
			MaxInFlight: 4 * cfg.Concurrency, // shedding off the measurement path
		})
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
		url = "http://" + ln.Addr().String()
		statsBefore = srv.StatsSnapshot()
	}

	// A disjoint pool of query vectors, cycled by the workers.
	bodies, err := searchBodies(cfg.Seed, cfg.K, cfg.NProbe)
	if err != nil {
		return nil, err
	}
	load := driveLoad(url, bodies, cfg.Concurrency, cfg.Duration)
	report.DurationS = load.DurationS
	report.Requests = load.Requests
	report.OK = load.OK
	report.Shed = load.Shed
	report.Errors = load.Errors
	report.QPS = load.QPS
	report.P50Ms = load.P50Ms
	report.P90Ms = load.P90Ms
	report.P99Ms = load.P99Ms
	report.MaxMs = load.MaxMs

	if srv != nil {
		after := srv.StatsSnapshot()
		report.BatchCalls = after.Batch.Calls - statsBefore.Batch.Calls
		report.BatchQueries = after.Batch.Queries - statsBefore.Batch.Queries
		if report.BatchCalls > 0 {
			report.AvgBatchWidth = float64(report.BatchQueries) / float64(report.BatchCalls)
		}
		report.MaxBatchWidth = after.Batch.MaxWidth
	}
	return report, nil
}

// RunServe measures served throughput and writes the report as JSON.
func RunServe(w io.Writer, cfg ServeConfig) error {
	report, err := MeasureServe(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// CombinedReport pairs the kernel wall-clock trajectory with the served
// throughput, the mixed read-write isolation numbers, the durability
// costs, the cluster scaling curve, the beyond-RAM cold-start sweep,
// the adaptive-planner sweep, and/or the self-healing chaos run of the
// same build — the document the BENCH_pr*.json baselines record
// (cmd/pqbench -json, -serve, -mixed, -durability, -shards, -coldstart,
// -planner, -chaos, in any combination). Schema is pqfastscan-bench/v9
// (v8 predates the chaos section; v7 the planner section; v6 the
// coldstart section and the mem record; v5 the durability section; v4
// the cluster section; v2/v3 the backend record in the kernels and
// mixed sections).
type CombinedReport struct {
	Schema     string            `json:"schema"`
	Kernels    *WallClockReport  `json:"kernels,omitempty"`
	Serve      *ServeReport      `json:"serve,omitempty"`
	Mixed      *MixedReport      `json:"mixed,omitempty"`
	Durability *DurabilityReport `json:"durability,omitempty"`
	Cluster    *ClusterReport    `json:"cluster,omitempty"`
	Coldstart  *ColdstartReport  `json:"coldstart,omitempty"`
	Planner    *PlannerReport    `json:"planner,omitempty"`
	Chaos      *ChaosReport      `json:"chaos,omitempty"`
}
