package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"pqfastscan"
	"pqfastscan/internal/quantizer"
	"pqfastscan/internal/rng"
	"pqfastscan/internal/scan"
	"pqfastscan/internal/simd/dispatch"
)

// Wall-clock kernel benchmarks with machine-readable output — the
// counterpart of the modeled-cycle experiments. Where the experiment
// registry reproduces the paper's figures from instruction counts, this
// file measures what the binary actually does on the host, kernel by
// kernel and engine by engine, and emits JSON so successive PRs can
// record a BENCH_*.json trajectory (cmd/pqbench -json).

// WallClockResult is one (kernel, engine, backend, partition size)
// measurement. Backend is set on native Fast Scan rows — the suite runs
// one row per available block-kernel backend (asm-avx2/asm-neon/swar)
// so a BENCH_*.json records the assembly-vs-SWAR ratio on the machine
// that produced it; model rows and the exact scan leave it empty.
type WallClockResult struct {
	Kernel      string  `json:"kernel"`
	Engine      string  `json:"engine"`
	Backend     string  `json:"backend,omitempty"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s"` // code bytes scanned per second
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// WallClockReport is the JSON document pqbench -json emits
// (pqfastscan-bench/v4: v3 plus the backend/CPU-feature record and
// per-backend native rows; the mem record is additive).
type WallClockReport struct {
	Schema            string            `json:"schema"`
	Go                string            `json:"go"`
	GOOS              string            `json:"goos"`
	GOARCH            string            `json:"goarch"`
	CPUs              int               `json:"cpus"`
	ActiveBackend     string            `json:"active_backend"`
	AvailableBackends []string          `json:"available_backends"`
	CPUFeatures       []string          `json:"cpu_features,omitempty"`
	Seed              uint64            `json:"seed"`
	K                 int               `json:"k"`
	Mem               MemStats          `json:"mem"` // read after the runs complete
	Results           []WallClockResult `json:"results"`
}

// MemStats is the process-heap record stamped into benchmark reports —
// the same shape the server exposes on /stats — so a BENCH_*.json shows
// what the run cost in RAM next to what it measured in time.
type MemStats struct {
	HeapInuseBytes uint64 `json:"heap_inuse_bytes"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	SysBytes       uint64 `json:"sys_bytes"`
	NumGC          uint32 `json:"num_gc"`
}

func readMemStats() MemStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return MemStats{
		HeapInuseBytes: m.HeapInuse,
		HeapAllocBytes: m.HeapAlloc,
		SysBytes:       m.Sys,
		NumGC:          m.NumGC,
	}
}

// wallClockFixture builds the pruning-friendly regime the paper
// operates in: random codes with portion-homogeneous distance tables
// (one near portion per component, the structure the §4.3 optimized
// assignment produces). It mirrors getBenchEnv in
// internal/scan/bench_kernels_test.go — keep the two recipes in sync so
// the JSON trajectory and the in-package benchmarks measure the same
// regime (the test fixture cannot be imported from a _test.go file, and
// internal/scan cannot import this package back).
func wallClockFixture(n int, seed uint64) (*scan.Partition, quantizer.Tables, *scan.FastScan, error) {
	r := rng.New(seed)
	codes := make([]uint8, n*scan.M)
	for i := range codes {
		codes[i] = uint8(r.Intn(256))
	}
	tables := quantizer.Tables{M: scan.M, KStar: 256, Data: make([]float32, scan.M*256)}
	for j := 0; j < scan.M; j++ {
		row := tables.Data[j*256 : (j+1)*256]
		near := r.Intn(16)
		for h := 0; h < 16; h++ {
			level := 1000 + r.Float32()*5000
			if h == near {
				level = r.Float32() * 20
			}
			for i := 0; i < 16; i++ {
				row[h*16+i] = level + r.Float32()*50
			}
		}
	}
	p := scan.NewPartition(codes, nil)
	fs, err := scan.NewFastScan(p, scan.FastScanOptions{
		Keep: scan.DefaultKeep, GroupComponents: -1, OrderGroups: true,
	})
	if err != nil {
		return nil, quantizer.Tables{}, nil, err
	}
	return p, tables, fs, nil
}

// RunWallClock benchmarks every kernel on both engines over the given
// partition sizes and writes the JSON report to w.
func RunWallClock(w io.Writer, seed uint64, sizes []int, k int) error {
	report, err := MeasureWallClock(seed, sizes, k)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// MeasureWallClock benchmarks every kernel on both engines over the
// given partition sizes and returns the report (RunWallClock without the
// serialization, for embedding in a CombinedReport).
func MeasureWallClock(seed uint64, sizes []int, k int) (*WallClockReport, error) {
	avail := pqfastscan.AvailableBackends()
	availNames := make([]string, len(avail))
	for i, be := range avail {
		availNames[i] = be.String()
	}
	report := WallClockReport{
		Schema:            "pqfastscan-bench/v4",
		Go:                runtime.Version(),
		GOOS:              runtime.GOOS,
		GOARCH:            runtime.GOARCH,
		CPUs:              runtime.NumCPU(),
		ActiveBackend:     pqfastscan.ActiveBackend().String(),
		AvailableBackends: availNames,
		CPUFeatures:       pqfastscan.CPUFeatures(),
		Seed:              seed,
		K:                 k,
	}
	for _, n := range sizes {
		p, tables, fs, err := wallClockFixture(n, seed+uint64(n))
		if err != nil {
			return nil, fmt.Errorf("bench: fixture n=%d: %w", n, err)
		}
		type variant struct {
			kernel, engine, backend string
			run                     func(b *testing.B)
		}
		sc := scan.NewScratch()
		variants := []variant{
			{"naive", "model", "", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					scan.Naive(p, tables, k)
				}
			}},
			{"libpq", "model", "", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					scan.Libpq(p, tables, k)
				}
			}},
			{"avx", "model", "", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					scan.AVX(p, tables, k)
				}
			}},
			{"gather", "model", "", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					scan.Gather(p, tables, k)
				}
			}},
			{"quantonly", "model", "", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					scan.QuantizationOnly(p, tables, k, scan.DefaultKeep)
				}
			}},
			{"fastpq", "model", "", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					fs.Scan(tables, k)
				}
			}},
			{"fastpq256", "model", "", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					fs.Scan256(tables, k)
				}
			}},
			// The native engine serves all four exact-scan selections
			// with one tuned loop and both Fast Scan widths with one
			// block kernel; benchmark the exact scan once and Fast Scan
			// once per available block-kernel backend, so every report
			// records the assembly-vs-SWAR ratio on its host.
			{"naive", "native", "", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					scan.ExactNative(p, tables, k, sc)
				}
			}},
		}
		for _, be := range dispatch.AvailableBackends() {
			be := be
			bsc := scan.NewScratch()
			variants = append(variants, variant{"fastpq", "native", be.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					fs.ScanNativeBackend(tables, k, bsc, be)
				}
			}})
		}
		for _, v := range variants {
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(n * scan.M))
				v.run(b)
			})
			nsOp := float64(res.T.Nanoseconds()) / float64(res.N)
			report.Results = append(report.Results, WallClockResult{
				Kernel:      v.kernel,
				Engine:      v.engine,
				Backend:     v.backend,
				N:           n,
				NsPerOp:     nsOp,
				MBPerSec:    float64(n*scan.M) / nsOp * 1e9 / 1e6,
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
				Iterations:  res.N,
			})
		}
	}
	report.Mem = readMemStats()
	return &report, nil
}
