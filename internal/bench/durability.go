package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"pqfastscan"
)

// Durability benchmarking: the cost of crash-safety (DESIGN.md §14).
// Every acknowledged mutation is write-ahead logged before the ack, so
// the interesting numbers are (a) acked-write latency and throughput in
// each sync discipline — no WAL at all, sync-on-ack (the durable
// default), and batched group commit — (b) whether an attached log
// taxes the read path (it must not: searches never touch the WAL), and
// (c) how fast recovery replays the log back into an index.

// DurabilityConfig parameterizes one durability benchmark run.
type DurabilityConfig struct {
	BaseN      int    // database size (default 20000)
	LearnN     int    // training size (default BaseN/10, min 1000)
	Partitions int    // IVF cells (default 8)
	Seed       uint64 // build and workload seed (default 42)

	Ops     int // acked mutations per mode (default 2000)
	Writers int // concurrent writer goroutines (default 4)
}

func (c DurabilityConfig) withDefaults() DurabilityConfig {
	if c.BaseN <= 0 {
		c.BaseN = 20000
	}
	if c.LearnN <= 0 {
		c.LearnN = c.BaseN / 10
		if c.LearnN < 1000 {
			c.LearnN = 1000
		}
	}
	if c.Partitions <= 0 {
		c.Partitions = 8
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Ops <= 0 {
		c.Ops = 2000
	}
	if c.Writers <= 0 {
		c.Writers = 4
	}
	return c
}

// DurabilityMode is one sync discipline's write-path measurement.
type DurabilityMode struct {
	// Mode is "none" (no WAL), "sync-on-ack", or "batched-N" (group
	// commit, fsync every N records).
	Mode      string  `json:"mode"`
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`

	// WAL internals for the durable modes (from WALStats).
	Fsyncs     int64   `json:"fsyncs,omitempty"`
	FsyncP50Ms float64 `json:"fsync_p50_ms,omitempty"`
	FsyncP99Ms float64 `json:"fsync_p99_ms,omitempty"`
}

// DurabilityRecovery measures startup replay over the log the
// sync-on-ack mode just wrote.
type DurabilityRecovery struct {
	Records       int64   `json:"records"`
	Ms            float64 `json:"ms"`
	RecordsPerSec float64 `json:"records_per_sec"`
}

// DurabilityReport is the JSON document of one durability run.
type DurabilityReport struct {
	Schema     string `json:"schema"`
	BaseN      int    `json:"base_n"`
	Partitions int    `json:"partitions"`
	Ops        int    `json:"ops"`
	Writers    int    `json:"writers"`

	Modes []DurabilityMode `json:"modes"`

	// Read-path tax: search p50 over the same index with no WAL and
	// with an attached (idle) WAL. These should be within noise of each
	// other — the read path never touches the log.
	ReadP50NoWALMs float64 `json:"read_p50_no_wal_ms"`
	ReadP50WALMs   float64 `json:"read_p50_wal_ms"`

	Recovery DurabilityRecovery `json:"recovery"`
}

// durabilityBuild builds the benchmark index fresh (each mode mutates
// its own copy, so every mode starts from the identical deterministic
// build).
func durabilityBuild(cfg DurabilityConfig) (*pqfastscan.Index, error) {
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: cfg.Seed})
	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = cfg.Partitions
	opt.Seed = cfg.Seed
	return pqfastscan.Build(gen.Generate(cfg.LearnN), gen.Generate(cfg.BaseN), opt)
}

// durabilityWrites drives cfg.Ops single-vector acked adds through
// cfg.Writers goroutines and reports the latency distribution.
func durabilityWrites(cfg DurabilityConfig, idx *pqfastscan.Index, mode string) (DurabilityMode, error) {
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: cfg.Seed + 1})
	vecs := gen.Generate(cfg.Ops)

	lats := make([]time.Duration, cfg.Ops)
	var next int64
	var mu sync.Mutex
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(cfg.Ops) {
			return -1
		}
		next++
		return int(next - 1)
	}

	var wg sync.WaitGroup
	errs := make([]error, cfg.Writers)
	start := time.Now()
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				t0 := time.Now()
				row := pqfastscan.Matrix{Data: vecs.Row(i), Dim: vecs.Dim}
				if _, err := idx.AddBatch(row); err != nil {
					errs[w] = err
					return
				}
				lats[i] = time.Since(t0)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return DurabilityMode{}, fmt.Errorf("bench: %s writes: %w", mode, err)
		}
	}

	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	m := DurabilityMode{
		Mode:      mode,
		Ops:       cfg.Ops,
		OpsPerSec: float64(cfg.Ops) / elapsed.Seconds(),
		P50Ms:     quantileMs(lats, 0.50),
		P99Ms:     quantileMs(lats, 0.99),
		MaxMs:     quantileMs(lats, 1.0),
	}
	if ws, ok := idx.WALStats(); ok {
		m.Fsyncs = ws.Fsyncs
		m.FsyncP50Ms = ws.FsyncP50Ms
		m.FsyncP99Ms = ws.FsyncP99Ms
	}
	return m, nil
}

// durabilityReadP50 measures search p50 on an idle index.
func durabilityReadP50(cfg DurabilityConfig, idx *pqfastscan.Index) (float64, error) {
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: cfg.Seed + 2})
	queries := gen.Generate(64)
	const rounds = 20
	lats := make([]time.Duration, 0, rounds*queries.Rows())
	ctx := context.Background()
	for r := 0; r < rounds; r++ {
		for qi := 0; qi < queries.Rows(); qi++ {
			t0 := time.Now()
			if _, err := idx.Search(ctx, queries.Row(qi), 10, pqfastscan.WithNProbe(2)); err != nil {
				return 0, err
			}
			lats = append(lats, time.Since(t0))
		}
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	return quantileMs(lats, 0.50), nil
}

// MeasureDurability runs the full durability suite and returns its
// report.
func MeasureDurability(cfg DurabilityConfig) (*DurabilityReport, error) {
	cfg = cfg.withDefaults()
	report := &DurabilityReport{
		Schema:     "pqfastscan-durability/v1",
		BaseN:      cfg.BaseN,
		Partitions: cfg.Partitions,
		Ops:        cfg.Ops,
		Writers:    cfg.Writers,
	}

	// Mode "none": the in-memory mutation path, the ceiling.
	idx, err := durabilityBuild(cfg)
	if err != nil {
		return nil, err
	}
	m, err := durabilityWrites(cfg, idx, "none")
	if err != nil {
		return nil, err
	}
	report.Modes = append(report.Modes, m)
	if report.ReadP50NoWALMs, err = durabilityReadP50(cfg, idx); err != nil {
		return nil, err
	}

	// Mode "sync-on-ack": the durable default — every ack is fsynced.
	syncDir, err := os.MkdirTemp("", "pqbench-wal-sync-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(syncDir)
	idx, err = durabilityBuild(cfg)
	if err != nil {
		return nil, err
	}
	if err := idx.WithWAL(syncDir, pqfastscan.DurabilityOptions{}); err != nil {
		return nil, err
	}
	if report.ReadP50WALMs, err = durabilityReadP50(cfg, idx); err != nil {
		return nil, err
	}
	if m, err = durabilityWrites(cfg, idx, "sync-on-ack"); err != nil {
		return nil, err
	}
	report.Modes = append(report.Modes, m)
	ws, _ := idx.WALStats()
	if err := idx.CloseWAL(); err != nil {
		return nil, err
	}

	// Recovery: replay the log sync-on-ack just wrote.
	t0 := time.Now()
	recovered, err := pqfastscan.Recover(syncDir, pqfastscan.DurabilityOptions{})
	if err != nil {
		return nil, fmt.Errorf("bench: recovery replay: %w", err)
	}
	replay := time.Since(t0)
	if live := recovered.Live(); live != cfg.BaseN+cfg.Ops {
		return nil, fmt.Errorf("bench: recovery lost writes: live %d, want %d", live, cfg.BaseN+cfg.Ops)
	}
	_ = recovered.CloseWAL()
	report.Recovery = DurabilityRecovery{
		Records:       ws.Records,
		Ms:            float64(replay.Nanoseconds()) / 1e6,
		RecordsPerSec: float64(ws.Records) / replay.Seconds(),
	}

	// Mode "batched-64": group commit, fsync every 64 records with a
	// 5ms background bound — the throughput discipline.
	batchDir, err := os.MkdirTemp("", "pqbench-wal-batch-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(batchDir)
	idx, err = durabilityBuild(cfg)
	if err != nil {
		return nil, err
	}
	opts := pqfastscan.DurabilityOptions{SyncEvery: 64, SyncInterval: 5 * time.Millisecond}
	if err := idx.WithWAL(batchDir, opts); err != nil {
		return nil, err
	}
	if m, err = durabilityWrites(cfg, idx, "batched-64"); err != nil {
		return nil, err
	}
	report.Modes = append(report.Modes, m)
	if err := idx.CloseWAL(); err != nil {
		return nil, err
	}
	return report, nil
}

// RunDurability measures the durability suite and writes the report as
// JSON.
func RunDurability(w io.Writer, cfg DurabilityConfig) error {
	report, err := MeasureDurability(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
