package bench

import (
	"fmt"
	"io"

	"pqfastscan/internal/index"
	"pqfastscan/internal/perf"
)

func init() {
	Registry = append(Registry,
		Experiment{"wide", "§6 extension: 256-bit (AVX2) Fast Scan vs 128-bit", true, WideAblation},
		Experiment{"bandwidth", "§5.8: multi-query scaling against memory bandwidth", true, BandwidthExperiment},
	)
}

// WideAblation compares the 128-bit kernel of the paper against the §6
// widening: a 256-bit vpshufb performs 32 lookups, halving the front-end
// work per vector. Results are identical; only modeled cost changes.
func WideAblation(env *Env, w io.Writer) error {
	part := env.largestPartition()
	n := env.Index.Parts()[part].N
	arch := perf.Haswell
	tw := newTab(w)
	fmt.Fprintf(tw, "kernel\tregister width\tinstr/vec\tcycles/vec\tspeed [Mvecs/s]\tpruned %%\n")
	for _, row := range []struct {
		name string
		kern index.Kernel
		bits int
	}{
		{"fastpq (paper)", index.KernelFastScan, 128},
		{"fastpq256 (extension)", index.KernelFastScan256, 256},
	} {
		opt := HeadlineFastOpts(n, 100)
		var sum perf.Counters
		var pruned, lbs int
		pool := env.partitionPoolQueries(part, 12)
		if len(pool) == 0 {
			pool = []int{0}
		}
		nq := len(pool)
		for _, qi := range pool {
			out, _, err := env.runPool(row.kern, qi, 100, opt)
			if err != nil {
				return err
			}
			c := out.Stats.Counters(arch)
			sum.Cycles += c.Cycles
			sum.Instructions += c.Instructions
			pruned += out.Stats.Pruned
			lbs += out.Stats.LowerBounds
		}
		perVec := perVector(sum, nq*n)
		speed := float64(n) / (perVec.Cycles * float64(n) / (arch.FreqGHz * 1e9)) / 1e6
		fmt.Fprintf(tw, "%s\t%d-bit\t%.2f\t%.2f\t%.0f\t%.1f\n",
			row.name, row.bits, perVec.Instructions, perVec.Cycles, speed,
			100*float64(pruned)/float64(lbs))
	}
	return tw.Flush()
}

// BandwidthExperiment reproduces the §5.8 argument: "PQ Fast Scan loads 6
// bytes from memory for each lower bound computation. Thus, a scan speed
// of 1800 M vecs/s corresponds to a bandwidth use of 10.8 GB/s. ... When
// answering 8 queries concurrently on an 8-core server processor, PQ Fast
// Scan is bound by the memory bandwidth." Per-core scan speed comes from
// the cost model; aggregate throughput is capped by the architecture's
// sustained DRAM bandwidth.
func BandwidthExperiment(env *Env, w io.Writer) error {
	part := env.largestPartition()
	n := env.Index.Parts()[part].N
	opt := HeadlineFastOpts(n, 100)

	// Per-core modeled speed and per-vector traffic for both kernels.
	type kernelRow struct {
		name         string
		kern         index.Kernel
		bytesPerVec  float64
		statsPerArch []float64 // cycles per vector, per arch
	}
	rows := []kernelRow{
		// libpq streams full 8-byte codes (plus L1-resident tables).
		{name: "libpq", kern: index.KernelLibpq, bytesPerVec: 8},
		// fastpq streams the 6-byte packed blocks (§5.8).
		{name: "fastpq", kern: index.KernelFastScan, bytesPerVec: 6},
	}
	pool := env.partitionPoolQueries(part, 8)
	if len(pool) == 0 {
		pool = []int{0}
	}
	for ri := range rows {
		var cyclesPerVec []float64
		for _, arch := range perf.Architectures {
			total := 0.0
			for _, qi := range pool {
				out, _, err := env.runPool(rows[ri].kern, qi, 100, opt)
				if err != nil {
					return err
				}
				total += out.Stats.Counters(arch).Cycles
			}
			cyclesPerVec = append(cyclesPerVec, total/float64(len(pool)*n))
		}
		rows[ri].statsPerArch = cyclesPerVec
	}

	tw := newTab(w)
	fmt.Fprintf(tw, "arch\tkernel\t1-core speed [Mvecs/s]\t1-core BW [GB/s]\tcores\taggregate demand [GB/s]\tDRAM BW [GB/s]\tdelivered speed x cores [Mvecs/s]\tbound\n")
	for ai, arch := range perf.Architectures {
		for _, row := range rows {
			perCore := arch.FreqGHz * 1e9 / row.statsPerArch[ai] / 1e6 // Mvecs/s
			bwPerCore := perCore * 1e6 * row.bytesPerVec / 1e9         // GB/s
			demand := bwPerCore * float64(arch.Cores)
			delivered := perCore * float64(arch.Cores)
			bound := "cpu"
			if demand > arch.MemBWGBs {
				delivered = arch.MemBWGBs * 1e9 / (row.bytesPerVec * 1e6)
				bound = "memory-bandwidth"
			}
			fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.1f\t%d\t%.1f\t%.1f\t%.0f\t%s\n",
				arch.Name, row.name, perCore, bwPerCore, arch.Cores,
				demand, arch.MemBWGBs, delivered, bound)
		}
	}
	return tw.Flush()
}
