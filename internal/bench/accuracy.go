package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"pqfastscan/internal/dataset"
	"pqfastscan/internal/index"
	"pqfastscan/internal/perf"
)

func init() {
	Registry = append(Registry,
		Experiment{"recall", "§5.1 context: ANN recall of the PQ 8x8 pipeline", true, RecallExperiment},
		Experiment{"steps", "§2.2: cost split across Algorithm 1's three steps", true, StepsExperiment},
	)
}

// RecallExperiment reports recall@R of the full IVFADC pipeline against
// exact brute-force ground truth. The paper does not re-measure accuracy
// ("PQ accuracy has already been extensively studied [14]") because Fast
// Scan returns exactly PQ Scan's results; this experiment documents the
// accuracy of the underlying PQ 8×8 + IVF substrate and shows multi-probe
// recovering routing misses.
func RecallExperiment(env *Env, w io.Writer) error {
	gt, err := dataset.GroundTruth(env.Base, env.Queries, 1)
	if err != nil {
		return err
	}
	ctx := context.Background()
	tw := newTab(w)
	fmt.Fprintf(tw, "nprobe\trecall@1\trecall@10\trecall@100\n")
	for _, nprobe := range []int{1, 2, 4} {
		var results [][]int64
		for qi := 0; qi < env.Scale.QueryN; qi++ {
			resp, err := env.Index.Query(ctx, index.Request{
				Query: env.Queries.Row(qi), K: 100,
				Kernel: index.KernelFastScan, NProbe: nprobe,
			})
			if err != nil {
				return err
			}
			ids := make([]int64, len(resp.Results))
			for i, r := range resp.Results {
				ids[i] = r.ID
			}
			results = append(results, ids)
		}
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.3f\n", nprobe,
			dataset.Recall(results, gt, 1),
			dataset.Recall(results, gt, 10),
			dataset.Recall(results, gt, 100))
	}
	fmt.Fprintf(tw, "\n%d queries over %d base vectors; identical for every kernel (exactness invariant)\n",
		env.Scale.QueryN, env.Base.Rows())
	return tw.Flush()
}

// StepsExperiment splits query cost across the three steps of
// Algorithm 1: partition selection, distance-table computation, and the
// scan. The paper reports that for partitions above 3 M vectors "Step 1
// and 2 account for less than 1% of the CPU time"; the split scales with
// partition size, so the measured fraction here (smaller partitions) is
// proportionally larger.
func StepsExperiment(env *Env, w io.Writer) error {
	arch := perf.Haswell
	const reps = 20
	var routeTime, tableTime, scanTime time.Duration
	var scanCycles float64
	var scannedVectors int
	for qi := 0; qi < env.Scale.QueryN; qi++ {
		q := env.Queries.Row(qi)
		start := time.Now()
		var part int
		for r := 0; r < reps; r++ {
			part = env.Index.RoutePartition(q)
		}
		routeTime += time.Since(start) / reps

		start = time.Now()
		for r := 0; r < reps; r++ {
			env.Index.Tables(q, part)
		}
		tableTime += time.Since(start) / reps

		out, err := env.RunKernel(index.KernelLibpq, qi, 100, PaperFastOpts())
		if err != nil {
			return err
		}
		scanTime += out.Measured
		scanCycles += out.Stats.Counters(arch).Cycles
		scannedVectors += out.Stats.Scanned
	}
	total := routeTime + tableTime + scanTime
	tw := newTab(w)
	fmt.Fprintf(tw, "step\tmeasured time\tfraction of query\n")
	fmt.Fprintf(tw, "1: select partition (index)\t%v\t%.2f%%\n",
		routeTime.Round(time.Microsecond), 100*float64(routeTime)/float64(total))
	fmt.Fprintf(tw, "2: compute distance tables\t%v\t%.2f%%\n",
		tableTime.Round(time.Microsecond), 100*float64(tableTime)/float64(total))
	fmt.Fprintf(tw, "3: scan partition (libpq)\t%v\t%.2f%%\n",
		scanTime.Round(time.Microsecond), 100*float64(scanTime)/float64(total))
	fmt.Fprintf(tw, "\navg partition %d vectors; the paper's >3M-vector partitions push steps 1-2 below 1%%\n",
		scannedVectors/env.Scale.QueryN)
	return tw.Flush()
}
