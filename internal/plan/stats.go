package plan

import (
	"sync/atomic"

	"pqfastscan/internal/index"
	"pqfastscan/internal/scan"
)

// Process-wide planner decision counters, mirrored onto the server's
// /stats as the "planner" section next to the scan-cost observations
// they acted on. Lock-free for the same reason the EWMAs are: record
// runs on every planned query.

var (
	plannedTotal atomic.Uint64
	coldTotal    atomic.Uint64
	parallelPick atomic.Uint64

	// nprobeHist buckets the chosen nprobe: 1, 2, 3-4, 5-8, 9-16,
	// 17-32, 33+.
	nprobeHist [7]atomic.Uint64

	// kernelPicks counts exact-loop vs Fast Scan choices; backendPicks
	// is indexed by the dispatch backend value.
	kernelExact atomic.Uint64
	kernelFast  atomic.Uint64
	backendPick [8]atomic.Uint64
)

var nprobeBucketLabels = [7]string{"1", "2", "3-4", "5-8", "9-16", "17-32", "33+"}

func nprobeBucket(n int) int {
	switch {
	case n <= 1:
		return 0
	case n == 2:
		return 1
	case n <= 4:
		return 2
	case n <= 8:
		return 3
	case n <= 16:
		return 4
	case n <= 32:
		return 5
	default:
		return 6
	}
}

func record(req Request, d Decision) {
	plannedTotal.Add(1)
	if d.Cold {
		coldTotal.Add(1)
	}
	if req.PlanNProbe {
		nprobeHist[nprobeBucket(d.NProbe)].Add(1)
	}
	if req.PlanKernel && !d.Cold {
		if d.Kernel == index.KernelFastScan {
			kernelFast.Add(1)
		} else {
			kernelExact.Add(1)
		}
	}
	if req.PlanBackend && !d.Cold {
		if b := int(d.Backend); b >= 0 && b < len(backendPick) {
			backendPick[b].Add(1)
		}
	}
	if d.Parallel {
		parallelPick.Add(1)
	}
}

// Stats is the JSON document of the planner's behaviour so far: how
// many queries it planned, how often it fell back cold, what it chose,
// and the scan-cost observations (EWMA vs prior) the choices read.
type Stats struct {
	Planned       uint64                 `json:"planned"`
	ColdFallbacks uint64                 `json:"cold_fallbacks"`
	ParallelPicks uint64                 `json:"parallel_picks"`
	NProbeHist    map[string]uint64      `json:"nprobe_hist,omitempty"`
	KernelPicks   map[string]uint64      `json:"kernel_picks,omitempty"`
	BackendPicks  map[string]uint64      `json:"backend_picks,omitempty"`
	Observations  []scan.CostObservation `json:"observations,omitempty"`
}

// Snapshot captures the counters and the scan-cost EWMAs.
func Snapshot() Stats {
	s := Stats{
		Planned:       plannedTotal.Load(),
		ColdFallbacks: coldTotal.Load(),
		ParallelPicks: parallelPick.Load(),
		Observations:  scan.CostSnapshot(),
	}
	for i := range nprobeHist {
		if v := nprobeHist[i].Load(); v > 0 {
			if s.NProbeHist == nil {
				s.NProbeHist = make(map[string]uint64)
			}
			s.NProbeHist[nprobeBucketLabels[i]] = v
		}
	}
	if v := kernelExact.Load(); v > 0 {
		s.KernelPicks = map[string]uint64{"exact": v}
	}
	if v := kernelFast.Load(); v > 0 {
		if s.KernelPicks == nil {
			s.KernelPicks = make(map[string]uint64)
		}
		s.KernelPicks["fastpq"] = v
	}
	for b := range backendPick {
		if v := backendPick[b].Load(); v > 0 {
			if s.BackendPicks == nil {
				s.BackendPicks = make(map[string]uint64)
			}
			s.BackendPicks[index.Backend(b).String()] = v
		}
	}
	return s
}

// Reset clears the decision counters and the kernel-choice hysteresis
// (not the scan EWMAs); benchmarks use it to isolate sweeps.
func Reset() {
	incumbent.Store(0)
	plannedTotal.Store(0)
	coldTotal.Store(0)
	parallelPick.Store(0)
	for i := range nprobeHist {
		nprobeHist[i].Store(0)
	}
	kernelExact.Store(0)
	kernelFast.Store(0)
	for i := range backendPick {
		backendPick[i].Store(0)
	}
}
