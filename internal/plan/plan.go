// Package plan is the adaptive per-query planner: given a query and a
// target (min-latency by default, or a recall target), it chooses the
// knobs that are otherwise caller-supplied constants — nprobe, scan
// kernel, block-kernel backend, and sequential-vs-parallel probing —
// from live signals the engine already has:
//
//   - snapshot structure: per-partition sizes, dead ratios and
//     paged-vs-resident status (index.PlanStatsInto), and the cell
//     ranking along the query (index.RankCellsInto);
//   - an online per-class ns/code cost model: the lock-free EWMAs of
//     internal/scan, seeded by the internal/perf instruction-count
//     prior and updated by every scan the engine runs.
//
// The planner is greedy and statistics-free in the Janus-Datalog sense
// ("When Greedy Beats Optimal"): no catalogs, no search — one ranked
// walk for nprobe, one argmin over cost classes for kernel/backend, one
// threshold for parallelism — so planning costs microseconds against
// scans that cost hundreds. It is also allocation-free in steady state:
// all per-query scratch is pooled.
//
// Every choice preserves bit-identity (DESIGN.md §16): the planner
// selects only among configurations that return identical results for
// the same probe set — the exact kernels and both Fast Scan widths on
// any backend, sequential or parallel — and its nprobe choice is a
// prefix of the same RankCells order WithNProbe uses, so a planned
// query equals the fixed-option query built from its Decision.
package plan

import (
	"runtime"
	"sync"
	"sync/atomic"

	"pqfastscan/internal/index"
	"pqfastscan/internal/scan"
	"pqfastscan/internal/simd/dispatch"
)

// parallelCutoverNs is the estimated sequential scan cost above which a
// multi-probe query is worth fanning out across cores: well above the
// few-µs cost of spawning the per-cell goroutines, well below a
// latency anyone would notice going unsplit.
const parallelCutoverNs = 100_000

// availBackends caches the machine's backend list: it is fixed at
// startup feature detection, and dispatch.AvailableBackends allocates a
// fresh slice per call, which would be Decide's only allocation.
var availBackends = dispatch.AvailableBackends()

// switchMargin is the kernel/backend hysteresis: a challenger class
// must undercut the incumbent's estimated cost by this factor before
// the planner switches away from it. Observed ns/code averages carry
// sampling noise; without a margin, two classes of similar true cost
// trade the argmin back and forth and every planned query stands a
// coin-flip chance of running the slower one — with it, the planner
// settles on one class until the evidence against it is real.
const switchMargin = 1.25

// incumbent is the cost class of the last kernel/backend argmin, +1 (0
// = none yet). Process-global like the EWMAs it damps.
var incumbent atomic.Int32

// Request describes one planning problem. The PlanX flags say which
// dimensions the caller left open — explicit options always win, the
// planner only fills what was not pinned (the conflict semantics the
// facade tests pin down).
type Request struct {
	Query  []float32
	Recall float64 // 0 = min-latency; (0,1] = probe the closest cells covering this live-mass fraction

	PlanNProbe   bool
	PlanKernel   bool // choose exact-loop vs Fast Scan
	PlanBackend  bool // choose the Fast Scan block-kernel backend
	PlanParallel bool

	// Pinned context for the dimensions not planned, used only to cost
	// the others: the caller's nprobe (when !PlanNProbe), its explicit
	// cell set (when routing is pinned by WithCells), and whether its
	// pinned kernel is a Fast Scan width.
	FixedNProbe int
	Cells       []int
	FastKernel  bool
}

// Decision is the planner's answer. Only the dimensions the Request
// left open are meaningful; the facade merges them over the explicit
// options. Cold reports that no observation informed the choice and
// the documented defaults were kept.
type Decision struct {
	NProbe   int
	Kernel   index.Kernel
	Backend  index.Backend
	Parallel bool
	Cold     bool
}

// scratch pools every per-query buffer so Decide allocates nothing in
// steady state.
type scratch struct {
	ids   []int
	dists []float32
	stats []index.PlanStat
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// Decide plans one query against the index's current snapshot.
func Decide(ix *index.Index, req Request) Decision {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	sc.stats = ix.PlanStatsInto(sc.stats)
	stats := sc.stats

	totalLive := 0
	for _, st := range stats {
		totalLive += st.N - st.Dead
	}

	d := Decision{NProbe: 1, Kernel: index.KernelFastScan, Backend: index.BackendAuto}

	// --- nprobe: a prefix of the RankCells order ------------------------
	//
	// Min-latency keeps the documented single-probe default. A recall
	// target r extends the prefix greedily until the probed cells hold
	// at least fraction r of the live mass: without a ground-truth
	// recall harness (ROADMAP item 4), the mass of the closest cells is
	// the structural surrogate for the chance that the true neighbor's
	// cell was probed — under a uniform-mass assumption the routing miss
	// rate is bounded by the unprobed fraction. The prefix property is
	// what keeps the planned probe set identical to WithNProbe's.
	nprobe := req.FixedNProbe
	ranked := false
	rank := func() {
		if cap(sc.ids) < len(stats) {
			sc.ids = make([]int, len(stats))
			sc.dists = make([]float32, len(stats))
		}
		sc.ids = ix.RankCellsInto(req.Query, sc.ids, sc.dists)
		ranked = true
	}
	if req.PlanNProbe {
		nprobe = 1
		if req.Recall > 0 && totalLive > 0 {
			rank()
			need := req.Recall * float64(totalLive)
			mass := 0.0
			nprobe = 0
			for _, c := range sc.ids {
				nprobe++
				mass += float64(stats[c].N - stats[c].Dead)
				if mass >= need {
					break
				}
			}
		}
	}
	if nprobe > 0 {
		d.NProbe = nprobe
	}

	// --- probe set, for costing the remaining choices -------------------
	probedCodes, pagedCodes := 0, 0
	add := func(c int) {
		probedCodes += stats[c].N
		if stats[c].Paged {
			pagedCodes += stats[c].N
		}
	}
	switch {
	case len(req.Cells) > 0:
		for _, c := range req.Cells {
			if c >= 0 && c < len(stats) {
				add(c)
			}
		}
	case nprobe <= 1:
		if c := ix.RoutePartition(req.Query); c >= 0 && c < len(stats) {
			add(c)
		}
	default:
		if !ranked {
			rank()
		}
		n := nprobe
		if n > len(sc.ids) {
			n = len(sc.ids)
		}
		for _, c := range sc.ids[:n] {
			add(c)
		}
	}
	cost := func(class scan.CostClass) float64 {
		return float64(probedCodes-pagedCodes)*scan.EstimatedNsPerCode(class, false) +
			float64(pagedCodes)*scan.EstimatedNsPerCode(class, true)
	}

	// --- kernel and backend: argmin over observed cost classes ----------
	//
	// Candidates are only bit-identical configurations: Fast Scan per
	// available backend, and the native exact loop (whose naive/libpq/
	// avx/gather selections are one implementation). With no
	// observations anywhere the planner does not trust the prior to
	// deviate: it keeps the documented defaults (Fast Scan, automatic
	// backend) deterministically and reports a cold fallback.
	effClass := scan.CostExact
	if req.PlanKernel || req.FastKernel {
		effClass = scan.FastClassFor(index.BackendAuto)
	}
	if req.PlanKernel || req.PlanBackend {
		type cand struct {
			class   scan.CostClass
			kernel  index.Kernel
			backend index.Backend
		}
		var cands [8]cand
		n := 0
		if req.PlanBackend {
			for _, be := range availBackends {
				cands[n] = cand{scan.FastClassFor(be), index.KernelFastScan, be}
				n++
			}
		} else if req.FastKernel || req.PlanKernel {
			// Backend pinned (or defaulted): one Fast Scan candidate on it.
			cands[n] = cand{scan.FastClassFor(index.BackendAuto), index.KernelFastScan, index.BackendAuto}
			n++
		}
		if req.PlanKernel {
			cands[n] = cand{scan.CostExact, index.KernelNaive, index.BackendAuto}
			n++
		}
		warm := false
		for i := 0; i < n; i++ {
			if _, s := scan.ObservedNsPerCode(cands[i].class, false); s > 0 {
				warm = true
			}
			if _, s := scan.ObservedNsPerCode(cands[i].class, true); s > 0 {
				warm = true
			}
		}
		if warm && n > 0 {
			best := 0
			bestCost := cost(cands[0].class)
			for i := 1; i < n; i++ {
				if c := cost(cands[i].class); c < bestCost {
					best, bestCost = i, c
				}
			}
			// Hysteresis: keep the previously chosen class while it stays
			// within switchMargin of the argmin.
			if inc := incumbent.Load(); inc > 0 && cands[best].class != scan.CostClass(inc-1) {
				for i := 0; i < n; i++ {
					if cands[i].class == scan.CostClass(inc-1) {
						if cost(cands[i].class) <= switchMargin*bestCost {
							best = i
						}
						break
					}
				}
			}
			incumbent.Store(int32(cands[best].class) + 1)
			if req.PlanKernel {
				d.Kernel = cands[best].kernel
			}
			if req.PlanBackend && cands[best].kernel == index.KernelFastScan {
				d.Backend = cands[best].backend
			}
			effClass = cands[best].class
		} else {
			d.Cold = true
		}
	}

	// --- sequential vs parallel probing ---------------------------------
	//
	// Fan a multi-probe query across cores when the estimated
	// sequential cost clears the goroutine overhead, or when any probed
	// partition is disk-resident (parallel probes overlap their pool
	// faults instead of serializing them). Bit-identical either way.
	probes := nprobe
	if len(req.Cells) > 0 {
		probes = len(req.Cells)
	}
	if req.PlanParallel && probes > 1 && runtime.GOMAXPROCS(0) > 1 {
		if pagedCodes > 0 || cost(effClass) >= parallelCutoverNs {
			d.Parallel = true
		}
	}

	record(req, d)
	return d
}
