package plan

import (
	"runtime"
	"testing"
	"time"

	"pqfastscan/internal/dataset"
	"pqfastscan/internal/index"
	"pqfastscan/internal/scan"
	"pqfastscan/internal/simd/dispatch"
)

func buildIndex(t *testing.T, partitions int) (*index.Index, func(i int) []float32) {
	t.Helper()
	gen := dataset.NewGenerator(dataset.Config{Seed: 7})
	learn := gen.Generate(3000)
	base := gen.Generate(20000)
	queries := gen.Generate(16)
	opt := index.DefaultOptions()
	opt.Partitions = partitions
	opt.Seed = 7
	ix, err := index.Build(learn, base, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ix, queries.Row
}

func allOpen(q []float32, recall float64) Request {
	return Request{
		Query: q, Recall: recall,
		PlanNProbe: true, PlanKernel: true, PlanBackend: true, PlanParallel: true,
	}
}

func TestColdStartKeepsDocumentedDefaults(t *testing.T) {
	ix, row := buildIndex(t, 8)
	scan.ResetCostObservations()
	defer scan.ResetCostObservations()
	Reset()

	d := Decide(ix, allOpen(row(0), 0))
	if !d.Cold {
		t.Errorf("cold planner did not report cold fallback: %+v", d)
	}
	if d.NProbe != 1 || d.Kernel != index.KernelFastScan || d.Backend != index.BackendAuto || d.Parallel {
		t.Errorf("cold min-latency decision %+v, want {1 fastpq auto sequential}", d)
	}
	// Deterministic: same inputs, same answer.
	for i := 0; i < 5; i++ {
		if d2 := Decide(ix, allOpen(row(0), 0)); d2 != d {
			t.Fatalf("cold decision not deterministic: %+v vs %+v", d2, d)
		}
	}
	s := Snapshot()
	if s.Planned == 0 || s.ColdFallbacks == 0 {
		t.Errorf("counters not recorded: %+v", s)
	}
}

func TestRecallTargetExtendsPrefix(t *testing.T) {
	ix, row := buildIndex(t, 8)
	scan.ResetCostObservations()
	defer scan.ResetCostObservations()

	q := row(1)
	stats := ix.PlanStatsInto(nil)
	total := 0
	for _, st := range stats {
		total += st.N - st.Dead
	}
	ranked := index.RankCells(q, ix.Coarse)

	last := 0
	for _, recall := range []float64{0.1, 0.5, 0.9, 1.0} {
		d := Decide(ix, allOpen(q, recall))
		if d.NProbe < last {
			t.Errorf("recall %.1f: nprobe %d shrank below %d", recall, d.NProbe, last)
		}
		last = d.NProbe
		// The chosen prefix must cover >= recall of the live mass, and
		// the prefix one shorter must not (greedy minimality).
		mass := func(n int) float64 {
			m := 0
			for _, c := range ranked[:n] {
				m += stats[c].N - stats[c].Dead
			}
			return float64(m)
		}
		need := recall * float64(total)
		if mass(d.NProbe) < need {
			t.Errorf("recall %.1f: prefix %d covers %.0f < %.0f", recall, d.NProbe, mass(d.NProbe), need)
		}
		if d.NProbe > 1 && mass(d.NProbe-1) >= need {
			t.Errorf("recall %.1f: prefix %d not minimal", recall, d.NProbe)
		}
	}
	if last != len(ranked) && last != firstFullCover(ranked, stats) {
		// recall 1.0 must cover all live mass.
		t.Errorf("recall 1.0 chose nprobe %d of %d cells", last, len(ranked))
	}
}

func firstFullCover(ranked []int, stats []index.PlanStat) int {
	total := 0
	for _, st := range stats {
		total += st.N - st.Dead
	}
	m := 0
	for i, c := range ranked {
		m += stats[c].N - stats[c].Dead
		if m >= total {
			return i + 1
		}
	}
	return len(ranked)
}

func TestWarmObservationsPickCheapestClass(t *testing.T) {
	ix, row := buildIndex(t, 8)
	defer scan.ResetCostObservations()
	Reset()

	// Teach the planner that the exact loop is (implausibly) cheapest.
	scan.ResetCostObservations()
	scan.ObserveScan(scan.CostExact, false, 1000, 100*time.Nanosecond) // 0.1 ns/code
	for _, be := range dispatch.AvailableBackends() {
		scan.ObserveScan(scan.FastClassFor(be), false, 1000, 10*time.Microsecond) // 10 ns/code
	}
	d := Decide(ix, allOpen(row(2), 0))
	if d.Cold {
		t.Fatalf("warm planner reported cold: %+v", d)
	}
	if d.Kernel != index.KernelNaive {
		t.Errorf("planner ignored observations: picked %v over cheap exact", d.Kernel)
	}

	// Now teach it the opposite: Fast Scan on a concrete backend wins.
	scan.ResetCostObservations()
	scan.ObserveScan(scan.CostExact, false, 1000, 10*time.Microsecond)
	best := dispatch.AvailableBackends()[0]
	scan.ObserveScan(scan.FastClassFor(best), false, 1000, 100*time.Nanosecond)
	d = Decide(ix, allOpen(row(2), 0))
	if d.Kernel != index.KernelFastScan || d.Backend != best {
		t.Errorf("planner picked %v/%v, want fastpq/%v", d.Kernel, d.Backend, best)
	}

	s := Snapshot()
	if len(s.KernelPicks) == 0 || len(s.Observations) == 0 {
		t.Errorf("stats missing picks or observations: %+v", s)
	}
}

func TestExplicitDimensionsAreNotPlanned(t *testing.T) {
	ix, row := buildIndex(t, 8)
	scan.ResetCostObservations()
	defer scan.ResetCostObservations()
	// nprobe pinned: the decision carries it through untouched even
	// with a recall target that would pick differently.
	d := Decide(ix, Request{
		Query: row(3), Recall: 1.0,
		PlanKernel: true, PlanBackend: true, PlanParallel: true,
		FixedNProbe: 2,
	})
	if d.NProbe != 2 {
		t.Errorf("pinned nprobe overridden: %+v", d)
	}
}

func TestParallelNeedsMultiProbeAndWeight(t *testing.T) {
	ix, row := buildIndex(t, 8)
	defer scan.ResetCostObservations()

	// Single-probe queries never parallelize.
	slowAll := func() {
		scan.ResetCostObservations()
		scan.ObserveScan(scan.CostExact, false, 10, time.Second) // absurdly slow
		for _, be := range dispatch.AvailableBackends() {
			scan.ObserveScan(scan.FastClassFor(be), false, 10, time.Second)
		}
	}
	slowAll()
	d := Decide(ix, allOpen(row(4), 0))
	if d.Parallel {
		t.Errorf("single-probe query parallelized: %+v", d)
	}
	// Heavy multi-probe queries do — when there is more than one core
	// to fan out over.
	slowAll()
	d = Decide(ix, allOpen(row(4), 1.0))
	if runtime.GOMAXPROCS(0) > 1 {
		if d.NProbe > 1 && !d.Parallel {
			t.Errorf("heavy multi-probe query stayed sequential: %+v", d)
		}
	} else if d.Parallel {
		t.Errorf("single-core host parallelized: %+v", d)
	}
	// Light multi-probe queries stay sequential.
	scan.ResetCostObservations()
	scan.ObserveScan(scan.CostExact, false, 1<<30, time.Nanosecond) // ~0 ns/code
	for _, be := range dispatch.AvailableBackends() {
		scan.ObserveScan(scan.FastClassFor(be), false, 1<<30, time.Nanosecond)
	}
	d = Decide(ix, allOpen(row(4), 1.0))
	if d.Parallel {
		t.Errorf("light multi-probe query parallelized: %+v", d)
	}
}

func TestDecideDoesNotAllocate(t *testing.T) {
	ix, row := buildIndex(t, 8)
	scan.ResetCostObservations()
	defer scan.ResetCostObservations()
	q := row(5)
	// Warm the pooled scratch.
	Decide(ix, allOpen(q, 0.9))
	allocs := testing.AllocsPerRun(200, func() {
		Decide(ix, allOpen(q, 0.9))
	})
	if allocs != 0 {
		t.Errorf("Decide allocates %.1f per query, want 0", allocs)
	}
}
