// Per-endpoint circuit breakers and health state. Every endpoint in
// the shard map — shared across shards that list the same URL — gets
// one endpointState: a breaker guarding the fast-fail decision, a
// latency EWMA feeding adaptive attempt timeouts, and the quarantine
// flag the health prober flips.
package cluster

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// breakerState is the classic three-state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a per-endpoint circuit breaker. Closed counts consecutive
// failures and trips open at threshold; open fails fast until cooldown
// elapses, then half-open admits exactly one probe request — its
// success closes the circuit, its failure re-opens it, and its
// cancellation (a hedge sibling won, or the caller's own deadline
// expired) releases the probe slot without judging the endpoint.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	fails     int // consecutive failures while closed
	openedAt  time.Time
	probing   bool // half-open probe slot taken
	threshold int
	cooldown  time.Duration
	opens     atomic.Int64 // transitions into open, for /stats
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a request may be sent now. In half-open it
// admits exactly one probe; the admitted caller must settle it with
// Success, Failure, or Cancel.
func (b *breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	case breakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success records a completed request: closes a half-open circuit,
// clears the failure streak. A success observed while open (a straggler
// from before the trip, or an external health probe) also closes it —
// proof of life beats a stale trip.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}

// Failure records a failed request: trips a closed circuit at
// threshold, re-opens a half-open one. Failures while already open
// only refresh nothing — the cooldown keeps running from the trip.
func (b *breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.opens.Add(1)
		}
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
		b.opens.Add(1)
	}
}

// Cancel settles an admitted request that was abandoned for reasons
// that say nothing about the endpoint — a hedge sibling won the race,
// or the caller's own deadline expired. It releases a half-open probe
// slot and never counts as a failure.
func (b *breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
}

// State returns the current state for /stats.
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the circuit has tripped open.
func (b *breaker) Opens() int64 { return b.opens.Load() }

// latEWMA is a lock-free exponentially weighted moving average of
// sub-request latency in nanoseconds — the same CAS-on-float64-bits
// idiom internal/scan uses for its cost observations.
type latEWMA struct {
	bits    atomic.Uint64
	samples atomic.Int64
}

const latAlpha = 1.0 / 8

func (e *latEWMA) Observe(d time.Duration) {
	x := float64(d)
	for {
		old := e.bits.Load()
		cur := math.Float64frombits(old)
		var next float64
		if cur == 0 {
			next = x
		} else {
			// Clamp a single observation's pull to 2x in either
			// direction so one outlier cannot wreck the estimate.
			if x > 2*cur {
				x = 2 * cur
			} else if x < cur/2 {
				x = cur / 2
			}
			next = cur + latAlpha*(x-cur)
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			e.samples.Add(1)
			return
		}
	}
}

// Load returns the current estimate and how many samples back it.
func (e *latEWMA) Load() (time.Duration, int64) {
	return time.Duration(math.Float64frombits(e.bits.Load())), e.samples.Load()
}

// endpointState is the router's per-endpoint health record.
type endpointState struct {
	url     string
	breaker *breaker
	latency latEWMA

	// quarantined is flipped by the health prober and read lock-free
	// by the candidate picker.
	quarantined atomic.Bool
	// probeFails/probeOKs are the prober's consecutive-outcome
	// counters; only the prober goroutine touches them.
	probeFails, probeOKs int

	quarantines    atomic.Int64 // times this endpoint was quarantined
	reinstatements atomic.Int64 // times it was reinstated
}

// attemptTimeout derives the per-attempt budget from the latency EWMA:
// a generous multiple of the typical sub-request, floored so jittery
// fast endpoints are not strangled, capped by the whole-shard budget.
// Until enough samples have accumulated the full shard budget applies —
// cold starts must not guess.
const (
	adaptiveWarmup     = 20
	adaptiveMultiplier = 4
	adaptiveFloor      = 25 * time.Millisecond
)

func (st *endpointState) attemptTimeout(max time.Duration) time.Duration {
	avg, n := st.latency.Load()
	if n < adaptiveWarmup || avg <= 0 {
		return max
	}
	d := avg * adaptiveMultiplier
	if d < adaptiveFloor {
		d = adaptiveFloor
	}
	if d > max {
		d = max
	}
	return d
}
