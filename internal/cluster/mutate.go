// Mutation forwarding: /add and /delete routed through the cluster
// with retry-safety semantics. Searches are idempotent reads, so the
// fanout retries them freely; mutations are not, so the rules here are
// strict: a mutation goes to the owning shard's primary only (replicas
// would silently diverge), and it is retried only after failures that
// prove the request never reached the server (dial-class errors).
// Anything else — a connection reset mid-response, an EOF, a timeout —
// is ambiguous: the shard may or may not have applied the write, and
// re-sending would risk applying it twice. Those failures surface as a
// typed AmbiguousError ("outcome unknown") instead of being retried.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"

	"pqfastscan/internal/index"
	"pqfastscan/internal/server"
)

// AmbiguousError reports a mutation whose outcome is unknown: the
// request may have reached the shard and been applied before the
// failure, so the router refuses to retry it. Callers must reconcile
// (re-read, or use an idempotency key at a higher layer) rather than
// blindly re-send.
type AmbiguousError struct {
	Endpoint string
	Err      error
}

func (e *AmbiguousError) Error() string {
	return fmt.Sprintf("cluster: outcome unknown: mutation to %s failed after it may have been received, not retrying: %v", e.Endpoint, e.Err)
}

func (e *AmbiguousError) Unwrap() error { return e.Err }

// ambiguousOutcome classifies a transport failure: false means the
// request provably never reached the server (safe to re-send), true
// means it may have (never re-send). Dial-class failures — connection
// refused, no route, DNS — happen before a byte of the request is
// written. An HTTP status error is also unambiguous: the server
// answered, and the mutation handlers only acknowledge after applying,
// so an error status means not applied. Everything else (reset
// mid-response, unexpected EOF, timeout in flight) is ambiguous.
func ambiguousOutcome(err error) bool {
	var op *net.OpError
	if errors.As(err, &op) && op.Op == "dial" {
		return false
	}
	var he *httpStatusError
	return !errors.As(err, &he)
}

// forwardMutation posts one mutation to a shard primary under the
// retry-safety rules: up to maxAttempts tries, but only while every
// failure so far was provably-never-sent; the first ambiguous failure
// stops everything and is returned typed.
func (r *Router) forwardMutation(ctx context.Context, ep, path string, body, out any) error {
	maxAttempts := r.cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			r.metrics.retries.Add(1)
			if !r.cfg.sleep(ctx, r.retryDelay(attempt)) {
				break
			}
		}
		err := r.postJSON(ctx, ep+path, body, out)
		if err == nil {
			return nil
		}
		var he *httpStatusError
		if errors.As(err, &he) {
			// The server answered with an error status: a definite
			// outcome (mutation handlers acknowledge only after
			// applying), so there is nothing to retry.
			return err
		}
		if ambiguousOutcome(err) {
			r.metrics.ambiguous.Add(1)
			return &AmbiguousError{Endpoint: ep, Err: err}
		}
		lastErr = err
	}
	return fmt.Errorf("cluster: mutation to %s failed (never reached server): %w", ep, lastErr)
}

// Add routes vectors to their owning shards — each vector to the shard
// that serves its nearest coarse cell, mirroring the assignment the
// engine itself would make — and returns the assigned ids in input
// order. Mutations go to primaries only. A shard that fails
// ambiguously poisons the whole call with an AmbiguousError; note that
// other shards' sub-batches may still have been applied (the response
// says nothing about them — reconcile by re-reading).
func (r *Router) Add(ctx context.Context, vectors [][]float32) ([]int64, error) {
	meta := r.meta.load()
	if len(vectors) == 0 {
		return nil, validationErrorf("cluster: no vectors")
	}
	for i, v := range vectors {
		if len(v) != meta.dim {
			return nil, validationErrorf("cluster: vector %d dim %d != index dim %d", i, len(v), meta.dim)
		}
	}
	// Group vectors by owning shard, remembering original positions.
	byShard := make(map[int][]int, len(r.shards)) // shard -> input indexes
	for i, v := range vectors {
		cell := index.RankCells(v, meta.coarse)[0]
		si := r.byCell[cell]
		byShard[si] = append(byShard[si], i)
	}
	ids := make([]int64, len(vectors))
	for _, si := range shardIDs(byShard) {
		idxs := byShard[si]
		sub := server.AddRequest{Vectors: make([][]float32, len(idxs))}
		for j, i := range idxs {
			sub.Vectors[j] = vectors[i]
		}
		primary := r.shards[si].spec.Endpoints[0]
		var out server.AddResponse
		if err := r.forwardMutation(ctx, primary, "/add", sub, &out); err != nil {
			return nil, fmt.Errorf("shard %d: %w", si, err)
		}
		if len(out.IDs) != len(idxs) {
			return nil, fmt.Errorf("cluster: shard %d returned %d ids for %d vectors", si, len(out.IDs), len(idxs))
		}
		for j, i := range idxs {
			ids[i] = out.IDs[j]
		}
	}
	return ids, nil
}

// Delete removes id from the fleet. The router does not know which
// shard holds an id, so the delete is sent to every shard primary;
// at least one reporting deleted=true means success, every shard
// answering 404 means the id does not exist anywhere. Ambiguous
// transport failures abort with a typed AmbiguousError, never a
// re-send.
func (r *Router) Delete(ctx context.Context, id int64) (bool, error) {
	deleted := false
	for si, sh := range r.shards {
		primary := sh.spec.Endpoints[0]
		var out server.DeleteResponse
		err := r.forwardMutation(ctx, primary, "/delete", server.DeleteRequest{ID: id}, &out)
		if err != nil {
			var he *httpStatusError
			if errors.As(err, &he) && he.status == 404 {
				continue // this shard does not hold the id
			}
			return deleted, fmt.Errorf("shard %d: %w", si, err)
		}
		if out.Deleted {
			deleted = true
		}
	}
	return deleted, nil
}
