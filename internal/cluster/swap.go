// Fleet-wide two-phase snapshot swap. The slow phase (every endpoint
// loads and validates the snapshot) runs everywhere before the fast
// phase (every endpoint's atomic pointer swap) starts anywhere, so the
// fleet's epoch skew is bounded by commit-RPC latency, not load time —
// and a snapshot that any endpoint cannot serve is rejected before
// anything observable changed.
package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"pqfastscan/internal/server"
)

// EndpointSwap reports one endpoint's part in a fleet swap.
type EndpointSwap struct {
	Endpoint  string `json:"endpoint"`
	Prepared  bool   `json:"prepared"`
	Committed bool   `json:"committed"`
	Error     string `json:"error,omitempty"`
}

// FleetSwapResult reports a whole fleet swap.
type FleetSwapResult struct {
	Committed bool           `json:"committed"`
	Path      string         `json:"path"`
	Endpoints []EndpointSwap `json:"endpoints"`
}

// allEndpoints lists every endpoint in the fleet — primaries and replicas
// of every shard — each exactly once, in shard order. Replicas serve
// reads during failover and hedging, so they swap with the fleet; a
// replica left on the old snapshot would leak stale results into
// merges.
func (r *Router) allEndpoints() []string {
	seen := make(map[string]bool)
	var out []string
	for _, sh := range r.shards {
		for _, ep := range sh.spec.Endpoints {
			if !seen[ep] {
				seen[ep] = true
				out = append(out, ep)
			}
		}
	}
	return out
}

// SwapAll replaces the snapshot on every endpoint of the fleet with the
// two-phase protocol: prepare everywhere, then — only if every prepare
// succeeded — commit everywhere. Any prepare failure aborts the staged
// snapshot on every endpoint and returns an error with nothing changed.
// After a successful commit the router refetches /meta, because a
// compatible snapshot may still carry different coarse centroids.
//
// Traffic keeps flowing throughout: prepare changes nothing a query can
// see, and each commit is one atomic pointer swap on its shard —
// in-flight scans drain on the snapshot they started on.
func (r *Router) SwapAll(ctx context.Context, path string) (*FleetSwapResult, error) {
	if strings.TrimSpace(path) == "" {
		return nil, fmt.Errorf("cluster: swap path must be non-empty")
	}
	eps := r.allEndpoints()
	result := &FleetSwapResult{Path: path, Endpoints: make([]EndpointSwap, len(eps))}
	for i, ep := range eps {
		result.Endpoints[i].Endpoint = ep
	}

	// Phase 1: prepare everywhere, in parallel — the loads are the slow
	// part and they are independent.
	var wg sync.WaitGroup
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep string) {
			defer wg.Done()
			var prep server.PrepareResponse
			err := r.postJSON(ctx, ep+"/swap/prepare", server.SwapRequest{Path: path}, &prep)
			if err != nil {
				result.Endpoints[i].Error = err.Error()
				return
			}
			result.Endpoints[i].Prepared = true
		}(i, ep)
	}
	wg.Wait()

	var failures []string
	for _, es := range result.Endpoints {
		if !es.Prepared {
			failures = append(failures, fmt.Sprintf("%s: %s", es.Endpoint, es.Error))
		}
	}
	if len(failures) > 0 {
		// Roll back: discard whatever was staged on the endpoints that
		// did prepare. Abort is idempotent, so asking everyone is fine.
		for _, ep := range eps {
			wg.Add(1)
			go func(ep string) {
				defer wg.Done()
				_ = r.postJSON(ctx, ep+"/swap/abort", struct{}{}, nil)
			}(ep)
		}
		wg.Wait()
		r.cfg.Logf("cluster: fleet swap of %s aborted: %s", path, strings.Join(failures, "; "))
		return result, fmt.Errorf("cluster: prepare failed on %d/%d endpoints, fleet swap aborted: %s",
			len(failures), len(eps), strings.Join(failures, "; "))
	}

	// Phase 2: commit everywhere. Each commit is microseconds on the
	// shard; running them in parallel keeps the fleet's mixed-epoch
	// window to one RPC round trip.
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep string) {
			defer wg.Done()
			var com server.CommitResponse
			err := r.postJSON(ctx, ep+"/swap/commit", struct{}{}, &com)
			if err != nil {
				result.Endpoints[i].Error = err.Error()
				return
			}
			result.Endpoints[i].Committed = true
		}(i, ep)
	}
	wg.Wait()

	var commitFailures []string
	for _, es := range result.Endpoints {
		if !es.Committed {
			commitFailures = append(commitFailures, fmt.Sprintf("%s: %s", es.Endpoint, es.Error))
		}
	}
	if len(commitFailures) > 0 {
		// Prepare validated compatibility on every endpoint, so a failed
		// commit means an endpoint died (or a conflicting direct /swap
		// raced us) between the phases. There is no rolling back the
		// endpoints that committed; surface the split for the operator.
		return result, fmt.Errorf("cluster: commit failed on %d/%d endpoints — fleet is split across epochs: %s",
			len(commitFailures), len(eps), strings.Join(commitFailures, "; "))
	}

	result.Committed = true
	r.metrics.swaps.Add(1)
	if err := r.refreshMeta(); err != nil {
		// The swap itself succeeded; stale centroids would break ranking
		// determinism, so report it loudly.
		return result, fmt.Errorf("cluster: fleet swap committed but meta refresh failed: %w", err)
	}
	r.cfg.Logf("cluster: fleet swapped to %s on %d endpoints", path, len(eps))
	return result, nil
}
