package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pqfastscan"
	"pqfastscan/internal/server"
)

// flakyShard wraps a real shard server and fails the first n /search
// requests with 503, counting every attempt that reaches it.
func flakyShard(t *testing.T, full *pqfastscan.Index, cells []int, failFirst int64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	restricted, err := full.RestrictCells(cells...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(server.Config{Index: restricted, Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	var attempts atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/search" {
			if attempts.Add(1) <= failFirst {
				http.Error(w, `{"error":"transient"}`, http.StatusServiceUnavailable)
				return
			}
		}
		s.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(func() { hs.Close(); s.Close() })
	return hs, &attempts
}

// recordingSleeper captures every backoff wait without actually waiting.
type recordingSleeper struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (rs *recordingSleeper) sleep(ctx context.Context, d time.Duration) bool {
	rs.mu.Lock()
	rs.delays = append(rs.delays, d)
	rs.mu.Unlock()
	return ctx.Err() == nil
}

func (rs *recordingSleeper) recorded() []time.Duration {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]time.Duration(nil), rs.delays...)
}

// TestRetryBudgetBackoffDeterministic drives the full retry ladder with
// an injected sleeper and a pinned jitter draw: a single-endpoint shard
// failing its first three attempts is retried with exponentially
// growing, capped waits and then answers correctly on the fourth.
func TestRetryBudgetBackoffDeterministic(t *testing.T) {
	full, queries := fullIndex(t)
	flaky, attempts := flakyShard(t, full, []int{0, 1, 2, 3, 4, 5, 6, 7}, 3)

	rs := &recordingSleeper{}
	router := newRouter(t, 8, [][]string{{flaky.URL}}, func(c *Config) {
		c.HedgeDelay = -1
		c.MaxAttempts = 5
		c.RetryBaseDelay = 10 * time.Millisecond
		c.RetryMaxDelay = 40 * time.Millisecond
		c.sleep = rs.sleep
		c.jitter = func(n int64) int64 { return n - 1 } // always the window's top
	})

	q := queries.Row(1)
	resp, err := router.Search(context.Background(), q, SearchOptions{K: 10, NProbe: 8})
	if err != nil {
		t.Fatalf("search through flaky shard: %v", err)
	}
	want, err := full.Search(context.Background(), q, 10, pqfastscan.WithNProbe(8))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want.Results {
		if resp.Results[i].ID != w.ID || resp.Results[i].Distance != w.Distance {
			t.Fatalf("retried result rank %d: %+v, want %+v", i, resp.Results[i], w)
		}
	}
	if got := attempts.Load(); got != 4 {
		t.Fatalf("shard saw %d attempts, want 4 (3 failures + success)", got)
	}
	// Round r's window tops out at min(base<<(r-1), max): 10ms, 20ms,
	// then the 40ms cap.
	wantDelays := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	got := rs.recorded()
	if len(got) != len(wantDelays) {
		t.Fatalf("backoff sleeps %v, want %v", got, wantDelays)
	}
	for i := range wantDelays {
		if got[i] != wantDelays[i] {
			t.Fatalf("backoff round %d slept %v, want %v", i+1, got[i], wantDelays[i])
		}
	}
	if router.metrics.retries.Load() != 3 {
		t.Fatalf("retries counter %d, want 3", router.metrics.retries.Load())
	}
}

// TestRetryBudgetExhausted: a shard that never answers consumes exactly
// MaxAttempts tries and then fails the query with the underlying error.
func TestRetryBudgetExhausted(t *testing.T) {
	full, queries := fullIndex(t)
	flaky, attempts := flakyShard(t, full, []int{0, 1, 2, 3, 4, 5, 6, 7}, 1<<30)

	rs := &recordingSleeper{}
	router := newRouter(t, 8, [][]string{{flaky.URL}}, func(c *Config) {
		c.HedgeDelay = -1
		c.MaxAttempts = 3
		c.sleep = rs.sleep
		c.jitter = func(n int64) int64 { return 0 }
	})

	_, err := router.Search(context.Background(), queries.Row(0), SearchOptions{K: 5, NProbe: 8})
	if err == nil {
		t.Fatal("search succeeded against a permanently failing shard")
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("shard saw %d attempts, want exactly MaxAttempts=3", got)
	}
	if sleeps := len(rs.recorded()); sleeps != 2 {
		t.Fatalf("%d backoff sleeps for 3 attempts, want 2", sleeps)
	}
}

// TestNoRetryAfterContextDone: once the caller's context is cancelled,
// no further attempt is launched — the sleeper reports the cancellation
// and the query returns the first error immediately.
func TestNoRetryAfterContextDone(t *testing.T) {
	full, queries := fullIndex(t)
	flaky, attempts := flakyShard(t, full, []int{0, 1, 2, 3, 4, 5, 6, 7}, 1<<30)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	router := newRouter(t, 8, [][]string{{flaky.URL}}, func(c *Config) {
		c.HedgeDelay = -1
		c.MaxAttempts = 10
		c.sleep = func(ctx context.Context, d time.Duration) bool {
			cancel() // the caller gives up while the first backoff waits
			<-ctx.Done()
			return false
		}
	})

	_, err := router.Search(ctx, queries.Row(0), SearchOptions{K: 5, NProbe: 8})
	if err == nil {
		t.Fatal("search succeeded against a failing shard with a cancelled context")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("shard saw %d attempts after cancellation, want 1", got)
	}
}

// TestPartialResultsCoverage: with one of two shards dead, a default
// query fails, a ?partial=1 query degrades — answering from the
// surviving shard bit-identically to a single node restricted to its
// cells, reporting coverage, and bumping the partials counter.
func TestPartialResultsCoverage(t *testing.T) {
	full, queries := fullIndex(t)
	a := shardServer(t, full, []int{0, 1, 2, 3})
	b := shardServer(t, full, []int{4, 5, 6, 7})
	router := newRouter(t, 8, [][]string{{a.URL}, {b.URL}}, func(c *Config) {
		c.HedgeDelay = -1
		c.MaxAttempts = 1
		c.ShardTimeout = 2 * time.Second
	})
	b.Close() // shard b dies after the router validated the fleet

	q := queries.Row(2)
	if _, err := router.Search(context.Background(), q, SearchOptions{K: 10, NProbe: 8}); err == nil {
		t.Fatal("default query succeeded with a dead shard")
	}

	resp, err := router.Search(context.Background(), q, SearchOptions{K: 10, NProbe: 8, AllowPartial: true})
	if err != nil {
		t.Fatalf("partial query failed: %v", err)
	}
	if resp.Coverage == nil {
		t.Fatal("partial response carries no coverage")
	}
	if resp.Coverage.CellsTotal != 8 || resp.Coverage.CellsAnswered != 4 {
		t.Fatalf("coverage %+v, want 4 of 8 cells", resp.Coverage)
	}
	// The degraded answer equals a single node probing only the
	// surviving cells, in the same rank order.
	var survived []int
	for _, c := range resp.Partitions {
		if c <= 3 {
			survived = append(survived, c)
		}
	}
	want, err := full.Search(context.Background(), q, 10, pqfastscan.WithCells(survived...))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(want.Results) {
		t.Fatalf("%d partial results, want %d", len(resp.Results), len(want.Results))
	}
	for i, w := range want.Results {
		if resp.Results[i].ID != w.ID || resp.Results[i].Distance != w.Distance {
			t.Fatalf("partial rank %d: %+v, want %+v", i, resp.Results[i], w)
		}
	}
	if router.metrics.partials.Load() != 1 {
		t.Fatalf("partials counter %d, want 1", router.metrics.partials.Load())
	}

	// Every shard dead: even a partial query must fail.
	a.Close()
	if _, err := router.Search(context.Background(), q, SearchOptions{K: 10, NProbe: 8, AllowPartial: true}); err == nil {
		t.Fatal("partial query succeeded with the whole fleet dead")
	}
}

// TestPartialQueryParam: the HTTP surface honors ?partial=1 and the
// response document carries the coverage field.
func TestPartialQueryParam(t *testing.T) {
	full, queries := fullIndex(t)
	a := shardServer(t, full, []int{0, 1, 2, 3})
	b := shardServer(t, full, []int{4, 5, 6, 7})
	router := newRouter(t, 8, [][]string{{a.URL}, {b.URL}}, func(c *Config) {
		c.HedgeDelay = -1
		c.MaxAttempts = 1
	})
	// A router running -allow-partial degrades with no query parameter.
	lenient := newRouter(t, 8, [][]string{{a.URL}, {b.URL}}, func(c *Config) {
		c.HedgeDelay = -1
		c.MaxAttempts = 1
		c.AllowPartial = true
	})
	handler := router.Handler()
	b.Close()

	req := server.SearchRequest{Query: queries.Row(0), K: 5, NProbe: 8}
	if status, _, _ := routerSearch(t, handler, req); status != http.StatusBadGateway {
		t.Fatalf("default query with dead shard: status %d, want 502", status)
	}
	status, resp, body := routerSearchPath(t, handler, "/search?partial=1", req)
	if status != http.StatusOK {
		t.Fatalf("?partial=1 query: status %d (%s)", status, body)
	}
	if resp.Coverage == nil || resp.Coverage.CellsAnswered != 4 || resp.Coverage.CellsTotal != 8 {
		t.Fatalf("?partial=1 coverage %+v, want 4 of 8", resp.Coverage)
	}
	if len(resp.Results) == 0 {
		t.Fatal("?partial=1 returned no results")
	}

	status, resp, body = routerSearchPath(t, lenient.Handler(), "/search", req)
	if status != http.StatusOK {
		t.Fatalf("AllowPartial router: status %d (%s)", status, body)
	}
	if resp.Coverage == nil || resp.Coverage.CellsAnswered != 4 {
		t.Fatalf("AllowPartial router coverage %+v, want 4 answered", resp.Coverage)
	}
}

// routerSearchPath is routerSearch with an explicit request path (query
// parameters included).
func routerSearchPath(t *testing.T, handler http.Handler, path string, req server.SearchRequest) (int, server.SearchResponse, string) {
	t.Helper()
	raw, _ := json.Marshal(req)
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw)))
	var resp server.SearchResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decode response: %v (%s)", err, rec.Body.String())
		}
	}
	return rec.Code, resp, rec.Body.String()
}
