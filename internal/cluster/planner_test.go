package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"pqfastscan"
	"pqfastscan/internal/server"
)

// --- adaptive planning through the router ------------------------------

// routerSearchURL is routerSearch with a raw target (query params).
func routerSearchURL(t *testing.T, handler http.Handler, target string, req server.SearchRequest) (int, server.SearchResponse, string) {
	t.Helper()
	raw, _ := json.Marshal(req)
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, target, bytes.NewReader(raw)))
	var resp server.SearchResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decode response: %v (%s)", err, rec.Body.String())
		}
	}
	return rec.Code, resp, rec.Body.String()
}

// TestRouterRecallBitIdentity: a ?recall= query through the router must
// return exactly what a single node holding all cells returns for the
// same target — the router's mass-prefix nprobe plus the scatter-gather
// merge reproduce the single-node planner's answer bit for bit.
func TestRouterRecallBitIdentity(t *testing.T) {
	full, queries := fullIndex(t)
	shardA := shardServer(t, full, []int{0, 1, 2, 3})
	shardB := shardServer(t, full, []int{4, 5, 6, 7})
	r := newRouter(t, 8, [][]string{{shardA.URL}, {shardB.URL}}, nil)
	h := r.Handler()
	ctx := context.Background()

	for qi := 0; qi < 6; qi++ {
		q := queries.Row(qi)
		for _, recall := range []string{"0.5", "0.9", "1.0"} {
			code, got, body := routerSearchURL(t, h, "/search?recall="+recall,
				server.SearchRequest{Query: q, K: 10})
			if code != http.StatusOK {
				t.Fatalf("recall=%s: %d %s", recall, code, body)
			}
			// The single-node reference: the facade's recall target over
			// the full index.
			var f float64
			fmt.Sscanf(recall, "%g", &f)
			want, err := full.Search(ctx, q, 10, pqfastscan.WithTargetRecall(f))
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got.Partitions) != fmt.Sprint(want.Partitions) {
				t.Fatalf("recall=%s q%d: router probed %v, single node %v",
					recall, qi, got.Partitions, want.Partitions)
			}
			if len(got.Results) != len(want.Results) {
				t.Fatalf("recall=%s q%d: %d results vs %d", recall, qi, len(got.Results), len(want.Results))
			}
			for i, n := range want.Results {
				if got.Results[i].ID != n.ID || got.Results[i].Distance != n.Distance {
					t.Fatalf("recall=%s q%d result %d: router %+v, single node {%d %g}",
						recall, qi, i, got.Results[i], n.ID, n.Distance)
				}
			}
		}
	}
}

// TestRouterAutoForwarding: ?auto=1 keeps results bit-identical to the
// unplanned query (shards plan only bit-identical dimensions) and bad
// recall values are rejected before any fanout.
func TestRouterAutoForwarding(t *testing.T) {
	full, queries := fullIndex(t)
	shardA := shardServer(t, full, []int{0, 1, 2, 3})
	shardB := shardServer(t, full, []int{4, 5, 6, 7})
	r := newRouter(t, 8, [][]string{{shardA.URL}, {shardB.URL}}, nil)
	h := r.Handler()
	q := queries.Row(7)

	code, auto, body := routerSearchURL(t, h, "/search?auto=1", server.SearchRequest{Query: q, K: 10, NProbe: 4})
	if code != http.StatusOK {
		t.Fatalf("auto: %d %s", code, body)
	}
	code, plain, body := routerSearchURL(t, h, "/search", server.SearchRequest{Query: q, K: 10, NProbe: 4})
	if code != http.StatusOK {
		t.Fatalf("plain: %d %s", code, body)
	}
	if fmt.Sprint(auto.Partitions) != fmt.Sprint(plain.Partitions) || len(auto.Results) != len(plain.Results) {
		t.Fatalf("auto diverged: %+v vs %+v", auto, plain)
	}
	for i := range plain.Results {
		if auto.Results[i] != plain.Results[i] {
			t.Fatalf("auto result %d: %+v vs %+v", i, auto.Results[i], plain.Results[i])
		}
	}

	// Explicit nprobe beats a recall target, matching the single node.
	code, pinned, body := routerSearchURL(t, h, "/search?recall=1.0", server.SearchRequest{Query: q, K: 10, NProbe: 2})
	if code != http.StatusOK {
		t.Fatalf("pinned: %d %s", code, body)
	}
	if len(pinned.Partitions) != 2 {
		t.Fatalf("pinned nprobe=2 overridden by recall: probed %v", pinned.Partitions)
	}

	for _, bad := range []string{"0", "-0.1", "1.5", "nan"} {
		if code, _, body := routerSearchURL(t, h, "/search?recall="+bad, server.SearchRequest{Query: q, K: 10}); code != http.StatusBadRequest {
			t.Errorf("recall=%s accepted: %d %s", bad, code, body)
		}
	}
}
