package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pqfastscan"
	"pqfastscan/internal/server"
)

// --- fixtures ----------------------------------------------------------

var (
	fixOnce    sync.Once
	fixIdx     *pqfastscan.Index
	fixQueries pqfastscan.Matrix
	fixErr     error
)

// fullIndex returns a lazily built 8-cell index plus a pool of queries.
func fullIndex(t *testing.T) (*pqfastscan.Index, pqfastscan.Matrix) {
	t.Helper()
	fixOnce.Do(func() {
		gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 31})
		opt := pqfastscan.DefaultBuildOptions()
		opt.Partitions = 8
		fixIdx, fixErr = pqfastscan.Build(gen.Generate(3000), gen.Generate(12000), opt)
		fixQueries = gen.Generate(32)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixIdx, fixQueries
}

// shardServer stands up one in-process pqserve holding only the given
// cells of full, exactly as `pqserve -cells` would after loading the
// shared snapshot.
func shardServer(t *testing.T, full *pqfastscan.Index, cells []int) *httptest.Server {
	t.Helper()
	restricted, err := full.RestrictCells(cells...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(server.Config{Index: restricted, Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return hs
}

// newRouter builds a Router over equal ranges of the given shard
// endpoints (each entry is one shard's endpoint list).
func newRouter(t *testing.T, partitions int, shardEndpoints [][]string, tune func(*Config)) *Router {
	t.Helper()
	per := partitions / len(shardEndpoints)
	cfg := Config{}
	for i, eps := range shardEndpoints {
		lo := i * per
		hi := lo + per - 1
		if i == len(shardEndpoints)-1 {
			hi = partitions - 1
		}
		cfg.Shards = append(cfg.Shards, ShardSpec{Lo: lo, Hi: hi, Endpoints: eps})
	}
	if tune != nil {
		tune(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func routerSearch(t *testing.T, handler http.Handler, req server.SearchRequest) (int, server.SearchResponse, string) {
	t.Helper()
	raw, _ := json.Marshal(req)
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(raw)))
	var resp server.SearchResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decode response: %v (%s)", err, rec.Body.String())
		}
	}
	return rec.Code, resp, rec.Body.String()
}

// --- shard spec parsing ------------------------------------------------

func TestParseShardSpec(t *testing.T) {
	good := []struct {
		in   string
		want ShardSpec
	}{
		{"0-3=http://a:1", ShardSpec{0, 3, []string{"http://a:1"}}},
		{"4-7=http://a:1,http://b:2", ShardSpec{4, 7, []string{"http://a:1", "http://b:2"}}},
		{"5=localhost:9000", ShardSpec{5, 5, []string{"http://localhost:9000"}}},
		{" 0-1 = http://a/ ", ShardSpec{0, 1, []string{"http://a"}}},
	}
	for _, tc := range good {
		got, err := ParseShardSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseShardSpec(%q): %v", tc.in, err)
		}
		if got.Lo != tc.want.Lo || got.Hi != tc.want.Hi || len(got.Endpoints) != len(tc.want.Endpoints) {
			t.Fatalf("ParseShardSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		for i := range got.Endpoints {
			if got.Endpoints[i] != tc.want.Endpoints[i] {
				t.Fatalf("ParseShardSpec(%q) endpoint %d = %q, want %q", tc.in, i, got.Endpoints[i], tc.want.Endpoints[i])
			}
		}
	}
	bad := []string{"", "0-3", "x-3=http://a", "3-1=http://a", "-1-2=http://a", "0-3=", "0-3=,"}
	for _, in := range bad {
		if _, err := ParseShardSpec(in); err == nil {
			t.Fatalf("ParseShardSpec(%q) accepted malformed spec", in)
		}
	}
}

// --- the tentpole guarantee -------------------------------------------

// TestClusterOracleEquality is the acceptance criterion of DESIGN.md
// §13: a router over N shards answers every query bit-identically to a
// single node holding the whole index — same ids, same distances, same
// probe list — for 1, 2 and 4 shards, across nprobe values that cross
// shard boundaries.
func TestClusterOracleEquality(t *testing.T) {
	full, queries := fullIndex(t)
	layouts := map[string][][]int{
		"1shard":  {{0, 1, 2, 3, 4, 5, 6, 7}},
		"2shards": {{0, 1, 2, 3}, {4, 5, 6, 7}},
		"4shards": {{0, 1}, {2, 3}, {4, 5}, {6, 7}},
	}
	for name, layout := range layouts {
		t.Run(name, func(t *testing.T) {
			var eps [][]string
			for _, cells := range layout {
				eps = append(eps, []string{shardServer(t, full, cells).URL})
			}
			router := newRouter(t, 8, eps, nil)
			handler := router.Handler()

			for qi := 0; qi < 8; qi++ {
				q := queries.Row(qi)
				for _, nprobe := range []int{1, 2, 3, 8} {
					k := 5 + qi
					status, got, body := routerSearch(t, handler,
						server.SearchRequest{Query: q, K: k, NProbe: nprobe})
					if status != http.StatusOK {
						t.Fatalf("router search (nprobe=%d): status %d (%s)", nprobe, status, body)
					}
					want, err := full.Search(context.Background(), q, k, pqfastscan.WithNProbe(nprobe))
					if err != nil {
						t.Fatal(err)
					}
					if len(got.Results) != len(want.Results) {
						t.Fatalf("query %d nprobe %d: %d results, single node has %d",
							qi, nprobe, len(got.Results), len(want.Results))
					}
					for i, w := range want.Results {
						if got.Results[i].ID != w.ID || got.Results[i].Distance != w.Distance {
							t.Fatalf("query %d nprobe %d rank %d: router %+v, single node %+v",
								qi, nprobe, i, got.Results[i], w)
						}
					}
					if len(got.Partitions) != len(want.Partitions) {
						t.Fatalf("query %d nprobe %d: probe list %v, single node %v",
							qi, nprobe, got.Partitions, want.Partitions)
					}
					for i := range want.Partitions {
						if got.Partitions[i] != want.Partitions[i] {
							t.Fatalf("query %d nprobe %d: probe list %v, single node %v",
								qi, nprobe, got.Partitions, want.Partitions)
						}
					}
				}
			}
		})
	}
}

// --- replica failover and hedging -------------------------------------

func TestFailoverToReplica(t *testing.T) {
	full, queries := fullIndex(t)
	liveA := shardServer(t, full, []int{0, 1, 2, 3})
	liveB := shardServer(t, full, []int{4, 5, 6, 7})

	// A dead primary: an endpoint that refuses connections.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	router := newRouter(t, 8, [][]string{
		{dead.URL, liveA.URL}, // primary down, replica up
		{liveB.URL},
	}, func(c *Config) { c.HedgeDelay = -1 }) // failover on error only

	q := queries.Row(0)
	resp, err := router.Search(context.Background(), q, SearchOptions{K: 10, NProbe: 8})
	if err != nil {
		t.Fatalf("search with dead primary: %v", err)
	}
	want, err := full.Search(context.Background(), q, 10, pqfastscan.WithNProbe(8))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want.Results {
		if resp.Results[i].ID != w.ID || resp.Results[i].Distance != w.Distance {
			t.Fatalf("failover result rank %d: %+v, want %+v", i, resp.Results[i], w)
		}
	}
	if got := router.metrics.failovers.Load(); got == 0 {
		t.Fatal("failover counter did not move")
	}
}

func TestHedgedRequestToSlowPrimary(t *testing.T) {
	full, queries := fullIndex(t)
	fast := shardServer(t, full, []int{0, 1, 2, 3, 4, 5, 6, 7})

	// A slow primary: same data, but every /search stalls far longer
	// than the hedge delay.
	restricted, err := full.RestrictCells(0, 1, 2, 3, 4, 5, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	slowSrv, err := server.New(server.Config{Index: restricted})
	if err != nil {
		t.Fatal(err)
	}
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/search" {
			time.Sleep(2 * time.Second)
		}
		slowSrv.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		slow.Close()
		slowSrv.Close()
	})

	router := newRouter(t, 8, [][]string{{slow.URL, fast.URL}}, func(c *Config) {
		c.HedgeDelay = 10 * time.Millisecond
	})

	start := time.Now()
	resp, err := router.Search(context.Background(), queries.Row(0), SearchOptions{K: 10, NProbe: 2})
	if err != nil {
		t.Fatalf("hedged search: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedged search took %v; the replica should have answered at ~hedge delay", elapsed)
	}
	if len(resp.Results) != 10 {
		t.Fatalf("hedged search returned %d results, want 10", len(resp.Results))
	}
	if got := router.metrics.hedges.Load(); got == 0 {
		t.Fatal("hedge counter did not move")
	}
}

// --- fleet swap --------------------------------------------------------

func TestFleetSwapUpdatesEveryEndpointAndMeta(t *testing.T) {
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 41})
	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = 4
	buildAt := func(n int) *pqfastscan.Index {
		idx, err := pqfastscan.Build(gen.Generate(2000), gen.Generate(n), opt)
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}
	current := buildAt(4000)
	next := buildAt(6000)
	path := filepath.Join(t.TempDir(), "next.idx")
	if err := next.Save(path); err != nil {
		t.Fatal(err)
	}

	mkShard := func(cells []int) *httptest.Server {
		restricted, err := current.RestrictCells(cells...)
		if err != nil {
			t.Fatal(err)
		}
		s, err := server.New(server.Config{Index: restricted, Cells: cells})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(s.Handler())
		t.Cleanup(func() { hs.Close(); s.Close() })
		return hs
	}
	shardA := mkShard([]int{0, 1})
	shardB := mkShard([]int{2, 3})
	router := newRouter(t, 4, [][]string{{shardA.URL}, {shardB.URL}}, nil)

	result, err := router.SwapAll(context.Background(), path)
	if err != nil {
		t.Fatalf("fleet swap: %v", err)
	}
	if !result.Committed || len(result.Endpoints) != 2 {
		t.Fatalf("fleet swap result %+v, want committed on 2 endpoints", result)
	}

	// After the swap, the router must answer from the new snapshot,
	// bit-identically to a single node holding it.
	queries := gen.Generate(4)
	for qi := 0; qi < 4; qi++ {
		q := queries.Row(qi)
		resp, err := router.Search(context.Background(), q, SearchOptions{K: 8, NProbe: 4})
		if err != nil {
			t.Fatal(err)
		}
		want, err := next.Search(context.Background(), q, 8, pqfastscan.WithNProbe(4))
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != len(want.Results) {
			t.Fatalf("post-swap query %d: %d results, want %d", qi, len(resp.Results), len(want.Results))
		}
		for i, w := range want.Results {
			if resp.Results[i].ID != w.ID || resp.Results[i].Distance != w.Distance {
				t.Fatalf("post-swap query %d rank %d: %+v, want %+v", qi, i, resp.Results[i], w)
			}
		}
	}
}

func TestFleetSwapAbortsOnPrepareFailure(t *testing.T) {
	full, queries := fullIndex(t)
	shardA := shardServer(t, full, []int{0, 1, 2, 3})

	// Shard B refuses /swap/prepare, as a shard with a missing or
	// corrupt snapshot file would.
	restrictedB, err := full.RestrictCells(4, 5, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := server.New(server.Config{Index: restrictedB, Cells: []int{4, 5, 6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	shardB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/swap/prepare" {
			http.Error(w, `{"error":"disk on fire"}`, http.StatusInternalServerError)
			return
		}
		srvB.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(func() { shardB.Close(); srvB.Close() })

	router := newRouter(t, 8, [][]string{{shardA.URL}, {shardB.URL}}, nil)

	// Give shard A a real, loadable snapshot so its prepare succeeds
	// and the abort path actually has something staged to discard.
	path := filepath.Join(t.TempDir(), "snap.idx")
	if err := full.Save(path); err != nil {
		t.Fatal(err)
	}
	liveBefore := queryLive(t, shardA.URL)
	result, err := router.SwapAll(context.Background(), path)
	if err == nil {
		t.Fatal("fleet swap succeeded although one prepare failed")
	}
	if result.Committed {
		t.Fatal("fleet swap reported committed after a prepare failure")
	}
	for _, es := range result.Endpoints {
		if es.Committed {
			t.Fatalf("endpoint %s committed during an aborted fleet swap", es.Endpoint)
		}
	}
	// Nothing changed on the healthy shard: same snapshot, and the
	// staged one was discarded (a direct commit now has nothing).
	if live := queryLive(t, shardA.URL); live != liveBefore {
		t.Fatalf("aborted swap changed shard A: live %d -> %d", liveBefore, live)
	}
	resp, err := http.Post(shardA.URL+"/swap/commit", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("commit after aborted fleet swap: status %d, want 409 (staged snapshot must be gone)", resp.StatusCode)
	}
	// And the fleet still answers queries.
	if _, err := router.Search(context.Background(), queries.Row(0), SearchOptions{K: 5, NProbe: 8}); err != nil {
		t.Fatalf("search after aborted swap: %v", err)
	}
}

func queryLive(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Live int `json:"live"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h.Live
}

// --- startup validation ------------------------------------------------

func TestNewRejectsBadShardMaps(t *testing.T) {
	full, _ := fullIndex(t)
	a := shardServer(t, full, []int{0, 1, 2, 3})
	b := shardServer(t, full, []int{4, 5, 6, 7})

	cases := []struct {
		name   string
		shards []ShardSpec
	}{
		{"gap", []ShardSpec{
			{Lo: 0, Hi: 3, Endpoints: []string{a.URL}},
			{Lo: 5, Hi: 7, Endpoints: []string{b.URL}},
		}},
		{"overlap", []ShardSpec{
			{Lo: 0, Hi: 4, Endpoints: []string{a.URL}},
			{Lo: 4, Hi: 7, Endpoints: []string{b.URL}},
		}},
		{"out of range", []ShardSpec{
			{Lo: 0, Hi: 3, Endpoints: []string{a.URL}},
			{Lo: 4, Hi: 9, Endpoints: []string{b.URL}},
		}},
		{"cell not served by shard", []ShardSpec{
			{Lo: 0, Hi: 4, Endpoints: []string{a.URL}}, // a serves only 0-3
			{Lo: 5, Hi: 7, Endpoints: []string{b.URL}},
		}},
	}
	for _, tc := range cases {
		if _, err := New(Config{Shards: tc.shards}); err == nil {
			t.Fatalf("%s: New accepted an invalid shard map", tc.name)
		}
	}
}

func TestNewRejectsMismatchedGeometry(t *testing.T) {
	full, _ := fullIndex(t)
	a := shardServer(t, full, []int{0, 1, 2, 3})

	// A shard from a different build: same shape, different centroids.
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 77})
	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = 8
	other, err := pqfastscan.Build(gen.Generate(2000), gen.Generate(4000), opt)
	if err != nil {
		t.Fatal(err)
	}
	b := shardServer(t, other, []int{4, 5, 6, 7})

	_, err = New(Config{Shards: []ShardSpec{
		{Lo: 0, Hi: 3, Endpoints: []string{a.URL}},
		{Lo: 4, Hi: 7, Endpoints: []string{b.URL}},
	}})
	if err == nil {
		t.Fatal("New accepted shards serving different snapshots")
	}
}

// TestRouterHandlerContract smoke-tests the HTTP surface: healthz,
// readyz flipping on drain, stats accounting, validation statuses.
func TestRouterHandlerContract(t *testing.T) {
	full, queries := fullIndex(t)
	a := shardServer(t, full, []int{0, 1, 2, 3})
	b := shardServer(t, full, []int{4, 5, 6, 7})
	router := newRouter(t, 8, [][]string{{a.URL}, {b.URL}}, nil)
	handler := router.Handler()

	get := func(path string) int {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code
	}
	if st := get("/healthz"); st != http.StatusOK {
		t.Fatalf("healthz: %d", st)
	}
	if st := get("/readyz"); st != http.StatusOK {
		t.Fatalf("readyz: %d", st)
	}

	if st, _, body := routerSearch(t, handler, server.SearchRequest{Query: queries.Row(0), K: 5, NProbe: 3}); st != http.StatusOK {
		t.Fatalf("search: %d (%s)", st, body)
	}
	if st, _, _ := routerSearch(t, handler, server.SearchRequest{Query: []float32{1, 2}, K: 5}); st != http.StatusBadRequest {
		t.Fatalf("bad dim: status %d, want 400", st)
	}
	if st, _, _ := routerSearch(t, handler, server.SearchRequest{Query: queries.Row(0), K: 5, NProbe: 99}); st != http.StatusBadRequest {
		t.Fatalf("bad nprobe: status %d, want 400", st)
	}

	var stats RouterStats
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Queries < 1 || stats.Rejected < 2 || len(stats.Shards) != 2 {
		t.Fatalf("stats accounting off: %+v", stats)
	}

	router.BeginDrain()
	if st := get("/readyz"); st != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", st)
	}
	if st := get("/healthz"); st != http.StatusOK {
		t.Fatalf("healthz during drain: %d, want 200", st)
	}
}

// TestExplicitCellsThroughRouter: a router accepts explicit cell lists
// too (it is a drop-in superset of a node), groups them by shard and
// still matches the single-node answer.
func TestExplicitCellsThroughRouter(t *testing.T) {
	full, queries := fullIndex(t)
	a := shardServer(t, full, []int{0, 1, 2, 3})
	b := shardServer(t, full, []int{4, 5, 6, 7})
	router := newRouter(t, 8, [][]string{{a.URL}, {b.URL}}, nil)

	q := queries.Row(3)
	cells := []int{6, 1, 4} // crosses both shards, out of rank order
	resp, err := router.Search(context.Background(), q, SearchOptions{K: 7, Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Search(context.Background(), q, 7, pqfastscan.WithCells(cells...))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(want.Results) {
		t.Fatalf("%d results, want %d", len(resp.Results), len(want.Results))
	}
	for i, w := range want.Results {
		if resp.Results[i].ID != w.ID || resp.Results[i].Distance != w.Distance {
			t.Fatalf("rank %d: %+v, want %+v", i, resp.Results[i], w)
		}
	}
	for i, c := range cells {
		if resp.Partitions[i] != c {
			t.Fatalf("probe list %v, want %v", resp.Partitions, cells)
		}
	}
}
