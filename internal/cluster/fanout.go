// Scatter-gather execution: per-shard sub-requests with failover and
// hedging, and the deterministic cross-shard merge.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pqfastscan/internal/server"
	"pqfastscan/internal/topk"
)

// validationError marks a request rejected before any fanout — the
// router's handler maps it to 400, everything else to 502.
type validationError struct{ msg string }

func (e *validationError) Error() string { return e.msg }

func validationErrorf(format string, args ...any) error {
	return &validationError{msg: fmt.Sprintf(format, args...)}
}

// counter is a tiny named atomic for per-shard stats.
type counter struct{ v atomic.Int64 }

func (c *counter) Add(n int64) { c.v.Add(n) }
func (c *counter) Load() int64 { return c.v.Load() }

// atomicMeta publishes the fleet geometry: readers (every query) load
// it lock-free; a fleet swap republishes it wholesale.
type atomicMeta struct{ p atomic.Pointer[fleetMeta] }

func (m *atomicMeta) load() *fleetMeta   { return m.p.Load() }
func (m *atomicMeta) store(f *fleetMeta) { m.p.Store(f) }

// SearchOptions parameterizes one routed query. Zero values select the
// single-node defaults: K 10, NProbe 1, the engine's default kernel.
type SearchOptions struct {
	K      int
	NProbe int
	Cells  []int // explicit probe set; mutually exclusive with NProbe
	Kernel string
}

// Search answers one query over the whole fleet: rank cells, fan the
// probe set out to the owning shards, merge. The response has exactly
// the shape and content a single node holding all cells would return.
func (r *Router) Search(ctx context.Context, query []float32, opt SearchOptions) (*server.SearchResponse, error) {
	meta := r.meta.load()
	if len(query) != meta.dim {
		return nil, validationErrorf("cluster: query dim %d != index dim %d", len(query), meta.dim)
	}
	if opt.K == 0 {
		opt.K = 10
	}
	if opt.K < 0 || opt.K > r.cfg.MaxK {
		return nil, validationErrorf("cluster: k must be in [1,%d]", r.cfg.MaxK)
	}
	if len(opt.Cells) > 0 {
		if opt.NProbe != 0 {
			return nil, validationErrorf("cluster: cells and nprobe are mutually exclusive")
		}
		seen := make(map[int]bool, len(opt.Cells))
		for _, c := range opt.Cells {
			if c < 0 || c >= meta.partitions {
				return nil, validationErrorf("cluster: cell %d out of range [0,%d)", c, meta.partitions)
			}
			if seen[c] {
				return nil, validationErrorf("cluster: cell %d listed twice", c)
			}
			seen[c] = true
		}
	} else {
		if opt.NProbe == 0 {
			opt.NProbe = 1
		}
		if opt.NProbe < 1 || opt.NProbe > meta.partitions {
			return nil, validationErrorf("cluster: nprobe must be in [1,%d]", meta.partitions)
		}
	}

	probe, byShard := r.probeSet(query, opt.NProbe, opt.Cells)
	ids := shardIDs(byShard)

	// Fan out. Every shard sub-request asks for the full k: the global
	// top k can come entirely from one shard's cells, so nothing less is
	// sound.
	lists := make([][]topk.Result, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, si := range ids {
		wg.Add(1)
		go func(i, si int) {
			defer wg.Done()
			resp, err := r.shardSearch(ctx, r.shards[si], server.SearchRequest{
				Query:  query,
				K:      opt.K,
				Cells:  byShard[si],
				Kernel: opt.Kernel,
			})
			if err != nil {
				errs[i] = fmt.Errorf("shard %d (cells %v): %w", si, byShard[si], err)
				return
			}
			list := make([]topk.Result, len(resp.Results))
			for j, n := range resp.Results {
				list[j] = topk.Result{ID: n.ID, Distance: n.Distance}
			}
			lists[i] = list
		}(i, si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	merged := topk.MergeResults(opt.K, lists...)
	resp := &server.SearchResponse{
		Results:    make([]server.SearchNeighbor, len(merged)),
		Partitions: probe,
	}
	for i, m := range merged {
		resp.Results[i] = server.SearchNeighbor{ID: m.ID, Distance: m.Distance}
	}
	return resp, nil
}

// shardSearch runs one shard sub-request with failover and hedging.
// The primary is asked first; an error moves on to the next replica
// immediately (failover), and a primary that is merely slow gets a
// replica launched beside it after HedgeDelay (hedge) — first success
// wins, the loser's response is discarded. The whole attempt shares one
// ShardTimeout budget.
func (r *Router) shardSearch(ctx context.Context, sh *shard, req server.SearchRequest) (*server.SearchResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
	defer cancel()
	start := time.Now()

	type outcome struct {
		resp *server.SearchResponse
		err  error
	}
	results := make(chan outcome, len(sh.spec.Endpoints))
	launched, failed := 0, 0
	launch := func() {
		ep := sh.spec.Endpoints[launched]
		launched++
		go func() {
			var out server.SearchResponse
			err := r.postJSON(ctx, ep+"/search", req, &out)
			results <- outcome{&out, err}
		}()
	}
	launch()

	var hedge <-chan time.Time
	if len(sh.spec.Endpoints) > 1 && r.cfg.HedgeDelay > 0 {
		t := time.NewTimer(r.cfg.HedgeDelay)
		defer t.Stop()
		hedge = t.C
	}

	var firstErr error
	for {
		select {
		case o := <-results:
			if o.err == nil {
				sh.requests.Observe(time.Since(start))
				return o.resp, nil
			}
			failed++
			if firstErr == nil {
				firstErr = o.err
			}
			if launched < len(sh.spec.Endpoints) {
				sh.failovers.Add(1)
				r.metrics.failovers.Add(1)
				launch()
			} else if failed == launched {
				return nil, firstErr
			}
		case <-hedge:
			hedge = nil
			if launched < len(sh.spec.Endpoints) {
				sh.hedges.Add(1)
				r.metrics.hedges.Add(1)
				launch()
			}
		case <-ctx.Done():
			if firstErr != nil {
				return nil, fmt.Errorf("%w (after %v)", firstErr, ctx.Err())
			}
			return nil, ctx.Err()
		}
	}
}

// httpStatusError lets callers distinguish a shard that answered with
// an HTTP error (carrying its status and body) from a transport error.
type httpStatusError struct {
	status int
	body   string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("status %d: %s", e.status, e.body)
}

// postJSON posts body to url and decodes a 200 reply into out.
func (r *Router) postJSON(ctx context.Context, url string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return r.doJSON(req, out)
}

// getJSON fetches url and decodes a 200 reply into out.
func (r *Router) getJSON(url string, out any) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return r.doJSON(req, out)
}

func (r *Router) doJSON(req *http.Request, out any) error {
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return &httpStatusError{status: resp.StatusCode, body: string(bytes.TrimSpace(data))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}
