// Scatter-gather execution: per-shard sub-requests with failover and
// hedging, and the deterministic cross-shard merge.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pqfastscan/internal/server"
	"pqfastscan/internal/topk"
)

// validationError marks a request rejected before any fanout — the
// router's handler maps it to 400, everything else to 502.
type validationError struct{ msg string }

func (e *validationError) Error() string { return e.msg }

func validationErrorf(format string, args ...any) error {
	return &validationError{msg: fmt.Sprintf(format, args...)}
}

// counter is a tiny named atomic for per-shard stats.
type counter struct{ v atomic.Int64 }

func (c *counter) Add(n int64) { c.v.Add(n) }
func (c *counter) Load() int64 { return c.v.Load() }

// atomicMeta publishes the fleet geometry: readers (every query) load
// it lock-free; a fleet swap republishes it wholesale.
type atomicMeta struct{ p atomic.Pointer[fleetMeta] }

func (m *atomicMeta) load() *fleetMeta   { return m.p.Load() }
func (m *atomicMeta) store(f *fleetMeta) { m.p.Store(f) }

// SearchOptions parameterizes one routed query. Zero values select the
// single-node defaults: K 10, NProbe 1, the engine's default kernel.
type SearchOptions struct {
	K      int
	NProbe int
	Cells  []int // explicit probe set; mutually exclusive with NProbe
	Kernel string
	// Auto plans the query adaptively: sub-requests carry ?auto=1, so
	// each shard plans kernel/backend/parallelism locally for its pinned
	// cell share — its own cost observations, its own hardware. The
	// probe set itself is chosen here (explicitly, or via Recall), so
	// the merge stays bit-identical to a single node's.
	Auto bool
	// Recall, in (0,1], maps to a probe-prefix length over the fleet's
	// cell sizes — the same live-mass rule a single node's planner
	// applies (DESIGN.md §16). Implies Auto. An explicit NProbe or
	// Cells wins, exactly as WithNProbe beats WithTargetRecall on a
	// single node.
	Recall float64
	// AllowPartial degrades instead of failing when shards are down:
	// the merge runs over whichever shards answered (at least one must)
	// and the response's Coverage field reports the shortfall.
	AllowPartial bool
}

// Search answers one query over the whole fleet: rank cells, fan the
// probe set out to the owning shards, merge. The response has exactly
// the shape and content a single node holding all cells would return.
func (r *Router) Search(ctx context.Context, query []float32, opt SearchOptions) (*server.SearchResponse, error) {
	meta := r.meta.load()
	if len(query) != meta.dim {
		return nil, validationErrorf("cluster: query dim %d != index dim %d", len(query), meta.dim)
	}
	if opt.K == 0 {
		opt.K = 10
	}
	if opt.K < 0 || opt.K > r.cfg.MaxK {
		return nil, validationErrorf("cluster: k must be in [1,%d]", r.cfg.MaxK)
	}
	if opt.Recall != 0 {
		if !(opt.Recall > 0 && opt.Recall <= 1) {
			return nil, validationErrorf("cluster: recall must be in (0,1], got %g", opt.Recall)
		}
		// The recall target picks nprobe only when routing is open —
		// explicit nprobe or cells win, matching single-node semantics.
		if opt.NProbe == 0 && len(opt.Cells) == 0 {
			opt.NProbe = r.recallNProbe(query, opt.Recall)
		}
	}
	if len(opt.Cells) > 0 {
		if opt.NProbe != 0 {
			return nil, validationErrorf("cluster: cells and nprobe are mutually exclusive")
		}
		seen := make(map[int]bool, len(opt.Cells))
		for _, c := range opt.Cells {
			if c < 0 || c >= meta.partitions {
				return nil, validationErrorf("cluster: cell %d out of range [0,%d)", c, meta.partitions)
			}
			if seen[c] {
				return nil, validationErrorf("cluster: cell %d listed twice", c)
			}
			seen[c] = true
		}
	} else {
		if opt.NProbe == 0 {
			opt.NProbe = 1
		}
		if opt.NProbe < 1 || opt.NProbe > meta.partitions {
			return nil, validationErrorf("cluster: nprobe must be in [1,%d]", meta.partitions)
		}
	}

	probe, byShard := r.probeSet(query, opt.NProbe, opt.Cells)
	ids := shardIDs(byShard)

	// Fan out. Every shard sub-request asks for the full k: the global
	// top k can come entirely from one shard's cells, so nothing less is
	// sound.
	// Planned queries forward ?auto=1: the shard plans kernel and
	// backend for its cell share from its own cost observations. The
	// cells are pinned by the sub-request, so shard-local planning
	// cannot change the probe set — only how fast it is scanned.
	subQuery := ""
	if opt.Auto || opt.Recall > 0 {
		subQuery = "?auto=1"
	}
	lists := make([][]topk.Result, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, si := range ids {
		wg.Add(1)
		go func(i, si int) {
			defer wg.Done()
			resp, err := r.shardSearch(ctx, r.shards[si], subQuery, server.SearchRequest{
				Query:  query,
				K:      opt.K,
				Cells:  byShard[si],
				Kernel: opt.Kernel,
			})
			if err != nil {
				errs[i] = fmt.Errorf("shard %d (cells %v): %w", si, byShard[si], err)
				return
			}
			list := make([]topk.Result, len(resp.Results))
			for j, n := range resp.Results {
				list[j] = topk.Result{ID: n.ID, Distance: n.Distance}
			}
			lists[i] = list
		}(i, si)
	}
	wg.Wait()
	allowPartial := opt.AllowPartial || r.cfg.AllowPartial
	answered := 0 // probe cells whose shard replied
	okShards := 0
	for i, si := range ids {
		if errs[i] == nil {
			answered += len(byShard[si])
			okShards++
		}
	}
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !allowPartial || okShards == 0 {
			return nil, err
		}
		r.cfg.Logf("cluster: partial result: %v", err)
	}

	merged := topk.MergeResults(opt.K, lists...)
	resp := &server.SearchResponse{
		Results:    make([]server.SearchNeighbor, len(merged)),
		Partitions: probe,
	}
	if answered < len(probe) {
		r.metrics.partials.Add(1)
		resp.Coverage = &server.Coverage{CellsAnswered: answered, CellsTotal: len(probe)}
	}
	for i, m := range merged {
		resp.Results[i] = server.SearchNeighbor{ID: m.ID, Distance: m.Distance}
	}
	return resp, nil
}

// errAllTripped fails an attempt fast when every candidate endpoint is
// refused by its circuit breaker: no network I/O is spent on a shard
// known to be dark. The retry budget's backoff rounds keep re-asking,
// so the first breaker to reach half-open admits a probe and recovery
// happens inside the same query when the cooldown allows it.
var errAllTripped = errors.New("cluster: circuit open: every endpoint tripped or quarantined")

// shardSearch runs one shard sub-request under a bounded retry budget.
// Candidates are the shard's endpoints minus quarantined ones (unless
// that empties the list) and minus those whose circuit breaker refuses.
// The primary is asked first; an error moves on to the next replica
// immediately (failover), and a primary that is merely slow gets a
// replica launched beside it after HedgeDelay (hedge) — first success
// wins, the loser's response is discarded. Once every endpoint has been
// tried, remaining budget re-cycles the list with exponential backoff
// and full jitter between rounds. Everything shares one ShardTimeout
// deadline; individual attempts additionally run under an adaptive
// timeout derived from the endpoint's latency EWMA, and nothing is
// launched after the context is done.
func (r *Router) shardSearch(ctx context.Context, sh *shard, subQuery string, req server.SearchRequest) (*server.SearchResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
	defer cancel()
	start := time.Now()

	eps := sh.spec.Endpoints
	maxAttempts := r.cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = len(eps) + 2
	}

	type outcome struct {
		resp *server.SearchResponse
		err  error
	}
	results := make(chan outcome, maxAttempts)
	wake := make(chan struct{}, 1)
	launched, inflight := 0, 0
	retryPending := false
	// pick rotates from the failover cursor preferring live endpoints:
	// pass 0 skips quarantined ones, pass 1 admits them anyway (better
	// a long-shot attempt than none), and a breaker that refuses is
	// skipped in both passes. No admissible endpoint means fail fast.
	pick := func() (string, *endpointState, bool) {
		now := time.Now()
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < len(eps); i++ {
				ep := eps[(launched+i)%len(eps)]
				st := r.endpoints[ep]
				if st == nil {
					return ep, nil, true
				}
				if pass == 0 && st.quarantined.Load() {
					continue
				}
				if r.cfg.BreakerThreshold < 0 || st.breaker.Allow(now) {
					return ep, st, true
				}
			}
		}
		return "", nil, false
	}
	launch := func() {
		ep, st, ok := pick()
		launched++
		inflight++
		if !ok {
			r.metrics.breakerFastFails.Add(1)
			results <- outcome{nil, errAllTripped}
			return
		}
		go func() {
			attempt := r.cfg.ShardTimeout
			if st != nil {
				attempt = st.attemptTimeout(r.cfg.ShardTimeout)
			}
			actx, acancel := context.WithTimeout(ctx, attempt)
			t0 := time.Now()
			var out server.SearchResponse
			err := r.postJSON(actx, ep+"/search"+subQuery, req, &out)
			acancel()
			if st != nil {
				if err == nil {
					st.latency.Observe(time.Since(t0))
				}
				if r.cfg.BreakerThreshold >= 0 {
					switch {
					case err == nil:
						st.breaker.Success()
					case ctx.Err() != nil:
						// The sub-request as a whole was cancelled or
						// timed out around this attempt — a hedge
						// sibling won, or the caller's deadline fired.
						// That verdict is about the race, not the
						// endpoint: release any probe slot, count no
						// failure.
						st.breaker.Cancel()
					default:
						st.breaker.Failure(time.Now())
					}
				}
			}
			results <- outcome{&out, err}
		}()
	}
	launch()

	var hedge <-chan time.Time
	if len(eps) > 1 && r.cfg.HedgeDelay > 0 && maxAttempts > 1 {
		t := time.NewTimer(r.cfg.HedgeDelay)
		defer t.Stop()
		hedge = t.C
	}

	var firstErr error
	for {
		select {
		case o := <-results:
			inflight--
			if o.err == nil {
				sh.requests.Observe(time.Since(start))
				return o.resp, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			switch {
			case retryPending || launched >= maxAttempts:
				if inflight == 0 && !retryPending {
					return nil, firstErr
				}
			case launched < len(eps):
				// First pass: a fresh replica costs nothing to try now.
				sh.failovers.Add(1)
				r.metrics.failovers.Add(1)
				launch()
			default:
				// Repeat round: back off with full jitter so a fleet of
				// routers hammering a struggling shard spreads out.
				retryPending = true
				d := r.retryDelay(launched / len(eps))
				go func() {
					if r.cfg.sleep(ctx, d) {
						wake <- struct{}{}
					}
				}()
			}
		case <-wake:
			retryPending = false
			sh.retries.Add(1)
			r.metrics.retries.Add(1)
			launch()
		case <-hedge:
			hedge = nil
			if launched < len(eps) && launched < maxAttempts {
				sh.hedges.Add(1)
				r.metrics.hedges.Add(1)
				launch()
			}
		case <-ctx.Done():
			if firstErr != nil {
				return nil, fmt.Errorf("%w (after %v)", firstErr, ctx.Err())
			}
			return nil, ctx.Err()
		}
	}
}

// retryDelay computes the backoff before repeat round n (n >= 1): a
// uniform draw from [0, min(RetryBaseDelay<<(n-1), RetryMaxDelay)] —
// "full jitter", which spreads synchronized retriers across the whole
// window instead of clustering them at its edge.
func (r *Router) retryDelay(round int) time.Duration {
	if round < 1 {
		round = 1
	}
	d := r.cfg.RetryBaseDelay
	for i := 1; i < round && d < r.cfg.RetryMaxDelay; i++ {
		d <<= 1
	}
	if d > r.cfg.RetryMaxDelay {
		d = r.cfg.RetryMaxDelay
	}
	if d <= 0 {
		return 0
	}
	return time.Duration(r.cfg.jitter(int64(d) + 1))
}

// httpStatusError lets callers distinguish a shard that answered with
// an HTTP error (carrying its status and body) from a transport error.
type httpStatusError struct {
	status int
	body   string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("status %d: %s", e.status, e.body)
}

// postJSON posts body to url and decodes a 200 reply into out. When
// ctx carries a deadline, the remaining budget is forwarded as a
// relative X-Pq-Deadline-Ms header (relative, so clock skew between
// router and shard cannot corrupt it) and already-expired work is
// rejected here without touching the network.
func (r *Router) postJSON(ctx context.Context, url string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms <= 0 {
			return context.DeadlineExceeded
		}
		req.Header.Set(server.DeadlineHeader, strconv.FormatInt(ms, 10))
	}
	return r.doJSON(req, out)
}

// getJSON fetches url and decodes a 200 reply into out.
func (r *Router) getJSON(url string, out any) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return r.doJSON(req, out)
}

func (r *Router) doJSON(req *http.Request, out any) error {
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return &httpStatusError{status: resp.StatusCode, body: string(bytes.TrimSpace(data))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}
