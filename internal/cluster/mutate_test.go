package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pqfastscan"
	"pqfastscan/internal/faultnet"
	"pqfastscan/internal/server"
)

// --- failure classification ---------------------------------------------

func TestAmbiguousOutcomeClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"dial refused is unambiguous", &net.OpError{Op: "dial", Net: "tcp", Err: errors.New("connection refused")}, false},
		{"read reset is ambiguous", &net.OpError{Op: "read", Net: "tcp", Err: errors.New("connection reset by peer")}, true},
		{"unexpected EOF is ambiguous", io.ErrUnexpectedEOF, true},
		{"deadline in flight is ambiguous", context.DeadlineExceeded, true},
		{"http status answer is unambiguous", &httpStatusError{status: 500, body: "boom"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ambiguousOutcome(tc.err); got != tc.want {
				t.Fatalf("ambiguousOutcome(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}

// --- routed mutations ---------------------------------------------------

func TestAddAndDeleteThroughRouter(t *testing.T) {
	full, _ := fullIndex(t)
	s1 := shardServer(t, full, []int{0, 1, 2, 3})
	s2 := shardServer(t, full, []int{4, 5, 6, 7})
	router := newRouter(t, 8, [][]string{{s1.URL}, {s2.URL}}, nil)
	handler := router.Handler()

	// New vectors drawn from the same distribution as the corpus, so
	// their nearest cells spread across both shards.
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 97})
	vecs := gen.Generate(16)
	add := server.AddRequest{Vectors: make([][]float32, vecs.Rows())}
	for i := range add.Vectors {
		add.Vectors[i] = vecs.Row(i)
	}
	raw, _ := json.Marshal(add)
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/add", bytes.NewReader(raw)))
	if rec.Code != http.StatusOK {
		t.Fatalf("/add status %d: %s", rec.Code, rec.Body.String())
	}
	var ar server.AddResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.IDs) != len(add.Vectors) {
		t.Fatalf("/add returned %d ids for %d vectors", len(ar.IDs), len(add.Vectors))
	}

	// Delete one of the new ids: the router broadcasts to primaries and
	// reports success if any shard held it.
	del, _ := json.Marshal(server.DeleteRequest{ID: ar.IDs[0]})
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/delete", bytes.NewReader(del)))
	if rec.Code != http.StatusOK {
		t.Fatalf("/delete status %d: %s", rec.Code, rec.Body.String())
	}

	// Deleting it again finds it nowhere: 404.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/delete", bytes.NewReader(del)))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("second /delete status %d, want 404: %s", rec.Code, rec.Body.String())
	}
}

// TestMutationNotResentAfterAmbiguousFailure is the satellite
// regression test: a shard that accepts /add and then kills the
// connection mid-response leaves the outcome unknown. The router must
// attempt the mutation exactly once and answer with the typed
// "outcome unknown" error — never re-send it.
func TestMutationNotResentAfterAmbiguousFailure(t *testing.T) {
	full, _ := fullIndex(t)
	cells := []int{0, 1, 2, 3, 4, 5, 6, 7}
	restricted, err := full.RestrictCells(cells...)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := server.New(server.Config{Index: restricted, Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inner.Close() })

	var addAttempts atomic.Int64
	sabotaged := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/add" {
			addAttempts.Add(1)
			// Read the request fully (it arrived), then sever the
			// connection before any response byte: a reset
			// mid-response, the canonically ambiguous failure.
			io.Copy(io.Discard, r.Body)
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("recorder does not support hijack")
				return
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		inner.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(sabotaged.Close)

	router := newRouter(t, 8, [][]string{{sabotaged.URL}}, func(c *Config) {
		c.MaxAttempts = 5 // budget exists — the point is it must not be used
		c.sleep = func(ctx context.Context, d time.Duration) bool { return true }
		c.jitter = func(n int64) int64 { return 0 }
	})

	vec := make([]float32, router.Dim())
	_, err = router.Add(context.Background(), [][]float32{vec})
	if err == nil {
		t.Fatal("want error from sabotaged /add")
	}
	var ae *AmbiguousError
	if !errors.As(err, &ae) {
		t.Fatalf("error is %T (%v), want *AmbiguousError", err, err)
	}
	if got := addAttempts.Load(); got != 1 {
		t.Fatalf("shard saw %d /add attempts, want exactly 1 (ambiguous failures must not be re-sent)", got)
	}

	// The handler surfaces it as 502 with an explicit unknown outcome.
	raw, _ := json.Marshal(server.AddRequest{Vectors: [][]float32{vec}})
	rec := httptest.NewRecorder()
	router.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/add", bytes.NewReader(raw)))
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("/add status %d, want 502: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"outcome":"unknown"`) {
		t.Fatalf("/add error body must mark the outcome unknown: %s", rec.Body.String())
	}
	if router.metrics.ambiguous.Load() == 0 {
		t.Fatal("ambiguous-mutation counter did not move")
	}
}

// TestMutationRetriedAfterUnambiguousFailure: dial-class failures prove
// the request never reached the shard, so the mutation budget may
// re-send. faultnet's Drop fabricates exactly that.
func TestMutationRetriedAfterUnambiguousFailure(t *testing.T) {
	full, _ := fullIndex(t)
	s1 := shardServer(t, full, []int{0, 1, 2, 3, 4, 5, 6, 7})

	ft := faultnet.New(nil, 7, faultnet.Rule{Kind: faultnet.KindDrop, Target: "/add"})
	router := newRouter(t, 8, [][]string{{s1.URL}}, func(c *Config) {
		c.Client = &http.Client{Transport: ft}
		c.MaxAttempts = 3
		c.sleep = func(ctx context.Context, d time.Duration) bool { return true }
		c.jitter = func(n int64) int64 { return 0 }
	})

	vec := make([]float32, router.Dim())
	_, err := router.Add(context.Background(), [][]float32{vec})
	if err == nil {
		t.Fatal("want error while every /add is dropped")
	}
	var ae *AmbiguousError
	if errors.As(err, &ae) {
		t.Fatalf("drop-before-send must not classify as ambiguous: %v", err)
	}
	if got := ft.Stats().Drops; got != 3 {
		t.Fatalf("transport saw %d dropped attempts, want 3 (unambiguous failures are retried up to MaxAttempts)", got)
	}
}
