// Package cluster is the scatter-gather serving layer over a fleet of
// pqserve shards (DESIGN.md §13). A Router owns a shard map keyed by
// IVF coarse-cell ranges: because the paper's index is already
// partitioned by the coarse quantizer (Algorithm 1 step 1 routes a
// query to cells before any scanning), the natural shard key is the
// cell id — a shard is simply a pqserve process that loaded a subset of
// the cells from the same snapshot file.
//
// The bit-identical guarantee. For every query the router runs the same
// cell ranking the engine runs (index.RankCells over the coarse
// centroids fetched from /meta, ties broken by cell id), takes the top
// nprobe cells, and sends each shard exactly its share of that probe
// set as an explicit cell list. Each shard scans those cells against
// the same snapshot data a single node would hold, and the router's
// merge (topk.MergeResults) retains the k smallest (distance, id) pairs
// of the deduplicated union — which is precisely the retained set of a
// single node's bounded heap over the union of the same cells. Results,
// distances and probe order are therefore identical to a single-node
// query, regardless of shard count, shard order, or replica failover.
//
// Availability. Each shard may list replica endpoints after its
// primary. A sub-request that errors fails over to the next replica,
// and a primary that is merely slow is hedged: after HedgeDelay the
// router also asks a replica and takes whichever answers first.
// Duplicate ids from a hedge race are collapsed by the merge. Once the
// endpoint list is exhausted the router keeps trying under a bounded
// retry budget — exponential backoff with full jitter, capped by
// MaxAttempts and the per-query ShardTimeout, never after the caller's
// context is done. When even that fails, a query that opted in
// (?partial=1, or a router running -allow-partial) degrades instead of
// erroring: the surviving shards' results are merged and the response
// carries a coverage field naming how many probe cells answered.
package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pqfastscan/internal/hist"
	"pqfastscan/internal/index"
	"pqfastscan/internal/server"
	"pqfastscan/internal/vec"
)

// ShardSpec assigns an inclusive range of IVF cells to an ordered list
// of endpoints: the primary first, read replicas after it.
type ShardSpec struct {
	Lo, Hi    int
	Endpoints []string
}

// String renders the spec in the form ParseShardSpec accepts.
func (s ShardSpec) String() string {
	return fmt.Sprintf("%d-%d=%s", s.Lo, s.Hi, strings.Join(s.Endpoints, ","))
}

// ParseShardSpec parses "LO-HI=URL[,URL...]" (or "CELL=URL" for a
// single-cell shard): the cell range this shard serves and its
// endpoints, primary first.
func ParseShardSpec(spec string) (ShardSpec, error) {
	cells, urls, ok := strings.Cut(spec, "=")
	if !ok {
		return ShardSpec{}, fmt.Errorf("cluster: shard spec %q: want CELLS=URL[,URL...]", spec)
	}
	var out ShardSpec
	lo, hi, ranged := strings.Cut(cells, "-")
	var err error
	if out.Lo, err = strconv.Atoi(strings.TrimSpace(lo)); err != nil {
		return ShardSpec{}, fmt.Errorf("cluster: shard spec %q: bad cell range: %v", spec, err)
	}
	out.Hi = out.Lo
	if ranged {
		if out.Hi, err = strconv.Atoi(strings.TrimSpace(hi)); err != nil {
			return ShardSpec{}, fmt.Errorf("cluster: shard spec %q: bad cell range: %v", spec, err)
		}
	}
	if out.Lo < 0 || out.Hi < out.Lo {
		return ShardSpec{}, fmt.Errorf("cluster: shard spec %q: cell range %d-%d is empty or negative", spec, out.Lo, out.Hi)
	}
	for _, u := range strings.Split(urls, ",") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		out.Endpoints = append(out.Endpoints, u)
	}
	if len(out.Endpoints) == 0 {
		return ShardSpec{}, fmt.Errorf("cluster: shard spec %q: no endpoints", spec)
	}
	return out, nil
}

// Cells expands the spec's range into the explicit cell list.
func (s ShardSpec) Cells() []int {
	out := make([]int, 0, s.Hi-s.Lo+1)
	for c := s.Lo; c <= s.Hi; c++ {
		out = append(out, c)
	}
	return out
}

// Config configures a Router. Shards is required; zero-valued tuning
// fields select defaults.
type Config struct {
	// Shards is the cluster map. The ranges must tile [0, partitions)
	// exactly — every cell served by exactly one shard — which New
	// verifies against the fleet's /meta.
	Shards []ShardSpec

	// ShardTimeout bounds one whole shard sub-request including every
	// failover and retry attempt (default 10s).
	ShardTimeout time.Duration
	// HedgeDelay is how long the router waits on a shard's primary
	// before also asking a replica (default 50ms; negative disables
	// hedging, leaving failover on error only).
	HedgeDelay time.Duration
	// MaxAttempts caps sub-request attempts per shard per query. The
	// first pass cycles the endpoint list with immediate failover; any
	// budget beyond that re-tries endpoints under exponential backoff
	// with full jitter. Default: the shard's endpoint count plus two
	// retries, so a transient blip on every replica does not fail the
	// query outright.
	MaxAttempts int
	// RetryBaseDelay seeds the backoff for repeat rounds: round r waits
	// a uniform duration in [0, min(RetryBaseDelay<<(r-1),
	// RetryMaxDelay)) — full jitter, so a fleet of routers does not
	// retry in lockstep (default 5ms).
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps a single backoff wait (default 250ms).
	RetryMaxDelay time.Duration
	// AllowPartial makes every query tolerate shard failures by default,
	// as if it carried ?partial=1: surviving shards' results are merged
	// and the response reports coverage. Off, queries fail unless the
	// request itself opts in.
	AllowPartial bool
	// Auto plans every query adaptively by default, as if it carried
	// ?auto=1: the router maps a ?recall= target to a probe-prefix
	// length over the fleet's cell sizes (the same mass rule a single
	// node's planner applies, DESIGN.md §16) and forwards ?auto=1 on the
	// shard sub-requests, so each shard plans kernel and backend locally
	// for its pinned cell share. Individual requests opt out with
	// ?auto=0.
	Auto bool
	// MaxK rejects requests asking for more neighbors than this
	// (default 1000).
	MaxK int
	// MaxBodyBytes caps a request body (default 8 MiB).
	MaxBodyBytes int64

	// BreakerThreshold is how many consecutive failures trip an
	// endpoint's circuit breaker open (default 5; negative disables
	// breakers entirely).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fails fast before
	// half-open admits a single probe request (default 1s).
	BreakerCooldown time.Duration

	// ProbeInterval enables the background health prober: every
	// interval each distinct endpoint's /readyz is checked, failing
	// endpoints are quarantined out of the candidate set, and
	// recovered ones reinstated. Zero disables probing (library and
	// test default); cmd/pqrouter passes -probe-interval.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz check (default 500ms).
	ProbeTimeout time.Duration
	// QuarantineAfter is the consecutive probe failures that
	// quarantine an endpoint (default 3).
	QuarantineAfter int
	// ReinstateAfter is the consecutive probe successes that reinstate
	// a quarantined endpoint (default 2).
	ReinstateAfter int

	// Client overrides the HTTP client (tests inject httptest
	// transports). Defaults to a pooled transport sized for fanout.
	Client *http.Client

	// Logf, when set, receives operational log lines. Defaults to
	// discarding them.
	Logf func(format string, args ...any)

	// sleep and jitter are test seams: sleep waits d or until ctx is
	// done (reporting which), jitter draws a uniform int in [0, n).
	// Tests inject deterministic versions; production gets a timer and
	// math/rand.
	sleep  func(ctx context.Context, d time.Duration) bool
	jitter func(n int64) int64
}

func (c Config) withDefaults() Config {
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 10 * time.Second
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 50 * time.Millisecond
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 5 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = 250 * time.Millisecond
	}
	if c.sleep == nil {
		c.sleep = func(ctx context.Context, d time.Duration) bool {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return true
			case <-ctx.Done():
				return false
			}
		}
	}
	if c.jitter == nil {
		c.jitter = rand.Int63n
	}
	if c.MaxK <= 0 {
		c.MaxK = 1000
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 3
	}
	if c.ReinstateAfter <= 0 {
		c.ReinstateAfter = 2
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Transport: &http.Transport{
				// Fanout sends one request per shard per query; idle
				// pooling per endpoint is what keeps that from paying a
				// TCP handshake per sub-request.
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// fleetMeta is the geometry the fleet agreed on at startup (or after a
// fleet swap): everything the router needs to rank cells exactly as the
// engine does.
type fleetMeta struct {
	dim        int
	partitions int
	pqm        int
	coarse     vec.Matrix
	// cellSizes is the live row count per cell, each taken from the
	// shard that owns the cell — the mass signal behind ?recall=
	// planning. All zeros when the fleet predates /meta cell sizes,
	// which degrades recall targets to the single-probe default.
	cellSizes []int
}

// shard is one entry of the shard map plus its runtime counters.
type shard struct {
	spec  ShardSpec
	cells []int

	requests  hist.Hist // sub-request latency, successful tries
	failovers counter   // tries that moved on to the next endpoint
	hedges    counter   // replica requests launched by the hedge timer
	retries   counter   // backoff-delayed repeat attempts
}

// Router fans queries out over the shard map and merges their answers.
// Create with New, mount Handler behind an http.Server (cmd/pqrouter),
// or call Search directly.
type Router struct {
	cfg    Config
	shards []*shard
	byCell []int // cell id -> index into shards
	// endpoints holds per-endpoint health state (breaker, latency
	// EWMA, quarantine), shared across shards listing the same URL.
	// The map is built once in New and never mutated after — reads
	// are lock-free.
	endpoints map[string]*endpointState
	meta      atomicMeta
	metrics   *routerMetrics
	draining  atomic.Bool
	stop      chan struct{}
	stopOnce  sync.Once
	proberWG  sync.WaitGroup
}

// New validates the shard map against the live fleet and returns a
// ready Router. It requires every shard's /meta to agree on geometry
// (dim, partitions, PQ m, and bit-identical coarse centroids — without
// that, ranking is undefined) and the shard ranges to tile the cell
// space exactly.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:       cfg,
		metrics:   newRouterMetrics(),
		endpoints: make(map[string]*endpointState),
		stop:      make(chan struct{}),
	}
	for _, spec := range cfg.Shards {
		r.shards = append(r.shards, &shard{spec: spec, cells: spec.Cells()})
		for _, ep := range spec.Endpoints {
			if _, ok := r.endpoints[ep]; !ok {
				r.endpoints[ep] = &endpointState{
					url:     ep,
					breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
				}
			}
		}
	}
	if err := r.refreshMeta(); err != nil {
		return nil, err
	}
	if cfg.ProbeInterval > 0 {
		r.proberWG.Add(1)
		go r.probeLoop()
	}
	return r, nil
}

// Close stops the background health prober (a no-op when probing is
// disabled). The router remains usable for queries after Close.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.proberWG.Wait()
}

// refreshMeta fetches /meta from every shard, checks the fleet agrees,
// rebuilds the cell->shard table and publishes the geometry. Called at
// startup and again after a fleet swap (a new snapshot may carry new
// centroids even when it is swap-compatible).
func (r *Router) refreshMeta() error {
	var ref *server.MetaResponse
	metas := make([]*server.MetaResponse, len(r.shards))
	for si, sh := range r.shards {
		meta, ep, err := r.fetchMeta(sh)
		if err != nil {
			return fmt.Errorf("cluster: shard %d (%s): %w", si, sh.spec.String(), err)
		}
		metas[si] = meta
		if sh.spec.Hi >= meta.Partitions {
			return fmt.Errorf("cluster: shard %d range %d-%d exceeds %d partitions",
				si, sh.spec.Lo, sh.spec.Hi, meta.Partitions)
		}
		if meta.Cells != nil {
			held := make(map[int]bool, len(meta.Cells))
			for _, c := range meta.Cells {
				held[c] = true
			}
			for _, c := range sh.cells {
				if !held[c] {
					return fmt.Errorf("cluster: shard %d (%s) is assigned cell %d but does not serve it (serves %v)",
						si, ep, c, meta.Cells)
				}
			}
		}
		if ref == nil {
			ref = meta
			continue
		}
		if err := sameGeometry(ref, meta); err != nil {
			return fmt.Errorf("cluster: shard %d (%s) disagrees with shard 0: %w", si, ep, err)
		}
	}

	byCell := make([]int, ref.Partitions)
	for i := range byCell {
		byCell[i] = -1
	}
	for si, sh := range r.shards {
		for _, c := range sh.cells {
			if byCell[c] != -1 {
				return fmt.Errorf("cluster: cell %d assigned to shards %d and %d", c, byCell[c], si)
			}
			byCell[c] = si
		}
	}
	for c, si := range byCell {
		if si == -1 {
			return fmt.Errorf("cluster: cell %d not assigned to any shard", c)
		}
	}

	coarse := vec.NewMatrix(ref.Partitions, ref.Dim)
	for i, row := range ref.Centroids {
		copy(coarse.Row(i), row)
	}
	// Each cell's size comes from the shard that owns it: a shard reports
	// 0 for cells it does not hold, so only the owner's number is real.
	cellSizes := make([]int, ref.Partitions)
	for c, si := range byCell {
		if m := metas[si]; len(m.CellSizes) == ref.Partitions {
			cellSizes[c] = m.CellSizes[c]
		}
	}
	r.byCell = byCell
	r.meta.store(&fleetMeta{dim: ref.Dim, partitions: ref.Partitions, pqm: ref.PQM, coarse: coarse, cellSizes: cellSizes})
	return nil
}

// fetchMeta asks a shard's endpoints for /meta, in order, returning the
// first answer and the endpoint that gave it.
func (r *Router) fetchMeta(sh *shard) (*server.MetaResponse, string, error) {
	var lastErr error
	for _, ep := range sh.spec.Endpoints {
		var meta server.MetaResponse
		if err := r.getJSON(ep+"/meta", &meta); err != nil {
			lastErr = err
			continue
		}
		if len(meta.Centroids) != meta.Partitions {
			return nil, ep, fmt.Errorf("meta from %s: %d centroids for %d partitions", ep, len(meta.Centroids), meta.Partitions)
		}
		return &meta, ep, nil
	}
	return nil, "", fmt.Errorf("no endpoint answered /meta: %w", lastErr)
}

// sameGeometry verifies two /meta documents describe interchangeable
// engines: identical shape and bit-identical centroids. Float equality
// is intentional — the centroids came from the same snapshot file, so
// anything but exact agreement means the shards loaded different
// snapshots, and ranking (hence results) would silently diverge.
func sameGeometry(a, b *server.MetaResponse) error {
	if a.Dim != b.Dim || a.Partitions != b.Partitions || a.PQM != b.PQM {
		return fmt.Errorf("geometry mismatch: dim %d/%d, partitions %d/%d, pq_m %d/%d",
			a.Dim, b.Dim, a.Partitions, b.Partitions, a.PQM, b.PQM)
	}
	for i := range a.Centroids {
		if len(a.Centroids[i]) != len(b.Centroids[i]) {
			return fmt.Errorf("centroid %d length mismatch", i)
		}
		for j := range a.Centroids[i] {
			if a.Centroids[i][j] != b.Centroids[i][j] {
				return fmt.Errorf("centroid %d component %d differs: shards serve different snapshots", i, j)
			}
		}
	}
	return nil
}

// Partitions returns the fleet's cell count.
func (r *Router) Partitions() int { return r.meta.load().partitions }

// Dim returns the fleet's vector dimensionality.
func (r *Router) Dim() int { return r.meta.load().dim }

// probeSet returns the cells to scan for a query, in the engine's
// deterministic rank order, and groups them by owning shard preserving
// that order. Explicit cells skip ranking, exactly as on a single node.
func (r *Router) probeSet(query []float32, nprobe int, cells []int) (probe []int, byShard map[int][]int) {
	if len(cells) > 0 {
		probe = cells
	} else {
		probe = index.RankCells(query, r.meta.load().coarse)[:nprobe]
	}
	byShard = make(map[int][]int, len(r.shards))
	for _, c := range probe {
		si := r.byCell[c]
		byShard[si] = append(byShard[si], c)
	}
	return probe, byShard
}

// recallNProbe maps a recall target to a probe-prefix length exactly
// like a single node's planner does (DESIGN.md §16): walk the ranked
// cells until the probed cells hold at least fraction recall of the
// fleet's live mass. The ranking is the same RankCells order probeSet
// uses, so the resulting query is indistinguishable from one carrying
// that nprobe explicitly. Fleets that report no cell sizes degrade to
// the single-probe default deterministically.
func (r *Router) recallNProbe(query []float32, recall float64) int {
	meta := r.meta.load()
	total := 0
	for _, n := range meta.cellSizes {
		total += n
	}
	if total == 0 {
		return 1
	}
	need := recall * float64(total)
	mass, nprobe := 0.0, 0
	for _, c := range index.RankCells(query, meta.coarse) {
		nprobe++
		mass += float64(meta.cellSizes[c])
		if mass >= need {
			break
		}
	}
	return nprobe
}

// shardIDs returns the keys of a shard group in ascending order, so
// fanout work and error reporting are deterministic.
func shardIDs(byShard map[int][]int) []int {
	ids := make([]int, 0, len(byShard))
	for si := range byShard {
		ids = append(ids, si)
	}
	sort.Ints(ids)
	return ids
}
