package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pqfastscan/internal/server"
)

// --- quarantine state machine (driven directly) -------------------------

func TestQuarantineAndReinstate(t *testing.T) {
	full, _ := fullIndex(t)
	s1 := shardServer(t, full, []int{0, 1, 2, 3, 4, 5, 6, 7})
	r := newRouter(t, 8, [][]string{{s1.URL}}, nil)
	st := r.endpoints[s1.URL]
	probeErr := errors.New("probe: connection refused")

	// Failures below the threshold change nothing.
	r.recordProbe(st, probeErr)
	r.recordProbe(st, probeErr)
	if st.quarantined.Load() {
		t.Fatal("quarantined below QuarantineAfter")
	}
	// A success resets the failure streak.
	r.recordProbe(st, nil)
	r.recordProbe(st, probeErr)
	r.recordProbe(st, probeErr)
	if st.quarantined.Load() {
		t.Fatal("success must reset the consecutive-failure streak")
	}
	// The third consecutive failure quarantines (QuarantineAfter = 3).
	r.recordProbe(st, probeErr)
	if !st.quarantined.Load() {
		t.Fatal("not quarantined at QuarantineAfter consecutive failures")
	}
	if r.metrics.quarantines.Load() != 1 || st.quarantines.Load() != 1 {
		t.Fatalf("quarantine counters router=%d endpoint=%d, want 1/1",
			r.metrics.quarantines.Load(), st.quarantines.Load())
	}

	// While quarantined, trip the breaker too — reinstatement must clear it.
	for i := 0; i < r.cfg.BreakerThreshold; i++ {
		st.breaker.Failure(time.Now())
	}
	if st.breaker.State() != breakerOpen {
		t.Fatal("fixture: breaker should be open")
	}

	// One healthy probe is not enough (ReinstateAfter = 2)...
	r.recordProbe(st, nil)
	if !st.quarantined.Load() {
		t.Fatal("reinstated below ReinstateAfter")
	}
	// ...the second reinstates and resets the breaker.
	r.recordProbe(st, nil)
	if st.quarantined.Load() {
		t.Fatal("not reinstated at ReinstateAfter consecutive successes")
	}
	if r.metrics.reinstatements.Load() != 1 || st.reinstatements.Load() != 1 {
		t.Fatalf("reinstatement counters router=%d endpoint=%d, want 1/1",
			r.metrics.reinstatements.Load(), st.reinstatements.Load())
	}
	if st.breaker.State() != breakerClosed {
		t.Fatal("reinstatement must clear the endpoint's breaker")
	}
}

// --- background prober (integration) ------------------------------------

// TestProberQuarantinesAndReinstates wraps a healthy shard so its
// /readyz can be flipped to 503, and watches the background prober
// quarantine and later reinstate it.
func TestProberQuarantinesAndReinstates(t *testing.T) {
	full, queries := fullIndex(t)
	inner := shardServer(t, full, []int{0, 1, 2, 3, 4, 5, 6, 7})

	var sick atomic.Bool
	wrapped := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" && sick.Load() {
			http.Error(w, "sick", http.StatusServiceUnavailable)
			return
		}
		resp, err := http.Post(inner.URL+r.URL.Path, "application/json", r.Body)
		if r.Method == http.MethodGet {
			resp, err = http.Get(inner.URL + r.URL.Path)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		w.Write(buf.Bytes())
	}))
	t.Cleanup(wrapped.Close)

	r := newRouter(t, 8, [][]string{{wrapped.URL}}, func(c *Config) {
		c.ProbeInterval = 5 * time.Millisecond
		c.ProbeTimeout = 200 * time.Millisecond
		c.QuarantineAfter = 2
		c.ReinstateAfter = 2
	})
	t.Cleanup(r.Close)
	st := r.endpoints[wrapped.URL]

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	sick.Store(true)
	waitFor("quarantine", func() bool { return st.quarantined.Load() })

	// The sole endpoint is quarantined — queries still work, because
	// quarantine is a preference, not a verdict: when it would leave a
	// shard with no candidates, pass 1 admits the quarantined endpoint.
	status, _, body := routerSearch(t, r.Handler(), server.SearchRequest{Query: queries.Row(0), K: 5, NProbe: 2})
	if status != http.StatusOK {
		t.Fatalf("search with every endpoint quarantined: status %d: %s", status, body)
	}

	sick.Store(false)
	waitFor("reinstatement", func() bool { return !st.quarantined.Load() })
	if st.reinstatements.Load() == 0 {
		t.Fatal("reinstatement counter did not move")
	}
}

// TestQuarantinedPrimarySkippedWithoutFailover: the point of health-driven
// membership is that a query routed around a known-dead primary costs no
// failover — the first launch already goes to the live replica.
func TestQuarantinedPrimarySkippedWithoutFailover(t *testing.T) {
	full, queries := fullIndex(t)
	cells := []int{0, 1, 2, 3, 4, 5, 6, 7}
	primary := shardServer(t, full, cells)
	replica := shardServer(t, full, cells)
	r := newRouter(t, 8, [][]string{{primary.URL, replica.URL}}, nil)

	// Oracle answer while everything is healthy.
	_, want, _ := routerSearch(t, r.Handler(), server.SearchRequest{Query: queries.Row(0), K: 5, NProbe: 4})

	// Kill the primary and quarantine it (as the prober would).
	primary.Close()
	r.endpoints[primary.URL].quarantined.Store(true)

	status, got, body := routerSearch(t, r.Handler(), server.SearchRequest{Query: queries.Row(0), K: 5, NProbe: 4})
	if status != http.StatusOK {
		t.Fatalf("search with quarantined primary: status %d: %s", status, body)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("got %d results, want %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if got.Results[i] != want.Results[i] {
			t.Fatalf("rank %d: got %+v want %+v (quarantine rerouting must not change the answer)", i, got.Results[i], want.Results[i])
		}
	}
	if n := r.metrics.failovers.Load(); n != 0 {
		t.Fatalf("failovers = %d, want 0: a quarantined primary must be skipped at pick time, not discovered by a failed attempt", n)
	}
}

// --- /stats health surface ----------------------------------------------

func TestStatsExposeEndpointHealth(t *testing.T) {
	full, _ := fullIndex(t)
	cells := []int{0, 1, 2, 3, 4, 5, 6, 7}
	primary := shardServer(t, full, cells)
	replica := shardServer(t, full, cells)
	r := newRouter(t, 8, [][]string{{primary.URL, replica.URL}}, nil)

	// Manufacture state: quarantine the replica, trip the primary's breaker.
	rst := r.endpoints[replica.URL]
	rst.quarantined.Store(true)
	rst.quarantines.Add(1)
	pst := r.endpoints[primary.URL]
	for i := 0; i < r.cfg.BreakerThreshold; i++ {
		pst.breaker.Failure(time.Now())
	}

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats status %d", rec.Code)
	}
	var st RouterStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Endpoints) != 2 {
		t.Fatalf("stats list %d endpoints, want 2", len(st.Endpoints))
	}
	byURL := map[string]EndpointStats{}
	for _, es := range st.Endpoints {
		byURL[es.Endpoint] = es
	}
	if es := byURL[primary.URL]; es.Breaker != "open" || es.BreakerOpens != 1 {
		t.Fatalf("primary row = %+v, want breaker open with 1 trip", es)
	}
	if es := byURL[replica.URL]; !es.Quarantined || es.Quarantines != 1 {
		t.Fatalf("replica row = %+v, want quarantined with 1 event", es)
	}
	// The raw JSON carries the documented field names.
	for _, field := range []string{`"breaker"`, `"quarantined"`, `"breaker_fast_fails"`, `"deadline_rejects"`, `"ambiguous_mutations"`} {
		if !strings.Contains(rec.Body.String(), field) {
			t.Fatalf("/stats body is missing %s: %s", field, rec.Body.String())
		}
	}
}

// --- deadline propagation (router side) ---------------------------------

func TestRouterRejectsExpiredDeadline(t *testing.T) {
	full, queries := fullIndex(t)
	s1 := shardServer(t, full, []int{0, 1, 2, 3, 4, 5, 6, 7})
	r := newRouter(t, 8, [][]string{{s1.URL}}, nil)

	raw, _ := json.Marshal(server.SearchRequest{Query: queries.Row(0), K: 5})
	for _, budget := range []string{"0", "-10", "junk"} {
		req := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(raw))
		req.Header.Set(server.DeadlineHeader, budget)
		rec := httptest.NewRecorder()
		r.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusGatewayTimeout {
			t.Fatalf("budget %q: status %d, want 504: %s", budget, rec.Code, rec.Body.String())
		}
	}
	if got := r.metrics.deadlineRejects.Load(); got != 3 {
		t.Fatalf("deadline_rejects = %d, want 3", got)
	}
}

// TestDeadlineForwardedToShards: the client's remaining budget must ride
// every sub-request as a relative header, and a budget that expires
// mid-fanout must surface as 504, not 502.
func TestDeadlineForwardedToShards(t *testing.T) {
	full, queries := fullIndex(t)
	inner := shardServer(t, full, []int{0, 1, 2, 3, 4, 5, 6, 7})

	var sawBudget atomic.Int64 // last forwarded X-Pq-Deadline-Ms
	var stall atomic.Bool
	wrapped := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/search" {
			if v := r.Header.Get(server.DeadlineHeader); v != "" {
				if ms, err := strconv.ParseInt(v, 10, 64); err == nil {
					sawBudget.Store(ms)
				}
			}
			if stall.Load() {
				select {
				case <-time.After(2 * time.Second):
				case <-r.Context().Done():
					return
				}
			}
		}
		resp, err := http.Post(inner.URL+r.URL.Path, "application/json", r.Body)
		if r.Method == http.MethodGet {
			resp, err = http.Get(inner.URL + r.URL.Path)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		w.Write(buf.Bytes())
	}))
	t.Cleanup(wrapped.Close)

	r := newRouter(t, 8, [][]string{{wrapped.URL}}, nil)
	raw, _ := json.Marshal(server.SearchRequest{Query: queries.Row(0), K: 5, NProbe: 2})

	// A generous budget succeeds and arrives at the shard, shrunk by
	// however long the router spent before the sub-request.
	req := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(raw))
	req.Header.Set(server.DeadlineHeader, "5000")
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("search with live budget: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := sawBudget.Load(); got <= 0 || got > 5000 {
		t.Fatalf("shard saw forwarded budget %dms, want in (0, 5000]", got)
	}

	// A short budget against a stalled shard blows mid-fanout: 504.
	stall.Store(true)
	req = httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(raw))
	req.Header.Set(server.DeadlineHeader, "80")
	rec = httptest.NewRecorder()
	before := r.metrics.deadlineRejects.Load()
	r.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("search outliving its budget: status %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if r.metrics.deadlineRejects.Load() != before+1 {
		t.Fatal("mid-fanout deadline blow must count as a deadline reject")
	}
}
