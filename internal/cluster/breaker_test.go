package cluster

import (
	"context"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- breaker state machine (table-driven) -------------------------------

// step drives one breaker event; want is the expected state after it.
type breakerStep struct {
	at    time.Duration // event time relative to t0
	event string        // allow | allow-denied | success | failure | cancel
	want  breakerState
}

func TestBreakerStateMachine(t *testing.T) {
	t0 := time.Unix(1000, 0)
	const threshold = 3
	const cooldown = 100 * time.Millisecond

	cases := []struct {
		name  string
		steps []breakerStep
	}{
		{"stays closed below threshold", []breakerStep{
			{0, "failure", breakerClosed},
			{0, "failure", breakerClosed},
			{0, "success", breakerClosed},
			{0, "failure", breakerClosed},
			{0, "failure", breakerClosed},
		}},
		{"trips open at threshold", []breakerStep{
			{0, "failure", breakerClosed},
			{0, "failure", breakerClosed},
			{0, "failure", breakerOpen},
			{0, "allow-denied", breakerOpen},
		}},
		{"success resets the streak", []breakerStep{
			{0, "failure", breakerClosed},
			{0, "failure", breakerClosed},
			{0, "success", breakerClosed},
			{0, "failure", breakerClosed},
			{0, "failure", breakerClosed},
			{0, "failure", breakerOpen},
		}},
		{"cooldown admits a half-open probe", []breakerStep{
			{0, "failure", breakerClosed},
			{0, "failure", breakerClosed},
			{0, "failure", breakerOpen},
			{cooldown / 2, "allow-denied", breakerOpen},
			{cooldown, "allow", breakerHalfOpen},
		}},
		{"half-open probe success closes", []breakerStep{
			{0, "failure", breakerClosed},
			{0, "failure", breakerClosed},
			{0, "failure", breakerOpen},
			{cooldown, "allow", breakerHalfOpen},
			{cooldown, "success", breakerClosed},
			{cooldown, "allow", breakerClosed},
		}},
		{"half-open probe failure reopens", []breakerStep{
			{0, "failure", breakerClosed},
			{0, "failure", breakerClosed},
			{0, "failure", breakerOpen},
			{cooldown, "allow", breakerHalfOpen},
			{cooldown, "failure", breakerOpen},
			{cooldown + cooldown/2, "allow-denied", breakerOpen},
			{2 * cooldown, "allow", breakerHalfOpen},
		}},
		{"half-open admits exactly one probe", []breakerStep{
			{0, "failure", breakerClosed},
			{0, "failure", breakerClosed},
			{0, "failure", breakerOpen},
			{cooldown, "allow", breakerHalfOpen},
			{cooldown, "allow-denied", breakerHalfOpen},
			{cooldown, "allow-denied", breakerHalfOpen},
		}},
		{"cancel releases the probe slot without judging", []breakerStep{
			{0, "failure", breakerClosed},
			{0, "failure", breakerClosed},
			{0, "failure", breakerOpen},
			{cooldown, "allow", breakerHalfOpen},
			{cooldown, "cancel", breakerHalfOpen},
			{cooldown, "allow", breakerHalfOpen}, // slot free again
			{cooldown, "success", breakerClosed},
		}},
		{"cancel while closed is a no-op", []breakerStep{
			{0, "failure", breakerClosed},
			{0, "cancel", breakerClosed},
			{0, "failure", breakerClosed},
			{0, "failure", breakerOpen},
		}},
		{"late success while open closes (proof of life)", []breakerStep{
			{0, "failure", breakerClosed},
			{0, "failure", breakerClosed},
			{0, "failure", breakerOpen},
			{cooldown / 4, "success", breakerClosed},
			{cooldown / 4, "allow", breakerClosed},
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := newBreaker(threshold, cooldown)
			for i, s := range tc.steps {
				now := t0.Add(s.at)
				switch s.event {
				case "allow":
					if !b.Allow(now) {
						t.Fatalf("step %d: Allow = false, want admitted", i)
					}
				case "allow-denied":
					if b.Allow(now) {
						t.Fatalf("step %d: Allow = true, want denied", i)
					}
				case "success":
					b.Success()
				case "failure":
					b.Failure(now)
				case "cancel":
					b.Cancel()
				default:
					t.Fatalf("step %d: unknown event %q", i, s.event)
				}
				if got := b.State(); got != s.want {
					t.Fatalf("step %d (%s): state = %v, want %v", i, s.event, got, s.want)
				}
			}
		})
	}
}

// TestBreakerProbeAdmissionConcurrent trips a breaker, then races many
// goroutines through Allow after the cooldown: exactly one may be
// admitted per released probe slot. Run under -race in CI.
func TestBreakerProbeAdmissionConcurrent(t *testing.T) {
	b := newBreaker(1, time.Millisecond)
	b.Failure(time.Unix(1000, 0)) // trip

	probeTime := time.Unix(1000, 1).Add(time.Second) // well past cooldown
	const goroutines = 64
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow(probeTime) {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if admitted.Load() != 1 {
		t.Fatalf("admitted %d probes concurrently, want exactly 1", admitted.Load())
	}

	// Cancelling the probe frees the slot for exactly one more.
	b.Cancel()
	admitted.Store(0)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow(probeTime) {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if admitted.Load() != 1 {
		t.Fatalf("admitted %d probes after Cancel, want exactly 1", admitted.Load())
	}

	// A successful probe closes the circuit: everyone is admitted.
	b.Success()
	admitted.Store(0)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow(probeTime) {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if admitted.Load() != goroutines {
		t.Fatalf("closed breaker admitted %d/%d", admitted.Load(), goroutines)
	}
}

// TestHedgeWinDoesNotTripLoserBreaker reproduces the hedging
// interaction: a slow-but-healthy primary loses the race to a hedged
// replica; the loser's attempt is cancelled by the sub-request
// wrapping up, which must settle its breaker as Cancel, not Failure —
// otherwise every hedged query walks the primary toward a trip.
func TestHedgeWinDoesNotTripLoserBreaker(t *testing.T) {
	full, queries := fullIndex(t)
	cells := []int{0, 1, 2, 3, 4, 5, 6, 7}

	fast := shardServer(t, full, cells)
	// A slow-but-healthy primary: every /search stalls far longer than
	// the hedge delay, so the hedged replica always wins the race.
	inner := shardServer(t, full, cells)
	target, err := url.Parse(inner.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(target)
	proxy.ErrorLog = log.New(io.Discard, "", 0) // cancelled losers are the point
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/search" {
			select {
			case <-time.After(500 * time.Millisecond):
			case <-r.Context().Done():
				return
			}
		}
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(slow.Close)

	r := newRouter(t, 8, [][]string{{slow.URL, fast.URL}}, func(c *Config) {
		c.HedgeDelay = 10 * time.Millisecond
		c.BreakerThreshold = 1 // a single miscounted failure would trip — the trap
	})

	query := queries.Row(0)
	for i := 0; i < 5; i++ {
		if _, err := r.Search(context.Background(), query, SearchOptions{K: 5, NProbe: 8}); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	// Let cancelled loser attempts settle their breaker verdicts.
	time.Sleep(100 * time.Millisecond)
	st := r.endpoints[slow.URL]
	if got := st.breaker.State(); got != breakerClosed {
		t.Fatalf("slow primary's breaker = %v after hedged wins, want closed (cancelled losers must not count as failures)", got)
	}
	if r.metrics.hedges.Load() == 0 {
		t.Fatal("test exercised no hedges; fixture is broken")
	}
}
