// Health-driven membership: a background prober walks every distinct
// endpoint's /readyz, quarantines endpoints that fail consecutively,
// and reinstates them after consecutive successes — so failover and
// hedging pick among live replicas instead of rediscovering deadness
// per request. The search path treats quarantine as a preference, not
// a verdict: when quarantine would leave a shard with no candidates,
// the full endpoint list is used anyway (the breakers then decide).
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// probeLoop drives probeOnce every ProbeInterval until Close.
func (r *Router) probeLoop() {
	defer r.proberWG.Done()
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.probeOnce()
		}
	}
}

// probeOnce checks every endpoint's /readyz concurrently and updates
// quarantine state from the consecutive-outcome counters.
func (r *Router) probeOnce() {
	var wg sync.WaitGroup
	for _, st := range r.endpoints {
		wg.Add(1)
		go func(st *endpointState) {
			defer wg.Done()
			r.recordProbe(st, r.probeReady(st.url))
		}(st)
	}
	wg.Wait()
}

// probeReady performs one /readyz check under ProbeTimeout.
func (r *Router) probeReady(url string) error {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz status %d", resp.StatusCode)
	}
	return nil
}

// recordProbe folds one probe outcome into the endpoint's streaks and
// flips quarantine at the configured thresholds. Only the prober
// goroutine calls this (the streak counters are unsynchronized by
// design); tests drive it directly.
func (r *Router) recordProbe(st *endpointState, err error) {
	if err != nil {
		st.probeOKs = 0
		st.probeFails++
		if st.probeFails >= r.cfg.QuarantineAfter && !st.quarantined.Load() {
			st.quarantined.Store(true)
			st.quarantines.Add(1)
			r.metrics.quarantines.Add(1)
			r.cfg.Logf("cluster: quarantined %s after %d failed probes: %v", st.url, st.probeFails, err)
		}
		return
	}
	st.probeFails = 0
	st.probeOKs++
	if st.quarantined.Load() && st.probeOKs >= r.cfg.ReinstateAfter {
		st.quarantined.Store(false)
		st.reinstatements.Add(1)
		r.metrics.reinstatements.Add(1)
		// A reinstated endpoint earned its way back: clear its breaker
		// too, so the first real request is not a half-open gamble.
		st.breaker.Success()
		r.cfg.Logf("cluster: reinstated %s after %d healthy probes", st.url, st.probeOKs)
	}
}
