package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"
	"time"

	"pqfastscan"
	"pqfastscan/internal/faultnet"
	"pqfastscan/internal/server"
	"pqfastscan/internal/topk"
)

// TestChaosSoak is the end-to-end immune-system exercise: a router over
// a 2-shard × 2-replica fleet runs a scripted fault schedule — one
// primary goes completely dark, the other starts resetting connections
// mid-flight — while a query loop checks every answer against a
// single-node oracle. The invariants:
//
//   - An answer without a Coverage field is bit-identical to the oracle.
//     Partial answers carry Coverage honestly. Never silently wrong.
//   - The fleet keeps answering through the fault window (goodput > 0).
//   - The prober quarantines the dark primary; after the faults lift,
//     it is reinstated and the fleet recovers to a sustained streak of
//     full-coverage, bit-identical answers within the healed window.
//
// The default soak is a few seconds; CHAOS_SECONDS stretches the
// schedule for CI soak jobs. Run under -race.
func TestChaosSoak(t *testing.T) {
	phase := time.Second // healthy, chaos, healed — 3 phases of this length
	if v := os.Getenv("CHAOS_SECONDS"); v != "" {
		secs, err := strconv.Atoi(v)
		if err != nil || secs <= 0 {
			t.Fatalf("bad CHAOS_SECONDS=%q", v)
		}
		phase = time.Duration(secs) * time.Second / 3
	}

	full, queries := fullIndex(t)
	p0 := shardServer(t, full, []int{0, 1, 2, 3})
	r0 := shardServer(t, full, []int{0, 1, 2, 3})
	p1 := shardServer(t, full, []int{4, 5, 6, 7})
	r1 := shardServer(t, full, []int{4, 5, 6, 7})

	ft := faultnet.New(nil, 20240807) // healthy: no rules yet
	router := newRouter(t, 8, [][]string{{p0.URL, r0.URL}, {p1.URL, r1.URL}}, func(c *Config) {
		c.Client = &http.Client{Transport: ft}
		c.ShardTimeout = 2 * time.Second
		c.HedgeDelay = 25 * time.Millisecond
		c.BreakerThreshold = 3
		c.BreakerCooldown = 100 * time.Millisecond
		c.ProbeInterval = 25 * time.Millisecond
		c.ProbeTimeout = 300 * time.Millisecond
		c.QuarantineAfter = 2
		c.ReinstateAfter = 2
	})
	t.Cleanup(router.Close)
	handler := router.Handler()

	// Oracle answers from the full single-node index: the router's
	// correctness contract is bit-identical equality with these.
	const k, nprobe = 10, 4
	oracle := make([][]topk.Result, 16)
	for i := range oracle {
		res, err := full.Search(t.Context(), queries.Row(i), k, pqfastscan.WithNProbe(nprobe))
		if err != nil {
			t.Fatal(err)
		}
		oracle[i] = res.Results
	}

	// ask issues one query (optionally accepting partial coverage) and
	// classifies the answer: "full" (must be bit-identical), "partial"
	// (must carry honest coverage), or "failed".
	ask := func(qi int, allowPartial bool) string {
		raw, _ := json.Marshal(server.SearchRequest{Query: queries.Row(qi), K: k, NProbe: nprobe})
		target := "/search"
		if allowPartial {
			target += "?partial=1"
		}
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, target, bytes.NewReader(raw)))
		if rec.Code != http.StatusOK {
			return "failed"
		}
		var resp server.SearchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("query %d: undecodable 200: %v (%s)", qi, err, rec.Body.String())
		}
		if resp.Coverage != nil {
			if resp.Coverage.CellsAnswered >= resp.Coverage.CellsTotal {
				t.Fatalf("query %d: coverage %d/%d claims to be partial but is not",
					qi, resp.Coverage.CellsAnswered, resp.Coverage.CellsTotal)
			}
			return "partial"
		}
		want := oracle[qi]
		if len(resp.Results) != len(want) {
			t.Fatalf("SILENTLY WRONG: query %d returned %d results without coverage, oracle has %d",
				qi, len(resp.Results), len(want))
		}
		for r := range want {
			if resp.Results[r].ID != want[r].ID || resp.Results[r].Distance != want[r].Distance {
				t.Fatalf("SILENTLY WRONG: query %d rank %d: got %+v, oracle %+v (no coverage marker)",
					qi, r, resp.Results[r], want[r])
			}
		}
		return "full"
	}

	soak := func(d time.Duration, allowPartial bool) (full, partial, failed int) {
		deadline := time.Now().Add(d)
		for qi := 0; time.Now().Before(deadline); qi = (qi + 1) % len(oracle) {
			switch ask(qi, allowPartial) {
			case "full":
				full++
			case "partial":
				partial++
			default:
				failed++
			}
		}
		return
	}

	// --- phase 1: healthy baseline --------------------------------------
	okBefore, partialBefore, failedBefore := soak(phase, true)
	if okBefore == 0 || partialBefore != 0 || failedBefore != 0 {
		t.Fatalf("healthy phase: full=%d partial=%d failed=%d, want only full answers",
			okBefore, partialBefore, failedBefore)
	}

	// --- phase 2: chaos --------------------------------------------------
	// Shard 0's primary goes completely dark (every request dropped —
	// probes included, so the prober sees it too). Shard 1's primary
	// resets 40% of /search mid-flight. Both shards keep a clean
	// replica, so the fleet can still answer everything.
	ft.SetRules(
		faultnet.Rule{Target: p0.URL, Kind: faultnet.KindDrop},
		faultnet.Rule{Target: p1.URL + "/search", Kind: faultnet.KindReset, P: 0.4},
	)
	okChaos, partialChaos, failedChaos := soak(phase, true)
	if okChaos == 0 {
		t.Fatalf("chaos phase: no full answers at all (partial=%d failed=%d) — failover/hedging is not routing around the faults",
			partialChaos, failedChaos)
	}
	t.Logf("chaos phase: full=%d partial=%d failed=%d", okChaos, partialChaos, failedChaos)
	if router.metrics.quarantines.Load() == 0 {
		t.Fatal("dark primary was never quarantined during the fault window")
	}

	// --- phase 3: heal ----------------------------------------------------
	ft.SetRules() // lift all faults
	// Recovery: within the healed window the fleet must reach a
	// sustained streak of strict (no-partial-allowed) bit-identical
	// answers, and the quarantined primary must be reinstated.
	deadline := time.Now().Add(phase)
	streak := 0
	const wantStreak = 10
	for qi := 0; streak < wantStreak; qi = (qi + 1) % len(oracle) {
		if time.Now().After(deadline) {
			t.Fatalf("fleet did not recover to %d consecutive strict answers within %v (streak %d)",
				wantStreak, phase, streak)
		}
		if ask(qi, false) == "full" {
			streak++
		} else {
			streak = 0
		}
	}
	waitDeadline := time.Now().Add(phase)
	for router.endpoints[p0.URL].quarantined.Load() {
		if time.Now().After(waitDeadline) {
			t.Fatal("dark primary was never reinstated after the faults lifted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if router.metrics.reinstatements.Load() == 0 {
		t.Fatal("reinstatement counter did not move after recovery")
	}

	st := router.Stats()
	t.Logf("post-soak stats: failovers=%d hedges=%d retries=%d breaker_fast_fails=%d quarantines=%d reinstatements=%d",
		st.Failovers, st.Hedges, st.Retries, st.BreakerFastFails, st.Quarantines, st.Reinstatements)
}
