// The router's own HTTP surface (cmd/pqrouter): the same /search,
// /healthz, /readyz and /stats contract a single pqserve exposes —
// clients cannot tell a router from a node — plus /swap, which here
// means a fleet-wide two-phase swap.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"pqfastscan/internal/hist"
	"pqfastscan/internal/server"
)

// routerMetrics aggregates the router's counters.
type routerMetrics struct {
	start            time.Time
	queries          atomic.Int64
	errors           atomic.Int64
	rejected         atomic.Int64
	lat              hist.Hist
	failovers        atomic.Int64
	hedges           atomic.Int64
	retries          atomic.Int64
	partials         atomic.Int64
	swaps            atomic.Int64
	quarantines      atomic.Int64 // endpoints quarantined by the prober
	reinstatements   atomic.Int64 // endpoints reinstated by the prober
	breakerFastFails atomic.Int64 // attempts refused without network I/O
	deadlineRejects  atomic.Int64 // requests rejected already-expired
	ambiguous        atomic.Int64 // mutations failed with unknown outcome
}

func newRouterMetrics() *routerMetrics { return &routerMetrics{start: time.Now()} }

// ShardStats is one shard's row in /stats.
type ShardStats struct {
	Cells     string   `json:"cells"`
	Endpoints []string `json:"endpoints"`
	Requests  int64    `json:"requests"`
	P50Ms     float64  `json:"p50_ms"`
	P99Ms     float64  `json:"p99_ms"`
	Failovers int64    `json:"failovers"`
	Hedges    int64    `json:"hedges"`
	Retries   int64    `json:"retries"`
}

// EndpointStats is one endpoint's health row in /stats: breaker state,
// quarantine status, and the adaptive-timeout inputs.
type EndpointStats struct {
	Endpoint       string  `json:"endpoint"`
	Breaker        string  `json:"breaker"` // closed | open | half-open
	BreakerOpens   int64   `json:"breaker_opens"`
	Quarantined    bool    `json:"quarantined"`
	Quarantines    int64   `json:"quarantines"`
	Reinstatements int64   `json:"reinstatements"`
	LatencyEwmaMs  float64 `json:"latency_ewma_ms"`
	LatencySamples int64   `json:"latency_samples"`
}

// RouterStats is the /stats document of a router.
type RouterStats struct {
	UptimeS          float64         `json:"uptime_s"`
	Partitions       int             `json:"partitions"`
	Queries          int64           `json:"queries"`
	Errors           int64           `json:"errors"`
	Rejected         int64           `json:"rejected"`
	P50Ms            float64         `json:"p50_ms"`
	P99Ms            float64         `json:"p99_ms"`
	Failovers        int64           `json:"failovers"`
	Hedges           int64           `json:"hedges"`
	Retries          int64           `json:"retries"`
	Partials         int64           `json:"partials"`
	FleetSwaps       int64           `json:"fleet_swaps"`
	Quarantines      int64           `json:"quarantines"`
	Reinstatements   int64           `json:"reinstatements"`
	BreakerFastFails int64           `json:"breaker_fast_fails"`
	DeadlineRejects  int64           `json:"deadline_rejects"`
	AmbiguousFails   int64           `json:"ambiguous_mutations"`
	Shards           []ShardStats    `json:"shards"`
	Endpoints        []EndpointStats `json:"endpoints"`
}

// Stats assembles the current /stats document.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		UptimeS:          time.Since(r.metrics.start).Seconds(),
		Partitions:       r.Partitions(),
		Queries:          r.metrics.queries.Load(),
		Errors:           r.metrics.errors.Load(),
		Rejected:         r.metrics.rejected.Load(),
		P50Ms:            r.metrics.lat.QuantileMs(0.50),
		P99Ms:            r.metrics.lat.QuantileMs(0.99),
		Failovers:        r.metrics.failovers.Load(),
		Hedges:           r.metrics.hedges.Load(),
		Retries:          r.metrics.retries.Load(),
		Partials:         r.metrics.partials.Load(),
		FleetSwaps:       r.metrics.swaps.Load(),
		Quarantines:      r.metrics.quarantines.Load(),
		Reinstatements:   r.metrics.reinstatements.Load(),
		BreakerFastFails: r.metrics.breakerFastFails.Load(),
		DeadlineRejects:  r.metrics.deadlineRejects.Load(),
		AmbiguousFails:   r.metrics.ambiguous.Load(),
	}
	for _, sh := range r.shards {
		st.Shards = append(st.Shards, ShardStats{
			Cells:     fmt.Sprintf("%d-%d", sh.spec.Lo, sh.spec.Hi),
			Endpoints: sh.spec.Endpoints,
			Requests:  sh.requests.Count(),
			P50Ms:     sh.requests.QuantileMs(0.50),
			P99Ms:     sh.requests.QuantileMs(0.99),
			Failovers: sh.failovers.Load(),
			Hedges:    sh.hedges.Load(),
			Retries:   sh.retries.Load(),
		})
	}
	eps := make([]string, 0, len(r.endpoints))
	for ep := range r.endpoints {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		es := r.endpoints[ep]
		avg, n := es.latency.Load()
		st.Endpoints = append(st.Endpoints, EndpointStats{
			Endpoint:       ep,
			Breaker:        es.breaker.State().String(),
			BreakerOpens:   es.breaker.Opens(),
			Quarantined:    es.quarantined.Load(),
			Quarantines:    es.quarantines.Load(),
			Reinstatements: es.reinstatements.Load(),
			LatencyEwmaMs:  float64(avg) / 1e6,
			LatencySamples: n,
		})
	}
	return st
}

// BeginDrain flips /readyz to 503 so load balancers steer new traffic
// away while in-flight fanouts finish. The SIGTERM sequence of
// pqrouter: BeginDrain, http.Server.Shutdown, exit.
func (r *Router) BeginDrain() { r.draining.Store(true) }

// Handler returns the router's HTTP handler.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/search", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		start := time.Now()
		r.metrics.queries.Add(1)
		// A client deadline arrives as a relative millisecond budget;
		// already-expired work is rejected before any fanout, and the
		// remaining budget rides the context so every sub-request
		// forwards what is left of it.
		ctx, cancel, err := withDeadlineBudget(req)
		if err != nil {
			r.metrics.deadlineRejects.Add(1)
			httpError(w, http.StatusGatewayTimeout, err.Error())
			return
		}
		defer cancel()
		req.Body = http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes)
		var sr server.SearchRequest
		if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
			r.metrics.rejected.Add(1)
			httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		// ?partial=1 opts this query into degraded mode: shard failures
		// shrink coverage instead of failing the query. ?auto=1 and
		// ?recall= invoke the planner exactly as on a single pqserve
		// (Config.Auto plans by default, ?auto=0 opts out).
		q := req.URL.Query()
		partial := q.Get("partial")
		auto := r.cfg.Auto
		if v := q.Get("auto"); v != "" {
			auto = v == "1" || v == "true"
		}
		recall := 0.0
		if v := q.Get("recall"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			// The affirmative range check also rejects NaN.
			if err != nil || !(f > 0 && f <= 1) {
				r.metrics.rejected.Add(1)
				httpError(w, http.StatusBadRequest, fmt.Sprintf("recall must be a number in (0,1], got %q", v))
				return
			}
			recall = f
			auto = true
		}
		resp, err := r.Search(ctx, sr.Query, SearchOptions{
			K: sr.K, NProbe: sr.NProbe, Cells: sr.Cells, Kernel: sr.Kernel,
			Auto: auto, Recall: recall,
			AllowPartial: partial == "1" || partial == "true",
		})
		if err != nil {
			// Validation failures are the client's; a blown client
			// deadline is the client's budget running out mid-fanout;
			// anything else that failed in the fanout is the fleet's.
			var ve *validationError
			switch {
			case errors.As(err, &ve):
				r.metrics.rejected.Add(1)
				httpError(w, http.StatusBadRequest, err.Error())
			case ctx.Err() != nil && errors.Is(ctx.Err(), context.DeadlineExceeded):
				r.metrics.deadlineRejects.Add(1)
				httpError(w, http.StatusGatewayTimeout, "deadline exceeded: "+err.Error())
			default:
				r.metrics.errors.Add(1)
				httpError(w, http.StatusBadGateway, err.Error())
			}
			return
		}
		r.metrics.lat.Observe(time.Since(start))
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("/add", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		req.Body = http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes)
		var ar server.AddRequest
		if err := json.NewDecoder(req.Body).Decode(&ar); err != nil {
			httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		ids, err := r.Add(req.Context(), ar.Vectors)
		if err != nil {
			writeMutationError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, server.AddResponse{IDs: ids})
	})

	mux.HandleFunc("/delete", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		req.Body = http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes)
		var dr server.DeleteRequest
		if err := json.NewDecoder(req.Body).Decode(&dr); err != nil {
			httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		deleted, err := r.Delete(req.Context(), dr.ID)
		if err != nil {
			writeMutationError(w, err)
			return
		}
		if !deleted {
			httpError(w, http.StatusNotFound, fmt.Sprintf("id %d not found on any shard", dr.ID))
			return
		}
		writeJSON(w, http.StatusOK, server.DeleteResponse{Deleted: true})
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"role":     "router",
			"shards":   len(r.shards),
			"uptime_s": time.Since(r.metrics.start).Seconds(),
		})
	})

	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		if r.draining.Load() {
			httpError(w, http.StatusServiceUnavailable, "draining: shutdown in progress")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})

	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Stats())
	})

	mux.HandleFunc("/swap", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		req.Body = http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes)
		var sr server.SwapRequest
		if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
			httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		result, err := r.SwapAll(req.Context(), sr.Path)
		if err != nil {
			status := http.StatusBadGateway
			if result == nil {
				status = http.StatusBadRequest
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			_ = json.NewEncoder(w).Encode(map[string]any{"error": err.Error(), "detail": result})
			return
		}
		writeJSON(w, http.StatusOK, result)
	})

	return mux
}

// withDeadlineBudget applies a client's X-Pq-Deadline-Ms header (a
// relative millisecond budget) to the request context. A missing
// header leaves the context untouched; a malformed or already-spent
// budget returns an error the caller maps to 504.
func withDeadlineBudget(req *http.Request) (context.Context, context.CancelFunc, error) {
	v := req.Header.Get(server.DeadlineHeader)
	if v == "" {
		return req.Context(), func() {}, nil
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return nil, nil, fmt.Errorf("bad %s header %q", server.DeadlineHeader, v)
	}
	if ms <= 0 {
		return nil, nil, fmt.Errorf("deadline already expired (%s: %d)", server.DeadlineHeader, ms)
	}
	ctx, cancel := context.WithTimeout(req.Context(), time.Duration(ms)*time.Millisecond)
	return ctx, cancel, nil
}

// writeMutationError maps a mutation failure: validation to 400, an
// ambiguous outcome to 502 with an explicit "outcome": "unknown" field
// (the one thing a client must not interpret as "not applied"), and
// everything else to 502.
func writeMutationError(w http.ResponseWriter, err error) {
	var ve *validationError
	if errors.As(err, &ve) {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var ae *AmbiguousError
	if errors.As(err, &ae) {
		writeJSON(w, http.StatusBadGateway, map[string]string{
			"error":   err.Error(),
			"outcome": "unknown",
		})
		return
	}
	var he *httpStatusError
	if errors.As(err, &he) {
		httpError(w, he.status, err.Error())
		return
	}
	httpError(w, http.StatusBadGateway, err.Error())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
