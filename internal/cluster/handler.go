// The router's own HTTP surface (cmd/pqrouter): the same /search,
// /healthz, /readyz and /stats contract a single pqserve exposes —
// clients cannot tell a router from a node — plus /swap, which here
// means a fleet-wide two-phase swap.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"pqfastscan/internal/hist"
	"pqfastscan/internal/server"
)

// routerMetrics aggregates the router's counters.
type routerMetrics struct {
	start     time.Time
	queries   atomic.Int64
	errors    atomic.Int64
	rejected  atomic.Int64
	lat       hist.Hist
	failovers atomic.Int64
	hedges    atomic.Int64
	retries   atomic.Int64
	partials  atomic.Int64
	swaps     atomic.Int64
}

func newRouterMetrics() *routerMetrics { return &routerMetrics{start: time.Now()} }

// ShardStats is one shard's row in /stats.
type ShardStats struct {
	Cells     string   `json:"cells"`
	Endpoints []string `json:"endpoints"`
	Requests  int64    `json:"requests"`
	P50Ms     float64  `json:"p50_ms"`
	P99Ms     float64  `json:"p99_ms"`
	Failovers int64    `json:"failovers"`
	Hedges    int64    `json:"hedges"`
	Retries   int64    `json:"retries"`
}

// RouterStats is the /stats document of a router.
type RouterStats struct {
	UptimeS    float64      `json:"uptime_s"`
	Partitions int          `json:"partitions"`
	Queries    int64        `json:"queries"`
	Errors     int64        `json:"errors"`
	Rejected   int64        `json:"rejected"`
	P50Ms      float64      `json:"p50_ms"`
	P99Ms      float64      `json:"p99_ms"`
	Failovers  int64        `json:"failovers"`
	Hedges     int64        `json:"hedges"`
	Retries    int64        `json:"retries"`
	Partials   int64        `json:"partials"`
	FleetSwaps int64        `json:"fleet_swaps"`
	Shards     []ShardStats `json:"shards"`
}

// Stats assembles the current /stats document.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		UptimeS:    time.Since(r.metrics.start).Seconds(),
		Partitions: r.Partitions(),
		Queries:    r.metrics.queries.Load(),
		Errors:     r.metrics.errors.Load(),
		Rejected:   r.metrics.rejected.Load(),
		P50Ms:      r.metrics.lat.QuantileMs(0.50),
		P99Ms:      r.metrics.lat.QuantileMs(0.99),
		Failovers:  r.metrics.failovers.Load(),
		Hedges:     r.metrics.hedges.Load(),
		Retries:    r.metrics.retries.Load(),
		Partials:   r.metrics.partials.Load(),
		FleetSwaps: r.metrics.swaps.Load(),
	}
	for _, sh := range r.shards {
		st.Shards = append(st.Shards, ShardStats{
			Cells:     fmt.Sprintf("%d-%d", sh.spec.Lo, sh.spec.Hi),
			Endpoints: sh.spec.Endpoints,
			Requests:  sh.requests.Count(),
			P50Ms:     sh.requests.QuantileMs(0.50),
			P99Ms:     sh.requests.QuantileMs(0.99),
			Failovers: sh.failovers.Load(),
			Hedges:    sh.hedges.Load(),
			Retries:   sh.retries.Load(),
		})
	}
	return st
}

// BeginDrain flips /readyz to 503 so load balancers steer new traffic
// away while in-flight fanouts finish. The SIGTERM sequence of
// pqrouter: BeginDrain, http.Server.Shutdown, exit.
func (r *Router) BeginDrain() { r.draining.Store(true) }

// Handler returns the router's HTTP handler.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/search", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		start := time.Now()
		r.metrics.queries.Add(1)
		req.Body = http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes)
		var sr server.SearchRequest
		if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
			r.metrics.rejected.Add(1)
			httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		// ?partial=1 opts this query into degraded mode: shard failures
		// shrink coverage instead of failing the query. ?auto=1 and
		// ?recall= invoke the planner exactly as on a single pqserve
		// (Config.Auto plans by default, ?auto=0 opts out).
		q := req.URL.Query()
		partial := q.Get("partial")
		auto := r.cfg.Auto
		if v := q.Get("auto"); v != "" {
			auto = v == "1" || v == "true"
		}
		recall := 0.0
		if v := q.Get("recall"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			// The affirmative range check also rejects NaN.
			if err != nil || !(f > 0 && f <= 1) {
				r.metrics.rejected.Add(1)
				httpError(w, http.StatusBadRequest, fmt.Sprintf("recall must be a number in (0,1], got %q", v))
				return
			}
			recall = f
			auto = true
		}
		resp, err := r.Search(req.Context(), sr.Query, SearchOptions{
			K: sr.K, NProbe: sr.NProbe, Cells: sr.Cells, Kernel: sr.Kernel,
			Auto: auto, Recall: recall,
			AllowPartial: partial == "1" || partial == "true",
		})
		if err != nil {
			// Validation failures are the client's; anything that made it
			// to the fanout and failed there is the fleet's.
			var ve *validationError
			if errors.As(err, &ve) {
				r.metrics.rejected.Add(1)
				httpError(w, http.StatusBadRequest, err.Error())
			} else {
				r.metrics.errors.Add(1)
				httpError(w, http.StatusBadGateway, err.Error())
			}
			return
		}
		r.metrics.lat.Observe(time.Since(start))
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"role":     "router",
			"shards":   len(r.shards),
			"uptime_s": time.Since(r.metrics.start).Seconds(),
		})
	})

	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		if r.draining.Load() {
			httpError(w, http.StatusServiceUnavailable, "draining: shutdown in progress")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})

	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Stats())
	})

	mux.HandleFunc("/swap", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		req.Body = http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes)
		var sr server.SwapRequest
		if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
			httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		result, err := r.SwapAll(req.Context(), sr.Path)
		if err != nil {
			status := http.StatusBadGateway
			if result == nil {
				status = http.StatusBadRequest
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			_ = json.NewEncoder(w).Encode(map[string]any{"error": err.Error(), "detail": result})
			return
		}
		writeJSON(w, http.StatusOK, result)
	})

	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
