// Package bufpool is the epoch-aware buffer pool of the beyond-RAM
// serving path (DESIGN.md §15): a capacity-bounded cache of immutable
// extent payloads with pin/unpin reference counting, CLOCK eviction and
// single-flight loads.
//
// The pool caches write-once data — a frame's bytes never change after
// load — so there is no dirty-page state and eviction is trivially
// safe: any unpinned frame can be dropped and re-read later. The only
// invariants are (1) a pinned frame is never evicted, and (2) resident
// bytes stay at or below capacity plus the pinned working set (pins may
// force transient overshoot; eviction reclaims unpinned frames as soon
// as they exist).
//
// Epoch-awareness lives in the keying discipline, not in the pool: a
// frame id names one immutable partition epoch's extent, so a query
// that pinned epoch e keeps scanning e's bytes even while a mutator
// publishes e+1 under a different id — the pool never has to
// invalidate, only to forget ids whose epoch became garbage (Forget).
package bufpool

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Loader reads one extent payload by id. It is called outside the pool
// lock, at most once per id at a time (single-flight): concurrent Pins
// of the same id share one load.
type Loader func(id string) ([]byte, error)

// Stats is the pool's counter snapshot.
type Stats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	ResidentBytes int64 `json:"resident_bytes"`
	PinnedBytes   int64 `json:"pinned_bytes"`
	CapacityBytes int64 `json:"capacity_bytes"`
	Frames        int   `json:"frames"`
}

// frame is one resident (or loading) payload.
type frame struct {
	id   string
	buf  []byte
	pins int
	ref  bool // CLOCK reference bit

	// loading is non-nil while the single-flight load is in progress;
	// waiters block on it. err holds a failed load's error.
	loading chan struct{}
	err     error
}

// Pool is a capacity-bounded CLOCK cache of immutable payloads.
type Pool struct {
	load Loader

	mu       sync.Mutex
	capacity int64
	frames   map[string]*frame
	clock    []*frame // eviction ring; nil slots are compacted lazily
	hand     int
	resident int64
	pinned   int64 // bytes of frames with pins > 0

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	// onEvict, when set, observes every evicted buffer after it leaves
	// the pool. Tests use it to poison evicted frames and prove no scan
	// path holds payload bytes past its pin.
	onEvict func(id string, buf []byte)
}

// Option configures a Pool.
type Option func(*Pool)

// WithEvictHook installs fn to be called (outside the pool lock) with
// every evicted frame's id and buffer.
func WithEvictHook(fn func(id string, buf []byte)) Option {
	return func(p *Pool) { p.onEvict = fn }
}

// New returns a pool bounded at capBytes that fills misses through
// load.
func New(capBytes int64, load Loader, opts ...Option) *Pool {
	if capBytes <= 0 {
		panic("bufpool: non-positive capacity")
	}
	p := &Pool{load: load, capacity: capBytes, frames: make(map[string]*frame)}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Pin returns the payload for id, loading it on a miss, and holds a
// reference: the frame cannot be evicted until the matching Unpin. The
// returned buffer aliases the pool frame and must not be retained or
// read after Unpin.
func (p *Pool) Pin(id string) ([]byte, error) {
	p.mu.Lock()
	for {
		f, ok := p.frames[id]
		if !ok {
			break
		}
		if f.loading == nil {
			// Resident hit.
			f.pins++
			if f.pins == 1 {
				p.pinned += int64(len(f.buf))
			}
			f.ref = true
			p.mu.Unlock()
			p.hits.Add(1)
			return f.buf, nil
		}
		// Load in flight: wait and retry (the loader may have failed,
		// in which case the frame is gone and we start a fresh load).
		ch := f.loading
		p.mu.Unlock()
		<-ch
		if f.err != nil {
			return nil, f.err
		}
		p.mu.Lock()
	}

	// Miss: install a loading frame, then load outside the lock.
	f := &frame{id: id, loading: make(chan struct{})}
	p.frames[id] = f
	p.mu.Unlock()
	p.misses.Add(1)

	buf, err := p.load(id)

	p.mu.Lock()
	if err != nil {
		f.err = err
		delete(p.frames, id)
		close(f.loading)
		p.mu.Unlock()
		return nil, err
	}
	f.buf = buf
	f.pins = 1
	f.ref = true
	p.resident += int64(len(buf))
	p.pinned += int64(len(buf))
	p.clock = append(p.clock, f)
	evicted := p.evictLocked()
	close(f.loading)
	f.loading = nil
	p.mu.Unlock()
	p.notifyEvicted(evicted)
	return buf, nil
}

// Unpin releases one reference on id. It panics on unbalanced calls —
// an unpin without a pin is a lifetime bug on the scan path.
func (p *Pool) Unpin(id string) {
	p.mu.Lock()
	f, ok := p.frames[id]
	if !ok || f.pins <= 0 {
		p.mu.Unlock()
		panic(fmt.Sprintf("bufpool: Unpin(%q) without matching Pin", id))
	}
	f.pins--
	if f.pins == 0 {
		p.pinned -= int64(len(f.buf))
	}
	evicted := p.evictLocked()
	p.mu.Unlock()
	p.notifyEvicted(evicted)
}

// Forget drops id's frame if it is resident and unpinned — the GC hook
// for extents whose epoch became garbage. A pinned or loading frame is
// left alone (its pin holder still reads it; it will be forgotten by
// capacity pressure once released, and its file removal does not need
// the frame gone).
func (p *Pool) Forget(id string) {
	p.mu.Lock()
	f, ok := p.frames[id]
	if !ok || f.pins > 0 || f.loading != nil {
		p.mu.Unlock()
		return
	}
	p.dropLocked(f)
	p.mu.Unlock()
	p.notifyEvicted([]*frame{f})
}

// SetCapacity rebounds the pool and evicts down to the new cap. Used by
// the cold-start bench to shrink a warm pool in place.
func (p *Pool) SetCapacity(capBytes int64) {
	if capBytes <= 0 {
		panic("bufpool: non-positive capacity")
	}
	p.mu.Lock()
	p.capacity = capBytes
	evicted := p.evictLocked()
	p.mu.Unlock()
	p.notifyEvicted(evicted)
}

// Stats returns a counter snapshot.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	s := Stats{
		ResidentBytes: p.resident,
		PinnedBytes:   p.pinned,
		CapacityBytes: p.capacity,
		Frames:        len(p.frames),
	}
	p.mu.Unlock()
	s.Hits = p.hits.Load()
	s.Misses = p.misses.Load()
	s.Evictions = p.evictions.Load()
	return s
}

// evictLocked runs the CLOCK hand until resident <= capacity or every
// remaining frame is pinned, returning the evicted frames for the
// post-unlock hook. Frames get one second chance: the hand clears a set
// reference bit and moves on, evicting frames whose bit is already
// clear.
func (p *Pool) evictLocked() []*frame {
	if p.resident <= p.capacity {
		return nil
	}
	var evicted []*frame
	// skips counts consecutive hand steps that made no eviction: between
	// evictions the hand visits each frame at most twice (clear the ref
	// bit, then evict), so once skips exceeds 2·len every remaining frame
	// is pinned or loading and the pool is allowed to overshoot by the
	// pinned working set.
	skips := 0
	for p.resident > p.capacity && len(p.clock) > 0 && skips <= 2*len(p.clock) {
		if p.hand >= len(p.clock) {
			p.hand = 0
		}
		f := p.clock[p.hand]
		if f == nil {
			// Compact a lazily-removed slot (strictly shrinks the ring).
			p.clock = append(p.clock[:p.hand], p.clock[p.hand+1:]...)
			continue
		}
		if f.pins > 0 || f.loading != nil {
			p.hand++
			skips++
			continue
		}
		if f.ref {
			f.ref = false
			p.hand++
			skips++
			continue
		}
		p.dropLocked(f)
		p.evictions.Add(1)
		evicted = append(evicted, f)
		skips = 0
	}
	return evicted
}

// dropLocked removes f from the map, resident accounting and the clock
// ring (lazily: its slot is nilled and compacted when the hand passes).
func (p *Pool) dropLocked(f *frame) {
	delete(p.frames, f.id)
	p.resident -= int64(len(f.buf))
	for i := range p.clock {
		if p.clock[i] == f {
			p.clock[i] = nil
			break
		}
	}
}

func (p *Pool) notifyEvicted(frames []*frame) {
	if p.onEvict == nil {
		return
	}
	for _, f := range frames {
		if f != nil {
			p.onEvict(f.id, f.buf)
		}
	}
}
