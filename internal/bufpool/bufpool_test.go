package bufpool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// makeLoader returns a loader serving size-byte buffers stamped with
// their id, counting loads per id.
func makeLoader(size int, loads *sync.Map) Loader {
	return func(id string) ([]byte, error) {
		n, _ := loads.LoadOrStore(id, new(atomic.Int64))
		n.(*atomic.Int64).Add(1)
		buf := make([]byte, size)
		for i := range buf {
			buf[i] = id[len(id)-1]
		}
		return buf, nil
	}
}

func TestHitMissEvict(t *testing.T) {
	var loads sync.Map
	p := New(250, makeLoader(100, &loads)) // room for 2 frames

	for _, id := range []string{"a", "b"} {
		buf, err := p.Pin(id)
		if err != nil {
			t.Fatal(err)
		}
		if buf[0] != id[0] {
			t.Fatalf("wrong payload for %s", id)
		}
		p.Unpin(id)
	}
	if s := p.Stats(); s.Misses != 2 || s.Hits != 0 || s.ResidentBytes != 200 {
		t.Fatalf("after two loads: %+v", s)
	}

	// Re-pin a: hit, no load.
	if _, err := p.Pin("a"); err != nil {
		t.Fatal(err)
	}
	p.Unpin("a")
	if s := p.Stats(); s.Hits != 1 {
		t.Fatalf("expected a hit: %+v", s)
	}

	// Third frame forces an eviction.
	if _, err := p.Pin("c"); err != nil {
		t.Fatal(err)
	}
	p.Unpin("c")
	s := p.Stats()
	if s.Evictions == 0 || s.ResidentBytes > s.CapacityBytes {
		t.Fatalf("after overflow: %+v", s)
	}
}

func TestPinnedNeverEvicted(t *testing.T) {
	var loads sync.Map
	var evicted sync.Map
	p := New(150, makeLoader(100, &loads), WithEvictHook(func(id string, _ []byte) {
		evicted.Store(id, true)
	}))

	bufA, err := p.Pin("a")
	if err != nil {
		t.Fatal(err)
	}
	// b overflows the pool while a is pinned: a must survive.
	if _, err := p.Pin("b"); err != nil {
		t.Fatal(err)
	}
	p.Unpin("b")
	if _, ok := evicted.Load("a"); ok {
		t.Fatal("pinned frame evicted")
	}
	if bufA[0] != 'a' {
		t.Fatal("pinned buffer clobbered")
	}
	s := p.Stats()
	if s.ResidentBytes > s.CapacityBytes+s.PinnedBytes {
		t.Fatalf("invariant violated: %+v", s)
	}
	p.Unpin("a")
}

// TestSingleFlight pins one id from many goroutines; the loader must
// run exactly once.
func TestSingleFlight(t *testing.T) {
	var loads sync.Map
	p := New(1<<20, makeLoader(64, &loads))
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf, err := p.Pin("x")
			if err != nil {
				t.Error(err)
				return
			}
			if buf[0] != 'x' {
				t.Error("bad payload")
			}
			p.Unpin("x")
		}()
	}
	wg.Wait()
	n, _ := loads.Load("x")
	if got := n.(*atomic.Int64).Load(); got != 1 {
		t.Fatalf("loader ran %d times, want 1 (single-flight)", got)
	}
}

// TestLoadErrorRetried: a failed load does not poison the id.
func TestLoadErrorRetried(t *testing.T) {
	fail := true
	p := New(1<<20, func(id string) ([]byte, error) {
		if fail {
			return nil, errors.New("disk gone")
		}
		return []byte{42}, nil
	})
	if _, err := p.Pin("x"); err == nil {
		t.Fatal("expected load error")
	}
	fail = false
	buf, err := p.Pin("x")
	if err != nil || buf[0] != 42 {
		t.Fatalf("retry after failed load: %v %v", buf, err)
	}
	p.Unpin("x")
}

func TestForget(t *testing.T) {
	var loads sync.Map
	p := New(1<<20, makeLoader(100, &loads))
	if _, err := p.Pin("a"); err != nil {
		t.Fatal(err)
	}
	// Pinned: Forget is a no-op.
	p.Forget("a")
	if s := p.Stats(); s.Frames != 1 {
		t.Fatalf("pinned frame forgotten: %+v", s)
	}
	p.Unpin("a")
	p.Forget("a")
	if s := p.Stats(); s.Frames != 0 || s.ResidentBytes != 0 {
		t.Fatalf("frame not forgotten: %+v", s)
	}
	// Forget of an absent id is fine.
	p.Forget("never-seen")
}

func TestSetCapacity(t *testing.T) {
	var loads sync.Map
	p := New(1<<20, makeLoader(100, &loads))
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("f%d", i)
		if _, err := p.Pin(id); err != nil {
			t.Fatal(err)
		}
		p.Unpin(id)
	}
	p.SetCapacity(250)
	s := p.Stats()
	if s.ResidentBytes > 250 {
		t.Fatalf("SetCapacity did not evict: %+v", s)
	}
}

// TestInvariantUnderStorm hammers a small pool from many goroutines
// with overlapping pins and checks resident <= capacity + pinned at
// every observation point. Run with -race in CI.
func TestInvariantUnderStorm(t *testing.T) {
	var loads sync.Map
	p := New(500, makeLoader(100, &loads))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("f%d", (g*7+i*3)%16)
				buf, err := p.Pin(id)
				if err != nil {
					t.Error(err)
					return
				}
				if buf[0] != id[len(id)-1] {
					t.Errorf("stale or poisoned payload for %s", id)
				}
				s := p.Stats()
				if s.ResidentBytes > s.CapacityBytes+s.PinnedBytes {
					t.Errorf("invariant violated: %+v", s)
				}
				p.Unpin(id)
			}
		}(g)
	}
	wg.Wait()
}
