// Package par provides the minimal data-parallel helpers used by
// construction-time code (dataset encoding, ground-truth computation),
// by the concurrent batch query path, and — behind an explicit opt-in —
// by single-query cross-partition parallelism (index.Request.Parallel /
// the facade's WithParallel option), which scans the probed cells of one
// multi-probe query on separate goroutines.
//
// Scan kernels themselves stay single-threaded: the paper measures
// single-core scan performance ("As PQ Scan parallelizes naturally over
// multiple queries by running each query on a different core, we focus on
// single-core performance", §3.1). That is why per-query parallelism is
// opt-in rather than the default, and why a kernel never splits one
// partition scan across cores.
package par

import (
	"runtime"
	"sync"
)

// ForChunk splits [0, n) into one contiguous chunk per worker and runs
// body(lo, hi) on each, letting the body hoist per-worker scratch
// allocations out of the element loop.
func ForChunk(n int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			body(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// For runs body(i) for every i in [0, n), distributing contiguous chunks
// over GOMAXPROCS workers. It returns once all calls completed. body must
// be safe for concurrent invocation on distinct indexes.
func For(n int, body func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
