package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndexes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1001} {
		var hits int64
		seen := make([]int32, n)
		For(n, func(i int) {
			atomic.AddInt64(&hits, 1)
			atomic.AddInt32(&seen[i], 1)
		})
		if hits != int64(n) {
			t.Fatalf("n=%d: %d calls", n, hits)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForChunkCoversAllIndexes(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 999} {
		seen := make([]int32, n)
		ForChunk(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForChunkChunksAreContiguousAndDisjoint(t *testing.T) {
	const n = 1000
	var total int64
	ForChunk(n, func(lo, hi int) {
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if total != n {
		t.Fatalf("chunks cover %d of %d", total, n)
	}
}
