package layout

import (
	"bytes"
	"testing"
	"testing/quick"

	"pqfastscan/internal/rng"
)

func randomCodes(n int, seed uint64) []uint8 {
	r := rng.New(seed)
	codes := make([]uint8, n*M)
	for i := range codes {
		codes[i] = uint8(r.Intn(256))
	}
	return codes
}

func TestBlockBytes(t *testing.T) {
	cases := map[int]int{0: 128, 1: 120, 2: 112, 3: 104, 4: 96}
	for c, want := range cases {
		if got := BlockBytes(c); got != want {
			t.Errorf("BlockBytes(%d) = %d, want %d", c, got, want)
		}
	}
	// The paper's headline: 6 bytes per vector at c=4 (§5.8).
	if BlockBytes(4)/BlockVectors != 6 {
		t.Errorf("c=4 packed bytes per vector = %d, want 6", BlockBytes(4)/BlockVectors)
	}
}

func TestAutoComponentsRule(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {100, 0},
		{799, 0}, {800, 1},
		{12799, 1}, {12800, 2},
		{204799, 2}, {204800, 3},
		{3276799, 3}, {3276800, 4},
		{25000000, 4},
	}
	for _, c := range cases {
		if got := AutoComponents(c.n); got != c.want {
			t.Errorf("AutoComponents(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestMinPartitionSize(t *testing.T) {
	// nmin(c) = 50·16^c: the paper quotes nmin(4) = 50·16^4 = 3.2768 M,
	// "we target partitions of n = 3.2 - 25 million vectors".
	if MinPartitionSize(4) != 3276800 {
		t.Errorf("nmin(4) = %d, want 3276800", MinPartitionSize(4))
	}
	if MinPartitionSize(0) != 50 {
		t.Errorf("nmin(0) = %d, want 50", MinPartitionSize(0))
	}
}

func TestTransposedRoundtrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 16, 100} {
		codes := randomCodes(n, uint64(n+1))
		tr := NewTransposed(codes)
		if tr.N != n {
			t.Fatalf("n=%d: transposed N=%d", n, tr.N)
		}
		full := tr.FullBlocks()
		if full != n/8 {
			t.Fatalf("n=%d: %d full blocks, want %d", n, full, n/8)
		}
		for b := 0; b < full; b++ {
			for j := 0; j < M; j++ {
				comp := tr.Component(b, j)
				for v := 0; v < 8; v++ {
					if comp[v] != codes[(b*8+v)*M+j] {
						t.Fatalf("n=%d block %d comp %d lane %d mismatch", n, b, j, v)
					}
				}
			}
		}
		// Tail must be the original row-major remainder.
		tail := codes[full*8*M:]
		if len(tr.Tail) != len(tail) {
			t.Fatalf("n=%d: tail length %d, want %d", n, len(tr.Tail), len(tail))
		}
		for i := range tail {
			if tr.Tail[i] != tail[i] {
				t.Fatalf("n=%d: tail differs at %d", n, i)
			}
		}
	}
}

func TestGroupedInvariants(t *testing.T) {
	for _, c := range []int{0, 1, 2, 3, 4} {
		codes := randomCodes(3000, uint64(c)*7+1)
		g, err := NewGrouped(codes, nil, c)
		if err != nil {
			t.Fatal(err)
		}
		if g.N != 3000 || g.C != c {
			t.Fatalf("c=%d: N=%d C=%d", c, g.N, g.C)
		}
		// IDs are a permutation of 0..n-1.
		seen := make([]bool, g.N)
		for _, id := range g.IDs {
			if id < 0 || int(id) >= g.N || seen[id] {
				t.Fatalf("c=%d: ids are not a permutation", c)
			}
			seen[id] = true
		}
		// Codes in grouped order match the original codes by id, and
		// every group member's high nibbles match the group key.
		total := 0
		for _, grp := range g.Groups {
			total += grp.Count
			for pos := grp.Start; pos < grp.Start+grp.Count; pos++ {
				orig := codes[int(g.IDs[pos])*M : int(g.IDs[pos])*M+M]
				for j := 0; j < M; j++ {
					if g.Code(pos)[j] != orig[j] {
						t.Fatalf("c=%d: grouped code differs from original", c)
					}
				}
				for j := 0; j < c; j++ {
					if g.Code(pos)[j]>>4 != grp.Key[j] {
						t.Fatalf("c=%d: member violates group key", c)
					}
				}
			}
		}
		if total != g.N {
			t.Fatalf("c=%d: groups cover %d of %d vectors", c, total, g.N)
		}
	}
}

// TestGroupedBlockContents: the packed nibble and full-byte block
// sections must decode back to the member codes, with padding only past
// the group count.
func TestGroupedBlockContents(t *testing.T) {
	for _, c := range []int{1, 2, 4} {
		codes := randomCodes(777, uint64(c)+99)
		g, err := NewGrouped(codes, nil, c)
		if err != nil {
			t.Fatal(err)
		}
		var nib [BlockVectors]uint8
		for _, grp := range g.Groups {
			for b := 0; b < grp.BlockCount; b++ {
				blockIdx := grp.BlockStart + b
				base := grp.Start + b*BlockVectors
				for j := 0; j < c; j++ {
					g.LowNibbles(blockIdx, j, &nib)
					for lane := 0; lane < BlockVectors; lane++ {
						pos := base + lane
						if pos < grp.Start+grp.Count {
							if nib[lane] != g.Code(pos)[j]&0x0f {
								t.Fatalf("c=%d: low nibble mismatch", c)
							}
						} else if nib[lane] != padNibble {
							t.Fatalf("c=%d: padding nibble = %#x", c, nib[lane])
						}
					}
				}
				for j := c; j < M; j++ {
					comps := g.FullComponents(blockIdx, j)
					for lane := 0; lane < BlockVectors; lane++ {
						pos := base + lane
						if pos < grp.Start+grp.Count {
							if comps[lane] != g.Code(pos)[j] {
								t.Fatalf("c=%d: full component mismatch", c)
							}
						} else if comps[lane] != padByte {
							t.Fatalf("c=%d: padding byte = %#x", c, comps[lane])
						}
					}
				}
			}
		}
	}
}

func TestGroupedMemorySaving(t *testing.T) {
	// With c=4 and group sizes that are multiples of 16 the saving is
	// exactly 25% (§4.2). Use identical high nibbles so there is a single
	// group and pad only one block.
	n := 1600
	codes := make([]uint8, n*M)
	r := rng.New(5)
	for i := 0; i < n; i++ {
		for j := 0; j < M; j++ {
			codes[i*M+j] = 0x30 | uint8(r.Intn(16)) // high nibble fixed
		}
	}
	g, err := NewGrouped(codes, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Groups) != 1 {
		t.Fatalf("%d groups, want 1", len(g.Groups))
	}
	if got := g.MemorySaving(); got != 0.25 {
		t.Fatalf("memory saving = %v, want exactly 0.25", got)
	}
	// c=0 stores full bytes in blocks: no saving.
	g0, err := NewGrouped(codes, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g0.MemorySaving() > 0 {
		t.Fatalf("c=0 saving = %v, want <= 0", g0.MemorySaving())
	}
}

func TestGroupedCustomIDs(t *testing.T) {
	codes := randomCodes(100, 3)
	ids := make([]int64, 100)
	for i := range ids {
		ids[i] = int64(1000 + i)
	}
	g, err := NewGrouped(codes, ids, 2)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < g.N; pos++ {
		orig := int(g.IDs[pos]) - 1000
		if orig < 0 || orig >= 100 {
			t.Fatalf("unexpected id %d", g.IDs[pos])
		}
		if g.Code(pos)[0] != codes[orig*M] {
			t.Fatal("id does not match code")
		}
	}
}

func TestGroupedErrors(t *testing.T) {
	codes := randomCodes(10, 1)
	if _, err := NewGrouped(codes, nil, 5); err == nil {
		t.Error("c=5 accepted")
	}
	if _, err := NewGrouped(codes[:9], nil, 2); err == nil {
		t.Error("misaligned codes accepted")
	}
	if _, err := NewGrouped(codes, make([]int64, 3), 2); err == nil {
		t.Error("id count mismatch accepted")
	}
}

func TestGroupedSortedKeys(t *testing.T) {
	// Groups must appear in ascending key order with no duplicates.
	if err := quick.Check(func(seed uint16) bool {
		codes := randomCodes(500, uint64(seed))
		g, err := NewGrouped(codes, nil, 2)
		if err != nil {
			return false
		}
		prev := int64(-1)
		for _, grp := range g.Groups {
			k := int64(grp.Key[0])<<4 | int64(grp.Key[1])
			if k <= prev {
				return false
			}
			prev = k
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessorPanics(t *testing.T) {
	codes := randomCodes(64, 2)
	g, err := NewGrouped(codes, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	var nib [BlockVectors]uint8
	for name, fn := range map[string]func(){
		"LowNibbles on ungrouped":     func() { g.LowNibbles(0, 2, &nib) },
		"FullComponents on grouped":   func() { g.FullComponents(0, 1) },
		"FullComponents out of range": func() { g.FullComponents(0, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestGroupedAppendMatchesRebuild: appending vectors one at a time into a
// built layout must produce byte-identical state to rebuilding the layout
// from scratch over the extended code array — groups, packed blocks,
// grouped-order codes and ids alike.
// TestGroupNibbleMasks: each group's per-component mask is exactly the
// set of low nibbles occurring among its members — the support of the
// portion minima the group-ordering estimate reads. (Append maintenance
// is pinned by TestGroupedAppendMatchesRebuild's whole-struct equality.)
func TestGroupNibbleMasks(t *testing.T) {
	for _, c := range []int{1, 2, 4} {
		codes := randomCodes(3000, uint64(42+c))
		g, err := NewGrouped(codes, nil, c)
		if err != nil {
			t.Fatal(err)
		}
		for gi, grp := range g.Groups {
			var want [MaxGroupComponents]uint16
			for pos := grp.Start; pos < grp.Start+grp.Count; pos++ {
				for j := 0; j < c; j++ {
					want[j] |= 1 << (g.Code(pos)[j] & 0x0f)
				}
			}
			if grp.NibbleMask != want {
				t.Fatalf("c=%d group %d: mask %v, want %v", c, gi, grp.NibbleMask, want)
			}
			for j := 0; j < c; j++ {
				if grp.NibbleMask[j] == 0 {
					t.Fatalf("c=%d group %d component %d: empty mask for non-empty group", c, gi, j)
				}
			}
		}
	}
}

func TestGroupedAppendMatchesRebuild(t *testing.T) {
	for _, c := range []int{0, 1, 2, 3, 4} {
		for _, split := range []int{0, 1, 300} {
			total := split + 200
			codes := randomCodes(total, uint64(1000+c*10+split))
			ids := make([]int64, total)
			for i := range ids {
				ids[i] = int64(i) * 3
			}
			inc, err := NewGrouped(codes[:split*M], ids[:split], c)
			if err != nil {
				t.Fatal(err)
			}
			for i := split; i < total; i++ {
				inc.Append(codes[i*M:(i+1)*M], ids[i])
			}
			want, err := NewGrouped(codes, ids, c)
			if err != nil {
				t.Fatal(err)
			}
			if inc.N != want.N || len(inc.Groups) != len(want.Groups) {
				t.Fatalf("c=%d split=%d: shape N=%d groups=%d, want N=%d groups=%d",
					c, split, inc.N, len(inc.Groups), want.N, len(want.Groups))
			}
			for gi := range want.Groups {
				if inc.Groups[gi] != want.Groups[gi] {
					t.Fatalf("c=%d split=%d: group %d = %+v, want %+v",
						c, split, gi, inc.Groups[gi], want.Groups[gi])
				}
			}
			if !bytes.Equal(inc.Codes, want.Codes) {
				t.Fatalf("c=%d split=%d: grouped codes differ from rebuild", c, split)
			}
			if !bytes.Equal(inc.Blocks, want.Blocks) {
				t.Fatalf("c=%d split=%d: packed blocks differ from rebuild", c, split)
			}
			for i := range want.IDs {
				if inc.IDs[i] != want.IDs[i] {
					t.Fatalf("c=%d split=%d: id at grouped position %d = %d, want %d",
						c, split, i, inc.IDs[i], want.IDs[i])
				}
			}
		}
	}
}

func TestBlockStorageAlignment(t *testing.T) {
	r := rng.New(7)
	codes := randomCodes(400, 7)
	g, err := NewGrouped(codes, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !Aligned(g.Blocks) {
		t.Fatal("NewGrouped blocks not Alignment-aligned")
	}
	// Force repeated growth through online appends; the base must stay
	// aligned across every reallocation.
	code := make([]uint8, M)
	for i := 0; i < 3000; i++ {
		for j := range code {
			code[j] = uint8(r.Intn(256))
		}
		g.Append(code, int64(400+i))
		if !Aligned(g.Blocks) {
			t.Fatalf("append %d: blocks lost alignment", i)
		}
	}
	if !Aligned(g.Clone().Blocks) {
		t.Fatal("Clone blocks not Alignment-aligned")
	}
	if got := AlignedBytes(10, 100); !Aligned(got) || len(got) != 10 || cap(got) < 100 {
		t.Fatalf("AlignedBytes(10, 100): len=%d cap=%d aligned=%v", len(got), cap(got), Aligned(got))
	}
}
