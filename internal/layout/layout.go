// Package layout implements the three database memory layouts of the
// paper for PQ 8×8 codes:
//
//   - row-major pqcodes (Figure 1), scanned by the naive and libpq kernels;
//   - the 8-vector transposed layout (Figure 5) required by the avx and
//     gather kernels, storing the first components of 8 vectors
//     contiguously so one 64-bit load fetches them;
//   - the grouped layout of PQ Fast Scan (Figure 9b): vectors are grouped
//     by the 4 most significant bits of their first c components, stored
//     in 16-vector blocks, with the grouped components packed to 4 bits.
//     With c = 4 this is the 25 % memory reduction of §4.2 and the 6
//     bytes loaded per lower-bound computation reported in §5.8.
package layout

import (
	"fmt"
	"sort"
	"unsafe"
)

// M is the number of components per code; all scan kernels operate on
// PQ 8×8, the configuration the paper adopts (§3.1).
const M = 8

// BlockVectors is the number of vectors per grouped block: one SIMD
// register holds 16 lanes, so lower bounds are computed 16 vectors at a
// time.
const BlockVectors = 16

// MaxGroupComponents is the deepest grouping the paper uses (c = 4).
const MaxGroupComponents = 4

// Alignment is the guaranteed base alignment, in bytes, of packed block
// storage (Grouped.Blocks) and of the scratch buffers the assembly scan
// backends stream through (internal/simd/dispatch): one cache line, so
// vector loads in the hot loop never split across more lines than the
// data itself spans. Kernels use unaligned-tolerant loads (vmovdqu,
// vld1), so correctness never depends on it — alignment is a
// performance invariant, maintained here across construction, online
// appends and clones.
const Alignment = 64

// AlignedBytes returns a zeroed length-n byte slice whose base address
// is Alignment-aligned and whose capacity is at least c.
func AlignedBytes(n, c int) []uint8 {
	if c < n {
		c = n
	}
	buf := make([]uint8, c+Alignment-1)
	off := int(-uintptr(unsafe.Pointer(&buf[0]))) & (Alignment - 1)
	return buf[off : off+n : off+c]
}

// Aligned reports whether the base address of b is Alignment-aligned
// (true for empty slices: there is no base to misalign).
func Aligned(b []uint8) bool {
	if cap(b) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&b[:1][0]))&(Alignment-1) == 0
}

// GroupSizeFloor is the paper's minimum useful average group size: "For
// best performance, s should exceed about 50 vectors" (§4.2), giving the
// partition-size rule nmin(c) = 50·16^c.
const GroupSizeFloor = 50

// BlockBytes returns the size of one packed block when grouping on c
// components: the c grouped components store only their low nibble
// (8 bytes per component per 16-vector block) while the remaining 8-c
// components keep full bytes (16 bytes each): 8c + 16(8-c) = 128 - 8c.
// For the paper's c = 4 this is 96 bytes, i.e. 6 bytes per vector.
func BlockBytes(c int) int { return 128 - 8*c }

// AutoComponents returns the number of grouping components for a
// partition of n vectors: the largest c in [0, 4] with n >= 50·16^c.
// This encodes §4.2 and the §5.6 observation that partitions below
// nmin(4) = 3.2 M vectors should group on fewer components.
func AutoComponents(n int) int {
	c := 0
	for c < MaxGroupComponents && n >= GroupSizeFloor*pow16(c+1) {
		c++
	}
	return c
}

// MinPartitionSize returns nmin(c) = 50·16^c, the smallest partition for
// which grouping on c components keeps groups above the size floor.
func MinPartitionSize(c int) int { return GroupSizeFloor * pow16(c) }

func pow16(c int) int {
	p := 1
	for i := 0; i < c; i++ {
		p *= 16
	}
	return p
}

// Transposed stores codes in 8-vector blocks with component-major order
// inside each block (Figure 5): block b holds
// a[0] b[0] ... h[0], a[1] ... h[1], ..., a[7] ... h[7].
// The tail (n mod 8 vectors) remains row-major in Tail.
type Transposed struct {
	N      int
	Blocks []uint8 // full 8-vector blocks, 64 bytes each
	Tail   []uint8 // row-major remainder codes
}

// NewTransposed builds the transposed layout from row-major codes (n x M).
func NewTransposed(codes []uint8) *Transposed {
	if len(codes)%M != 0 {
		panic("layout: codes not a multiple of M")
	}
	n := len(codes) / M
	full := n / 8
	t := &Transposed{N: n, Blocks: make([]uint8, full*64)}
	for b := 0; b < full; b++ {
		dst := t.Blocks[b*64 : (b+1)*64]
		for j := 0; j < M; j++ {
			for v := 0; v < 8; v++ {
				dst[j*8+v] = codes[(b*8+v)*M+j]
			}
		}
	}
	t.Tail = append([]uint8(nil), codes[full*8*M:]...)
	return t
}

// Component returns the j-th components of the 8 vectors of block b as a
// slice aliasing the block storage (the 64-bit word the gather and libpq
// variants load in one instruction).
func (t *Transposed) Component(b, j int) []uint8 {
	return t.Blocks[b*64+j*8 : b*64+j*8+8]
}

// FullBlocks returns the number of complete 8-vector blocks.
func (t *Transposed) FullBlocks() int { return len(t.Blocks) / 64 }

// Group describes one vector group of the grouped layout: all member
// vectors p satisfy, for each grouped component j < C,
// Key[j] == p[j] >> 4 (§4.2).
type Group struct {
	Key        [MaxGroupComponents]uint8 // high nibbles of components 0..C-1
	Start      int                       // first vector position (grouped order)
	Count      int                       // number of vectors in the group
	BlockStart int                       // index of the group's first block
	BlockCount int                       // number of 16-vector blocks

	// NibbleMask[j] records, for grouped component j < C, which low
	// nibbles occur among the group's members (bit v set iff some member
	// has code[j] & 0x0f == v). It is the support of the group's
	// per-component distance-table portion minima: the minimum table
	// entry any member can contribute for component j is the minimum of
	// portion Key[j] restricted to set nibbles. Precomputed here at
	// build time (and kept current by Append) so the group-ordering
	// extension estimates per-group lower bounds without rescanning full
	// 16-entry portions of the distance tables on every query. Deletes
	// are tombstones unknown to the layout, so the mask may be a
	// superset of the live members — the estimate stays a valid lower
	// bound.
	NibbleMask [MaxGroupComponents]uint16
}

// Grouped is the PQ Fast Scan database layout.
type Grouped struct {
	N      int
	C      int     // number of grouped components (0..4)
	IDs    []int64 // original vector id of each grouped position
	Codes  []uint8 // row-major codes in grouped order (exact re-check path)
	Groups []Group
	Blocks []uint8 // packed blocks, BlockBytes(C) each, grouped order

	blockBytes int
}

// padNibble / padByte fill the unused lanes of a group's final block.
// Padding lanes can produce arbitrary lower bounds; kernels mask them out
// by comparing lane positions against Group.Count.
const (
	padNibble = 0x0f
	padByte   = 0xff
)

// NewGrouped builds the grouped layout from row-major codes and their
// original ids, grouping on the first c components. ids may be nil, in
// which case positions 0..n-1 are used.
func NewGrouped(codes []uint8, ids []int64, c int) (*Grouped, error) {
	if c < 0 || c > MaxGroupComponents {
		return nil, fmt.Errorf("layout: grouping components %d out of range [0,4]", c)
	}
	if len(codes)%M != 0 {
		return nil, fmt.Errorf("layout: code array length %d not a multiple of %d", len(codes), M)
	}
	n := len(codes) / M
	if ids != nil && len(ids) != n {
		return nil, fmt.Errorf("layout: %d ids for %d vectors", len(ids), n)
	}

	// Order vector positions by group key (stable, so within-group order
	// is the original database order).
	keys := make([]uint32, n)
	for i := 0; i < n; i++ {
		var k uint32
		for j := 0; j < c; j++ {
			k = k<<4 | uint32(codes[i*M+j]>>4)
		}
		keys[i] = k
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })

	g := &Grouped{
		N:          n,
		C:          c,
		IDs:        make([]int64, n),
		Codes:      make([]uint8, n*M),
		blockBytes: BlockBytes(c),
	}
	for pos, src := range order {
		if ids != nil {
			g.IDs[pos] = ids[src]
		} else {
			g.IDs[pos] = int64(src)
		}
		copy(g.Codes[pos*M:(pos+1)*M], codes[src*M:(src+1)*M])
	}

	// Delimit groups over the sorted order.
	start := 0
	for start < n {
		end := start + 1
		for end < n && keys[order[end]] == keys[order[start]] {
			end++
		}
		grp := Group{Start: start, Count: end - start}
		k := keys[order[start]]
		for j := c - 1; j >= 0; j-- {
			grp.Key[j] = uint8(k & 0x0f)
			k >>= 4
		}
		for pos := start; pos < end; pos++ {
			for j := 0; j < c; j++ {
				grp.NibbleMask[j] |= 1 << (g.Codes[pos*M+j] & 0x0f)
			}
		}
		g.Groups = append(g.Groups, grp)
		start = end
	}

	// Pack blocks group by group.
	totalBlocks := 0
	for i := range g.Groups {
		g.Groups[i].BlockStart = totalBlocks
		g.Groups[i].BlockCount = (g.Groups[i].Count + BlockVectors - 1) / BlockVectors
		totalBlocks += g.Groups[i].BlockCount
	}
	g.Blocks = AlignedBytes(totalBlocks*g.blockBytes, 0)
	for _, grp := range g.Groups {
		for b := 0; b < grp.BlockCount; b++ {
			g.packBlock(grp, b)
		}
	}
	return g, nil
}

// padCode is the code whose lanes pack to all-padding (low nibble
// padNibble, full byte padByte).
var padCode = [M]uint8{padByte, padByte, padByte, padByte, padByte, padByte, padByte, padByte}

// packBlock encodes 16 vectors (or the padded remainder) of grp into its
// b-th block.
func (g *Grouped) packBlock(grp Group, b int) {
	base := grp.Start + b*BlockVectors
	for lane := 0; lane < BlockVectors; lane++ {
		pos := base + lane
		code := padCode[:]
		if pos < grp.Start+grp.Count {
			code = g.Codes[pos*M : (pos+1)*M]
		}
		g.packLane(grp.BlockStart+b, lane, code)
	}
}

// packLane writes one vector's nibbles and bytes into lane of block i.
func (g *Grouped) packLane(i, lane int, code []uint8) {
	blk := g.Block(i)
	// Grouped components: low nibble only, two lanes per byte.
	for j := 0; j < g.C; j++ {
		nib := code[j] & 0x0f
		idx := j*8 + lane/2
		if lane%2 == 0 {
			blk[idx] = blk[idx]&0xf0 | nib
		} else {
			blk[idx] = blk[idx]&0x0f | nib<<4
		}
	}
	// Ungrouped components: full byte.
	for j := g.C; j < M; j++ {
		blk[g.C*8+(j-g.C)*16+lane] = code[j]
	}
}

// keyOf computes the group key of a code: the high nibbles of its first C
// components, most significant first (the sort key of NewGrouped).
func (g *Grouped) keyOf(code []uint8) uint32 {
	var k uint32
	for j := 0; j < g.C; j++ {
		k = k<<4 | uint32(code[j]>>4)
	}
	return k
}

// groupKey recomputes the uint32 sort key of an existing group.
func (g *Grouped) groupKey(grp *Group) uint32 {
	var k uint32
	for j := 0; j < g.C; j++ {
		k = k<<4 | uint32(grp.Key[j])
	}
	return k
}

// Append inserts one vector into the grouped layout online, regrouping
// only the affected group: the vector joins the end of its group (new
// vectors are the youngest members, preserving the stable within-group
// age order of NewGrouped). When the group's last block has a free
// padding lane the insertion repacks a single lane; otherwise one fresh
// all-padding block is spliced in after the group and later groups shift.
// The result is byte-identical to rebuilding the layout from scratch over
// the extended code array.
func (g *Grouped) Append(code []uint8, id int64) {
	if len(code) != M {
		panic("layout: Append requires an M-component code")
	}
	key := g.keyOf(code)

	// Locate the group (groups are sorted by key ascending).
	gi := sort.Search(len(g.Groups), func(i int) bool {
		return g.groupKey(&g.Groups[i]) >= key
	})
	newGroup := gi == len(g.Groups) || g.groupKey(&g.Groups[gi]) != key

	var pos, blockAt int // insertion points in Codes/IDs and Blocks
	if newGroup {
		if gi == len(g.Groups) {
			pos = g.N
			blockAt = len(g.Blocks) / g.blockBytes
		} else {
			pos = g.Groups[gi].Start
			blockAt = g.Groups[gi].BlockStart
		}
		grp := Group{Start: pos, Count: 0, BlockStart: blockAt, BlockCount: 0}
		k := key
		for j := g.C - 1; j >= 0; j-- {
			grp.Key[j] = uint8(k & 0x0f)
			k >>= 4
		}
		g.Groups = append(g.Groups, Group{})
		copy(g.Groups[gi+1:], g.Groups[gi:])
		g.Groups[gi] = grp
	} else {
		pos = g.Groups[gi].Start + g.Groups[gi].Count
		blockAt = g.Groups[gi].BlockStart + g.Groups[gi].BlockCount
	}
	grp := &g.Groups[gi]
	for j := 0; j < g.C; j++ {
		grp.NibbleMask[j] |= 1 << (code[j] & 0x0f)
	}

	// Splice a fresh all-padding block when the group has no free lane.
	lane := grp.Count % BlockVectors
	if grp.Count == grp.BlockCount*BlockVectors {
		bb := g.blockBytes
		g.growBlocks(bb)
		copy(g.Blocks[(blockAt+1)*bb:], g.Blocks[blockAt*bb:])
		pad := g.Blocks[blockAt*bb : (blockAt+1)*bb]
		for i := range pad {
			pad[i] = 0xff // padNibble pairs and padByte are all-ones
		}
		grp.BlockCount++
		for i := range g.Groups {
			if i != gi && g.Groups[i].BlockStart >= blockAt {
				g.Groups[i].BlockStart++
			}
		}
		lane = 0
	}
	g.packLane(grp.BlockStart+grp.BlockCount-1, lane, code)

	// Splice the row-major code and id at the group's end.
	g.Codes = append(g.Codes, make([]uint8, M)...)
	copy(g.Codes[(pos+1)*M:], g.Codes[pos*M:])
	copy(g.Codes[pos*M:(pos+1)*M], code)
	g.IDs = append(g.IDs, 0)
	copy(g.IDs[pos+1:], g.IDs[pos:])
	g.IDs[pos] = id
	grp.Count++
	for i := range g.Groups {
		if i != gi && g.Groups[i].Start >= pos {
			g.Groups[i].Start++
		}
	}
	g.N++
}

// growBlocks extends g.Blocks by extra zero bytes, reallocating with an
// Alignment-aligned base (and amortizing headroom) when capacity runs
// out, so the packed block storage keeps the kernel alignment invariant
// across online appends — a plain append would hand the base address to
// the runtime allocator.
func (g *Grouped) growBlocks(extra int) {
	n := len(g.Blocks)
	if n+extra <= cap(g.Blocks) {
		g.Blocks = g.Blocks[:n+extra]
		clear(g.Blocks[n:])
		return
	}
	nb := AlignedBytes(n+extra, 2*cap(g.Blocks)+extra)
	copy(nb, g.Blocks)
	g.Blocks = nb
}

// Clone returns a deep copy of the layout, for copy-on-write extension:
// Append on the clone leaves the original untouched. The cloned block
// storage is reallocated on an Alignment-aligned base.
func (g *Grouped) Clone() *Grouped {
	nb := AlignedBytes(len(g.Blocks), 0)
	copy(nb, g.Blocks)
	return &Grouped{
		N:          g.N,
		C:          g.C,
		IDs:        append([]int64(nil), g.IDs...),
		Codes:      append([]uint8(nil), g.Codes...),
		Groups:     append([]Group(nil), g.Groups...),
		Blocks:     nb,
		blockBytes: g.blockBytes,
	}
}

// Detach returns a shallow copy of the layout with the bulk data
// slices (IDs, Codes, Blocks) dropped: a directory stub that keeps the
// group structure, counts and block geometry resident while the bytes
// live in a disk extent behind the buffer pool. A stub answers every
// structural question (BlockSize, PackedBytes of zero, group lookup)
// but must be Hydrated before any lane or code access.
func (g *Grouped) Detach() *Grouped {
	ng := *g
	ng.IDs, ng.Codes, ng.Blocks = nil, nil, nil
	return &ng
}

// Hydrate returns a shallow copy of the stub with the bulk data slices
// attached — typically aliases into a pinned buffer-pool frame. The
// copy is a transient view: it is valid exactly as long as the pin is
// held, and the receiver stub is never mutated, so concurrent probes
// can hydrate the same stub against the same frame. Hydrate panics on
// length or alignment violations: the extent bytes must reproduce the
// layout that Detach dropped bit-for-bit, or kernels would scan
// garbage.
func (g *Grouped) Hydrate(blocks, codes []uint8, ids []int64) *Grouped {
	totalBlocks := 0
	if n := len(g.Groups); n > 0 {
		last := g.Groups[n-1]
		totalBlocks = last.BlockStart + last.BlockCount
	}
	if len(blocks) != totalBlocks*g.blockBytes {
		panic(fmt.Sprintf("layout: Hydrate blocks length %d, want %d", len(blocks), totalBlocks*g.blockBytes))
	}
	if len(codes) != g.N*M {
		panic(fmt.Sprintf("layout: Hydrate codes length %d, want %d", len(codes), g.N*M))
	}
	if len(ids) != g.N {
		panic(fmt.Sprintf("layout: Hydrate ids length %d, want %d", len(ids), g.N))
	}
	if !Aligned(blocks) {
		panic("layout: Hydrate blocks not Alignment-aligned")
	}
	ng := *g
	ng.Blocks, ng.Codes, ng.IDs = blocks, codes, ids
	return &ng
}

// Block returns the i-th packed block, aliasing the backing store.
func (g *Grouped) Block(i int) []uint8 {
	return g.Blocks[i*g.blockBytes : (i+1)*g.blockBytes]
}

// LowNibbles decodes the packed low nibbles of grouped component j
// (j < C) of block i into dst[0:16], one lane per vector.
func (g *Grouped) LowNibbles(i, j int, dst *[BlockVectors]uint8) {
	if j < 0 || j >= g.C {
		panic("layout: LowNibbles is defined for grouped components only")
	}
	src := g.Block(i)[j*8 : j*8+8]
	for k, b := range src {
		dst[2*k] = b & 0x0f
		dst[2*k+1] = b >> 4
	}
}

// FullComponents returns the full bytes of ungrouped component j
// (C <= j < 8) of block i, aliasing the backing store.
func (g *Grouped) FullComponents(i, j int) []uint8 {
	if j < g.C || j >= M {
		panic("layout: FullComponents is defined for ungrouped components only")
	}
	blk := g.Block(i)
	off := g.C*8 + (j-g.C)*16
	return blk[off : off+16]
}

// Code returns the full row-major code of the vector at grouped position
// pos (the exact re-check path of Figure 6).
func (g *Grouped) Code(pos int) []uint8 {
	return g.Codes[pos*M : (pos+1)*M]
}

// BlockSize returns the packed block size in bytes for this layout's C.
func (g *Grouped) BlockSize() int { return g.blockBytes }

// PackedBytes returns the memory used by the packed block representation.
func (g *Grouped) PackedBytes() int { return len(g.Blocks) }

// RowMajorBytes returns the memory the same vectors use row-major
// (8 bytes per vector), the baseline for the §4.2 saving.
func (g *Grouped) RowMajorBytes() int { return g.N * M }

// MemorySaving returns the fractional reduction of the packed layout over
// row-major storage. With c = 4 and group sizes that are multiples of 16
// it is exactly 25 %; block padding in small groups reduces it.
func (g *Grouped) MemorySaving() float64 {
	return 1 - float64(g.PackedBytes())/float64(g.RowMajorBytes())
}
