package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestL2Squared(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 6, 3}
	if got := L2Squared(a, b); got != 25 {
		t.Fatalf("L2Squared = %v, want 25", got)
	}
	if got := L2Squared(a, a); got != 0 {
		t.Fatalf("self distance = %v, want 0", got)
	}
}

func TestL2SquaredPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimensionality mismatch")
		}
	}()
	L2Squared([]float32{1}, []float32{1, 2})
}

func TestL2SquaredSymmetric(t *testing.T) {
	if err := quick.Check(func(a, b [8]float32) bool {
		return L2Squared(a[:], b[:]) == L2Squared(b[:], a[:])
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNorm(t *testing.T) {
	if got := Norm([]float32{3, 4}); math.Abs(float64(got)-5) > 1e-6 {
		t.Fatalf("Norm(3,4) = %v, want 5", got)
	}
}

func TestAddScaleZeroCopy(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{10, 20, 30}
	Add(a, b)
	if a[0] != 11 || a[2] != 33 {
		t.Fatalf("Add result %v", a)
	}
	Scale(a, 2)
	if a[1] != 44 {
		t.Fatalf("Scale result %v", a)
	}
	c := Copy(a)
	Zero(a)
	if a[0] != 0 || c[0] != 22 {
		t.Fatalf("Zero/Copy interaction: a=%v c=%v", a, c)
	}
}

// TestArgminL2MatchesBruteForce checks the early-abandon implementation
// against a straightforward reference on random inputs.
func TestArgminL2MatchesBruteForce(t *testing.T) {
	if err := quick.Check(func(x [4]float32, cs [6][4]float32) bool {
		flat := make([]float32, 0, 24)
		for _, c := range cs {
			flat = append(flat, c[:]...)
		}
		got, gotD := ArgminL2(x[:], flat, 4)
		best, bestD := 0, float32(math.Inf(1))
		for i, c := range cs {
			if d := L2Squared(x[:], c[:]); d < bestD {
				best, bestD = i, d
			}
		}
		// Distances may differ in rounding because the early-abandon loop
		// breaks early only when already above the best; the argmin and
		// the winning distance must agree.
		return got == best && gotD == bestD
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArgminL2PanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on misaligned centroid matrix")
		}
	}()
	ArgminL2([]float32{1, 2}, []float32{1, 2, 3}, 2)
}

func TestMatrix(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Dim != 4 {
		t.Fatalf("NewMatrix shape %dx%d", m.Rows(), m.Dim)
	}
	for i := 0; i < 3; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = float32(i*10 + j)
		}
	}
	if m.Row(2)[3] != 23 {
		t.Fatalf("Row aliasing broken: %v", m.Row(2))
	}
	sub := m.SubColumns(1, 3)
	if sub.Dim != 2 || sub.Rows() != 3 {
		t.Fatalf("SubColumns shape %dx%d", sub.Rows(), sub.Dim)
	}
	if sub.Row(1)[0] != 11 || sub.Row(1)[1] != 12 {
		t.Fatalf("SubColumns content: %v", sub.Row(1))
	}
	// SubColumns copies; mutating it must not touch the original.
	sub.Row(0)[0] = 999
	if m.Row(0)[1] == 999 {
		t.Fatal("SubColumns aliases the parent matrix")
	}
}

func TestSubColumnsPanicsOnBadRange(t *testing.T) {
	m := NewMatrix(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid column range")
		}
	}()
	m.SubColumns(3, 3)
}

func TestEmptyMatrixRows(t *testing.T) {
	var m Matrix
	if m.Rows() != 0 {
		t.Fatalf("zero matrix has %d rows", m.Rows())
	}
}
