// Package vec implements the dense float32 vector operations that underpin
// quantizer training and exact distance computation.
//
// The paper works exclusively with squared Euclidean distances ("We consider
// squared distances as they avoid a square root computation while preserving
// the order", §2.2); this package follows that convention everywhere.
package vec

import "math"

// L2Squared returns the squared Euclidean distance between a and b.
// It panics if the slices have different lengths.
func L2Squared(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vec: dimensionality mismatch")
	}
	var sum float32
	for i, av := range a {
		d := av - b[i]
		sum += d * d
	}
	return sum
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float32 {
	var sum float32
	for _, v := range a {
		sum += v * v
	}
	return float32(math.Sqrt(float64(sum)))
}

// Add accumulates src into dst element-wise. It panics on length mismatch.
func Add(dst, src []float32) {
	if len(dst) != len(src) {
		panic("vec: dimensionality mismatch")
	}
	for i, v := range src {
		dst[i] += v
	}
}

// Scale multiplies every element of dst by s.
func Scale(dst []float32, s float32) {
	for i := range dst {
		dst[i] *= s
	}
}

// Zero sets every element of dst to zero.
func Zero(dst []float32) {
	for i := range dst {
		dst[i] = 0
	}
}

// Copy returns a freshly allocated copy of a.
func Copy(a []float32) []float32 {
	out := make([]float32, len(a))
	copy(out, a)
	return out
}

// ArgminL2 returns the index of the centroid (row of centroids, each of
// length dim) closest to x in squared Euclidean distance, along with that
// distance. It panics if centroids is empty or misaligned with dim.
func ArgminL2(x []float32, centroids []float32, dim int) (best int, bestDist float32) {
	if dim <= 0 || len(centroids) == 0 || len(centroids)%dim != 0 {
		panic("vec: invalid centroid matrix")
	}
	k := len(centroids) / dim
	bestDist = float32(math.Inf(1))
	for c := 0; c < k; c++ {
		row := centroids[c*dim : (c+1)*dim]
		var d float32
		for i, xv := range x {
			t := xv - row[i]
			d += t * t
			if d > bestDist {
				break // early abandon: partial sums only grow
			}
		}
		if d < bestDist {
			bestDist = d
			best = c
		}
	}
	return best, bestDist
}

// Matrix is a dense row-major matrix of float32 vectors sharing one backing
// slice, the layout used for training sets and codebooks.
type Matrix struct {
	Data []float32
	Dim  int
}

// NewMatrix allocates an n x dim matrix.
func NewMatrix(n, dim int) Matrix {
	return Matrix{Data: make([]float32, n*dim), Dim: dim}
}

// Rows returns the number of row vectors.
func (m Matrix) Rows() int {
	if m.Dim == 0 {
		return 0
	}
	return len(m.Data) / m.Dim
}

// Row returns the i-th row as a slice aliasing the backing array.
func (m Matrix) Row(i int) []float32 {
	return m.Data[i*m.Dim : (i+1)*m.Dim]
}

// SubColumns returns a new matrix holding columns [lo, hi) of every row.
// It is used to slice training vectors into the per-sub-quantizer
// sub-vectors u_j(x) of §2.1.
func (m Matrix) SubColumns(lo, hi int) Matrix {
	if lo < 0 || hi > m.Dim || lo >= hi {
		panic("vec: invalid column range")
	}
	n := m.Rows()
	sub := NewMatrix(n, hi-lo)
	for i := 0; i < n; i++ {
		copy(sub.Row(i), m.Row(i)[lo:hi])
	}
	return sub
}
