package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pqfastscan/internal/fsio"
)

// collect replays a segment into a flat record slice.
func collect(t *testing.T, path string) ([]*Record, ReplayResult) {
	t.Helper()
	var recs []*Record
	res, err := Replay(fsio.OS, path, func(r *Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, res
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cells := []int{2, 0, 2}
	ids := []int64{100, 101, 102}
	codes := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	if err := l.AppendAdd(cells, ids, codes, 4); err != nil {
		t.Fatalf("AppendAdd: %v", err)
	}
	if err := l.AppendDelete(101); err != nil {
		t.Fatalf("AppendDelete: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs, res := collect(t, SegmentPath(dir, 7))
	if res.Epoch != 7 || res.Truncated || res.Records != 2 {
		t.Fatalf("replay result %+v, want epoch 7, 2 records, no truncation", res)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	add := recs[0]
	if add.Type != RecordAdd || add.M != 4 {
		t.Fatalf("record 0: %+v", add)
	}
	for i := range cells {
		if add.Cells[i] != cells[i] || add.IDs[i] != ids[i] {
			t.Fatalf("add row %d: cell %d id %d, want %d %d", i, add.Cells[i], add.IDs[i], cells[i], ids[i])
		}
	}
	for i := range codes {
		if add.Codes[i] != codes[i] {
			t.Fatalf("add code byte %d: %d != %d", i, add.Codes[i], codes[i])
		}
	}
	if recs[1].Type != RecordDelete || recs[1].ID != 101 {
		t.Fatalf("record 1: %+v", recs[1])
	}
}

func TestTornTailTruncatedAtLastGoodFrame(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 5; id++ {
		if err := l.AppendDelete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := SegmentPath(dir, 1)
	good, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a torn write: a frame header promising more payload than
	// the crash left behind.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var torn [11]byte
	binary.LittleEndian.PutUint32(torn[0:], 9) // claims 9 payload bytes, delivers 3
	if _, err := f.Write(torn[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, res := collect(t, path)
	if len(recs) != 5 {
		t.Fatalf("replayed %d records past a torn tail, want 5", len(recs))
	}
	if !res.Truncated || res.GoodBytes != good.Size() || res.TornBytes != int64(len(torn)) {
		t.Fatalf("replay result %+v, want truncation at %d cutting %d bytes", res, good.Size(), len(torn))
	}
	if st, _ := os.Stat(path); st.Size() != good.Size() {
		t.Fatalf("file not truncated: %d bytes, want %d", st.Size(), good.Size())
	}

	// A second replay of the truncated file sees the identical record
	// stream with nothing left to cut.
	recs2, res2 := collect(t, path)
	if len(recs2) != 5 || res2.Truncated {
		t.Fatalf("re-replay: %d records, truncated=%v", len(recs2), res2.Truncated)
	}
}

func TestTornCRCTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendDelete(1); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendDelete(2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := SegmentPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // corrupt the last record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, res := collect(t, path)
	if len(recs) != 1 || !res.Truncated {
		t.Fatalf("got %d records, truncated=%v; want the corrupt record cut", len(recs), res.Truncated)
	}
	if recs[0].ID != 1 {
		t.Fatalf("surviving record id %d, want 1", recs[0].ID)
	}
}

func TestShortHeaderReplaysEmpty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-0000000000000003.log")
	if err := os.WriteFile(path, []byte("PQFS"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, res := collect(t, path)
	if len(recs) != 0 || !res.Truncated {
		t.Fatalf("short-header segment: %d records, truncated=%v", len(recs), res.Truncated)
	}
}

func TestBadMagicRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-0000000000000001.log")
	if err := os.WriteFile(path, []byte("NOTAWAL0epoch..."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(fsio.OS, path, func(*Record) error { return nil }); err == nil {
		t.Fatal("replay of a non-WAL file succeeded")
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		each    = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := l.AppendDelete(int64(w*each + i)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Records != writers*each {
		t.Fatalf("recorded %d records, want %d", st.Records, writers*each)
	}
	// Group commit's whole point: concurrent sync-on-ack appenders share
	// fsyncs. With 8 writers racing, leaders must have covered followers
	// at least sometimes.
	if st.Fsyncs >= st.Records {
		t.Fatalf("%d fsyncs for %d records: group commit never batched", st.Fsyncs, st.Records)
	}
	recs, _ := collect(t, SegmentPath(dir, 1))
	if len(recs) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(recs), writers*each)
	}
}

func TestBatchedModeSyncEvery(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{SyncEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := l.AppendDelete(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.SyncOnAck {
		t.Fatal("SyncEvery>0 must report batched mode")
	}
	// 25 appends at SyncEvery=10 trigger exactly 2 threshold fsyncs
	// (records 10 and 20); the header fsync in Create is not counted in
	// Stats (it happens before the first record).
	if st.Fsyncs != 2 {
		t.Fatalf("%d fsyncs after 25 appends with SyncEvery=10, want 2", st.Fsyncs)
	}
	if err := l.Close(); err != nil { // close syncs the remaining 5
		t.Fatal(err)
	}
	recs, _ := collect(t, SegmentPath(dir, 1))
	if len(recs) != 25 {
		t.Fatalf("replayed %d records, want 25", len(recs))
	}
}

func TestRotateStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendDelete(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(2); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if got := l.Epoch(); got != 2 {
		t.Fatalf("epoch after rotate: %d", got)
	}
	if err := l.AppendDelete(2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := Segments(fsio.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0].Epoch != 1 || segs[1].Epoch != 2 {
		t.Fatalf("segments: %+v", segs)
	}
	for i, want := range []int64{1, 2} {
		recs, res := collect(t, segs[i].Path)
		if res.Epoch != segs[i].Epoch || len(recs) != 1 || recs[0].ID != want {
			t.Fatalf("segment %d: epoch %d, %d records", i, res.Epoch, len(recs))
		}
	}
}

// failSyncFile makes the Nth fsync fail.
type failSyncFile struct {
	fsio.File
	fs *failSyncFS
}

func (f *failSyncFile) Sync() error {
	f.fs.syncs++
	if f.fs.syncs == f.fs.failAt {
		return errors.New("injected fsync failure")
	}
	return f.File.Sync()
}

type failSyncFS struct {
	fsio.FS
	syncs  int
	failAt int
}

func (fs *failSyncFS) Create(name string) (fsio.File, error) {
	f, err := fs.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &failSyncFile{File: f, fs: fs}, nil
}

func TestFsyncErrorSurfacedAndSticky(t *testing.T) {
	dir := t.TempDir()
	ffs := &failSyncFS{FS: fsio.OS, failAt: 2} // fsync 1 is the header
	l, err := Create(dir, 1, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendDelete(1); err == nil {
		t.Fatal("append acknowledged through a failed fsync")
	}
	// The log is poisoned: no later append may be acknowledged either,
	// because its record would sit after an unsynced horizon.
	if err := l.AppendDelete(2); err == nil {
		t.Fatal("append after a failed fsync succeeded")
	}
	l.Close()
}

func TestAppendShapeValidation(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AppendAdd([]int{1}, []int64{1, 2}, []byte{0}, 1); err == nil {
		t.Fatal("mismatched cells/ids accepted")
	}
	if err := l.AppendAdd([]int{1}, []int64{1}, []byte{0}, 2); err == nil {
		t.Fatal("mismatched code width accepted")
	}
}

func TestSegmentsIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"snapshot.idx", "wal-zz.log", "wal-1.txt", "notes"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	l, err := Create(dir, 42, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	segs, err := Segments(fsio.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Epoch != 42 {
		t.Fatalf("segments: %+v", segs)
	}
}

func TestReplayAbortsOnApplyError(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.AppendDelete(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	wantErr := fmt.Errorf("apply failed")
	n := 0
	_, err = Replay(fsio.OS, SegmentPath(dir, 1), func(*Record) error {
		n++
		if n == 2 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("replay error %v, want the apply error", err)
	}
}
