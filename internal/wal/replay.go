// Recovery half of the WAL: segment discovery, frame-by-frame replay,
// and torn-tail truncation. The durability horizon of a crashed process
// is exactly the last frame whose length, CRC and payload all check
// out; everything after it was never acknowledged (sync-on-ack) or was
// explicitly allowed to be lost (batched mode), so replay truncates the
// tail there and reports it instead of failing recovery.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strconv"
	"strings"

	"pqfastscan/internal/fsio"
)

// Record is one decoded log record. Type is RecordAdd or RecordDelete;
// an add carries parallel Cells/IDs plus the flat Codes block (M bytes
// per row), a delete carries just ID.
type Record struct {
	Type  byte
	Cells []int
	IDs   []int64
	Codes []byte
	M     int
	ID    int64
}

// Segment names one on-disk log segment.
type Segment struct {
	Path  string
	Epoch uint64
}

// Segments lists the log segments in dir, ascending by epoch. Files not
// matching the wal-<hex>.log pattern are ignored.
func Segments(fsys fsio.FS, dir string) ([]Segment, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var out []Segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
		epoch, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue
		}
		out = append(out, Segment{Path: SegmentPath(dir, epoch), Epoch: epoch})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out, nil
}

// ReplayResult describes one segment's replay.
type ReplayResult struct {
	Epoch     uint64
	Records   int   // good records decoded and applied
	GoodBytes int64 // file offset of the last good frame's end
	Truncated bool  // a torn tail was found and cut at GoodBytes
	TornBytes int64 // bytes discarded by the truncation
}

// Replay decodes every intact record of the segment at path, in order,
// calling apply for each. A torn tail — short frame, implausible
// length, or CRC mismatch — ends the replay at the last good frame and
// truncates the file there, so the next process starts from a clean
// boundary. An error from apply aborts the replay and is returned
// as-is; files that are not segments (bad magic) are an error, while a
// file too short to hold its header replays as empty (the crash
// happened during segment creation, before anything was acknowledged).
func Replay(fsys fsio.FS, path string, apply func(*Record) error) (ReplayResult, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return ReplayResult{}, fmt.Errorf("wal: opening segment: %w", err)
	}
	res, size, applyErr := replayFrames(f, apply)
	closeErr := f.Close()
	if applyErr != nil {
		return res, applyErr
	}
	if closeErr != nil {
		return res, fmt.Errorf("wal: closing segment: %w", closeErr)
	}
	if res.Truncated {
		res.TornBytes = size - res.GoodBytes
		if err := fsys.Truncate(path, res.GoodBytes); err != nil {
			return res, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	return res, nil
}

// replayFrames streams frames out of r, returning the replay result,
// the total bytes consumed, and any apply/format error.
func replayFrames(r io.Reader, apply func(*Record) error) (ReplayResult, int64, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	le := binary.LittleEndian
	var res ReplayResult

	var hdr [headerLen]byte
	n, err := io.ReadFull(br, hdr[:])
	size := int64(n)
	if err != nil {
		// Shorter than a header: the process died creating this segment,
		// before any record could have been acknowledged from it.
		res.Truncated = size > 0
		return res, size, nil
	}
	if string(hdr[:8]) != string(magic) {
		return res, size, fmt.Errorf("wal: bad segment magic %q", hdr[:8])
	}
	res.Epoch = le.Uint64(hdr[8:])
	res.GoodBytes = headerLen

	var frame [frameLen]byte
	for {
		n, err := io.ReadFull(br, frame[:])
		size += int64(n)
		if err == io.EOF {
			return res, size, nil // clean end on a frame boundary
		}
		if err != nil {
			res.Truncated = true // frame header cut short
			return res, size, nil
		}
		payloadLen := le.Uint32(frame[0:])
		wantCRC := le.Uint32(frame[4:])
		if payloadLen > maxFrame {
			// A length this large is a torn or scribbled frame header,
			// not a record anyone could have written.
			res.Truncated = true
			return res, size, nil
		}
		payload := make([]byte, payloadLen)
		n, err = io.ReadFull(br, payload)
		size += int64(n)
		if err != nil {
			res.Truncated = true // payload cut short
			return res, size, nil
		}
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			res.Truncated = true // torn write inside the payload
			return res, size, nil
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			// The CRC passed, so these bytes are what was written: this
			// is corruption or version skew, not a torn tail.
			return res, size, err
		}
		if err := apply(rec); err != nil {
			return res, size, err
		}
		res.Records++
		res.GoodBytes = size
	}
}

// decodeRecord parses one CRC-validated payload.
func decodeRecord(payload []byte) (*Record, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("wal: empty record payload")
	}
	le := binary.LittleEndian
	switch payload[0] {
	case RecordAdd:
		if len(payload) < 9 {
			return nil, fmt.Errorf("wal: add record too short (%d bytes)", len(payload))
		}
		n := int(le.Uint32(payload[1:]))
		m := int(le.Uint32(payload[5:]))
		want := 9 + 4*n + 8*n + n*m
		if n < 0 || m <= 0 || len(payload) != want {
			return nil, fmt.Errorf("wal: add record shape mismatch: n=%d m=%d payload=%d", n, m, len(payload))
		}
		rec := &Record{Type: RecordAdd, M: m, Cells: make([]int, n), IDs: make([]int64, n)}
		off := 9
		for i := 0; i < n; i++ {
			rec.Cells[i] = int(le.Uint32(payload[off:]))
			off += 4
		}
		for i := 0; i < n; i++ {
			rec.IDs[i] = int64(le.Uint64(payload[off:]))
			off += 8
		}
		rec.Codes = append([]byte(nil), payload[off:]...)
		return rec, nil
	case RecordDelete:
		if len(payload) != 9 {
			return nil, fmt.Errorf("wal: delete record has %d bytes, want 9", len(payload))
		}
		return &Record{Type: RecordDelete, ID: int64(le.Uint64(payload[1:]))}, nil
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", payload[0])
	}
}
