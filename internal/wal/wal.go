// Package wal is the write-ahead log under online mutations (DESIGN.md
// §14). Every Add/AddBatch/Delete appends one record — pre-encoded
// codes and routed cells, so replay re-applies exactly the bytes the
// original mutation indexed — and in the default sync-on-ack mode the
// append does not return until the record is on stable storage. A crash
// then loses nothing that was acknowledged: recovery loads the latest
// snapshot and replays the log over it (replay.go).
//
// One log segment corresponds to one snapshot epoch. The segment
// wal-<epoch>.log holds every mutation accepted after the snapshot
// stamped with that epoch was captured; a checkpoint rotates to
// wal-<epoch+1>.log, persists the snapshot stamped epoch+1, and deletes
// the older segments. Recovery replays the segments whose epoch is >=
// the snapshot's — each record exactly once, no LSNs needed.
//
// On-disk layout, all little-endian:
//
//	header: "PQFSWAL1" | u64 epoch
//	frame:  u32 payloadLen | u32 crc32c(payload) | payload
//	add payload:    u8 1 | u32 n | u32 m | n x u32 cell | n x i64 id | n*m code bytes
//	delete payload: u8 2 | i64 id
//
// The CRC is Castagnoli (CRC32C), hardware-accelerated on amd64 and
// arm64. A torn tail — a frame cut short or failing its CRC — marks the
// exact durability horizon: everything before it was acknowledged,
// everything from it on was not, so recovery truncates there instead of
// failing (replay.go).
//
// Group commit: concurrent appenders write their frames under the log
// mutex, then one of them (the leader) issues a single fsync covering
// every frame written so far while the others wait on it — N
// acknowledged writes per fsync under concurrency, one per write when
// idle. SyncEvery/SyncInterval switch to batched mode: appends return
// after the buffered write, and an fsync runs every N records or every
// interval, trading the last few acknowledgements for throughput.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sync"
	"time"

	"pqfastscan/internal/fsio"
	"pqfastscan/internal/hist"
)

// Record type tags (first payload byte).
const (
	RecordAdd    = 1
	RecordDelete = 2
)

var (
	// magic heads every segment, versioned like the snapshot magic.
	magic = []byte("PQFSWAL1")

	castagnoli = crc32.MakeTable(crc32.Castagnoli)

	// ErrClosed reports an append to a closed log.
	ErrClosed = errors.New("wal: log closed")
)

const (
	headerLen = 16 // magic + epoch
	frameLen  = 8  // payload length + crc32c
	// maxFrame bounds untrusted payload lengths at replay; anything
	// larger is treated as a torn tail.
	maxFrame = 1 << 30
)

// Options tunes a Log. The zero value selects sync-on-ack: every append
// returns only after its record is fsynced (grouped with concurrent
// appenders into one fsync).
type Options struct {
	// SyncEvery, when positive, switches to batched group commit: an
	// fsync runs after every SyncEvery records instead of on every
	// acknowledgement.
	SyncEvery int
	// SyncInterval, when positive, bounds how long an unsynced record
	// can sit in the page cache: a background syncer fsyncs every
	// interval. Composable with SyncEvery.
	SyncInterval time.Duration
	// FS is the filesystem seam (default fsio.OS). The crash harness
	// injects failing filesystems here.
	FS fsio.FS
}

func (o Options) fs() fsio.FS {
	if o.FS == nil {
		return fsio.OS
	}
	return o.FS
}

// syncOnAck reports whether appends must not return before their fsync.
func (o Options) syncOnAck() bool { return o.SyncEvery <= 0 && o.SyncInterval <= 0 }

// Stats is a point-in-time projection of a Log's counters, shaped for
// direct embedding in a /stats document.
type Stats struct {
	Epoch      uint64  `json:"epoch"`
	SyncOnAck  bool    `json:"sync_on_ack"`
	Bytes      int64   `json:"bytes"`   // frame bytes appended, all segments
	Records    int64   `json:"records"` // records appended, all segments
	Fsyncs     int64   `json:"fsyncs"`
	FsyncP50Ms float64 `json:"fsync_p50_ms"`
	FsyncP99Ms float64 `json:"fsync_p99_ms"`
}

// Log is an open write-ahead log bound to one directory. Appends are
// safe for concurrent use; Rotate and Close serialize with them.
type Log struct {
	fsys fsio.FS
	dir  string
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond // signals fsync progress to group-commit waiters
	f       fsio.File
	epoch   uint64
	gen     uint64 // bumps on Rotate so waiters from an old segment return
	written int64  // bytes written to the current segment
	synced  int64  // bytes of the current segment known durable
	syncing bool   // a leader's fsync is in flight outside mu
	pending int    // records appended since the last fsync (batched mode)
	err     error  // sticky: any write/fsync failure poisons the log
	closed  bool

	bytes   int64 // totals across rotations, guarded by mu
	records int64
	fsyncs  int64

	fsyncLat hist.Hist

	tickerQuit chan struct{}
	tickerWG   sync.WaitGroup
}

// SegmentPath returns the path of the segment holding epoch's records.
func SegmentPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", epoch))
}

// Create starts a fresh segment for epoch in dir (truncating any
// leftover file of the same name — a crash can leave a segment that was
// created but never became part of a durable checkpoint). The header is
// written and fsynced, and the directory entry made durable, before
// Create returns.
func Create(dir string, epoch uint64, opts Options) (*Log, error) {
	l := &Log{fsys: opts.fs(), dir: dir, opts: opts}
	l.cond = sync.NewCond(&l.mu)
	l.mu.Lock()
	err := l.openSegmentLocked(epoch)
	l.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if opts.SyncInterval > 0 {
		l.tickerQuit = make(chan struct{})
		l.tickerWG.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// openSegmentLocked creates and syncs the segment file for epoch and
// points the log at it. Callers hold mu.
func (l *Log) openSegmentLocked(epoch uint64) error {
	path := SegmentPath(l.dir, epoch)
	f, err := l.fsys.Create(path)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint64(hdr[8:], epoch)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing segment header: %w", err)
	}
	if err := l.fsys.SyncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing wal directory: %w", err)
	}
	l.f = f
	l.epoch = epoch
	l.gen++
	l.written = headerLen
	l.synced = headerLen
	l.pending = 0
	return nil
}

// Epoch returns the epoch of the segment currently appended to.
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// AppendAdd logs one acknowledged Add batch: n pre-routed cells, the n
// assigned ids, and the n*m pre-encoded codes. In sync-on-ack mode it
// returns only once the record is durable.
func (l *Log) AppendAdd(cells []int, ids []int64, codes []byte, m int) error {
	n := len(cells)
	if len(ids) != n || len(codes) != n*m {
		return fmt.Errorf("wal: add record shape mismatch: %d cells, %d ids, %d codes for m=%d",
			n, len(ids), len(codes), m)
	}
	payload := make([]byte, 1+4+4+4*n+8*n+len(codes))
	le := binary.LittleEndian
	payload[0] = RecordAdd
	le.PutUint32(payload[1:], uint32(n))
	le.PutUint32(payload[5:], uint32(m))
	off := 9
	for _, c := range cells {
		le.PutUint32(payload[off:], uint32(c))
		off += 4
	}
	for _, id := range ids {
		le.PutUint64(payload[off:], uint64(id))
		off += 8
	}
	copy(payload[off:], codes)
	return l.append(payload)
}

// AppendDelete logs one acknowledged Delete.
func (l *Log) AppendDelete(id int64) error {
	var payload [9]byte
	payload[0] = RecordDelete
	binary.LittleEndian.PutUint64(payload[1:], uint64(id))
	return l.append(payload[:])
}

// append frames the payload, writes it, and waits (or not) for
// durability per the sync policy.
func (l *Log) append(payload []byte) error {
	frame := make([]byte, frameLen+len(payload))
	le := binary.LittleEndian
	le.PutUint32(frame[0:], uint32(len(payload)))
	le.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[frameLen:], payload)

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if _, err := l.f.Write(frame); err != nil {
		// The segment now ends in a torn frame; poison the log so no
		// later append can be acknowledged past the tear.
		l.err = fmt.Errorf("wal: appending record: %w", err)
		err = l.err
		l.cond.Broadcast()
		l.mu.Unlock()
		return err
	}
	l.written += int64(len(frame))
	l.bytes += int64(len(frame))
	l.records++
	l.pending++
	myOff := l.written

	if !l.opts.syncOnAck() {
		var err error
		if l.opts.SyncEvery > 0 && l.pending >= l.opts.SyncEvery {
			err = l.syncToLocked(myOff)
		}
		l.mu.Unlock()
		return err
	}
	err := l.syncToLocked(myOff)
	l.mu.Unlock()
	return err
}

// syncToLocked blocks until the current segment is durable through
// target (or the log is poisoned, or a rotation supersedes the segment
// after having synced it). The first blocked appender becomes the group
// commit leader: it fsyncs once, covering every frame written by the
// time it runs, and wakes the others. Callers hold mu; it is released
// around the fsync.
func (l *Log) syncToLocked(target int64) error {
	myGen := l.gen
	for l.gen == myGen && l.synced < target && l.err == nil {
		if l.syncing {
			l.cond.Wait()
			continue
		}
		l.syncing = true
		covered := l.written
		f := l.f
		l.mu.Unlock()
		start := time.Now()
		err := f.Sync()
		lat := time.Since(start)
		l.mu.Lock()
		l.syncing = false
		l.fsyncs++
		l.fsyncLat.Observe(lat)
		if err != nil {
			l.err = fmt.Errorf("wal: fsync: %w", err)
		} else if l.gen == myGen {
			if covered > l.synced {
				l.synced = covered
			}
			l.pending = 0
		}
		l.cond.Broadcast()
	}
	return l.err
}

// Sync forces an fsync of everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncToLocked(l.written)
}

// syncLoop is the SyncInterval background syncer.
func (l *Log) syncLoop() {
	defer l.tickerWG.Done()
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.pending > 0 {
				l.syncToLocked(l.written) // sticky error surfaces on the next append
			}
			l.mu.Unlock()
		case <-l.tickerQuit:
			return
		}
	}
}

// Rotate fsyncs and closes the current segment and starts a fresh one
// for epoch — the log half of a checkpoint. The caller must exclude
// concurrent appends (the durability layer holds its mutation write
// lock across Rotate); group-commit waiters, if any, are guaranteed
// durable before the segment is superseded.
func (l *Log) Rotate(epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.syncToLocked(l.written); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		l.err = fmt.Errorf("wal: closing segment: %w", err)
		return l.err
	}
	if err := l.openSegmentLocked(epoch); err != nil {
		l.err = err
		return err
	}
	return nil
}

// Stats returns a point-in-time snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Epoch:      l.epoch,
		SyncOnAck:  l.opts.syncOnAck(),
		Bytes:      l.bytes,
		Records:    l.records,
		Fsyncs:     l.fsyncs,
		FsyncP50Ms: l.fsyncLat.QuantileMs(0.50),
		FsyncP99Ms: l.fsyncLat.QuantileMs(0.99),
	}
}

// Close fsyncs outstanding records and closes the segment. Further
// appends return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	syncErr := l.syncToLocked(l.written)
	l.closed = true
	closeErr := l.f.Close()
	l.cond.Broadcast()
	l.mu.Unlock()
	if l.tickerQuit != nil {
		close(l.tickerQuit)
		l.tickerWG.Wait()
	}
	if syncErr != nil {
		return syncErr
	}
	if closeErr != nil {
		return fmt.Errorf("wal: closing segment: %w", closeErr)
	}
	return nil
}
