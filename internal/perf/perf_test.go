package perf

import (
	"testing"
)

// TestTable1CacheResidency pins the paper's Table 1: PQ 16x4 and PQ 8x8
// distance tables fit the L1 cache; PQ 4x16 tables only fit the L3.
func TestTable1CacheResidency(t *testing.T) {
	cases := []struct {
		bytes     int
		wantLevel string
	}{
		{16 * 16 * 4, "L1"},    // PQ 16x4: 1 KiB
		{8 * 256 * 4, "L1"},    // PQ 8x8: 8 KiB
		{4 * 65536 * 4, "L3"},  // PQ 4x16: 1 MiB
		{64 * 1 << 20, "DRAM"}, // larger than L3
	}
	for _, c := range cases {
		level, lat := CacheLevel(Haswell, c.bytes)
		if level != c.wantLevel {
			t.Errorf("CacheLevel(%d bytes) = %s, want %s", c.bytes, level, c.wantLevel)
		}
		if lat <= 0 {
			t.Errorf("CacheLevel(%d bytes) latency %v", c.bytes, lat)
		}
	}
	// L3 latency must dominate L1 latency by the factor the paper cites
	// ("the L3 cache which has a 5 times higher latency than the L1").
	if Haswell.L3Latency < 5*Haswell.L1Latency {
		t.Errorf("L3/L1 latency ratio %.1f below the paper's 5x",
			Haswell.L3Latency/Haswell.L1Latency)
	}
}

// TestTable2InstructionProperties pins the gather and pshufb rows of the
// paper's Table 2 exactly.
func TestTable2InstructionProperties(t *testing.T) {
	g := GatherCost()
	if g.Latency != 18 || g.RecipTP != 10 || g.Uops != 34 {
		t.Errorf("gather cost %+v, want lat=18 tp=10 uops=34 (paper Table 2)", g)
	}
	p := PshufbCost()
	if p.Latency != 1 || p.RecipTP != 0.5 || p.Uops != 1 {
		t.Errorf("pshufb cost %+v, want lat=1 tp=0.5 uops=1 (paper Table 2)", p)
	}
}

func TestOpCountsAccounting(t *testing.T) {
	c := OpCounts{ScalarLoad8: 8, ScalarLoadF: 8, ScalarALU: 12, ScalarBranch: 2}
	if got := c.Instructions(); got != 30 {
		t.Errorf("Instructions = %v, want 30", got)
	}
	if got := c.L1Loads(); got != 16 {
		t.Errorf("L1Loads = %v, want 16", got)
	}
	c.Add(OpCounts{Gather256: 1})
	if got := c.L1Loads(); got != 24 {
		t.Errorf("L1Loads after gather = %v, want 24 (8 accesses per gather)", got)
	}
	if got := c.Uops(); got != 31+34-1 {
		t.Errorf("Uops = %v, want 64", got)
	}
	scaled := c.Scale(2)
	if scaled.ScalarALU != 24 || scaled.Gather256 != 2 {
		t.Errorf("Scale: %+v", scaled)
	}
}

// TestEstimateShape verifies the model reproduces the ordering the paper
// measures in its Figure 3: libpq is not faster than naive on Haswell,
// and gather is the slowest implementation despite its low instruction
// count.
func TestEstimateShape(t *testing.T) {
	naive := OpCounts{ScalarLoad8: 8, ScalarLoadF: 8, ScalarALU: 12, ScalarBranch: 2}
	libpq := OpCounts{ScalarLoad64: 1, ScalarLoadF: 8, ScalarALU: 24, ScalarBranch: 2}
	gather := OpCounts{SIMDLoad: 1, SIMDALU: 3, Gather256: 1, ScalarALU: 2, ScalarBranch: 1} // per vector
	fast := OpCounts{SIMDLoad: 0.5, SIMDALU: 1.5, SIMDShuffle: 0.5, SIMDCompare: 0.0625, SIMDMovmsk: 0.0625, ScalarALU: 0.5}

	en := Estimate(naive, Haswell)
	el := Estimate(libpq, Haswell)
	eg := Estimate(gather, Haswell)
	ef := Estimate(fast, Haswell)

	if el.Cycles < en.Cycles {
		t.Errorf("libpq (%.2f cycles) modeled faster than naive (%.2f); paper finds it slightly slower", el.Cycles, en.Cycles)
	}
	if eg.Cycles <= en.Cycles {
		t.Errorf("gather (%.2f cycles) not slower than naive (%.2f)", eg.Cycles, en.Cycles)
	}
	if eg.Instructions >= en.Instructions {
		t.Errorf("gather instruction count %.1f not below naive %.1f", eg.Instructions, en.Instructions)
	}
	if eg.Uops <= en.Uops {
		t.Errorf("gather uops %.1f not above naive %.1f", eg.Uops, en.Uops)
	}
	if eg.IPC() >= 1.5 {
		t.Errorf("gather IPC %.2f, want the low pipeline utilization the paper reports", eg.IPC())
	}
	// The Fast Scan mix must beat libpq by roughly the paper's factor.
	speedup := el.Cycles / ef.Cycles
	if speedup < 3 || speedup > 10 {
		t.Errorf("fast-scan inner loop speedup %.1fx outside the plausible 3-10x band", speedup)
	}
}

// TestEstimateMonotonic: adding work never reduces modeled cycles.
func TestEstimateMonotonic(t *testing.T) {
	base := OpCounts{ScalarLoadF: 8, ScalarALU: 10}
	more := base
	more.Add(OpCounts{ScalarALU: 100})
	if Estimate(more, Haswell).Cycles < Estimate(base, Haswell).Cycles {
		t.Error("cycles decreased when adding instructions")
	}
}

// TestNehalemLoadPorts: the single load port of the Nehalem profile makes
// load-heavy mixes slower than on Haswell at equal frequency.
func TestNehalemLoadPorts(t *testing.T) {
	loads := OpCounts{ScalarLoadF: 16}
	h := Estimate(loads, Haswell)
	n := Estimate(loads, Nehalem)
	if n.Cycles <= h.Cycles {
		t.Errorf("Nehalem (%.1f cycles) should need more cycles than Haswell (%.1f) for pure loads", n.Cycles, h.Cycles)
	}
}

func TestSeconds(t *testing.T) {
	c := Counters{Cycles: 3.3e9}
	got := c.Seconds(Haswell)
	if got < 0.99 || got > 1.01 {
		t.Errorf("3.3G cycles at 3.3GHz = %v s, want 1", got)
	}
}

func TestIPCZeroCycles(t *testing.T) {
	var c Counters
	if c.IPC() != 0 {
		t.Error("IPC of empty counters should be 0")
	}
}

func TestArchitecturesList(t *testing.T) {
	if len(Architectures) != 4 {
		t.Fatalf("expected the paper's 4 platforms, got %d", len(Architectures))
	}
	if !Architectures[0].HasGather {
		t.Error("Haswell must support gather (it introduced it, §3.2)")
	}
	for _, a := range Architectures[1:] {
		if a.HasGather {
			t.Errorf("%s predates AVX2 gather", a.Name)
		}
	}
}

func TestResourceString(t *testing.T) {
	for r := ResFrontend; r < numResources; r++ {
		if r.String() == "" {
			t.Errorf("resource %d has empty name", r)
		}
	}
	if Resource(99).String() == "" {
		t.Error("unknown resource should still format")
	}
}

// TestConfigScanCycles reproduces the paper's §3.1 conclusion: PQ 8x8 is
// the fastest of the three 64-bit configurations — PQ 16x4 pays double
// the loads, PQ 4x16 pays L3 latency.
func TestConfigScanCycles(t *testing.T) {
	c16x4 := ConfigScanCycles(16, 16, Haswell)
	c8x8 := ConfigScanCycles(8, 256, Haswell)
	c4x16 := ConfigScanCycles(4, 65536, Haswell)
	if !(c8x8 < c16x4) {
		t.Errorf("PQ 8x8 (%.1f cycles) not faster than PQ 16x4 (%.1f)", c8x8, c16x4)
	}
	if !(c8x8 < c4x16) {
		t.Errorf("PQ 8x8 (%.1f cycles) not faster than PQ 4x16 (%.1f)", c8x8, c4x16)
	}
	// PQ 4x16 must be latency-dominated despite having the fewest loads.
	if c4x16 < c16x4 {
		t.Errorf("PQ 4x16 (%.1f) should pay more than PQ 16x4 (%.1f) via L3 latency", c4x16, c16x4)
	}
}
