// Package perf is the analytical CPU cost model used to reproduce the
// paper's performance-counter studies (its Figures 3 and 15 and Tables 1
// and 2) without hardware counters.
//
// Rationale (see DESIGN.md, "Substitutions"): the paper's performance
// argument is a counting argument. PQ Scan performs 9-16 L1 loads and ~34
// scalar instructions per scanned vector; PQ Fast Scan performs ~1.3 L1
// loads and ~3.7 SIMD instructions per vector; a gather instruction costs
// 34 µops with a 10-cycle reciprocal throughput where pshufb costs 1 µop at
// 0.5 cycles (paper Table 2). Our scan kernels count their dynamic
// operations exactly; this package prices those counts using the published
// per-instruction properties and a small set of micro-architectural
// resources (front-end width, load ports, shuffle port, memory latency),
// yielding cycles, instructions, µops, L1 loads and IPC per scanned vector.
//
// The model is deliberately simple — a bottleneck (roofline-style) model:
// cycles = max over resources of the total demand placed on that resource —
// because that is sufficient to preserve the paper's shape: who wins, by
// roughly what factor, and why (which resource saturates).
package perf

import "fmt"

// OpCounts records the dynamic operation mix of one scan, bucketed by
// instruction class. Counts are totals for the whole scan; divide by the
// number of scanned vectors to obtain the per-vector figures the paper
// reports.
type OpCounts struct {
	// Scalar classes.
	ScalarLoad8  float64 // 1-byte loads of centroid indexes (mem1 accesses)
	ScalarLoad64 float64 // 8-byte loads of packed codes (libpq-style mem1)
	ScalarLoadF  float64 // 4-byte float loads from distance tables (mem2)
	ScalarALU    float64 // scalar add/shift/mask/compare ALU operations
	ScalarBranch float64 // conditional branches (loop and pruning control)

	// SIMD classes (128-bit unless noted).
	SIMDLoad    float64 // movdqu from memory
	SIMDInsert  float64 // pinsrd/pinsrb-style per-way register fills
	SIMDALU     float64 // padds/pand/por/pxor/psrlw and vertical float adds
	SIMDShuffle float64 // pshufb in-register table lookups
	SIMDCompare float64 // pcmpgtb
	SIMDMovmsk  float64 // pmovmskb
	Gather256   float64 // AVX2 vpgatherdd (8x32-bit table gather)
}

// Add accumulates other into c.
func (c *OpCounts) Add(other OpCounts) {
	c.ScalarLoad8 += other.ScalarLoad8
	c.ScalarLoad64 += other.ScalarLoad64
	c.ScalarLoadF += other.ScalarLoadF
	c.ScalarALU += other.ScalarALU
	c.ScalarBranch += other.ScalarBranch
	c.SIMDLoad += other.SIMDLoad
	c.SIMDInsert += other.SIMDInsert
	c.SIMDALU += other.SIMDALU
	c.SIMDShuffle += other.SIMDShuffle
	c.SIMDCompare += other.SIMDCompare
	c.SIMDMovmsk += other.SIMDMovmsk
	c.Gather256 += other.Gather256
}

// Scale multiplies every bucket by f and returns the result.
func (c OpCounts) Scale(f float64) OpCounts {
	return OpCounts{
		ScalarLoad8:  c.ScalarLoad8 * f,
		ScalarLoad64: c.ScalarLoad64 * f,
		ScalarLoadF:  c.ScalarLoadF * f,
		ScalarALU:    c.ScalarALU * f,
		ScalarBranch: c.ScalarBranch * f,
		SIMDLoad:     c.SIMDLoad * f,
		SIMDInsert:   c.SIMDInsert * f,
		SIMDALU:      c.SIMDALU * f,
		SIMDShuffle:  c.SIMDShuffle * f,
		SIMDCompare:  c.SIMDCompare * f,
		SIMDMovmsk:   c.SIMDMovmsk * f,
		Gather256:    c.Gather256 * f,
	}
}

// Instructions returns the total dynamic instruction count.
func (c OpCounts) Instructions() float64 {
	return c.ScalarLoad8 + c.ScalarLoad64 + c.ScalarLoadF + c.ScalarALU +
		c.ScalarBranch + c.SIMDLoad + c.SIMDInsert + c.SIMDALU +
		c.SIMDShuffle + c.SIMDCompare + c.SIMDMovmsk + c.Gather256
}

// L1Loads returns the total number of L1 data-cache load accesses. A
// 256-bit gather performs one cache access per element it loads (8 for
// vpgatherdd), which is why the paper finds gather "performs 1 memory
// access for each element it loads" (§3.2).
func (c OpCounts) L1Loads() float64 {
	return c.ScalarLoad8 + c.ScalarLoad64 + c.ScalarLoadF + c.SIMDLoad +
		8*c.Gather256
}

// Uops returns the total micro-operation count using the per-class µop
// weights of Cost.
func (c OpCounts) Uops() float64 {
	var u float64
	for _, t := range classTable {
		u += t.count(c) * t.cost.Uops
	}
	return u
}

// Cost describes one instruction class: its latency in cycles, reciprocal
// throughput in cycles per instruction, the number of µops it decodes
// into, and which execution resource it occupies. Values for gather and
// pshufb are the measured Haswell numbers the paper reports in its
// Table 2: gather has latency 18, reciprocal throughput 10 and 34 µops;
// pshufb has latency 1, reciprocal throughput 0.5 and 1 µop.
type Cost struct {
	Latency float64
	RecipTP float64
	Uops    float64
	Port    Resource
}

// Resource identifies the execution resource an instruction class
// contends for in the bottleneck model.
type Resource int

const (
	// ResFrontend is instruction issue (decode/rename), shared by all
	// classes via their µop counts.
	ResFrontend Resource = iota
	// ResLoad is the L1 data-cache load ports.
	ResLoad
	// ResALU is the scalar/vector arithmetic ports.
	ResALU
	// ResShuffle is the (single) shuffle port executing pshufb.
	ResShuffle
	numResources
)

// costs holds the per-class instruction properties shared by every
// modeled architecture. Per-architecture differences (frequency, number
// of load ports, issue width, cache latencies, gather support) live in
// Arch.
var costs = struct {
	ScalarLoad8, ScalarLoad64, ScalarLoadF Cost
	ScalarALU, ScalarBranch                Cost
	SIMDLoad, SIMDInsert, SIMDALU          Cost
	SIMDShuffle, SIMDCompare, SIMDMovmsk   Cost
	Gather256                              Cost
}{
	ScalarLoad8:  Cost{Latency: 4, RecipTP: 0.5, Uops: 1, Port: ResLoad},
	ScalarLoad64: Cost{Latency: 4, RecipTP: 0.5, Uops: 1, Port: ResLoad},
	ScalarLoadF:  Cost{Latency: 4, RecipTP: 0.5, Uops: 1, Port: ResLoad},
	ScalarALU:    Cost{Latency: 1, RecipTP: 0.25, Uops: 1, Port: ResALU},
	ScalarBranch: Cost{Latency: 1, RecipTP: 0.5, Uops: 1, Port: ResALU},
	SIMDLoad:     Cost{Latency: 4, RecipTP: 0.5, Uops: 1, Port: ResLoad},
	SIMDInsert:   Cost{Latency: 2, RecipTP: 1, Uops: 2, Port: ResShuffle},
	SIMDALU:      Cost{Latency: 1, RecipTP: 0.5, Uops: 1, Port: ResALU},
	// Paper Table 2 (Haswell): pshufb latency 1, throughput 0.5, 1 µop.
	SIMDShuffle: Cost{Latency: 1, RecipTP: 0.5, Uops: 1, Port: ResShuffle},
	SIMDCompare: Cost{Latency: 1, RecipTP: 0.5, Uops: 1, Port: ResALU},
	SIMDMovmsk:  Cost{Latency: 3, RecipTP: 1, Uops: 1, Port: ResALU},
	// Paper Table 2 (Haswell): gather latency 18, throughput 10, 34 µops.
	Gather256: Cost{Latency: 18, RecipTP: 10, Uops: 34, Port: ResLoad},
}

type classEntry struct {
	name  string
	cost  Cost
	count func(OpCounts) float64
}

var classTable = []classEntry{
	{"scalar-load8", costs.ScalarLoad8, func(c OpCounts) float64 { return c.ScalarLoad8 }},
	{"scalar-load64", costs.ScalarLoad64, func(c OpCounts) float64 { return c.ScalarLoad64 }},
	{"scalar-loadf", costs.ScalarLoadF, func(c OpCounts) float64 { return c.ScalarLoadF }},
	{"scalar-alu", costs.ScalarALU, func(c OpCounts) float64 { return c.ScalarALU }},
	{"scalar-branch", costs.ScalarBranch, func(c OpCounts) float64 { return c.ScalarBranch }},
	{"simd-load", costs.SIMDLoad, func(c OpCounts) float64 { return c.SIMDLoad }},
	{"simd-insert", costs.SIMDInsert, func(c OpCounts) float64 { return c.SIMDInsert }},
	{"simd-alu", costs.SIMDALU, func(c OpCounts) float64 { return c.SIMDALU }},
	{"simd-shuffle", costs.SIMDShuffle, func(c OpCounts) float64 { return c.SIMDShuffle }},
	{"simd-compare", costs.SIMDCompare, func(c OpCounts) float64 { return c.SIMDCompare }},
	{"simd-movmsk", costs.SIMDMovmsk, func(c OpCounts) float64 { return c.SIMDMovmsk }},
	{"gather256", costs.Gather256, func(c OpCounts) float64 { return c.Gather256 }},
}

// Arch is a micro-architecture profile. The four profiles mirror the four
// platforms of the paper's Table 5 (laptop A = Haswell, workstation B =
// Ivy Bridge, server C = Sandy Bridge, server D = Nehalem).
type Arch struct {
	Name       string
	FreqGHz    float64 // sustained single-core clock
	IssueWidth float64 // µops issued per cycle
	LoadPorts  float64 // concurrent L1 loads per cycle
	L1Latency  float64 // cycles (paper Table 1: 4-5)
	L2Latency  float64 // cycles (paper Table 1: 11-13)
	L3Latency  float64 // cycles (paper Table 1: 25-40)
	L1KiB      int     // L1 data cache size
	L2KiB      int     // L2 cache size
	L3KiB      int     // L3 cache size (per-core share not applied)
	HasGather  bool    // AVX2 gather available (Haswell onward)
	MemBWGBs   float64 // sustained DRAM bandwidth, GB/s (paper §5.8: "The memory bandwidth of Intel server processors ranges from 40 GB/s to 70 GB/s")
	Cores      int     // physical cores, for multi-query scaling
}

// Table 5 of the paper (frequencies are the sustained turbo mid-points).
var (
	Haswell = Arch{
		Name: "laptop(A)-Haswell", FreqGHz: 3.3, IssueWidth: 4,
		LoadPorts: 2, L1Latency: 4, L2Latency: 11, L3Latency: 30,
		L1KiB: 32, L2KiB: 256, L3KiB: 6 * 1024, HasGather: true,
		MemBWGBs: 25.6, Cores: 4,
	}
	IvyBridge = Arch{
		Name: "workstation(B)-IvyBridge", FreqGHz: 2.5, IssueWidth: 4,
		LoadPorts: 2, L1Latency: 4, L2Latency: 12, L3Latency: 30,
		L1KiB: 32, L2KiB: 256, L3KiB: 10 * 1024, HasGather: false,
		MemBWGBs: 42.6, Cores: 4,
	}
	SandyBridge = Arch{
		Name: "server(C)-SandyBridge", FreqGHz: 2.8, IssueWidth: 4,
		LoadPorts: 2, L1Latency: 4, L2Latency: 12, L3Latency: 32,
		L1KiB: 32, L2KiB: 256, L3KiB: 15 * 1024, HasGather: false,
		MemBWGBs: 51.2, Cores: 6,
	}
	Nehalem = Arch{
		Name: "server(D)-Nehalem", FreqGHz: 3.1, IssueWidth: 4,
		LoadPorts: 1, L1Latency: 4, L2Latency: 11, L3Latency: 38,
		L1KiB: 32, L2KiB: 256, L3KiB: 8 * 1024, HasGather: false,
		MemBWGBs: 32, Cores: 4,
	}
)

// Architectures lists the four modeled platforms in the paper's order.
var Architectures = []Arch{Haswell, IvyBridge, SandyBridge, Nehalem}

// Counters is the output of the model: the values a `perf stat` run would
// report for the scan, as in the paper's Figures 3 and 15.
type Counters struct {
	Cycles       float64
	Instructions float64
	Uops         float64
	L1Loads      float64
	Bottleneck   string // which resource bound the cycle count
}

// IPC returns instructions per cycle.
func (c Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return c.Instructions / c.Cycles
}

// Seconds converts the cycle count to wall-clock seconds on arch.
func (c Counters) Seconds(arch Arch) float64 {
	return c.Cycles / (arch.FreqGHz * 1e9)
}

// Estimate prices an operation mix on arch. The cycle count is the
// bottleneck-resource demand:
//
//	cycles = max( µops / issueWidth,
//	              Σ loads · recipTP / loadPorts·0.5⁻¹-normalized,
//	              Σ ALU-class · recipTP,
//	              Σ shuffle-class · recipTP,
//	              latency exposure of serialized long-latency ops )
//
// The last term models gather's poor pipelining ("it is necessary to wait
// 10 cycles to pipeline a new gather instruction after one has been
// issued", §3.2): long-latency, low-throughput instructions expose their
// reciprocal throughput directly.
func Estimate(c OpCounts, arch Arch) Counters {
	var demand [numResources]float64
	for _, t := range classTable {
		n := t.count(c)
		if n == 0 {
			continue
		}
		demand[ResFrontend] += n * t.cost.Uops / arch.IssueWidth
		switch t.cost.Port {
		case ResLoad:
			// Class RecipTP values assume two load ports; rescale for
			// single-load-port parts (Nehalem).
			demand[ResLoad] += n * t.cost.RecipTP * (2 / arch.LoadPorts)
		case ResALU:
			demand[ResALU] += n * t.cost.RecipTP
		case ResShuffle:
			demand[ResShuffle] += n * t.cost.RecipTP
		}
	}
	cycles := 0.0
	bottleneck := ResFrontend
	for res, d := range demand {
		if d > cycles {
			cycles = d
			bottleneck = Resource(res)
		}
	}
	return Counters{
		Cycles:       cycles,
		Instructions: c.Instructions(),
		Uops:         c.Uops(),
		L1Loads:      c.L1Loads(),
		Bottleneck:   bottleneck.String(),
	}
}

// String names the resource for reports.
func (r Resource) String() string {
	switch r {
	case ResFrontend:
		return "frontend"
	case ResLoad:
		return "load-ports"
	case ResALU:
		return "alu-ports"
	case ResShuffle:
		return "shuffle-port"
	default:
		return fmt.Sprintf("resource(%d)", int(r))
	}
}

// CacheLevel classifies where a lookup table of tableBytes bytes resides
// on arch and the load-to-use latency of that level, reproducing the
// paper's Table 1 analysis of PQ 16x4 / 8x8 / 4x16 distance tables.
func CacheLevel(arch Arch, tableBytes int) (level string, latency float64) {
	switch {
	case tableBytes <= arch.L1KiB*1024:
		return "L1", arch.L1Latency
	case tableBytes <= arch.L2KiB*1024:
		return "L2", arch.L2Latency
	case tableBytes <= arch.L3KiB*1024:
		return "L3", arch.L3Latency
	default:
		return "DRAM", arch.L3Latency * 4
	}
}

// ConfigScanCycles models the per-vector cycle cost of a naive PQ Scan
// for an arbitrary PQ m×b configuration on arch, completing the paper's
// Table 1 argument for why PQ 8×8 wins: each scanned vector performs m
// mem1 loads (always L1 thanks to hardware prefetching), m mem2 loads
// that hit whichever cache level fits the m·k*·4-byte distance tables, m
// additions and loop control. Load-port pressure governs L1-resident
// configurations; exposed latency (amortized over mlp outstanding
// misses) governs L3-resident ones — "PQ 4×16 distance tables are stored
// in the L3 cache which has a 5 times higher latency" (§3.1).
func ConfigScanCycles(m, kstar int, arch Arch) float64 {
	const mlp = 4 // simultaneous outstanding loads the OoO window sustains
	tableBytes := m * kstar * 4
	_, lat := CacheLevel(arch, tableBytes)
	fm := float64(m)
	frontend := (2*fm + fm + 4) / arch.IssueWidth // loads + adds + loop
	loadPorts := 2 * fm * 0.5 * (2 / arch.LoadPorts)
	latency := fm * (lat - arch.L1Latency) / mlp // extra exposure past L1
	cycles := frontend
	if loadPorts > cycles {
		cycles = loadPorts
	}
	return cycles + latency
}

// GatherCost and PshufbCost expose the paper's Table 2 rows for reports.
func GatherCost() Cost { return costs.Gather256 }

// PshufbCost returns the modeled cost of pshufb (paper Table 2).
func PshufbCost() Cost { return costs.SIMDShuffle }
