package topk

import (
	"sort"
	"testing"
	"testing/quick"

	"pqfastscan/internal/rng"
)

// reference computes the expected top-k by full sort with the same tie
// rule (ascending distance, then ascending id).
func reference(items []Result, k int) []Result {
	sorted := append([]Result(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Distance != sorted[j].Distance {
			return sorted[i].Distance < sorted[j].Distance
		}
		return sorted[i].ID < sorted[j].ID
	})
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	return sorted
}

func TestMatchesSortReference(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(300) + 1
		k := r.Intn(50) + 1
		items := make([]Result, n)
		for i := range items {
			items[i] = Result{ID: int64(r.Intn(40)), Distance: float32(r.Intn(25))}
		}
		h := New(k)
		for _, it := range items {
			h.Push(it.ID, it.Distance)
		}
		got := h.Results()
		want := reference(items, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: result %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestThresholdIsKthBest(t *testing.T) {
	h := New(3)
	if _, ok := h.Threshold(); ok {
		t.Fatal("threshold available on non-full heap")
	}
	h.Push(1, 10)
	h.Push(2, 5)
	if _, ok := h.Threshold(); ok {
		t.Fatal("threshold available with 2 of 3 results")
	}
	h.Push(3, 7)
	if thr, ok := h.Threshold(); !ok || thr != 10 {
		t.Fatalf("threshold = %v,%v; want 10,true", thr, ok)
	}
	h.Push(4, 6)
	if thr, _ := h.Threshold(); thr != 7 {
		t.Fatalf("threshold after improvement = %v, want 7", thr)
	}
}

func TestBest(t *testing.T) {
	h := New(4)
	if _, ok := h.Best(); ok {
		t.Fatal("Best available on empty heap")
	}
	h.Push(1, 9)
	h.Push(2, 3)
	h.Push(3, 6)
	if best, ok := h.Best(); !ok || best != 3 {
		t.Fatalf("Best = %v,%v; want 3,true", best, ok)
	}
}

func TestAcceptsNeverFalseNegative(t *testing.T) {
	// Accepts is a pruning pre-test: it may admit candidates that Push
	// then rejects on the id tie-break, but it must never reject a
	// candidate Push would retain.
	r := rng.New(2)
	h := New(5)
	for i := 0; i < 500; i++ {
		d := float32(r.Intn(100))
		accepts := h.Accepts(d)
		retained := h.Push(int64(i), d)
		if retained && !accepts {
			t.Fatalf("step %d: Push retained a candidate Accepts(%v) rejected", i, d)
		}
	}
}

func TestTieEvictsLargerID(t *testing.T) {
	h := New(2)
	h.Push(5, 1.0)
	h.Push(7, 1.0)
	// Same distance, smaller id: must replace id 7.
	if !h.Push(3, 1.0) {
		t.Fatal("tie candidate with smaller id rejected")
	}
	res := h.Results()
	if res[0].ID != 3 || res[1].ID != 5 {
		t.Fatalf("tie handling wrong: %+v", res)
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestLenFullK(t *testing.T) {
	h := New(3)
	if h.K() != 3 || h.Len() != 0 || h.Full() {
		t.Fatal("fresh heap state wrong")
	}
	h.Push(1, 1)
	h.Push(2, 2)
	h.Push(3, 3)
	if !h.Full() || h.Len() != 3 {
		t.Fatal("heap should be full")
	}
}

// TestHeapPropertyQuick: the retained set is always the k smallest under
// the tie rule, for arbitrary float distances.
func TestHeapPropertyQuick(t *testing.T) {
	if err := quick.Check(func(ds []float32, kRaw uint8) bool {
		if len(ds) == 0 {
			return true
		}
		k := int(kRaw%16) + 1
		h := New(k)
		items := make([]Result, len(ds))
		for i, d := range ds {
			items[i] = Result{ID: int64(i), Distance: d}
			h.Push(int64(i), d)
		}
		want := reference(items, k)
		got := h.Results()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResultsDoesNotMutateHeap(t *testing.T) {
	h := New(3)
	for i := 0; i < 10; i++ {
		h.Push(int64(i), float32(10-i))
	}
	a := h.Results()
	b := h.Results()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("repeated Results() differ")
		}
	}
	thrBefore, _ := h.Threshold()
	h.Results()
	thrAfter, _ := h.Threshold()
	if thrBefore != thrAfter {
		t.Fatal("Results() changed the threshold")
	}
}
