package topk

import (
	"math/rand"
	"reflect"
	"testing"
)

// oracleMerge is the single-node reference: deduplicate by id keeping
// the smallest distance, then push everything through one bounded heap.
func oracleMerge(k int, lists ...[]Result) []Result {
	best := make(map[int64]float32)
	var order []int64
	for _, list := range lists {
		for _, r := range list {
			if d, ok := best[r.ID]; !ok {
				best[r.ID] = r.Distance
				order = append(order, r.ID)
			} else if r.Distance < d {
				best[r.ID] = r.Distance
			}
		}
	}
	h := New(k)
	for _, id := range order {
		h.Push(id, best[id])
	}
	return h.Results()
}

func TestMergeEqualDistancesAcrossShards(t *testing.T) {
	// Every candidate at the same distance: the merged order must be the
	// deterministic (distance, id) order, and the retained set the k
	// smallest ids — no matter which shard contributed which id.
	shardA := []Result{{ID: 7, Distance: 1.5}, {ID: 3, Distance: 1.5}, {ID: 11, Distance: 1.5}}
	shardB := []Result{{ID: 2, Distance: 1.5}, {ID: 9, Distance: 1.5}, {ID: 5, Distance: 1.5}}
	got := MergeResults(4, shardA, shardB)
	want := []Result{{ID: 2, Distance: 1.5}, {ID: 3, Distance: 1.5}, {ID: 5, Distance: 1.5}, {ID: 7, Distance: 1.5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("equal-distance merge = %v, want %v", got, want)
	}
	// Swapping shard order must change nothing.
	if got2 := MergeResults(4, shardB, shardA); !reflect.DeepEqual(got2, got) {
		t.Fatalf("merge depends on shard order: %v vs %v", got2, got)
	}
}

func TestMergeBoundaryTieAcrossShards(t *testing.T) {
	// A tie exactly at the k-th position, split across shards: the
	// smaller id must win the last slot.
	shardA := []Result{{ID: 1, Distance: 0.5}, {ID: 40, Distance: 2.0}}
	shardB := []Result{{ID: 2, Distance: 1.0}, {ID: 30, Distance: 2.0}}
	got := MergeResults(3, shardA, shardB)
	want := []Result{{ID: 1, Distance: 0.5}, {ID: 2, Distance: 1.0}, {ID: 30, Distance: 2.0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("boundary tie merge = %v, want %v", got, want)
	}
}

func TestMergeKLargerThanTotalHits(t *testing.T) {
	shardA := []Result{{ID: 4, Distance: 3}, {ID: 1, Distance: 1}}
	shardB := []Result{{ID: 2, Distance: 2}}
	got := MergeResults(100, shardA, shardB)
	want := []Result{{ID: 1, Distance: 1}, {ID: 2, Distance: 2}, {ID: 4, Distance: 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("k > hits merge = %v, want %v", got, want)
	}
	if got := MergeResults(5); len(got) != 0 {
		t.Fatalf("merge of no lists = %v, want empty", got)
	}
	if got := MergeResults(5, nil, []Result{}); len(got) != 0 {
		t.Fatalf("merge of empty lists = %v, want empty", got)
	}
}

func TestMergeDuplicateIDsFromReplicaFailover(t *testing.T) {
	// During failover a hedged replica can answer the same cells as the
	// primary — the same ids arrive twice. When the replica serves a
	// different snapshot epoch the distances can even differ; the merge
	// must keep one copy per id, at the smallest distance.
	primary := []Result{{ID: 1, Distance: 1.0}, {ID: 2, Distance: 2.0}, {ID: 3, Distance: 3.0}}
	replica := []Result{{ID: 1, Distance: 1.0}, {ID: 2, Distance: 1.5}, {ID: 4, Distance: 2.5}}
	got := MergeResults(10, primary, replica)
	want := []Result{
		{ID: 1, Distance: 1.0}, {ID: 2, Distance: 1.5},
		{ID: 4, Distance: 2.5}, {ID: 3, Distance: 3.0},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("duplicate-id merge = %v, want %v", got, want)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].ID == got[i].ID {
			t.Fatalf("duplicate id %d survived the merge: %v", got[i].ID, got)
		}
	}
}

func TestMergeMatchesSingleNodeOracleFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nShards := 1 + rng.Intn(4)
		k := 1 + rng.Intn(12)
		lists := make([][]Result, nShards)
		for s := range lists {
			n := rng.Intn(20)
			for i := 0; i < n; i++ {
				lists[s] = append(lists[s], Result{
					// Small id and distance ranges force cross-shard
					// duplicates and distance ties.
					ID:       int64(rng.Intn(30)),
					Distance: float32(rng.Intn(8)) / 2,
				})
			}
		}
		want := oracleMerge(k, lists...)
		got := MergeResults(k, lists...)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merge %v != oracle %v (k=%d lists=%v)", trial, got, want, k, lists)
		}
		// Permute the shard lists: the answer must not move.
		perm := rng.Perm(nShards)
		shuffled := make([][]Result, nShards)
		for i, p := range perm {
			shuffled[i] = lists[p]
		}
		if got2 := MergeResults(k, shuffled...); !reflect.DeepEqual(got2, got) {
			t.Fatalf("trial %d: merge depends on list order: %v vs %v", trial, got2, got)
		}
	}
}
