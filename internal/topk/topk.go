// Package topk provides the bounded max-heap that every scan kernel uses
// to maintain its current top-k nearest neighbor candidates.
//
// The paper describes scans returning a single nearest neighbor for
// clarity but notes that "In practice, they return multiple nearest
// neighbors e.g., topk = 100 for information retrieval in multimedia
// databases" (§5.1). The pruning threshold of PQ Fast Scan is the distance
// of the current topk-th neighbor (§5.4), which is exactly the root of
// this heap once it is full.
//
// Tie handling is deterministic (larger id evicted first on equal
// distance) so that all five kernels return bit-identical result sets, the
// exactness invariant of DESIGN.md §6.
package topk

import "slices"

// Result is one neighbor candidate.
type Result struct {
	ID       int64
	Distance float32
}

// Heap is a bounded max-heap of the k best (smallest-distance) results
// seen so far. The zero value is unusable; call New.
type Heap struct {
	k     int
	items []Result
}

// New returns a heap retaining the k smallest-distance results.
func New(k int) *Heap {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Heap{k: k, items: make([]Result, 0, k)}
}

// K returns the heap capacity.
func (h *Heap) K() int { return h.k }

// Reset reinitializes the heap for a new query retaining the k best
// results, reusing the backing array when it is large enough. It is the
// allocation-free counterpart of New for callers that run many queries
// through per-searcher scratch state (the native execution engine).
func (h *Heap) Reset(k int) {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	h.k = k
	if cap(h.items) < k {
		h.items = make([]Result, 0, k)
	} else {
		h.items = h.items[:0]
	}
}

// Len returns the number of results currently held.
func (h *Heap) Len() int { return len(h.items) }

// Full reports whether k results have been collected.
func (h *Heap) Full() bool { return len(h.items) == h.k }

// Threshold returns the current pruning threshold: the distance of the
// worst retained result once the heap is full, or +Inf semantics via ok
// being false while it is not.
func (h *Heap) Threshold() (dist float32, ok bool) {
	if !h.Full() {
		return 0, false
	}
	return h.items[0].Distance, true
}

// worse reports whether a should be evicted before b (a is strictly worse).
func worse(a, b Result) bool {
	if a.Distance != b.Distance {
		return a.Distance > b.Distance
	}
	return a.ID > b.ID
}

// Best returns the smallest distance currently retained. ok is false when
// the heap is empty. PQ Fast Scan uses the best distance after its keep
// phase as the quantization bound qmax (§4.4: "We then use the distance
// between the query vector and this temporary nearest neighbor as qmax").
func (h *Heap) Best() (dist float32, ok bool) {
	if len(h.items) == 0 {
		return 0, false
	}
	best := h.items[0].Distance
	for _, it := range h.items[1:] {
		if it.Distance < best {
			best = it.Distance
		}
	}
	return best, true
}

// Worst returns the largest distance currently retained (the heap root),
// regardless of whether the heap is full. ok is false when it is empty.
// PQ Fast Scan uses it as the quantization bound when the keep phase
// holds fewer than k temporary neighbors: the eventual topk-th distance
// cannot usefully exceed the worst temporary distance's scale, so the
// quantized range stays relevant without collapsing to the top-1 bound.
func (h *Heap) Worst() (dist float32, ok bool) {
	if len(h.items) == 0 {
		return 0, false
	}
	return h.items[0].Distance, true
}

// Push offers a candidate. It returns true if the candidate was retained.
func (h *Heap) Push(id int64, dist float32) bool {
	c := Result{ID: id, Distance: dist}
	if len(h.items) < h.k {
		h.items = append(h.items, c)
		h.siftUp(len(h.items) - 1)
		return true
	}
	if !worse(h.items[0], c) {
		return false
	}
	h.items[0] = c
	h.siftDown(0)
	return true
}

// Accepts reports whether a candidate at dist would be retained if pushed,
// without modifying the heap. Scan kernels use it as the pruning test.
func (h *Heap) Accepts(dist float32) bool {
	if len(h.items) < h.k {
		return true
	}
	return dist <= h.items[0].Distance
}

func (h *Heap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && worse(h.items[l], h.items[largest]) {
			largest = l
		}
		if r < n && worse(h.items[r], h.items[largest]) {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}

// Results returns the retained results sorted by ascending distance
// (ties by ascending id). The heap is unchanged.
func (h *Heap) Results() []Result {
	return h.AppendResults(nil)
}

// MergeResults merges per-source top-k lists into one global top-k — the
// deterministic merge of scatter-gather cluster serving, where each list
// is one shard's (or replica's) answer over its cells. Candidates are
// deduplicated by id first: the same id can arrive twice when a hedged
// replica answers from a different snapshot epoch during failover, and
// the smaller distance wins (ties are the same candidate). The retained
// set of the bounded heap is the k smallest (distance, id) pairs of the
// deduplicated union regardless of list order or arrival interleaving,
// so a router merging shard answers returns exactly what a single node
// scanning the union of their cells would. k larger than the total
// number of distinct hits returns them all.
func MergeResults(k int, lists ...[]Result) []Result {
	best := make(map[int64]float32)
	for _, list := range lists {
		for _, r := range list {
			if d, ok := best[r.ID]; !ok || r.Distance < d {
				best[r.ID] = r.Distance
			}
		}
	}
	h := New(k)
	for id, d := range best {
		h.Push(id, d)
	}
	return h.Results()
}

// AppendResults appends the sorted results to dst (which may be a reused
// buffer, typically dst[:0]) and returns the extended slice. The heap is
// unchanged. Like Results but allocation-free once dst has capacity.
func (h *Heap) AppendResults(dst []Result) []Result {
	start := len(dst)
	dst = append(dst, h.items...)
	slices.SortFunc(dst[start:], func(a, b Result) int {
		if a.Distance != b.Distance {
			if a.Distance < b.Distance {
				return -1
			}
			return 1
		}
		if a.ID != b.ID {
			if a.ID < b.ID {
				return -1
			}
			return 1
		}
		return 0
	})
	return dst
}
