// Package hist provides the lock-free geometric latency histogram shared
// by the serving layers (internal/server, internal/cluster). Every
// counter is an atomic, so recording a sample from a request goroutine
// never contends with another request or with a stats read. Samples go
// into fixed-bound geometric buckets (1µs doubling up to ~16s) whose
// quantiles are answered from cumulative bucket counts; the error of a
// reported quantile is bounded by one bucket width (a factor of 2),
// which is the right fidelity for p50/p99 dashboards at zero
// steady-state allocation.
package hist

import (
	"sync/atomic"
	"time"
)

// Buckets is the number of geometric latency buckets. Bucket i counts
// samples in [2^i µs, 2^(i+1) µs); the last bucket absorbs everything
// slower.
const Buckets = 25

// Hist is a concurrent geometric latency histogram. The zero value is
// ready to use.
type Hist struct {
	counts [Buckets]atomic.Int64
	count  atomic.Int64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	b := 0
	for us := ns / 1e3; us > 1 && b < Buckets-1; us >>= 1 {
		b++
	}
	h.counts[b].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of samples observed.
func (h *Hist) Count() int64 { return h.count.Load() }

// QuantileMs returns the q-quantile (0 < q <= 1) in milliseconds as the
// upper bound of the bucket holding it, clamped to the observed maximum.
func (h *Hist) QuantileMs(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < Buckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			upperNs := float64(int64(1)<<uint(i+1)) * 1e3
			if maxNs := float64(h.maxNs.Load()); upperNs > maxNs {
				upperNs = maxNs
			}
			return upperNs / 1e6
		}
	}
	return float64(h.maxNs.Load()) / 1e6
}

// MeanMs returns the mean observed latency in milliseconds.
func (h *Hist) MeanMs() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sumNs.Load()) / float64(n) / 1e6
}

// MaxMs returns the largest observed latency in milliseconds.
func (h *Hist) MaxMs() float64 { return float64(h.maxNs.Load()) / 1e6 }
