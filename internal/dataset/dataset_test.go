package dataset

import (
	"bytes"
	"math"
	"testing"

	"pqfastscan/internal/vec"
)

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(Config{Seed: 5}).Generate(100)
	b := NewGenerator(Config{Seed: 5}).Generate(100)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same-seed generators differ")
		}
	}
	c := NewGenerator(Config{Seed: 6}).Generate(100)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGeneratorStreamContinues(t *testing.T) {
	g := NewGenerator(Config{Seed: 7})
	first := g.Generate(50)
	second := g.Generate(50)
	// Different draws, not a restart of the stream.
	if first.Row(0)[0] == second.Row(0)[0] && first.Row(0)[1] == second.Row(0)[1] {
		t.Fatal("second batch appears to restart the stream")
	}
}

func TestGeneratorRangeAndShape(t *testing.T) {
	m := NewGenerator(Config{Seed: 1}).Generate(500)
	if m.Dim != SIFTDim {
		t.Fatalf("dim = %d, want %d", m.Dim, SIFTDim)
	}
	if m.Rows() != 500 {
		t.Fatalf("rows = %d", m.Rows())
	}
	for _, v := range m.Data {
		if v < 0 || v > SIFTMax {
			t.Fatalf("component %v outside SIFT range [0,%d]", v, SIFTMax)
		}
		if v != float32(int(v)) {
			t.Fatalf("component %v not integer-valued", v)
		}
	}
}

func TestGeneratorClustered(t *testing.T) {
	// Clustered data: the average distance to the nearest other vector
	// must be much smaller than the average distance to a random vector.
	// Fully coherent sub-spaces give the strongest cluster signal.
	m := NewGenerator(Config{Seed: 3, Clusters: 8, SubspaceMixing: 1}).Generate(400)
	var nearSum, randSum float64
	for i := 0; i < 100; i++ {
		near := float32(1e30)
		for j := 0; j < m.Rows(); j++ {
			if j == i {
				continue
			}
			if d := vec.L2Squared(m.Row(i), m.Row(j)); d < near {
				near = d
			}
		}
		nearSum += float64(near)
		randSum += float64(vec.L2Squared(m.Row(i), m.Row((i*37+211)%m.Rows())))
	}
	if nearSum >= randSum/4 {
		t.Fatalf("data does not look clustered: nearest %.0f vs random %.0f", nearSum/100, randSum/100)
	}
}

func TestFvecsRoundtrip(t *testing.T) {
	m := NewGenerator(Config{Seed: 9, Dim: 16}).Generate(33)
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFvecs(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != 16 || got.Rows() != 33 {
		t.Fatalf("roundtrip shape %dx%d", got.Rows(), got.Dim)
	}
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatalf("fvecs roundtrip differs at %d", i)
		}
	}
}

func TestFvecsReadLimit(t *testing.T) {
	m := NewGenerator(Config{Seed: 9, Dim: 8}).Generate(20)
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFvecs(&buf, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 5 {
		t.Fatalf("limited read returned %d rows", got.Rows())
	}
}

func TestBvecsRoundtrip(t *testing.T) {
	m := NewGenerator(Config{Seed: 10}).Generate(17)
	var buf bytes.Buffer
	if err := WriteBvecs(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBvecs(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Generator output is integer-valued in [0,255], so the byte format
	// is lossless for it.
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatalf("bvecs roundtrip differs at %d: %v vs %v", i, got.Data[i], m.Data[i])
		}
	}
}

func TestBvecsClamps(t *testing.T) {
	m := vec.Matrix{Data: []float32{-5, 300, 17.4, 17.6}, Dim: 4}
	var buf bytes.Buffer
	if err := WriteBvecs(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBvecs(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 255, 17, 18}
	for i := range want {
		if got.Data[i] != want[i] {
			t.Fatalf("clamp/round: got %v, want %v", got.Data, want)
		}
	}
}

func TestIvecsRoundtrip(t *testing.T) {
	rows := [][]int64{{1, 2, 3}, {}, {42}}
	var buf bytes.Buffer
	if err := WriteIvecs(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIvecs(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("%d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		if len(got[i]) != len(rows[i]) {
			t.Fatalf("row %d length %d, want %d", i, len(got[i]), len(rows[i]))
		}
		for j := range rows[i] {
			if got[i][j] != rows[i][j] {
				t.Fatalf("row %d differs", i)
			}
		}
	}
}

func TestReadFvecsRejectsGarbage(t *testing.T) {
	if _, err := ReadFvecs(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff}), 0); err == nil {
		t.Error("negative dimension accepted")
	}
	if _, err := ReadFvecs(bytes.NewReader([]byte{4, 0, 0, 0, 1, 2}), 0); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestGroundTruthExact(t *testing.T) {
	base := vec.NewMatrix(5, 2)
	for i := 0; i < 5; i++ {
		base.Row(i)[0] = float32(i * 10)
	}
	queries := vec.NewMatrix(1, 2)
	queries.Row(0)[0] = 19
	gt, err := GroundTruth(base, queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 1, 3} // distances 1, 81, 121
	for i, id := range want {
		if gt[0][i] != id {
			t.Fatalf("ground truth %v, want %v", gt[0], want)
		}
	}
}

func TestGroundTruthTieBreaksByID(t *testing.T) {
	base := vec.NewMatrix(3, 1)
	base.Row(0)[0] = 1
	base.Row(1)[0] = -1
	base.Row(2)[0] = 1
	queries := vec.NewMatrix(1, 1)
	gt, err := GroundTruth(base, queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 1, 2}
	for i := range want {
		if gt[0][i] != want[i] {
			t.Fatalf("tie order %v, want %v", gt[0], want)
		}
	}
}

func TestGroundTruthErrors(t *testing.T) {
	if _, err := GroundTruth(vec.NewMatrix(2, 3), vec.NewMatrix(1, 4), 1); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := GroundTruth(vec.NewMatrix(2, 3), vec.NewMatrix(1, 3), 5); err == nil {
		t.Error("k > n accepted")
	}
}

func TestRecall(t *testing.T) {
	gt := [][]int64{{7}, {8}, {9}}
	results := [][]int64{
		{7, 1, 2}, // hit at rank 1
		{1, 8, 3}, // hit at rank 2
		{1, 2, 3}, // miss
	}
	if got := Recall(results, gt, 1); got != 1.0/3 {
		t.Errorf("recall@1 = %v, want 1/3", got)
	}
	if got := Recall(results, gt, 3); got != 2.0/3 {
		t.Errorf("recall@3 = %v, want 2/3", got)
	}
	if got := Recall(nil, gt, 1); got != 0 {
		t.Errorf("recall of empty results = %v", got)
	}
}

// TestSubspaceMixing: lower mixing must decorrelate sub-space cluster
// membership — measured as the drop in correlation between sub-space
// block sums across blocks of the same vector.
func TestSubspaceMixing(t *testing.T) {
	blockCorr := func(mix float64) float64 {
		m := NewGenerator(Config{Seed: 9, Clusters: 8, SubspaceMixing: mix, SubspaceMixingSet: true}).Generate(600)
		// Correlation proxy: covariance of block-0 and block-4 sums.
		var s0, s4, s00, s44, s04 float64
		n := float64(m.Rows())
		for i := 0; i < m.Rows(); i++ {
			row := m.Row(i)
			var b0, b4 float64
			for d := 0; d < 16; d++ {
				b0 += float64(row[d])
				b4 += float64(row[64+d])
			}
			s0 += b0
			s4 += b4
			s00 += b0 * b0
			s44 += b4 * b4
			s04 += b0 * b4
		}
		cov := s04/n - s0/n*s4/n
		v0 := s00/n - s0/n*s0/n
		v4 := s44/n - s4/n*s4/n
		return cov / (1e-12 + math.Sqrt(v0*v4))
	}
	coherent := blockCorr(1)
	independent := blockCorr(0)
	if coherent < independent+0.2 {
		t.Errorf("mixing=1 correlation %.3f not clearly above mixing=0 correlation %.3f",
			coherent, independent)
	}
}
